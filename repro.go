// Package repro is a from-scratch reproduction of "The Process File System
// and Process Model in UNIX System V" (Faulkner & Gomes, USENIX Winter 1991):
// a simulated SVR4 kernel — virtual memory with copy-on-write mappings, a
// virtual CPU, the full signal/fault/system-call stop machinery, job
// control, ptrace — with the /proc file system built on top of it, exactly
// as the paper describes, plus the paper's proposed extensions (poll on proc
// files, resource usage, watchpoints) and proposed restructuring (the
// hierarchical, read/write-based /proc).
//
// A System boots a complete simulated machine:
//
//	sys := repro.NewSystem()
//	sys.Install("/bin/spin", "loop: jmp loop", 0o755, 100, 10)
//	p, _ := sys.Spawn("/bin/spin", nil, types.UserCred(100, 10))
//	f, _ := sys.Client(types.UserCred(100, 10)).Open("/proc/"+procfs.PidName(p.Pid), vfs.ORead|vfs.OWrite)
//	var st kernel.ProcStatus
//	f.Ioctl(procfs.PIOCSTOP, &st)
//
// Everything is deterministic and single-goroutine: blocking operations
// (PIOCWSTOP, pipe reads) drive the simulated scheduler until their
// condition holds.
package repro

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/blockfs"
	"repro/internal/bsl"
	"repro/internal/kernel"
	"repro/internal/memfs"
	"repro/internal/procfs"
	"repro/internal/procfs2"
	"repro/internal/types"
	"repro/internal/vfs"
	"repro/internal/xout"
)

// System is one booted simulated machine.
type System struct {
	K     *kernel.Kernel
	FS    *memfs.FS   // the root file system
	NS    *vfs.NS     // the name space with /proc mounted
	Proc  *procfs.FS  // the flat SVR4 /proc (mounted at /proc)
	Proc2 *procfs2.FS // the proposed hierarchical /proc (mounted at /procx)
	Disk  *blockfs.FS // the persistent file system (mounted at /disk when configured)

	diskDev blockfs.Dev
}

// InitProgram is the program run as process 1: it idles in pause(2) forever;
// orphans are reaped by the kernel on its behalf.
const InitProgram = `
; init(1M): idle forever
loop:	movi r0, SYS_pause
	syscall
	jmp loop
`

// Options tunes NewSystem.
type Options struct {
	PageSize int  // address space page size (default 4096)
	Quantum  int  // scheduler quantum in instructions (default 50)
	NoInit   bool // skip spawning init (pid numbering then starts at 1)
	// NCPU is the number of scheduler CPUs: 0 or 1 is the deterministic
	// single-threaded scheduler; above 1 enables the SMP scheduler with
	// per-CPU run queues. 1 pins deterministic mode even when REPRO_NCPU
	// is set in the environment.
	NCPU int
	// DiskBlocks, when nonzero, attaches a persistent blockfs of that many
	// BlockSize blocks at /disk — an in-memory image, or a raw image file
	// when DiskImage names a host path (created and formatted if missing,
	// remounted with journal replay if present).
	DiskBlocks int
	DiskImage  string
}

// NewSystem boots a machine: a memfs root with the conventional directories,
// the kernel with system processes 0 (sched) and 2 (pageout), init as pid 1,
// the flat /proc mounted at /proc and the restructured one at /procx.
func NewSystem(opts ...Options) *System {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	var k *kernel.Kernel
	fs := memfs.New(func() int64 {
		if k == nil {
			return 0
		}
		return k.Now()
	})
	ns := vfs.NewNS(fs.Root())
	k = kernel.New(ns, kernel.Config{PageSize: o.PageSize, Quantum: o.Quantum, NCPU: o.NCPU})
	for _, dir := range []string{"/bin", "/lib", "/etc", "/tmp", "/proc", "/procx"} {
		fs.MkdirAll(dir, 0o755)
	}
	fs.Chmod("/tmp", 0o777)

	s := &System{K: k, FS: fs, NS: ns}
	s.Proc = procfs.New(k)
	ns.Mount("/proc", s.Proc.Root())
	s.Proc2 = procfs2.New(k)
	ns.Mount("/procx", s.Proc2.Root())

	if o.DiskBlocks > 0 || o.DiskImage != "" {
		if err := s.attachDisk(o); err != nil {
			panic(fmt.Sprintf("repro: cannot attach disk: %v", err))
		}
	}

	if !o.NoInit {
		if err := s.Install("/etc/init", InitProgram, 0o755, 0, 0); err != nil {
			panic(fmt.Sprintf("repro: cannot install init: %v", err))
		}
		if _, err := k.Spawn("/etc/init", []string{"init"}, types.RootCred(), nil); err != nil {
			panic(fmt.Sprintf("repro: cannot spawn init: %v", err))
		}
	}
	k.BootSystemProcs()
	return s
}

// Assemble assembles a program with the kernel's predefined symbols
// (SYS_* system call numbers and SIG* signal numbers) available.
func (s *System) Assemble(src string) (*xout.File, error) {
	return asm.Assemble(src, &asm.Options{Predef: kernel.Predefs()})
}

// Install assembles src and writes the executable at path.
func (s *System) Install(path, src string, mode uint16, uid, gid int) error {
	img, err := s.Assemble(src)
	if err != nil {
		return err
	}
	return s.FS.WriteFile(path, img.Marshal(), mode, uid, gid)
}

// InstallBSL compiles bsl source (see internal/bsl) and installs the
// executable at path. Function names become symbols the debugger resolves.
func (s *System) InstallBSL(path, src string, mode uint16, uid, gid int) error {
	img, err := bsl.CompileToImage(src, kernel.Predefs())
	if err != nil {
		return err
	}
	return s.FS.WriteFile(path, img.Marshal(), mode, uid, gid)
}

// Spawn starts a program as a child of init.
func (s *System) Spawn(path string, args []string, cred types.Cred) (*kernel.Proc, error) {
	return s.K.Spawn(path, args, cred, nil)
}

// SpawnProg installs src at /bin/<name> and spawns it.
func (s *System) SpawnProg(name, src string, cred types.Cred) (*kernel.Proc, error) {
	path := "/bin/" + name
	if err := s.Install(path, src, 0o755, 0, 0); err != nil {
		return nil, err
	}
	return s.Spawn(path, []string{name}, cred)
}

// Client returns a controlling program's view of the name space under the
// given credentials — the lens through which debuggers, ps and truss see
// /proc.
func (s *System) Client(cred types.Cred) *vfs.Client {
	return &vfs.Client{NS: s.NS, Cred: cred}
}

// OpenProc opens /proc/<pid> with the given flags and credentials.
func (s *System) OpenProc(pid int, flags int, cred types.Cred) (*vfs.File, error) {
	return s.Client(cred).Open("/proc/"+procfs.PidName(pid), flags)
}

// Run drives the scheduler for at most n passes, returning how many ran.
func (s *System) Run(n int) int { return s.K.Run(n) }

// RunUntil drives the scheduler until cond holds.
func (s *System) RunUntil(cond func() bool, maxSteps int) error {
	return s.K.RunUntil(cond, maxSteps)
}

// WaitExit drives the scheduler until p exits and returns its status.
func (s *System) WaitExit(p *kernel.Proc) (int, error) {
	if err := s.K.RunUntil(func() bool { return !p.Alive() }, 10_000_000); err != nil {
		return 0, err
	}
	return p.ExitStatus, nil
}

// Step advances the simulation one scheduling pass, reporting whether
// anything ran; handy as the step function for vfs.Poll.
func (s *System) Step() bool { return s.K.Step() }

// attachDisk creates or opens the block device behind /disk, formats a
// fresh image, and mounts it (replaying the journal — the recovery path
// after an unclean shutdown of a file-backed image).
func (s *System) attachDisk(o Options) error {
	var dev blockfs.Dev
	if o.DiskImage != "" {
		fd, err := blockfs.OpenFileDev(o.DiskImage, uint32(o.DiskBlocks))
		if err != nil {
			return err
		}
		dev = fd
	} else {
		dev = blockfs.NewMemDev(uint32(o.DiskBlocks))
	}
	// A device whose block 0 is not a superblock is fresh: format it. A
	// device that has one but fails to mount is corrupt — that error
	// propagates rather than silently reformatting someone's data.
	formatted, err := blockfs.IsFormatted(dev)
	if err != nil {
		return err
	}
	if !formatted {
		if err := blockfs.Mkfs(dev, 0); err != nil {
			return err
		}
	}
	bfs, err := blockfs.Mount(dev, blockfs.MountOptions{Now: s.K.Now})
	if err != nil {
		return err
	}
	if err := s.NS.Mount("/disk", bfs.Root()); err != nil {
		return err
	}
	s.FS.MkdirAll("/disk", 0o755)
	s.Disk, s.diskDev = bfs, dev
	return nil
}

// Close retires the system's scheduler resources: with NCPU > 1 it stops
// the persistent per-CPU worker goroutines (after which Step must not be
// called); in deterministic mode it is a no-op. Callers that boot many SMP
// systems (tests, benchmarks) must Close each one or the workers
// accumulate. A configured disk is checkpointed and closed, so a
// file-backed image remounts clean.
func (s *System) Close() {
	if s.Disk != nil {
		s.Disk.Sync()
		s.diskDev.Close()
		s.Disk, s.diskDev = nil, nil
	}
	s.K.Shutdown()
}
