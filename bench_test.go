// Benchmarks regenerating every figure, table and performance claim of the
// paper's evaluation, per the index in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers reflect the simulation substrate, not 1991 hardware; the
// shapes the paper claims — /proc beating ptrace by large factors on bulk
// operations and breakpoints, batching winning remotely, watchpoint recovery
// being cheap, COW isolating breakpoint writes — are what EXPERIMENTS.md
// records.
package repro_test

import (
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/procfs2"
	"repro/internal/replay"
	"repro/internal/rfs"
	"repro/internal/tools"
	"repro/internal/types"
	"repro/internal/vfs"
)

func bootBench(b *testing.B) *repro.System {
	b.Helper()
	return repro.NewSystem()
}

func spawnBench(b *testing.B, s *repro.System, name, src string) *kernel.Proc {
	b.Helper()
	p, err := s.SpawnProg(name, src, types.UserCred(100, 10))
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func openBench(b *testing.B, s *repro.System, pid int) *vfs.File {
	b.Helper()
	f, err := s.OpenProc(pid, vfs.ORead|vfs.OWrite, types.RootCred())
	if err != nil {
		b.Fatal(err)
	}
	return f
}

const benchSpin = "loop:\tjmp loop\n"

// --- F1: Figure 1, the /proc directory listing ---

func BenchmarkFig1ProcDirectoryList(b *testing.B) {
	s := bootBench(b)
	for i := 0; i < 10; i++ {
		spawnBench(b, s, fmt.Sprintf("p%d", i), benchSpin)
	}
	s.Run(5)
	cl := s.Client(types.RootCred())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tools.LsProc(cl, io.Discard, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F2: Figure 2, the memory map via PIOCMAP ---

func BenchmarkFig2MemoryMap(b *testing.B) {
	s := bootBench(b)
	if err := s.Install("/lib/libbench", "fn:\tret\n.data\nd:\t.word 1\n", 0o755, 0, 0); err != nil {
		b.Fatal(err)
	}
	p := spawnBench(b, s, "mapped", ".lib \"libbench\"\nloop:\tjmp loop\n.data\nd:\t.word 2\n")
	s.Run(3)
	f := openBench(b, s, p.Pid)
	defer f.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var maps []procfs.PrMap
		if err := f.Ioctl(procfs.PIOCMAP, &maps); err != nil {
			b.Fatal(err)
		}
		if len(maps) != 6 {
			b.Fatalf("map entries = %d", len(maps))
		}
	}
}

// --- T1: the ioctl operation table, representative round trips ---

func BenchmarkIoctlStatus(b *testing.B) {
	s := bootBench(b)
	p := spawnBench(b, s, "st", benchSpin)
	s.Run(2)
	f := openBench(b, s, p.Pid)
	defer f.Close()
	var st kernel.ProcStatus
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Ioctl(procfs.PIOCSTATUS, &st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIoctlStopRun(b *testing.B) {
	s := bootBench(b)
	p := spawnBench(b, s, "sr", benchSpin)
	s.Run(2)
	f := openBench(b, s, p.Pid)
	defer f.Close()
	var st kernel.ProcStatus
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Ioctl(procfs.PIOCSTOP, &st); err != nil {
			b.Fatal(err)
		}
		if err := f.Ioctl(procfs.PIOCRUN, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- C1: breakpoints per second, /proc vs ptrace ---
//
// The paper: debugger efficiency "becomes important in the implementation
// of features such as conditional breakpoints, for which 'breakpoints per
// second' is a realistic measure of performance." A conditional breakpoint
// must, on every hit, fetch the registers and the watched variables to
// evaluate the condition, then resume. With /proc the status (registers
// included) arrives with the stop and the variables in one bulk read; with
// ptrace every word is a separate call.

const benchBpProg = `
.entry main
fn:	addi r4, 1
	ret
main:	call fn
	jmp main
.data
state:	.space 64
`

func BenchmarkBreakpoints_Proc(b *testing.B) {
	s := bootBench(b)
	p := spawnBench(b, s, "bp", benchBpProg)
	d, err := tools.NewDebugger(s, p, types.RootCred())
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	fn, _ := d.Lookup("fn")
	state, _ := d.Lookup("state")
	if err := d.SetBreak(fn); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := d.Cont() // the stop status carries the registers
		if err != nil {
			b.Fatal(err)
		}
		if st.Reg.PC != fn {
			b.Fatalf("stopped at %#x", st.Reg.PC)
		}
		// Evaluate the "condition": one bulk read of the program state.
		mem, err := d.ReadMem(state, 64)
		if err != nil {
			b.Fatal(err)
		}
		_ = mem[0] + byte(st.Reg.R[4])
	}
	b.StopTimer()
	b.ReportMetric(float64(d.Ops)/float64(b.N), "procops/hit")
}

func BenchmarkBreakpoints_Ptrace(b *testing.B) {
	s := bootBench(b)
	p := spawnBench(b, s, "bp", benchBpProg)
	c := s.K.PtraceAttach(p)
	d := tools.NewPtraceDebugger(c)
	s.K.PostSignal(p, types.SIGTRAP)
	if err := d.WaitTrap(1_000_000); err != nil {
		b.Fatal(err)
	}
	syms, _ := p.ImageSyms()
	var fn, state uint32
	for _, sym := range syms {
		if sym.Name == "fn" {
			fn = sym.Value
		}
		if sym.Name == "state" {
			state = sym.Value
		}
	}
	if err := d.SetBreak(fn); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Cont(1_000_000); err != nil {
			b.Fatal(err)
		}
		// Evaluate the "condition": registers and state, a word at a time.
		regs, err := d.Regs()
		if err != nil {
			b.Fatal(err)
		}
		mem, err := d.ReadMem(state, 64)
		if err != nil {
			b.Fatal(err)
		}
		_ = mem[0] + byte(regs.R[4])
	}
	b.StopTimer()
	b.ReportMetric(float64(d.Ops())/float64(b.N), "ptraceops/hit")
}

// Ablation: fielding breakpoints as faulted stops (the paper's preferred
// method) vs as SIGTRAP signalled stops.
func BenchmarkBreakpoints_ProcStopOnFault(b *testing.B) {
	benchBreakpointStops(b, true)
}

func BenchmarkBreakpoints_ProcStopOnSignal(b *testing.B) {
	benchBreakpointStops(b, false)
}

func benchBreakpointStops(b *testing.B, onFault bool) {
	s := bootBench(b)
	p := spawnBench(b, s, "bps", benchBpProg)
	f := openBench(b, s, p.Pid)
	defer f.Close()
	if onFault {
		var flts types.FltSet
		flts.Add(types.FLTBPT)
		flts.Add(types.FLTTRACE)
		if err := f.Ioctl(procfs.PIOCSFAULT, &flts); err != nil {
			b.Fatal(err)
		}
	} else {
		// Faults convert to SIGTRAP; trace the signal instead, but FLTTRACE
		// must still be traced for the step-over.
		var flts types.FltSet
		flts.Add(types.FLTTRACE)
		if err := f.Ioctl(procfs.PIOCSFAULT, &flts); err != nil {
			b.Fatal(err)
		}
		var sigs types.SigSet
		sigs.Add(types.SIGTRAP)
		if err := f.Ioctl(procfs.PIOCSTRACE, &sigs); err != nil {
			b.Fatal(err)
		}
	}
	syms, _ := p.ImageSyms()
	var fn uint32
	for _, sym := range syms {
		if sym.Name == "fn" {
			fn = sym.Value
		}
	}
	orig := writeBreak(b, f, fn)
	var st kernel.ProcStatus
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Ioctl(procfs.PIOCWSTOP, &st); err != nil {
			b.Fatal(err)
		}
		// Step over: restore, single-step, re-plant, continue.
		restoreWord(b, f, fn, orig)
		run := kernel.RunFlags{ClearFault: true, ClearSig: onFault == false, Step: true}
		if err := f.Ioctl(procfs.PIOCRUN, &run); err != nil {
			b.Fatal(err)
		}
		if err := f.Ioctl(procfs.PIOCWSTOP, &st); err != nil {
			b.Fatal(err)
		}
		writeBreak(b, f, fn)
		run = kernel.RunFlags{ClearFault: true}
		if err := f.Ioctl(procfs.PIOCRUN, &run); err != nil {
			b.Fatal(err)
		}
	}
}

func writeBreak(b *testing.B, f *vfs.File, addr uint32) uint32 {
	b.Helper()
	var buf [4]byte
	if _, err := f.Pread(buf[:], int64(addr)); err != nil {
		b.Fatal(err)
	}
	orig := uint32(buf[0])<<24 | uint32(buf[1])<<16 | uint32(buf[2])<<8 | uint32(buf[3])
	bp := [4]byte{0x24, 0, 0, 0} // OpBPT
	if _, err := f.Pwrite(bp[:], int64(addr)); err != nil {
		b.Fatal(err)
	}
	return orig
}

func restoreWord(b *testing.B, f *vfs.File, addr, w uint32) {
	b.Helper()
	buf := [4]byte{byte(w >> 24), byte(w >> 16), byte(w >> 8), byte(w)}
	if _, err := f.Pwrite(buf[:], int64(addr)); err != nil {
		b.Fatal(err)
	}
}

// --- C2: full status, one PIOCSTATUS vs a ptrace PEEKUSER loop ---

func BenchmarkStatus_Proc(b *testing.B) {
	s := bootBench(b)
	p := spawnBench(b, s, "stp", benchSpin)
	s.Run(2)
	f := openBench(b, s, p.Pid)
	defer f.Close()
	var st kernel.ProcStatus
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Ioctl(procfs.PIOCSTATUS, &st); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1, "ops/status")
}

func BenchmarkStatus_Ptrace(b *testing.B) {
	s := bootBench(b)
	p := spawnBench(b, s, "stt", benchSpin)
	c := s.K.PtraceAttach(p)
	d := tools.NewPtraceDebugger(c)
	s.K.PostSignal(p, types.SIGTRAP)
	if err := d.WaitTrap(1_000_000); err != nil {
		b.Fatal(err)
	}
	before := d.Ops()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Regs(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(d.Ops()-before)/float64(b.N), "ops/status")
}

// --- C3: bulk address-space transfer, one read vs PEEKTEXT words ---

const benchBlobProg = `
loop:	jmp loop
.data
blob:	.space 65536
`

func BenchmarkASRead64K_Proc(b *testing.B) {
	s := bootBench(b)
	p := spawnBench(b, s, "blob", benchBlobProg)
	s.Run(2)
	f := openBench(b, s, p.Pid)
	defer f.Close()
	syms, _ := p.ImageSyms()
	var blob uint32
	for _, sym := range syms {
		if sym.Name == "blob" {
			blob = sym.Value
		}
	}
	buf := make([]byte, 65536)
	b.SetBytes(65536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n, err := f.Pread(buf, int64(blob)); err != nil || n != len(buf) {
			b.Fatalf("n=%d err=%v", n, err)
		}
	}
}

func BenchmarkASRead64K_Ptrace(b *testing.B) {
	s := bootBench(b)
	p := spawnBench(b, s, "blob", benchBlobProg)
	c := s.K.PtraceAttach(p)
	d := tools.NewPtraceDebugger(c)
	s.K.PostSignal(p, types.SIGTRAP)
	if err := d.WaitTrap(1_000_000); err != nil {
		b.Fatal(err)
	}
	syms, _ := p.ImageSyms()
	var blob uint32
	for _, sym := range syms {
		if sym.Name == "blob" {
			blob = sym.Value
		}
	}
	b.SetBytes(65536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.ReadMem(blob, 65536); err != nil {
			b.Fatal(err)
		}
	}
}

// --- C4: the ps sweep, one PIOCPSINFO per process ---

func BenchmarkPsSweep(b *testing.B) {
	s := bootBench(b)
	for i := 0; i < 20; i++ {
		spawnBench(b, s, fmt.Sprintf("w%d", i), benchSpin)
	}
	s.Run(5)
	cl := s.Client(types.RootCred())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tools.PS(cl, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(23, "procs/sweep")
}

// --- C5: truss overhead: a syscall-heavy program traced vs untraced ---

const benchSyscallProg = `
	movi r5, 50
loop:	movi r0, SYS_getpid
	syscall
	addi r5, -1
	cmpi r5, 0
	jne loop
	movi r0, SYS_exit
	movi r1, 0
	syscall
`

func BenchmarkTruss_Untraced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := bootBench(b)
		p := spawnBench(b, s, "load", benchSyscallProg)
		b.StartTimer()
		if _, err := s.WaitExit(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTruss_Traced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := bootBench(b)
		p := spawnBench(b, s, "load", benchSyscallProg)
		tr := tools.NewTruss(s, io.Discard, types.RootCred())
		b.StartTimer()
		if err := tr.TraceToExit(p, 10_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// --- C6: batching control operations, ioctl-per-op vs one ctl write ---

// Five control operations: set four trace sets and nice.
func BenchmarkCtl_IoctlPerOp(b *testing.B) {
	s := bootBench(b)
	p := spawnBench(b, s, "ctl", benchSpin)
	s.Run(2)
	f := openBench(b, s, p.Pid)
	defer f.Close()
	var sigs types.SigSet
	sigs.Add(types.SIGUSR1)
	var flts types.FltSet
	flts.Add(types.FLTBPT)
	var entries, exits types.SysSet
	entries.Add(kernel.SysRead)
	exits.Add(kernel.SysWrite)
	zero := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Ioctl(procfs.PIOCSTRACE, &sigs); err != nil {
			b.Fatal(err)
		}
		if err := f.Ioctl(procfs.PIOCSFAULT, &flts); err != nil {
			b.Fatal(err)
		}
		if err := f.Ioctl(procfs.PIOCSENTRY, &entries); err != nil {
			b.Fatal(err)
		}
		if err := f.Ioctl(procfs.PIOCSEXIT, &exits); err != nil {
			b.Fatal(err)
		}
		if err := f.Ioctl(procfs.PIOCNICE, &zero); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(5, "calls/config")
}

func BenchmarkCtl_BatchedWrite(b *testing.B) {
	s := bootBench(b)
	p := spawnBench(b, s, "ctl2", benchSpin)
	s.Run(2)
	ctl, err := s.Client(types.RootCred()).Open(
		"/procx/"+procfs.PidName(p.Pid)+"/ctl", vfs.OWrite)
	if err != nil {
		b.Fatal(err)
	}
	defer ctl.Close()
	var sigs types.SigSet
	sigs.Add(types.SIGUSR1)
	var flts types.FltSet
	flts.Add(types.FLTBPT)
	var entries, exits types.SysSet
	entries.Add(kernel.SysRead)
	exits.Add(kernel.SysWrite)
	batch := (&procfs2.CtlBuf{}).
		STrace(sigs).SFault(flts).SEntry(entries).SExit(exits).Nice(0).
		Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctl.Pwrite(batch, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1, "calls/config")
}

// The same comparison over a (real, loopback) network, where each call is a
// protocol round trip: the restructuring claim in its intended setting.
func benchRemote(b *testing.B) (*repro.System, *rfs.Client, *kernel.Proc, func()) {
	return benchRemoteProg(b, benchSpin)
}

func benchRemoteProg(b *testing.B, prog string) (*repro.System, *rfs.Client, *kernel.Proc, func()) {
	b.Helper()
	s := bootBench(b)
	p := spawnBench(b, s, "remote", prog)
	s.Run(2)
	var lock sync.Mutex
	srv := rfs.NewServer(s.NS, &lock)
	server, client := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(server)
	}()
	cl := rfs.NewClient(&rfs.ConnTransport{Conn: client}, types.RootCred())
	cleanup := func() {
		client.Close()
		server.Close()
		<-done
	}
	return s, cl, p, cleanup
}

func BenchmarkRemoteCtl_IoctlPerOp(b *testing.B) {
	_, cl, p, cleanup := benchRemote(b)
	defer cleanup()
	f, err := cl.Open("/proc/"+procfs.PidName(p.Pid), vfs.ORead|vfs.OWrite)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	var sigs types.SigSet
	sigs.Add(types.SIGUSR1)
	var flts types.FltSet
	flts.Add(types.FLTBPT)
	var entries, exits types.SysSet
	entries.Add(kernel.SysRead)
	exits.Add(kernel.SysWrite)
	zero := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Ioctl(procfs.PIOCSTRACE, &sigs); err != nil {
			b.Fatal(err)
		}
		if err := f.Ioctl(procfs.PIOCSFAULT, &flts); err != nil {
			b.Fatal(err)
		}
		if err := f.Ioctl(procfs.PIOCSENTRY, &entries); err != nil {
			b.Fatal(err)
		}
		if err := f.Ioctl(procfs.PIOCSEXIT, &exits); err != nil {
			b.Fatal(err)
		}
		if err := f.Ioctl(procfs.PIOCNICE, &zero); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(5, "roundtrips/config")
}

func BenchmarkRemoteCtl_BatchedWrite(b *testing.B) {
	_, cl, p, cleanup := benchRemote(b)
	defer cleanup()
	ctl, err := cl.Open("/procx/"+procfs.PidName(p.Pid)+"/ctl", vfs.OWrite)
	if err != nil {
		b.Fatal(err)
	}
	defer ctl.Close()
	var sigs types.SigSet
	sigs.Add(types.SIGUSR1)
	var flts types.FltSet
	flts.Add(types.FLTBPT)
	var entries, exits types.SysSet
	entries.Add(kernel.SysRead)
	exits.Add(kernel.SysWrite)
	batch := (&procfs2.CtlBuf{}).
		STrace(sigs).SFault(flts).SEntry(entries).SExit(exits).Nice(0).
		Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctl.Pwrite(batch, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1, "roundtrips/config")
}

// --- C9: remote status, flat ioctl vs restructured status-file read ---

func BenchmarkRemoteStatus_FlatIoctl(b *testing.B) {
	_, cl, p, cleanup := benchRemote(b)
	defer cleanup()
	f, err := cl.Open("/proc/"+procfs.PidName(p.Pid), vfs.ORead)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	var st kernel.ProcStatus
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.Ioctl(procfs.PIOCSTATUS, &st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRemoteStatus_StatusFile(b *testing.B) {
	_, cl, p, cleanup := benchRemote(b)
	defer cleanup()
	f, err := cl.Open("/procx/"+procfs.PidName(p.Pid)+"/status", vfs.ORead)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := f.Pread(buf, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := procfs2.DecodeStatus(buf[:n]); err != nil {
			b.Fatal(err)
		}
	}
}

// Remote conditional breakpoints: the same debugger over RFS, where every
// /proc operation is a network round trip. The ptrace equivalent does not
// exist — ptrace is not a file and cannot cross the network at all, which
// is itself one of the paper's points.
func BenchmarkRemoteBreakpoints_Proc(b *testing.B) {
	s, cl, p, cleanup := benchRemoteProg(b, benchBpProg)
	defer cleanup()
	f, err := cl.Open("/proc/"+procfs.PidName(p.Pid), vfs.ORead|vfs.OWrite)
	if err != nil {
		b.Fatal(err)
	}
	d, err := tools.NewDebuggerFile(s, p, f)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	fn, _ := d.Lookup("fn")
	state, _ := d.Lookup("state")
	if err := d.SetBreak(fn); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := d.Cont()
		if err != nil {
			b.Fatal(err)
		}
		mem, err := d.ReadMem(state, 64)
		if err != nil {
			b.Fatal(err)
		}
		_ = mem[0] + byte(st.Reg.R[4])
	}
	b.StopTimer()
	b.ReportMetric(float64(d.Ops)/float64(b.N), "roundtrips/hit")
}

// --- C3 ablation: aligned vs page-crossing /proc reads ---

func BenchmarkASReadAligned_Proc(b *testing.B) {
	benchASReadAt(b, 0) // page-aligned start
}

func BenchmarkASReadCrossing_Proc(b *testing.B) {
	benchASReadAt(b, 2048) // every read spans a page boundary
}

func benchASReadAt(b *testing.B, skew int64) {
	s := bootBench(b)
	p := spawnBench(b, s, "skew", benchBlobProg)
	s.Run(2)
	f := openBench(b, s, p.Pid)
	defer f.Close()
	syms, _ := p.ImageSyms()
	var blob uint32
	for _, sym := range syms {
		if sym.Name == "blob" {
			blob = sym.Value
		}
	}
	// Align the base to a page, then apply the skew.
	base := (int64(blob) + 4095) &^ 4095
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Pread(buf, base+skew); err != nil {
			b.Fatal(err)
		}
	}
}

// --- C7: watchpoint same-page recovery overhead ---

const benchWatchProg = `
	la r3, table
	movi r5, 0
loop:	st r5, [r3]
	addi r5, 1
	jmp loop
.data
table:	.space 64
guard:	.word 0
`

func BenchmarkWatchpointSamePageUnwatched(b *testing.B) {
	benchWatchOverhead(b, true)
}

func BenchmarkWatchpointNoWatch(b *testing.B) {
	benchWatchOverhead(b, false)
}

func benchWatchOverhead(b *testing.B, watch bool) {
	s := bootBench(b)
	p := spawnBench(b, s, "ww", benchWatchProg)
	if watch {
		f := openBench(b, s, p.Pid)
		syms, _ := p.ImageSyms()
		var guard uint32
		for _, sym := range syms {
			if sym.Name == "guard" {
				guard = sym.Value
			}
		}
		w := procfs.PrWatch{Vaddr: guard, Size: 1, Mode: 2} // ProtWrite
		if err := f.Ioctl(procfs.PIOCSWATCH, &w); err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(10) // ten quanta of same-page stores
	}
	b.StopTimer()
	if watch && p.AS.Stats.WatchRecover == 0 {
		b.Fatal("expected transparent recoveries")
	}
}

// --- C8: the cost of a copy-on-write fault (breakpoint write path) ---

func BenchmarkCOWFault(b *testing.B) {
	s := bootBench(b)
	if err := s.Install("/bin/cowtgt", benchSpin, 0o755, 0, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p, err := s.Spawn("/bin/cowtgt", nil, types.UserCred(100, 10))
		if err != nil {
			b.Fatal(err)
		}
		f := openBench(b, s, p.Pid)
		bp := [4]byte{0x24, 0, 0, 0}
		b.StartTimer()
		// The first write privatizes the text page (the COW fault).
		if _, err := f.Pwrite(bp[:], 0x80000000); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		f.Close()
		s.K.PostSignal(p, types.SIGKILL)
		s.WaitExit(p)
		b.StartTimer()
	}
}

// --- C11: poll across a set of controlled processes ---

func BenchmarkPollWait(b *testing.B) {
	s := bootBench(b)
	var files []*vfs.File
	for i := 0; i < 4; i++ {
		p := spawnBench(b, s, fmt.Sprintf("pw%d", i), benchSpin)
		f := openBench(b, s, p.Pid)
		defer f.Close()
		files = append(files, f)
	}
	s.Run(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Direct one to stop; poll finds it; release it.
		target := files[i%len(files)]
		var st kernel.ProcStatus
		if err := target.Ioctl(procfs.PIOCSTOP, &st); err != nil {
			b.Fatal(err)
		}
		idx, _, err := vfs.Poll(files, vfs.PollPri, s.Step)
		if err != nil {
			b.Fatal(err)
		}
		if err := files[idx].Ioctl(procfs.PIOCRUN, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- the simulator itself, for context ---

func BenchmarkKernelStep(b *testing.B) {
	s := bootBench(b)
	spawnBench(b, s, "k", benchSpin)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// The SMP scheduler across CPU counts, with enough runnable processes to
// fill every run queue. NCPU=1 is the deterministic scheduler on the same
// population, so the sub-benchmarks read directly as the scaling curve.
// Scaling is real only when the host has cores to spend: the host_cpus
// metric records what was available, and on a single-core host the wins
// come from overlap, not parallelism.
func BenchmarkKernelStepSMP(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ncpu=%d", n), func(b *testing.B) {
			s := repro.NewSystem(repro.Options{NCPU: n})
			defer s.Close()
			for i := 0; i < 32; i++ {
				spawnBench(b, s, fmt.Sprintf("spin%d", i), benchSpin)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
			b.ReportMetric(float64(runtime.NumCPU()), "host_cpus")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
		})
	}
}

// --- C14: syscall injection cost ---

func BenchmarkInjectSyscall(b *testing.B) {
	s := bootBench(b)
	p := spawnBench(b, s, "inj", benchSpin)
	d, err := tools.NewDebugger(s, p, types.RootCred())
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	s.Run(3)
	if _, err := d.Stop(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ret, errno, err := d.InjectSyscall(kernel.SysGetpid)
		if err != nil || errno != 0 || int(ret) != p.Pid {
			b.Fatalf("inject: %d %v %v", ret, errno, err)
		}
	}
}

// --- C15: kernel event tracing overhead ---
//
// A steady-state syscall mill: the system boots once and the timed loop is
// nothing but scheduler quanta full of getpid calls — the syscall hot path
// with no boot, spawn or teardown in the measurement. Tracing disabled
// costs two nil checks per control point; enabled it costs one ring append
// per event. The claim: under 5% enabled, unmeasurable disabled.

const benchSyscallMill = `
loop:	movi r0, SYS_getpid
	syscall
	jmp loop
`

func benchKTraceStep(b *testing.B, setup func(s *repro.System, p *kernel.Proc)) {
	b.Helper()
	s := bootBench(b)
	p := spawnBench(b, s, "mill", benchSyscallMill)
	if setup != nil {
		setup(s, p)
	}
	// Warm up: the first traced events pay the ring's lazy allocation; that
	// is enable-time cost, not per-event overhead.
	s.Run(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	b.StopTimer()
	if setup != nil {
		st := s.K.KTraceStats()
		b.ReportMetric(float64(st.Emitted)/float64(b.N), "events/step")
	}
}

func BenchmarkKTrace_Disabled(b *testing.B) {
	benchKTraceStep(b, nil)
}

func BenchmarkKTrace_PerProc(b *testing.B) {
	benchKTraceStep(b, func(s *repro.System, p *kernel.Proc) {
		p.SetKTrace(1 << 16)
	})
}

func BenchmarkKTrace_Global(b *testing.B) {
	benchKTraceStep(b, func(s *repro.System, p *kernel.Proc) {
		s.K.EnableKTraceAll(1 << 16)
	})
}

// The scheduler hot path itself (no syscalls, just quanta) with the
// kernel-wide ring on — sched ticks are the only events.
func BenchmarkKernelStepTraced(b *testing.B) {
	s := bootBench(b)
	s.K.EnableKTraceAll(1 << 16)
	spawnBench(b, s, "kt", benchSpin)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

// The same hot path with the replay recorder attached: tracing plus the tap
// copying every event and its step ordinal into the artifact. The margin
// over BenchmarkKernelStepTraced is the whole cost of recording; the budget
// is ~10%.
func BenchmarkKernelStepRecorded(b *testing.B) {
	rec := replay.NewRecorder(replay.Options{KTCap: 1 << 16})
	if err := rec.Install("/bin/kr", benchSpin, 0o755, 0, 0); err != nil {
		b.Fatal(err)
	}
	if _, err := rec.Spawn("/bin/kr", nil, types.UserCred(100, 10)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Step()
	}
}

// Truss via the event ring vs the legacy stop-and-poll loop (C5's pair):
// the trace never stops the target, so tracing cost approaches the untraced
// run instead of the per-event stop/run round trips.
func BenchmarkTruss_TraceMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := bootBench(b)
		p := spawnBench(b, s, "load", benchSyscallProg)
		tr := tools.NewTruss(s, io.Discard, types.RootCred())
		tr.UseTrace = true
		b.StartTimer()
		if err := tr.TraceToExit(p, 10_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// The multiplexed transport against the stop-and-wait baseline: N client
// goroutines share ONE connection. Stop-and-wait serializes a full round
// trip per operation under a mutex; the mux pipeline keeps N requests in
// flight, overlapping wire time with dispatch and batching read-mostly
// requests under one server-lock acquisition. The acceptance bar is ≥2×
// aggregate throughput at ≥4 concurrent clients (ISSUE 2); EXPERIMENTS.md
// records the measured ratio.
func BenchmarkRFSPipelined(b *testing.B) {
	const workers = 8
	for _, mode := range []string{"stopwait", "mux"} {
		b.Run(mode, func(b *testing.B) {
			s := bootBench(b)
			s.FS.WriteFile("/tmp/bench", make([]byte, 256), 0o644, 0, 0)
			var lock sync.Mutex
			srv := rfs.NewServer(s.NS, &lock)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Skipf("no loopback networking: %v", err)
			}
			defer ln.Close()
			done := make(chan struct{})
			go func() {
				defer close(done)
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				defer conn.Close()
				srv.ServeConn(conn)
			}()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			var tp rfs.Transport
			switch mode {
			case "mux":
				mt, err := rfs.NewMuxTransport(conn)
				if err != nil {
					b.Fatal(err)
				}
				defer mt.Close()
				tp = mt
			default:
				tp = &rfs.ConnTransport{Conn: conn}
			}
			var remaining atomic.Int64
			remaining.Store(int64(b.N))
			b.ResetTimer()
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					cl := rfs.NewClient(tp, types.RootCred())
					for remaining.Add(-1) >= 0 {
						if _, err := cl.Stat("/tmp/bench"); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ops/s")
			conn.Close()
			<-done
		})
	}
}

// --- PR 10: the persistent file system ---

// BenchmarkBlockFSWrite measures the journaled write path end to end: one
// operation rewrites a 4 KiB file on /disk through the vfs client —
// transaction begin, block allocation, journal record, commit — with the
// buffer cache absorbing the device traffic between checkpoints.
func BenchmarkBlockFSWrite(b *testing.B) {
	s := repro.NewSystem(repro.Options{DiskBlocks: 4096})
	defer s.Close()
	cl := s.Client(types.RootCred())
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := cl.Open("/disk/bench", vfs.OWrite|vfs.OCreat|vfs.OTrunc)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Pwrite(data, 0); err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}

// BenchmarkBlockFSCachedRead measures the buffer-cache hit path: repeated
// reads of a resident 16 KiB file — no device traffic after the first pass.
func BenchmarkBlockFSCachedRead(b *testing.B) {
	s := repro.NewSystem(repro.Options{DiskBlocks: 4096})
	defer s.Close()
	cl := s.Client(types.RootCred())
	data := make([]byte, 16*1024)
	f, err := cl.Open("/disk/bench", vfs.OWrite|vfs.OCreat)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.Pwrite(data, 0); err != nil {
		b.Fatal(err)
	}
	f.Close()
	rf, err := cl.Open("/disk/bench", vfs.ORead)
	if err != nil {
		b.Fatal(err)
	}
	defer rf.Close()
	buf := make([]byte, len(data))
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rf.Pread(buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}
