GO ?= go

.PHONY: build test race vet verify bench bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench-smoke proves the pipelined-RFS benchmark still runs (one iteration,
# no timing claims) so a protocol change cannot silently rot it.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkRFSPipelined' -benchtime 1x .

# verify runs the tier-1 gate (build + test) plus the race detector, vet,
# and the benchmark smoke run.
verify: build test race vet bench-smoke

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
