GO ?= go

.PHONY: build test race vet verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# verify runs the tier-1 gate (build + test) plus the race detector and vet.
verify: build test race vet

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
