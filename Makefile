GO ?= go

.PHONY: build test race vet verify bench bench-smoke bench-json bench-json-smoke fault-smoke bench-json-pr5 workload-smoke bench-json-pr6 verify-smp bench-json-pr7 bench-json-pr8 replay-smoke bench-json-pr9 crash-smoke bench-json-pr10

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench-smoke proves the pipelined-RFS benchmark still runs (one iteration,
# no timing claims) so a protocol change cannot silently rot it, and pins
# the SMP scheduler's per-pass allocation budget (steady-state passes must
# not allocate; see TestSMPStepAllocBudget).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkRFSPipelined' -benchtime 1x .
	$(GO) test -count=1 -run 'TestSMPStepAllocBudget' .

# bench-json records the key memory-pipeline and /proc benchmarks as JSON:
# one run under the NoTLB reference interpreter labeled "before", one with
# the translation fast path labeled "after", merged into BENCH_PR3.json.
bench-json:
	REPRO_NOTLB=1 $(GO) run ./cmd/benchjson -label before -o BENCH_PR3.json
	$(GO) run ./cmd/benchjson -label after -o BENCH_PR3.json

# bench-json-smoke proves the benchjson harness still runs and parses (one
# iteration per benchmark, results to stdout only).
bench-json-smoke:
	$(GO) run ./cmd/benchjson -benchtime 1x -o ''

# fault-smoke is the short fault-injection matrix: every site armed through
# /procx/faults, errnos checked, a seeded storm with the kernel-wide
# invariant checker after every injected fault — all under the race detector.
fault-smoke:
	$(GO) test -race -short -count=1 -run 'TestFaultMatrix|TestFaultStorm|TestFaultPlanDeterminism' .

# bench-json-pr5 records the same benchmark set with the fault sites compiled
# in but disarmed, as BENCH_PR5.json; compare BenchmarkKernelStep against the
# "after" label in BENCH_PR3.json to confirm the disabled-site cost is noise.
bench-json-pr5:
	$(GO) run ./cmd/benchjson -label after -o BENCH_PR5.json

# workload-smoke runs every macro scenario at smoke size plus the seeded
# determinism replay: same seed, bit-identical trace and process table.
workload-smoke:
	$(GO) test -count=1 -run 'TestWorkload' ./internal/workload/

# bench-json-pr6 records the macro-workload suite as BENCH_PR6.json: the
# latency percentiles of every scenario, with the /proc scan at a
# 1000-process population in both modes — batched PIOCSNAP ("batched") and
# the per-pid protocol ("legacy") — plus the micro benchmark set under the
# same "after" label for continuity with BENCH_PR3/BENCH_PR5.
bench-json-pr6:
	$(GO) run ./cmd/benchjson -label after -o BENCH_PR6.json
	$(GO) run ./cmd/benchjson -workload . -wseed 1 -label after -o BENCH_PR6.json

# verify-smp exercises the SMP scheduler under the race detector: the
# shootdown-barrier mechanics, the fork/wait/signal storm and brk-shootdown
# programs at NCPU=4, every workload scenario at NCPU=4 with the worker
# goroutine-leak check, host-side /proc controllers racing the scheduler,
# and the mutex-contention profile smoke (the global lock's share of
# sampled wait time stays under budget). The kernel and SMP suites then
# run again under -tags lockdebug, which panics on any out-of-order lock
# acquisition. GOMAXPROCS is forced up so worker goroutines genuinely
# interleave even on small hosts.
verify-smp:
	GOMAXPROCS=4 $(GO) test -race -count=1 -run 'TestShootdownBarrier|TestDeterministicModeHasNoSMP' ./internal/kernel/
	GOMAXPROCS=4 $(GO) test -race -count=1 -run 'TestSMP' .
	GOMAXPROCS=4 $(GO) test -race -count=1 -run 'TestWorkloadSMPSmoke' ./internal/workload/
	GOMAXPROCS=4 $(GO) test -race -count=1 -run 'TestConcurrentControllers' ./internal/procfs/
	GOMAXPROCS=4 $(GO) test -race -count=1 -run 'TestSMPMutexContentionSmoke' .
	GOMAXPROCS=4 $(GO) test -tags lockdebug -count=1 ./internal/kernel/
	GOMAXPROCS=4 $(GO) test -tags lockdebug -count=1 -run 'TestSMP|TestConcurrentControllers' . ./internal/procfs/

# bench-json-pr7 records the SMP scaling numbers as BENCH_PR7.json: the
# KernelStep scaling curve across NCPU=1/2/4/8 (host_cpus records how many
# cores the host actually had), plus the fork_storm and syscall_mill macro
# scenarios on the deterministic scheduler ("det") and at NCPU=4 ("smp4").
bench-json-pr7:
	$(GO) run ./cmd/benchjson -bench 'BenchmarkKernelStepSMP' -label after -o BENCH_PR7.json
	$(GO) run ./cmd/benchjson -workload 'fork_storm|syscall_mill' -wseed 1 -label det -o BENCH_PR7.json
	$(GO) run ./cmd/benchjson -workload 'fork_storm|syscall_mill' -wseed 1 -ncpu 4 -label smp4 -o BENCH_PR7.json

# bench-json-pr8 records the fine-grained-locking rework as BENCH_PR8.json:
# the KernelStepSMP scaling curve (allocs/op must stay within the per-pass
# budget at every width; host_cpus and gomaxprocs record what the host
# could actually parallelize) and the fork_storm / syscall_mill scenarios
# at NCPU=4. The "before"/"before-smp4" labels in the same file were
# recorded at the big-kernel-lock parent commit; compare against
# "after"/"after-smp4".
bench-json-pr8:
	$(GO) run ./cmd/benchjson -bench 'BenchmarkKernelStepSMP' -label after -o BENCH_PR8.json
	$(GO) run ./cmd/benchjson -workload 'fork_storm|syscall_mill' -wseed 1 -ncpu 4 -label after-smp4 -o BENCH_PR8.json

# replay-smoke is the record/replay gate: the fault-storm soak records,
# replays bit-identically with per-event divergence checking, and the dbg
# time-travel REPL reverse-continues to the injected fault and reverse-steps
# through its neighborhood. REPRO_CKPT sets the checkpoint interval in
# scheduler passes (smaller = cheaper reverse motion, more snapshot memory).
replay-smoke:
	$(GO) test -count=1 -run 'TestRecordReplayBitIdentical|TestReplaySmoke' ./internal/replay/
	$(GO) run ./cmd/dbg -record .replay-smoke.rec
	printf 'i\nb fault\nc\nrc\nrs\nrs\nev 5\nps\nq\n' | REPRO_CKPT=16 $(GO) run ./cmd/dbg -replay .replay-smoke.rec
	rm -f .replay-smoke.rec

# bench-json-pr9 records the record/replay overhead as BENCH_PR9.json:
# BenchmarkKernelStepRecorded (tracing plus the recorder tap) against
# BenchmarkKernelStepTraced from the PR 1 tracing baseline.
bench-json-pr9:
	$(GO) run ./cmd/benchjson -bench 'BenchmarkKernelStep(Traced|Recorded)$$' -label after -o BENCH_PR9.json

# crash-smoke is the crash-consistency gate: the every-ordinal crash storm
# and the EIO matrix under the race detector (-short trims the storm to one
# seed), then one real-binary pass — format a file-backed image, kill it at
# a seeded write ordinal, and prove fsck mounts it, replays the journal and
# finds a clean image.
crash-smoke:
	$(GO) test -race -short -count=1 -run 'TestCrashStorm|TestCrashDuringCheckpoint|TestEIO' ./internal/blockfs/
	$(GO) run ./cmd/bfs -img .crash-smoke.img mkfs -blocks 1024
	$(GO) run ./cmd/bfs -img .crash-smoke.img crash -seed 7 -ops 40
	$(GO) run ./cmd/bfs -img .crash-smoke.img fsck
	rm -f .crash-smoke.img

# bench-json-pr10 records the persistent-filesystem benchmarks as
# BENCH_PR10.json: the journaled write path and the buffer-cache read hit.
bench-json-pr10:
	$(GO) run ./cmd/benchjson -bench 'BenchmarkBlockFS' -label after -o BENCH_PR10.json

# verify runs the tier-1 gate (build + test) plus the race detector, vet,
# the fault-matrix smoke, the workload smoke, the SMP race suite, the
# record/replay smoke, the crash-consistency smoke, and the benchmark smoke
# runs.
verify: build test race vet fault-smoke workload-smoke verify-smp replay-smoke crash-smoke bench-smoke bench-json-smoke

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
