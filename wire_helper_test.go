package repro_test

import (
	"repro/internal/kernel"
	"repro/internal/procfs2"
)

func decodeStatus(b []byte) (kernel.ProcStatus, error) {
	return procfs2.DecodeStatus(b)
}
