//go:build lockdebug

package repro_test

// lockDebugEnabled reports whether the lock-order assertions are compiled
// in; allocation budgets are skipped under them (the per-goroutine held-rank
// bookkeeping allocates on every acquire).
const lockDebugEnabled = true
