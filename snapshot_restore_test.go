package repro_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/types"
)

// snapBoot boots a deterministic system with tracing on and the family
// workload mid-flight: two copies of familyProg spawned and a few passes run,
// so the checkpoint lands with forks pending, a sleeper queued and a fault on
// the way — the interesting case for restore.
func snapBoot(t *testing.T) (*repro.System, []*kernel.Proc) {
	t.Helper()
	s := repro.NewSystem(repro.Options{NCPU: 1})
	s.K.EnableKTraceAll(1 << 20)
	if err := s.Install("/bin/family", familyProg, 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	var procs []*kernel.Proc
	for i := 0; i < 2; i++ {
		p, err := s.Spawn("/bin/family", []string{fmt.Sprintf("family%d", i)},
			types.UserCred(100+i, 10))
		if err != nil {
			t.Fatal(err)
		}
		procs = append(procs, p)
	}
	s.Run(5)
	for _, p := range procs {
		if !p.Alive() {
			t.Fatal("family exited before the checkpoint")
		}
	}
	return s, procs
}

// tableDump renders the process table deterministically: one line per
// process in table order.
func tableDump(s *repro.System) []byte {
	var b bytes.Buffer
	for _, p := range s.K.Procs() {
		fmt.Fprintf(&b, "%d %d %q state=%d exit=%d vsz=%d sys=%d flt=%d sig=%d\n",
			p.Pid, p.PPid(), p.Comm, p.State(), p.ExitStatus,
			p.VirtSize(), p.Usage.Syscalls, p.Usage.Faults, p.Usage.Signals)
	}
	return b.Bytes()
}

// finishFamily drains the workload and returns everything the run produced:
// the kernel-wide trace, the counters page, the final table and the clock.
func finishFamily(t *testing.T, s *repro.System, procs []*kernel.Proc) (global, stats, table []byte, clock int64) {
	t.Helper()
	for i, p := range procs {
		if _, err := s.WaitExit(p); err != nil {
			t.Fatalf("family %d stuck: %v", i, err)
		}
	}
	global = readProcFile(t, s, "/procx/trace")
	stats = readProcFile(t, s, "/procx/ktrace")
	return global, stats, tableDump(s), s.K.Now()
}

// TestSnapshotRestoreDeterminism checkpoints a run mid-flight, lets it finish,
// rewinds to the checkpoint and re-runs it — twice, because a snapshot must
// stay reusable — demanding a bit-identical trace stream, counters page,
// final process table and clock every time.
func TestSnapshotRestoreDeterminism(t *testing.T) {
	s, procs := snapBoot(t)

	sn, err := s.K.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	fsSt := s.FS.SaveState()

	g1, st1, tb1, clk1 := finishFamily(t, s, procs)

	for round := 1; round <= 2; round++ {
		if err := s.K.Restore(sn); err != nil {
			t.Fatalf("restore %d: %v", round, err)
		}
		s.FS.RestoreState(fsSt)
		if err := s.K.CheckRestored(); err != nil {
			t.Fatalf("restore %d: %v", round, err)
		}
		if err := s.K.CheckInvariants(); err != nil {
			t.Fatalf("restore %d invariants: %v", round, err)
		}
		for _, p := range procs {
			if !p.Alive() {
				t.Fatalf("restore %d: family not revived", round)
			}
		}
		g2, st2, tb2, clk2 := finishFamily(t, s, procs)
		if !bytes.Equal(g1, g2) {
			t.Errorf("restore %d: trace streams differ: %d vs %d bytes", round, len(g1), len(g2))
		}
		if !bytes.Equal(st1, st2) {
			t.Errorf("restore %d: counters pages differ", round)
		}
		if !bytes.Equal(tb1, tb2) {
			t.Errorf("restore %d: final tables differ:\n%s\nvs\n%s", round, tb1, tb2)
		}
		if clk1 != clk2 {
			t.Errorf("restore %d: final clocks differ: %d vs %d", round, clk1, clk2)
		}
	}

	if len(g1) == 0 || len(tb1) == 0 {
		t.Fatal("empty run products; the comparison proves nothing")
	}
}

// TestSnapshotRestoresFiles verifies the memfs half of a checkpoint: a file
// written after the snapshot is rewound to its checkpoint contents, and one
// deleted after the snapshot comes back.
func TestSnapshotRestoresFiles(t *testing.T) {
	s, _ := snapBoot(t)
	if err := s.FS.WriteFile("/tmp/keep", []byte("before"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	sn, err := s.K.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fsSt := s.FS.SaveState()

	if err := s.FS.WriteFile("/tmp/keep", []byte("after: longer contents"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.FS.WriteFile("/tmp/fresh", []byte("post-checkpoint"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}

	if err := s.K.Restore(sn); err != nil {
		t.Fatal(err)
	}
	s.FS.RestoreState(fsSt)
	got, err := s.Client(types.RootCred()).ReadFile("/tmp/keep")
	if err != nil {
		t.Fatalf("restored file: %v", err)
	}
	if string(got) != "before" {
		t.Fatalf("restored contents %q, want %q", got, "before")
	}
	if _, err := s.Client(types.RootCred()).ReadFile("/tmp/fresh"); err == nil {
		t.Fatal("post-checkpoint file survived the rewind")
	}
}

// TestSnapshotRefusesSMP pins the deterministic-only contract.
func TestSnapshotRefusesSMP(t *testing.T) {
	s := repro.NewSystem(repro.Options{NCPU: 2})
	defer s.Close()
	if _, err := s.K.Snapshot(); err != kernel.ErrSnapshotSMP {
		t.Fatalf("Snapshot on SMP kernel: err=%v, want ErrSnapshotSMP", err)
	}
	if err := s.K.Restore(&kernel.Snapshot{}); err != kernel.ErrSnapshotSMP {
		t.Fatalf("Restore on SMP kernel: err=%v, want ErrSnapshotSMP", err)
	}
}
