package blockfs

import (
	"errors"
	"sort"

	"repro/internal/vfs"
)

// DefaultCacheSlots bounds the buffer cache; eviction starts when every slot
// is occupied. It comfortably exceeds the pin load of the largest
// transaction (maxTxBlocks) plus the handful of transient per-op pins.
const DefaultCacheSlots = 128

// minCacheSlots is the floor newCache enforces: a single write transaction
// pins up to maxWriteZones data buffers plus the inode, bitmap and indirect
// buffers it touches, and the cache must always have room for the largest
// transaction or a legal operation could die on errCacheBusy.
const minCacheSlots = 64

// errCacheBusy reports that every slot is pinned — a programming error, not
// an I/O condition, so it is distinct from the vfs sentinels.
var errCacheBusy = errors.New("blockfs: buffer cache exhausted (all slots pinned)")

// cbuf is one cached block. pins counts reasons the buffer must stay in the
// cache: transient per-operation holds plus one pin per open transaction
// that modified it. A dirty buffer with an uncommitted modification is
// always pinned, which is the mechanism that keeps uncommitted data off the
// device: eviction only ever writes back unpinned buffers, and by then the
// journal has the block's committed image.
type cbuf struct {
	no    uint32
	data  []byte
	dirty bool
	pins  int

	prev, next *cbuf // LRU list; head is most recently used
}

// cache is the LRU write-back buffer cache. It is not internally locked:
// every caller holds FS.mu.
type cache struct {
	dev   Dev
	slots int
	m     map[uint32]*cbuf
	head  *cbuf
	tail  *cbuf
}

func newCache(dev Dev, slots int) *cache {
	if slots <= 0 {
		slots = DefaultCacheSlots
	}
	if slots < minCacheSlots {
		slots = minCacheSlots
	}
	return &cache{dev: dev, slots: slots, m: make(map[uint32]*cbuf, slots)}
}

func (c *cache) unlink(b *cbuf) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		c.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		c.tail = b.prev
	}
	b.prev, b.next = nil, nil
}

func (c *cache) pushFront(b *cbuf) {
	b.next = c.head
	if c.head != nil {
		c.head.prev = b
	}
	c.head = b
	if c.tail == nil {
		c.tail = b
	}
}

// get returns the buffer for block no with one pin added; callers release it
// with put. fill=false skips the device read for blocks about to be fully
// overwritten (freshly allocated zones) and returns a zeroed buffer — which
// is also the zero-fill a grown file's unwritten tail must read as.
func (c *cache) get(no uint32, fill bool) (*cbuf, error) {
	if b, ok := c.m[no]; ok {
		b.pins++
		c.unlink(b)
		c.pushFront(b)
		return b, nil
	}
	if len(c.m) >= c.slots {
		if err := c.evictOne(); err != nil {
			return nil, err
		}
	}
	b := &cbuf{no: no, data: make([]byte, BlockSize)}
	if fill {
		if siteRead.Hit(0) {
			return nil, vfs.ErrIO
		}
		if err := c.dev.ReadBlock(no, b.data); err != nil {
			return nil, err
		}
	}
	b.pins = 1
	c.m[no] = b
	c.pushFront(b)
	return b, nil
}

// put drops one pin.
func (c *cache) put(b *cbuf) { b.pins-- }

// writeBack pushes one dirty buffer home through the blockfs.write site.
func (c *cache) writeBack(b *cbuf) error {
	if siteWrite.Hit(0) {
		return vfs.ErrIO
	}
	if err := c.dev.WriteBlock(b.no, b.data); err != nil {
		return err
	}
	b.dirty = false
	return nil
}

// evictOne frees the least-recently-used unpinned slot, writing it back
// first if dirty. Only committed data can reach this path (uncommitted
// modifications hold a transaction pin).
func (c *cache) evictOne() error {
	for b := c.tail; b != nil; b = b.prev {
		if b.pins > 0 {
			continue
		}
		if b.dirty {
			if err := c.writeBack(b); err != nil {
				return err
			}
		}
		c.unlink(b)
		delete(c.m, b.no)
		return nil
	}
	return errCacheBusy
}

// flushAll writes every dirty buffer home in ascending block order — sorted
// so the device-write ordinal sequence (the crash storm's clock) is a pure
// function of the cache contents, not map iteration order.
func (c *cache) flushAll() error {
	var nos []uint32
	for no, b := range c.m {
		if b.dirty {
			nos = append(nos, no)
		}
	}
	sort.Slice(nos, func(i, j int) bool { return nos[i] < nos[j] })
	for _, no := range nos {
		if err := c.writeBack(c.m[no]); err != nil {
			return err
		}
	}
	return nil
}

// dirtyCount reports how many buffers await write-back (test visibility).
func (c *cache) dirtyCount() int {
	n := 0
	for _, b := range c.m {
		if b.dirty {
			n++
		}
	}
	return n
}
