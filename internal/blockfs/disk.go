// Package blockfs is the persistent file system type of the simulated
// system: a block-device file system in the classic minix mould —
// superblock, inode and zone bitmaps, a fixed inode table, directories as
// arrays of fixed-size entries — fronted by an LRU write-back buffer cache
// and made crash-consistent by a physical redo journal (write-ahead block
// images, a commit marker, idempotent replay on mount). Its root mounts
// through vfs alongside memfs and /proc; its I/O choke points are fault
// sites in the Default registry, and a dedicated blockfs.crash site turns
// any device write ordinal into a deterministic power-loss point (CrashDev),
// which is what the crash-recovery storm enumerates.
package blockfs

import (
	"encoding/binary"
	"errors"
	"strings"
)

// Geometry. Everything is in BlockSize units; zone numbers stored in inodes
// are absolute block numbers (0 = unallocated), so there is no separate zone
// addressing to translate.
const (
	BlockSize  = 1024
	InodeSize  = 128
	DirentSize = 64
	// NameMax leaves room for the 4-byte ino and a NUL in a 64-byte entry.
	NameMax = 59
	// NDirect direct zones plus one indirect block of 4-byte pointers.
	NDirect      = 10
	ptrsPerBlock = BlockSize / 4
	// MaxFileSize is the deepest a file can go: direct plus single-indirect.
	MaxFileSize     = (NDirect + ptrsPerBlock) * BlockSize
	inodesPerBlock  = BlockSize / InodeSize
	bitsPerBlock    = BlockSize * 8
	direntsPerBlock = BlockSize / DirentSize

	// RootIno is the root directory's inode number; ino 0 is the "no inode"
	// sentinel and its bitmap bit is permanently set.
	RootIno = 1

	sbMagic      = 0x42465331 // "BFS1"
	jMagic       = 0x42464a31 // "BFJ1"
	jDescMagic   = 0x4a445343 // "JDSC"
	jCommitMagic = 0x4a434d54 // "JCMT"

	// maxTxBlocks caps how many distinct blocks one transaction may touch; a
	// descriptor block indexes up to (BlockSize-28)/8 = 124 images, and the
	// write path chunks itself well under that (see maxWriteZones).
	maxTxBlocks = 124
	// journalReserve is the begin-transaction watermark: when fewer journal
	// blocks remain, the transaction is preceded by a checkpoint. It must
	// exceed the largest possible transaction (maxWriteZones data blocks
	// plus a handful of bitmap/inode/indirect blocks plus desc+commit).
	journalReserve = 48
	// maxWriteZones caps the data zones one write transaction touches;
	// larger writes are split into multiple transactions.
	maxWriteZones = 32
)

// File types stored in the inode.
const (
	typeFree = 0
	typeReg  = 1
	typeDir  = 2
)

// ErrCorrupt reports on-disk state the mount or fsck code refuses to trust.
var ErrCorrupt = errors.New("blockfs: corrupt file system")

// super is the decoded superblock: the layout of the five on-disk regions.
//
//	block 0              superblock
//	ibmStart..+ibmBlocks inode bitmap (bit = ino; bit 0 reserved)
//	zbmStart..+zbmBlocks zone bitmap  (bit i = block dataStart+i)
//	itStart..+itBlocks   inode table  (8 inodes per block, ino 1 first)
//	jStart..+jBlocks     journal      (header block, then records)
//	dataStart..nblocks   data zones
type super struct {
	nblocks   uint32
	ninodes   uint32
	ibmStart  uint32
	ibmBlocks uint32
	zbmStart  uint32
	zbmBlocks uint32
	itStart   uint32
	itBlocks  uint32
	jStart    uint32
	jBlocks   uint32
	dataStart uint32
}

func le32(p []byte, off int) uint32     { return binary.LittleEndian.Uint32(p[off:]) }
func le64(p []byte, off int) uint64     { return binary.LittleEndian.Uint64(p[off:]) }
func put32(p []byte, off int, v uint32) { binary.LittleEndian.PutUint32(p[off:], v) }
func put64(p []byte, off int, v uint64) { binary.LittleEndian.PutUint64(p[off:], v) }

func (sb *super) encode() []byte {
	p := make([]byte, BlockSize)
	put32(p, 0, sbMagic)
	for i, v := range []uint32{
		sb.nblocks, sb.ninodes,
		sb.ibmStart, sb.ibmBlocks, sb.zbmStart, sb.zbmBlocks,
		sb.itStart, sb.itBlocks, sb.jStart, sb.jBlocks, sb.dataStart,
	} {
		put32(p, 4+4*i, v)
	}
	return p
}

func decodeSuper(p []byte) (super, error) {
	if le32(p, 0) != sbMagic {
		return super{}, ErrCorrupt
	}
	var f [11]uint32
	for i := range f {
		f[i] = le32(p, 4+4*i)
	}
	sb := super{
		nblocks: f[0], ninodes: f[1],
		ibmStart: f[2], ibmBlocks: f[3], zbmStart: f[4], zbmBlocks: f[5],
		itStart: f[6], itBlocks: f[7], jStart: f[8], jBlocks: f[9], dataStart: f[10],
	}
	// The regions must tile [1, dataStart) in order and leave data room;
	// a superblock that fails this is corrupt, not merely unusual.
	ok := sb.ibmStart == 1 &&
		sb.zbmStart == sb.ibmStart+sb.ibmBlocks &&
		sb.itStart == sb.zbmStart+sb.zbmBlocks &&
		sb.jStart == sb.itStart+sb.itBlocks &&
		sb.dataStart == sb.jStart+sb.jBlocks &&
		sb.dataStart < sb.nblocks &&
		sb.jBlocks >= journalReserve+2 &&
		sb.ninodes >= 1 &&
		sb.itBlocks == (sb.ninodes+inodesPerBlock-1)/inodesPerBlock
	if !ok {
		return super{}, ErrCorrupt
	}
	return sb, nil
}

// layout computes the region layout for a device of nblocks blocks.
func layout(nblocks, ninodes uint32) (super, error) {
	if ninodes == 0 {
		ninodes = nblocks / 8
		if ninodes < 32 {
			ninodes = 32
		}
	}
	sb := super{nblocks: nblocks, ninodes: ninodes}
	sb.ibmStart = 1
	sb.ibmBlocks = (ninodes + 1 + bitsPerBlock - 1) / bitsPerBlock
	sb.itBlocks = (ninodes + inodesPerBlock - 1) / inodesPerBlock
	sb.jBlocks = nblocks / 16
	if sb.jBlocks < 64 {
		sb.jBlocks = 64
	}
	// The zone bitmap's size depends on how many data blocks remain, which
	// depends on its own size; one block of slack per iteration converges.
	sb.zbmBlocks = 1
	for {
		sb.zbmStart = sb.ibmStart + sb.ibmBlocks
		sb.itStart = sb.zbmStart + sb.zbmBlocks
		sb.jStart = sb.itStart + sb.itBlocks
		sb.dataStart = sb.jStart + sb.jBlocks
		if sb.dataStart >= nblocks {
			return super{}, errors.New("blockfs: device too small for layout")
		}
		need := (nblocks - sb.dataStart + bitsPerBlock - 1) / bitsPerBlock
		if need <= sb.zbmBlocks {
			return sb, nil
		}
		sb.zbmBlocks = need
	}
}

// dinode is a decoded on-disk inode.
type dinode struct {
	typ   uint16
	mode  uint16
	nlink uint32
	uid   int32
	gid   int32
	size  uint64
	mtime uint64
	zones [NDirect]uint32
	ind   uint32 // single-indirect block, 0 if none
}

func encodeInode(p []byte, di dinode) {
	for i := range p[:InodeSize] {
		p[i] = 0
	}
	binary.LittleEndian.PutUint16(p[0:], di.typ)
	binary.LittleEndian.PutUint16(p[2:], di.mode)
	put32(p, 4, di.nlink)
	put32(p, 8, uint32(di.uid))
	put32(p, 12, uint32(di.gid))
	put64(p, 16, di.size)
	put64(p, 24, di.mtime)
	for i, z := range di.zones {
		put32(p, 32+4*i, z)
	}
	put32(p, 32+4*NDirect, di.ind)
}

func decodeInode(p []byte) dinode {
	var di dinode
	di.typ = binary.LittleEndian.Uint16(p[0:])
	di.mode = binary.LittleEndian.Uint16(p[2:])
	di.nlink = le32(p, 4)
	di.uid = int32(le32(p, 8))
	di.gid = int32(le32(p, 12))
	di.size = le64(p, 16)
	di.mtime = le64(p, 24)
	for i := range di.zones {
		di.zones[i] = le32(p, 32+4*i)
	}
	di.ind = le32(p, 32+4*NDirect)
	return di
}

// encodeDirent fills one 64-byte slot: ino then the NUL-padded name.
func encodeDirent(p []byte, ino uint32, name string) {
	for i := range p[:DirentSize] {
		p[i] = 0
	}
	put32(p, 0, ino)
	copy(p[4:DirentSize], name)
}

// decodeDirent reads one slot; ino 0 means the slot is free.
func decodeDirent(p []byte) (uint32, string) {
	ino := le32(p, 0)
	name := string(p[4:DirentSize])
	if i := strings.IndexByte(name, 0); i >= 0 {
		name = name[:i]
	}
	return ino, name
}

// validName rejects names that cannot be stored or would alias path syntax.
func validName(name string) bool {
	if name == "" || name == "." || name == ".." || len(name) > NameMax {
		return false
	}
	return !strings.ContainsAny(name, "/\x00")
}

// IsFormatted reports whether dev carries a blockfs superblock.
func IsFormatted(dev Dev) (bool, error) {
	p := make([]byte, BlockSize)
	if err := dev.ReadBlock(0, p); err != nil {
		return false, err
	}
	return le32(p, 0) == sbMagic, nil
}

// Mkfs writes a fresh file system onto dev: computed layout, cleared
// bitmaps (with ino 0 reserved and the root inode allocated), an empty root
// directory, and an empty journal at epoch 1. ninodes 0 picks a default
// proportional to the device.
func Mkfs(dev Dev, ninodes uint32) error {
	sb, err := layout(dev.Blocks(), ninodes)
	if err != nil {
		return err
	}
	zero := make([]byte, BlockSize)
	for no := uint32(1); no < sb.dataStart; no++ {
		if err := dev.WriteBlock(no, zero); err != nil {
			return err
		}
	}
	if err := dev.WriteBlock(0, sb.encode()); err != nil {
		return err
	}
	// Inode bitmap: ino 0 reserved, root allocated.
	bm := make([]byte, BlockSize)
	bm[0] = 0b11
	if err := dev.WriteBlock(sb.ibmStart, bm); err != nil {
		return err
	}
	// Root inode: an empty directory.
	it := make([]byte, BlockSize)
	encodeInode(it[(RootIno-1)%inodesPerBlock*InodeSize:], dinode{
		typ: typeDir, mode: 0o755, nlink: 1,
	})
	if err := dev.WriteBlock(sb.itStart+(RootIno-1)/inodesPerBlock, it); err != nil {
		return err
	}
	// Journal header: epoch 1, no records.
	hdr := make([]byte, BlockSize)
	put32(hdr, 0, jMagic)
	put64(hdr, 4, 1)
	if err := dev.WriteBlock(sb.jStart, hdr); err != nil {
		return err
	}
	return dev.Sync()
}
