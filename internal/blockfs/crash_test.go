package blockfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/vfs"
)

// The crash-recovery storm. A golden run over a CrashDev counts W, the total
// number of device-write ordinals the workload produces (journal records,
// commit blocks, checkpoint flushes — every WriteBlock). Then, for every
// ordinal k in 1..W, the same deterministic workload replays on a fresh image
// with the blockfs.crash site armed to fire on the kth write: the write is
// lost, the device dies, and whatever the workload had not committed is gone.
// The raw image is then remounted (running journal replay) and held to the
// oracle:
//
//   - Fsck reports zero violations, and
//   - the tree equals exactly the model built from the ops that returned
//     success before the crash — no lost committed data, no resurrected
//     uncommitted data.
//
// The equality is exact in both directions because an operation only returns
// success after its commit block reached the device, and a fired write never
// reaches the device — so op-level success and transaction durability
// coincide at every crash point.

// fsOp is one deterministic workload step.
type fsOp struct {
	kind string // "write", "append", "unlink", "sync"
	dir  string // "" for the root, "sub" for the subdirectory
	name string
	size int
	seed int64
}

// makeOps builds the deterministic op list for a seed. Write sizes stay
// within one transaction chunk (maxWriteZones zones), so every write is
// all-or-nothing and the model needs no partial-write cases.
func makeOps(seed int64, n int) []fsOp {
	r := rand.New(rand.NewSource(seed))
	ops := make([]fsOp, 0, n)
	for i := 0; i < n; i++ {
		var op fsOp
		switch k := r.Intn(10); {
		case k < 4:
			op = fsOp{kind: "write", size: 1 + r.Intn(4*BlockSize)}
		case k < 5:
			// Occasionally large enough to need the indirect block.
			op = fsOp{kind: "write", size: (NDirect + 2 + r.Intn(4)) * BlockSize}
		case k < 7:
			op = fsOp{kind: "append", size: 1 + r.Intn(2*BlockSize)}
		case k < 9:
			op = fsOp{kind: "unlink"}
		default:
			op = fsOp{kind: "sync"}
		}
		if r.Intn(3) == 0 {
			op.dir = "sub"
		}
		op.name = fmt.Sprintf("f%d", r.Intn(6))
		op.seed = int64(r.Int63())
		ops = append(ops, op)
	}
	return ops
}

// opDir resolves the directory an op works in, creating "sub" on first use.
// The model marks the directory's existence under the key "sub/" so crash
// replays agree on whether mkdir committed.
func opDir(fs *FS, op fsOp, model map[string][]byte) (vfs.Dir, string, error) {
	root := fs.Root()
	if op.dir == "" {
		return root, "", nil
	}
	if _, ok := model["sub/"]; ok {
		vn, err := root.VLookup("sub", testCred)
		if err != nil {
			return nil, "", err
		}
		return vn.(vfs.Dir), "sub/", nil
	}
	d, err := root.(vfs.DirWriter).VMkdir("sub", 0o755, testCred)
	if err != nil {
		return nil, "", err
	}
	model["sub/"] = nil
	return d, "sub/", nil
}

// doOp applies one op, updating model exactly at each sub-step that
// succeeded. Returning an error means the failing sub-step changed nothing
// durable (transactions roll back; a lost commit write is not durable).
func doOp(fs *FS, op fsOp, model map[string][]byte) error {
	if op.kind == "sync" {
		return fs.Sync()
	}
	d, prefix, err := opDir(fs, op, model)
	if err != nil {
		return err
	}
	path := prefix + op.name
	switch op.kind {
	case "write", "append":
		_, exists := model[path]
		if !exists {
			if _, err := d.(vfs.DirWriter).VCreate(op.name, 0o644, testCred); err != nil {
				return err
			}
			model[path] = []byte{}
		}
		vn, err := d.VLookup(op.name, testCred)
		if err != nil {
			return err
		}
		flags := vfs.OWrite
		off := int64(0)
		if op.kind == "write" {
			flags |= vfs.OTrunc
		} else {
			off = int64(len(model[path]))
		}
		h, err := vn.VOpen(flags, testCred)
		if err != nil {
			return err
		}
		defer h.HClose()
		if op.kind == "write" {
			// The open's truncation transaction committed.
			model[path] = []byte{}
		}
		data := pattern(op.seed, op.size)
		if _, err := h.HWrite(data, off); err != nil {
			return err
		}
		model[path] = append(append([]byte{}, model[path]...), data...)
		return nil
	case "unlink":
		if err := d.(vfs.DirWriter).VRemove(op.name, testCred); err != nil {
			return err
		}
		delete(model, path)
		return nil
	}
	panic("unknown op " + op.kind)
}

// runOps drives ops until the device dies, returning the model of everything
// that committed. Non-crash errors (ENOSPC on a full device) skip the op.
func runOps(t *testing.T, fs *FS, ops []fsOp) map[string][]byte {
	t.Helper()
	model := map[string][]byte{}
	for _, op := range ops {
		err := doOp(fs, op, model)
		if errors.Is(err, ErrCrashed) {
			break
		}
		if err != nil && !errors.Is(err, vfs.ErrNoSpace) && !errors.Is(err, vfs.ErrNotExist) {
			t.Fatalf("op %+v: unexpected error %v", op, err)
		}
	}
	return model
}

// checkAgainstModel remounts the raw device and holds it to the oracle.
func checkAgainstModel(t *testing.T, dev Dev, model map[string][]byte, ctx string) {
	t.Helper()
	fs, err := Mount(dev)
	if err != nil {
		t.Fatalf("%s: recovery mount: %v", ctx, err)
	}
	mustCleanFsck(t, fs, ctx)
	got := dumpTree(t, fs)
	for p, want := range model {
		if p == "sub/" {
			if _, err := fs.Root().VLookup("sub", testCred); err != nil {
				t.Fatalf("%s: committed dir sub missing: %v", ctx, err)
			}
			continue
		}
		g, ok := got[p]
		if !ok {
			t.Fatalf("%s: committed file %q lost (have %v)", ctx, p, keysOf(got))
		}
		if !bytes.Equal(g, want) {
			t.Fatalf("%s: file %q: %d bytes on disk, want %d", ctx, p, len(g), len(want))
		}
	}
	for p := range got {
		if _, ok := model[p]; !ok {
			t.Fatalf("%s: uncommitted file %q resurrected", ctx, p)
		}
	}
}

// stormSetup formats a fresh image and mounts it through a CrashDev.
func stormSetup(t *testing.T, nblocks uint32) (*FS, *CrashDev, *MemDev) {
	t.Helper()
	raw := NewMemDev(nblocks)
	if err := Mkfs(raw, 0); err != nil {
		t.Fatalf("Mkfs: %v", err)
	}
	cd := NewCrashDev(raw)
	fs, err := Mount(cd, MountOptions{CacheSlots: 32})
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	return fs, cd, raw
}

func TestCrashStormEveryOrdinal(t *testing.T) {
	seeds := []int64{42, 1991}
	nOps := 40
	if testing.Short() {
		seeds = seeds[:1]
		nOps = 16
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			fault.Guard(t)
			ops := makeOps(seed, nOps)

			// Golden run: no crash, count the write ordinals.
			fs, cd, raw := stormSetup(t, 1024)
			golden := runOps(t, fs, ops)
			if cd.Dead() {
				t.Fatalf("golden run crashed with no armed site")
			}
			if err := fs.Sync(); err != nil {
				t.Fatalf("golden sync: %v", err)
			}
			w := cd.Writes()
			if w < uint64(nOps) {
				t.Fatalf("golden run made only %d writes", w)
			}
			checkAgainstModel(t, raw, golden, "golden")
			t.Logf("golden: %d ops -> %d write ordinals, %d files", len(ops), w, len(golden))

			// The storm: crash at every ordinal.
			for k := uint64(1); k <= w; k++ {
				fs, cd, raw := stormSetup(t, 1024)
				siteCrash.Arm(fault.Spec{Nth: k})
				model := runOps(t, fs, ops)
				siteCrash.Disarm()
				if !cd.Dead() {
					// The workload finished before ordinal k (its own write
					// count shrinks as crashes change op outcomes upstream —
					// only the golden count is exactly w).
					if err := fs.Sync(); err != nil && !errors.Is(err, ErrCrashed) {
						t.Fatalf("k=%d: post-storm sync: %v", k, err)
					}
				}

				// Crash the recovery too: replay on a dying device at a
				// varying ordinal, then recover for real. Replay is
				// idempotent, so the interrupted attempt must not change
				// what the final mount recovers.
				rcd := NewCrashDev(raw)
				siteCrash.Arm(fault.Spec{Nth: 1 + k%5})
				if _, err := Mount(rcd); err != nil && !errors.Is(err, ErrCrashed) {
					t.Fatalf("k=%d: interrupted recovery mount: %v", k, err)
				}
				siteCrash.Disarm()

				checkAgainstModel(t, raw, model, fmt.Sprintf("k=%d", k))
			}

			// Determinism: replaying one storm point yields bit-identical
			// recovered state.
			k := w / 2
			var dumps [2]map[string][]byte
			for i := range dumps {
				fs, _, raw := stormSetup(t, 1024)
				siteCrash.Arm(fault.Spec{Nth: k})
				model := runOps(t, fs, ops)
				siteCrash.Disarm()
				checkAgainstModel(t, raw, model, fmt.Sprintf("determinism k=%d run %d", k, i))
				fs2, err := Mount(raw)
				if err != nil {
					t.Fatalf("determinism remount: %v", err)
				}
				dumps[i] = dumpTree(t, fs2)
			}
			if len(dumps[0]) != len(dumps[1]) {
				t.Fatalf("storm point k=%d not deterministic: %d vs %d files", k, len(dumps[0]), len(dumps[1]))
			}
			for p, d := range dumps[0] {
				if !bytes.Equal(d, dumps[1][p]) {
					t.Fatalf("storm point k=%d not deterministic: file %q differs", k, p)
				}
			}
		})
	}
}

// TestCrashDuringCheckpointEveryOrdinal drives the checkpoint path (sync
// after heavy dirty state) through its own storm: the flush ordering and the
// epoch-bump protocol each get killed at every write.
func TestCrashDuringCheckpointEveryOrdinal(t *testing.T) {
	fault.Guard(t)
	build := func() (*FS, *CrashDev, *MemDev, map[string][]byte) {
		fs, cd, raw := stormSetup(t, 1024)
		model := map[string][]byte{}
		for i := 0; i < 6; i++ {
			name := fmt.Sprintf("f%d", i)
			data := pattern(int64(i), 3*BlockSize)
			if err := writeFile(fs.Root(), name, data); err != nil {
				t.Fatalf("build %s: %v", name, err)
			}
			model[name] = data
		}
		return fs, cd, raw, model
	}

	// Golden: count the writes one checkpoint makes.
	fs, cd, _, _ := build()
	before := cd.Writes()
	if err := fs.Sync(); err != nil {
		t.Fatalf("golden checkpoint: %v", err)
	}
	n := cd.Writes() - before

	for k := uint64(1); k <= n; k++ {
		fs, _, raw, model := build()
		// Arming resets the plan's hit counter, so ordinal k counts only
		// writes made after this point — the checkpoint's own writes.
		siteCrash.Arm(fault.Spec{Nth: k})
		err := fs.Sync()
		siteCrash.Disarm()
		if err != nil && !errors.Is(err, ErrCrashed) {
			t.Fatalf("k=%d: checkpoint: %v", k, err)
		}
		checkAgainstModel(t, raw, model, fmt.Sprintf("checkpoint k=%d", k))
	}
}
