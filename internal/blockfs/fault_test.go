package blockfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/vfs"
)

// The EIO matrix: each blockfs fault site is armed in turn against a live
// file system and an operation that must traverse it. The op fails with
// vfs.ErrIO, the transaction rolls back, and both the in-memory state and
// the on-disk image stay exactly as they were — fsck clean, contents intact.
func TestEIOMatrixRollsBack(t *testing.T) {
	cases := []struct {
		site string
		arm  fault.Spec
		op   func(fs *FS) error
	}{
		{"blockfs.journal", fault.Spec{Nth: 1}, func(fs *FS) error {
			return writeFile(fs.Root(), "victim", pattern(50, 2*BlockSize))
		}},
		{"blockfs.journal", fault.Spec{Nth: 3}, func(fs *FS) error {
			// Deeper into the record: an image or commit-block write fails.
			return writeFile(fs.Root(), "victim", pattern(51, 3*BlockSize))
		}},
		{"blockfs.sync", fault.Spec{Nth: 1}, func(fs *FS) error {
			if err := writeFile(fs.Root(), "keep2", pattern(52, BlockSize)); err != nil {
				return err
			}
			return fs.Sync()
		}},
		{"blockfs.write", fault.Spec{Nth: 1}, func(fs *FS) error {
			if err := writeFile(fs.Root(), "keep2", pattern(53, BlockSize)); err != nil {
				return err
			}
			return fs.Sync() // the checkpoint flush hits blockfs.write
		}},
		{"blockfs.read", fault.Spec{Every: 1}, func(fs *FS) error {
			_, err := readFile(fs.Root(), "keep")
			return err
		}},
	}
	for i, tc := range cases {
		t.Run(fmt.Sprintf("%s_%d", tc.site, i), func(t *testing.T) {
			fault.Guard(t)
			fs, dev := newTestFS(t, 1024)
			keep := pattern(42, 3*BlockSize)
			if err := writeFile(fs.Root(), "keep", keep); err != nil {
				t.Fatalf("setup: %v", err)
			}
			if err := fs.Sync(); err != nil {
				t.Fatalf("setup sync: %v", err)
			}
			// Remount so the cache is cold — blockfs.read needs real fills.
			fs, err := Mount(dev)
			if err != nil {
				t.Fatalf("remount: %v", err)
			}

			fault.Default.Lookup(tc.site).Arm(tc.arm)
			opErr := tc.op(fs)
			fault.Default.Lookup(tc.site).Disarm()
			if !errors.Is(opErr, vfs.ErrIO) {
				t.Fatalf("op under %s: %v, want ErrIO", tc.site, opErr)
			}
			mustCleanFsck(t, fs, "after injected EIO")
			got, err := readFile(fs.Root(), "keep")
			if err != nil || !bytes.Equal(got, keep) {
				t.Fatalf("baseline file damaged by failed op: err=%v", err)
			}
			// And the image itself recovers to a clean state.
			if err := fs.Sync(); err != nil {
				t.Fatalf("final sync: %v", err)
			}
			fs2, err := Mount(dev)
			if err != nil {
				t.Fatalf("final remount: %v", err)
			}
			mustCleanFsck(t, fs2, "after remount")
		})
	}
}

// A seeded probabilistic storm across all four sites at once: operations
// fail unpredictably (but reproducibly), and the invariants must hold
// throughout and after recovery.
func TestEIOProbStorm(t *testing.T) {
	fault.Guard(t)
	fs, dev := newTestFS(t, 1024, MountOptions{CacheSlots: 16})
	for _, name := range []string{"blockfs.read", "blockfs.write", "blockfs.sync", "blockfs.journal"} {
		fault.Default.Lookup(name).Arm(fault.Spec{Prob: 60, Seed: 7, Count: 40})
	}
	model := map[string][]byte{}
	ops := makeOps(1234, 60)
	nerr := 0
	for _, op := range ops {
		if err := doOp(fs, op, model); err != nil {
			if !errors.Is(err, vfs.ErrIO) && !errors.Is(err, vfs.ErrNoSpace) && !errors.Is(err, vfs.ErrNotExist) {
				t.Fatalf("op %+v: unexpected error %v", op, err)
			}
			nerr++
		}
	}
	fault.Default.Reset()
	if nerr == 0 {
		t.Fatalf("prob storm injected no faults; the matrix proved nothing")
	}
	t.Logf("prob storm: %d/%d ops failed", nerr, len(ops))
	mustCleanFsck(t, fs, "after prob storm")
	if err := fs.Sync(); err != nil {
		t.Fatalf("sync after storm: %v", err)
	}
	fs2, err := Mount(dev)
	if err != nil {
		t.Fatalf("remount after storm: %v", err)
	}
	mustCleanFsck(t, fs2, "after remount")
	got := dumpTree(t, fs2)
	for p, want := range model {
		if p == "sub/" {
			continue
		}
		if !bytes.Equal(got[p], want) {
			t.Fatalf("file %q mismatch after prob storm (%d vs %d bytes)", p, len(got[p]), len(want))
		}
	}
	for p := range got {
		if _, ok := model[p]; !ok {
			t.Fatalf("file %q exists but no successful op produced it", p)
		}
	}
}
