package blockfs

import (
	"fmt"
	"sort"
)

// Fsck cross-checks every structural invariant of the mounted image and
// returns one message per violation (empty = clean). It is the crash
// storm's oracle: after any kill/remount/replay cycle the checker must come
// back empty. The invariants:
//
//   - the inode bitmap allocates exactly {ino 0} ∪ {reachable inodes}
//   - every reachable inode is referenced exactly nlink (= 1) times — no
//     orphans, no duplicate directory references, no cycles
//   - a file's zones are non-sparse: zone i is nonzero iff i < ceil(size/BS),
//     every zone lies in the data region, and the indirect block exists iff
//     the file reaches past the direct zones
//   - no block is claimed by two owners (file zones and indirect blocks)
//   - the zone bitmap allocates exactly the claimed blocks
//   - directory sizes are whole slots and every entry names a valid inode
func (fs *FS) Fsck() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var bad []string
	badf := func(format string, args ...interface{}) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}

	refs := map[uint32]int{}       // reachable ino -> reference count
	claimed := map[uint32]uint32{} // block -> owning ino
	inodes := map[uint32]dinode{}  // reachable ino -> record
	queue := []uint32{RootIno}
	refs[RootIno] = 1

	claim := func(owner, no uint32) {
		if no < fs.sb.dataStart || no >= fs.sb.nblocks {
			badf("ino %d claims block %d outside the data region", owner, no)
			return
		}
		if prev, dup := claimed[no]; dup {
			badf("block %d claimed by both ino %d and ino %d", no, prev, owner)
			return
		}
		claimed[no] = owner
	}

	for len(queue) > 0 {
		ino := queue[0]
		queue = queue[1:]
		if _, done := inodes[ino]; done {
			continue
		}
		if ino == 0 || ino > fs.sb.ninodes {
			badf("reference to out-of-range ino %d", ino)
			continue
		}
		di, err := fs.readInode(ino)
		if err != nil {
			badf("ino %d: unreadable: %v", ino, err)
			continue
		}
		inodes[ino] = di
		if di.typ != typeReg && di.typ != typeDir {
			badf("ino %d: reachable but type %d", ino, di.typ)
			continue
		}
		nz := uint32((di.size + BlockSize - 1) / BlockSize)
		if di.size > MaxFileSize {
			badf("ino %d: size %d exceeds maximum", ino, di.size)
			continue
		}
		for i := uint32(0); i < NDirect+ptrsPerBlock; i++ {
			var z uint32
			if i < NDirect {
				z = di.zones[i]
			} else if di.ind == 0 {
				break
			} else {
				z, err = fs.zoneAt(&di, i)
				if err != nil {
					badf("ino %d: indirect block unreadable: %v", ino, err)
					break
				}
			}
			switch {
			case i < nz && z == 0:
				badf("ino %d: zone %d missing below size %d", ino, i, di.size)
			case i >= nz && z != 0:
				badf("ino %d: zone %d=%d beyond size %d", ino, i, z, di.size)
			case z != 0:
				claim(ino, z)
			}
		}
		if di.ind != 0 {
			if nz <= NDirect {
				badf("ino %d: indirect block %d but only %d zones", ino, di.ind, nz)
			}
			claim(ino, di.ind)
		} else if nz > NDirect {
			badf("ino %d: %d zones but no indirect block", ino, nz)
		}
		if di.typ == typeDir {
			if di.size%DirentSize != 0 {
				badf("ino %d: directory size %d not slot-aligned", ino, di.size)
				continue
			}
			_ = fs.dirScan(&di, func(off uint64, child uint32, name string) bool {
				if !validName(name) {
					badf("ino %d: entry %q at %d has invalid name", ino, name, off)
				}
				refs[child]++
				if refs[child] == 1 {
					queue = append(queue, child)
				}
				return false
			})
		}
	}

	for ino, n := range refs {
		di, ok := inodes[ino]
		if !ok {
			continue // already reported (out of range / unreadable)
		}
		if int(di.nlink) != n {
			badf("ino %d: nlink %d but %d references", ino, di.nlink, n)
		}
	}

	// Bitmap cross-checks: the allocated sets must equal the reachable sets.
	ibm, err := fs.readBitmap(fs.sb.ibmStart, fs.sb.ibmBlocks, fs.sb.ninodes+1)
	if err != nil {
		badf("inode bitmap unreadable: %v", err)
	} else {
		if !ibm[0] {
			badf("inode bitmap: reserved bit 0 clear")
		}
		for ino := uint32(1); ino <= fs.sb.ninodes; ino++ {
			_, reachable := inodes[ino]
			if ibm[ino] && !reachable {
				badf("ino %d: allocated but unreachable", ino)
			}
			if !ibm[ino] && reachable {
				badf("ino %d: reachable but not allocated", ino)
			}
		}
	}
	zbm, err := fs.readBitmap(fs.sb.zbmStart, fs.sb.zbmBlocks, fs.sb.nblocks-fs.sb.dataStart)
	if err != nil {
		badf("zone bitmap unreadable: %v", err)
	} else {
		for bit := uint32(0); bit < fs.sb.nblocks-fs.sb.dataStart; bit++ {
			no := fs.sb.dataStart + bit
			_, used := claimed[no]
			if zbm[bit] && !used {
				badf("block %d: allocated but unclaimed", no)
			}
			if !zbm[bit] && used {
				badf("block %d: claimed by ino %d but not allocated", no, claimed[no])
			}
		}
	}
	sort.Strings(bad)
	return bad
}

// readBitmap decodes a bitmap region into a bool slice of nbits entries.
func (fs *FS) readBitmap(start, blocks, nbits uint32) ([]bool, error) {
	out := make([]bool, nbits)
	for rel := uint32(0); rel < blocks; rel++ {
		b, err := fs.c.get(start+rel, true)
		if err != nil {
			return nil, err
		}
		base := rel * bitsPerBlock
		for i := base; i < base+bitsPerBlock && i < nbits; i++ {
			out[i] = b.data[(i-base)/8]&(1<<((i-base)%8)) != 0
		}
		fs.c.put(b)
	}
	return out, nil
}
