package blockfs

import (
	"hash/crc32"

	"repro/internal/vfs"
)

// The journal is a physical redo log. One transaction is written as:
//
//	descriptor block   jDescMagic, epoch, seq, count, count×{blockno, crc}
//	count image blocks the full post-images of the modified blocks
//	commit block       jCommitMagic, epoch, seq, count, crc-of-descriptor
//
// Records are valid only under the header's current epoch with sequence
// numbers counting 1, 2, ... from the block after the header; replay stops
// at the first record that fails any check (magic, epoch, sequence, count,
// either crc), which is exactly how a torn transaction — crashed before its
// commit block landed — is discarded. A checkpoint flushes every dirty
// buffer home, syncs, and bumps the header epoch, which atomically
// invalidates every record in the journal.
//
// The ordering argument for "no resurrected uncommitted data": a block
// modified by an open transaction is pinned in the buffer cache, so its only
// route to the device before commit is the journal image write itself — and
// an image without a valid commit block is discarded by replay. The ordering
// argument for "no lost committed data": commit returns only after the
// commit block's device write succeeded, every modified buffer stays
// dirty+cached until checkpoint, and a checkpoint invalidates the journal
// only after the flush and sync succeed.

type txEntry struct {
	b        *cbuf
	pre      []byte // pre-image for rollback
	preDirty bool
}

// begin opens a transaction, checkpointing first if the journal is near
// full. At begin time every dirty buffer holds only committed data, so the
// checkpoint is always valid here — which is why the space check lives at
// begin and not mid-commit.
func (fs *FS) begin() error {
	if fs.tx != nil {
		panic("blockfs: nested transaction")
	}
	if fs.sb.jStart+fs.sb.jBlocks-fs.jpos < journalReserve {
		if err := fs.checkpoint(); err != nil {
			return err
		}
	}
	fs.tx = make(map[uint32]*txEntry)
	fs.txOrder = fs.txOrder[:0]
	return nil
}

// bmod registers b as modified by the open transaction: first touch saves
// the pre-image and adds the transaction pin that blocks eviction until
// commit or rollback. Callers mutate b.data after (or between) bmod calls.
func (fs *FS) bmod(b *cbuf) {
	if fs.tx == nil {
		panic("blockfs: bmod outside transaction")
	}
	if _, ok := fs.tx[b.no]; !ok {
		fs.tx[b.no] = &txEntry{b: b, pre: append([]byte(nil), b.data...), preDirty: b.dirty}
		fs.txOrder = append(fs.txOrder, b.no)
		b.pins++
	}
	b.dirty = true
}

// journalWrite pushes one journal block through the blockfs.journal site.
func (fs *FS) journalWrite(no uint32, p []byte) error {
	if siteJournal.Hit(0) {
		return vfs.ErrIO
	}
	return fs.dev.WriteBlock(no, p)
}

// commit writes the transaction's record and makes it durable. On any write
// failure the transaction rolls back completely — in-memory buffers restore
// their pre-images and the journal cursor rewinds, so a failed operation
// leaves no trace in memory or on disk.
func (fs *FS) commit() error {
	if fs.tx == nil {
		panic("blockfs: commit outside transaction")
	}
	n := uint32(len(fs.txOrder))
	if n == 0 {
		fs.endTx()
		return nil
	}
	if n > maxTxBlocks {
		fs.rollback()
		return vfs.ErrNoSpace
	}
	if fs.jpos+n+2 > fs.sb.jStart+fs.sb.jBlocks {
		// The begin-time reserve should make this unreachable; refuse
		// rather than overrun the journal.
		fs.rollback()
		return vfs.ErrNoSpace
	}
	desc := make([]byte, BlockSize)
	put32(desc, 0, jDescMagic)
	put64(desc, 4, fs.epoch)
	put64(desc, 12, fs.jseq)
	put32(desc, 20, n)
	for i, no := range fs.txOrder {
		put32(desc, 28+8*i, no)
		put32(desc, 28+8*i+4, crc32.ChecksumIEEE(fs.tx[no].b.data))
	}
	if err := fs.journalWrite(fs.jpos, desc); err != nil {
		fs.rollback()
		return err
	}
	for i, no := range fs.txOrder {
		if err := fs.journalWrite(fs.jpos+1+uint32(i), fs.tx[no].b.data); err != nil {
			fs.rollback()
			return err
		}
	}
	cmt := make([]byte, BlockSize)
	put32(cmt, 0, jCommitMagic)
	put64(cmt, 4, fs.epoch)
	put64(cmt, 12, fs.jseq)
	put32(cmt, 20, n)
	put32(cmt, 24, crc32.ChecksumIEEE(desc[28:28+8*n]))
	if err := fs.journalWrite(fs.jpos+n+1, cmt); err != nil {
		fs.rollback()
		return err
	}
	fs.jpos += n + 2
	fs.jseq++
	fs.endTx()
	return nil
}

// endTx releases the transaction pins, keeping the buffers dirty.
func (fs *FS) endTx() {
	for _, no := range fs.txOrder {
		fs.tx[no].b.pins--
	}
	fs.tx = nil
	fs.txOrder = fs.txOrder[:0]
}

// rollback restores every modified buffer's pre-image and dirty state and
// rewinds the journal cursor past any partial record.
func (fs *FS) rollback() {
	for _, no := range fs.txOrder {
		e := fs.tx[no]
		copy(e.b.data, e.pre)
		e.b.dirty = e.preDirty
		e.b.pins--
	}
	fs.tx = nil
	fs.txOrder = fs.txOrder[:0]
}

// run executes fn inside a transaction: rollback on error, commit on
// success (which itself rolls back if the journal write fails).
func (fs *FS) run(fn func() error) error {
	if err := fs.begin(); err != nil {
		return err
	}
	if err := fn(); err != nil {
		fs.rollback()
		return err
	}
	return fs.commit()
}

// checkpoint makes the cache contents durable and resets the journal:
// flush every dirty (committed) buffer, hit the device barrier, then bump
// the header epoch, invalidating the journal's records. A crash anywhere in
// this sequence is safe: before the header write the old journal still
// replays (idempotently, over already-flushed blocks); after it, the new
// epoch matches no records and the flushed state stands alone.
func (fs *FS) checkpoint() error {
	if err := fs.c.flushAll(); err != nil {
		return err
	}
	if siteSync.Hit(0) {
		return vfs.ErrIO
	}
	if err := fs.dev.Sync(); err != nil {
		return err
	}
	hdr := make([]byte, BlockSize)
	put32(hdr, 0, jMagic)
	put64(hdr, 4, fs.epoch+1)
	if err := fs.journalWrite(fs.sb.jStart, hdr); err != nil {
		return err
	}
	fs.epoch++
	fs.jpos = fs.sb.jStart + 1
	fs.jseq = 1
	return nil
}

// replayTx is one decoded committed transaction.
type replayTx struct {
	blocks []uint32
	images [][]byte
}

// replayJournal scans the journal for committed transactions under the
// header epoch and applies them in order, directly to the device. It
// returns the header epoch in force afterward. Applying is idempotent —
// the images are physical block contents — so a crash during a previous
// replay changes nothing. When at least one transaction was applied the
// journal is reset (sync, epoch bump, sync) so the next mount starts clean.
func replayJournal(dev Dev, sb super) (uint64, error) {
	buf := make([]byte, BlockSize)
	if err := dev.ReadBlock(sb.jStart, buf); err != nil {
		return 0, err
	}
	if le32(buf, 0) != jMagic {
		return 0, ErrCorrupt
	}
	epoch := le64(buf, 4)

	var txs []replayTx
	pos := sb.jStart + 1
	end := sb.jStart + sb.jBlocks
	seq := uint64(1)
scan:
	for pos+2 <= end {
		desc := make([]byte, BlockSize)
		if err := dev.ReadBlock(pos, desc); err != nil {
			return 0, err
		}
		if le32(desc, 0) != jDescMagic || le64(desc, 4) != epoch || le64(desc, 12) != seq {
			break
		}
		n := le32(desc, 20)
		if n == 0 || n > maxTxBlocks || pos+n+2 > end {
			break
		}
		tx := replayTx{}
		for i := uint32(0); i < n; i++ {
			no := le32(desc, 28+8*int(i))
			want := le32(desc, 28+8*int(i)+4)
			img := make([]byte, BlockSize)
			if err := dev.ReadBlock(pos+1+i, img); err != nil {
				return 0, err
			}
			if crc32.ChecksumIEEE(img) != want {
				break scan // torn image: transaction never committed fully
			}
			// Journal records may only describe metadata and data blocks,
			// never the superblock or the journal itself.
			if no == 0 || (no >= sb.jStart && no < sb.dataStart) || no >= sb.nblocks {
				return 0, ErrCorrupt
			}
			tx.blocks = append(tx.blocks, no)
			tx.images = append(tx.images, img)
		}
		if len(tx.blocks) != int(n) {
			break
		}
		cmt := make([]byte, BlockSize)
		if err := dev.ReadBlock(pos+n+1, cmt); err != nil {
			return 0, err
		}
		if le32(cmt, 0) != jCommitMagic || le64(cmt, 4) != epoch || le64(cmt, 12) != seq ||
			le32(cmt, 20) != n || le32(cmt, 24) != crc32.ChecksumIEEE(desc[28:28+8*n]) {
			break
		}
		txs = append(txs, tx)
		pos += n + 2
		seq++
	}
	if len(txs) == 0 {
		return epoch, nil
	}
	for _, tx := range txs {
		for i, no := range tx.blocks {
			if err := dev.WriteBlock(no, tx.images[i]); err != nil {
				return 0, err
			}
		}
	}
	if err := dev.Sync(); err != nil {
		return 0, err
	}
	hdr := make([]byte, BlockSize)
	put32(hdr, 0, jMagic)
	put64(hdr, 4, epoch+1)
	if err := dev.WriteBlock(sb.jStart, hdr); err != nil {
		return 0, err
	}
	if err := dev.Sync(); err != nil {
		return 0, err
	}
	return epoch + 1, nil
}
