package blockfs

import (
	"sort"
	"sync"

	"repro/internal/types"
	"repro/internal/vfs"
)

// FS is one mounted block file system. All operations serialize on mu — the
// file system is a leaf under the kernel's lock hierarchy and is also driven
// directly by host-side clients, so its own lock is what makes SMP access
// safe. Every mutation runs as one journal transaction (or, for large
// writes, a short sequence of them), so any crash point leaves the image
// recoverable to a transaction boundary.
type FS struct {
	mu  sync.Mutex
	dev Dev
	sb  super
	c   *cache
	now func() int64

	// Journal cursor: the next free journal block, the epoch the header
	// currently carries, and the next record sequence number.
	epoch uint64
	jpos  uint32
	jseq  uint64

	// Open-transaction state (journal.go).
	tx      map[uint32]*txEntry
	txOrder []uint32

	// nodes interns one bnode per live inode so vnode identity is stable;
	// gen counts reuses of each inode number so handles opened before an
	// unlink detect the stale reference instead of reading a recycled file.
	nodes map[uint32]*bnode
	gen   map[uint32]uint64

	root *bnode
}

// MountOptions tunes Mount.
type MountOptions struct {
	CacheSlots int          // buffer-cache slots (default DefaultCacheSlots)
	Now        func() int64 // mtime source (typically the simulated clock)
}

// Mount opens the file system on dev, replaying any committed journal
// records first — the crash-recovery path, run unconditionally so a clean
// mount and a post-crash mount are the same code.
func Mount(dev Dev, opts ...MountOptions) (*FS, error) {
	var o MountOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.Now == nil {
		o.Now = func() int64 { return 0 }
	}
	buf := make([]byte, BlockSize)
	if err := dev.ReadBlock(0, buf); err != nil {
		return nil, err
	}
	sb, err := decodeSuper(buf)
	if err != nil {
		return nil, err
	}
	if sb.nblocks != dev.Blocks() {
		return nil, ErrCorrupt
	}
	epoch, err := replayJournal(dev, sb)
	if err != nil {
		return nil, err
	}
	fs := &FS{
		dev:   dev,
		sb:    sb,
		c:     newCache(dev, o.CacheSlots),
		now:   o.Now,
		epoch: epoch,
		jpos:  sb.jStart + 1,
		jseq:  1,
		nodes: make(map[uint32]*bnode),
		gen:   make(map[uint32]uint64),
	}
	fs.root = fs.node(RootIno)
	return fs, nil
}

// Root returns the root directory vnode, for vfs mounting.
func (fs *FS) Root() vfs.Dir { return fs.root }

// Sync checkpoints the file system: every committed change is flushed home
// and the journal is emptied. It is the vnode-layer VSync and the handle
// HSync; sync(2) and fsync(2) both land here.
func (fs *FS) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.checkpoint()
}

// node interns the bnode for ino.
func (fs *FS) node(ino uint32) *bnode {
	if n, ok := fs.nodes[ino]; ok {
		return n
	}
	n := &bnode{fs: fs, ino: ino}
	fs.nodes[ino] = n
	return n
}

// --- inode access (all under fs.mu) ---

func (fs *FS) inodeLoc(ino uint32) (blk uint32, off int) {
	return fs.sb.itStart + (ino-1)/inodesPerBlock, int((ino-1)%inodesPerBlock) * InodeSize
}

// readInode loads ino's on-disk record.
func (fs *FS) readInode(ino uint32) (dinode, error) {
	if ino == 0 || ino > fs.sb.ninodes {
		return dinode{}, vfs.ErrStale
	}
	blk, off := fs.inodeLoc(ino)
	b, err := fs.c.get(blk, true)
	if err != nil {
		return dinode{}, err
	}
	di := decodeInode(b.data[off:])
	fs.c.put(b)
	return di, nil
}

// writeInode stores ino's record inside the open transaction.
func (fs *FS) writeInode(ino uint32, di dinode) error {
	blk, off := fs.inodeLoc(ino)
	b, err := fs.c.get(blk, true)
	if err != nil {
		return err
	}
	fs.bmod(b)
	encodeInode(b.data[off:], di)
	fs.c.put(b)
	return nil
}

// --- bitmap allocation (inside a transaction) ---

// bmFind scans a bitmap region for the first clear bit below nbits and sets
// it. Returns the bit index, or vfs.ErrNoSpace when the region is full.
func (fs *FS) bmFind(start, blocks, nbits uint32) (uint32, error) {
	for rel := uint32(0); rel < blocks; rel++ {
		b, err := fs.c.get(start+rel, true)
		if err != nil {
			return 0, err
		}
		base := rel * bitsPerBlock
		for i, by := range b.data {
			if by == 0xff {
				continue
			}
			for bit := 0; bit < 8; bit++ {
				idx := base + uint32(i*8+bit)
				if idx >= nbits {
					fs.c.put(b)
					return 0, vfs.ErrNoSpace
				}
				if by&(1<<bit) == 0 {
					fs.bmod(b)
					b.data[i] |= 1 << bit
					fs.c.put(b)
					return idx, nil
				}
			}
		}
		fs.c.put(b)
	}
	return 0, vfs.ErrNoSpace
}

// bmClear clears one bit in a bitmap region.
func (fs *FS) bmClear(start, idx uint32) error {
	b, err := fs.c.get(start+idx/bitsPerBlock, true)
	if err != nil {
		return err
	}
	fs.bmod(b)
	b.data[(idx%bitsPerBlock)/8] &^= 1 << (idx % 8)
	fs.c.put(b)
	return nil
}

func (fs *FS) allocIno() (uint32, error) {
	return fs.bmFind(fs.sb.ibmStart, fs.sb.ibmBlocks, fs.sb.ninodes+1)
}

func (fs *FS) freeIno(ino uint32) error {
	return fs.bmClear(fs.sb.ibmStart, ino)
}

// allocZone allocates a data block and returns its absolute block number.
func (fs *FS) allocZone() (uint32, error) {
	bit, err := fs.bmFind(fs.sb.zbmStart, fs.sb.zbmBlocks, fs.sb.nblocks-fs.sb.dataStart)
	if err != nil {
		return 0, err
	}
	return fs.sb.dataStart + bit, nil
}

func (fs *FS) freeZone(no uint32) error {
	return fs.bmClear(fs.sb.zbmStart, no-fs.sb.dataStart)
}

// --- zone addressing ---

// zoneAt returns the absolute block holding file zone idx, or 0.
func (fs *FS) zoneAt(di *dinode, idx uint32) (uint32, error) {
	if idx < NDirect {
		return di.zones[idx], nil
	}
	if di.ind == 0 {
		return 0, nil
	}
	b, err := fs.c.get(di.ind, true)
	if err != nil {
		return 0, err
	}
	z := le32(b.data, int(idx-NDirect)*4)
	fs.c.put(b)
	return z, nil
}

// setZone points file zone idx at blockno, allocating the indirect block on
// first use. Must run inside a transaction; the caller writes di back.
func (fs *FS) setZone(di *dinode, idx, blockno uint32) error {
	if idx < NDirect {
		di.zones[idx] = blockno
		return nil
	}
	if di.ind == 0 {
		ind, err := fs.allocZone()
		if err != nil {
			return err
		}
		b, err := fs.getZeroed(ind)
		if err != nil {
			return err
		}
		fs.c.put(b)
		di.ind = ind
	}
	b, err := fs.c.get(di.ind, true)
	if err != nil {
		return err
	}
	fs.bmod(b)
	put32(b.data, int(idx-NDirect)*4, blockno)
	fs.c.put(b)
	return nil
}

// getZeroed returns the buffer for a freshly allocated zone, zeroed and
// registered with the open transaction. The explicit zeroing matters: a
// freed zone's stale contents may still sit in the cache, and a reallocated
// zone must read as zeros everywhere the caller does not overwrite.
func (fs *FS) getZeroed(no uint32) (*cbuf, error) {
	b, err := fs.c.get(no, false)
	if err != nil {
		return nil, err
	}
	fs.bmod(b)
	for i := range b.data {
		b.data[i] = 0
	}
	return b, nil
}

// truncate frees every zone of di inside the open transaction.
func (fs *FS) truncate(di *dinode) error {
	nz := uint32((di.size + BlockSize - 1) / BlockSize)
	for i := uint32(0); i < nz; i++ {
		z, err := fs.zoneAt(di, i)
		if err != nil {
			return err
		}
		if z != 0 {
			if err := fs.freeZone(z); err != nil {
				return err
			}
		}
	}
	if di.ind != 0 {
		if err := fs.freeZone(di.ind); err != nil {
			return err
		}
	}
	di.zones = [NDirect]uint32{}
	di.ind = 0
	di.size = 0
	return nil
}

// --- directory access ---

// dirScan iterates a directory's entries, calling f with each live slot's
// byte offset, ino and name; f returns true to stop.
func (fs *FS) dirScan(di *dinode, f func(off uint64, ino uint32, name string) bool) error {
	for off := uint64(0); off < di.size; off += DirentSize {
		z, err := fs.zoneAt(di, uint32(off/BlockSize))
		if err != nil {
			return err
		}
		if z == 0 {
			return ErrCorrupt
		}
		b, err := fs.c.get(z, true)
		if err != nil {
			return err
		}
		ino, name := decodeDirent(b.data[off%BlockSize:])
		fs.c.put(b)
		if ino != 0 && f(off, ino, name) {
			return nil
		}
	}
	return nil
}

// dirLookup finds name in di, returning its ino and slot offset.
func (fs *FS) dirLookup(di *dinode, name string) (uint32, uint64, error) {
	var foundIno uint32
	var foundOff uint64
	err := fs.dirScan(di, func(off uint64, ino uint32, n string) bool {
		if n == name {
			foundIno, foundOff = ino, off
			return true
		}
		return false
	})
	if err != nil {
		return 0, 0, err
	}
	if foundIno == 0 {
		return 0, 0, vfs.ErrNotExist
	}
	return foundIno, foundOff, nil
}

// dirSetSlot rewrites the dirent at byte offset off inside the transaction.
func (fs *FS) dirSetSlot(di *dinode, off uint64, ino uint32, name string) error {
	z, err := fs.zoneAt(di, uint32(off/BlockSize))
	if err != nil {
		return err
	}
	if z == 0 {
		return ErrCorrupt
	}
	b, err := fs.c.get(z, true)
	if err != nil {
		return err
	}
	fs.bmod(b)
	encodeDirent(b.data[off%BlockSize:], ino, name)
	fs.c.put(b)
	return nil
}

// dirAddEntry writes {ino, name} into dirIno, reusing a freed slot or
// extending the directory by one slot (allocating a fresh zone at block
// boundaries). Runs inside a transaction.
func (fs *FS) dirAddEntry(dirIno uint32, di *dinode, ino uint32, name string) error {
	// Reuse the first freed slot.
	for off := uint64(0); off < di.size; off += DirentSize {
		z, err := fs.zoneAt(di, uint32(off/BlockSize))
		if err != nil {
			return err
		}
		if z == 0 {
			return ErrCorrupt
		}
		b, err := fs.c.get(z, true)
		if err != nil {
			return err
		}
		slotIno, _ := decodeDirent(b.data[off%BlockSize:])
		if slotIno == 0 {
			fs.bmod(b)
			encodeDirent(b.data[off%BlockSize:], ino, name)
			fs.c.put(b)
			return nil
		}
		fs.c.put(b)
	}
	// Append: allocate a zone when the new slot opens a block.
	off := di.size
	if off+DirentSize > uint64(NDirect+ptrsPerBlock)*BlockSize {
		return vfs.ErrNoSpace
	}
	zi := uint32(off / BlockSize)
	if off%BlockSize == 0 {
		z, err := fs.allocZone()
		if err != nil {
			return err
		}
		b, err := fs.getZeroed(z)
		if err != nil {
			return err
		}
		fs.c.put(b)
		if err := fs.setZone(di, zi, z); err != nil {
			return err
		}
	}
	di.size = off + DirentSize
	return fs.dirSetSlot(di, off, ino, name)
}

// --- the vnode type ---

// bnode is the vnode of one blockfs inode.
type bnode struct {
	fs  *FS
	ino uint32
}

func (fs *FS) attrOf(di dinode) vfs.Attr {
	t := vfs.VREG
	if di.typ == typeDir {
		t = vfs.VDIR
	}
	return vfs.Attr{
		Type: t, Mode: di.mode, UID: int(di.uid), GID: int(di.gid),
		Size: int64(di.size), MTime: int64(di.mtime), Nlink: int(di.nlink),
	}
}

// VAttr implements vfs.Vnode. Directory sizes report live entries, matching
// memfs, rather than the on-disk slot-array size.
func (n *bnode) VAttr() (vfs.Attr, error) {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	di, err := n.fs.readInode(n.ino)
	if err != nil {
		return vfs.Attr{}, err
	}
	a := n.fs.attrOf(di)
	if di.typ == typeDir {
		live := int64(0)
		if err := n.fs.dirScan(&di, func(uint64, uint32, string) bool { live++; return false }); err != nil {
			return vfs.Attr{}, err
		}
		a.Size = live
	}
	return a, nil
}

// VOpen implements vfs.Vnode.
func (n *bnode) VOpen(flags int, c types.Cred) (vfs.Handle, error) {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	di, err := n.fs.readInode(n.ino)
	if err != nil {
		return nil, err
	}
	isDir := di.typ == typeDir
	if isDir && flags&vfs.OWrite != 0 {
		return nil, vfs.ErrIsDir
	}
	var want uint16
	if flags&vfs.ORead != 0 {
		want |= 4
	}
	if flags&vfs.OWrite != 0 {
		want |= 2
	}
	if err := vfs.CheckAccess(n.fs.attrOf(di), c, want); err != nil {
		return nil, err
	}
	if flags&vfs.OTrunc != 0 && !isDir && di.size > 0 {
		err := n.fs.run(func() error {
			if err := n.fs.truncate(&di); err != nil {
				return err
			}
			di.mtime = uint64(n.fs.now())
			return n.fs.writeInode(n.ino, di)
		})
		if err != nil {
			return nil, err
		}
	}
	return &bhandle{fs: n.fs, ino: n.ino, gen: n.fs.gen[n.ino]}, nil
}

// VSync implements vfs.Syncer: sync(2) reaches every mounted blockfs root.
func (n *bnode) VSync() error { return n.fs.Sync() }

// SetMode implements the kernel's chmod hook. The interface carries no
// error return, so a failed transaction (injected EIO) leaves the mode
// unchanged; chmod under an I/O fault storm is best-effort by contract.
func (n *bnode) SetMode(mode uint16) {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	di, err := n.fs.readInode(n.ino)
	if err != nil {
		return
	}
	_ = n.fs.run(func() error {
		di.mode = mode
		di.mtime = uint64(n.fs.now())
		return n.fs.writeInode(n.ino, di)
	})
}

// --- vfs.Dir ---

// VLookup implements vfs.Dir.
func (n *bnode) VLookup(name string, c types.Cred) (vfs.Vnode, error) {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	di, err := n.fs.readInode(n.ino)
	if err != nil {
		return nil, err
	}
	if di.typ != typeDir {
		return nil, vfs.ErrNotDir
	}
	ino, _, err := n.fs.dirLookup(&di, name)
	if err != nil {
		return nil, err
	}
	return n.fs.node(ino), nil
}

// VReadDir implements vfs.Dir.
func (n *bnode) VReadDir(c types.Cred) ([]vfs.Dirent, error) {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	di, err := n.fs.readInode(n.ino)
	if err != nil {
		return nil, err
	}
	if di.typ != typeDir {
		return nil, vfs.ErrNotDir
	}
	type ent struct {
		name string
		ino  uint32
	}
	var ents []ent
	if err := n.fs.dirScan(&di, func(_ uint64, ino uint32, name string) bool {
		ents = append(ents, ent{name, ino})
		return false
	}); err != nil {
		return nil, err
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].name < ents[j].name })
	out := make([]vfs.Dirent, 0, len(ents))
	for _, e := range ents {
		cdi, err := n.fs.readInode(e.ino)
		if err != nil {
			return nil, err
		}
		out = append(out, vfs.Dirent{Name: e.name, Attr: n.fs.attrOf(cdi)})
	}
	return out, nil
}

// --- vfs.DirWriter ---

// VCreate implements vfs.DirWriter.
func (n *bnode) VCreate(name string, mode uint16, c types.Cred) (vfs.Vnode, error) {
	ino, err := n.addChild(name, mode, c, typeReg)
	if err != nil {
		return nil, err
	}
	return n.fs.node(ino), nil
}

// VMkdir implements vfs.DirWriter.
func (n *bnode) VMkdir(name string, mode uint16, c types.Cred) (vfs.Dir, error) {
	ino, err := n.addChild(name, mode, c, typeDir)
	if err != nil {
		return nil, err
	}
	return n.fs.node(ino), nil
}

func (n *bnode) addChild(name string, mode uint16, c types.Cred, typ uint16) (uint32, error) {
	if !validName(name) {
		return 0, vfs.ErrInval
	}
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	di, err := n.fs.readInode(n.ino)
	if err != nil {
		return 0, err
	}
	if di.typ != typeDir {
		return 0, vfs.ErrNotDir
	}
	if err := vfs.CheckAccess(n.fs.attrOf(di), c, 2); err != nil {
		return 0, err
	}
	if _, _, err := n.fs.dirLookup(&di, name); err == nil {
		return 0, vfs.ErrExist
	} else if err != vfs.ErrNotExist {
		return 0, err
	}
	var ino uint32
	err = n.fs.run(func() error {
		var err error
		ino, err = n.fs.allocIno()
		if err != nil {
			return err
		}
		now := uint64(n.fs.now())
		if err := n.fs.writeInode(ino, dinode{
			typ: typ, mode: mode, nlink: 1,
			uid: int32(c.EUID), gid: int32(c.EGID), mtime: now,
		}); err != nil {
			return err
		}
		if err := n.fs.dirAddEntry(n.ino, &di, ino, name); err != nil {
			return err
		}
		di.mtime = now
		return n.fs.writeInode(n.ino, di)
	})
	if err != nil {
		return 0, err
	}
	return ino, nil
}

// VRemove implements vfs.DirWriter.
func (n *bnode) VRemove(name string, c types.Cred) error {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	di, err := n.fs.readInode(n.ino)
	if err != nil {
		return err
	}
	if di.typ != typeDir {
		return vfs.ErrNotDir
	}
	if err := vfs.CheckAccess(n.fs.attrOf(di), c, 2); err != nil {
		return err
	}
	ino, off, err := n.fs.dirLookup(&di, name)
	if err != nil {
		return err
	}
	tdi, err := n.fs.readInode(ino)
	if err != nil {
		return err
	}
	if tdi.typ == typeDir {
		empty := true
		if err := n.fs.dirScan(&tdi, func(uint64, uint32, string) bool { empty = false; return true }); err != nil {
			return err
		}
		if !empty {
			return vfs.ErrBusy
		}
	}
	err = n.fs.run(func() error {
		if err := n.fs.dirSetSlot(&di, off, 0, ""); err != nil {
			return err
		}
		di.mtime = uint64(n.fs.now())
		if err := n.fs.writeInode(n.ino, di); err != nil {
			return err
		}
		if err := n.fs.truncate(&tdi); err != nil {
			return err
		}
		if err := n.fs.writeInode(ino, dinode{}); err != nil {
			return err
		}
		return n.fs.freeIno(ino)
	})
	if err != nil {
		return err
	}
	// In-core identity: handles opened on the old file go stale, and the
	// inode number is free for reuse under a fresh generation.
	n.fs.gen[ino]++
	delete(n.fs.nodes, ino)
	return nil
}

var (
	_ vfs.DirWriter = (*bnode)(nil)
	_ vfs.Syncer    = (*bnode)(nil)
)

// --- the open handle ---

// bhandle is the per-open state: the inode plus the generation it was opened
// under, so I/O after an unlink+reuse reports a stale descriptor rather than
// touching the recycled inode.
type bhandle struct {
	fs  *FS
	ino uint32
	gen uint64
}

func (h *bhandle) stale() bool { return h.fs.gen[h.ino] != h.gen }

// HRead implements vfs.Handle.
func (h *bhandle) HRead(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.stale() {
		return 0, vfs.ErrStale
	}
	di, err := h.fs.readInode(h.ino)
	if err != nil {
		return 0, err
	}
	if di.typ == typeDir {
		return 0, vfs.ErrIsDir
	}
	if off < 0 {
		return 0, vfs.ErrInval
	}
	if uint64(off) >= di.size {
		return 0, vfs.EOF
	}
	end := uint64(off) + uint64(len(p))
	if end > di.size {
		end = di.size
	}
	n := 0
	for pos := uint64(off); pos < end; {
		z, err := h.fs.zoneAt(&di, uint32(pos/BlockSize))
		if err != nil {
			return n, err
		}
		if z == 0 {
			return n, ErrCorrupt
		}
		b, err := h.fs.c.get(z, true)
		if err != nil {
			return n, err
		}
		c := copy(p[n:end-uint64(off)], b.data[pos%BlockSize:])
		h.fs.c.put(b)
		n += c
		pos += uint64(c)
	}
	return n, nil
}

// HWrite implements vfs.Handle. Large writes split into chunks of at most
// maxWriteZones zones, one transaction each; a failure mid-sequence returns
// the bytes made durable by the committed prefix, POSIX partial-write style.
func (h *bhandle) HWrite(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.stale() {
		return 0, vfs.ErrStale
	}
	di, err := h.fs.readInode(h.ino)
	if err != nil {
		return 0, err
	}
	if di.typ == typeDir {
		return 0, vfs.ErrIsDir
	}
	if off < 0 {
		return 0, vfs.ErrInval
	}
	end := uint64(off) + uint64(len(p))
	if end > MaxFileSize {
		return 0, vfs.ErrNoSpace
	}
	if len(p) == 0 {
		return 0, nil
	}
	// The affected zone range: every zone the data touches, plus any hole
	// zones between the current end of file and the write start (they must
	// exist, zero-filled, for the size invariant "zones cover ceil(size/BS)").
	zlo := uint32(off) / BlockSize
	if hole := uint32((di.size + BlockSize - 1) / BlockSize); di.size < uint64(off) && hole < zlo {
		zlo = hole
	}
	zhi := uint32((end - 1) / BlockSize)
	written := 0
	for z0 := zlo; z0 <= zhi; z0 += maxWriteZones {
		z1 := z0 + maxWriteZones - 1
		if z1 > zhi {
			z1 = zhi
		}
		var chunkBytes int
		err := h.fs.run(func() error {
			chunkBytes = 0
			for zi := z0; zi <= z1; zi++ {
				z, err := h.fs.zoneAt(&di, zi)
				if err != nil {
					return err
				}
				fresh := z == 0
				var b *cbuf
				if fresh {
					if z, err = h.fs.allocZone(); err != nil {
						return err
					}
					if err := h.fs.setZone(&di, zi, z); err != nil {
						return err
					}
					if b, err = h.fs.getZeroed(z); err != nil {
						return err
					}
				} else if b, err = h.fs.c.get(z, true); err != nil {
					return err
				}
				// The slice of p that lands in this zone, if any.
				zStart := uint64(zi) * BlockSize
				zEnd := zStart + BlockSize
				ws, we := uint64(off), end
				if ws < zStart {
					ws = zStart
				}
				if we > zEnd {
					we = zEnd
				}
				if ws < we {
					h.fs.bmod(b)
					copy(b.data[ws-zStart:], p[ws-uint64(off):we-uint64(off)])
					chunkBytes += int(we - ws)
				}
				h.fs.c.put(b)
			}
			// Size grows to the end of what this chunk covers (capped at
			// the write end), never shrinks.
			covered := uint64(z1+1) * BlockSize
			if covered > end {
				covered = end
			}
			if covered > di.size {
				di.size = covered
			}
			di.mtime = uint64(h.fs.now())
			return h.fs.writeInode(h.ino, di)
		})
		if err != nil {
			return written, err
		}
		written += chunkBytes
		// Reload: the committed image is the new baseline for the next chunk.
		if di, err = h.fs.readInode(h.ino); err != nil {
			return written, err
		}
	}
	return written, nil
}

// HIoctl implements vfs.Handle.
func (h *bhandle) HIoctl(cmd int, arg interface{}) error { return vfs.ErrNoIoctl }

// HClose implements vfs.Handle.
func (h *bhandle) HClose() error { return nil }

// HSync implements the kernel's fsync hook: a full checkpoint (this file's
// dirty blocks and everyone else's — the classic conservative fsync).
func (h *bhandle) HSync() error { return h.fs.Sync() }
