package blockfs

import "repro/internal/fault"

// Fault-injection sites for the persistent file system. As in memfs, the
// vnode layer has no process context, so hits carry pid 0 and pid-scoped
// plans never fire here; site-wide plans (nth-hit, every-k, seeded) do.
//
// The first four sites inject vfs.ErrIO at the I/O choke points — a cache
// fill, a dirty write-back, the checkpoint barrier, a journal record — and
// every consumer transaction rolls back cleanly (the rollback is what the
// fault matrix in fault_test.go pins). blockfs.crash is different in kind:
// it does not inject an errno, it kills the whole device (see CrashDev), and
// its hit ordinal counts device writes — the deterministic clock the
// crash-recovery storm enumerates.
var (
	siteRead    = fault.Register("blockfs.read")    // buffer-cache fills from the device
	siteWrite   = fault.Register("blockfs.write")   // dirty write-back (eviction, checkpoint flush)
	siteSync    = fault.Register("blockfs.sync")    // the checkpoint durability barrier
	siteJournal = fault.Register("blockfs.journal") // journal descriptor/image/commit/header writes
	siteCrash   = fault.Register("blockfs.crash")   // whole-device power loss (CrashDev)
)
