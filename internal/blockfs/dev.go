package blockfs

import (
	"errors"
	"os"
	"sync"

	"repro/internal/fault"
)

// Dev is a block device: a fixed array of BlockSize-byte blocks addressed by
// absolute block number. WriteBlock is all-or-nothing at block granularity —
// the journal's torn-write detection is per block, not per byte — and Sync is
// the durability barrier the journal orders its records around.
type Dev interface {
	ReadBlock(no uint32, p []byte) error
	WriteBlock(no uint32, p []byte) error
	Sync() error
	Blocks() uint32
	Close() error
}

var (
	// ErrDevRange reports a block access outside the device.
	ErrDevRange = errors.New("blockfs: block number out of range")
	// ErrCrashed is what a crashed device answers to everything: the
	// write that triggered the crash is lost, and nothing works again
	// until the image is remounted through a fresh device.
	ErrCrashed = errors.New("blockfs: device crashed")
)

// MemDev is an in-memory block device, the unit-test and crash-storm image.
type MemDev struct {
	mu   sync.Mutex
	data []byte
}

// NewMemDev creates a zeroed in-memory device of nblocks blocks.
func NewMemDev(nblocks uint32) *MemDev {
	return &MemDev{data: make([]byte, int(nblocks)*BlockSize)}
}

// ReadBlock implements Dev.
func (d *MemDev) ReadBlock(no uint32, p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	off := int(no) * BlockSize
	if off+BlockSize > len(d.data) {
		return ErrDevRange
	}
	copy(p, d.data[off:off+BlockSize])
	return nil
}

// WriteBlock implements Dev.
func (d *MemDev) WriteBlock(no uint32, p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	off := int(no) * BlockSize
	if off+BlockSize > len(d.data) {
		return ErrDevRange
	}
	copy(d.data[off:off+BlockSize], p)
	return nil
}

// Sync implements Dev; memory is always durable.
func (d *MemDev) Sync() error { return nil }

// Blocks implements Dev.
func (d *MemDev) Blocks() uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return uint32(len(d.data) / BlockSize)
}

// Close implements Dev.
func (d *MemDev) Close() error { return nil }

// Snapshot returns a deep copy of the image, for crash-storm oracles that
// compare a recovered image against a reference.
func (d *MemDev) Snapshot() *MemDev {
	d.mu.Lock()
	defer d.mu.Unlock()
	return &MemDev{data: append([]byte(nil), d.data...)}
}

// FileDev is a raw-image file device: block n lives at byte offset n*BlockSize
// of a host file. It is how a mounted file system survives process restarts.
type FileDev struct {
	f       *os.File
	nblocks uint32
}

// OpenFileDev opens (or creates) a raw image of nblocks blocks. Opening an
// existing image with nblocks 0 sizes the device from the file; a fresh image
// is extended to the requested size.
func OpenFileDev(path string, nblocks uint32) (*FileDev, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	have := uint32(st.Size() / BlockSize)
	if nblocks == 0 {
		nblocks = have
	}
	if have < nblocks {
		if err := f.Truncate(int64(nblocks) * BlockSize); err != nil {
			f.Close()
			return nil, err
		}
	}
	if nblocks == 0 {
		f.Close()
		return nil, ErrDevRange
	}
	return &FileDev{f: f, nblocks: nblocks}, nil
}

// ReadBlock implements Dev.
func (d *FileDev) ReadBlock(no uint32, p []byte) error {
	if no >= d.nblocks {
		return ErrDevRange
	}
	_, err := d.f.ReadAt(p[:BlockSize], int64(no)*BlockSize)
	return err
}

// WriteBlock implements Dev.
func (d *FileDev) WriteBlock(no uint32, p []byte) error {
	if no >= d.nblocks {
		return ErrDevRange
	}
	_, err := d.f.WriteAt(p[:BlockSize], int64(no)*BlockSize)
	return err
}

// Sync implements Dev.
func (d *FileDev) Sync() error { return d.f.Sync() }

// Blocks implements Dev.
func (d *FileDev) Blocks() uint32 { return d.nblocks }

// Close implements Dev.
func (d *FileDev) Close() error { return d.f.Close() }

// CrashDev wraps a device with a deterministic kill switch: every WriteBlock
// is a hit on the blockfs.crash fault site, and when the armed plan fires the
// write is *lost* and the device goes permanently dead — the simulation of
// power failing mid-write. Because every journal and write-back block goes
// through WriteBlock, arming nth=k enumerates crash points over the exact
// ordinal sequence of device mutations, which is what lets the crash storm
// kill the image at every journal ordinal deterministically.
type CrashDev struct {
	dev  Dev
	site *fault.Site

	mu     sync.Mutex
	dead   bool
	writes uint64
}

// NewCrashDev wraps dev with the Default registry's blockfs.crash site.
func NewCrashDev(dev Dev) *CrashDev {
	return &CrashDev{dev: dev, site: siteCrash}
}

// Writes returns how many WriteBlock attempts the device has seen (including
// the one that killed it); a golden run's total is the crash storm's ordinal
// space.
func (d *CrashDev) Writes() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writes
}

// Dead reports whether the kill switch has fired.
func (d *CrashDev) Dead() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dead
}

// ReadBlock implements Dev.
func (d *CrashDev) ReadBlock(no uint32, p []byte) error {
	d.mu.Lock()
	dead := d.dead
	d.mu.Unlock()
	if dead {
		return ErrCrashed
	}
	return d.dev.ReadBlock(no, p)
}

// WriteBlock implements Dev.
func (d *CrashDev) WriteBlock(no uint32, p []byte) error {
	d.mu.Lock()
	if d.dead {
		d.mu.Unlock()
		return ErrCrashed
	}
	d.writes++
	if d.site.Hit(0) {
		d.dead = true
		d.mu.Unlock()
		return ErrCrashed
	}
	d.mu.Unlock()
	return d.dev.WriteBlock(no, p)
}

// Sync implements Dev.
func (d *CrashDev) Sync() error {
	d.mu.Lock()
	dead := d.dead
	d.mu.Unlock()
	if dead {
		return ErrCrashed
	}
	return d.dev.Sync()
}

// Blocks implements Dev.
func (d *CrashDev) Blocks() uint32 { return d.dev.Blocks() }

// Close implements Dev.
func (d *CrashDev) Close() error { return d.dev.Close() }
