package blockfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/fault"
	"repro/internal/types"
	"repro/internal/vfs"
)

var testCred = types.RootCred()

// newTestFS formats a fresh in-memory device and mounts it.
func newTestFS(t *testing.T, nblocks uint32, opts ...MountOptions) (*FS, *MemDev) {
	t.Helper()
	dev := NewMemDev(nblocks)
	if err := Mkfs(dev, 0); err != nil {
		t.Fatalf("Mkfs: %v", err)
	}
	fs, err := Mount(dev, opts...)
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	return fs, dev
}

// writeFile creates (or truncates) path components under dir and writes data.
func writeFile(d vfs.Dir, name string, data []byte) error {
	dw := d.(vfs.DirWriter)
	vn, err := d.VLookup(name, testCred)
	if err == vfs.ErrNotExist {
		vn, err = dw.VCreate(name, 0o644, testCred)
	}
	if err != nil {
		return err
	}
	h, err := vn.VOpen(vfs.OWrite|vfs.OTrunc, testCred)
	if err != nil {
		return err
	}
	defer h.HClose()
	n, err := h.HWrite(data, 0)
	if err != nil {
		return err
	}
	if n != len(data) {
		return fmt.Errorf("short write: %d of %d", n, len(data))
	}
	return nil
}

// readFile reads the whole file name under dir.
func readFile(d vfs.Dir, name string) ([]byte, error) {
	vn, err := d.VLookup(name, testCred)
	if err != nil {
		return nil, err
	}
	h, err := vn.VOpen(vfs.ORead, testCred)
	if err != nil {
		return nil, err
	}
	defer h.HClose()
	var out []byte
	buf := make([]byte, 4096)
	off := int64(0)
	for {
		n, err := h.HRead(buf, off)
		out = append(out, buf[:n]...)
		off += int64(n)
		if err == vfs.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return out, nil
		}
	}
}

// dumpTree walks the mounted file system and returns path -> contents for
// every regular file (paths relative to the root, '/'-joined).
func dumpTree(t *testing.T, fs *FS) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	var walk func(d vfs.Dir, prefix string)
	walk = func(d vfs.Dir, prefix string) {
		ents, err := d.VReadDir(testCred)
		if err != nil {
			t.Fatalf("readdir %q: %v", prefix, err)
		}
		for _, e := range ents {
			vn, err := d.VLookup(e.Name, testCred)
			if err != nil {
				t.Fatalf("lookup %s%s: %v", prefix, e.Name, err)
			}
			if sub, ok := vn.(vfs.Dir); ok && e.Attr.Type == vfs.VDIR {
				walk(sub, prefix+e.Name+"/")
				continue
			}
			data, err := readFile(d, e.Name)
			if err != nil {
				t.Fatalf("read %s%s: %v", prefix, e.Name, err)
			}
			out[prefix+e.Name] = data
		}
	}
	walk(fs.Root(), "")
	return out
}

// mustCleanFsck fails the test if the checker reports any violation.
func mustCleanFsck(t *testing.T, fs *FS, ctx string) {
	t.Helper()
	if bad := fs.Fsck(); len(bad) != 0 {
		t.Fatalf("%s: fsck reported %d violations:\n  %v", ctx, len(bad), bad)
	}
}

// pattern produces deterministic file contents.
func pattern(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	p := make([]byte, n)
	r.Read(p)
	return p
}

func TestBasicFileOps(t *testing.T) {
	fault.Guard(t)
	fs, dev := newTestFS(t, 2048)
	root := fs.Root()

	small := pattern(1, 100)
	big := pattern(2, (NDirect+5)*BlockSize) // crosses into the indirect block
	if err := writeFile(root, "small", small); err != nil {
		t.Fatalf("write small: %v", err)
	}
	if err := writeFile(root, "big", big); err != nil {
		t.Fatalf("write big: %v", err)
	}
	dw := root.(vfs.DirWriter)
	sub, err := dw.VMkdir("sub", 0o755, testCred)
	if err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	if err := writeFile(sub, "inner", small); err != nil {
		t.Fatalf("write sub/inner: %v", err)
	}
	mustCleanFsck(t, fs, "after ops")

	got := dumpTree(t, fs)
	want := map[string][]byte{"small": small, "big": big, "sub/inner": small}
	if len(got) != len(want) {
		t.Fatalf("tree has %d files, want %d: %v", len(got), len(want), keysOf(got))
	}
	for p, w := range want {
		if !bytes.Equal(got[p], w) {
			t.Fatalf("file %q content mismatch (%d vs %d bytes)", p, len(got[p]), len(w))
		}
	}

	// Persistence: checkpoint, remount the raw device, re-verify.
	if err := fs.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	fs2, err := Mount(dev)
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	mustCleanFsck(t, fs2, "after remount")
	got2 := dumpTree(t, fs2)
	for p, w := range want {
		if !bytes.Equal(got2[p], w) {
			t.Fatalf("after remount, file %q content mismatch", p)
		}
	}
}

func keysOf(m map[string][]byte) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func TestUnlinkAndReuse(t *testing.T) {
	fault.Guard(t)
	fs, _ := newTestFS(t, 1024)
	root := fs.Root()
	dw := root.(vfs.DirWriter)

	if err := writeFile(root, "a", pattern(3, 3*BlockSize)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := dw.VRemove("a", testCred); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := root.VLookup("a", testCred); err != vfs.ErrNotExist {
		t.Fatalf("lookup after unlink: %v, want ErrNotExist", err)
	}
	// The freed zones must be reusable, and must read back as the new
	// file's data, not the old file's cached blocks.
	fresh := pattern(4, 3*BlockSize)
	if err := writeFile(root, "b", fresh); err != nil {
		t.Fatalf("write b: %v", err)
	}
	got, err := readFile(root, "b")
	if err != nil || !bytes.Equal(got, fresh) {
		t.Fatalf("reread b: err=%v, equal=%v", err, bytes.Equal(got, fresh))
	}
	mustCleanFsck(t, fs, "after reuse")
}

func TestStaleHandleAfterUnlink(t *testing.T) {
	fault.Guard(t)
	fs, _ := newTestFS(t, 1024)
	root := fs.Root()
	dw := root.(vfs.DirWriter)

	if err := writeFile(root, "doomed", pattern(5, 64)); err != nil {
		t.Fatalf("write: %v", err)
	}
	vn, err := root.VLookup("doomed", testCred)
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	h, err := vn.VOpen(vfs.ORead|vfs.OWrite, testCred)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := dw.VRemove("doomed", testCred); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := h.HRead(make([]byte, 8), 0); !errors.Is(err, vfs.ErrStale) {
		t.Fatalf("read through unlinked handle: %v, want ErrStale", err)
	}
	if _, err := h.HWrite([]byte("x"), 0); !errors.Is(err, vfs.ErrStale) {
		t.Fatalf("write through unlinked handle: %v, want ErrStale", err)
	}
}

func TestRmdirSemantics(t *testing.T) {
	fault.Guard(t)
	fs, _ := newTestFS(t, 1024)
	dw := fs.Root().(vfs.DirWriter)

	sub, err := dw.VMkdir("d", 0o755, testCred)
	if err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	if err := writeFile(sub, "f", []byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := dw.VRemove("d", testCred); err != vfs.ErrBusy {
		t.Fatalf("remove non-empty dir: %v, want ErrBusy", err)
	}
	if err := sub.(vfs.DirWriter).VRemove("f", testCred); err != nil {
		t.Fatalf("remove file: %v", err)
	}
	if err := dw.VRemove("d", testCred); err != nil {
		t.Fatalf("remove empty dir: %v", err)
	}
	mustCleanFsck(t, fs, "after rmdir")
}

func TestNoSpaceAndRecovery(t *testing.T) {
	fault.Guard(t)
	// A tiny device: layout leaves only a handful of data blocks.
	fs, _ := newTestFS(t, 128)
	root := fs.Root()
	dw := root.(vfs.DirWriter)

	// Fill until ENOSPC.
	var created []string
	for i := 0; ; i++ {
		name := fmt.Sprintf("f%d", i)
		err := writeFile(root, name, pattern(int64(i), 2*BlockSize))
		if err == nil {
			created = append(created, name)
			continue
		}
		if !errors.Is(err, vfs.ErrNoSpace) {
			t.Fatalf("fill: %v, want ErrNoSpace", err)
		}
		// The failed create may have left an empty file (create and write
		// are separate transactions); that's POSIX-honest, not a leak.
		break
	}
	if len(created) == 0 {
		t.Fatalf("no files fit on the device")
	}
	mustCleanFsck(t, fs, "at ENOSPC")

	// Freeing one file must make space reusable.
	if err := dw.VRemove(created[0], testCred); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if err := writeFile(root, "again", pattern(99, 2*BlockSize)); err != nil {
		t.Fatalf("write after free: %v", err)
	}
	mustCleanFsck(t, fs, "after reuse")
}

func TestTruncateOnOpen(t *testing.T) {
	fault.Guard(t)
	fs, _ := newTestFS(t, 2048)
	root := fs.Root()

	big := pattern(7, (NDirect+3)*BlockSize)
	if err := writeFile(root, "f", big); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := writeFile(root, "f", []byte("tiny")); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	got, err := readFile(root, "f")
	if err != nil || string(got) != "tiny" {
		t.Fatalf("after trunc: %q, %v", got, err)
	}
	mustCleanFsck(t, fs, "after truncate") // the old zones must all be freed
}

func TestSparseWriteZeroFills(t *testing.T) {
	fault.Guard(t)
	fs, _ := newTestFS(t, 2048)
	root := fs.Root()

	vn, err := root.(vfs.DirWriter).VCreate("s", 0o644, testCred)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	h, err := vn.VOpen(vfs.OWrite|vfs.ORead, testCred)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Write beyond EOF: the hole zones must exist and read as zeros.
	if _, err := h.HWrite([]byte("end"), 5*BlockSize); err != nil {
		t.Fatalf("write at hole: %v", err)
	}
	got, err := readFile(root, "s")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	want := append(make([]byte, 5*BlockSize), 'e', 'n', 'd')
	if !bytes.Equal(got, want) {
		t.Fatalf("sparse content mismatch: %d bytes", len(got))
	}
	mustCleanFsck(t, fs, "after sparse write")
}

func TestSmallCacheEviction(t *testing.T) {
	fault.Guard(t)
	// A cache far smaller than the working set forces eviction and
	// write-back on every path; contents must still round-trip.
	// CacheSlots below the floor clamps to minCacheSlots; a working set of
	// 20 files x 4 zones comfortably exceeds it.
	fs, dev := newTestFS(t, 2048, MountOptions{CacheSlots: 8})
	root := fs.Root()
	want := map[string][]byte{}
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("f%d", i)
		data := pattern(int64(100+i), 4*BlockSize)
		if err := writeFile(root, name, data); err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
		want[name] = data
	}
	got := dumpTree(t, fs)
	for p, w := range want {
		if !bytes.Equal(got[p], w) {
			t.Fatalf("file %q mismatch with tiny cache", p)
		}
	}
	mustCleanFsck(t, fs, "tiny cache")
	if err := fs.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	fs2, err := Mount(dev, MountOptions{CacheSlots: 8})
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	mustCleanFsck(t, fs2, "tiny cache remount")
}

func TestMountRejectsGarbage(t *testing.T) {
	fault.Guard(t)
	dev := NewMemDev(256)
	if _, err := Mount(dev); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mount of unformatted device: %v, want ErrCorrupt", err)
	}
	ok, err := IsFormatted(dev)
	if err != nil || ok {
		t.Fatalf("IsFormatted on blank device: %v, %v", ok, err)
	}
	if err := Mkfs(dev, 0); err != nil {
		t.Fatalf("mkfs: %v", err)
	}
	ok, err = IsFormatted(dev)
	if err != nil || !ok {
		t.Fatalf("IsFormatted after mkfs: %v, %v", ok, err)
	}
}
