package mem

// ASState is a deep copy of an address space's mutable state, captured for
// whole-kernel checkpoints. Unlike Dup (fork semantics), it preserves the
// watchpoint list, the page-event statistics, the vfork sharing count and
// the fault-injection owner — everything needed to rewind the space to the
// capture point in place. Backing objects are aliased, not copied: the
// file-system snapshot restores their contents separately, and the
// checkpoint as a whole is only coherent when both are restored together.
type ASState struct {
	segs     []*Seg // deep copies of the mappings
	stackIdx int    // index into segs of the stack designation (-1: none)
	brkIdx   int    // index into segs of the break designation (-1: none)
	stackLim uint32
	watches  []Watch
	stats    Stats
	refs     int
	owner    int
}

// copySegs deep-copies a mapping list, reporting where the stack and break
// designations land in the copy.
func copySegs(segs []*Seg, stack, brk *Seg) (out []*Seg, stackIdx, brkIdx int) {
	stackIdx, brkIdx = -1, -1
	out = make([]*Seg, len(segs))
	for i, s := range segs {
		ns := &Seg{
			Base: s.Base, Len: s.Len, Prot: s.Prot, MaxProt: s.MaxProt,
			Shared: s.Shared, Obj: s.Obj, Off: s.Off, Kind: s.Kind,
			priv: make(map[uint32][]byte, len(s.priv)),
		}
		for pb, pg := range s.priv {
			cp := make([]byte, len(pg))
			copy(cp, pg)
			ns.priv[pb] = cp
		}
		out[i] = ns
		if s == stack {
			stackIdx = i
		}
		if s == brk {
			brkIdx = i
		}
	}
	return out, stackIdx, brkIdx
}

// SaveState captures the address space.
func (as *AS) SaveState() *ASState {
	as.mu.Lock()
	defer as.mu.Unlock()
	segs, stackIdx, brkIdx := copySegs(as.segs, as.stack, as.brk)
	return &ASState{
		segs: segs, stackIdx: stackIdx, brkIdx: brkIdx,
		stackLim: as.stackLim,
		watches:  append([]Watch(nil), as.watches...),
		stats:    as.Stats,
		refs:     as.refs,
		owner:    as.owner,
	}
}

// LoadState restores the address space in place to a state captured by
// SaveState. The state remains reusable (it is copied again, not moved), so
// one checkpoint can be restored any number of times. The translation
// generation is bumped, which invalidates every TLB entry caching frames of
// this space — the one piece of derived state that must not survive.
func (as *AS) LoadState(st *ASState) {
	as.mu.Lock()
	defer as.mu.Unlock()
	segs, _, _ := copySegs(st.segs, nil, nil)
	as.segs = segs
	as.stack, as.brk = nil, nil
	if st.stackIdx >= 0 {
		as.stack = segs[st.stackIdx]
	}
	if st.brkIdx >= 0 {
		as.brk = segs[st.brkIdx]
	}
	as.stackLim = st.stackLim
	as.watches = append([]Watch(nil), st.watches...)
	as.Stats = st.stats
	as.refs = st.refs
	as.owner = st.owner
	as.rebuildWatchPages() // also invalidates cached translations
}
