package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func newTestAS() *AS { return NewAS(4096) }

func mustMap(t *testing.T, as *AS, a MapArgs) *Seg {
	t.Helper()
	s, err := as.Map(a)
	if err != nil {
		t.Fatalf("Map(%+v): %v", a, err)
	}
	return s
}

func TestMapBasics(t *testing.T) {
	as := newTestAS()
	s := mustMap(t, as, MapArgs{Base: 0x10000, Len: 100, Prot: ProtRW, Fixed: true})
	if s.Base != 0x10000 {
		t.Fatalf("base = %#x", s.Base)
	}
	if s.Len != 4096 {
		t.Fatalf("len should round to a page, got %d", s.Len)
	}
	if as.VirtSize() != 4096 {
		t.Fatalf("VirtSize = %d", as.VirtSize())
	}
	if as.NSegs() != 1 {
		t.Fatalf("NSegs = %d", as.NSegs())
	}
}

func TestMapOverlapRejected(t *testing.T) {
	as := newTestAS()
	mustMap(t, as, MapArgs{Base: 0x10000, Len: 8192, Prot: ProtRW, Fixed: true})
	if _, err := as.Map(MapArgs{Base: 0x11000, Len: 4096, Prot: ProtRW, Fixed: true}); err == nil {
		t.Fatal("overlapping fixed mapping should fail")
	}
	// Non-fixed relocates past the conflict.
	s := mustMap(t, as, MapArgs{Base: 0x10000, Len: 4096, Prot: ProtRW})
	if s.Base != 0x12000 {
		t.Fatalf("relocated base = %#x, want 0x12000", s.Base)
	}
}

func TestMapUnalignedFixedRejected(t *testing.T) {
	as := newTestAS()
	if _, err := as.Map(MapArgs{Base: 0x10001, Len: 10, Prot: ProtRW, Fixed: true}); err == nil {
		t.Fatal("unaligned fixed mapping should fail")
	}
}

func TestFindSeg(t *testing.T) {
	as := newTestAS()
	mustMap(t, as, MapArgs{Base: 0x10000, Len: 4096, Prot: ProtRW, Fixed: true})
	mustMap(t, as, MapArgs{Base: 0x30000, Len: 4096, Prot: ProtRX, Fixed: true})
	if s := as.FindSeg(0x10500); s == nil || s.Base != 0x10000 {
		t.Fatal("FindSeg in first mapping failed")
	}
	if s := as.FindSeg(0x20000); s != nil {
		t.Fatal("FindSeg in hole should be nil")
	}
	if s := as.FindSeg(0x30FFF); s == nil || s.Base != 0x30000 {
		t.Fatal("FindSeg at end of second mapping failed")
	}
	if s := as.FindSeg(0x31000); s != nil {
		t.Fatal("FindSeg just past end should be nil")
	}
}

func TestReadWritePrivateAnon(t *testing.T) {
	as := newTestAS()
	mustMap(t, as, MapArgs{Base: 0x10000, Len: 8192, Prot: ProtRW, Fixed: true})
	// Fresh anon memory reads as zeros.
	buf := make([]byte, 16)
	n, err := as.ReadAt(buf, 0x10000)
	if err != nil || n != 16 {
		t.Fatalf("ReadAt: n=%d err=%v", n, err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("anon memory should be zero-filled")
		}
	}
	msg := []byte("hello, world")
	if _, err := as.WriteAt(msg, 0x10010); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := as.ReadAt(got, 0x10010); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
}

func TestIOUnmappedStartFails(t *testing.T) {
	as := newTestAS()
	mustMap(t, as, MapArgs{Base: 0x10000, Len: 4096, Prot: ProtRW, Fixed: true})
	if _, err := as.ReadAt(make([]byte, 4), 0x50000); err != ErrNotMapped {
		t.Fatalf("read in unmapped area: err=%v, want ErrNotMapped", err)
	}
	if _, err := as.WriteAt([]byte{1}, 0x50000); err != ErrNotMapped {
		t.Fatalf("write in unmapped area: err=%v, want ErrNotMapped", err)
	}
}

func TestIOTruncatedAtBoundary(t *testing.T) {
	as := newTestAS()
	mustMap(t, as, MapArgs{Base: 0x10000, Len: 4096, Prot: ProtRW, Fixed: true})
	// Read extending past the end of the mapping is truncated, not failed.
	buf := make([]byte, 100)
	n, err := as.ReadAt(buf, 0x10000+4096-10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("read n = %d, want 10", n)
	}
	// This includes writes as well as reads.
	n, err = as.WriteAt(buf, 0x10000+4096-10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("write n = %d, want 10", n)
	}
}

func TestIOCrossesAdjacentSegs(t *testing.T) {
	as := newTestAS()
	mustMap(t, as, MapArgs{Base: 0x10000, Len: 4096, Prot: ProtRW, Fixed: true})
	mustMap(t, as, MapArgs{Base: 0x11000, Len: 4096, Prot: ProtRW, Fixed: true})
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	if n, err := as.WriteAt(data, 0x11000-32); err != nil || n != 64 {
		t.Fatalf("write across segs: n=%d err=%v", n, err)
	}
	got := make([]byte, 64)
	if n, err := as.ReadAt(got, 0x11000-32); err != nil || n != 64 {
		t.Fatalf("read across segs: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-seg round trip mismatch")
	}
}

func TestCopyOnWriteIsolation(t *testing.T) {
	// Two private mappings of the same object share content until one is
	// written; then the write is invisible to the other and to the object.
	obj := &ByteObject{Name: "/bin/a.out", Data: bytes.Repeat([]byte{0xAB}, 8192)}
	as1, as2 := newTestAS(), newTestAS()
	mustMap(t, as1, MapArgs{Base: 0x80000000, Len: 8192, Prot: ProtRX, Obj: obj, Fixed: true})
	mustMap(t, as2, MapArgs{Base: 0x80000000, Len: 8192, Prot: ProtRX, Obj: obj, Fixed: true})

	// Plant a "breakpoint" in as1 despite the mapping being read/exec.
	if _, err := as1.WriteAt([]byte{0xCC}, 0x80000100); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	as1.ReadAt(b, 0x80000100)
	if b[0] != 0xCC {
		t.Fatal("write not visible in as1")
	}
	as2.ReadAt(b, 0x80000100)
	if b[0] != 0xAB {
		t.Fatal("COW leak: write visible in as2")
	}
	if obj.Data[0x100] != 0xAB {
		t.Fatal("COW leak: write corrupted the a.out object")
	}
	if as1.Stats.COWFaults != 1 {
		t.Fatalf("COWFaults = %d, want 1", as1.Stats.COWFaults)
	}
}

func TestSharedMappingWritesThrough(t *testing.T) {
	anon := NewAnon("shm", 4096)
	as1, as2 := newTestAS(), newTestAS()
	mustMap(t, as1, MapArgs{Base: 0x40000, Len: 4096, Prot: ProtRW, Shared: true, Obj: anon, Fixed: true})
	mustMap(t, as2, MapArgs{Base: 0x70000, Len: 4096, Prot: ProtRW, Shared: true, Obj: anon, Fixed: true})
	as1.WriteAt([]byte("shared!"), 0x40010)
	got := make([]byte, 7)
	as2.ReadAt(got, 0x70010)
	if string(got) != "shared!" {
		t.Fatalf("shared mapping not shared: %q", got)
	}
}

func TestUnmapSplits(t *testing.T) {
	as := newTestAS()
	mustMap(t, as, MapArgs{Base: 0x10000, Len: 3 * 4096, Prot: ProtRW, Fixed: true})
	as.WriteAt([]byte{1}, 0x10000)                  // page 1
	as.WriteAt([]byte{2}, 0x10000+2*4096)           // page 3
	if err := as.Unmap(0x11000, 4096); err != nil { // carve out middle page
		t.Fatal(err)
	}
	if as.NSegs() != 2 {
		t.Fatalf("NSegs = %d, want 2", as.NSegs())
	}
	if _, err := as.ReadAt(make([]byte, 1), 0x11000); err != ErrNotMapped {
		t.Fatal("middle page should be unmapped")
	}
	b := make([]byte, 1)
	as.ReadAt(b, 0x10000)
	if b[0] != 1 {
		t.Fatal("low split lost private page")
	}
	as.ReadAt(b, 0x10000+2*4096)
	if b[0] != 2 {
		t.Fatal("high split lost private page")
	}
}

func TestMprotect(t *testing.T) {
	as := newTestAS()
	mustMap(t, as, MapArgs{Base: 0x10000, Len: 2 * 4096, Prot: ProtRW, Fixed: true})
	if err := as.Mprotect(0x10000, 4096, ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := as.CheckAccess(0x10000, 4, ProtWrite); err == nil {
		t.Fatal("write to read-only page should fault")
	} else if ae := err.(*AccessError); ae.Fault != types.FLTACCESS {
		t.Fatalf("fault = %s, want FLTACCESS", types.FltName(ae.Fault))
	}
	if err := as.CheckAccess(0x11000, 4, ProtWrite); err != nil {
		t.Fatalf("second page should still be writable: %v", err)
	}
	// Restoring within MaxProt works; exceeding it fails.
	if err := as.Mprotect(0x10000, 4096, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := as.Mprotect(0x10000, 4096, ProtRWX); err == nil {
		t.Fatal("mprotect beyond MaxProt should fail")
	}
}

func TestMprotectUnmappedFails(t *testing.T) {
	as := newTestAS()
	mustMap(t, as, MapArgs{Base: 0x10000, Len: 4096, Prot: ProtRW, Fixed: true})
	if err := as.Mprotect(0x10000, 2*4096, ProtRead); err == nil {
		t.Fatal("mprotect over a hole should fail")
	}
}

func TestCheckAccessFaults(t *testing.T) {
	as := newTestAS()
	mustMap(t, as, MapArgs{Base: 0x10000, Len: 4096, Prot: ProtRX, Fixed: true})
	if err := as.CheckAccess(0x50000, 4, ProtRead); err == nil {
		t.Fatal("unmapped access should fault")
	} else if err.(*AccessError).Fault != types.FLTBOUNDS {
		t.Fatal("unmapped access should be FLTBOUNDS")
	}
	if err := as.CheckAccess(0x10000, 4, ProtWrite); err == nil {
		t.Fatal("write to text should fault")
	} else if err.(*AccessError).Fault != types.FLTACCESS {
		t.Fatal("protection violation should be FLTACCESS")
	}
	if err := as.CheckAccess(0x10000, 4, ProtExec); err != nil {
		t.Fatalf("exec of text should be fine: %v", err)
	}
}

func TestStackGrowth(t *testing.T) {
	as := newTestAS()
	stk := mustMap(t, as, MapArgs{Base: 0x7FFF0000, Len: 4096, Prot: ProtRW, Kind: KindStack, Fixed: true})
	as.SetStack(stk, 0x7FF00000)
	// An access below the stack grows it automatically.
	if err := as.CheckAccess(0x7FFEE000, 4, ProtWrite); err != nil {
		t.Fatalf("stack growth access failed: %v", err)
	}
	if stk.Base != 0x7FFEE000 {
		t.Fatalf("stack base = %#x", stk.Base)
	}
	if as.Stats.GrowStack != 1 {
		t.Fatalf("GrowStack = %d", as.Stats.GrowStack)
	}
	// Below the limit it does not grow.
	if err := as.CheckAccess(0x7FE00000, 4, ProtWrite); err == nil {
		t.Fatal("access below stack limit should fault")
	}
}

func TestBrkGrowth(t *testing.T) {
	as := newTestAS()
	brk := mustMap(t, as, MapArgs{Base: 0x20000, Len: 4096, Prot: ProtRW, Kind: KindBreak, Fixed: true})
	as.SetBrk(brk)
	if err := as.Brk(0x20000 + 3*4096); err != nil {
		t.Fatal(err)
	}
	if brk.Len != 3*4096 {
		t.Fatalf("brk len = %d", brk.Len)
	}
	as.WriteAt([]byte{7}, 0x20000+2*4096)
	// Shrink drops pages past the new end.
	if err := as.Brk(0x20000 + 4096); err != nil {
		t.Fatal(err)
	}
	if brk.Len != 4096 {
		t.Fatalf("brk len after shrink = %d", brk.Len)
	}
	if err := as.Brk(0x20000 - 4096); err == nil {
		t.Fatal("brk below base should fail")
	}
	// Growth into another mapping fails.
	mustMap(t, as, MapArgs{Base: 0x22000, Len: 4096, Prot: ProtRW, Fixed: true})
	if err := as.Brk(0x20000 + 4*4096); err == nil {
		t.Fatal("brk into another mapping should fail")
	}
}

func TestDupCopiesPrivateState(t *testing.T) {
	obj := &ByteObject{Name: "a.out", Data: bytes.Repeat([]byte{1}, 4096)}
	as := newTestAS()
	mustMap(t, as, MapArgs{Base: 0x10000, Len: 4096, Prot: ProtRX, Obj: obj, Fixed: true})
	stk := mustMap(t, as, MapArgs{Base: 0x7FFF0000, Len: 4096, Prot: ProtRW, Kind: KindStack, Fixed: true})
	as.SetStack(stk, 0x7FF00000)
	as.WriteAt([]byte{0xCC}, 0x10000)

	child := as.Dup()
	if child.NSegs() != 2 {
		t.Fatalf("child NSegs = %d", child.NSegs())
	}
	b := make([]byte, 1)
	child.ReadAt(b, 0x10000)
	if b[0] != 0xCC {
		t.Fatal("child should inherit parent's private pages")
	}
	// Writes after fork are independent.
	child.WriteAt([]byte{0xDD}, 0x10000)
	as.ReadAt(b, 0x10000)
	if b[0] != 0xCC {
		t.Fatal("child write leaked into parent")
	}
	if child.StackSeg() == nil {
		t.Fatal("child should keep the stack designation")
	}
	if child.StackSeg() == as.StackSeg() {
		t.Fatal("child stack seg must be a copy")
	}
}

func TestMapStringFigure2Style(t *testing.T) {
	as := NewAS(2048) // the paper's machine used 2K pages, so 26K stays 26K
	obj := &ByteObject{Name: "/bin/demo", Data: make([]byte, 26*1024)}
	mustMap(t, as, MapArgs{Base: 0x80000000, Len: 26 * 1024, Prot: ProtRX, Obj: obj, Kind: KindText, Fixed: true})
	mustMap(t, as, MapArgs{Base: 0x80008000, Len: 6 * 1024, Prot: ProtRW, Obj: obj, Off: 26 * 1024, Kind: KindData, Fixed: true})
	out := as.MapString()
	want := "80000000     26K read/exec  [text]\n80008000      6K read/write [data]\n"
	if out != want {
		t.Fatalf("MapString:\n%s\nwant:\n%s", out, want)
	}
}

// Property: after any sequence of non-fixed mappings, segments are sorted and
// non-overlapping.
func TestQuickMappingInvariant(t *testing.T) {
	f := func(reqs []struct {
		Base uint16
		Len  uint16
	}) bool {
		as := newTestAS()
		for _, r := range reqs {
			l := uint32(r.Len)%(16*4096) + 1
			as.Map(MapArgs{Base: uint32(r.Base) * 4096, Len: l, Prot: ProtRW})
		}
		segs := as.Segs()
		for i := 1; i < len(segs); i++ {
			if segs[i-1].End() > uint64(segs[i].Base) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a write followed by a read at the same offset returns the data,
// for any in-bounds offset.
func TestQuickWriteReadRoundTrip(t *testing.T) {
	as := newTestAS()
	mustMap(t, as, MapArgs{Base: 0x10000, Len: 64 * 1024, Prot: ProtRW, Fixed: true})
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 4096 {
			data = data[:4096]
		}
		o := int64(0x10000) + int64(off)%int64(60*1024)
		n, err := as.WriteAt(data, o)
		if err != nil || n != len(data) {
			return false
		}
		got := make([]byte, len(data))
		n, err = as.ReadAt(got, o)
		return err == nil && n == len(data) && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
