package mem

import (
	"errors"

	"repro/internal/types"
)

// ErrNotMapped is returned by ReadAt/WriteAt when the starting offset lies in
// an unmapped area: "I/O operations with a file offset in an unmapped area
// fail". Operations that merely extend into unmapped areas do not fail but
// are truncated at the boundary.
var ErrNotMapped = errors.New("mem: address not mapped")

// CheckAccess validates a CPU access of n bytes at addr needing permissions
// want. It grows the stack automatically when the reference falls in the
// stack growth region, and raises FLTWATCH when the access overlaps a traced
// watchpoint. References to unwatched data that happen to fall in the same
// page as watched data are recovered transparently (and counted).
func (as *AS) CheckAccess(addr uint32, n int, want Prot) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.checkAccess(addr, n, want)
}

// checkAccess is CheckAccess with the address-space lock held.
func (as *AS) checkAccess(addr uint32, n int, want Prot) error {
	if n <= 0 {
		return nil
	}
	end := uint64(addr) + uint64(n)
	if end > 1<<32 {
		return &AccessError{Addr: addr, Fault: types.FLTBOUNDS}
	}
	for at := uint64(addr); at < end; {
		s := as.FindSeg(uint32(at))
		if s == nil {
			if as.tryGrowStack(uint32(at)) {
				continue
			}
			return &AccessError{Addr: uint32(at), Fault: types.FLTBOUNDS}
		}
		if want&^s.Prot != 0 {
			return &AccessError{Addr: uint32(at), Fault: types.FLTACCESS}
		}
		at = min64(end, s.End())
	}
	if want&(ProtRead|ProtWrite) != 0 {
		if err := as.checkWatch(addr, n, want); err != nil {
			return err
		}
	}
	return nil
}

// ReadAt implements the /proc read semantics on the address space: data may
// be transferred from any valid locations; a starting offset in an unmapped
// area fails; reads extending into unmapped areas are truncated at the
// boundary. Reads are permitted regardless of mapping permissions (the
// controlling process may inspect read-protected memory).
func (as *AS) ReadAt(p []byte, off int64) (int, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.readAt(p, off)
}

// readAt is ReadAt with the address-space lock held.
func (as *AS) readAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if off < 0 || off >= 1<<32 {
		return 0, ErrNotMapped
	}
	n := 0
	for n < len(p) {
		at := uint64(off) + uint64(n)
		if at >= 1<<32 {
			break
		}
		s := as.FindSeg(uint32(at))
		if s == nil {
			break
		}
		chunk := int(min64(min64(s.End(), at+uint64(len(p)-n)), as.pageEnd(at)) - at)
		as.readChunk(s, uint32(at), p[n:n+chunk])
		n += chunk
	}
	if n == 0 {
		return 0, ErrNotMapped
	}
	return n, nil
}

// WriteAt implements the /proc write semantics: writes to private mappings
// are satisfied by copy-on-write (writing to one process will not corrupt
// another process executing the same executable file or shared library);
// writes to shared mappings go through to the mapped object. A starting
// offset in an unmapped area fails; writes extending into unmapped areas are
// truncated at the boundary. This includes writes as well as reads.
//
// Permissions are not checked here: the CPU store path checks them with
// CheckAccess first, while the /proc path deliberately bypasses them so a
// controlling process can plant breakpoints in read/exec text.
func (as *AS) WriteAt(p []byte, off int64) (int, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.writeAt(p, off)
}

// writeAt is WriteAt with the address-space lock held.
func (as *AS) writeAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	if off < 0 || off >= 1<<32 {
		return 0, ErrNotMapped
	}
	n := 0
	for n < len(p) {
		at := uint64(off) + uint64(n)
		if at >= 1<<32 {
			break
		}
		s := as.FindSeg(uint32(at))
		if s == nil {
			break
		}
		chunk := int(min64(min64(s.End(), at+uint64(len(p)-n)), as.pageEnd(at)) - at)
		if err := as.writeChunk(s, uint32(at), p[n:n+chunk]); err != nil {
			if n == 0 {
				return 0, err
			}
			break
		}
		n += chunk
	}
	if n == 0 {
		return 0, ErrNotMapped
	}
	return n, nil
}

// accessSeg locates the mapping for a CPU access of n bytes at addr that
// does not cross a page boundary, applying the full access semantics in one
// segment walk: automatic stack growth, the permission check, and the
// watchpoint check. Mappings are page-granular, so an access within one
// page lies within one mapping.
func (as *AS) accessSeg(addr uint32, n int, want Prot) (*Seg, error) {
	for {
		s := as.FindSeg(addr)
		if s == nil {
			if as.tryGrowStack(addr) {
				continue
			}
			return nil, &AccessError{Addr: addr, Fault: types.FLTBOUNDS}
		}
		if want&^s.Prot != 0 {
			return nil, &AccessError{Addr: addr, Fault: types.FLTACCESS}
		}
		if want&(ProtRead|ProtWrite) != 0 {
			if err := as.checkWatch(addr, n, want); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
}

// crossesPage reports whether [addr, addr+n) spans a page boundary.
func (as *AS) crossesPage(addr uint32, n int) bool {
	return (addr^(addr+uint32(n)-1))&^(as.pagesize-1) != 0
}

// AccessRead performs a CPU load: the permission check, watchpoint check,
// automatic stack growth and the data copy of CheckAccess+ReadAt in a
// single segment walk. It is the vCPU's slow path; the TLB hit path skips
// even this.
func (as *AS) AccessRead(addr uint32, p []byte) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.accessCopy(addr, p, ProtRead)
}

// AccessFetch is AccessRead with execute permission: an instruction fetch.
// Like CheckAccess with ProtExec, it does not trigger watchpoints.
func (as *AS) AccessFetch(addr uint32, p []byte) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.accessCopy(addr, p, ProtExec)
}

func (as *AS) accessCopy(addr uint32, p []byte, want Prot) error {
	n := len(p)
	if n == 0 {
		return nil
	}
	if uint64(addr)+uint64(n) > 1<<32 {
		return &AccessError{Addr: addr, Fault: types.FLTBOUNDS}
	}
	if as.crossesPage(addr, n) {
		// Page-crossing accesses take the general two-pass path.
		if err := as.checkAccess(addr, n, want); err != nil {
			return err
		}
		_, err := as.readAt(p, int64(addr))
		return err
	}
	s, err := as.accessSeg(addr, n, want)
	if err != nil {
		return err
	}
	as.readChunk(s, addr, p)
	return nil
}

// AccessWrite performs a CPU store: CheckAccess+WriteAt folded into a
// single segment walk, including copy-on-write materialization.
func (as *AS) AccessWrite(addr uint32, p []byte) error {
	n := len(p)
	if n == 0 {
		return nil
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	if uint64(addr)+uint64(n) > 1<<32 {
		return &AccessError{Addr: addr, Fault: types.FLTBOUNDS}
	}
	if as.crossesPage(addr, n) {
		if err := as.checkAccess(addr, n, ProtWrite); err != nil {
			return err
		}
		_, err := as.writeAt(p, int64(addr))
		return err
	}
	s, err := as.accessSeg(addr, n, ProtWrite)
	if err != nil {
		return err
	}
	return as.writeChunk(s, addr, p)
}

// pageEnd returns the address of the end of the page containing at.
func (as *AS) pageEnd(at uint64) uint64 {
	return (at &^ uint64(as.pagesize-1)) + uint64(as.pagesize)
}

// readChunk copies out data within a single mapping and a single page.
func (as *AS) readChunk(s *Seg, addr uint32, p []byte) {
	pb := as.pageBase(addr)
	if !s.Shared {
		if pg, ok := s.priv[pb]; ok {
			copy(p, pg[addr-pb:])
			return
		}
	}
	if s.Obj != nil {
		s.Obj.ReadObj(p, s.Off+int64(addr)-int64(s.Base))
		return
	}
	for i := range p {
		p[i] = 0
	}
}

// writeChunk stores data within a single mapping and a single page,
// privatizing the page first for private mappings (copy-on-write).
func (as *AS) writeChunk(s *Seg, addr uint32, p []byte) error {
	if s.Shared {
		if s.Obj == nil {
			return errors.New("mem: shared mapping without object")
		}
		return s.Obj.WriteObj(p, s.Off+int64(addr)-int64(s.Base))
	}
	pb := as.pageBase(addr)
	pg, ok := s.priv[pb]
	if !ok {
		// Materializing a private page is the model's page-frame allocation:
		// a copy for object-backed pages (COW), zero-fill otherwise. The
		// injection sites sit before any state changes, so a refused
		// materialization leaves the page exactly as it was.
		if s.Obj != nil {
			if siteFaultCOW.Hit(as.owner) {
				return ErrNoMem
			}
		} else if siteFaultPage.Hit(as.owner) {
			return ErrNoMem
		}
		pg = make([]byte, as.pagesize)
		if s.Obj != nil {
			s.Obj.ReadObj(pg, s.Off+int64(pb)-int64(s.Base))
			as.Stats.COWFaults++
		} else {
			as.Stats.MinorFaults++
		}
		s.priv[pb] = pg
		// The page now resolves to private storage instead of the backing
		// object (or the zero page): cached translations are stale.
		as.invalidate()
	}
	copy(pg[addr-pb:], p)
	return nil
}

// PrivatePages returns the number of copy-on-write privatized pages in the
// mapping — observable evidence that breakpoint writes did not touch the
// underlying object.
func (s *Seg) PrivatePages() int { return len(s.priv) }
