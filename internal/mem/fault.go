package mem

import (
	"errors"

	"repro/internal/fault"
)

// ErrNoMem reports an (injected) page-frame allocation failure: the model
// never runs out of real memory, but the kernel's error paths have to behave
// as if it could. Address-space operations return it directly (the kernel
// maps it to ENOMEM); CPU-path accesses surface it as an access fault, which
// the process sees as SIGSEGV — the hard-failure convention for a store that
// cannot be materialized.
var ErrNoMem = errors.New("mem: out of page frames")

// Fault-injection sites for the address-space layer. Each guards one
// resource-acquisition choke point; all are disarmed (one atomic load) in
// normal operation. Hits are attributed to the owning process's pid so
// pid-scoped storms can target one victim.
var (
	siteFaultPage  = fault.Register("mem.page")  // zero-fill page materialization
	siteFaultCOW   = fault.Register("mem.cow")   // copy-on-write page copy
	siteFaultMap   = fault.Register("mem.map")   // new mapping (mmap, exec segments)
	siteFaultBrk   = fault.Register("mem.brk")   // break growth
	siteFaultStack = fault.Register("mem.stack") // automatic stack growth
)
