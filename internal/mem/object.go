// Package mem implements the SVR4 Virtual Memory model the paper builds on:
// a process executes in a virtual address space consisting of a number of
// memory mappings, each with a virtual address, a length, and permission
// flags. Mappings may be private (copy-on-write) or shared (write-through to
// the mapped object). The traditional text, data and stack segments are
// subsumed by these general notions, exactly as described in the paper.
//
// The package also implements the as_fault-style page materialization that
// makes /proc I/O possible ("all that is necessary for inter-process I/O is
// for the controlling process to apply as_fault to the address space of the
// target process ... and copy the data"), and page-protection based data
// watchpoints for the paper's proposed generalized watchpoint facility.
package mem

import (
	"fmt"
	"sync"
)

// Object is a backing store for a memory mapping — generally a file, or a
// suitably-behaving anonymous object provided by the system for segments
// such as bss and stack.
type Object interface {
	// ObjName identifies the object (a path for files, "[anon]" otherwise).
	ObjName() string
	// ObjSize is the current length of the object in bytes. Reads beyond
	// the size yield zeros.
	ObjSize() int64
	// ReadObj fills p from the object at off, zero-filling beyond its size.
	ReadObj(p []byte, off int64)
	// WriteObj stores p into the object at off, growing it if necessary.
	// It is used by shared mappings; objects that cannot be written return
	// an error.
	WriteObj(p []byte, off int64) error
}

// Anon is a sparse, page-granular anonymous memory object. It backs shared
// anonymous mappings (e.g. System V style shared memory). Private anonymous
// mappings need no object at all: their pages live in the mapping itself.
type Anon struct {
	name     string
	pagesize int

	mu    sync.Mutex
	pages map[int64][]byte
	size  int64
}

// NewAnon returns an anonymous object with the given page size.
func NewAnon(name string, pagesize int) *Anon {
	if name == "" {
		name = "[anon]"
	}
	return &Anon{name: name, pagesize: pagesize, pages: make(map[int64][]byte)}
}

// ObjName implements Object.
func (a *Anon) ObjName() string { return a.name }

// ObjSize implements Object.
func (a *Anon) ObjSize() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.size
}

// ReadObj implements Object.
func (a *Anon) ReadObj(p []byte, off int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for n := 0; n < len(p); {
		pg := off / int64(a.pagesize) * int64(a.pagesize)
		po := int(off - pg)
		chunk := a.pagesize - po
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		if page, ok := a.pages[pg]; ok {
			copy(p[n:n+chunk], page[po:po+chunk])
		} else {
			for i := n; i < n+chunk; i++ {
				p[i] = 0
			}
		}
		n += chunk
		off += int64(chunk)
	}
}

// WriteObj implements Object.
func (a *Anon) WriteObj(p []byte, off int64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for n := 0; n < len(p); {
		pg := off / int64(a.pagesize) * int64(a.pagesize)
		po := int(off - pg)
		chunk := a.pagesize - po
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		page, ok := a.pages[pg]
		if !ok {
			page = make([]byte, a.pagesize)
			a.pages[pg] = page
		}
		copy(page[po:po+chunk], p[n:n+chunk])
		n += chunk
		off += int64(chunk)
	}
	if end := off; end > a.size {
		a.size = end
	}
	return nil
}

var _ Object = (*Anon)(nil)

// ByteObject is a read-only Object over a byte slice; useful in tests and for
// immutable executable images.
type ByteObject struct {
	Name string
	Data []byte
}

// ObjName implements Object.
func (b *ByteObject) ObjName() string { return b.Name }

// ObjSize implements Object.
func (b *ByteObject) ObjSize() int64 { return int64(len(b.Data)) }

// ReadObj implements Object.
func (b *ByteObject) ReadObj(p []byte, off int64) {
	for i := range p {
		p[i] = 0
	}
	if off < int64(len(b.Data)) {
		copy(p, b.Data[off:])
	}
}

// WriteObj implements Object; ByteObjects are read-only.
func (b *ByteObject) WriteObj(p []byte, off int64) error {
	return fmt.Errorf("mem: object %s is read-only", b.Name)
}

// ObjBytes implements RevBytes: the data is immutable, so the revision is
// constant and pages over it may be frame-cached indefinitely.
func (b *ByteObject) ObjBytes() ([]byte, uint64) { return b.Data, 0 }

// ObjRev implements RevBytes.
func (b *ByteObject) ObjRev() uint64 { return 0 }

var (
	_ Object   = (*ByteObject)(nil)
	_ RevBytes = (*ByteObject)(nil)
)
