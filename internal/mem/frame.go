package mem

// This file is the frame-exposure side of the address space's fast-path /
// slow-path split (the UVM-style division of labor): the vCPU keeps a small
// software TLB of page translations, and the address space exposes the
// physical side of a translation — a directly addressable page frame — plus
// the generation protocol that tells caches when any translation may have
// gone stale.
//
// The contract has two layers:
//
//   - AS.Gen() is bumped by every mapping-state change: Map, Unmap,
//     Mprotect, Brk, automatic stack growth, copy-on-write page
//     materialization, watchpoint changes, and anything else that could
//     change what PageFrame would return. A cached Frame is valid only
//     while Gen() is unchanged (and the AS pointer itself is unchanged —
//     exec replaces the whole space).
//
//   - Object-backed frames alias the backing object's own storage, which
//     can move or change underneath the mapping (a write to the mapped
//     file) without the address space hearing about it. Such frames carry
//     the object's revision counter; users must revalidate Obj.ObjRev()
//     == Rev before every use. Frames backed by private pages or the zero
//     page have Obj == nil and need no revalidation.
//
// Pages that are watched, shared, or private-but-unmaterialized with no
// stable backing bytes are never exposed: accesses to them must take the
// slow path so watchpoint (FLTWATCH), copy-on-write, and write-through
// semantics stay bit-for-bit identical to the unaccelerated interpreter.

// RevBytes is an optional Object extension for backing stores whose entire
// content lives in one in-memory byte slice. It lets the address space hand
// out direct page frames over the object's storage. ObjBytes returns the
// current slice and a revision counter; the slice may be aliased only while
// ObjRev still returns the same revision. Implementations must change the
// revision on every content or size change (in-place or reallocating).
type RevBytes interface {
	Object
	// ObjBytes returns the current backing bytes and their revision.
	ObjBytes() ([]byte, uint64)
	// ObjRev returns the current revision; it must be cheap and callable
	// without heavyweight locking (it is consulted on every cached access).
	ObjRev() uint64
}

// Frame is a directly addressable page exposed to the vCPU fast path by
// PageFrame. Data is exactly one page long and aliases live storage: reads
// and writes through it are immediately visible to the slow path and vice
// versa — the cache holds translations, never data.
type Frame struct {
	Data     []byte // one page of live storage
	Prot     Prot   // effective permissions of the mapping
	Writable bool   // stores may write Data directly (materialized private page)
	Obj      RevBytes // non-nil: revalidate ObjRev() == Rev before every use
	Rev      uint64
}

// PageFrame returns a cacheable frame for the page containing addr. ok ==
// false means accesses to the page must take the slow path: the page is
// unmapped (possibly pending automatic stack growth, which only the slow
// path performs), shared, watched, or private-unmaterialized without stable
// backing bytes. The frame is valid until Gen() changes; object-backed
// frames additionally require ObjRev() revalidation per use.
//
// PageFrame itself has no side effects on the address space beyond the lazy
// allocation of the shared zero page: it never grows the stack, never
// materializes a page, and never counts a fault.
func (as *AS) PageFrame(addr uint32) (Frame, bool) {
	as.mu.Lock()
	defer as.mu.Unlock()
	pb := as.pageBase(addr)
	s := as.FindSeg(pb)
	if s == nil || s.Shared || as.watchPgs[pb] {
		return Frame{}, false
	}
	if uint64(pb)+uint64(as.pagesize) > s.End() {
		// Defensive: mappings are page-granular, so a mapped page base
		// implies the whole page is mapped; never expose a short frame.
		return Frame{}, false
	}
	if pg, ok := s.priv[pb]; ok {
		// A materialized private page: the one case stores may hit
		// directly (no copy-on-write left to do, no write-through).
		return Frame{Data: pg, Prot: s.Prot, Writable: true}, true
	}
	if s.Obj == nil {
		// Private anonymous, never written: reads see zeros. The shared
		// zero page serves reads; the first store must take the slow path
		// to materialize (and count) the page.
		if as.zero == nil {
			as.zero = make([]byte, as.pagesize)
		}
		return Frame{Data: as.zero, Prot: s.Prot}, true
	}
	if rb, ok := s.Obj.(RevBytes); ok {
		data, rev := rb.ObjBytes()
		off := s.Off + int64(pb) - int64(s.Base)
		if off < 0 {
			return Frame{}, false
		}
		if off+int64(as.pagesize) <= int64(len(data)) {
			return Frame{
				Data: data[off : off+int64(as.pagesize) : off+int64(as.pagesize)],
				Prot: s.Prot, Obj: rb, Rev: rev,
			}, true
		}
		// The page extends past the object: reads zero-fill beyond its
		// size, so alias-by-slice is impossible. Expose a zero-padded
		// snapshot instead; the revision check invalidates it the moment
		// the object changes (including growing into the padding), and
		// the fill cost amortizes over the hits until then. This is the
		// common case for small programs, whose whole text is shorter
		// than a page.
		cp := make([]byte, as.pagesize)
		if off < int64(len(data)) {
			copy(cp, data[off:])
		}
		return Frame{Data: cp, Prot: s.Prot, Obj: rb, Rev: rev}, true
	}
	return Frame{}, false
}

// Gen returns the address space's translation generation: it changes every
// time a cached page translation could have become stale. Caches must
// revalidate against it (and against the AS identity itself) before every
// use of a cached frame. The counter is atomic so a vCPU running on one
// host CPU observes a bump made by a mutator on another without taking the
// address-space lock — this is the cross-CPU TLB shootdown generation: a
// per-access load of Gen makes every remote invalidation visible before the
// next cached translation is used.
func (as *AS) Gen() uint64 { return as.gen.Load() }

// invalidate bumps the translation generation. Every mutation of mapping
// state — addresses, lengths, permissions, watchpoints, or which backing
// store a page resolves to — must pass through here.
func (as *AS) invalidate() { as.gen.Add(1) }
