package mem

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// Prot is a mapping permission set.
type Prot uint8

// Mapping permissions.
const (
	ProtRead  Prot = 1 << iota // readable
	ProtWrite                  // writable
	ProtExec                   // executable
)

// ProtRW and ProtRX are common permission combinations.
const (
	ProtRW  = ProtRead | ProtWrite
	ProtRX  = ProtRead | ProtExec
	ProtRWX = ProtRead | ProtWrite | ProtExec
)

// String renders permissions in the style of the paper's Figure 2
// ("read/exec", "read/write").
func (p Prot) String() string {
	var parts []string
	if p&ProtRead != 0 {
		parts = append(parts, "read")
	}
	if p&ProtWrite != 0 {
		parts = append(parts, "write")
	}
	if p&ProtExec != 0 {
		parts = append(parts, "exec")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "/")
}

// SegKind labels a mapping for reporting purposes. The model itself treats
// all mappings uniformly; "stack" and "break" appear in the PIOCMAP interface
// despite the disclaimers because the system is prepared to grow them, and a
// process-control application can sometimes make use of this information.
type SegKind int

// Segment kinds.
const (
	KindOther SegKind = iota
	KindText
	KindData
	KindBSS
	KindBreak
	KindStack
	KindShlibText
	KindShlibData
)

var kindNames = [...]string{"", "text", "data", "bss", "break", "stack", "shlib text", "shlib data"}

// String returns a human-readable label for the kind ("" for KindOther).
func (k SegKind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return ""
}

// AccessError describes a machine fault raised by an address-space access.
type AccessError struct {
	Addr  uint32 // faulting virtual address
	Fault int    // types.FLTBOUNDS, types.FLTACCESS, or types.FLTWATCH
}

// Error implements error.
func (e *AccessError) Error() string {
	return fmt.Sprintf("mem: %s at address %#x", types.FltName(e.Fault), e.Addr)
}

// Seg is one memory mapping: a contiguous virtual address range with
// permissions, a backing object (nil for private anonymous memory), and —
// for private mappings — the pages that have been privatized by
// copy-on-write.
type Seg struct {
	Base    uint32 // starting virtual address (page aligned)
	Len     uint32 // length in bytes (page multiple)
	Prot    Prot   // current permissions
	MaxProt Prot   // maximum permissions mprotect may restore
	Shared  bool   // MAP_SHARED: stores go through to the object
	Obj     Object // backing object; nil means private anonymous zero-fill
	Off     int64  // object offset corresponding to Base
	Kind    SegKind

	priv map[uint32][]byte // page base -> private page (copy-on-write state)
}

// End returns the first address past the mapping.
func (s *Seg) End() uint64 { return uint64(s.Base) + uint64(s.Len) }

// Contains reports whether addr falls inside the mapping.
func (s *Seg) Contains(addr uint32) bool {
	return addr >= s.Base && uint64(addr) < s.End()
}

// ObjName returns the backing object name, or "[anon]".
func (s *Seg) ObjName() string {
	if s.Obj == nil {
		return "[anon]"
	}
	return s.Obj.ObjName()
}

// Stats counts page-level events in an address space. Minor faults are
// zero-fill materializations; COW faults are copy-on-write page copies. The
// PIOCUSAGE resource-usage extension reports these.
type Stats struct {
	MinorFaults  int64 // zero-fill page materializations
	COWFaults    int64 // copy-on-write page copies
	WatchRecover int64 // same-page references to unwatched data recovered transparently
	GrowStack    int64 // automatic stack extensions
}

// AS is a process address space: an ordered set of non-overlapping mappings
// plus the watchpoint list and page-event statistics.
//
// Locking: mu is the per-address-space lock. Every exported mutator (Map,
// Unmap, Mprotect, Brk, Dup, the watchpoint setters) and every exported
// multi-step access path (CheckAccess, ReadAt, WriteAt, AccessRead,
// AccessFetch, AccessWrite, PageFrame) takes it; unexported helpers assume
// it is held. This is what lets an SMP kernel run one process's user code
// (whose vCPU slow path lands here) concurrently with another CPU mutating
// the same space through a /proc write or a vfork sibling's brk — without a
// global memory lock. The TLB fast path never takes mu: it revalidates each
// cached frame against the atomic generation (Gen) and the backing object's
// revision instead. Read-only reporting views (Segs, SegsView, FindSeg,
// VirtSize, MapString, Watches) stay lock-free; they are only called from
// contexts already serialized against mutation of that space (the owning
// process's own syscalls, or a kernel that has quiesced the target).
type AS struct {
	mu       sync.Mutex
	pagesize uint32
	segs     []*Seg // sorted by Base
	stack    *Seg   // the mapping grown automatically (initial program stack)
	brk      *Seg   // the mapping grown by brk(2)
	stackLim uint32 // lowest address the stack may grow to
	watches  []Watch
	watchPgs map[uint32]bool // pages containing any watched byte
	Stats    Stats
	refs     int // vfork sharing count
	owner    int // pid charged for fault-injection hits (0: unattributed)

	gen  atomic.Uint64 // translation generation (see frame.go)
	zero []byte        // shared read-only zero page for unmaterialized anon reads
}

// DefaultPageSize is the page size used unless overridden; "a small multiple
// of 1024 bytes" per the paper.
const DefaultPageSize = 4096

// NewAS returns an empty address space with the given page size
// (DefaultPageSize if pagesize <= 0).
func NewAS(pagesize int) *AS {
	if pagesize <= 0 {
		pagesize = DefaultPageSize
	}
	return &AS{pagesize: uint32(pagesize), watchPgs: make(map[uint32]bool), refs: 1}
}

// PageSize returns the address space's page size.
func (as *AS) PageSize() uint32 { return as.pagesize }

// SetOwner attributes the address space to pid for fault injection. A vfork
// child shares the parent's space and therefore the parent's attribution.
func (as *AS) SetOwner(pid int) { as.owner = pid }

// Owner returns the pid the address space is attributed to (0 if none).
func (as *AS) Owner() int { return as.owner }

// pageBase rounds addr down to a page boundary.
func (as *AS) pageBase(addr uint32) uint32 { return addr &^ (as.pagesize - 1) }

// roundUp rounds n up to a page multiple, using 64-bit arithmetic.
func (as *AS) roundUp(n uint64) uint64 {
	ps := uint64(as.pagesize)
	return (n + ps - 1) &^ (ps - 1)
}

// NSegs returns the number of mappings (PIOCNMAP).
func (as *AS) NSegs() int { return len(as.segs) }

// Segs returns the mappings in address order. The slice is fresh but the
// *Seg values are live; callers must not mutate them.
func (as *AS) Segs() []*Seg { return append([]*Seg(nil), as.segs...) }

// SegsView returns the live mapping slice in address order without copying.
// Callers must not mutate the slice or the mappings, and the view is only
// valid until the next operation that changes the address space — it is
// meant for read-and-encode paths (/proc map and status readers) that walk
// the mappings once and drop the slice. Gen() identifies the validity
// window: a view taken at one generation must not be used at another.
func (as *AS) SegsView() []*Seg { return as.segs }

// VirtSize returns the total virtual memory size in bytes — the "size"
// reported for the process's /proc file in Figure 1. It takes the
// address-space lock: inspectors read it while the owning process may be
// extending a mapping from a fault path on another CPU.
func (as *AS) VirtSize() int64 {
	as.mu.Lock()
	defer as.mu.Unlock()
	var n int64
	for _, s := range as.segs {
		n += int64(s.Len)
	}
	return n
}

// StatsSnap returns a copy of the page-event statistics taken under the
// address-space lock, for inspectors that may run concurrently with the
// owning process's fault paths (which bump these counters under the same
// lock).
func (as *AS) StatsSnap() Stats {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.Stats
}

// FindSeg returns the mapping containing addr, or nil.
func (as *AS) FindSeg(addr uint32) *Seg {
	i := sort.Search(len(as.segs), func(i int) bool {
		return as.segs[i].End() > uint64(addr)
	})
	if i < len(as.segs) && as.segs[i].Contains(addr) {
		return as.segs[i]
	}
	return nil
}

// MapArgs describes a mapping request.
type MapArgs struct {
	Base    uint32 // requested base (page aligned); with Fixed it is mandatory
	Len     uint32 // length in bytes (rounded up to pages)
	Prot    Prot
	MaxProt Prot // defaults to Prot|ProtRead|ProtWrite if zero
	Shared  bool
	Obj     Object
	Off     int64
	Kind    SegKind
	Fixed   bool // fail rather than relocate if Base unavailable
}

// Map establishes a new mapping and returns its base address. Without Fixed,
// Base is a hint and the first free range at or above it is used.
func (as *AS) Map(a MapArgs) (*Seg, error) {
	if a.Len == 0 {
		return nil, fmt.Errorf("mem: zero-length mapping")
	}
	if siteFaultMap.Hit(as.owner) {
		return nil, ErrNoMem
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	length := as.roundUp(uint64(a.Len))
	if length > 1<<32 {
		return nil, fmt.Errorf("mem: mapping too large")
	}
	base := as.pageBase(a.Base)
	if a.Fixed {
		if base != a.Base {
			return nil, fmt.Errorf("mem: fixed mapping at unaligned address %#x", a.Base)
		}
		if uint64(base)+length > 1<<32 {
			return nil, fmt.Errorf("mem: fixed mapping past end of address space")
		}
		if as.overlaps(base, length) {
			return nil, fmt.Errorf("mem: mapping overlap at %#x", base)
		}
	} else {
		b, ok := as.findFree(base, length)
		if !ok {
			return nil, fmt.Errorf("mem: address space exhausted")
		}
		base = b
	}
	maxp := a.MaxProt
	if maxp == 0 {
		maxp = a.Prot | ProtRead | ProtWrite
	}
	seg := &Seg{
		Base: base, Len: uint32(length), Prot: a.Prot, MaxProt: maxp,
		Shared: a.Shared, Obj: a.Obj, Off: a.Off, Kind: a.Kind,
		priv: make(map[uint32][]byte),
	}
	as.insert(seg)
	as.invalidate()
	return seg, nil
}

func (as *AS) overlaps(base uint32, length uint64) bool {
	end := uint64(base) + length
	for _, s := range as.segs {
		if uint64(s.Base) < end && s.End() > uint64(base) {
			return true
		}
	}
	return false
}

func (as *AS) findFree(hint uint32, length uint64) (uint32, bool) {
	base := uint64(as.pageBase(hint))
	for {
		if base+length > 1<<32 {
			return 0, false
		}
		conflict := false
		for _, s := range as.segs {
			if uint64(s.Base) < base+length && s.End() > base {
				base = as.roundUp(s.End())
				conflict = true
				break
			}
		}
		if !conflict {
			return uint32(base), true
		}
	}
}

func (as *AS) insert(seg *Seg) {
	i := sort.Search(len(as.segs), func(i int) bool {
		return as.segs[i].Base >= seg.Base
	})
	as.segs = append(as.segs, nil)
	copy(as.segs[i+1:], as.segs[i:])
	as.segs[i] = seg
}

// Unmap removes the mappings covering [base, base+len), splitting mappings
// that straddle the boundary.
func (as *AS) Unmap(base, length uint32) error {
	if length == 0 {
		return nil
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	lo := uint64(as.pageBase(base))
	hi := as.roundUp(uint64(base) + uint64(length))
	var out []*Seg
	for _, s := range as.segs {
		sLo, sHi := uint64(s.Base), s.End()
		if sHi <= lo || sLo >= hi {
			out = append(out, s)
			continue
		}
		if sLo < lo {
			out = append(out, s.slice(sLo, lo, as.pagesize))
		}
		if sHi > hi {
			out = append(out, s.slice(hi, sHi, as.pagesize))
		}
		if as.stack == s {
			as.stack = nil
		}
		if as.brk == s {
			as.brk = nil
		}
	}
	as.segs = out
	sort.Slice(as.segs, func(i, j int) bool { return as.segs[i].Base < as.segs[j].Base })
	as.invalidate()
	return nil
}

// slice returns the portion of s covering [lo, hi), keeping the private
// pages that fall inside.
func (s *Seg) slice(lo, hi uint64, pagesize uint32) *Seg {
	ns := &Seg{
		Base: uint32(lo), Len: uint32(hi - lo), Prot: s.Prot, MaxProt: s.MaxProt,
		Shared: s.Shared, Obj: s.Obj, Off: s.Off + int64(lo) - int64(s.Base),
		Kind: s.Kind, priv: make(map[uint32][]byte),
	}
	for pb, pg := range s.priv {
		if uint64(pb) >= lo && uint64(pb) < hi {
			ns.priv[pb] = pg
		}
	}
	return ns
}

// Mprotect changes the permissions of [base, base+len). The range must be
// entirely mapped, and the new permissions must not exceed any covered
// mapping's MaxProt. Mappings straddling the boundary are split.
func (as *AS) Mprotect(base, length uint32, prot Prot) error {
	if length == 0 {
		return nil
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	lo := uint64(as.pageBase(base))
	hi := as.roundUp(uint64(base) + uint64(length))
	// Verify full coverage and MaxProt first so the operation is atomic.
	for at := lo; at < hi; {
		s := as.FindSeg(uint32(at))
		if s == nil {
			return &AccessError{Addr: uint32(at), Fault: types.FLTBOUNDS}
		}
		if prot&^s.MaxProt != 0 {
			return &AccessError{Addr: uint32(at), Fault: types.FLTACCESS}
		}
		at = s.End()
	}
	var out []*Seg
	for _, s := range as.segs {
		sLo, sHi := uint64(s.Base), s.End()
		if sHi <= lo || sLo >= hi {
			out = append(out, s)
			continue
		}
		if sLo < lo {
			out = append(out, s.slice(sLo, lo, as.pagesize))
		}
		mid := s.slice(max64(sLo, lo), min64(sHi, hi), as.pagesize)
		mid.Prot = prot
		out = append(out, mid)
		if sHi > hi {
			out = append(out, s.slice(hi, sHi, as.pagesize))
		}
		if as.stack == s {
			as.stack = mid
		}
		if as.brk == s {
			as.brk = mid
		}
	}
	as.segs = out
	sort.Slice(as.segs, func(i, j int) bool { return as.segs[i].Base < as.segs[j].Base })
	as.invalidate()
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// SetStack designates seg as the automatically-grown program stack; the
// stack may grow down to limit.
func (as *AS) SetStack(seg *Seg, limit uint32) {
	as.stack = seg
	as.stackLim = limit
}

// SetBrk designates seg as the break mapping grown by brk(2).
func (as *AS) SetBrk(seg *Seg) { as.brk = seg }

// StackSeg returns the stack mapping, if designated.
func (as *AS) StackSeg() *Seg { return as.stack }

// BrkSeg returns the break mapping, if designated.
func (as *AS) BrkSeg() *Seg { return as.brk }

// Brk grows or shrinks the break mapping so that it ends at newEnd.
// It implements the brk(2) system call's effect on the address space.
func (as *AS) Brk(newEnd uint32) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	s := as.brk
	if s == nil {
		return fmt.Errorf("mem: no break mapping")
	}
	if newEnd < s.Base {
		return fmt.Errorf("mem: brk below break base")
	}
	newLen := as.roundUp(uint64(newEnd) - uint64(s.Base))
	if newLen == uint64(s.Len) {
		return nil
	}
	if newLen > uint64(s.Len) {
		if siteFaultBrk.Hit(as.owner) {
			return ErrNoMem
		}
		// Check the growth region is free.
		if as.overlaps(uint32(s.End()), newLen-uint64(s.Len)) {
			return fmt.Errorf("mem: brk collides with another mapping")
		}
		s.Len = uint32(newLen)
		as.invalidate()
		return nil
	}
	// Shrink: drop private pages past the new end.
	for pb := range s.priv {
		if uint64(pb) >= uint64(s.Base)+newLen {
			delete(s.priv, pb)
		}
	}
	s.Len = uint32(newLen)
	as.invalidate()
	return nil
}

// tryGrowStack extends the stack mapping downward to cover addr, if addr is
// in the growth region. It reports whether growth occurred.
func (as *AS) tryGrowStack(addr uint32) bool {
	s := as.stack
	if s == nil || addr >= s.Base || addr < as.stackLim {
		return false
	}
	// An injected failure here means the kernel "could not find a frame for
	// the new stack page": the access falls through to the ordinary bounds
	// fault and the process takes SIGSEGV, exactly as on a real system whose
	// stack could not be extended.
	if siteFaultStack.Hit(as.owner) {
		return false
	}
	newBase := as.pageBase(addr)
	grow := s.Base - newBase
	if as.overlaps(newBase, uint64(grow)) {
		return false
	}
	s.Off -= int64(grow)
	s.Base = newBase
	s.Len += grow
	as.Stats.GrowStack++
	sort.Slice(as.segs, func(i, j int) bool { return as.segs[i].Base < as.segs[j].Base })
	as.invalidate()
	return true
}

// Dup returns a copy of the address space for fork(2): mappings are copied,
// shared mappings alias the same objects, and private pages are duplicated.
func (as *AS) Dup() *AS {
	as.mu.Lock()
	defer as.mu.Unlock()
	n := NewAS(int(as.pagesize))
	n.stackLim = as.stackLim
	for _, s := range as.segs {
		ns := &Seg{
			Base: s.Base, Len: s.Len, Prot: s.Prot, MaxProt: s.MaxProt,
			Shared: s.Shared, Obj: s.Obj, Off: s.Off, Kind: s.Kind,
			priv: make(map[uint32][]byte, len(s.priv)),
		}
		for pb, pg := range s.priv {
			cp := make([]byte, len(pg))
			copy(cp, pg)
			ns.priv[pb] = cp
		}
		n.segs = append(n.segs, ns)
		if as.stack == s {
			n.stack = ns
		}
		if as.brk == s {
			n.brk = ns
		}
	}
	// Watchpoints are per-address-space state and do not survive fork.
	return n
}

// Ref increments the sharing count (vfork).
func (as *AS) Ref() { as.refs++ }

// Unref decrements the sharing count and reports whether the space is dead.
func (as *AS) Unref() bool { as.refs--; return as.refs <= 0 }

// MapString renders the address space in the style of the paper's Figure 2.
func (as *AS) MapString() string {
	var b strings.Builder
	for _, s := range as.segs {
		kb := (int64(s.Len) + 1023) / 1024
		fmt.Fprintf(&b, "%08X %6dK %-10s", s.Base, kb, s.Prot)
		if s.Kind != KindOther {
			fmt.Fprintf(&b, " [%s]", s.Kind)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
