package mem

import (
	"testing"

	"repro/internal/types"
)

func TestWatchpointFires(t *testing.T) {
	as := newTestAS()
	mustMap(t, as, MapArgs{Base: 0x10000, Len: 4096, Prot: ProtRW, Fixed: true})
	as.SetWatch(0x10100, 1, ProtWrite) // watch a single byte

	// Write to the watched byte fires FLTWATCH.
	err := as.CheckAccess(0x10100, 1, ProtWrite)
	if err == nil {
		t.Fatal("watched write should fault")
	}
	if ae := err.(*AccessError); ae.Fault != types.FLTWATCH || ae.Addr != 0x10100 {
		t.Fatalf("got %v", ae)
	}
	// A 4-byte store overlapping the watched byte fires too.
	if err := as.CheckAccess(0x100FE, 4, ProtWrite); err == nil {
		t.Fatal("overlapping write should fault")
	}
	// A read does not fire a write watchpoint, but is a same-page recovery.
	before := as.Stats.WatchRecover
	if err := as.CheckAccess(0x10100, 1, ProtRead); err != nil {
		t.Fatalf("read of write-watched byte should not fault: %v", err)
	}
	if as.Stats.WatchRecover != before+1 {
		t.Fatal("read should count as a transparent recovery")
	}
}

func TestWatchpointSamePageRecovery(t *testing.T) {
	as := newTestAS()
	mustMap(t, as, MapArgs{Base: 0x10000, Len: 4096, Prot: ProtRW, Fixed: true})
	as.SetWatch(0x10FF0, 1, ProtWrite)

	// Unwatched data in the same page: access succeeds but is counted as a
	// recovered fault (the paper: the system recovers from machine faults
	// taken due to references to unwatched data in the same page).
	if err := as.CheckAccess(0x10000, 4, ProtWrite); err != nil {
		t.Fatalf("unwatched same-page write should succeed: %v", err)
	}
	if as.Stats.WatchRecover != 1 {
		t.Fatalf("WatchRecover = %d, want 1", as.Stats.WatchRecover)
	}
	// A different page entirely: no recovery cost.
	mustMap(t, as, MapArgs{Base: 0x20000, Len: 4096, Prot: ProtRW, Fixed: true})
	if err := as.CheckAccess(0x20000, 4, ProtWrite); err != nil {
		t.Fatal(err)
	}
	if as.Stats.WatchRecover != 1 {
		t.Fatal("other-page access should not count a recovery")
	}
}

func TestWatchpointModes(t *testing.T) {
	as := newTestAS()
	mustMap(t, as, MapArgs{Base: 0x10000, Len: 4096, Prot: ProtRW, Fixed: true})
	as.SetWatch(0x10200, 8, ProtRead)
	if err := as.CheckAccess(0x10204, 1, ProtRead); err == nil {
		t.Fatal("read watchpoint should fire on read")
	}
	if err := as.CheckAccess(0x10204, 1, ProtWrite); err != nil {
		t.Fatal("read watchpoint should not fire on write")
	}
}

func TestWatchpointClear(t *testing.T) {
	as := newTestAS()
	mustMap(t, as, MapArgs{Base: 0x10000, Len: 4096, Prot: ProtRW, Fixed: true})
	as.SetWatch(0x10100, 4, ProtWrite)
	as.SetWatch(0x10200, 4, ProtWrite)
	as.ClearWatch(0x10100)
	if err := as.CheckAccess(0x10100, 4, ProtWrite); err != nil {
		t.Fatal("cleared watchpoint should not fire")
	}
	if err := as.CheckAccess(0x10200, 4, ProtWrite); err == nil {
		t.Fatal("remaining watchpoint should still fire")
	}
	as.ClearAllWatches()
	if err := as.CheckAccess(0x10200, 4, ProtWrite); err != nil {
		t.Fatal("ClearAllWatches should drop everything")
	}
	if len(as.Watches()) != 0 {
		t.Fatal("Watches should be empty")
	}
}

func TestWatchpointSpansPages(t *testing.T) {
	as := newTestAS()
	mustMap(t, as, MapArgs{Base: 0x10000, Len: 3 * 4096, Prot: ProtRW, Fixed: true})
	as.SetWatch(0x10FFC, 8, ProtWrite) // straddles a page boundary
	if err := as.CheckAccess(0x11002, 1, ProtWrite); err == nil {
		t.Fatal("watch spanning pages should fire on second page")
	}
	// Both touched pages count as watched for recovery purposes.
	if err := as.CheckAccess(0x11800, 1, ProtWrite); err != nil {
		t.Fatal("unwatched byte on second page should recover")
	}
	if as.Stats.WatchRecover != 1 {
		t.Fatalf("WatchRecover = %d", as.Stats.WatchRecover)
	}
}

func TestAnonObject(t *testing.T) {
	a := NewAnon("", 4096)
	if a.ObjName() != "[anon]" {
		t.Fatal("default name")
	}
	buf := make([]byte, 10)
	a.ReadObj(buf, 100)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("fresh anon should read zeros")
		}
	}
	if err := a.WriteObj([]byte("xyz"), 4094); err != nil { // page-crossing write
		t.Fatal(err)
	}
	got := make([]byte, 3)
	a.ReadObj(got, 4094)
	if string(got) != "xyz" {
		t.Fatalf("got %q", got)
	}
	if a.ObjSize() != 4097 {
		t.Fatalf("size = %d", a.ObjSize())
	}
}

func TestByteObjectReadOnly(t *testing.T) {
	b := &ByteObject{Name: "x", Data: []byte{1, 2, 3}}
	if err := b.WriteObj([]byte{9}, 0); err == nil {
		t.Fatal("ByteObject should be read-only")
	}
	buf := make([]byte, 5)
	b.ReadObj(buf, 1)
	if buf[0] != 2 || buf[1] != 3 || buf[2] != 0 {
		t.Fatalf("ReadObj zero-fill wrong: %v", buf)
	}
}

func TestProtString(t *testing.T) {
	cases := map[Prot]string{
		0:         "none",
		ProtRead:  "read",
		ProtRW:    "read/write",
		ProtRX:    "read/exec",
		ProtRWX:   "read/write/exec",
		ProtWrite: "write",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Prot(%d).String() = %q, want %q", p, got, want)
		}
	}
}
