package mem

import "fmt"

// CheckInvariants verifies the structural invariants of the address space.
// The fault-storm harness calls it after every injected fault: a failed
// allocation anywhere in the VM layer must leave the space exactly as
// consistent as it found it. It returns the first violation found, or nil.
func (as *AS) CheckInvariants() error {
	ps := uint64(as.pagesize)
	if ps == 0 || ps&(ps-1) != 0 {
		return fmt.Errorf("mem: page size %d not a power of two", ps)
	}
	if as.refs < 1 {
		return fmt.Errorf("mem: reference count %d on a live space", as.refs)
	}
	var prevEnd uint64
	stackSeen, brkSeen := false, false
	for i, s := range as.segs {
		if uint64(s.Base)%ps != 0 {
			return fmt.Errorf("mem: seg %d base %#x not page aligned", i, s.Base)
		}
		if s.Len == 0 || uint64(s.Len)%ps != 0 {
			return fmt.Errorf("mem: seg %d length %#x not a page multiple", i, s.Len)
		}
		if s.End() > 1<<32 {
			return fmt.Errorf("mem: seg %d extends past the address space", i)
		}
		if i > 0 && uint64(s.Base) < prevEnd {
			return fmt.Errorf("mem: seg %d at %#x overlaps or disorders predecessor ending %#x",
				i, s.Base, prevEnd)
		}
		prevEnd = s.End()
		if s.Prot&^s.MaxProt != 0 {
			return fmt.Errorf("mem: seg %d prot %v exceeds max %v", i, s.Prot, s.MaxProt)
		}
		if s.Shared && s.Obj == nil {
			return fmt.Errorf("mem: seg %d shared without a backing object", i)
		}
		if s.priv == nil {
			return fmt.Errorf("mem: seg %d has no private-page map", i)
		}
		for pb, pg := range s.priv {
			if uint64(pb)%ps != 0 {
				return fmt.Errorf("mem: seg %d private page %#x not aligned", i, pb)
			}
			if !s.Contains(pb) {
				return fmt.Errorf("mem: seg %d private page %#x out of bounds", i, pb)
			}
			if uint64(len(pg)) != ps {
				return fmt.Errorf("mem: seg %d private page %#x has size %d", i, pb, len(pg))
			}
		}
		if s == as.stack {
			stackSeen = true
		}
		if s == as.brk {
			brkSeen = true
		}
	}
	if as.stack != nil && !stackSeen {
		return fmt.Errorf("mem: stack segment not in the mapping list")
	}
	if as.brk != nil && !brkSeen {
		return fmt.Errorf("mem: break segment not in the mapping list")
	}
	// watchPgs must be exactly the pages spanned by the watch list.
	want := make(map[uint32]bool)
	for _, w := range as.watches {
		if w.Len == 0 {
			return fmt.Errorf("mem: zero-length watchpoint at %#x", w.Addr)
		}
		for pb := as.pageBase(w.Addr); ; pb += as.pagesize {
			want[pb] = true
			if uint64(pb)+ps >= uint64(w.Addr)+uint64(w.Len) {
				break
			}
		}
	}
	if len(want) != len(as.watchPgs) {
		return fmt.Errorf("mem: watch page cache has %d pages, watch list spans %d",
			len(as.watchPgs), len(want))
	}
	for pb := range want {
		if !as.watchPgs[pb] {
			return fmt.Errorf("mem: watch page cache missing page %#x", pb)
		}
	}
	return nil
}
