package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

// Property: after Dup, writes to either space are invisible to the other.
func TestQuickDupIsolation(t *testing.T) {
	f := func(off uint16, val byte) bool {
		parent := NewAS(4096)
		parent.Map(MapArgs{Base: 0x10000, Len: 16384, Prot: ProtRW, Fixed: true})
		addr := int64(0x10000) + int64(off)%16380
		parent.WriteAt([]byte{1, 2, 3, 4}, addr)
		child := parent.Dup()
		child.WriteAt([]byte{val}, addr)
		pb := make([]byte, 1)
		parent.ReadAt(pb, addr)
		cb := make([]byte, 1)
		child.ReadAt(cb, addr)
		if pb[0] != 1 {
			return false // child write leaked into parent
		}
		if cb[0] != val {
			return false
		}
		// And the other direction.
		parent.WriteAt([]byte{0xEE}, addr+1)
		child.ReadAt(cb, addr+1)
		return cb[0] == 2 // the pre-Dup value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Mprotect is atomic — on failure, the original permissions of
// every page are intact.
func TestQuickMprotectAtomic(t *testing.T) {
	f := func(n uint8) bool {
		as := NewAS(4096)
		as.Map(MapArgs{Base: 0x10000, Len: 4 * 4096, Prot: ProtRW, Fixed: true})
		// A range extending past the mapping: must fail and change nothing.
		length := uint32(n)%8*4096 + 5*4096
		if err := as.Mprotect(0x10000, length, ProtRead); err == nil {
			return false
		}
		for a := uint32(0x10000); a < 0x10000+4*4096; a += 4096 {
			if err := as.CheckAccess(a, 4, ProtWrite); err != nil {
				return false // a page lost its write permission
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Unmap of a sub-range never affects data outside it.
func TestQuickUnmapPreservesNeighbors(t *testing.T) {
	f := func(pageIdx uint8) bool {
		as := NewAS(4096)
		as.Map(MapArgs{Base: 0x10000, Len: 8 * 4096, Prot: ProtRW, Fixed: true})
		payload := []byte("sentinel")
		for pg := 0; pg < 8; pg++ {
			as.WriteAt(payload, int64(0x10000+pg*4096))
		}
		victim := uint32(pageIdx) % 8
		as.Unmap(0x10000+victim*4096, 4096)
		for pg := uint32(0); pg < 8; pg++ {
			got := make([]byte, len(payload))
			_, err := as.ReadAt(got, int64(0x10000+pg*4096))
			if pg == victim {
				if err == nil {
					return false // unmapped page still readable
				}
				continue
			}
			if err != nil || !bytes.Equal(got, payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a watchpoint fires for exactly the accesses that overlap it.
func TestQuickWatchpointPrecision(t *testing.T) {
	f := func(wOff, aOff uint8, wLen, aLen uint8) bool {
		as := NewAS(4096)
		as.Map(MapArgs{Base: 0x10000, Len: 4096, Prot: ProtRW, Fixed: true})
		wl := uint32(wLen)%16 + 1
		al := int(aLen)%16 + 1
		wAddr := 0x10000 + uint32(wOff)
		aAddr := 0x10000 + uint32(aOff)
		as.SetWatch(wAddr, wl, ProtWrite)
		err := as.CheckAccess(aAddr, al, ProtWrite)
		overlaps := uint64(aAddr) < uint64(wAddr)+uint64(wl) &&
			uint64(aAddr)+uint64(al) > uint64(wAddr)
		if overlaps {
			ae, ok := err.(*AccessError)
			return ok && ae.Fault == types.FLTWATCH
		}
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
