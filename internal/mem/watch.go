package mem

import "repro/internal/types"

// Watch is a data watchpoint: a watched area of any size, down to a single
// byte, with the access modes that trigger it. This implements the paper's
// proposed generalized data watchpoint facility, which is based on the VM
// system's ability to re-map read/write permissions on individual pages: the
// traced process stops only when a watchpoint really fires, and the system
// takes care of recovering from machine faults taken due to references to
// unwatched data that happen to fall in the same page as watched data.
type Watch struct {
	Addr uint32 // first watched address
	Len  uint32 // number of watched bytes (>= 1)
	Mode Prot   // ProtRead and/or ProtWrite: which accesses trigger
}

// overlapsAccess reports whether an access of n bytes at addr with modes
// `want` triggers the watchpoint.
func (w Watch) overlapsAccess(addr uint32, n int, want Prot) bool {
	if want&w.Mode == 0 {
		return false
	}
	aEnd := uint64(addr) + uint64(n)
	wEnd := uint64(w.Addr) + uint64(w.Len)
	return uint64(addr) < wEnd && aEnd > uint64(w.Addr)
}

// SetWatch establishes a watchpoint. A zero-length or zero-mode watch is
// rejected silently by being ignored.
func (as *AS) SetWatch(addr, length uint32, mode Prot) {
	if length == 0 || mode&(ProtRead|ProtWrite) == 0 {
		return
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	as.watches = append(as.watches, Watch{Addr: addr, Len: length, Mode: mode})
	as.rebuildWatchPages()
}

// ClearWatch removes all watchpoints starting at addr. It builds a fresh
// slice rather than filtering in place so that a WatchesView taken before
// the clear keeps describing the pre-clear state.
func (as *AS) ClearWatch(addr uint32) {
	as.mu.Lock()
	defer as.mu.Unlock()
	var out []Watch
	for _, w := range as.watches {
		if w.Addr != addr {
			out = append(out, w)
		}
	}
	as.watches = out
	as.rebuildWatchPages()
}

// ClearAllWatches removes every watchpoint.
func (as *AS) ClearAllWatches() {
	as.mu.Lock()
	defer as.mu.Unlock()
	as.watches = nil
	as.rebuildWatchPages()
}

// Watches returns a copy of the active watchpoints.
func (as *AS) Watches() []Watch { return append([]Watch(nil), as.watches...) }

// WatchesView returns the live watchpoint slice without copying. Callers
// must not mutate it, and the view is only valid until the next watchpoint
// change — read-and-encode paths (PIOCGWATCH, status readers) walk it once
// and drop it. Watchpoint mutations build fresh slices, so a view taken
// before a change still describes the pre-change state.
func (as *AS) WatchesView() []Watch { return as.watches }

// NWatches returns the number of active watchpoints without copying.
func (as *AS) NWatches() int { return len(as.watches) }

func (as *AS) rebuildWatchPages() {
	as.watchPgs = make(map[uint32]bool)
	for _, w := range as.watches {
		for pb := as.pageBase(w.Addr); ; pb += as.pagesize {
			as.watchPgs[pb] = true
			if uint64(pb)+uint64(as.pagesize) >= uint64(w.Addr)+uint64(w.Len) {
				break
			}
		}
	}
	// Watched pages are never frame-cached; any change to the watched set
	// must drop every cached translation.
	as.invalidate()
}

// checkWatch implements the page-protection watchpoint model. If the access
// touches a page containing watched data, the hardware would fault; the
// system then either reports FLTWATCH (the access really overlaps a watched
// range with a triggering mode) or transparently recovers and retries (it
// does not). Recoveries are counted in Stats.WatchRecover: they are the cost
// the paper's design accepts to watch areas smaller than a page.
func (as *AS) checkWatch(addr uint32, n int, want Prot) error {
	if len(as.watches) == 0 {
		return nil
	}
	touched := false
	end := uint64(addr) + uint64(n)
	for pb := as.pageBase(addr); uint64(pb) < end; pb += as.pagesize {
		if as.watchPgs[pb] {
			touched = true
			break
		}
		if uint64(pb)+uint64(as.pagesize) >= 1<<32 {
			break
		}
	}
	if !touched {
		return nil
	}
	for _, w := range as.watches {
		if w.overlapsAccess(addr, n, want) {
			return &AccessError{Addr: w.Addr, Fault: types.FLTWATCH}
		}
	}
	as.Stats.WatchRecover++
	return nil
}
