package mem

import (
	"bytes"
	"testing"
)

// genOf asserts the generation moved (or not) across op and returns the new
// value.
func genStep(t *testing.T, as *AS, name string, wantBump bool, op func()) {
	t.Helper()
	before := as.Gen()
	op()
	if bumped := as.Gen() != before; bumped != wantBump {
		t.Fatalf("%s: gen bump = %v, want %v (gen %d -> %d)",
			name, bumped, wantBump, before, as.Gen())
	}
}

// TestGenBumpPerOp pins the invalidation protocol: every operation that can
// change what PageFrame returns must bump Gen(), and pure reads must not.
func TestGenBumpPerOp(t *testing.T) {
	as := NewAS(4096)
	var seg *Seg
	genStep(t, as, "Map", true, func() {
		seg = mustMap(t, as, MapArgs{Base: 0x10000, Len: 3 * 4096, Prot: ProtRW, Fixed: true})
	})
	genStep(t, as, "ReadAt", false, func() {
		var b [4]byte
		as.ReadAt(b[:], 0x10000)
	})
	genStep(t, as, "WriteAt materialize", true, func() {
		if _, err := as.WriteAt([]byte{1, 2, 3, 4}, 0x10000); err != nil {
			t.Fatal(err)
		}
	})
	genStep(t, as, "WriteAt same page again", false, func() {
		if _, err := as.WriteAt([]byte{5}, 0x10001); err != nil {
			t.Fatal(err)
		}
	})
	genStep(t, as, "Mprotect", true, func() {
		if err := as.Mprotect(0x11000, 4096, ProtRead); err != nil {
			t.Fatal(err)
		}
	})
	genStep(t, as, "SetWatch", true, func() { as.SetWatch(0x10010, 4, ProtWrite) })
	genStep(t, as, "ClearWatch", true, func() { as.ClearWatch(0x10010) })
	genStep(t, as, "SetWatch 2", true, func() { as.SetWatch(0x10020, 4, ProtRead) })
	genStep(t, as, "ClearAllWatches", true, func() { as.ClearAllWatches() })
	genStep(t, as, "Unmap", true, func() {
		if err := as.Unmap(0x12000, 4096); err != nil {
			t.Fatal(err)
		}
	})

	brk := mustMap(t, as, MapArgs{Base: 0x20000, Len: 4096, Prot: ProtRW, Fixed: true})
	as.SetBrk(brk)
	genStep(t, as, "Brk grow", true, func() {
		if err := as.Brk(0x22000); err != nil {
			t.Fatal(err)
		}
	})
	genStep(t, as, "Brk shrink", true, func() {
		if err := as.Brk(0x21000); err != nil {
			t.Fatal(err)
		}
	})

	stack := mustMap(t, as, MapArgs{Base: 0x80000, Len: 4096, Prot: ProtRW, Fixed: true})
	as.SetStack(stack, 0x70000)
	genStep(t, as, "stack growth", true, func() {
		if err := as.CheckAccess(0x7f000, 4, ProtWrite); err != nil {
			t.Fatal(err)
		}
	})
	if seg == nil {
		t.Fatal("map lost")
	}
}

// TestPageFrameCases pins which pages the address space exposes to the TLB
// and which it refuses.
func TestPageFrameCases(t *testing.T) {
	as := NewAS(4096)

	if _, ok := as.PageFrame(0x10000); ok {
		t.Fatal("unmapped page got a frame")
	}

	// Private anonymous, unmaterialized: read-only zero frame.
	mustMap(t, as, MapArgs{Base: 0x10000, Len: 4096, Prot: ProtRW, Fixed: true})
	f, ok := as.PageFrame(0x10000)
	if !ok || f.Writable || f.Obj != nil {
		t.Fatalf("anon unmaterialized: frame=%+v ok=%v, want read-only zero frame", f, ok)
	}
	for _, b := range f.Data {
		if b != 0 {
			t.Fatal("zero frame not zero")
		}
	}

	// Materialized private page: writable frame aliasing live storage.
	if _, err := as.WriteAt([]byte{0xaa}, 0x10004); err != nil {
		t.Fatal(err)
	}
	f, ok = as.PageFrame(0x10000)
	if !ok || !f.Writable || f.Obj != nil {
		t.Fatalf("materialized page: frame=%+v ok=%v, want writable frame", f, ok)
	}
	f.Data[8] = 0x55
	var got [1]byte
	as.ReadAt(got[:], 0x10008)
	if got[0] != 0x55 {
		t.Fatal("frame write not visible through slow path: frame is not live storage")
	}

	// Shared mapping: never a frame.
	obj := &ByteObject{Name: "o", Data: bytes.Repeat([]byte{7}, 8192)}
	mustMap(t, as, MapArgs{Base: 0x20000, Len: 4096, Prot: ProtRW, Shared: true, Obj: obj, Fixed: true})
	if _, ok := as.PageFrame(0x20000); ok {
		t.Fatal("shared page got a frame")
	}

	// Watched page: never a frame; clearing the watch re-exposes it.
	as.SetWatch(0x10004, 4, ProtWrite)
	if _, ok := as.PageFrame(0x10000); ok {
		t.Fatal("watched page got a frame")
	}
	as.ClearWatch(0x10004)
	if _, ok := as.PageFrame(0x10000); !ok {
		t.Fatal("page still refused after watch cleared")
	}

	// Private object-backed, page fully inside the object: aliasing frame
	// carrying the object revision.
	mustMap(t, as, MapArgs{Base: 0x30000, Len: 8192, Prot: ProtRX, Obj: obj, Fixed: true})
	f, ok = as.PageFrame(0x30000)
	if !ok || f.Writable || f.Obj == nil {
		t.Fatalf("object page: frame=%+v ok=%v, want read-only object frame", f, ok)
	}
	if &f.Data[0] != &obj.Data[0] {
		t.Fatal("full object page should alias the object's storage")
	}

	// Private object-backed, page extending past the object: zero-padded
	// snapshot, still revision-guarded.
	short := &ByteObject{Name: "s", Data: []byte{1, 2, 3}}
	mustMap(t, as, MapArgs{Base: 0x40000, Len: 4096, Prot: ProtRX, Obj: short, Fixed: true})
	f, ok = as.PageFrame(0x40000)
	if !ok || f.Obj == nil {
		t.Fatalf("short object page: frame=%+v ok=%v, want padded snapshot", f, ok)
	}
	if len(f.Data) != 4096 || !bytes.Equal(f.Data[:3], []byte{1, 2, 3}) || f.Data[3] != 0 {
		t.Fatal("padded snapshot content wrong")
	}

	// COW materialization over the object makes the page writable and
	// drops the object linkage.
	as.Mprotect(0x30000, 4096, ProtRW)
	if _, err := as.WriteAt([]byte{9}, 0x30000); err != nil {
		t.Fatal(err)
	}
	f, ok = as.PageFrame(0x30000)
	if !ok || !f.Writable || f.Obj != nil {
		t.Fatalf("post-COW page: frame=%+v ok=%v, want writable private frame", f, ok)
	}
}

// TestSegsViewStable pins that a view taken before a mutating operation is
// not corrupted by it: the operations that rebuild in place must build fresh
// slices (or only append), never scribble over entries a reader may still be
// walking. Readers still must not use a view across a Gen() change; this
// test guards the weaker property the /proc readers rely on implicitly when
// a mutation happens after their walk.
func TestSegsViewStable(t *testing.T) {
	as := NewAS(4096)
	mustMap(t, as, MapArgs{Base: 0x10000, Len: 4096, Prot: ProtRW, Fixed: true})
	mustMap(t, as, MapArgs{Base: 0x20000, Len: 4096, Prot: ProtRead, Fixed: true})
	view := as.SegsView()
	if len(view) != 2 {
		t.Fatalf("view len = %d", len(view))
	}
	gen := as.Gen()
	mustMap(t, as, MapArgs{Base: 0x30000, Len: 4096, Prot: ProtRW, Fixed: true})
	if as.Gen() == gen {
		t.Fatal("Map did not bump gen: stale views would go undetected")
	}
	if view[0].Base != 0x10000 || view[1].Base != 0x20000 {
		t.Fatalf("old view corrupted by Map: %#x %#x", view[0].Base, view[1].Base)
	}
}

func TestWatchesViewStable(t *testing.T) {
	as := NewAS(4096)
	mustMap(t, as, MapArgs{Base: 0x10000, Len: 4096, Prot: ProtRW, Fixed: true})
	as.SetWatch(0x10000, 4, ProtWrite)
	as.SetWatch(0x10010, 4, ProtRead)
	view := as.WatchesView()
	if len(view) != 2 || as.NWatches() != 2 {
		t.Fatalf("view len = %d, NWatches = %d", len(view), as.NWatches())
	}
	as.ClearWatch(0x10000)
	if view[0].Addr != 0x10000 || view[1].Addr != 0x10010 {
		t.Fatalf("old view corrupted by ClearWatch: %#x %#x", view[0].Addr, view[1].Addr)
	}
	if n := as.NWatches(); n != 1 {
		t.Fatalf("NWatches after clear = %d", n)
	}
}

// TestObjectFrameRevalidation pins the revision half of the protocol: a
// cached object frame must be detectably stale after the object changes,
// even though the address space's generation does not move.
func TestObjectFrameRevalidation(t *testing.T) {
	as := NewAS(4096)
	obj := &ByteObject{Name: "o", Data: bytes.Repeat([]byte{7}, 4096)}
	mustMap(t, as, MapArgs{Base: 0x10000, Len: 4096, Prot: ProtRX, Obj: obj, Fixed: true})
	f, ok := as.PageFrame(0x10000)
	if !ok || f.Obj == nil {
		t.Fatal("no object frame")
	}
	if f.Obj.ObjRev() != f.Rev {
		t.Fatal("fresh frame already stale")
	}
	// ByteObject is immutable (constant revision 0); the mutable-object
	// revalidation path is exercised end to end by the memfs-backed kernel
	// tests. Here, check the Dup'd space starts a fresh protocol: frames
	// from the parent must not validate against the child.
	child := as.Dup()
	cf, ok := child.PageFrame(0x10000)
	if !ok {
		t.Fatal("child lost the mapping")
	}
	if &cf == &f {
		t.Fatal("frames aliased across Dup")
	}
}
