package bsl_test

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/bsl"
	"repro/internal/kernel"
	"repro/internal/types"
)

// run compiles a bsl program, runs it on a booted system, and returns the
// exit code.
func run(t *testing.T, src string) int {
	t.Helper()
	img, err := bsl.CompileToImage(src, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s := repro.NewSystem()
	if err := s.FS.WriteFile("/bin/prog", img.Marshal(), 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	p, err := s.Spawn("/bin/prog", nil, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	ok, code := kernel.WIfExited(status)
	if !ok {
		t.Fatalf("program died: status %#x", status)
	}
	return code
}

func TestReturnConstant(t *testing.T) {
	if got := run(t, `func main() { return 42; }`); got != 42 {
		t.Fatalf("got %d", got)
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want int
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 - 3 - 2", 5},
		{"17 / 5", 3},
		{"17 % 5", 2},
		{"6 & 3", 2},
		{"6 | 3", 7},
		{"6 ^ 3", 5},
		{"1 << 4", 16},
		{"64 >> 3", 8},
		{"-5 + 10", 5},
		{"~0 & 0xFF", 255},
		{"!0", 1},
		{"!7", 0},
		{"3 < 5", 1},
		{"5 < 3", 0},
		{"5 <= 5", 1},
		{"5 == 5", 1},
		{"5 != 5", 0},
		{"7 > 2", 1},
		{"2 >= 7", 0},
		{"1 && 2", 1},
		{"1 && 0", 0},
		{"0 || 3", 1},
		{"0 || 0", 0},
	}
	for _, tc := range cases {
		src := "func main() { return " + tc.expr + "; }"
		if got := run(t, src); got != tc.want {
			t.Errorf("%s = %d, want %d", tc.expr, got, tc.want)
		}
	}
}

func TestLocalsAndAssignment(t *testing.T) {
	got := run(t, `
func main() {
    var a = 10;
    var b;
    b = a * 2;
    a = a + b;
    return a;   // 30
}`)
	if got != 30 {
		t.Fatalf("got %d", got)
	}
}

func TestGlobals(t *testing.T) {
	got := run(t, `
var counter = 5;
var uninit;

func bump() { counter = counter + 1; return 0; }

func main() {
    bump(); bump(); bump();
    uninit = 100;
    return counter + uninit / 10;   // 8 + 10
}`)
	if got != 18 {
		t.Fatalf("got %d", got)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	got := run(t, `
func fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() { return fib(10); }`)
	if got != 55 {
		t.Fatalf("fib(10) = %d", got)
	}
}

func TestWhileLoop(t *testing.T) {
	got := run(t, `
func main() {
    var sum = 0;
    var i = 1;
    while (i <= 10) {
        sum = sum + i;
        i = i + 1;
    }
    return sum;   // 55
}`)
	if got != 55 {
		t.Fatalf("got %d", got)
	}
}

func TestIfElseChain(t *testing.T) {
	src := `
func classify(n) {
    if (n < 10) { return 1; }
    else if (n < 100) { return 2; }
    else { return 3; }
}
func main() { return classify(%s); }`
	for in, want := range map[string]int{"5": 1, "50": 2, "500": 3} {
		if got := run(t, strings.Replace(src, "%s", in, 1)); got != want {
			t.Errorf("classify(%s) = %d, want %d", in, got, want)
		}
	}
}

func TestArrays(t *testing.T) {
	got := run(t, `
var table[10];

func main() {
    var i = 0;
    while (i < 10) {
        table[i] = i * i;
        i = i + 1;
    }
    return table[7];   // 49
}`)
	if got != 49 {
		t.Fatalf("got %d", got)
	}
}

func TestLocalInLoopDoesNotGrowStack(t *testing.T) {
	// A var inside a loop must not push per iteration; with 100k
	// iterations a broken frame would blow the stack limit.
	got := run(t, `
func main() {
    var i = 0;
    var last = 0;
    while (i < 100000) {
        var t = i * 2;
        last = t;
        i = i + 1;
    }
    return last % 251;
}`)
	if got != (99999*2)%251 {
		t.Fatalf("got %d", got)
	}
}

func TestSysBuiltin(t *testing.T) {
	// getpid via sys(): pid of the first spawned process is 3.
	got := run(t, `func main() { return sys(20); }`)
	if got != 3 {
		t.Fatalf("sys(20) = %d", got)
	}
}

func TestSysFileIO(t *testing.T) {
	got := run(t, `
var path = "/tmp/bsl.out";
var msg = "written from bsl\n";
var buf[8];

func main() {
    var fd = sys(8, path, 438);      // creat(path, 0666)
    if (fd > 63) { return 1; }
    sys(4, fd, msg, 17);             // write
    sys(6, fd);                      // close
    fd = sys(5, path, 1);            // open O_RDONLY
    var n = sys(3, fd, buf, 17);     // read
    return n;                        // 17
}`)
	if got != 17 {
		t.Fatalf("got %d", got)
	}
}

func TestForkWithSys(t *testing.T) {
	got := run(t, `
var status[1];

func main() {
    var pid = sys(2);                // fork
    if (pid == 0) {
        sys(1, 7);                   // child exits 7
    }
    sys(7, status);                  // wait(&status)
    return status[0] >> 8;           // child's code
}`)
	if got != 7 {
		t.Fatalf("got %d", got)
	}
}

func TestStringGlobalIsAddress(t *testing.T) {
	got := run(t, `
var s = "ABC";
func main() {
    // Reading through the address needs sys(read)-style access; just
    // verify the address is nonzero and stable across uses.
    return (s == s) + (s != 0);
}`)
	if got != 2 {
		t.Fatalf("got %d", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		`func main() { return x; }`,                               // undefined name
		`func main() { x = 1; }`,                                  // assign to undefined
		`func f() {} func f() {}`,                                 // redefinition (also no main)
		`var a; var a; func main() {}`,                            // dup global
		`func main(a, a) {}`,                                      // dup param
		`func main() { var a; var a; }`,                           // dup local
		`func main() { return f(1); } func f(a, b) { return 0; }`, // arity
		`func main() { if 1 { } }`,                                // missing parens
		`func main() { sys(); }`,                                  // empty sys
		`func main() { return 1 }`,                                // missing semicolon
		`var s = ;`,                                               // bad initializer
		`func main() { return "x" [0]; }`,                         // junk
		`func notmain() {}`,                                       // no main
		`func main() { return 0xFFFFFFFFF; }`,                     // number too large
		`func main() { return "unterminated`,                      // unterminated string
	}
	for _, src := range cases {
		if _, err := bsl.Compile(src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestErrorHasLine(t *testing.T) {
	_, err := bsl.Compile("func main() {\n  return\n  bogus ?;\n}")
	cerr, ok := err.(*bsl.Error)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	if cerr.Line < 2 {
		t.Fatalf("line = %d", cerr.Line)
	}
}

func TestCommentsAndCharLiterals(t *testing.T) {
	got := run(t, `
// leading comment
func main() {
    var c = 'A';        // a char literal
    var n = '\n';
    return c + n;       // 65 + 10
}`)
	if got != 75 {
		t.Fatalf("got %d", got)
	}
}

func TestCompileEmitsSymbols(t *testing.T) {
	img, err := bsl.CompileToImage(`
func helper(x) { return x; }
func main() { return helper(1); }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := img.Lookup("main"); !ok {
		t.Fatal("main symbol missing")
	}
	if _, ok := img.Lookup("helper"); !ok {
		t.Fatal("helper symbol missing")
	}
	if _, ok := img.Lookup("_start"); !ok {
		t.Fatal("_start symbol missing")
	}
}

// Deep recursion in compiled code exercises the kernel's automatic stack
// growth: each frame is pushed by generated prologue code, and the VM grows
// the stack mapping transparently.
func TestDeepRecursionGrowsStack(t *testing.T) {
	img, err := bsl.CompileToImage(`
func sum(n) {
    if (n == 0) { return 0; }
    return n + sum(n - 1);
}
func main() { return sum(2000) % 251; }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := repro.NewSystem()
	s.FS.WriteFile("/bin/deep", img.Marshal(), 0o755, 0, 0)
	p, err := s.Spawn("/bin/deep", nil, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatal(err)
	}
	ok, code := kernel.WIfExited(status)
	if !ok {
		t.Fatalf("died: %#x", status)
	}
	if want := (2000 * 2001 / 2) % 251; code != want {
		t.Fatalf("sum = %d, want %d", code, want)
	}
	if p.AS != nil {
		t.Fatal("process should be gone")
	}
}

// Division by zero in compiled code dies with SIGFPE, like any program.
func TestCompiledDivByZeroDies(t *testing.T) {
	img, err := bsl.CompileToImage(`
var zero = 0;
func main() { return 1 / zero; }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := repro.NewSystem()
	s.FS.WriteFile("/bin/crash", img.Marshal(), 0o755, 0, 0)
	p, _ := s.Spawn("/bin/crash", nil, types.UserCred(100, 10))
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatal(err)
	}
	if ok, sig, core := kernel.WIfSignaled(status); !ok || sig != types.SIGFPE || !core {
		t.Fatalf("status = %#x, want SIGFPE with core", status)
	}
}
