package bsl

// Expression compilation: the result of every expression lands in r1.
// Temporaries are kept on the stack (push the left operand, evaluate the
// right, pop and combine), so function calls and sys() inside expressions
// are safe.

// Precedence climbing over the binary operators.
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (c *compiler) expr() error { return c.binary(1) }

func (c *compiler) binary(minPrec int) error {
	if err := c.unary(); err != nil {
		return err
	}
	for {
		t := c.tok()
		if t.kind != tPunct {
			return nil
		}
		prec, ok := precedence[t.text]
		if !ok || prec < minPrec {
			return nil
		}
		op := t.text
		c.advance()
		c.emit("push r1")
		if err := c.binary(prec + 1); err != nil {
			return err
		}
		c.emit("mov r2, r1")
		c.emit("pop r1")
		c.combine(op)
	}
}

// combine applies a binary operator to r1 (left) and r2 (right).
func (c *compiler) combine(op string) {
	switch op {
	case "+":
		c.emit("add r1, r2")
	case "-":
		c.emit("sub r1, r2")
	case "*":
		c.emit("mul r1, r2")
	case "/":
		c.emit("div r1, r2")
	case "%":
		c.emit("mod r1, r2")
	case "&":
		c.emit("and r1, r2")
	case "|":
		c.emit("or r1, r2")
	case "^":
		c.emit("xor r1, r2")
	case "<<":
		c.emit("shlr r1, r2")
	case ">>":
		c.emit("shrr r1, r2")
	case "&&":
		// Normalize both to 0/1 and AND. (No short circuit; bsl
		// expressions are effect-free except for calls, which the
		// programmer sequences explicitly.)
		c.normalizeBool("r1")
		c.normalizeBool("r2")
		c.emit("and r1, r2")
	case "||":
		c.emit("or r1, r2")
		c.normalizeBool("r1")
	case "==", "!=", "<", "<=", ">", ">=":
		c.comparison(op)
	}
}

// normalizeBool turns a register into 0/1.
func (c *compiler) normalizeBool(reg string) {
	done := c.newLabel()
	c.emit("cmpi %s, 0", reg)
	c.emit("movi %s, 1", reg)
	c.emit("jne %s", done)
	c.emit("movi %s, 0", reg)
	c.label(done)
}

// comparison sets r1 to the 0/1 outcome of r1 <op> r2 (signed).
func (c *compiler) comparison(op string) {
	jcc := map[string]string{
		"==": "je", "!=": "jne", "<": "jlt", "<=": "jle", ">": "jgt", ">=": "jge",
	}[op]
	yes := c.newLabel()
	done := c.newLabel()
	c.emit("cmp r1, r2")
	c.emit("%s %s", jcc, yes)
	c.emit("movi r1, 0")
	c.emit("jmp %s", done)
	c.label(yes)
	c.emit("movi r1, 1")
	c.label(done)
}

func (c *compiler) unary() error {
	t := c.tok()
	if t.kind == tPunct {
		switch t.text {
		case "-":
			c.advance()
			if err := c.unary(); err != nil {
				return err
			}
			c.emit("mov r2, r1")
			c.emit("movi r1, 0")
			c.emit("sub r1, r2")
			return nil
		case "!":
			c.advance()
			if err := c.unary(); err != nil {
				return err
			}
			done := c.newLabel()
			c.emit("cmpi r1, 0")
			c.emit("movi r1, 0")
			c.emit("jne %s", done)
			c.emit("movi r1, 1")
			c.label(done)
			return nil
		case "~":
			c.advance()
			if err := c.unary(); err != nil {
				return err
			}
			c.emit("not r1")
			return nil
		}
	}
	return c.primary()
}

func (c *compiler) primary() error {
	t := c.tok()
	switch {
	case t.kind == tNum:
		c.advance()
		if t.num <= 0xFFFF {
			c.emit("movi r1, %d", t.num)
		} else {
			c.emit("li r1, %d", t.num)
		}
		return nil
	case t.kind == tStr:
		c.advance()
		c.emit("la r1, %s", c.strLabel(t.text))
		return nil
	case c.isPunct("("):
		c.advance()
		if err := c.expr(); err != nil {
			return err
		}
		return c.expectPunct(")")
	case c.isKeyword("sys"):
		return c.sysCall()
	case t.kind == tIdent && !isKeywordName(t.text):
		name := t.text
		next := c.toks[c.pos+1]
		if next.kind == tPunct && next.text == "(" {
			return c.call()
		}
		if next.kind == tPunct && next.text == "[" {
			c.advance() // name
			c.advance() // [
			if err := c.expr(); err != nil {
				return err
			}
			if err := c.expectPunct("]"); err != nil {
				return err
			}
			g, ok := c.globals[name]
			if !ok || g.kind != gArray {
				return c.errf("%q is not an array", name)
			}
			c.emit("shl r1, 2")
			c.emit("la r3, %s", g.label)
			c.emit("add r3, r1")
			c.emit("ld r1, [r3]")
			return nil
		}
		c.advance()
		return c.load(name)
	}
	return c.errf("unexpected token %q in expression", t.text)
}

// load reads a named variable into r1. A bare array or function name
// evaluates to its address (useful as a sys() buffer argument).
func (c *compiler) load(name string) error {
	if off, ok := c.locals[name]; ok {
		c.emit("ld r1, [r6%+d]", off)
		return nil
	}
	if off, ok := c.params[name]; ok {
		c.emit("ld r1, [r6%+d]", off)
		return nil
	}
	if g, ok := c.globals[name]; ok {
		switch g.kind {
		case gScalar:
			c.emit("la r3, %s", g.label)
			c.emit("ld r1, [r3]")
		case gArray, gFunc:
			c.emit("la r1, %s", g.label)
		}
		return nil
	}
	return c.errf("undefined name %q", name)
}

// call compiles a function call: name(args...).
func (c *compiler) call() error {
	name, err := c.expectIdent()
	if err != nil {
		return err
	}
	g, ok := c.globals[name]
	if ok && g.kind != gFunc {
		return c.errf("%q is not a function", name)
	}
	if err := c.expectPunct("("); err != nil {
		return err
	}
	n := 0
	for !c.isPunct(")") {
		if n > 0 {
			if err := c.expectPunct(","); err != nil {
				return err
			}
		}
		if err := c.expr(); err != nil {
			return err
		}
		c.emit("push r1")
		n++
	}
	c.advance() // )
	if ok && g.arity != n {
		return c.errf("%q takes %d argument(s), got %d", name, g.arity, n)
	}
	if !ok {
		// Forward reference: record a function of this arity; a later
		// definition with a different arity will not be checked, but the
		// assembler still catches undefined labels.
		c.globals[name] = gsym{kind: gFunc, label: name, arity: n}
	}
	c.emit("call %s", name)
	if n > 0 {
		c.emit("movspr r3")
		c.emit("addi r3, %d", 4*n)
		c.emit("movrsp r3")
	}
	return nil
}

// sysCall compiles sys(num, args...) into a system call; the result (R0) is
// the expression value.
func (c *compiler) sysCall() error {
	c.advance() // sys
	if err := c.expectPunct("("); err != nil {
		return err
	}
	n := 0
	for !c.isPunct(")") {
		if n > 0 {
			if err := c.expectPunct(","); err != nil {
				return err
			}
		}
		if err := c.expr(); err != nil {
			return err
		}
		c.emit("push r1")
		n++
	}
	c.advance() // )
	if n < 1 {
		return c.errf("sys() needs at least the call number")
	}
	if n > 6 {
		return c.errf("sys() takes at most 6 operands")
	}
	// Stack (top first): last arg ... first arg, number deepest? No: the
	// number was pushed first (deepest). Pop args into r(n-1)..r1, then
	// the number into r0.
	for j := n - 1; j >= 1; j-- {
		c.emit("pop r%d", j)
	}
	c.emit("pop r0")
	c.emit("syscall")
	c.emit("mov r1, r0")
	return nil
}
