// Package bsl implements a small systems language ("B-minus Systems
// Language") compiling to the simulated machine, via the assembler. It
// exists so the repository's examples and tests can express realistic
// workloads — the programs /proc controls and debuggers debug — as readable
// source instead of assembly, with function symbols flowing through to the
// debugger for free.
//
// The language is deliberately tiny: 32-bit integers, globals (scalars,
// arrays, strings), functions with parameters and locals, if/while/return,
// the usual expression operators, and a sys(num, args...) builtin that is
// the system call interface. Example:
//
//	var greeting = "hello from bsl\n";
//
//	func add(a, b) { return a + b; }
//
//	func main() {
//	    var fd = sys(8, "/tmp/out", 438);   // creat
//	    sys(4, fd, greeting, 15);           // write
//	    return add(40, 2);                  // exit status
//	}
package bsl

import "fmt"

// tokKind classifies tokens.
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tNum
	tStr
	tPunct // operators and separators, in tok.text
)

type token struct {
	kind tokKind
	text string
	num  uint32
	line int
}

// Error is a compile error with a source line.
type Error struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("bsl: line %d: %s", e.Line, e.Msg) }

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenizes the source.
func lex(src string) ([]token, error) {
	lx := &lexer{src: src, line: 1}
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		lx.toks = append(lx.toks, t)
		if t.kind == tEOF {
			return lx.toks, nil
		}
	}
}

func (lx *lexer) errf(format string, args ...interface{}) error {
	return &Error{Line: lx.line, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) next() (token, error) {
	// Skip whitespace and comments.
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			goto body
		}
	}
body:
	if lx.pos >= len(lx.src) {
		return token{kind: tEOF, line: lx.line}, nil
	}
	c := lx.src[lx.pos]
	start := lx.pos
	switch {
	case isAlpha(c):
		for lx.pos < len(lx.src) && (isAlpha(lx.src[lx.pos]) || isDigit(lx.src[lx.pos])) {
			lx.pos++
		}
		return token{kind: tIdent, text: lx.src[start:lx.pos], line: lx.line}, nil
	case isDigit(c):
		base := uint32(10)
		if c == '0' && lx.pos+1 < len(lx.src) && (lx.src[lx.pos+1] == 'x' || lx.src[lx.pos+1] == 'X') {
			base = 16
			lx.pos += 2
			start = lx.pos
		}
		var v uint64
		for lx.pos < len(lx.src) {
			d := hexVal(lx.src[lx.pos])
			if d < 0 || uint32(d) >= base {
				break
			}
			v = v*uint64(base) + uint64(d)
			if v > 0xFFFFFFFF {
				return token{}, lx.errf("number too large")
			}
			lx.pos++
		}
		if lx.pos == start {
			return token{}, lx.errf("malformed number")
		}
		return token{kind: tNum, num: uint32(v), line: lx.line}, nil
	case c == '"':
		lx.pos++
		var out []byte
		for {
			if lx.pos >= len(lx.src) {
				return token{}, lx.errf("unterminated string")
			}
			ch := lx.src[lx.pos]
			lx.pos++
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if lx.pos >= len(lx.src) {
					return token{}, lx.errf("bad escape")
				}
				esc := lx.src[lx.pos]
				lx.pos++
				switch esc {
				case 'n':
					ch = '\n'
				case 't':
					ch = '\t'
				case '0':
					ch = 0
				case '\\':
					ch = '\\'
				case '"':
					ch = '"'
				default:
					return token{}, lx.errf("bad escape \\%c", esc)
				}
			}
			out = append(out, ch)
		}
		return token{kind: tStr, text: string(out), line: lx.line}, nil
	case c == '\'':
		if lx.pos+2 >= len(lx.src) {
			return token{}, lx.errf("bad character literal")
		}
		ch := lx.src[lx.pos+1]
		end := lx.pos + 2
		if ch == '\\' {
			if lx.pos+3 >= len(lx.src) {
				return token{}, lx.errf("bad character literal")
			}
			switch lx.src[lx.pos+2] {
			case 'n':
				ch = '\n'
			case 't':
				ch = '\t'
			case '0':
				ch = 0
			case '\\':
				ch = '\\'
			case '\'':
				ch = '\''
			default:
				return token{}, lx.errf("bad character escape")
			}
			end = lx.pos + 3
		}
		if end >= len(lx.src) || lx.src[end] != '\'' {
			return token{}, lx.errf("unterminated character literal")
		}
		lx.pos = end + 1
		return token{kind: tNum, num: uint32(ch), line: lx.line}, nil
	}
	// Multi-character operators first.
	two := ""
	if lx.pos+1 < len(lx.src) {
		two = lx.src[lx.pos : lx.pos+2]
	}
	switch two {
	case "==", "!=", "<=", ">=", "&&", "||", "<<", ">>":
		lx.pos += 2
		return token{kind: tPunct, text: two, line: lx.line}, nil
	}
	switch c {
	case '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>',
		'=', '(', ')', '{', '}', '[', ']', ',', ';':
		lx.pos++
		return token{kind: tPunct, text: string(c), line: lx.line}, nil
	}
	return token{}, lx.errf("unexpected character %q", c)
}

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}
