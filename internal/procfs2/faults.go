package procfs2

import (
	"strings"

	"repro/internal/fault"
	"repro/internal/types"
	"repro/internal/vfs"
)

// RootFaults is /procx/faults, the fault-injection control file. Reading it
// lists every registered site with its armed plan and cumulative hit and
// injection counters; writing it installs, clears, or resets plans, one
// command per line ("mem.page nth=3 pid=5", "clear kernel.fork", "reset").
// Arming faults perturbs the whole system, so both directions are root-only.
const RootFaults = "faults"

// rootFaultsVnode is /procx/faults.
type rootFaultsVnode struct {
	fs *FS
}

// VAttr implements vfs.Vnode.
func (v *rootFaultsVnode) VAttr() (vfs.Attr, error) {
	return vfs.Attr{Type: vfs.VPROC, Mode: 0o600,
		Size: int64(len(fault.Default.EncodeText())),
		MTime: v.fs.K.Now(), Nlink: 1}, nil
}

// VOpen implements vfs.Vnode.
func (v *rootFaultsVnode) VOpen(flags int, c types.Cred) (vfs.Handle, error) {
	if !c.IsSuper() {
		return nil, vfs.ErrPerm
	}
	return &rootFaultsHandle{v: v}, nil
}

// rootFaultsHandle is the open state of /procx/faults.
type rootFaultsHandle struct {
	v      *rootFaultsVnode
	closed bool
}

// HRead implements vfs.Handle. The listing is regenerated on every read, so
// counters are always current; a reader paging through with a growing offset
// sees a consistent snapshot only within one read, as with the status files.
func (h *rootFaultsHandle) HRead(b []byte, off int64) (int, error) {
	if h.closed {
		return 0, vfs.ErrBadFD
	}
	snap := fault.Default.EncodeText()
	if off >= int64(len(snap)) {
		return 0, vfs.EOF
	}
	return copy(b, snap[off:]), nil
}

// HWrite implements vfs.Handle: each line of the write is one control
// command. Like the ctl files, a failed command rejects the whole write.
func (h *rootFaultsHandle) HWrite(b []byte, off int64) (int, error) {
	if h.closed {
		return 0, vfs.ErrBadFD
	}
	for _, line := range strings.Split(string(b), "\n") {
		if err := fault.Default.Exec(line); err != nil {
			return 0, vfs.Errorf("procfs2: faults: %w", err)
		}
	}
	return len(b), nil
}

// HIoctl implements vfs.Handle.
func (h *rootFaultsHandle) HIoctl(cmd int, arg interface{}) error { return vfs.ErrNoIoctl }

// HClose implements vfs.Handle.
func (h *rootFaultsHandle) HClose() error {
	if h.closed {
		return vfs.ErrBadFD
	}
	h.closed = true
	return nil
}

// HSaveState / HLoadState implement vfs.HandleSnapshotter.
func (h *rootFaultsHandle) HSaveState() any { return h.closed }
func (h *rootFaultsHandle) HLoadState(st any) {
	if c, ok := st.(bool); ok {
		h.closed = c
	}
}
