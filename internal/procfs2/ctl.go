package procfs2

import (
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/types"
	"repro/internal/vcpu"
	"repro/internal/vfs"
)

// Control message codes written to ctl/lwpctl files. Each message is a
// 32-bit code followed by its fixed-size operand; several messages can be
// combined in a single write — the batching the paper argues improves
// applications for which the number of system calls is a bottleneck.
const (
	PCNULL   = iota // no-op
	PCSTOP          // direct to stop and wait for it
	PCDSTOP         // direct to stop without waiting
	PCWSTOP         // wait for a stop on an event of interest
	PCRUN           // make runnable: [flags u32][pc u32]
	PCSTRACE        // set traced signals: [sigset 2xu64]
	PCSFAULT        // set traced faults: [fltset 2xu64]
	PCSENTRY        // set traced syscall entries: [sysset 8xu64]
	PCSEXIT         // set traced syscall exits: [sysset 8xu64]
	PCSSIG          // set current signal: [sig u32] (0 clears)
	PCKILL          // send a signal: [sig u32]
	PCUNKILL        // delete a pending signal: [sig u32]
	PCSHOLD         // set held signals: [sigset 2xu64]
	PCSREG          // set registers: [11xu32]
	PCWATCH         // set a watchpoint: [addr u32][len u32][mode u32]
	PCCWATCH        // clear watchpoints: [addr u32] (0 clears all)
	PCSET           // set mode flags: [flags u32]
	PCUNSET         // clear mode flags: [flags u32]
	PCNICE          // adjust priority: [incr i32]
	PCCFAULT        // clear the current fault
	PCTRACE         // set event tracing: [cap u32] (events; 0 disables)
)

// PCRUN flag bits.
const (
	RunClearSig   = 1 << iota // PRCSIG
	RunClearFault             // PRCFAULT
	RunAbort                  // PRSABORT
	RunStep                   // PRSTEP
	RunStop                   // PRSTOP
	RunSetPC                  // PRSVADDR: use the pc operand
)

// PCSET/PCUNSET flag bits.
const (
	SetFork = 1 << iota // inherit-on-fork
	SetRLC              // run-on-last-close
)

// runCtl executes a batch of control messages against a process (or one
// LWP, when l is non-nil). It returns the number of bytes consumed; an error
// aborts the batch at the failing message, with everything before it
// applied — like a partial write.
func (fs *FS) runCtl(p *kernel.Proc, l *kernel.LWP, b []byte) (int, error) {
	w := &wire{b: b}
	done := 0
	for w.off < len(w.b) {
		if err := fs.runOneCtl(p, l, w); err != nil {
			if done == 0 {
				return 0, err
			}
			return done, nil
		}
		if w.err != nil {
			if done == 0 {
				return 0, w.err
			}
			return done, nil
		}
		done = w.off
	}
	return done, nil
}

// target picks the LWP a control message applies to.
func (fs *FS) target(p *kernel.Proc, l *kernel.LWP) *kernel.LWP {
	if l != nil {
		return l
	}
	return p.Rep()
}

// eventTarget picks the LWP for run directives.
func (fs *FS) eventTarget(p *kernel.Proc, l *kernel.LWP) *kernel.LWP {
	if l != nil {
		return l
	}
	return p.EventStoppedLWP()
}

func (fs *FS) runOneCtl(p *kernel.Proc, l *kernel.LWP, w *wire) error {
	code := int(w.u32())
	if w.err != nil {
		return w.err
	}
	// Control messages arrive from host-side controllers that may run
	// concurrently with the SMP scheduler, so each message applies under
	// the kernel's cross-process locks: the global kernel lock plus the
	// target's per-process lock (no-ops in deterministic mode). The
	// wait-style messages are the exception — WaitStop/WaitLWPStop drive
	// the scheduler and must run unlocked — so they are dispatched first,
	// with only the stop directive itself under the locks.
	switch code {
	case PCSTOP, PCDSTOP:
		fs.K.GlobalLock()
		p.Lock()
		if l != nil {
			l.DirectStop()
		} else {
			p.DirectStopAll()
		}
		p.Unlock()
		fs.K.GlobalUnlock()
		if code == PCDSTOP {
			return nil
		}
		fallthrough
	case PCWSTOP:
		if l != nil {
			return fs.K.WaitLWPStop(l, fs.MaxWait)
		}
		_, err := fs.K.WaitStop(p, fs.MaxWait)
		return err
	}

	fs.K.GlobalLock()
	p.Lock()
	defer func() {
		p.Unlock()
		fs.K.GlobalUnlock()
	}()
	switch code {
	case PCNULL:
		return nil
	case PCRUN:
		flags := w.u32()
		pc := w.u32()
		if w.err != nil {
			return w.err
		}
		t := fs.eventTarget(p, l)
		if t == nil {
			return vfs.Errorf("procfs2: PCRUN: %v", kernel.ErrNotStopped)
		}
		return fs.K.RunLWP(t, kernel.RunFlags{
			ClearSig:   flags&RunClearSig != 0,
			ClearFault: flags&RunClearFault != 0,
			Abort:      flags&RunAbort != 0,
			Step:       flags&RunStep != 0,
			Stop:       flags&RunStop != 0,
			SetPC:      flags&RunSetPC != 0,
			PC:         pc,
		})
	case PCSTRACE:
		p.Trace.Sigs = w.sigSet()
		return w.err
	case PCSFAULT:
		p.Trace.Faults = w.fltSet()
		return w.err
	case PCSENTRY:
		p.Trace.Entry = w.sysSet()
		return w.err
	case PCSEXIT:
		p.Trace.Exit = w.sysSet()
		return w.err
	case PCSSIG:
		sig := int(w.u32())
		if w.err != nil {
			return w.err
		}
		if sig < 0 || sig > types.MaxSig {
			return vfs.ErrInval
		}
		t := fs.target(p, l)
		if t == nil {
			return vfs.ErrNotExist
		}
		t.SetCurSig(sig)
		return nil
	case PCKILL:
		sig := int(w.u32())
		if w.err != nil {
			return w.err
		}
		if sig < 1 || sig > types.MaxSig {
			return vfs.ErrInval
		}
		fs.K.PostSignal(p, sig)
		return nil
	case PCUNKILL:
		sig := int(w.u32())
		if w.err != nil {
			return w.err
		}
		p.UnKill(sig)
		return nil
	case PCSHOLD:
		hold := w.sigSet()
		if w.err != nil {
			return w.err
		}
		hold.Del(types.SIGKILL)
		hold.Del(types.SIGSTOP)
		t := fs.target(p, l)
		if t == nil {
			return vfs.ErrNotExist
		}
		t.SigHold = hold
		return nil
	case PCSREG:
		regs := w.regs()
		if w.err != nil {
			return w.err
		}
		t := fs.target(p, l)
		if t == nil {
			return vfs.ErrNotExist
		}
		t.CPU.Regs = regs
		return nil
	case PCWATCH:
		addr, length, mode := w.u32(), w.u32(), w.u32()
		if w.err != nil {
			return w.err
		}
		if p.AS == nil || length == 0 {
			return vfs.ErrInval
		}
		p.AS.SetWatch(addr, length, mem.Prot(mode))
		return nil
	case PCCWATCH:
		addr := w.u32()
		if w.err != nil {
			return w.err
		}
		if p.AS == nil {
			return vfs.ErrInval
		}
		if addr == 0 {
			p.AS.ClearAllWatches()
		} else {
			p.AS.ClearWatch(addr)
		}
		return nil
	case PCSET, PCUNSET:
		flags := w.u32()
		if w.err != nil {
			return w.err
		}
		on := code == PCSET
		if flags&SetFork != 0 {
			p.Trace.InhFork = on
		}
		if flags&SetRLC != 0 {
			p.Trace.RunLC = on
		}
		return nil
	case PCNICE:
		incr := int(w.i32())
		if w.err != nil {
			return w.err
		}
		p.SetNice(incr)
		return nil
	case PCCFAULT:
		t := fs.eventTarget(p, l)
		if t == nil {
			return vfs.Errorf("procfs2: PCCFAULT: %v", kernel.ErrNotStopped)
		}
		t.CurFlt = 0
		return nil
	case PCTRACE:
		capacity := w.u32()
		if w.err != nil {
			return w.err
		}
		p.SetKTrace(int(capacity))
		return nil
	}
	return vfs.ErrInval
}

// CtlBuf builds a batch of control messages client-side; its Bytes are
// written to a ctl file in one write(2).
type CtlBuf struct{ w wire }

// Bytes returns the encoded batch.
func (c *CtlBuf) Bytes() []byte { return c.w.b }

// Stop appends PCSTOP.
func (c *CtlBuf) Stop() *CtlBuf { c.w.putU32(PCSTOP); return c }

// DStop appends PCDSTOP.
func (c *CtlBuf) DStop() *CtlBuf { c.w.putU32(PCDSTOP); return c }

// WStop appends PCWSTOP.
func (c *CtlBuf) WStop() *CtlBuf { c.w.putU32(PCWSTOP); return c }

// Run appends PCRUN.
func (c *CtlBuf) Run(flags uint32, pc uint32) *CtlBuf {
	c.w.putU32(PCRUN)
	c.w.putU32(flags)
	c.w.putU32(pc)
	return c
}

// STrace appends PCSTRACE.
func (c *CtlBuf) STrace(s types.SigSet) *CtlBuf {
	c.w.putU32(PCSTRACE)
	c.w.putSigSet(s)
	return c
}

// SFault appends PCSFAULT.
func (c *CtlBuf) SFault(s types.FltSet) *CtlBuf {
	c.w.putU32(PCSFAULT)
	c.w.putFltSet(s)
	return c
}

// SEntry appends PCSENTRY.
func (c *CtlBuf) SEntry(s types.SysSet) *CtlBuf {
	c.w.putU32(PCSENTRY)
	c.w.putSysSet(s)
	return c
}

// SExit appends PCSEXIT.
func (c *CtlBuf) SExit(s types.SysSet) *CtlBuf {
	c.w.putU32(PCSEXIT)
	c.w.putSysSet(s)
	return c
}

// SSig appends PCSSIG.
func (c *CtlBuf) SSig(sig int) *CtlBuf {
	c.w.putU32(PCSSIG)
	c.w.putU32(uint32(sig))
	return c
}

// Kill appends PCKILL.
func (c *CtlBuf) Kill(sig int) *CtlBuf {
	c.w.putU32(PCKILL)
	c.w.putU32(uint32(sig))
	return c
}

// UnKill appends PCUNKILL.
func (c *CtlBuf) UnKill(sig int) *CtlBuf {
	c.w.putU32(PCUNKILL)
	c.w.putU32(uint32(sig))
	return c
}

// SHold appends PCSHOLD.
func (c *CtlBuf) SHold(s types.SigSet) *CtlBuf {
	c.w.putU32(PCSHOLD)
	c.w.putSigSet(s)
	return c
}

// SReg appends PCSREG.
func (c *CtlBuf) SReg(r vcpu.Regs) *CtlBuf {
	c.w.putU32(PCSREG)
	c.w.putRegs(r)
	return c
}

// Watch appends PCWATCH.
func (c *CtlBuf) Watch(addr, length, mode uint32) *CtlBuf {
	c.w.putU32(PCWATCH)
	c.w.putU32(addr)
	c.w.putU32(length)
	c.w.putU32(mode)
	return c
}

// CWatch appends PCCWATCH.
func (c *CtlBuf) CWatch(addr uint32) *CtlBuf {
	c.w.putU32(PCCWATCH)
	c.w.putU32(addr)
	return c
}

// Set appends PCSET.
func (c *CtlBuf) Set(flags uint32) *CtlBuf {
	c.w.putU32(PCSET)
	c.w.putU32(flags)
	return c
}

// Unset appends PCUNSET.
func (c *CtlBuf) Unset(flags uint32) *CtlBuf {
	c.w.putU32(PCUNSET)
	c.w.putU32(flags)
	return c
}

// Nice appends PCNICE.
func (c *CtlBuf) Nice(incr int) *CtlBuf {
	c.w.putU32(PCNICE)
	c.w.putI32(int32(incr))
	return c
}

// CFault appends PCCFAULT.
func (c *CtlBuf) CFault() *CtlBuf { c.w.putU32(PCCFAULT); return c }

// Trace appends PCTRACE: enable (or resize) per-process event tracing with
// a ring of capacity events; 0 disables.
func (c *CtlBuf) Trace(capacity int) *CtlBuf {
	c.w.putU32(PCTRACE)
	c.w.putU32(uint32(capacity))
	return c
}
