package procfs2_test

import (
	"testing"
	"testing/quick"

	"repro"
	"repro/internal/procfs2"
	"repro/internal/types"
	"repro/internal/vfs"
)

// Random bytes written to a ctl file must never panic or corrupt the
// process — at worst they are rejected. (A debugger bug must not crash the
// "kernel".)
func TestCtlParserRobustAgainstGarbage(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("garbage", spin, types.UserCred(100, 10))
	s.Run(2)
	ctl := openf(t, s, dir(p.Pid)+"/ctl", vfs.OWrite)
	defer ctl.Close()

	f := func(raw []byte) bool {
		// Avoid real control codes at the head that would block (PCSTOP,
		// PCWSTOP) by prefixing a byte that makes the first code huge.
		data := append([]byte{0xFF}, raw...)
		ctl.Offset = 0
		ctl.Write(data) // must not panic; errors are fine
		return p.Alive()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	s.K.PostSignal(p, types.SIGKILL)
	s.WaitExit(p)
}

// Random bytes fed to the wire decoders must error or round-trip, never
// panic.
func TestWireDecodersRobust(t *testing.T) {
	f := func(raw []byte) bool {
		procfs2.DecodeStatus(raw)
		procfs2.DecodePSInfo(raw)
		procfs2.DecodeMap(raw)
		procfs2.DecodeCred(raw)
		procfs2.DecodeUsage(raw)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Truncating a valid encoded status at every byte boundary errors cleanly.
func TestStatusDecodeEveryTruncation(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("tr", spin, types.UserCred(100, 10))
	s.Run(2)
	st, err := p.Status()
	if err != nil {
		t.Fatal(err)
	}
	full := procfs2.EncodeStatus(st)
	for cut := 0; cut < len(full); cut++ {
		if _, err := procfs2.DecodeStatus(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if got, err := procfs2.DecodeStatus(full); err != nil || got.Pid != p.Pid {
		t.Fatalf("full decode: %v", err)
	}
	s.K.PostSignal(p, types.SIGKILL)
	s.WaitExit(p)
}
