package procfs2

import (
	"io"

	"repro/internal/ktrace"
	"repro/internal/types"
	"repro/internal/vfs"
)

// Root-level tracing files: the kernel-wide counters page and the kernel-wide
// event stream. They sit beside the pid directories in /procx.
const (
	RootKTrace = "ktrace" // read-only: ktrace.EncodeStats counters page
	RootTrace  = "trace"  // read-only: the kernel-wide event stream
)

// ringRead serves a ktrace ring as file contents, translating the ring's
// window semantics to vfs errors: reads past the stream return EOF (nothing
// there yet — poll and retry), reads before the retained window report the
// data loss instead of returning silently skewed bytes.
func ringRead(r *ktrace.Ring, b []byte, off int64) (int, error) {
	if r == nil {
		return 0, vfs.EOF
	}
	n, err := r.ReadAt(b, off)
	switch err {
	case nil:
		return n, nil
	case io.EOF:
		return n, vfs.EOF
	default:
		return n, vfs.Errorf("procfs2: trace: %w", err)
	}
}

// ringSize is the nominal file size of a ring: the whole stream so far, even
// though only the tail is retained.
func ringSize(r *ktrace.Ring) int64 {
	if r == nil {
		return 0
	}
	return int64(r.NextSeq()) * ktrace.EventSize
}

// rootTraceVnode is /procx/ktrace or /procx/trace.
type rootTraceVnode struct {
	fs   *FS
	name string
}

// VAttr implements vfs.Vnode.
func (v *rootTraceVnode) VAttr() (vfs.Attr, error) {
	mode := uint16(0o444)
	size := int64(0)
	if v.name == RootTrace {
		mode = 0o400 // the global stream exposes every process: root only
		size = ringSize(v.fs.K.KT)
	}
	return vfs.Attr{Type: vfs.VPROC, Mode: mode,
		Size: size, MTime: v.fs.K.Now(), Nlink: 1}, nil
}

// VOpen implements vfs.Vnode.
func (v *rootTraceVnode) VOpen(flags int, c types.Cred) (vfs.Handle, error) {
	if flags&vfs.OWrite != 0 {
		return nil, vfs.ErrPerm
	}
	if v.name == RootTrace && !c.IsSuper() {
		return nil, vfs.ErrPerm
	}
	return &rootTraceHandle{v: v}, nil
}

// rootTraceHandle is the open state of a root-level tracing file.
type rootTraceHandle struct {
	v      *rootTraceVnode
	closed bool
}

// HRead implements vfs.Handle.
func (h *rootTraceHandle) HRead(b []byte, off int64) (int, error) {
	if h.closed {
		return 0, vfs.ErrBadFD
	}
	if h.v.name == RootKTrace {
		snap := ktrace.EncodeStats(h.v.fs.K.KTraceStats())
		if off >= int64(len(snap)) {
			return 0, vfs.EOF
		}
		return copy(b, snap[off:]), nil
	}
	return ringRead(h.v.fs.K.KT, b, off)
}

// HWrite implements vfs.Handle.
func (h *rootTraceHandle) HWrite(b []byte, off int64) (int, error) {
	return 0, vfs.ErrBadFD
}

// HIoctl implements vfs.Handle.
func (h *rootTraceHandle) HIoctl(cmd int, arg interface{}) error { return vfs.ErrNoIoctl }

// HClose implements vfs.Handle.
func (h *rootTraceHandle) HClose() error {
	if h.closed {
		return vfs.ErrBadFD
	}
	h.closed = true
	return nil
}

// HSaveState / HLoadState implement vfs.HandleSnapshotter.
func (h *rootTraceHandle) HSaveState() any { return h.closed }
func (h *rootTraceHandle) HLoadState(st any) {
	if c, ok := st.(bool); ok {
		h.closed = c
	}
}
