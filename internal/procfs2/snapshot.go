package procfs2

import (
	"repro/internal/procfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

// RootSnapshot is the batched whole-table snapshot file beside the pid
// directories: one open plus sequential reads return the same records
// PIOCSNAP does on the flat interface, encoded with the wire codec — the
// restructuring's answer to the batched ioctl, and like the rest of this
// interface it crosses a network as plain bytes.
const RootSnapshot = "snapshot"

// rootSnapVnode is /procx/snapshot.
type rootSnapVnode struct{ fs *FS }

// VAttr implements vfs.Vnode. Anyone may open the file; the contents are
// filtered to the processes the opener could open individually.
func (v *rootSnapVnode) VAttr() (vfs.Attr, error) {
	return vfs.Attr{Type: vfs.VPROC, Mode: 0o444,
		MTime: v.fs.K.Now(), Nlink: 1}, nil
}

// VOpen implements vfs.Vnode.
func (v *rootSnapVnode) VOpen(flags int, c types.Cred) (vfs.Handle, error) {
	if flags&vfs.OWrite != 0 {
		return nil, vfs.ErrPerm
	}
	return &rootSnapHandle{fs: v.fs, cred: c}, nil
}

// rootSnapHandle is the open state of the snapshot file. The table is
// walked when offset zero is read and the encoding is kept for the handle's
// subsequent reads, so a reader paging through the file in pieces (a remote
// client bounded by its transfer size) sees one coherent snapshot rather
// than a fresh table per read. Rewinding to offset zero takes a new one.
type rootSnapHandle struct {
	fs     *FS
	cred   types.Cred
	buf    []byte
	closed bool
}

// HRead implements vfs.Handle.
func (h *rootSnapHandle) HRead(b []byte, off int64) (int, error) {
	if h.closed {
		return 0, vfs.ErrBadFD
	}
	if h.buf == nil || off == 0 {
		sn := procfs.PrSnap{WithUsage: true}
		if err := procfs.Snapshot(h.fs.K, h.cred, &sn); err != nil {
			return 0, err
		}
		recs := make([]SnapRec, len(sn.Procs))
		for i, r := range sn.Procs {
			recs[i] = SnapRec{Info: r.Info, Usage: UsageRecord{
				Usage:       r.Usage.Usage,
				MinorFaults: r.Usage.MinorFaults, COWFaults: r.Usage.COWFaults,
				WatchRecover: r.Usage.WatchRecover, StackGrows: r.Usage.StackGrows,
			}}
		}
		h.buf = EncodeSnap(sn.Rev, sn.Churned, recs)
	}
	if off >= int64(len(h.buf)) {
		return 0, vfs.EOF
	}
	return copy(b, h.buf[off:]), nil
}

// HWrite implements vfs.Handle.
func (h *rootSnapHandle) HWrite(b []byte, off int64) (int, error) {
	return 0, vfs.ErrBadFD
}

// HIoctl implements vfs.Handle.
func (h *rootSnapHandle) HIoctl(cmd int, arg interface{}) error { return vfs.ErrNoIoctl }

// HClose implements vfs.Handle.
func (h *rootSnapHandle) HClose() error {
	if h.closed {
		return vfs.ErrBadFD
	}
	h.closed = true
	return nil
}

// snapHandleState is the checkpointed per-open state: the closed flag and
// the coherent-snapshot cache a paging reader is in the middle of.
type snapHandleState struct {
	closed bool
	buf    []byte
}

// HSaveState / HLoadState implement vfs.HandleSnapshotter.
func (h *rootSnapHandle) HSaveState() any {
	return snapHandleState{closed: h.closed, buf: append([]byte(nil), h.buf...)}
}

func (h *rootSnapHandle) HLoadState(st any) {
	if s, ok := st.(snapHandleState); ok {
		h.closed = s.closed
		h.buf = append([]byte(nil), s.buf...)
	}
}
