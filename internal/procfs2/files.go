package procfs2

import (
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/types"
	"repro/internal/vfs"
)

// fileVnode is one status or control file within a process (or LWP)
// directory.
type fileVnode struct {
	fs   *FS
	p    *kernel.Proc
	l    *kernel.LWP // nil for process-level files
	name string
}

// writable reports whether this file is a control surface.
func (v *fileVnode) writable() bool {
	return v.name == FileCtl || v.name == FileLWPCtl || v.name == FileAS
}

// VAttr implements vfs.Vnode.
//
// Like the flat interface, these handlers are host-side entry points that
// may run concurrently with the SMP scheduler, so they take the global
// kernel lock plus the per-process lock around process state — the kernel's
// cross-process contract (both no-ops in deterministic mode).
func (v *fileVnode) VAttr() (vfs.Attr, error) {
	v.fs.K.GlobalLock()
	v.p.Lock()
	defer func() {
		v.p.Unlock()
		v.fs.K.GlobalUnlock()
	}()
	mode := uint16(0o400)
	if v.writable() {
		mode = 0o200
		if v.name == FileAS {
			mode = 0o600
		}
	}
	size := int64(0)
	if v.name == FileAS {
		size = v.p.VirtSize()
	}
	if v.name == FileTrace {
		size = ringSize(v.p.KT)
	}
	return vfs.Attr{Type: vfs.VPROC, Mode: mode,
		UID: v.p.Cred.RUID, GID: v.p.Cred.RGID,
		Size: size, MTime: v.fs.K.Now(), Nlink: 1}, nil
}

// VOpen implements vfs.Vnode, with the same security rule and writer
// accounting as the flat interface, so run-on-last-close and set-id exec
// invalidation behave identically across the two interfaces.
func (v *fileVnode) VOpen(flags int, c types.Cred) (vfs.Handle, error) {
	p := v.p
	v.fs.K.GlobalLock()
	p.Lock()
	defer func() {
		p.Unlock()
		v.fs.K.GlobalUnlock()
	}()
	if p.State() == kernel.PGone {
		return nil, vfs.ErrNotExist
	}
	if err := checkOpen(p, c); err != nil {
		return nil, err
	}
	writer := flags&vfs.OWrite != 0
	if writer && !v.writable() {
		return nil, vfs.ErrPerm
	}
	if v.name == FileCtl || v.name == FileLWPCtl {
		// Control files are write-only.
		if !writer || flags&vfs.ORead != 0 {
			return nil, vfs.ErrPerm
		}
	}
	if writer {
		if p.Trace.Excl {
			return nil, vfs.ErrBusy
		}
		if flags&vfs.OExcl != 0 {
			if p.Trace.Writers > 0 {
				return nil, vfs.ErrBusy
			}
			p.Trace.Excl = true
		}
		p.Trace.Writers++
	}
	return &fileHandle{
		v: v, flags: flags, gen: p.Trace.Gen,
		excl: writer && flags&vfs.OExcl != 0,
	}, nil
}

// fileHandle is the open state of one status/control file.
type fileHandle struct {
	v      *fileVnode
	flags  int
	gen    int
	excl   bool
	closed bool
}

func (h *fileHandle) valid() error {
	if h.closed {
		return vfs.ErrBadFD
	}
	if h.gen != h.v.p.Trace.Gen {
		return vfs.ErrStale
	}
	if !h.v.p.Alive() {
		return vfs.ErrNotExist
	}
	return nil
}

// snapshot produces the current contents of a read-only status file.
func (h *fileHandle) snapshot() ([]byte, error) {
	p := h.v.p
	switch h.v.name {
	case FileStatus:
		st, err := p.Status()
		if err != nil {
			return nil, vfs.ErrNotExist
		}
		return EncodeStatus(st), nil
	case FileLWPStatus:
		return EncodeStatus(h.v.l.LWPStatus()), nil
	case FilePSInfo:
		return EncodePSInfo(p.PSInfo()), nil
	case FileMap:
		var entries []MapEntry
		if p.AS != nil {
			for _, s := range p.AS.SegsView() {
				entries = append(entries, MapEntry{
					Vaddr: s.Base, Size: s.Len, Off: s.Off,
					Prot: uint32(s.Prot), Shared: s.Shared,
					Kind: int32(s.Kind), Name: s.ObjName(),
				})
			}
		}
		return EncodeMap(entries), nil
	case FileCred:
		return EncodeCred(p.Credentials()), nil
	case FileUsage:
		var minor, cow, watch, grow int64
		if p.AS != nil {
			st := p.AS.StatsSnap()
			minor = st.MinorFaults
			cow = st.COWFaults
			watch = st.WatchRecover
			grow = st.GrowStack
		}
		return EncodeUsage(p.Usage, minor, cow, watch, grow), nil
	}
	return nil, vfs.ErrInval
}

// HRead implements vfs.Handle. Status files return a snapshot taken at
// offset zero; the as file reads the address space at the offset.
func (h *fileHandle) HRead(b []byte, off int64) (int, error) {
	k := h.v.fs.K
	p := h.v.p
	// psinfo works on zombies, like PIOCPSINFO; so does trace, which must be
	// drainable after the target exits (the exit event is the last record).
	if h.v.name == FilePSInfo || h.v.name == FileTrace {
		if h.closed {
			return 0, vfs.ErrBadFD
		}
	} else {
		k.GlobalLock()
		p.Lock()
		err := h.valid()
		p.Unlock()
		k.GlobalUnlock()
		if err != nil {
			return 0, err
		}
	}
	switch h.v.name {
	case FileCtl, FileLWPCtl:
		return 0, vfs.ErrBadFD
	case FileTrace:
		k.GlobalLock()
		defer k.GlobalUnlock()
		return ringRead(p.KT, b, off)
	case FileAS:
		k.GlobalLock()
		p.Lock()
		as := p.AS
		p.Unlock()
		k.GlobalUnlock()
		if as == nil {
			return 0, vfs.ErrInval
		}
		n, err := as.ReadAt(b, off)
		if err != nil {
			return 0, vfs.Errorf("procfs2: as read at unmapped offset %#x", off)
		}
		return n, nil
	}
	k.GlobalLock()
	p.Lock()
	snap, err := h.snapshot()
	p.Unlock()
	k.GlobalUnlock()
	if err != nil {
		return 0, err
	}
	if off >= int64(len(snap)) {
		return 0, vfs.EOF
	}
	return copy(b, snap[off:]), nil
}

// HWrite implements vfs.Handle: control messages for ctl files, address
// space stores for the as file.
func (h *fileHandle) HWrite(b []byte, off int64) (int, error) {
	k := h.v.fs.K
	p := h.v.p
	k.GlobalLock()
	p.Lock()
	err := h.valid()
	if err == nil && h.flags&vfs.OWrite == 0 {
		err = vfs.ErrBadFD
	}
	as := p.AS
	p.Unlock()
	k.GlobalUnlock()
	if err != nil {
		return 0, err
	}
	switch h.v.name {
	case FileCtl:
		// runCtl locks per control message (the wait-style messages drive
		// the scheduler and must run unlocked), so it is entered bare.
		return h.v.fs.runCtl(h.v.p, nil, b)
	case FileLWPCtl:
		return h.v.fs.runCtl(h.v.p, h.v.l, b)
	case FileAS:
		if as == nil {
			return 0, vfs.ErrInval
		}
		n, err := as.WriteAt(b, off)
		if err != nil {
			if err == mem.ErrNoMem {
				// A refused page materialization is a transient resource
				// failure, not an address error; report it as such.
				return 0, vfs.ErrAgain
			}
			return 0, vfs.Errorf("procfs2: as write at unmapped offset %#x", off)
		}
		return n, nil
	}
	return 0, vfs.ErrBadFD
}

// HIoctl implements vfs.Handle: there are no ioctls in the restructured
// interface — that is its point.
func (h *fileHandle) HIoctl(cmd int, arg interface{}) error { return vfs.ErrNoIoctl }

// HClose implements vfs.Handle with the run-on-last-close behavior.
func (h *fileHandle) HClose() error {
	if h.closed {
		return vfs.ErrBadFD
	}
	h.closed = true
	p := h.v.p
	h.v.fs.K.GlobalLock()
	p.Lock()
	defer func() {
		p.Unlock()
		h.v.fs.K.GlobalUnlock()
	}()
	stale := h.gen != p.Trace.Gen
	if h.flags&vfs.OWrite != 0 && !stale {
		if h.excl {
			p.Trace.Excl = false
		}
		if p.Trace.Writers > 0 {
			p.Trace.Writers--
		}
		if p.Trace.Writers == 0 && p.Trace.RunLC && p.Alive() {
			h.v.fs.K.ReleaseTracing(p)
		}
	}
	return nil
}

// HPoll implements vfs.Poller: ready on an event-of-interest stop. For LWP
// files, ready when that LWP stops.
func (h *fileHandle) HPoll(mask int) int {
	if h.closed || mask&vfs.PollPri == 0 {
		return 0
	}
	h.v.fs.K.GlobalLock()
	h.v.p.Lock()
	defer func() {
		h.v.p.Unlock()
		h.v.fs.K.GlobalUnlock()
	}()
	if !h.v.p.Alive() {
		return 0
	}
	if h.v.l != nil {
		if h.v.l.StoppedOnEvent() {
			return vfs.PollPri
		}
		return 0
	}
	if h.v.p.EventStoppedLWP() != nil {
		return vfs.PollPri
	}
	return 0
}

// HSaveState / HLoadState implement vfs.HandleSnapshotter; as with the
// flat interface, the closed flag is the only mutable per-open state.
func (h *fileHandle) HSaveState() any { return h.closed }
func (h *fileHandle) HLoadState(st any) {
	if c, ok := st.(bool); ok {
		h.closed = c
	}
}

var (
	_ vfs.Handle            = (*fileHandle)(nil)
	_ vfs.Poller            = (*fileHandle)(nil)
	_ vfs.HandleSnapshotter = (*fileHandle)(nil)
)
