package procfs2_test

import (
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/procfs2"
	"repro/internal/types"
	"repro/internal/vcpu"
	"repro/internal/vfs"
)

// Every remaining ctl message code, exercised end to end.
func TestCtlMessageCoverage(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("msgs", `
loop:	jmp loop
.data
cell:	.word 0
`, types.UserCred(100, 10))
	s.Run(2)
	ctl := openf(t, s, dir(p.Pid)+"/ctl", vfs.OWrite)
	defer ctl.Close()
	write := func(b []byte) {
		t.Helper()
		ctl.Offset = 0
		if _, err := ctl.Write(b); err != nil {
			t.Fatal(err)
		}
	}

	// PCSHOLD: hold a signal (SIGKILL silently excluded).
	var hold types.SigSet
	hold.Add(types.SIGUSR1)
	hold.Add(types.SIGKILL)
	write((&procfs2.CtlBuf{}).SHold(hold).Bytes())
	l := p.Rep()
	if !l.SigHold.Has(types.SIGUSR1) || l.SigHold.Has(types.SIGKILL) {
		t.Fatalf("hold = %v", l.SigHold)
	}

	// PCKILL of the held signal pends; PCUNKILL deletes it.
	write((&procfs2.CtlBuf{}).Kill(types.SIGUSR1).Bytes())
	if !p.SigPend.Has(types.SIGUSR1) {
		t.Fatal("kill did not pend")
	}
	write((&procfs2.CtlBuf{}).UnKill(types.SIGUSR1).Bytes())
	if p.SigPend.Has(types.SIGUSR1) {
		t.Fatal("unkill did not delete")
	}

	// PCSTOP + PCSREG + PCSSIG.
	write((&procfs2.CtlBuf{}).Stop().Bytes())
	regs := l.CPU.Regs
	regs.R[6] = 0xFEED
	write((&procfs2.CtlBuf{}).SReg(regs).Bytes())
	if l.CPU.Regs.R[6] != 0xFEED {
		t.Fatal("PCSREG did not take")
	}
	write((&procfs2.CtlBuf{}).SSig(types.SIGUSR2).Bytes())
	if l.CurSig != types.SIGUSR2 {
		t.Fatal("PCSSIG did not take")
	}
	write((&procfs2.CtlBuf{}).SSig(0).Bytes())
	if l.CurSig != 0 {
		t.Fatal("PCSSIG 0 did not clear")
	}

	// PCWATCH / PCCWATCH.
	syms, _ := p.ImageSyms()
	var cell uint32
	for _, sym := range syms {
		if sym.Name == "cell" {
			cell = sym.Value
		}
	}
	write((&procfs2.CtlBuf{}).Watch(cell, 4, uint32(mem.ProtWrite)).Bytes())
	if len(p.AS.Watches()) != 1 {
		t.Fatal("PCWATCH did not take")
	}
	write((&procfs2.CtlBuf{}).CWatch(cell).Bytes())
	if len(p.AS.Watches()) != 0 {
		t.Fatal("PCCWATCH did not clear")
	}

	// PCSET / PCUNSET.
	write((&procfs2.CtlBuf{}).Set(procfs2.SetFork | procfs2.SetRLC).Bytes())
	if !p.Trace.InhFork || !p.Trace.RunLC {
		t.Fatal("PCSET did not take")
	}
	write((&procfs2.CtlBuf{}).Unset(procfs2.SetRLC).Bytes())
	if p.Trace.RunLC || !p.Trace.InhFork {
		t.Fatal("PCUNSET wrong")
	}
	write((&procfs2.CtlBuf{}).Unset(procfs2.SetFork).Bytes())

	// PCRUN with a new program counter (PRSVADDR).
	entry := uint32(0x80000000)
	write((&procfs2.CtlBuf{}).Run(procfs2.RunSetPC, entry).Bytes())
	if l.CPU.Regs.PC != entry {
		t.Fatalf("pc = %#x", l.CPU.Regs.PC)
	}
	s.K.PostSignal(p, types.SIGKILL)
	if _, err := s.WaitExit(p); err != nil {
		t.Fatal(err)
	}
}

// PCCFAULT at a faulted stop, and PCRUN with the step flag.
func TestCtlFaultAndStep(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("cf", `
	bpt
	movi r0, SYS_exit
	movi r1, 8
	syscall
`, types.UserCred(100, 10))
	ctl := openf(t, s, dir(p.Pid)+"/ctl", vfs.OWrite)
	defer ctl.Close()
	var flts types.FltSet
	flts.Add(types.FLTBPT)
	flts.Add(types.FLTTRACE)
	if _, err := ctl.Write((&procfs2.CtlBuf{}).SFault(flts).WStop().Bytes()); err != nil {
		t.Fatal(err)
	}
	l := p.EventStoppedLWP()
	if why, what := l.Why(); why != kernel.WhyFaulted || what != types.FLTBPT {
		t.Fatalf("why=%v what=%d", why, what)
	}
	// Repair: overwrite bpt with nop; clear fault; single-step.
	as := openf(t, s, dir(p.Pid)+"/as", vfs.OWrite|vfs.ORead)
	defer as.Close()
	w := vcpu.Encode(vcpu.OpNOP, 0, 0, 0)
	if _, err := as.Pwrite([]byte{byte(w >> 24), byte(w >> 16), byte(w >> 8), byte(w)}, 0x80000000); err != nil {
		t.Fatal(err)
	}
	ctl.Offset = 0
	if _, err := ctl.Write((&procfs2.CtlBuf{}).CFault().Run(procfs2.RunClearFault|procfs2.RunStep, 0).WStop().Bytes()); err != nil {
		t.Fatal(err)
	}
	if why, what := p.EventStoppedLWP().Why(); why != kernel.WhyFaulted || what != types.FLTTRACE {
		t.Fatalf("step stop: %v/%d", why, what)
	}
	ctl.Offset = 0
	if _, err := ctl.Write((&procfs2.CtlBuf{}).SFault(types.FltSet{}).Run(procfs2.RunClearFault, 0).Bytes()); err != nil {
		t.Fatal(err)
	}
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, code := kernel.WIfExited(status); code != 8 {
		t.Fatalf("code = %d", code)
	}
}

// Abort a sleeping syscall via a ctl message (PRSABORT equivalent).
func TestCtlAbortSleepingSyscall(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("ab", `
	movi r0, SYS_pipe
	syscall
	mov r6, r0
	movi r0, SYS_read
	mov r1, r6
	la r2, buf
	movi r3, 1
	syscall
	mov r1, r0		; EINTR
	movi r0, SYS_exit
	syscall
.data
buf:	.space 4
`, types.UserCred(100, 10))
	if err := s.RunUntil(func() bool {
		l := p.Rep()
		return l != nil && l.Asleep()
	}, 500000); err != nil {
		t.Fatal(err)
	}
	ctl := openf(t, s, dir(p.Pid)+"/ctl", vfs.OWrite)
	defer ctl.Close()
	if _, err := ctl.Write((&procfs2.CtlBuf{}).Stop().Run(procfs2.RunAbort, 0).Bytes()); err != nil {
		t.Fatal(err)
	}
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, code := kernel.WIfExited(status); code != int(kernel.EINTR) {
		t.Fatalf("code = %d, want EINTR", code)
	}
}

// Unknown and malformed messages.
func TestCtlBadMessages(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("bad", spin, types.UserCred(100, 10))
	s.Run(2)
	ctl := openf(t, s, dir(p.Pid)+"/ctl", vfs.OWrite)
	defer ctl.Close()
	// Unknown code.
	if _, err := ctl.Pwrite([]byte{0, 0, 0, 99}, 0); err != vfs.ErrInval {
		t.Fatalf("unknown code: %v", err)
	}
	// PCSSIG with an absurd signal.
	bad := (&procfs2.CtlBuf{}).SSig(500).Bytes()
	if _, err := ctl.Pwrite(bad, 0); err != vfs.ErrInval {
		t.Fatalf("bad signal: %v", err)
	}
	// Reading a ctl file fails even with a read-write... ctl files are
	// write-only by VOpen, so this can't even be opened for read.
	if _, err := s.Client(types.RootCred()).Open(dir(p.Pid)+"/ctl", vfs.ORead|vfs.OWrite); err == nil {
		t.Fatal("read-write ctl open should fail")
	}
}

// The lwp files poll per-LWP readiness.
func TestLWPPoll(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("lp", spin, types.UserCred(100, 10))
	s.Run(2)
	lst := openf(t, s, dir(p.Pid)+"/lwp/1/lwpstatus", vfs.ORead)
	defer lst.Close()
	if lst.Poll(vfs.PollPri) != 0 {
		t.Fatal("running lwp should not be ready")
	}
	ctl := openf(t, s, dir(p.Pid)+"/lwp/1/lwpctl", vfs.OWrite)
	defer ctl.Close()
	if _, err := ctl.Write((&procfs2.CtlBuf{}).Stop().Bytes()); err != nil {
		t.Fatal(err)
	}
	if lst.Poll(vfs.PollPri) != vfs.PollPri {
		t.Fatal("stopped lwp should be ready")
	}
	ctl.Offset = 0
	ctl.Write((&procfs2.CtlBuf{}).Run(0, 0).Bytes())
}
