package procfs2_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro"
	"repro/internal/kernel"
	"repro/internal/procfs2"
	"repro/internal/types"
	"repro/internal/vcpu"
	"repro/internal/vfs"
)

const spin = `
loop:	jmp loop
`

func dir(pid int) string { return fmt.Sprintf("/procx/%05d", pid) }

func openf(t *testing.T, s *repro.System, path string, flags int) *vfs.File {
	t.Helper()
	f, err := s.Client(types.RootCred()).Open(path, flags)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	return f
}

func readStatus(t *testing.T, f *vfs.File) kernel.ProcStatus {
	t.Helper()
	buf := make([]byte, 4096)
	n, err := f.Pread(buf, 0)
	if err != nil {
		t.Fatalf("read status: %v", err)
	}
	st, err := procfs2.DecodeStatus(buf[:n])
	if err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

func TestHierarchyLayout(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("tree", spin, types.UserCred(100, 10))
	s.Run(2)
	cl := s.Client(types.RootCred())

	ents, err := cl.ReadDir("/procx")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range ents {
		if e.Name == fmt.Sprintf("%05d", p.Pid) {
			found = true
			if e.Attr.Type != vfs.VDIR {
				t.Fatal("process entries are directories in the restructured interface")
			}
		}
	}
	if !found {
		t.Fatal("process directory missing")
	}
	sub, err := cl.ReadDir(dir(p.Pid))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"status": true, "psinfo": true, "ctl": true,
		"as": true, "map": true, "cred": true, "usage": true, "lwp": true}
	for _, e := range sub {
		delete(want, e.Name)
	}
	if len(want) != 0 {
		t.Fatalf("missing entries: %v", want)
	}
	// The LWP hierarchy: thread-ids as sub-directories.
	lwps, err := cl.ReadDir(dir(p.Pid) + "/lwp")
	if err != nil {
		t.Fatal(err)
	}
	if len(lwps) != 1 || lwps[0].Name != "1" {
		t.Fatalf("lwp dir = %+v", lwps)
	}
	lfiles, err := cl.ReadDir(dir(p.Pid) + "/lwp/1")
	if err != nil {
		t.Fatal(err)
	}
	if len(lfiles) != 2 {
		t.Fatalf("lwp files = %+v", lfiles)
	}
}

func TestStatusFileRead(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("st", spin, types.UserCred(100, 10))
	s.Run(3)
	f := openf(t, s, dir(p.Pid)+"/status", vfs.ORead)
	defer f.Close()
	st := readStatus(t, f)
	if st.Pid != p.Pid || st.PPid != 1 || st.NLWP != 1 {
		t.Fatalf("status = %+v", st)
	}
	if st.VSize != p.VirtSize() {
		t.Fatalf("vsize = %d", st.VSize)
	}
}

func TestCtlStopRunAndStatus(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("cs", spin, types.UserCred(100, 10))
	s.Run(2)
	ctl := openf(t, s, dir(p.Pid)+"/ctl", vfs.OWrite)
	defer ctl.Close()
	status := openf(t, s, dir(p.Pid)+"/status", vfs.ORead)
	defer status.Close()

	// PCSTOP via a structured message write.
	if _, err := ctl.Write((&procfs2.CtlBuf{}).Stop().Bytes()); err != nil {
		t.Fatal(err)
	}
	st := readStatus(t, status)
	if st.Flags&kernel.PRIstop == 0 || st.Why != kernel.WhyRequested {
		t.Fatalf("not stopped: %+v", st)
	}
	// PCRUN.
	ctl.Offset = 0
	if _, err := ctl.Write((&procfs2.CtlBuf{}).Run(0, 0).Bytes()); err != nil {
		t.Fatal(err)
	}
	s.Run(3)
	if p.Rep().Stopped() {
		t.Fatal("did not resume")
	}
}

// The restructuring's selling point: several control operations combined in
// a single write.
func TestBatchedControlOperations(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("batch", `
loop:	movi r0, SYS_getpid
	syscall
	jmp loop
`, types.UserCred(100, 10))
	s.Run(2)
	ctl := openf(t, s, dir(p.Pid)+"/ctl", vfs.OWrite)
	defer ctl.Close()

	var sigs types.SigSet
	sigs.Add(types.SIGUSR1)
	var flts types.FltSet
	flts.Add(types.FLTBPT)
	var entries types.SysSet
	entries.Add(kernel.SysGetpid)

	// One write: trace sets + nice + stop directive + wait.
	batch := (&procfs2.CtlBuf{}).
		STrace(sigs).
		SFault(flts).
		SEntry(entries).
		Nice(3).
		WStop().
		Bytes()
	n, err := ctl.Write(batch)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(batch) {
		t.Fatalf("consumed %d of %d", n, len(batch))
	}
	if !p.Trace.Sigs.Has(types.SIGUSR1) || !p.Trace.Faults.Has(types.FLTBPT) ||
		!p.Trace.Entry.Has(kernel.SysGetpid) || p.Nice != 3 {
		t.Fatal("batched settings not applied")
	}
	if l := p.EventStoppedLWP(); l == nil {
		t.Fatal("WSTOP did not wait for the stop")
	} else if why, what := l.Why(); why != kernel.WhySysEntry || what != kernel.SysGetpid {
		t.Fatalf("why=%v what=%d", why, what)
	}
	// Clean up: clear traces and run in one more batched write.
	ctl.Offset = 0
	cleanup := (&procfs2.CtlBuf{}).
		STrace(types.SigSet{}).
		SFault(types.FltSet{}).
		SEntry(types.SysSet{}).
		Run(0, 0).
		Bytes()
	if _, err := ctl.Write(cleanup); err != nil {
		t.Fatal(err)
	}
}

func TestPartialBatchOnError(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("partial", spin, types.UserCred(100, 10))
	s.Run(2)
	ctl := openf(t, s, dir(p.Pid)+"/ctl", vfs.OWrite)
	defer ctl.Close()
	// Nice(2) then a PCRUN that fails (not stopped): partial write.
	batch := (&procfs2.CtlBuf{}).Nice(2).Run(0, 0).Bytes()
	n, err := ctl.Write(batch)
	if err != nil {
		t.Fatalf("partial batch should not error: %v", err)
	}
	if n >= len(batch) {
		t.Fatal("failing message should not be consumed")
	}
	if p.Nice != 2 {
		t.Fatal("leading messages should be applied")
	}
	// A batch whose FIRST message fails returns the error.
	ctl.Offset = 0
	if _, err := ctl.Write((&procfs2.CtlBuf{}).Run(0, 0).Bytes()); err == nil {
		t.Fatal("lone failing message should error")
	}
	// A truncated message errors.
	ctl.Offset = 0
	if _, err := ctl.Write([]byte{0, 0, 0, procfs2.PCRUN, 0, 0}); err == nil {
		t.Fatal("truncated message should error")
	}
}

func TestASFileIO(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("asio", `
loop:	jmp loop
.data
blob:	.ascii "abcdef"
`, types.UserCred(100, 10))
	s.Run(2)
	as := openf(t, s, dir(p.Pid)+"/as", vfs.ORead|vfs.OWrite)
	defer as.Close()
	syms, _ := p.ImageSyms()
	var blob uint32
	for _, sym := range syms {
		if sym.Name == "blob" {
			blob = sym.Value
		}
	}
	buf := make([]byte, 6)
	if _, err := as.Pread(buf, int64(blob)); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "abcdef" {
		t.Fatalf("read %q", buf)
	}
	if _, err := as.Pwrite([]byte("ZZ"), int64(blob)); err != nil {
		t.Fatal(err)
	}
	as.Pread(buf, int64(blob))
	if string(buf) != "ZZcdef" {
		t.Fatalf("after write: %q", buf)
	}
	if _, err := as.Pread(buf, 0x10); err == nil {
		t.Fatal("unmapped as read should fail")
	}
}

func TestMapCredUsageFiles(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("files", spin, types.UserCred(100, 10))
	s.Run(3)
	cl := s.Client(types.RootCred())

	mf, err := cl.Open(dir(p.Pid)+"/map", vfs.ORead)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 65536)
	n, _ := mf.Pread(buf, 0)
	entries, err := procfs2.DecodeMap(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("map entries = %d", len(entries))
	}
	if entries[len(entries)-1].Vaddr != 0x80000000 {
		// text should be present somewhere
		found := false
		for _, e := range entries {
			if e.Vaddr == 0x80000000 {
				found = true
			}
		}
		if !found {
			t.Fatal("no text mapping in map file")
		}
	}
	mf.Close()

	cf, err := cl.Open(dir(p.Pid)+"/cred", vfs.ORead)
	if err != nil {
		t.Fatal(err)
	}
	n, _ = cf.Pread(buf, 0)
	cred, err := procfs2.DecodeCred(buf[:n])
	if err != nil || cred.RUID != 100 || cred.RGID != 10 {
		t.Fatalf("cred %+v err %v", cred, err)
	}
	cf.Close()

	uf, err := cl.Open(dir(p.Pid)+"/usage", vfs.ORead)
	if err != nil {
		t.Fatal(err)
	}
	n, _ = uf.Pread(buf, 0)
	usage, err := procfs2.DecodeUsage(buf[:n])
	if err != nil || usage.UserTicks == 0 {
		t.Fatalf("usage %+v err %v", usage, err)
	}
	uf.Close()

	pf, err := cl.Open(dir(p.Pid)+"/psinfo", vfs.ORead)
	if err != nil {
		t.Fatal(err)
	}
	n, _ = pf.Pread(buf, 0)
	info, err := procfs2.DecodePSInfo(buf[:n])
	if err != nil || info.Comm != "files" || info.UID != 100 {
		t.Fatalf("psinfo %+v err %v", info, err)
	}
	pf.Close()
}

// C12: per-LWP status and control through the hierarchy.
func TestLWPHierarchyControl(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("mt", `
	movi r0, SYS_mmap	; map a stack for the second lwp
	movi r1, 0
	movi r2, 0
	movhi r2, 1
	movi r3, 3
	movi r4, 0
	syscall
	mov r6, r0
	movi r2, 0
	movhi r2, 1
	add r6, r2
	movi r0, SYS_lwp_create
	la r1, thread
	mov r2, r6
	syscall
main:	jmp main
thread:	jmp thread
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(func() bool { return len(p.LiveLWPs()) == 2 }, 200000); err != nil {
		t.Fatal(err)
	}
	cl := s.Client(types.RootCred())
	lwps, err := cl.ReadDir(dir(p.Pid) + "/lwp")
	if err != nil {
		t.Fatal(err)
	}
	if len(lwps) != 2 {
		t.Fatalf("lwp entries = %d", len(lwps))
	}
	// Stop only LWP 2 via its own lwpctl.
	lctl := openf(t, s, dir(p.Pid)+"/lwp/2/lwpctl", vfs.OWrite)
	defer lctl.Close()
	if _, err := lctl.Write((&procfs2.CtlBuf{}).Stop().Bytes()); err != nil {
		t.Fatal(err)
	}
	l2 := p.LWP(2)
	if !l2.StoppedOnEvent() {
		t.Fatal("lwp 2 not stopped")
	}
	if p.LWP(1).Stopped() {
		t.Fatal("lwp 1 should still run")
	}
	// Its lwpstatus file reports the stop.
	lst := openf(t, s, dir(p.Pid)+"/lwp/2/lwpstatus", vfs.ORead)
	defer lst.Close()
	st := readStatus(t, lst)
	if st.LWPID != 2 || st.Flags&kernel.PRIstop == 0 {
		t.Fatalf("lwpstatus = %+v", st)
	}
	// Resume it through its lwpctl.
	lctl.Offset = 0
	if _, err := lctl.Write((&procfs2.CtlBuf{}).Run(0, 0).Bytes()); err != nil {
		t.Fatal(err)
	}
	s.Run(3)
	if l2.Stopped() {
		t.Fatal("lwp 2 did not resume")
	}
}

func TestCtlIsWriteOnlyAndStatusReadOnly(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("perm", spin, types.UserCred(100, 10))
	s.Run(2)
	cl := s.Client(types.RootCred())
	if _, err := cl.Open(dir(p.Pid)+"/ctl", vfs.ORead); err == nil {
		t.Fatal("ctl should be write-only")
	}
	if _, err := cl.Open(dir(p.Pid)+"/status", vfs.OWrite); err == nil {
		t.Fatal("status should be read-only")
	}
	// Security: another user cannot open.
	other := s.Client(types.UserCred(200, 20))
	if _, err := other.Open(dir(p.Pid)+"/status", vfs.ORead); err != vfs.ErrPerm {
		t.Fatalf("foreign open: %v", err)
	}
}

func TestSetIDInvalidationAppliesToCtl(t *testing.T) {
	s := repro.NewSystem()
	if err := s.Install("/bin/su2", spin, 0o4755, 0, 0); err != nil {
		t.Fatal(err)
	}
	user := types.UserCred(100, 10)
	p, err := s.SpawnProg("esu", `
	movi r0, SYS_exec
	la r1, path
	syscall
loop:	jmp loop
.data
path:	.asciz "/bin/su2"
`, user)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := s.Client(user).Open(dir(p.Pid)+"/ctl", vfs.OWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(func() bool { return p.SugidDirty }, 200000); err != nil {
		t.Fatal(err)
	}
	ctl.Offset = 0
	if _, err := ctl.Write((&procfs2.CtlBuf{}).DStop().Bytes()); err != vfs.ErrStale {
		t.Fatalf("stale ctl write: %v", err)
	}
	if err := ctl.Close(); err != nil {
		t.Fatal("close of stale fd must succeed")
	}
}

// Wire-format property tests.
func TestQuickStatusRoundTrip(t *testing.T) {
	f := func(pid, ppid int32, cursig uint8, pc, sp uint32, pendLo, pendHi uint64) bool {
		st := kernel.ProcStatus{
			Pid: int(pid), PPid: int(ppid), CurSig: int(cursig),
			SigPend: types.SigSet{pendLo, pendHi},
			Reg:     vcpu.Regs{PC: pc, SP: sp},
		}
		got, err := procfs2.DecodeStatus(procfs2.EncodeStatus(st))
		return err == nil && got == st
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPSInfoRoundTrip(t *testing.T) {
	f := func(pid int32, state uint8, comm, args string, vsz int64) bool {
		if vsz < 0 {
			vsz = -vsz
		}
		info := kernel.PSInfo{Pid: int(pid), State: state, Comm: comm, Args: args, VSize: vsz}
		got, err := procfs2.DecodePSInfo(procfs2.EncodePSInfo(info))
		return err == nil && got == info
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := procfs2.EncodeStatus(kernel.ProcStatus{Pid: 1})
	if _, err := procfs2.DecodeStatus(full[:10]); err == nil {
		t.Fatal("truncated status should error")
	}
	if _, err := procfs2.DecodeMap([]byte{0, 0}); err == nil {
		t.Fatal("truncated map should error")
	}
	if _, err := procfs2.DecodeUsage([]byte{1}); err == nil {
		t.Fatal("truncated usage should error")
	}
}
