package procfs2

import (
	"fmt"
	"strconv"

	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

// FS is the restructured process file system. It is conventionally mounted
// at /procx beside the flat /proc so both interfaces can be compared; a real
// system would mount it at /proc.
type FS struct {
	K       *kernel.Kernel
	MaxWait int
}

// New creates the file system.
func New(k *kernel.Kernel) *FS {
	return &FS{K: k, MaxWait: 5_000_000}
}

// Root returns the directory vnode to mount.
func (fs *FS) Root() vfs.Dir { return &rootDir{fs: fs} }

// File names within a process directory.
const (
	FileStatus = "status" // read-only: EncodeStatus of the representative LWP
	FilePSInfo = "psinfo" // read-only: EncodePSInfo
	FileCtl    = "ctl"    // write-only: structured control messages
	FileAS     = "as"     // read/write: the address space
	FileMap    = "map"    // read-only: EncodeMap
	FileCred   = "cred"   // read-only: EncodeCred
	FileUsage  = "usage"  // read-only: EncodeUsage
	FileTrace  = "trace"  // read-only: the process's ktrace event stream
	DirLWP     = "lwp"    // directory of threads of control
)

// LWP subdirectory file names.
const (
	FileLWPStatus = "lwpstatus"
	FileLWPCtl    = "lwpctl"
)

// checkOpen enforces the /proc security rule via the predicate shared with
// the flat /proc and the batched snapshot (procfs.CanOpen): uid and gid of
// the traced process must match the controlling process; set-id processes
// require the super-user.
func checkOpen(p *kernel.Proc, c types.Cred) error {
	if !procfs.CanOpen(p, c) {
		return vfs.ErrPerm
	}
	return nil
}

// rootDir lists one directory per process.
type rootDir struct{ fs *FS }

// VAttr implements vfs.Vnode.
//
// As in the flat interface, these directory operations are host-side entry
// points that may run concurrently with the SMP scheduler: process-table
// walks hold the global kernel lock, per-process attribute reads add the
// per-process lock (no-ops in deterministic mode).
func (r *rootDir) VAttr() (vfs.Attr, error) {
	return vfs.Attr{Type: vfs.VDIR, Mode: 0o555,
		Size: int64(len(r.fs.K.Procs())), MTime: r.fs.K.Now(), Nlink: 2}, nil
}

// VOpen implements vfs.Vnode.
func (r *rootDir) VOpen(flags int, c types.Cred) (vfs.Handle, error) {
	if flags&vfs.OWrite != 0 {
		return nil, vfs.ErrIsDir
	}
	return dirHandle{}, nil
}

// VLookup implements vfs.Dir.
func (r *rootDir) VLookup(name string, c types.Cred) (vfs.Vnode, error) {
	switch name {
	case RootKTrace, RootTrace:
		return &rootTraceVnode{fs: r.fs, name: name}, nil
	case RootFaults:
		return &rootFaultsVnode{fs: r.fs}, nil
	case RootSnapshot:
		return &rootSnapVnode{fs: r.fs}, nil
	}
	pid, err := strconv.Atoi(name)
	if err != nil || pid < 0 {
		return nil, vfs.ErrNotExist
	}
	p := r.fs.K.Proc(pid)
	if p == nil {
		return nil, vfs.ErrNotExist
	}
	return &pidDir{fs: r.fs, p: p}, nil
}

// VReadDir implements vfs.Dir.
func (r *rootDir) VReadDir(c types.Cred) ([]vfs.Dirent, error) {
	var out []vfs.Dirent
	for _, name := range []string{RootKTrace, RootTrace} {
		vn := &rootTraceVnode{fs: r.fs, name: name}
		attr, _ := vn.VAttr()
		out = append(out, vfs.Dirent{Name: name, Attr: attr})
	}
	{
		vn := &rootFaultsVnode{fs: r.fs}
		attr, _ := vn.VAttr()
		out = append(out, vfs.Dirent{Name: RootFaults, Attr: attr})
	}
	{
		vn := &rootSnapVnode{fs: r.fs}
		attr, _ := vn.VAttr()
		out = append(out, vfs.Dirent{Name: RootSnapshot, Attr: attr})
	}
	for _, p := range r.fs.K.Procs() {
		d := &pidDir{fs: r.fs, p: p}
		attr, _ := d.VAttr()
		out = append(out, vfs.Dirent{Name: procfs.PidName(p.Pid), Attr: attr})
	}
	return out, nil
}

type dirHandle struct{}

func (dirHandle) HRead(p []byte, off int64) (int, error)  { return 0, vfs.ErrIsDir }
func (dirHandle) HWrite(p []byte, off int64) (int, error) { return 0, vfs.ErrIsDir }
func (dirHandle) HIoctl(cmd int, arg interface{}) error   { return vfs.ErrNoIoctl }
func (dirHandle) HClose() error                           { return nil }

// pidDir is /procx/<pid>: the hierarchy with the process-id at the top.
type pidDir struct {
	fs *FS
	p  *kernel.Proc
}

// VAttr implements vfs.Vnode.
func (d *pidDir) VAttr() (vfs.Attr, error) {
	d.fs.K.GlobalLock()
	d.p.Lock()
	defer func() {
		d.p.Unlock()
		d.fs.K.GlobalUnlock()
	}()
	return vfs.Attr{Type: vfs.VDIR, Mode: 0o555,
		UID: d.p.Cred.RUID, GID: d.p.Cred.RGID,
		Size: d.p.VirtSize(), MTime: d.fs.K.Now(), Nlink: 2}, nil
}

// VOpen implements vfs.Vnode.
func (d *pidDir) VOpen(flags int, c types.Cred) (vfs.Handle, error) {
	if flags&vfs.OWrite != 0 {
		return nil, vfs.ErrIsDir
	}
	return dirHandle{}, nil
}

// VLookup implements vfs.Dir.
func (d *pidDir) VLookup(name string, c types.Cred) (vfs.Vnode, error) {
	switch name {
	case FileStatus, FilePSInfo, FileCtl, FileAS, FileMap, FileCred, FileUsage, FileTrace:
		return &fileVnode{fs: d.fs, p: d.p, name: name}, nil
	case DirLWP:
		return &lwpDir{fs: d.fs, p: d.p}, nil
	}
	return nil, vfs.ErrNotExist
}

// VReadDir implements vfs.Dir.
func (d *pidDir) VReadDir(c types.Cred) ([]vfs.Dirent, error) {
	var out []vfs.Dirent
	for _, name := range []string{FileStatus, FilePSInfo, FileCtl, FileAS, FileMap, FileCred, FileUsage, FileTrace, DirLWP} {
		vn, _ := d.VLookup(name, c)
		attr, _ := vn.VAttr()
		out = append(out, vfs.Dirent{Name: name, Attr: attr})
	}
	return out, nil
}

// lwpDir is /procx/<pid>/lwp.
type lwpDir struct {
	fs *FS
	p  *kernel.Proc
}

// VAttr implements vfs.Vnode.
func (d *lwpDir) VAttr() (vfs.Attr, error) {
	d.fs.K.GlobalLock()
	d.p.Lock()
	defer func() {
		d.p.Unlock()
		d.fs.K.GlobalUnlock()
	}()
	return vfs.Attr{Type: vfs.VDIR, Mode: 0o555,
		UID: d.p.Cred.RUID, GID: d.p.Cred.RGID,
		Size: int64(len(d.p.LiveLWPs())), MTime: d.fs.K.Now(), Nlink: 2}, nil
}

// VOpen implements vfs.Vnode.
func (d *lwpDir) VOpen(flags int, c types.Cred) (vfs.Handle, error) {
	if flags&vfs.OWrite != 0 {
		return nil, vfs.ErrIsDir
	}
	return dirHandle{}, nil
}

// VLookup implements vfs.Dir.
func (d *lwpDir) VLookup(name string, c types.Cred) (vfs.Vnode, error) {
	id, err := strconv.Atoi(name)
	if err != nil {
		return nil, vfs.ErrNotExist
	}
	d.fs.K.GlobalLock()
	l := d.p.LWP(id)
	d.fs.K.GlobalUnlock()
	if l == nil {
		return nil, vfs.ErrNotExist
	}
	return &lwpSubDir{fs: d.fs, p: d.p, l: l}, nil
}

// VReadDir implements vfs.Dir.
func (d *lwpDir) VReadDir(c types.Cred) ([]vfs.Dirent, error) {
	var out []vfs.Dirent
	d.fs.K.GlobalLock()
	lwps := d.p.LiveLWPs()
	d.fs.K.GlobalUnlock()
	for _, l := range lwps {
		sub := &lwpSubDir{fs: d.fs, p: d.p, l: l}
		attr, _ := sub.VAttr()
		out = append(out, vfs.Dirent{Name: fmt.Sprint(l.ID), Attr: attr})
	}
	return out, nil
}

// lwpSubDir is /procx/<pid>/lwp/<lwpid>.
type lwpSubDir struct {
	fs *FS
	p  *kernel.Proc
	l  *kernel.LWP
}

// VAttr implements vfs.Vnode.
func (d *lwpSubDir) VAttr() (vfs.Attr, error) {
	d.fs.K.GlobalLock()
	d.p.Lock()
	defer func() {
		d.p.Unlock()
		d.fs.K.GlobalUnlock()
	}()
	return vfs.Attr{Type: vfs.VDIR, Mode: 0o555,
		UID: d.p.Cred.RUID, GID: d.p.Cred.RGID, MTime: d.fs.K.Now(), Nlink: 2}, nil
}

// VOpen implements vfs.Vnode.
func (d *lwpSubDir) VOpen(flags int, c types.Cred) (vfs.Handle, error) {
	if flags&vfs.OWrite != 0 {
		return nil, vfs.ErrIsDir
	}
	return dirHandle{}, nil
}

// VLookup implements vfs.Dir.
func (d *lwpSubDir) VLookup(name string, c types.Cred) (vfs.Vnode, error) {
	switch name {
	case FileLWPStatus, FileLWPCtl:
		return &fileVnode{fs: d.fs, p: d.p, l: d.l, name: name}, nil
	}
	return nil, vfs.ErrNotExist
}

// VReadDir implements vfs.Dir.
func (d *lwpSubDir) VReadDir(c types.Cred) ([]vfs.Dirent, error) {
	var out []vfs.Dirent
	for _, name := range []string{FileLWPStatus, FileLWPCtl} {
		vn, _ := d.VLookup(name, c)
		attr, _ := vn.VAttr()
		out = append(out, vfs.Dirent{Name: name, Attr: attr})
	}
	return out, nil
}
