// Package procfs2 implements the paper's proposed restructuring of /proc:
// a hierarchy of directories containing status and control files, replacing
// every ioctl operation with read(2) and write(2). Process state is
// interrogated by reads of read-only status files; process control is
// effected by structured messages written to write-only control files —
// several control operations may be combined in a single write. Thread-ids
// of sibling LWPs appear as sub-directories within a hierarchy that has the
// process-id at the top.
//
// Because everything is plain bytes over read/write, this interface
// generalizes to networks with no per-operation marshalling knowledge — the
// property the paper argues makes the restructuring superior to ioctl for
// remote file systems.
package procfs2

import (
	"encoding/binary"
	"errors"

	"repro/internal/kernel"
	"repro/internal/types"
	"repro/internal/vcpu"
)

// wire is a little-endian-free (big-endian) append/consume codec.
type wire struct {
	b   []byte
	off int
	err error
}

func (w *wire) putU32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *wire) putU64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *wire) putI32(v int32)  { w.putU32(uint32(v)) }
func (w *wire) putStr(s string) {
	w.putU32(uint32(len(s)))
	w.b = append(w.b, s...)
}

// errShortWire reports a truncated buffer.
var errShortWire = errors.New("procfs2: truncated message")

func (w *wire) u32() uint32 {
	if w.err != nil {
		return 0
	}
	if w.off+4 > len(w.b) {
		w.err = errShortWire
		return 0
	}
	v := binary.BigEndian.Uint32(w.b[w.off:])
	w.off += 4
	return v
}

func (w *wire) u64() uint64 {
	if w.err != nil {
		return 0
	}
	if w.off+8 > len(w.b) {
		w.err = errShortWire
		return 0
	}
	v := binary.BigEndian.Uint64(w.b[w.off:])
	w.off += 8
	return v
}

func (w *wire) i32() int32 { return int32(w.u32()) }

func (w *wire) str() string {
	n := int(w.u32())
	if w.err != nil {
		return ""
	}
	if n < 0 || w.off+n > len(w.b) {
		w.err = errShortWire
		return ""
	}
	s := string(w.b[w.off : w.off+n])
	w.off += n
	return s
}

func (w *wire) putSigSet(s types.SigSet) {
	w.putU64(s[0])
	w.putU64(s[1])
}

func (w *wire) sigSet() types.SigSet { return types.SigSet{w.u64(), w.u64()} }

func (w *wire) putFltSet(s types.FltSet) {
	w.putU64(s[0])
	w.putU64(s[1])
}

func (w *wire) fltSet() types.FltSet { return types.FltSet{w.u64(), w.u64()} }

func (w *wire) putSysSet(s types.SysSet) {
	for _, v := range s {
		w.putU64(v)
	}
}

func (w *wire) sysSet() types.SysSet {
	var s types.SysSet
	for i := range s {
		s[i] = w.u64()
	}
	return s
}

func (w *wire) putRegs(r vcpu.Regs) {
	for _, v := range r.R {
		w.putU32(v)
	}
	w.putU32(r.PC)
	w.putU32(r.SP)
	w.putU32(r.PSW)
}

func (w *wire) regs() vcpu.Regs {
	var r vcpu.Regs
	for i := range r.R {
		r.R[i] = w.u32()
	}
	r.PC = w.u32()
	r.SP = w.u32()
	r.PSW = w.u32()
	return r
}

// EncodeStatus serializes a ProcStatus for the status/lwpstatus files.
func EncodeStatus(st kernel.ProcStatus) []byte {
	w := &wire{}
	w.putI32(int32(st.Flags))
	w.putI32(int32(st.Why))
	w.putI32(int32(st.What))
	w.putI32(int32(st.CurSig))
	w.putI32(int32(st.Pid))
	w.putI32(int32(st.PPid))
	w.putI32(int32(st.Pgrp))
	w.putI32(int32(st.Sid))
	w.putI32(int32(st.LWPID))
	w.putI32(int32(st.NLWP))
	w.putSigSet(st.SigPend)
	w.putSigSet(st.SigHold)
	w.putRegs(st.Reg)
	w.putI32(int32(st.Syscall))
	for _, a := range st.SysArgs {
		w.putU32(a)
	}
	w.putU64(st.Instret)
	w.putU64(uint64(st.UTime))
	w.putU64(uint64(st.STime))
	w.putU32(st.BrkBase)
	w.putU32(st.BrkSize)
	w.putU32(st.StkBase)
	w.putU32(st.StkSize)
	w.putU64(uint64(st.VSize))
	return w.b
}

// DecodeStatus parses the status file contents.
func DecodeStatus(b []byte) (kernel.ProcStatus, error) {
	w := &wire{b: b}
	var st kernel.ProcStatus
	st.Flags = int(w.i32())
	st.Why = kernel.StopWhy(w.i32())
	st.What = int(w.i32())
	st.CurSig = int(w.i32())
	st.Pid = int(w.i32())
	st.PPid = int(w.i32())
	st.Pgrp = int(w.i32())
	st.Sid = int(w.i32())
	st.LWPID = int(w.i32())
	st.NLWP = int(w.i32())
	st.SigPend = w.sigSet()
	st.SigHold = w.sigSet()
	st.Reg = w.regs()
	st.Syscall = int(w.i32())
	for i := range st.SysArgs {
		st.SysArgs[i] = w.u32()
	}
	st.Instret = w.u64()
	st.UTime = int64(w.u64())
	st.STime = int64(w.u64())
	st.BrkBase = w.u32()
	st.BrkSize = w.u32()
	st.StkBase = w.u32()
	st.StkSize = w.u32()
	st.VSize = int64(w.u64())
	return st, w.err
}

func (w *wire) putPSInfo(info kernel.PSInfo) {
	w.putI32(int32(info.Pid))
	w.putI32(int32(info.PPid))
	w.putI32(int32(info.Pgrp))
	w.putI32(int32(info.Sid))
	w.putI32(int32(info.UID))
	w.putI32(int32(info.GID))
	w.putU32(uint32(info.State))
	w.putI32(int32(info.Nice))
	w.putU64(uint64(info.VSize))
	w.putU64(uint64(info.Time))
	w.putU64(uint64(info.Start))
	w.putI32(int32(info.NLWP))
	w.putStr(info.Comm)
	w.putStr(info.Args)
}

func (w *wire) psInfo() kernel.PSInfo {
	var info kernel.PSInfo
	info.Pid = int(w.i32())
	info.PPid = int(w.i32())
	info.Pgrp = int(w.i32())
	info.Sid = int(w.i32())
	info.UID = int(w.i32())
	info.GID = int(w.i32())
	info.State = byte(w.u32())
	info.Nice = int(w.i32())
	info.VSize = int64(w.u64())
	info.Time = int64(w.u64())
	info.Start = int64(w.u64())
	info.NLWP = int(w.i32())
	info.Comm = w.str()
	info.Args = w.str()
	return info
}

// EncodePSInfo serializes a PSInfo for the psinfo file.
func EncodePSInfo(info kernel.PSInfo) []byte {
	w := &wire{}
	w.putPSInfo(info)
	return w.b
}

// DecodePSInfo parses the psinfo file contents.
func DecodePSInfo(b []byte) (kernel.PSInfo, error) {
	w := &wire{b: b}
	info := w.psInfo()
	return info, w.err
}

// MapEntry is one mapping in the map file.
type MapEntry struct {
	Vaddr  uint32
	Size   uint32
	Off    int64
	Prot   uint32
	Shared bool
	Kind   int32
	Name   string
}

// EncodeMap serializes the memory map.
func EncodeMap(entries []MapEntry) []byte {
	w := &wire{}
	w.putU32(uint32(len(entries)))
	for _, e := range entries {
		w.putU32(e.Vaddr)
		w.putU32(e.Size)
		w.putU64(uint64(e.Off))
		w.putU32(e.Prot)
		if e.Shared {
			w.putU32(1)
		} else {
			w.putU32(0)
		}
		w.putI32(e.Kind)
		w.putStr(e.Name)
	}
	return w.b
}

// DecodeMap parses the map file contents.
func DecodeMap(b []byte) ([]MapEntry, error) {
	w := &wire{b: b}
	n := int(w.u32())
	if w.err != nil {
		return nil, w.err
	}
	if n < 0 || n > 1<<20 {
		return nil, errors.New("procfs2: unreasonable map size")
	}
	out := make([]MapEntry, 0, n)
	for i := 0; i < n && w.err == nil; i++ {
		var e MapEntry
		e.Vaddr = w.u32()
		e.Size = w.u32()
		e.Off = int64(w.u64())
		e.Prot = w.u32()
		e.Shared = w.u32() != 0
		e.Kind = w.i32()
		e.Name = w.str()
		out = append(out, e)
	}
	return out, w.err
}

// EncodeCred serializes credentials for the cred file.
func EncodeCred(c types.Cred) []byte {
	w := &wire{}
	w.putI32(int32(c.RUID))
	w.putI32(int32(c.EUID))
	w.putI32(int32(c.SUID))
	w.putI32(int32(c.RGID))
	w.putI32(int32(c.EGID))
	w.putI32(int32(c.SGID))
	w.putU32(uint32(len(c.Groups)))
	for _, g := range c.Groups {
		w.putI32(int32(g))
	}
	return w.b
}

// DecodeCred parses the cred file contents.
func DecodeCred(b []byte) (types.Cred, error) {
	w := &wire{b: b}
	var c types.Cred
	c.RUID = int(w.i32())
	c.EUID = int(w.i32())
	c.SUID = int(w.i32())
	c.RGID = int(w.i32())
	c.EGID = int(w.i32())
	c.SGID = int(w.i32())
	n := int(w.u32())
	for i := 0; i < n && w.err == nil && i < 256; i++ {
		c.Groups = append(c.Groups, int(w.i32()))
	}
	return c, w.err
}

// EncodeUsage serializes resource usage for the usage file.
func EncodeUsage(u kernel.Usage, minor, cow, watch, grow int64) []byte {
	w := &wire{}
	w.putUsage(UsageRecord{Usage: u, MinorFaults: minor, COWFaults: cow,
		WatchRecover: watch, StackGrows: grow})
	return w.b
}

// UsageRecord is the decoded usage file.
type UsageRecord struct {
	kernel.Usage
	MinorFaults  int64
	COWFaults    int64
	WatchRecover int64
	StackGrows   int64
}

func (w *wire) putUsage(u UsageRecord) {
	for _, v := range []int64{
		u.UserTicks, u.SysTicks, u.Syscalls, u.Faults, u.Signals,
		u.ForkedKids, u.VolCtx, u.InvolCtx,
		u.MinorFaults, u.COWFaults, u.WatchRecover, u.StackGrows,
	} {
		w.putU64(uint64(v))
	}
}

func (w *wire) usage() UsageRecord {
	var u UsageRecord
	fields := []*int64{
		&u.UserTicks, &u.SysTicks, &u.Syscalls, &u.Faults, &u.Signals,
		&u.ForkedKids, &u.VolCtx, &u.InvolCtx,
		&u.MinorFaults, &u.COWFaults, &u.WatchRecover, &u.StackGrows,
	}
	for _, f := range fields {
		*f = int64(w.u64())
	}
	return u
}

// DecodeUsage parses the usage file contents.
func DecodeUsage(b []byte) (UsageRecord, error) {
	w := &wire{b: b}
	u := w.usage()
	return u, w.err
}

// SnapRec is one process of an encoded table snapshot: the psinfo record
// plus (optionally meaningful) resource usage.
type SnapRec struct {
	Info  kernel.PSInfo
	Usage UsageRecord
}

// EncodeSnap serializes a whole-table snapshot — the revision token, the
// churn flag, and one record per process — for the snapshot file and the
// remote PIOCSNAP result.
func EncodeSnap(rev uint64, churned bool, recs []SnapRec) []byte {
	w := &wire{}
	w.putU64(rev)
	if churned {
		w.putU32(1)
	} else {
		w.putU32(0)
	}
	w.putU32(uint32(len(recs)))
	for _, r := range recs {
		w.putPSInfo(r.Info)
		w.putUsage(r.Usage)
	}
	return w.b
}

// DecodeSnap parses an encoded table snapshot.
func DecodeSnap(b []byte) (rev uint64, churned bool, recs []SnapRec, err error) {
	w := &wire{b: b}
	rev = w.u64()
	churned = w.u32() != 0
	n := int(w.u32())
	if w.err != nil {
		return 0, false, nil, w.err
	}
	if n < 0 || n > 1<<20 {
		return 0, false, nil, errors.New("procfs2: unreasonable snapshot size")
	}
	recs = make([]SnapRec, 0, n)
	for i := 0; i < n && w.err == nil; i++ {
		recs = append(recs, SnapRec{Info: w.psInfo(), Usage: w.usage()})
	}
	return rev, churned, recs, w.err
}
