package procfs2_test

import (
	"testing"

	"repro"
	"repro/internal/procfs2"
	"repro/internal/types"
	"repro/internal/vfs"
)

// TestSnapshotChurnUnderRead pins the coherence contract of the
// /procx/snapshot read cache: the table is walked when offset zero is read
// and every later offset is served from that one encoding, so a reader
// paging through the file in small pieces sees the pre-churn table even
// when processes are created in between — never a byte stream mixing two
// sweeps. Rewinding to offset zero deliberately takes a fresh snapshot.
func TestSnapshotChurnUnderRead(t *testing.T) {
	s := repro.NewSystem(repro.Options{NCPU: 1})
	for i := 0; i < 4; i++ {
		if _, err := s.SpawnProg("pop", spin, types.UserCred(100, 10)); err != nil {
			t.Fatal(err)
		}
	}
	preRev := s.K.TableRev()
	prePids := map[int]bool{}
	for _, p := range s.K.Procs() {
		prePids[p.Pid] = true
	}

	f := openf(t, s, "/procx/"+procfs2.RootSnapshot, vfs.ORead)
	defer f.Close()

	// First piece: a deliberately tiny read at offset zero takes the
	// snapshot and returns its head.
	head := make([]byte, 16)
	n, err := f.Pread(head, 0)
	if err != nil || n != len(head) {
		t.Fatalf("head read: n=%d err=%v", n, err)
	}

	// Churn the table mid-sweep: a fork and an exit both bump the
	// revision.
	newP, err := s.SpawnProg("late", spin, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	if s.K.TableRev() == preRev {
		t.Fatal("spawn did not bump the table revision; churn is vacuous")
	}

	// Page through the rest in small pieces.
	buf := append([]byte(nil), head[:n]...)
	for {
		chunk := make([]byte, 23) // odd size: offsets land mid-record
		n, err := f.Pread(chunk, int64(len(buf)))
		if err == vfs.EOF {
			break
		}
		if err != nil {
			t.Fatalf("read at %d: %v", len(buf), err)
		}
		buf = append(buf, chunk[:n]...)
	}

	rev, _, recs, err := procfs2.DecodeSnap(buf)
	if err != nil {
		t.Fatalf("paged snapshot does not decode (sweeps mixed): %v", err)
	}
	if rev != preRev {
		t.Fatalf("paged snapshot rev = %d, want pre-churn %d", rev, preRev)
	}
	for _, r := range recs {
		if r.Info.Pid == newP.Pid {
			t.Fatalf("pid %d forked mid-sweep appears in the pre-churn snapshot", newP.Pid)
		}
		if !prePids[r.Info.Pid] {
			t.Fatalf("pid %d in snapshot but not in pre-churn table", r.Info.Pid)
		}
	}

	// Rewind semantics: offset zero takes a fresh sweep that does see the
	// new process and the new revision.
	buf2 := make([]byte, 1<<16)
	n, err = f.Pread(buf2, 0)
	if err != nil {
		t.Fatalf("rewind read: %v", err)
	}
	rev2, _, recs2, err := procfs2.DecodeSnap(buf2[:n])
	if err != nil {
		t.Fatalf("rewound snapshot does not decode: %v", err)
	}
	if rev2 == preRev {
		t.Fatal("rewind served the stale snapshot; offset zero must retake")
	}
	found := false
	for _, r := range recs2 {
		if r.Info.Pid == newP.Pid {
			found = true
		}
	}
	if !found {
		t.Fatalf("pid %d missing from the rewound snapshot", newP.Pid)
	}
}
