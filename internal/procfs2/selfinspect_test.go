package procfs2_test

import (
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/types"
)

// A program inside the simulation inspects itself through the restructured
// /proc with nothing but getpid, open and read — no ioctl anywhere. The
// flat interface cannot be used this way from a plain binary interface,
// which is precisely the contrast the paper's restructuring draws: "process
// state is interrogated by read(2) operations applied to appropriate
// read-only status files".
func TestProgramReadsItsOwnPSInfo(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("navelgaze", `
	movi r0, SYS_getpid
	syscall
	mov r5, r0		; pid
	; render the pid as the 5-digit directory name, backwards
	la r6, name
	addi r6, 4
	movi r7, 5
digs:	mov r1, r5
	movi r2, 10
	mod r1, r2
	addi r1, 48		; '0' + digit
	stb r1, [r6]
	movi r2, 10
	div r5, r2
	addi r6, -1
	addi r7, -1
	cmpi r7, 0
	jne digs
	; open /procx/<name>/psinfo and read the binary record
	movi r0, SYS_open
	la r1, path
	movi r2, 1
	syscall
	mov r6, r0
	movi r0, SYS_read
	mov r1, r6
	la r2, buf
	movi r3, 64
	syscall
	la r3, buf
	ld r1, [r3]		; the first field of psinfo is the pid
	movi r0, SYS_exit
	syscall
.data
path:	.ascii "/procx/"
name:	.ascii "00000"
	.asciz "/psinfo"
buf:	.space 64
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, code := kernel.WIfExited(status); code != p.Pid&0xFF {
		t.Fatalf("code = %d, want the process's own pid %d", code, p.Pid)
	}
}

// A program walks the /procx directory itself with getdents: the process
// file system is an ordinary directory tree even to simulated programs.
func TestProgramListsProcx(t *testing.T) {
	s := repro.NewSystem()
	// Spawn a sibling so there is something beyond the system processes.
	if _, err := s.SpawnProg("sibling", "loop:\tjmp loop\n", types.UserCred(100, 10)); err != nil {
		t.Fatal(err)
	}
	p, err := s.SpawnProg("walker", `
	movi r0, SYS_open
	la r1, dir
	movi r2, 1
	syscall
	mov r6, r0
	movi r7, 0
more:	movi r0, SYS_getdents
	mov r1, r6
	la r2, buf
	movi r3, 512
	syscall
	cmpi r0, 0
	je done
	movi r2, 64
	div r0, r2
	add r7, r0
	jmp more
done:	mov r1, r7	; entries seen: sched, init, pageout, sibling, walker
	movi r0, SYS_exit
	syscall
.data
dir:	.asciz "/procx"
buf:	.space 512
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, code := kernel.WIfExited(status); code < 5 {
		t.Fatalf("entries = %d, want >= 5", code)
	}
}
