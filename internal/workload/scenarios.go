package workload

import (
	"fmt"
	"io"

	"repro"
	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/tools"
	"repro/internal/types"
	"repro/internal/vcpu"
	"repro/internal/vfs"
)

// The scenario programs. Each is assembled once per run and spawned as many
// times as the operation count demands.

// progSpin burns cycles forever; the debugger fleet's victim.
const progSpin = "loop:\tjmp loop\n"

// progPause parks immediately; the cheap body of a large population.
const progPause = `
loop:	movi r0, SYS_pause
	syscall
	jmp loop
`

// progMill makes a system call per loop: the syscall-path grinder.
const progMill = `
loop:	movi r0, SYS_getpid
	syscall
	jmp loop
`

// progForkStorm forks kids children (each exits at once) and reaps them all.
func progForkStorm(kids int) string {
	return fmt.Sprintf(`
	movi r6, 0
fork:	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_exit	; each child exits immediately
	movi r1, 0
	syscall
parent:	addi r6, 1
	cmpi r6, %d
	jne fork
	movi r6, 0
reap:	movi r0, SYS_wait
	movi r1, 0
	syscall
	addi r6, 1
	cmpi r6, %d
	jne reap
	movi r0, SYS_exit
	movi r1, 0
	syscall
`, kids, kids)
}

// progPipe forks; the child delays, then writes 4 x 8 bytes down a pipe;
// the parent's reads block until they arrive, then it reaps and exits.
func progPipe(delay int) string {
	return fmt.Sprintf(`
	movi r0, SYS_pipe
	syscall			; r0 = read fd, r1 = write fd
	mov r6, r0
	mov r7, r1
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r5, %d		; child: delay so the parent blocks first
cspin:	addi r5, -1
	cmpi r5, 0
	jne cspin
	movi r4, 0
wloop:	movi r0, SYS_write
	mov r1, r7
	la r2, msg
	movi r3, 8
	syscall
	addi r4, 1
	cmpi r4, 4
	jne wloop
	movi r0, SYS_exit
	movi r1, 0
	syscall
parent:	movi r4, 0
rloop:	movi r0, SYS_read	; blocks until the child's write arrives
	mov r1, r6
	la r2, buf
	movi r3, 8
	syscall
	addi r4, 1
	cmpi r4, 4
	jne rloop
	movi r0, SYS_wait
	movi r1, 0
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
.data
msg:	.ascii "pipeline"
buf:	.space 8
`, delay)
}

// progChurn mills one file on the persistent disk: creat, a burst of writes,
// fsync (a blockfs checkpoint), close, unlink — rounds times over — then a
// final sync(2) and exit. Each churner gets its own path so the logical
// workloads are independent while the file system underneath is shared.
func progChurn(id, rounds, writes int) string {
	return fmt.Sprintf(`
	movi r6, 0
loop:	movi r0, SYS_creat
	la r1, path
	movi r2, 420		; 0644
	syscall
	mov r7, r0		; the churn fd
	movi r4, 0
wr:	movi r0, SYS_write
	mov r1, r7
	la r2, data
	movi r3, 512
	syscall
	addi r4, 1
	cmpi r4, %d
	jne wr
	movi r0, SYS_fsync
	mov r1, r7
	syscall
	movi r0, SYS_close
	mov r1, r7
	syscall
	movi r0, SYS_unlink
	la r1, path
	syscall
	addi r6, 1
	cmpi r6, %d
	jne loop
	movi r0, SYS_sync
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
.data
path:	.asciz "/disk/churn%d"
data:	.space 512
`, writes, rounds, id)
}

// runFSChurn measures the persistent-filesystem path from inside the
// simulation: a fleet of processes each milling creat/write/fsync/unlink on
// its own /disk file. One operation is one scheduler pass, so the samples
// capture the mill's full mix (journal commits, checkpoint flushes, block
// allocation and free). After the fleet drains, the disk must be empty and
// structurally clean.
func runFSChurn(s *repro.System, cfg Config, h *hist) error {
	rng := cfg.rng()
	procs := orDefault(cfg.Procs, 4)
	rounds := orDefault(cfg.Ops, 6)
	if s.Disk == nil {
		return fmt.Errorf("fs_churn: system booted without a disk")
	}
	fleet := make([]*kernel.Proc, 0, procs)
	for i := 0; i < procs; i++ {
		path := fmt.Sprintf("/bin/churn%d", i)
		writes := 2 + rng.Intn(6)
		if err := s.Install(path, progChurn(i, rounds, writes), 0o755, 0, 0); err != nil {
			return err
		}
		p, err := s.Spawn(path, []string{fmt.Sprintf("churn%d", i)}, types.UserCred(100+i%8, 10))
		if err != nil {
			return err
		}
		fleet = append(fleet, p)
	}
	alive := func() bool {
		for _, p := range fleet {
			if p.Alive() {
				return true
			}
		}
		return false
	}
	for passes := 0; alive(); passes++ {
		if passes > 4_000_000 {
			return fmt.Errorf("fs_churn: fleet did not drain")
		}
		h.op(func() { s.Step() })
	}
	// Every churner unlinked its file, so the disk must come back empty —
	// and the image must pass the structural checker.
	ents, err := s.Client(types.RootCred()).ReadDir("/disk")
	if err != nil {
		return err
	}
	if len(ents) != 0 {
		return fmt.Errorf("fs_churn: %d files left on /disk after drain", len(ents))
	}
	if bad := s.Disk.Fsck(); len(bad) != 0 {
		return fmt.Errorf("fs_churn: fsck reported %d violations: %v", len(bad), bad)
	}
	return nil
}

// runForkStorm measures process creation and reaping: one operation spawns
// a forker (family size chosen by the seeded stream) and runs its whole
// family to completion.
func runForkStorm(s *repro.System, cfg Config, h *hist) error {
	rng := cfg.rng()
	ops := orDefault(cfg.Ops, 40)
	variants := []string{"/bin/storm2", "/bin/storm3", "/bin/storm4"}
	for i, path := range variants {
		if err := s.Install(path, progForkStorm(i+2), 0o755, 0, 0); err != nil {
			return err
		}
	}
	for i := 0; i < ops; i++ {
		path := variants[rng.Intn(len(variants))]
		cred := types.UserCred(100+rng.Intn(4), 10)
		var err error
		h.op(func() {
			var p *kernel.Proc
			p, err = s.Spawn(path, []string{fmt.Sprintf("storm%d", i)}, cred)
			if err != nil {
				return
			}
			_, err = s.WaitExit(p)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// runSyscallMill spawns a fleet grinding getpid and measures scheduler
// passes: one operation is one Step of the whole system.
func runSyscallMill(s *repro.System, cfg Config, h *hist) error {
	procs := orDefault(cfg.Procs, 8)
	ops := orDefault(cfg.Ops, 400)
	if err := s.Install("/bin/mill", progMill, 0o755, 0, 0); err != nil {
		return err
	}
	fleet := make([]*kernel.Proc, 0, procs)
	for i := 0; i < procs; i++ {
		p, err := s.Spawn("/bin/mill", []string{fmt.Sprintf("mill%d", i)}, types.UserCred(100+i%8, 10))
		if err != nil {
			return err
		}
		fleet = append(fleet, p)
	}
	for i := 0; i < ops; i++ {
		h.op(func() { s.Step() })
	}
	for _, p := range fleet {
		s.K.PostSignal(p, types.SIGKILL)
	}
	for _, p := range fleet {
		if _, err := s.WaitExit(p); err != nil {
			return err
		}
	}
	return nil
}

// runPipePipeline measures the blocking-I/O path: one operation spawns a
// fork+pipe pair and runs the transfer (blocked reads, wakeups, the reap)
// to completion.
func runPipePipeline(s *repro.System, cfg Config, h *hist) error {
	rng := cfg.rng()
	ops := orDefault(cfg.Ops, 30)
	variants := []string{"/bin/pipefast", "/bin/pipeslow"}
	for i, path := range variants {
		if err := s.Install(path, progPipe(60+i*140), 0o755, 0, 0); err != nil {
			return err
		}
	}
	for i := 0; i < ops; i++ {
		path := variants[rng.Intn(len(variants))]
		cred := types.UserCred(100+rng.Intn(4), 10)
		var err error
		h.op(func() {
			var p *kernel.Proc
			p, err = s.Spawn(path, []string{fmt.Sprintf("pipe%d", i)}, cred)
			if err != nil {
				return
			}
			_, err = s.WaitExit(p)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// runDebuggerFleet measures attach/detach churn over a fleet of targets:
// one operation opens a seeded-random target's /proc file, stops it, reads
// its registers, sets it running and closes — the truss/dbg hot loop.
func runDebuggerFleet(s *repro.System, cfg Config, h *hist) error {
	rng := cfg.rng()
	procs := orDefault(cfg.Procs, 6)
	ops := orDefault(cfg.Ops, 80)
	if err := s.Install("/bin/target", progSpin, 0o755, 0, 0); err != nil {
		return err
	}
	fleet := make([]*kernel.Proc, 0, procs)
	for i := 0; i < procs; i++ {
		p, err := s.Spawn("/bin/target", []string{fmt.Sprintf("target%d", i)}, types.UserCred(100+i%8, 10))
		if err != nil {
			return err
		}
		fleet = append(fleet, p)
	}
	s.Run(2)
	for i := 0; i < ops; i++ {
		p := fleet[rng.Intn(len(fleet))]
		// Let the fleet make progress between attaches.
		for n := rng.Intn(3); n > 0; n-- {
			s.Step()
		}
		var err error
		h.op(func() {
			var f *vfs.File
			f, err = s.OpenProc(p.Pid, vfs.ORead|vfs.OWrite, types.RootCred())
			if err != nil {
				return
			}
			defer f.Close()
			if err = f.Ioctl(procfs.PIOCSTOP, nil); err != nil {
				return
			}
			var regs vcpu.Regs
			if err = f.Ioctl(procfs.PIOCGREG, &regs); err != nil {
				return
			}
			err = f.Ioctl(procfs.PIOCRUN, nil)
		})
		if err != nil {
			return err
		}
	}
	for _, p := range fleet {
		s.K.PostSignal(p, types.SIGKILL)
	}
	for _, p := range fleet {
		if _, err := s.WaitExit(p); err != nil {
			return err
		}
	}
	return nil
}

// runProcScan populates the system with a large fleet of parked processes
// and measures whole-table sweeps: one operation is one ps or usage sweep
// (mix chosen by the seeded stream), batched through PIOCSNAP or per-pid
// with -legacy semantics.
func runProcScan(s *repro.System, cfg Config, h *hist) error {
	rng := cfg.rng()
	procs := orDefault(cfg.Procs, 1000)
	ops := orDefault(cfg.Ops, 12)
	if err := s.Install("/bin/parked", progPause, 0o755, 0, 0); err != nil {
		return err
	}
	for i := 0; i < procs; i++ {
		if _, err := s.Spawn("/bin/parked", []string{fmt.Sprintf("parked%d", i)}, types.UserCred(100+i%16, 10)); err != nil {
			return err
		}
	}
	// Park the population: everyone runs to its pause(2) and blocks.
	s.Run(procs + 50)
	cl := s.Client(types.RootCred())
	for i := 0; i < ops; i++ {
		psSweep := rng.Intn(10) < 7
		var err error
		h.op(func() {
			switch {
			case psSweep && cfg.Legacy:
				err = tools.PSLegacy(cl, io.Discard)
			case psSweep:
				err = tools.PS(cl, io.Discard)
			case cfg.Legacy:
				err = tools.FleetUsageLegacy(cl, io.Discard)
			default:
				err = tools.FleetUsage(cl, io.Discard)
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}
