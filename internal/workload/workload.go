// Package workload is the macro-benchmark suite: deterministic, seedable
// whole-system scenarios — fork storms, syscall mills, pipe pipelines,
// debugger attach/detach churn, and /proc scans over large process
// populations — each reporting a per-operation latency distribution
// (p50/p95/p99/max) and aggregate operations per second.
//
// Scenarios drive a simulated system from the host side the way the
// repository's tools do. Every decision a scenario makes (which program to
// spawn, which target to attach to, which sweep to run) comes from a
// math/rand stream seeded by Config.Seed, so one seed replays one exact
// simulation: the ktrace stream and the final process table are
// bit-identical across runs. Host wall-clock time is only ever *recorded*
// around operations, never consulted for decisions, which is what keeps the
// measurement from perturbing the simulation.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro"
)

// Config tunes one scenario run. Zero values take per-scenario defaults.
type Config struct {
	Seed     int64 // the replay key; same seed, same simulation
	Ops      int   // measured operations
	Procs    int   // population size, where the scenario has one
	Legacy   bool  // proc_scan: per-pid /proc sweeps instead of PIOCSNAP
	TraceCap int   // when >0, enable kernel-wide ktrace with this capacity
	// NCPU selects the scheduler: 0 or 1 the deterministic one (1 pins it
	// against REPRO_NCPU), above 1 the SMP scheduler. Runs above 1 are
	// not bit-replayable — scheduling order depends on goroutine timing.
	NCPU int
}

// Result is one scenario's report: the latency distribution over its
// measured operations and the aggregate rate.
type Result struct {
	Scenario  string
	Ops       int
	ElapsedNs int64
	OpsPerSec float64
	MeanNs    float64
	P50Ns     float64
	P95Ns     float64
	P99Ns     float64
	MaxNs     float64
}

// Scenario is one named workload.
type Scenario struct {
	Name string
	Desc string
	run  func(s *repro.System, cfg Config, h *hist) error
	// disk, when nonzero, boots the system with a persistent blockfs of
	// that many blocks at /disk.
	disk int
}

// scenarios is the registry, in presentation order.
var scenarios = []Scenario{
	{"fork_storm", "process creation/reaping churn: spawn a forker, run its family to completion", runForkStorm, 0},
	{"syscall_mill", "a fleet of processes grinding getpid; one op is one scheduler pass", runSyscallMill, 0},
	{"pipe_pipeline", "fork + pipe transfer with blocking reads, run to completion", runPipePipeline, 0},
	{"debugger_fleet", "attach/detach churn: open, stop, read registers, run, close", runDebuggerFleet, 0},
	{"proc_scan", "mixed ps/usage sweeps of /proc over a large live population", runProcScan, 0},
	{"fs_churn", "create/write/fsync/unlink mill on the persistent /disk; one op is one scheduler pass", runFSChurn, 2048},
}

// Names lists the registered scenarios in order.
func Names() []string {
	out := make([]string, len(scenarios))
	for i, sc := range scenarios {
		out[i] = sc.Name
	}
	return out
}

// Get returns a scenario by name.
func Get(name string) (Scenario, bool) {
	for _, sc := range scenarios {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Run boots a fresh system, runs the named scenario under cfg, and returns
// its report along with the system itself so callers (the determinism
// harness) can inspect the trace stream and final process table.
func Run(name string, cfg Config) (Result, *repro.System, error) {
	sc, ok := Get(name)
	if !ok {
		return Result{}, nil, fmt.Errorf("workload: unknown scenario %q (have %v)", name, Names())
	}
	s := repro.NewSystem(repro.Options{NCPU: cfg.NCPU, DiskBlocks: sc.disk})
	if cfg.TraceCap > 0 {
		s.K.EnableKTraceAll(cfg.TraceCap)
	}
	h := &hist{}
	start := time.Now()
	if err := sc.run(s, cfg, h); err != nil {
		return Result{}, s, fmt.Errorf("workload: %s: %w", name, err)
	}
	elapsed := time.Since(start)
	res := h.result(name, elapsed)
	return res, s, nil
}

// rng returns the scenario's decision stream.
func (cfg Config) rng() *rand.Rand { return rand.New(rand.NewSource(cfg.Seed)) }

// orDefault picks a configured value or the scenario default.
func orDefault(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

// hist accumulates per-operation latencies in nanoseconds.
type hist struct {
	samples []int64
}

// op times one operation.
func (h *hist) op(f func()) {
	t0 := time.Now()
	f()
	h.samples = append(h.samples, time.Since(t0).Nanoseconds())
}

// record adds one pre-measured sample.
func (h *hist) record(ns int64) { h.samples = append(h.samples, ns) }

// percentile is the nearest-rank percentile over the sorted samples.
func percentile(sorted []int64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return float64(sorted[rank])
}

// result summarizes the distribution.
func (h *hist) result(name string, elapsed time.Duration) Result {
	res := Result{Scenario: name, Ops: len(h.samples), ElapsedNs: elapsed.Nanoseconds()}
	if len(h.samples) == 0 {
		return res
	}
	sorted := append([]int64(nil), h.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum int64
	for _, v := range sorted {
		sum += v
	}
	res.MeanNs = float64(sum) / float64(len(sorted))
	res.P50Ns = percentile(sorted, 0.50)
	res.P95Ns = percentile(sorted, 0.95)
	res.P99Ns = percentile(sorted, 0.99)
	res.MaxNs = float64(sorted[len(sorted)-1])
	if elapsed > 0 {
		res.OpsPerSec = float64(len(sorted)) / elapsed.Seconds()
	}
	return res
}
