package workload

import (
	"runtime"
	"testing"
	"time"
)

// TestWorkloadSMPSmoke runs every scenario on the SMP scheduler at NCPU=4
// and checks two things the deterministic smoke cannot: the scenarios
// complete correctly when scheduling passes fan out to worker goroutines
// (make verify-smp runs this under the race detector), and the workers do
// not leak — they are spawned per pass and joined, so the goroutine count
// must return to its baseline after every run.
func TestWorkloadSMPSmoke(t *testing.T) {
	base := runtime.NumGoroutine()
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := smokeConfig(name)
			cfg.NCPU = 4
			res, s, err := Run(name, cfg)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if got := s.K.NCPU(); got != 4 {
				t.Fatalf("NCPU() = %d, want 4", got)
			}
			if res.Ops == 0 {
				t.Fatal("no operations measured")
			}
			if !(res.P50Ns <= res.P95Ns && res.P95Ns <= res.P99Ns && res.P99Ns <= res.MaxNs) {
				t.Fatalf("percentiles out of order: p50=%v p95=%v p99=%v max=%v",
					res.P50Ns, res.P95Ns, res.P99Ns, res.MaxNs)
			}
		})
	}
	// Workers are joined per pass; nothing may linger. Allow the runtime a
	// moment to retire already-finished goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > base {
		t.Fatalf("goroutine leak: %d running, baseline %d", got, base)
	}
}
