package workload

import (
	"runtime"
	"testing"
	"time"
)

// TestWorkloadSMPSmoke runs every scenario on the SMP scheduler at NCPU=4
// and checks three things the deterministic smoke cannot: the scenarios
// complete correctly when scheduling passes fan out to the persistent
// worker goroutines (make verify-smp runs this under the race detector),
// Close retires the workers so the goroutine count returns to its baseline,
// and fork_storm's tail stays in line with its median — the regression
// check for the PR7 work-stealing stampede, whose p99 ran ~19x the median
// when every thief serialized on the same near-empty queue.
func TestWorkloadSMPSmoke(t *testing.T) {
	base := runtime.NumGoroutine()
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := smokeConfig(name)
			cfg.NCPU = 4
			res, s, err := Run(name, cfg)
			if s != nil {
				defer s.Close()
			}
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if got := s.K.NCPU(); got != 4 {
				t.Fatalf("NCPU() = %d, want 4", got)
			}
			if res.Ops == 0 {
				t.Fatal("no operations measured")
			}
			if !(res.P50Ns <= res.P95Ns && res.P95Ns <= res.P99Ns && res.P99Ns <= res.MaxNs) {
				t.Fatalf("percentiles out of order: p50=%v p95=%v p99=%v max=%v",
					res.P50Ns, res.P95Ns, res.P99Ns, res.MaxNs)
			}
			if name == "fork_storm" {
				// The stampede fix (steal backoff via the avail probe plus
				// pass-keyed victim rotation) must keep the tail bounded.
				// The ratio is scale-free, so the check holds under -race
				// and on slow hosts; 15x leaves generous headroom over the
				// ~3-5x observed after the fix while still failing at the
				// ~19x the stampede produced.
				if res.P50Ns > 0 && res.P99Ns > 15*res.P50Ns {
					t.Fatalf("fork_storm tail regression: p99=%v > 15*p50 (p50=%v)",
						res.P99Ns, res.P50Ns)
				}
			}
		})
	}
	// Every system was closed; nothing may linger. Allow the runtime a
	// moment to retire already-finished goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > base {
		t.Fatalf("goroutine leak: %d running, baseline %d", got, base)
	}
}
