package workload

import (
	"bytes"
	"testing"

	"repro"
	"repro/internal/tools"
	"repro/internal/types"
)

// slurp reads one /procx file under root credentials.
func slurp(t *testing.T, s *repro.System, path string) []byte {
	t.Helper()
	b, err := s.Client(types.RootCred()).ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return b
}

// psTable renders the final process table through the batched snapshot.
func psTable(t *testing.T, s *repro.System) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tools.PS(s.Client(types.RootCred()), &buf); err != nil {
		t.Fatalf("ps: %v", err)
	}
	return buf.Bytes()
}

// TestWorkloadDeterminism replays every scenario twice with the same seed
// and demands a bit-identical simulation: the kernel-wide ktrace stream, the
// trace counters page, and the final process table must all match. The
// scenarios advertise seed-replayable runs; the trace is the oracle.
func TestWorkloadDeterminism(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := smokeConfig(name)
			cfg.Seed = 42
			// Bit-identical replay is a deterministic-scheduler contract;
			// pin it so REPRO_NCPU in the environment cannot break it.
			cfg.NCPU = 1
			// Modest capacity: EnableKTraceAll gives every process a ring of
			// this size, and the storm scenarios create hundreds of them.
			cfg.TraceCap = 1 << 16
			run := func() (trace, stats, table []byte) {
				_, s, err := Run(name, cfg)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				return slurp(t, s, "/procx/trace"), slurp(t, s, "/procx/ktrace"), psTable(t, s)
			}
			trace1, stats1, table1 := run()
			trace2, stats2, table2 := run()
			if len(trace1) == 0 {
				t.Fatal("empty trace stream: scenario ran nothing")
			}
			if !bytes.Equal(trace1, trace2) {
				t.Errorf("trace streams differ: %d vs %d bytes", len(trace1), len(trace2))
			}
			if !bytes.Equal(stats1, stats2) {
				t.Errorf("trace counters differ:\n%s\nvs\n%s", stats1, stats2)
			}
			if !bytes.Equal(table1, table2) {
				t.Errorf("final process tables differ:\n%s\nvs\n%s", table1, table2)
			}
		})
	}
}

// TestWorkloadSeedSensitivity is the converse check: two different seeds
// must not replay the same simulation, or the "seedable" claim is vacuous.
// fork_storm picks family sizes and credentials from the stream, so its
// trace diverges immediately.
func TestWorkloadSeedSensitivity(t *testing.T) {
	run := func(seed int64) []byte {
		cfg := smokeConfig("fork_storm")
		cfg.Seed = seed
		cfg.TraceCap = 1 << 16
		_, s, err := Run("fork_storm", cfg)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return slurp(t, s, "/procx/trace")
	}
	if bytes.Equal(run(1), run(2)) {
		t.Fatal("different seeds replayed an identical trace stream")
	}
}
