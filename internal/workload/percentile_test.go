package workload

import (
	"testing"
	"time"
)

// TestPercentileExact pins the nearest-rank index arithmetic at small
// sample counts, where an off-by-one in the rounding is the whole answer:
// rank = round(p*n) - 1, clamped to the slice. Each case is hand-computed
// from a known distribution.
func TestPercentileExact(t *testing.T) {
	cases := []struct {
		name   string
		sorted []int64
		p      float64
		want   float64
	}{
		// n=1: every percentile is the sample.
		{"n1-p50", []int64{7}, 0.50, 7},
		{"n1-p99", []int64{7}, 0.99, 7},
		// n=2: round(0.5*2)=1 → first; round(0.95*2)=2 → second.
		{"n2-p50", []int64{10, 20}, 0.50, 10},
		{"n2-p95", []int64{10, 20}, 0.95, 20},
		// n=4 over 10..40: round(2.0)=2 → 20; round(3.8)=4 → 40.
		{"n4-p50", []int64{10, 20, 30, 40}, 0.50, 20},
		{"n4-p95", []int64{10, 20, 30, 40}, 0.95, 40},
		{"n4-p99", []int64{10, 20, 30, 40}, 0.99, 40},
		// n=5: round(2.5)=3 → the true median 30.
		{"n5-p50", []int64{10, 20, 30, 40, 50}, 0.50, 30},
		// n=10: round(5.0)=5 → 50; round(9.5)=10 → 100; round(9.9)=10.
		{"n10-p50", []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}, 0.50, 50},
		{"n10-p95", []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}, 0.95, 100},
		{"n10-p99", []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}, 0.99, 100},
		// n=20: round(19.0)=19 → 19th value; p99 → 20th.
		{"n20-p95", ramp(20), 0.95, 19},
		{"n20-p99", ramp(20), 0.99, 20},
		// n=100 over 1..100: the ranks are the percentiles themselves.
		{"n100-p50", ramp(100), 0.50, 50},
		{"n100-p95", ramp(100), 0.95, 95},
		{"n100-p99", ramp(100), 0.99, 99},
		// Empty distribution reports zero rather than faulting.
		{"n0", nil, 0.50, 0},
	}
	for _, tc := range cases {
		if got := percentile(tc.sorted, tc.p); got != tc.want {
			t.Errorf("%s: percentile(%v, %v) = %v, want %v",
				tc.name, tc.sorted, tc.p, got, tc.want)
		}
	}
}

// ramp returns [1, 2, ..., n].
func ramp(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

// TestHistResult pins the full Result fill from unsorted samples: the sort,
// the exact percentile picks, max, mean, and the ops/sec rate.
func TestHistResult(t *testing.T) {
	h := &hist{}
	for _, v := range []int64{40, 10, 30, 20} { // deliberately unsorted
		h.record(v)
	}
	res := h.result("t", 2*time.Second)
	if res.Ops != 4 {
		t.Fatalf("Ops = %d, want 4", res.Ops)
	}
	if res.P50Ns != 20 || res.P95Ns != 40 || res.P99Ns != 40 || res.MaxNs != 40 {
		t.Fatalf("p50/p95/p99/max = %v/%v/%v/%v, want 20/40/40/40",
			res.P50Ns, res.P95Ns, res.P99Ns, res.MaxNs)
	}
	if res.MeanNs != 25 {
		t.Fatalf("MeanNs = %v, want 25", res.MeanNs)
	}
	if res.OpsPerSec != 2 {
		t.Fatalf("OpsPerSec = %v, want 2", res.OpsPerSec)
	}
}
