package workload

import (
	"testing"
	"time"
)

// smokeConfig shrinks each scenario to a few seconds of work while still
// exercising its full machinery: spawn, measure, drain.
func smokeConfig(name string) Config {
	cfg := Config{Seed: 7}
	switch name {
	case "fork_storm":
		cfg.Ops = 6
	case "syscall_mill":
		cfg.Procs = 4
		cfg.Ops = 60
	case "pipe_pipeline":
		cfg.Ops = 4
	case "debugger_fleet":
		cfg.Procs = 3
		cfg.Ops = 10
	case "proc_scan":
		cfg.Procs = 30
		cfg.Ops = 4
	case "fs_churn":
		cfg.Procs = 3
		cfg.Ops = 3
	}
	return cfg
}

// TestWorkloadSmoke runs every registered scenario at smoke size and checks
// the report is well-formed: operations happened, the percentiles are
// ordered, and a rate was computed.
func TestWorkloadSmoke(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res, s, err := Run(name, smokeConfig(name))
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if s == nil {
				t.Fatal("no system returned")
			}
			if res.Scenario != name {
				t.Fatalf("scenario name %q, want %q", res.Scenario, name)
			}
			if res.Ops == 0 {
				t.Fatal("no operations measured")
			}
			if res.OpsPerSec <= 0 {
				t.Fatalf("ops/s = %v, want > 0", res.OpsPerSec)
			}
			if res.MeanNs <= 0 {
				t.Fatalf("mean = %v ns, want > 0", res.MeanNs)
			}
			if !(res.P50Ns <= res.P95Ns && res.P95Ns <= res.P99Ns && res.P99Ns <= res.MaxNs) {
				t.Fatalf("percentiles out of order: p50=%v p95=%v p99=%v max=%v",
					res.P50Ns, res.P95Ns, res.P99Ns, res.MaxNs)
			}
		})
	}
}

// TestWorkloadProcScanLegacy exercises the per-pid sweep variant of the
// /proc scan so both code paths stay alive under the smoke target.
func TestWorkloadProcScanLegacy(t *testing.T) {
	cfg := smokeConfig("proc_scan")
	cfg.Legacy = true
	res, _, err := Run("proc_scan", cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Ops != cfg.Ops {
		t.Fatalf("ops = %d, want %d", res.Ops, cfg.Ops)
	}
}

// TestWorkloadUnknownScenario checks the error path names the registry.
func TestWorkloadUnknownScenario(t *testing.T) {
	if _, _, err := Run("no_such_scenario", Config{Seed: 1}); err == nil {
		t.Fatal("want error for unknown scenario")
	}
}

// TestPercentiles pins the nearest-rank arithmetic on a known distribution.
func TestPercentiles(t *testing.T) {
	h := &hist{}
	for i := int64(1); i <= 100; i++ {
		h.record(i)
	}
	res := h.result("pin", time.Second)
	if res.Ops != 100 {
		t.Fatalf("ops = %d, want 100", res.Ops)
	}
	for _, c := range []struct {
		name string
		got  float64
		want float64
	}{
		{"p50", res.P50Ns, 50},
		{"p95", res.P95Ns, 95},
		{"p99", res.P99Ns, 99},
		{"max", res.MaxNs, 100},
		{"mean", res.MeanNs, 50.5},
		{"ops/s", res.OpsPerSec, 100},
	} {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	empty := (&hist{}).result("empty", time.Second)
	if empty.Ops != 0 || empty.P99Ns != 0 {
		t.Fatalf("empty hist: %+v", empty)
	}
}
