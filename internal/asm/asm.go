// Package asm is a two-pass assembler for the vcpu instruction set, emitting
// xout executable images. It exists so that the repository's tests, examples
// and benchmarks can express realistic user programs — the programs that
// /proc controls — as readable source rather than hand-encoded words.
//
// Syntax overview:
//
//	; comment             # comment
//	.text                 switch to the text section (default)
//	.data                 switch to the data section
//	.bss                  switch to the bss section (only .space/.align)
//	.entry label          set the entry point (default: start of text)
//	.lib "name"           request a shared library mapping at exec time
//	.equ name, expr       define an assembly-time constant
//	.word e1, e2, ...     emit 32-bit words (no auto-alignment; see .align)
//	.byte e1, e2, ...     emit bytes
//	.ascii "str"          emit string bytes
//	.asciz "str"          emit string bytes plus a NUL
//	.space n              reserve n zero bytes
//	.align n              align the location counter to n bytes
//	label:                define a label (all labels become symbols)
//	op operands           one machine instruction
//	li  rX, expr          pseudo: load 32-bit constant (movi+movhi)
//	la  rX, label         pseudo: load address (movi+movhi)
//
// Operands: registers r0..r7; immediates are decimal, 0x-hex, 'c' character
// constants, or symbol±offset expressions. Memory operands are [rB], [rB+n],
// [rB-n]. Jump/call targets are labels or absolute expressions; the
// assembler converts them to pc-relative offsets.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/vcpu"
	"repro/internal/xout"
)

// Options configures assembly.
type Options struct {
	// Predef seeds the symbol table, e.g. with SYS_* system call numbers
	// and SIG* signal numbers exported by the kernel.
	Predef map[string]uint32
}

// Error is an assembly error tagged with a source line.
type Error struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type section int

const (
	secText section = iota
	secData
	secBSS
)

type item struct {
	line    int
	sec     section
	off     uint32 // offset within section
	op      int    // >= 0: instruction; -1: data directive
	args    []string
	pseudo  string // "li", "la" or ""
	dir     string // data directive name
	raw     []byte // pre-encoded bytes for .ascii etc.
	exprs   []string
	size    uint32
	isAlign bool
	alignTo uint32
}

type assembler struct {
	opts     Options
	syms     map[string]uint32 // resolved symbol values (addresses/constants)
	symSec   map[string]section
	symOff   map[string]uint32
	equs     map[string]string // unresolved .equ expressions
	items    []item
	lc       [3]uint32 // location counters per section
	entry    string
	entrySet bool
	libs     []string
	labels   []string // definition order, for the symbol table
}

// Assemble assembles source into an executable image.
func Assemble(src string, opts *Options) (*xout.File, error) {
	a := &assembler{
		syms:   make(map[string]uint32),
		symSec: make(map[string]section),
		symOff: make(map[string]uint32),
		equs:   make(map[string]string),
	}
	if opts != nil {
		a.opts = *opts
	}
	for k, v := range a.opts.Predef {
		a.syms[k] = v
	}
	if err := a.pass1(src); err != nil {
		return nil, err
	}
	return a.pass2()
}

// MustAssemble assembles or panics; for tests and examples with fixed source.
func MustAssemble(src string, opts *Options) *xout.File {
	f, err := Assemble(src, opts)
	if err != nil {
		panic(err)
	}
	return f
}

func (a *assembler) errf(line int, format string, args ...interface{}) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

func splitComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inStr = !inStr
		case ';', '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

func (a *assembler) pass1(src string) error {
	sec := secText
	for ln, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(splitComment(raw))
		lineNo := ln + 1
		for line != "" {
			// Labels (possibly several on one line).
			if i := strings.Index(line, ":"); i >= 0 && isIdent(strings.TrimSpace(line[:i])) {
				name := strings.TrimSpace(line[:i])
				if _, dup := a.symSec[name]; dup {
					return a.errf(lineNo, "duplicate label %q", name)
				}
				if _, dup := a.syms[name]; dup {
					return a.errf(lineNo, "label %q collides with a predefined symbol", name)
				}
				a.symSec[name] = sec
				a.symOff[name] = a.lc[sec]
				a.labels = append(a.labels, name)
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		mnemonic := strings.ToLower(strings.TrimSpace(fields[0]))
		rest := ""
		if len(fields) > 1 {
			rest = strings.TrimSpace(fields[1])
		}
		switch {
		case mnemonic == ".text":
			sec = secText
		case mnemonic == ".data":
			sec = secData
		case mnemonic == ".bss":
			sec = secBSS
		case mnemonic == ".entry":
			a.entry = rest
			a.entrySet = true
		case mnemonic == ".lib":
			name, err := parseString(rest)
			if err != nil {
				return a.errf(lineNo, "bad .lib: %v", err)
			}
			a.libs = append(a.libs, name)
		case mnemonic == ".equ":
			parts := strings.SplitN(rest, ",", 2)
			if len(parts) != 2 || !isIdent(strings.TrimSpace(parts[0])) {
				return a.errf(lineNo, "bad .equ")
			}
			a.equs[strings.TrimSpace(parts[0])] = strings.TrimSpace(parts[1])
		case mnemonic == ".word", mnemonic == ".byte":
			if sec == secBSS {
				return a.errf(lineNo, "%s not allowed in .bss", mnemonic)
			}
			exprs := splitArgs(rest)
			unit := uint32(4)
			if mnemonic == ".byte" {
				unit = 1
			}
			// .word does not auto-align: a label immediately before it must
			// name the datum. Use .align 4 explicitly when needed; word
			// loads of unaligned data fault, like the hardware says.
			it := item{line: lineNo, sec: sec, off: a.lc[sec], op: -1, dir: mnemonic, exprs: exprs}
			it.size = unit * uint32(len(exprs))
			a.items = append(a.items, it)
			a.lc[sec] += it.size
		case mnemonic == ".ascii", mnemonic == ".asciz":
			if sec == secBSS {
				return a.errf(lineNo, "%s not allowed in .bss", mnemonic)
			}
			s, err := parseString(rest)
			if err != nil {
				return a.errf(lineNo, "bad %s: %v", mnemonic, err)
			}
			b := []byte(s)
			if mnemonic == ".asciz" {
				b = append(b, 0)
			}
			it := item{line: lineNo, sec: sec, off: a.lc[sec], op: -1, dir: mnemonic, raw: b, size: uint32(len(b))}
			a.items = append(a.items, it)
			a.lc[sec] += it.size
		case mnemonic == ".space":
			n, err := strconv.ParseUint(rest, 0, 32)
			if err != nil {
				return a.errf(lineNo, "bad .space %q", rest)
			}
			it := item{line: lineNo, sec: sec, off: a.lc[sec], op: -1, dir: ".space", size: uint32(n)}
			a.items = append(a.items, it)
			a.lc[sec] += it.size
		case mnemonic == ".align":
			n, err := strconv.ParseUint(rest, 0, 32)
			if err != nil || n == 0 || n&(n-1) != 0 {
				return a.errf(lineNo, "bad .align %q", rest)
			}
			old := a.lc[sec]
			a.lc[sec] = (old + uint32(n) - 1) &^ (uint32(n) - 1)
			it := item{line: lineNo, sec: sec, off: old, op: -1, dir: ".align", size: a.lc[sec] - old, isAlign: true, alignTo: uint32(n)}
			a.items = append(a.items, it)
		case mnemonic == ".global":
			// All labels are exported; accepted for familiarity.
		case mnemonic == "li", mnemonic == "la":
			if sec != secText {
				return a.errf(lineNo, "instruction outside .text")
			}
			it := item{line: lineNo, sec: sec, off: a.lc[sec], op: -2, pseudo: mnemonic, args: splitArgs(rest), size: 8}
			a.items = append(a.items, it)
			a.lc[sec] += 8
		default:
			op := vcpu.OpByName(mnemonic)
			if op < 0 {
				return a.errf(lineNo, "unknown mnemonic %q", mnemonic)
			}
			if sec != secText {
				return a.errf(lineNo, "instruction outside .text")
			}
			it := item{line: lineNo, sec: sec, off: a.lc[sec], op: op, args: splitArgs(rest), size: 4}
			a.items = append(a.items, it)
			a.lc[sec] += 4
		}
	}
	return nil
}

// secBase returns the load address of each section.
func (a *assembler) secBase(textLen, dataLen uint32) [3]uint32 {
	f := xout.File{Text: make([]byte, textLen), Data: make([]byte, dataLen)}
	return [3]uint32{xout.TextBase, f.DataBase(), f.BSSBase()}
}

func (a *assembler) pass2() (*xout.File, error) {
	bases := a.secBase(a.lc[secText], a.lc[secData])
	// Resolve label addresses.
	for name, sec := range a.symSec {
		a.syms[name] = bases[sec] + a.symOff[name]
	}
	// Resolve .equ constants (may reference labels and other equs).
	for i := 0; i < len(a.equs)+1; i++ {
		progress := false
		for name, expr := range a.equs {
			v, err := a.eval(expr)
			if err == nil {
				a.syms[name] = v
				delete(a.equs, name)
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	for name := range a.equs {
		return nil, fmt.Errorf("asm: unresolvable .equ %q", name)
	}

	text := make([]byte, a.lc[secText])
	data := make([]byte, a.lc[secData])
	bufFor := func(sec section) []byte {
		if sec == secText {
			return text
		}
		return data
	}
	for _, it := range a.items {
		switch {
		case it.op >= 0:
			w, err := a.encodeInstr(it, bases)
			if err != nil {
				return nil, err
			}
			putWord(text, it.off, w)
		case it.op == -2: // li / la
			if len(it.args) != 2 {
				return nil, a.errf(it.line, "%s needs 2 operands", it.pseudo)
			}
			ra, err := parseReg(it.args[0])
			if err != nil {
				return nil, a.errf(it.line, "%v", err)
			}
			v, err := a.eval(it.args[1])
			if err != nil {
				return nil, a.errf(it.line, "%v", err)
			}
			putWord(text, it.off, vcpu.Encode(vcpu.OpMOVI, ra, 0, uint16(v)))
			putWord(text, it.off+4, vcpu.Encode(vcpu.OpMOVHI, ra, 0, uint16(v>>16)))
		case it.dir == ".word":
			for i, e := range it.exprs {
				v, err := a.eval(e)
				if err != nil {
					return nil, a.errf(it.line, "%v", err)
				}
				putWord(bufFor(it.sec), it.off+uint32(4*i), v)
			}
		case it.dir == ".byte":
			for i, e := range it.exprs {
				v, err := a.eval(e)
				if err != nil {
					return nil, a.errf(it.line, "%v", err)
				}
				bufFor(it.sec)[it.off+uint32(i)] = byte(v)
			}
		case it.raw != nil:
			copy(bufFor(it.sec)[it.off:], it.raw)
		}
	}

	f := &xout.File{Text: text, Data: data, BSSSize: a.lc[secBSS], Libs: a.libs}
	if a.entrySet {
		v, err := a.eval(a.entry)
		if err != nil {
			return nil, fmt.Errorf("asm: bad .entry: %v", err)
		}
		f.Entry = v
	} else {
		f.Entry = xout.TextBase
	}
	for _, name := range a.labels {
		f.Syms = append(f.Syms, xout.Sym{Name: name, Value: a.syms[name]})
	}
	return f, nil
}

func putWord(buf []byte, off, v uint32) {
	buf[off] = byte(v >> 24)
	buf[off+1] = byte(v >> 16)
	buf[off+2] = byte(v >> 8)
	buf[off+3] = byte(v)
}

func (a *assembler) encodeInstr(it item, bases [3]uint32) (uint32, error) {
	format := vcpu.OpFormat(it.op)
	addr := bases[secText] + it.off
	want := map[string]int{"": 0, "a": 1, "b": 1, "ab": 2, "ai": 2, "i": 1, "am": 2}[format]
	if len(it.args) != want {
		return 0, a.errf(it.line, "%s takes %d operand(s), got %d", vcpu.OpName(it.op), want, len(it.args))
	}
	var ra, rb int
	var imm uint16
	var err error
	switch format {
	case "":
	case "a":
		if ra, err = parseReg(it.args[0]); err != nil {
			return 0, a.errf(it.line, "%v", err)
		}
	case "b":
		if rb, err = parseReg(it.args[0]); err != nil {
			return 0, a.errf(it.line, "%v", err)
		}
	case "ab":
		if ra, err = parseReg(it.args[0]); err != nil {
			return 0, a.errf(it.line, "%v", err)
		}
		if rb, err = parseReg(it.args[1]); err != nil {
			return 0, a.errf(it.line, "%v", err)
		}
	case "ai":
		if ra, err = parseReg(it.args[0]); err != nil {
			return 0, a.errf(it.line, "%v", err)
		}
		v, err := a.eval(it.args[1])
		if err != nil {
			return 0, a.errf(it.line, "%v", err)
		}
		if it.op == vcpu.OpMOVI || it.op == vcpu.OpMOVHI || it.op == vcpu.OpSHL || it.op == vcpu.OpSHR {
			// These zero-extend: a negative immediate would silently load
			// the wrong value, so require li for anything outside 0..FFFF.
			if v > 0xFFFF {
				return 0, a.errf(it.line, "immediate %#x out of unsigned 16-bit range (use li)", v)
			}
		} else if int32(v) > 32767 || int32(v) < -32768 {
			return 0, a.errf(it.line, "immediate %d out of signed 16-bit range", int32(v))
		}
		imm = uint16(v)
	case "i":
		v, err := a.eval(it.args[0])
		if err != nil {
			return 0, a.errf(it.line, "%v", err)
		}
		rel := int64(v) - int64(addr) - vcpu.InstrSize
		if rel > 32767 || rel < -32768 {
			return 0, a.errf(it.line, "branch target %#x out of range", v)
		}
		imm = uint16(int16(rel))
	case "am":
		if ra, err = parseReg(it.args[0]); err != nil {
			return 0, a.errf(it.line, "%v", err)
		}
		rb, imm, err = a.parseMem(it.args[1])
		if err != nil {
			return 0, a.errf(it.line, "%v", err)
		}
	}
	return vcpu.Encode(it.op, ra, rb, imm), nil
}

func (a *assembler) parseMem(s string) (rb int, imm uint16, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	// [rB], [rB+expr], [rB-expr]
	sep := -1
	for i := 1; i < len(inner); i++ {
		if inner[i] == '+' || inner[i] == '-' {
			sep = i
			break
		}
	}
	regPart, offPart := inner, ""
	if sep >= 0 {
		regPart = strings.TrimSpace(inner[:sep])
		offPart = strings.TrimSpace(inner[sep:])
	}
	rb, err = parseReg(regPart)
	if err != nil {
		return 0, 0, err
	}
	if offPart != "" {
		neg := offPart[0] == '-'
		v, err := a.eval(strings.TrimSpace(offPart[1:]))
		if err != nil {
			return 0, 0, err
		}
		iv := int64(v)
		if neg {
			iv = -iv
		}
		if iv > 32767 || iv < -32768 {
			return 0, 0, fmt.Errorf("offset %d out of range", iv)
		}
		imm = uint16(int16(iv))
	}
	return rb, imm, nil
}

func parseReg(s string) (int, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if len(s) == 2 && s[0] == 'r' && s[1] >= '0' && s[1] <= '7' {
		return int(s[1] - '0'), nil
	}
	return 0, fmt.Errorf("bad register %q", s)
}

// eval evaluates an expression: number | 'c' | symbol, optionally ±number.
func (a *assembler) eval(s string) (uint32, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty expression")
	}
	// Character constant.
	if len(s) >= 3 && s[0] == '\'' {
		body := s[1:]
		end := strings.LastIndexByte(body, '\'')
		if end < 0 {
			return 0, fmt.Errorf("bad character constant %s", s)
		}
		ch, err := unescapeChar(body[:end])
		if err != nil {
			return 0, err
		}
		return uint32(ch), nil
	}
	// symbol±offset
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			base, err := a.eval(s[:i])
			if err != nil {
				return 0, err
			}
			off, err := a.eval(s[i+1:])
			if err != nil {
				return 0, err
			}
			if s[i] == '+' {
				return base + off, nil
			}
			return base - off, nil
		}
	}
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return uint32(v), nil
	}
	if v, ok := a.syms[s]; ok {
		return v, nil
	}
	// Note: .equ expressions are resolved iteratively in pass2, so an
	// unresolved equ here is simply "not yet defined" — or circular.
	return 0, fmt.Errorf("undefined symbol %q", s)
}

func unescapeChar(s string) (byte, error) {
	switch s {
	case "\\n":
		return '\n', nil
	case "\\t":
		return '\t', nil
	case "\\0":
		return 0, nil
	case "\\\\":
		return '\\', nil
	case "\\'":
		return '\'', nil
	}
	if len(s) == 1 {
		return s[0], nil
	}
	return 0, fmt.Errorf("bad character constant %q", s)
}

func parseString(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("expected quoted string, got %q", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		if body[i] == '\\' && i+1 < len(body) {
			i++
			switch body[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '0':
				b.WriteByte(0)
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			default:
				return "", fmt.Errorf("bad escape \\%c", body[i])
			}
			continue
		}
		b.WriteByte(body[i])
	}
	return b.String(), nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == '.' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 && !inStr {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}
