package asm

import (
	"repro/internal/mem"
	"repro/internal/vcpu"
	"repro/internal/xout"
)

// newLoadedCPU maps an image per the xout layout conventions and returns a
// CPU positioned at the entry point. It is a miniature of the kernel's exec,
// used here so the assembler tests can run programs without the kernel.
func newLoadedCPU(f *xout.File) *vcpu.CPU {
	as := mem.NewAS(4096)
	obj := &mem.ByteObject{Name: "a.out", Data: append(append([]byte{}, f.Text...), f.Data...)}
	if len(f.Text) > 0 {
		if _, err := as.Map(mem.MapArgs{Base: xout.TextBase, Len: uint32(len(f.Text)),
			Prot: mem.ProtRX, Obj: obj, Kind: mem.KindText, Fixed: true}); err != nil {
			return nil
		}
	}
	if len(f.Data) > 0 {
		if _, err := as.Map(mem.MapArgs{Base: f.DataBase(), Len: uint32(len(f.Data)),
			Prot: mem.ProtRW, Obj: obj, Off: int64(len(f.Text)), Kind: mem.KindData, Fixed: true}); err != nil {
			return nil
		}
	}
	if f.BSSSize > 0 {
		if _, err := as.Map(mem.MapArgs{Base: f.BSSBase(), Len: f.BSSSize,
			Prot: mem.ProtRW, Kind: mem.KindBSS, Fixed: true}); err != nil {
			return nil
		}
	}
	stk, err := as.Map(mem.MapArgs{Base: xout.StackTop - xout.StackInit, Len: xout.StackInit,
		Prot: mem.ProtRW, Kind: mem.KindStack, Fixed: true})
	if err != nil {
		return nil
	}
	as.SetStack(stk, xout.StackLimit)
	cpu := &vcpu.CPU{AS: as}
	cpu.Regs.PC = f.Entry
	cpu.Regs.SP = xout.StackTop
	return cpu
}
