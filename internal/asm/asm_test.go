package asm

import (
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/vcpu"
	"repro/internal/xout"
)

func word(f *xout.File, i int) uint32 {
	return binary.BigEndian.Uint32(f.Text[4*i:])
}

func TestAssembleBasics(t *testing.T) {
	f, err := Assemble(`
; a tiny program
start:	movi r1, 10
	addi r1, -1
	cmpi r1, 0
	jne start+4
	syscall
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Text) != 5*4 {
		t.Fatalf("text len = %d", len(f.Text))
	}
	op, ra, _, imm := vcpu.Decode(word(f, 0))
	if op != vcpu.OpMOVI || ra != 1 || imm != 10 {
		t.Fatalf("first instr wrong: %#x", word(f, 0))
	}
	op, _, _, imm = vcpu.Decode(word(f, 3))
	if op != vcpu.OpJNE || int16(imm) != -12 {
		t.Fatalf("branch encoding wrong: imm=%d", int16(imm))
	}
	if f.Entry != xout.TextBase {
		t.Fatalf("entry = %#x", f.Entry)
	}
	if v, ok := f.Lookup("start"); !ok || v != xout.TextBase {
		t.Fatal("symbol start missing")
	}
}

func TestDataSection(t *testing.T) {
	f, err := Assemble(`
.text
	nop
.data
msg:	.asciz "hi\n"
val:	.word 42, 0x10
b:	.byte 1, 2, 3
.bss
buf:	.space 100
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(f.Data[:4]) != "hi\n\x00" {
		t.Fatalf("data = %q", f.Data[:4])
	}
	// The asciz is 4 bytes, so the .word lands aligned here; .word does
	// not auto-align (use .align 4 when needed).
	if binary.BigEndian.Uint32(f.Data[4:]) != 42 {
		t.Fatalf("val = %#x", f.Data[4:8])
	}
	if f.BSSSize != 100 {
		t.Fatalf("bss = %d", f.BSSSize)
	}
	msg, _ := f.Lookup("msg")
	if msg != f.DataBase() {
		t.Fatalf("msg addr = %#x, want %#x", msg, f.DataBase())
	}
	buf, _ := f.Lookup("buf")
	if buf != f.BSSBase() {
		t.Fatalf("buf addr = %#x, want %#x", buf, f.BSSBase())
	}
}

func TestPseudoLiLa(t *testing.T) {
	f, err := Assemble(`
	li r2, 0x12345678
	la r3, msg
.data
msg:	.ascii "x"
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	op, ra, _, imm := vcpu.Decode(word(f, 0))
	if op != vcpu.OpMOVI || ra != 2 || imm != 0x5678 {
		t.Fatal("li low half wrong")
	}
	op, _, _, imm = vcpu.Decode(word(f, 1))
	if op != vcpu.OpMOVHI || imm != 0x1234 {
		t.Fatal("li high half wrong")
	}
	_, _, _, lo := vcpu.Decode(word(f, 2))
	_, _, _, hi := vcpu.Decode(word(f, 3))
	addr := uint32(hi)<<16 | uint32(lo)
	if want, _ := f.Lookup("msg"); addr != want {
		t.Fatalf("la resolved %#x, want %#x", addr, want)
	}
}

func TestMemoryOperands(t *testing.T) {
	f, err := Assemble(`
	ld r1, [r2]
	ld r1, [r2+8]
	st r3, [r4-4]
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, rb, imm := vcpu.Decode(word(f, 0))
	if rb != 2 || imm != 0 {
		t.Fatal("[r2] wrong")
	}
	_, _, _, imm = vcpu.Decode(word(f, 1))
	if imm != 8 {
		t.Fatal("[r2+8] wrong")
	}
	op, ra, rb, imm := vcpu.Decode(word(f, 2))
	if op != vcpu.OpST || ra != 3 || rb != 4 || int16(imm) != -4 {
		t.Fatal("[r4-4] wrong")
	}
}

func TestEquAndPredef(t *testing.T) {
	f, err := Assemble(`
.equ EXIT, 1
	movi r0, EXIT
	movi r1, SYS_write
	syscall
`, &Options{Predef: map[string]uint32{"SYS_write": 4}})
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, imm := vcpu.Decode(word(f, 0))
	if imm != 1 {
		t.Fatal("EXIT wrong")
	}
	_, _, _, imm = vcpu.Decode(word(f, 1))
	if imm != 4 {
		t.Fatal("SYS_write wrong")
	}
}

func TestEntryAndLibs(t *testing.T) {
	f, err := Assemble(`
.lib "libc"
.entry main
	nop
main:	nop
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Entry != xout.TextBase+4 {
		t.Fatalf("entry = %#x", f.Entry)
	}
	if len(f.Libs) != 1 || f.Libs[0] != "libc" {
		t.Fatal("libs wrong")
	}
}

func TestCharConstantsAndComments(t *testing.T) {
	f, err := Assemble(`
	movi r1, 'A'    # trailing comment
	movi r2, '\n'   ; other comment style
.data
s:	.ascii "semi;colon#hash"
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, imm := vcpu.Decode(word(f, 0))
	if imm != 'A' {
		t.Fatal("char constant wrong")
	}
	_, _, _, imm = vcpu.Decode(word(f, 1))
	if imm != '\n' {
		t.Fatal("escaped char wrong")
	}
	if !strings.Contains(string(f.Data), "semi;colon#hash") {
		t.Fatalf("string with comment chars mangled: %q", f.Data)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",         // unknown mnemonic
		"movi r9, 1",           // bad register
		"movi r1",              // missing operand
		"ld r1, r2",            // bad memory operand
		"jmp faraway",          // undefined symbol
		".data\n nop",          // instruction outside .text
		"dup: nop\ndup: nop",   // duplicate label
		".equ a, b\n.equ b, a", // circular equ
		"movi r1, 0x falsy",    // junk immediate
		`.lib libc`,            // unquoted string
		".space zork",          // bad space
		".align 3",             // non-power-of-two align
	}
	for _, src := range cases {
		if _, err := Assemble(src, nil); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus\n", nil)
	aerr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if aerr.Line != 3 {
		t.Fatalf("line = %d, want 3", aerr.Line)
	}
	if !strings.Contains(aerr.Error(), "line 3") {
		t.Fatal("message should name the line")
	}
}

func TestBranchOutOfRange(t *testing.T) {
	var b strings.Builder
	b.WriteString("start: nop\n")
	for i := 0; i < 10000; i++ {
		b.WriteString("nop\n")
	}
	b.WriteString("jmp start\n")
	if _, err := Assemble(b.String(), nil); err == nil {
		t.Fatal("branch beyond ±32K should fail")
	}
}

// Assemble→Disasm round trip for representative instructions.
func TestDisasmRoundTrip(t *testing.T) {
	src := []string{
		"movi r1, 0x10",
		"add r1, r2",
		"ld r3, [r4+8]",
		"push r5",
		"syscall",
		"bpt",
		"ret",
	}
	f, err := Assemble(strings.Join(src, "\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range src {
		got := vcpu.Disasm(word(f, i), xout.TextBase+uint32(4*i))
		if got != want {
			t.Errorf("disasm %d = %q, want %q", i, got, want)
		}
	}
}

// An assembled program must actually run on the CPU.
func TestAssembledProgramExecutes(t *testing.T) {
	f := MustAssemble(`
.entry main
main:	movi r1, 0
	movi r2, 5
loop:	add r1, r2
	addi r2, -1
	cmpi r2, 0
	jne loop
	bpt
`, nil)
	// Load by hand into an AS at the xout layout.
	cpu := loadForTest(t, f)
	for i := 0; ; i++ {
		tr := cpu.Step()
		if tr.Kind == vcpu.TrapFault {
			if cpu.Regs.R[1] != 15 {
				t.Fatalf("r1 = %d, want 15", cpu.Regs.R[1])
			}
			return
		}
		if i > 1000 {
			t.Fatal("program did not terminate")
		}
	}
}

func loadForTest(t *testing.T, f *xout.File) *vcpu.CPU {
	t.Helper()
	cpu := newLoadedCPU(f)
	if cpu == nil {
		t.Fatal("load failed")
	}
	return cpu
}
