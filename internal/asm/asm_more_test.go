package asm

import (
	"encoding/binary"
	"testing"

	"repro/internal/vcpu"
)

func TestMoviRejectsNegative(t *testing.T) {
	// movi zero-extends, so negative immediates would load the wrong
	// value; the assembler forces li for them.
	if _, err := Assemble("movi r1, -1", nil); err == nil {
		t.Fatal("negative movi should be rejected")
	}
	if _, err := Assemble("movi r1, 0x10000", nil); err == nil {
		t.Fatal("oversized movi should be rejected")
	}
	// li accepts the full signed range.
	f, err := Assemble("li r1, -1", nil)
	if err != nil {
		t.Fatal(err)
	}
	lo := binary.BigEndian.Uint32(f.Text[0:])
	hi := binary.BigEndian.Uint32(f.Text[4:])
	_, _, _, immLo := vcpu.Decode(lo)
	_, _, _, immHi := vcpu.Decode(hi)
	if immLo != 0xFFFF || immHi != 0xFFFF {
		t.Fatalf("li -1 encoded %#x %#x", immLo, immHi)
	}
}

func TestAddiSignedRange(t *testing.T) {
	if _, err := Assemble("addi r1, -32768", nil); err != nil {
		t.Fatalf("addi min: %v", err)
	}
	if _, err := Assemble("addi r1, 32767", nil); err != nil {
		t.Fatalf("addi max: %v", err)
	}
	if _, err := Assemble("addi r1, 32768", nil); err == nil {
		t.Fatal("addi overflow should be rejected")
	}
	if _, err := Assemble("addi r1, -32769", nil); err == nil {
		t.Fatal("addi underflow should be rejected")
	}
}

func TestSymbolArithmetic(t *testing.T) {
	f, err := Assemble(`
start:	nop
	nop
	jmp start+4
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := binary.BigEndian.Uint32(f.Text[8:])
	_, _, _, imm := vcpu.Decode(w)
	// target = start+4 = text+4; rel = 4 - (8+4) = -8
	if int16(imm) != -8 {
		t.Fatalf("rel = %d", int16(imm))
	}
}

func TestMultipleLabelsOneLine(t *testing.T) {
	f, err := Assemble("a: b: nop", nil)
	if err != nil {
		t.Fatal(err)
	}
	va, _ := f.Lookup("a")
	vb, _ := f.Lookup("b")
	if va != vb {
		t.Fatal("stacked labels should share an address")
	}
}

func TestBssSpaceAndAlign(t *testing.T) {
	f, err := Assemble(`
	nop
.data
x:	.byte 1
.align 4
y:	.word 2
.bss
z:	.space 10
.align 8
w:	.space 1
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := f.Lookup("x")
	y, _ := f.Lookup("y")
	if y != x+4 {
		t.Fatalf("align in data: x=%#x y=%#x", x, y)
	}
	z, _ := f.Lookup("z")
	w, _ := f.Lookup("w")
	if w != z+16 {
		t.Fatalf("align in bss: z=%#x w=%#x", z, w)
	}
	if f.BSSSize != 17 {
		t.Fatalf("bss size = %d", f.BSSSize)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble should panic on bad source")
		}
	}()
	MustAssemble("junk here", nil)
}

func TestEquForwardReference(t *testing.T) {
	f, err := Assemble(`
.equ TOTAL, BASE+4
.equ BASE, 0x10
	movi r1, TOTAL
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, imm := vcpu.Decode(binary.BigEndian.Uint32(f.Text))
	if imm != 0x14 {
		t.Fatalf("TOTAL = %#x", imm)
	}
}
