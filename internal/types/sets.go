// Package types defines the fundamental SVR4 process-model types shared by
// every subsystem in the reproduction: the POSIX signal set type sigset_t and
// its analogues for machine faults (fltset_t) and system calls (sysset_t),
// together with the SVR4 signal and fault name spaces.
//
// As in the paper, signals, faults and system calls are enumerated from 1;
// there is no fault number 0 or system call number 0. The implementation
// provides for up to 128 signals, 128 faults and 512 system calls.
package types

import (
	"fmt"
	"strings"
)

// Capacity limits, as documented in the paper for the SVR4 implementation.
const (
	MaxSig     = 128 // maximum signal number
	MaxFault   = 128 // maximum machine-fault number
	MaxSyscall = 512 // maximum system-call number
)

// SigSet is the POSIX signal set type (sigset_t): a bitset of the signals
// 1..MaxSig. The zero value is the empty set.
type SigSet [2]uint64

// FltSet is the machine-fault set type (fltset_t): a bitset of the faults
// 1..MaxFault. The zero value is the empty set.
type FltSet [2]uint64

// SysSet is the system-call set type (sysset_t): a bitset of the system calls
// 1..MaxSyscall. The zero value is the empty set.
type SysSet [8]uint64

// bit returns the word index and mask for member n (1-based).
// Members are numbered from 1; bit 0 of word 0 corresponds to member 1.
func bit(n int) (word int, mask uint64) {
	n--
	return n / 64, 1 << uint(n%64)
}

func setAdd(w []uint64, n, max int) {
	if n < 1 || n > max {
		return
	}
	i, m := bit(n)
	w[i] |= m
}

func setDel(w []uint64, n, max int) {
	if n < 1 || n > max {
		return
	}
	i, m := bit(n)
	w[i] &^= m
}

func setHas(w []uint64, n, max int) bool {
	if n < 1 || n > max {
		return false
	}
	i, m := bit(n)
	return w[i]&m != 0
}

func setFill(w []uint64) {
	for i := range w {
		w[i] = ^uint64(0)
	}
}

func setEmpty(w []uint64) bool {
	for _, v := range w {
		if v != 0 {
			return false
		}
	}
	return true
}

func setMembers(w []uint64, max int) []int {
	var out []int
	for n := 1; n <= max; n++ {
		if setHas(w, n, max) {
			out = append(out, n)
		}
	}
	return out
}

func setString(w []uint64, max int, name func(int) string) string {
	ms := setMembers(w, max)
	if len(ms) == 0 {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range ms {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name(n))
	}
	b.WriteByte('}')
	return b.String()
}

// Add includes signal sig in the set (praddset).
func (s *SigSet) Add(sig int) { setAdd(s[:], sig, MaxSig) }

// Del removes signal sig from the set (prdelset).
func (s *SigSet) Del(sig int) { setDel(s[:], sig, MaxSig) }

// Has reports whether signal sig is a member of the set (prismember).
func (s SigSet) Has(sig int) bool { return setHas(s[:], sig, MaxSig) }

// Fill makes the set contain every signal (prfillset).
func (s *SigSet) Fill() { setFill(s[:]) }

// Clear makes the set empty (premptyset).
func (s *SigSet) Clear() { *s = SigSet{} }

// IsEmpty reports whether the set has no members.
func (s SigSet) IsEmpty() bool { return setEmpty(s[:]) }

// Members returns the signals in the set in ascending order.
func (s SigSet) Members() []int { return setMembers(s[:], MaxSig) }

// Union returns the union of s and t.
func (s SigSet) Union(t SigSet) SigSet {
	return SigSet{s[0] | t[0], s[1] | t[1]}
}

// Intersect returns the intersection of s and t.
func (s SigSet) Intersect(t SigSet) SigSet {
	return SigSet{s[0] & t[0], s[1] & t[1]}
}

// Minus returns the members of s that are not in t.
func (s SigSet) Minus(t SigSet) SigSet {
	return SigSet{s[0] &^ t[0], s[1] &^ t[1]}
}

// First returns the lowest-numbered member of the set, or 0 if empty.
func (s SigSet) First() int {
	for n := 1; n <= MaxSig; n++ {
		if s.Has(n) {
			return n
		}
	}
	return 0
}

// String renders the set using signal names, e.g. {SIGINT,SIGTRAP}.
func (s SigSet) String() string { return setString(s[:], MaxSig, SigName) }

// Add includes fault flt in the set.
func (f *FltSet) Add(flt int) { setAdd(f[:], flt, MaxFault) }

// Del removes fault flt from the set.
func (f *FltSet) Del(flt int) { setDel(f[:], flt, MaxFault) }

// Has reports whether fault flt is a member of the set.
func (f FltSet) Has(flt int) bool { return setHas(f[:], flt, MaxFault) }

// Fill makes the set contain every fault.
func (f *FltSet) Fill() { setFill(f[:]) }

// Clear makes the set empty.
func (f *FltSet) Clear() { *f = FltSet{} }

// IsEmpty reports whether the set has no members.
func (f FltSet) IsEmpty() bool { return setEmpty(f[:]) }

// Members returns the faults in the set in ascending order.
func (f FltSet) Members() []int { return setMembers(f[:], MaxFault) }

// String renders the set using fault names, e.g. {FLTBPT}.
func (f FltSet) String() string { return setString(f[:], MaxFault, FltName) }

// Add includes system call sys in the set.
func (s *SysSet) Add(sys int) { setAdd(s[:], sys, MaxSyscall) }

// Del removes system call sys from the set.
func (s *SysSet) Del(sys int) { setDel(s[:], sys, MaxSyscall) }

// Has reports whether system call sys is a member of the set.
func (s SysSet) Has(sys int) bool { return setHas(s[:], sys, MaxSyscall) }

// Fill makes the set contain every system call.
func (s *SysSet) Fill() { setFill(s[:]) }

// Clear makes the set empty.
func (s *SysSet) Clear() { *s = SysSet{} }

// IsEmpty reports whether the set has no members.
func (s SysSet) IsEmpty() bool { return setEmpty(s[:]) }

// Members returns the system calls in the set in ascending order.
func (s SysSet) Members() []int { return setMembers(s[:], MaxSyscall) }

// String renders the set as system call numbers, e.g. {3,4}.
func (s SysSet) String() string {
	return setString(s[:], MaxSyscall, func(n int) string { return fmt.Sprint(n) })
}
