package types

import "fmt"

// SVR4 signal numbers. These follow the System V Release 4 numbering.
const (
	SIGHUP    = 1  // hangup
	SIGINT    = 2  // interrupt (rubout)
	SIGQUIT   = 3  // quit (ASCII FS)
	SIGILL    = 4  // illegal instruction
	SIGTRAP   = 5  // trace trap
	SIGABRT   = 6  // used by abort
	SIGEMT    = 7  // EMT instruction
	SIGFPE    = 8  // floating point exception
	SIGKILL   = 9  // kill (cannot be caught or ignored)
	SIGBUS    = 10 // bus error
	SIGSEGV   = 11 // segmentation violation
	SIGSYS    = 12 // bad argument to system call
	SIGPIPE   = 13 // write on a pipe with no one to read it
	SIGALRM   = 14 // alarm clock
	SIGTERM   = 15 // software termination signal
	SIGUSR1   = 16 // user defined signal 1
	SIGUSR2   = 17 // user defined signal 2
	SIGCHLD   = 18 // child status change
	SIGPWR    = 19 // power-fail restart
	SIGWINCH  = 20 // window size change
	SIGURG    = 21 // urgent socket condition
	SIGPOLL   = 22 // pollable event occurred
	SIGSTOP   = 23 // stop (cannot be caught or ignored)
	SIGTSTP   = 24 // user stop requested from tty
	SIGCONT   = 25 // stopped process has been continued
	SIGTTIN   = 26 // background tty read attempted
	SIGTTOU   = 27 // background tty write attempted
	SIGVTALRM = 28 // virtual timer expired
	SIGPROF   = 29 // profiling timer expired
	SIGXCPU   = 30 // exceeded cpu limit
	SIGXFSZ   = 31 // exceeded file size limit
	NSigNames = 32 // number of named signals (1..31)
)

var sigNames = [NSigNames]string{
	"", "SIGHUP", "SIGINT", "SIGQUIT", "SIGILL", "SIGTRAP", "SIGABRT",
	"SIGEMT", "SIGFPE", "SIGKILL", "SIGBUS", "SIGSEGV", "SIGSYS",
	"SIGPIPE", "SIGALRM", "SIGTERM", "SIGUSR1", "SIGUSR2", "SIGCHLD",
	"SIGPWR", "SIGWINCH", "SIGURG", "SIGPOLL", "SIGSTOP", "SIGTSTP",
	"SIGCONT", "SIGTTIN", "SIGTTOU", "SIGVTALRM", "SIGPROF", "SIGXCPU",
	"SIGXFSZ",
}

// SigName returns the symbolic name of signal sig ("SIGINT"), or a numeric
// form ("SIG64") for unnamed but valid signal numbers.
func SigName(sig int) string {
	if sig >= 1 && sig < NSigNames {
		return sigNames[sig]
	}
	if sig >= 1 && sig <= MaxSig {
		return fmt.Sprintf("SIG%d", sig)
	}
	return fmt.Sprintf("SIGBAD(%d)", sig)
}

// SigNumber returns the signal number for a symbolic name, or 0 if unknown.
func SigNumber(name string) int {
	for n := 1; n < NSigNames; n++ {
		if sigNames[n] == name {
			return n
		}
	}
	var n int
	if _, err := fmt.Sscanf(name, "SIG%d", &n); err == nil && n >= 1 && n <= MaxSig {
		return n
	}
	return 0
}

// IsJobControlStop reports whether sig is one of the job-control stop
// signals, whose default action is a job-control stop taken inside issig().
func IsJobControlStop(sig int) bool {
	switch sig {
	case SIGSTOP, SIGTSTP, SIGTTIN, SIGTTOU:
		return true
	}
	return false
}

// DefaultDisposition classifies the default action for a signal.
type DefaultDisposition int

// Default signal dispositions.
const (
	DispTerminate DefaultDisposition = iota // terminate the process
	DispCore                                // terminate with a core dump
	DispIgnore                              // ignore the signal
	DispStop                                // job-control stop
	DispContinue                            // continue a stopped process
)

// SigDefault returns the default disposition of signal sig.
func SigDefault(sig int) DefaultDisposition {
	switch sig {
	case SIGCHLD, SIGPWR, SIGWINCH, SIGURG:
		return DispIgnore
	case SIGSTOP, SIGTSTP, SIGTTIN, SIGTTOU:
		return DispStop
	case SIGCONT:
		return DispContinue
	case SIGQUIT, SIGILL, SIGTRAP, SIGABRT, SIGEMT, SIGFPE, SIGBUS,
		SIGSEGV, SIGSYS, SIGXCPU, SIGXFSZ:
		return DispCore
	}
	return DispTerminate
}
