package types

// Cred holds the credentials of a process, returned through /proc by the
// PIOCCRED operation and consulted by the /proc security checks.
type Cred struct {
	RUID, EUID, SUID int   // real, effective, saved user ids
	RGID, EGID, SGID int   // real, effective, saved group ids
	Groups           []int // supplementary groups (PIOCGROUPS)
}

// IsSuper reports whether the credential carries super-user privilege.
func (c Cred) IsSuper() bool { return c.EUID == 0 }

// InGroup reports whether gid is the effective gid or a supplementary group.
func (c Cred) InGroup(gid int) bool {
	if c.EGID == gid {
		return true
	}
	for _, g := range c.Groups {
		if g == gid {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the credential.
func (c Cred) Clone() Cred {
	d := c
	d.Groups = append([]int(nil), c.Groups...)
	return d
}

// UserCred is a convenience constructor for an ordinary user credential with
// equal real, effective and saved ids.
func UserCred(uid, gid int) Cred {
	return Cred{RUID: uid, EUID: uid, SUID: uid, RGID: gid, EGID: gid, SGID: gid}
}

// RootCred is the super-user credential.
func RootCred() Cred { return UserCred(0, 0) }
