package types

import (
	"testing"
	"testing/quick"
)

func TestSigSetBasics(t *testing.T) {
	var s SigSet
	if !s.IsEmpty() {
		t.Fatal("zero SigSet should be empty")
	}
	s.Add(SIGINT)
	s.Add(SIGTRAP)
	if !s.Has(SIGINT) || !s.Has(SIGTRAP) {
		t.Fatal("added members missing")
	}
	if s.Has(SIGHUP) {
		t.Fatal("unexpected member SIGHUP")
	}
	s.Del(SIGINT)
	if s.Has(SIGINT) {
		t.Fatal("Del failed")
	}
	if got := s.Members(); len(got) != 1 || got[0] != SIGTRAP {
		t.Fatalf("Members = %v, want [SIGTRAP]", got)
	}
}

func TestSigSetFillAndClear(t *testing.T) {
	var s SigSet
	s.Fill()
	for n := 1; n <= MaxSig; n++ {
		if !s.Has(n) {
			t.Fatalf("Fill missing signal %d", n)
		}
	}
	s.Clear()
	if !s.IsEmpty() {
		t.Fatal("Clear did not empty the set")
	}
}

func TestSetEnumerationFromOne(t *testing.T) {
	// There is no signal, fault, or system call number 0.
	var s SigSet
	s.Add(0)
	if !s.IsEmpty() {
		t.Fatal("Add(0) should be a no-op")
	}
	if s.Has(0) {
		t.Fatal("Has(0) should be false")
	}
	var f FltSet
	f.Add(0)
	f.Add(-3)
	if !f.IsEmpty() {
		t.Fatal("FltSet.Add(0) should be a no-op")
	}
	var y SysSet
	y.Add(0)
	y.Add(MaxSyscall + 1)
	if !y.IsEmpty() {
		t.Fatal("SysSet out-of-range Add should be a no-op")
	}
}

func TestSetBounds(t *testing.T) {
	var s SigSet
	s.Add(MaxSig)
	if !s.Has(MaxSig) {
		t.Fatal("MaxSig should be addable")
	}
	s.Add(MaxSig + 1)
	if s.Has(MaxSig + 1) {
		t.Fatal("beyond MaxSig should not be addable")
	}
	var y SysSet
	y.Add(MaxSyscall)
	if !y.Has(MaxSyscall) {
		t.Fatal("MaxSyscall should be addable")
	}
}

func TestSigSetAlgebra(t *testing.T) {
	a, b := SigSet{}, SigSet{}
	a.Add(SIGINT)
	a.Add(SIGQUIT)
	b.Add(SIGQUIT)
	b.Add(SIGTERM)
	u := a.Union(b)
	for _, sig := range []int{SIGINT, SIGQUIT, SIGTERM} {
		if !u.Has(sig) {
			t.Fatalf("union missing %s", SigName(sig))
		}
	}
	i := a.Intersect(b)
	if !i.Has(SIGQUIT) || i.Has(SIGINT) || i.Has(SIGTERM) {
		t.Fatalf("bad intersection %v", i)
	}
	m := a.Minus(b)
	if !m.Has(SIGINT) || m.Has(SIGQUIT) {
		t.Fatalf("bad difference %v", m)
	}
}

func TestSigSetFirst(t *testing.T) {
	var s SigSet
	if s.First() != 0 {
		t.Fatal("First of empty set should be 0")
	}
	s.Add(SIGTERM)
	s.Add(SIGHUP)
	if s.First() != SIGHUP {
		t.Fatalf("First = %d, want SIGHUP", s.First())
	}
}

// Property: Add then Has is true; Del then Has is false, for any valid member.
func TestQuickSigSetAddDel(t *testing.T) {
	f := func(raw uint16, seedLo, seedHi uint64) bool {
		n := int(raw%MaxSig) + 1
		s := SigSet{seedLo, seedHi}
		s.Add(n)
		if !s.Has(n) {
			return false
		}
		s.Del(n)
		return !s.Has(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: membership survives union with anything.
func TestQuickSigSetUnionMonotone(t *testing.T) {
	f := func(raw uint16, aLo, aHi, bLo, bHi uint64) bool {
		n := int(raw%MaxSig) + 1
		a := SigSet{aLo, aHi}
		b := SigSet{bLo, bHi}
		a.Add(n)
		return a.Union(b).Has(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Members() is ascending and round-trips through Add.
func TestQuickSysSetMembersRoundTrip(t *testing.T) {
	f := func(picks []uint16) bool {
		var s SysSet
		want := map[int]bool{}
		for _, p := range picks {
			n := int(p%MaxSyscall) + 1
			s.Add(n)
			want[n] = true
		}
		ms := s.Members()
		if len(ms) != len(want) {
			return false
		}
		prev := 0
		for _, m := range ms {
			if m <= prev || !want[m] {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSigNames(t *testing.T) {
	cases := map[int]string{
		SIGHUP:  "SIGHUP",
		SIGKILL: "SIGKILL",
		SIGTRAP: "SIGTRAP",
		SIGCONT: "SIGCONT",
		64:      "SIG64",
	}
	for sig, want := range cases {
		if got := SigName(sig); got != want {
			t.Errorf("SigName(%d) = %q, want %q", sig, got, want)
		}
	}
	if SigNumber("SIGTRAP") != SIGTRAP {
		t.Error("SigNumber(SIGTRAP) wrong")
	}
	if SigNumber("SIG99") != 99 {
		t.Error("SigNumber(SIG99) wrong")
	}
	if SigNumber("nonsense") != 0 {
		t.Error("SigNumber(nonsense) should be 0")
	}
}

func TestFltNames(t *testing.T) {
	if FltName(FLTBPT) != "FLTBPT" {
		t.Error("FltName(FLTBPT) wrong")
	}
	if FltName(100) != "FLT100" {
		t.Errorf("FltName(100) = %q", FltName(100))
	}
}

func TestFaultSignalMapping(t *testing.T) {
	cases := map[int]int{
		FLTBPT:    SIGTRAP,
		FLTTRACE:  SIGTRAP,
		FLTILL:    SIGILL,
		FLTPRIV:   SIGILL,
		FLTACCESS: SIGSEGV,
		FLTBOUNDS: SIGSEGV,
		FLTIZDIV:  SIGFPE,
		FLTPAGE:   0,
		FLTWATCH:  SIGTRAP,
	}
	for flt, want := range cases {
		if got := FaultSignal(flt); got != want {
			t.Errorf("FaultSignal(%s) = %d, want %d", FltName(flt), got, want)
		}
	}
}

func TestDefaultDispositions(t *testing.T) {
	if SigDefault(SIGKILL) != DispTerminate {
		t.Error("SIGKILL default should terminate")
	}
	if SigDefault(SIGQUIT) != DispCore {
		t.Error("SIGQUIT default should core")
	}
	if SigDefault(SIGCHLD) != DispIgnore {
		t.Error("SIGCHLD default should ignore")
	}
	if SigDefault(SIGTSTP) != DispStop {
		t.Error("SIGTSTP default should stop")
	}
	if SigDefault(SIGCONT) != DispContinue {
		t.Error("SIGCONT default should continue")
	}
	for _, sig := range []int{SIGSTOP, SIGTSTP, SIGTTIN, SIGTTOU} {
		if !IsJobControlStop(sig) {
			t.Errorf("%s should be a job-control stop", SigName(sig))
		}
	}
	if IsJobControlStop(SIGINT) {
		t.Error("SIGINT is not a job-control stop")
	}
}

func TestSetString(t *testing.T) {
	var s SigSet
	if s.String() != "{}" {
		t.Errorf("empty set String = %q", s.String())
	}
	s.Add(SIGINT)
	s.Add(SIGTRAP)
	if s.String() != "{SIGINT,SIGTRAP}" {
		t.Errorf("String = %q", s.String())
	}
	var f FltSet
	f.Add(FLTBPT)
	if f.String() != "{FLTBPT}" {
		t.Errorf("FltSet String = %q", f.String())
	}
}

func TestCred(t *testing.T) {
	c := UserCred(100, 10)
	if c.IsSuper() {
		t.Error("uid 100 should not be super")
	}
	if !RootCred().IsSuper() {
		t.Error("root should be super")
	}
	c.Groups = []int{10, 20}
	if !c.InGroup(20) || c.InGroup(30) {
		t.Error("InGroup wrong")
	}
	d := c.Clone()
	d.Groups[0] = 99
	if c.Groups[0] == 99 {
		t.Error("Clone should deep-copy groups")
	}
}
