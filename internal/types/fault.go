package types

import "fmt"

// SVR4 machine-fault numbers (sys/fault.h), plus FLTWATCH for the proposed
// generalized data watchpoint facility described in the paper.
const (
	FLTILL    = 1  // illegal instruction
	FLTPRIV   = 2  // privileged instruction
	FLTBPT    = 3  // breakpoint instruction
	FLTTRACE  = 4  // trace trap (single-step)
	FLTACCESS = 5  // memory access fault (protection violation)
	FLTBOUNDS = 6  // memory bounds violation (reference to unmapped address)
	FLTIOVF   = 7  // integer overflow
	FLTIZDIV  = 8  // integer zero divide
	FLTFPE    = 9  // floating point exception
	FLTSTACK  = 10 // unrecoverable stack fault
	FLTPAGE   = 11 // recoverable page fault
	FLTWATCH  = 12 // watchpoint trap (proposed extension)
	NFltNames = 13 // number of named faults (1..12)
)

var fltNames = [NFltNames]string{
	"", "FLTILL", "FLTPRIV", "FLTBPT", "FLTTRACE", "FLTACCESS",
	"FLTBOUNDS", "FLTIOVF", "FLTIZDIV", "FLTFPE", "FLTSTACK",
	"FLTPAGE", "FLTWATCH",
}

// FltName returns the symbolic name of fault flt ("FLTBPT"), or a numeric
// form for unnamed but valid fault numbers.
func FltName(flt int) string {
	if flt >= 1 && flt < NFltNames {
		return fltNames[flt]
	}
	if flt >= 1 && flt <= MaxFault {
		return fmt.Sprintf("FLT%d", flt)
	}
	return fmt.Sprintf("FLTBAD(%d)", flt)
}

// FaultSignal returns the signal a fault is converted to when the fault is
// not an event of interest traced via /proc. The process is sent this signal,
// "normally SIGTRAP or SIGILL" for breakpoints, as the paper describes.
func FaultSignal(flt int) int {
	switch flt {
	case FLTILL, FLTPRIV:
		return SIGILL
	case FLTBPT, FLTTRACE, FLTWATCH:
		return SIGTRAP
	case FLTACCESS, FLTBOUNDS, FLTSTACK:
		return SIGSEGV
	case FLTIOVF, FLTIZDIV, FLTFPE:
		return SIGFPE
	case FLTPAGE:
		return 0 // recoverable; no signal
	}
	return SIGILL
}
