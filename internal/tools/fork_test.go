package tools_test

import (
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/tools"
	"repro/internal/types"
	"repro/internal/vfs"
)

const forkProg = `
.entry main
fn:	addi r4, 1
	ret
main:	call fn			; hit once before the fork
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	call fn			; the child calls fn too
	movi r0, SYS_exit
	movi r1, 0
	syscall
parent:
	movi r0, SYS_wait
	movi r1, 0
	syscall
	shr r1, 8
	movi r0, SYS_exit
	syscall
`

// The paper: to take control of new processes, set inherit-on-fork and
// trace exit from fork; both parent and child stop on exit from fork; the
// debugger opens the child using the parent's return value and has complete
// control before the child runs any user-level code.
func TestDebuggerTakesControlOfChild(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("forked", forkProg, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	d, err := tools.NewDebugger(s, p, types.RootCred())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Inherit-on-fork plus trace fork exit.
	if err := d.F.Ioctl(procfs.PIOCSFORK, nil); err != nil {
		t.Fatal(err)
	}
	var exits types.SysSet
	exits.Add(kernel.SysFork)
	if err := d.F.Ioctl(procfs.PIOCSEXIT, &exits); err != nil {
		t.Fatal(err)
	}
	fn, _ := d.Lookup("fn")
	if err := d.SetBreak(fn); err != nil {
		t.Fatal(err)
	}

	// First stop: the pre-fork breakpoint hit.
	st, err := d.Cont()
	if err != nil {
		t.Fatal(err)
	}
	if st.Why != kernel.WhyFaulted || st.Reg.PC != fn {
		t.Fatalf("first stop: %+v", st)
	}
	// Second stop: the parent at exit from fork.
	st, err = d.Cont()
	if err != nil {
		t.Fatal(err)
	}
	if st.Why != kernel.WhySysExit || st.What != kernel.SysFork {
		t.Fatalf("second stop: %v/%d", st.Why, st.What)
	}
	childPid := int(st.Reg.R[0])
	child := s.K.Proc(childPid)
	if child == nil {
		t.Fatal("child not found")
	}
	// Open the child: it is stopped at fork exit, has run nothing, and —
	// because the address space was copied after the breakpoint write —
	// it inherited the breakpoint.
	cf, err := s.OpenProc(childPid, vfs.ORead|vfs.OWrite, types.RootCred())
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	cd, err := tools.NewDebuggerFile(s, child, cf)
	if err != nil {
		t.Fatal(err)
	}
	w, err := cd.ReadWord(fn)
	if err != nil {
		t.Fatal(err)
	}
	if w>>24 != 0x24 { // OpBPT
		t.Fatalf("child did not inherit the breakpoint: %#x", w)
	}
	cd.Syms = d.Syms
	cd.SetBreakRecord(fn, mustOrig(t, d, fn))
	// Release the parent's exit stop, then drive the child to its hit.
	if err := d.F.Ioctl(procfs.PIOCRUN, nil); err != nil {
		t.Fatal(err)
	}
	cst, err := cd.Cont() // first release the child's fork-exit stop, hit fn
	if err != nil {
		t.Fatal(err)
	}
	if cst.Why != kernel.WhyFaulted || cst.Reg.PC != fn {
		t.Fatalf("child stop: %+v", cst)
	}
	// Let everything finish.
	if err := cd.ClearBreak(fn); err != nil {
		t.Fatal(err)
	}
	cd.Close()
	d.ClearBreak(fn)
	d.Close()
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, code := kernel.WIfExited(status); code != 0 {
		t.Fatalf("final status %#x", status)
	}
}

// The paper: to let new processes run unmolested, reset inherit-on-fork —
// but inherited breakpoints would make the child malfunction. So the
// debugger traces entry to fork, lifts all breakpoints there, lets the fork
// proceed (the child is created breakpoint-free), and re-establishes them
// at the parent's exit stop.
func TestForkChildRunsUnmolested(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("unmol", forkProg, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	d, err := tools.NewDebugger(s, p, types.RootCred())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var both types.SysSet
	both.Add(kernel.SysFork)
	if err := d.F.Ioctl(procfs.PIOCSENTRY, &both); err != nil {
		t.Fatal(err)
	}
	if err := d.F.Ioctl(procfs.PIOCSEXIT, &both); err != nil {
		t.Fatal(err)
	}
	fn, _ := d.Lookup("fn")
	if err := d.SetBreak(fn); err != nil {
		t.Fatal(err)
	}

	// Breakpoint hit before the fork.
	if st, err := d.Cont(); err != nil || st.Reg.PC != fn {
		t.Fatalf("pre-fork hit: %+v %v", st, err)
	}
	// Stop at entry to fork: lift all breakpoints.
	st, err := d.Cont()
	if err != nil || st.Why != kernel.WhySysEntry {
		t.Fatalf("fork entry: %+v %v", st, err)
	}
	if err := d.LiftAll(); err != nil {
		t.Fatal(err)
	}
	// Stop at exit from fork (parent): re-establish the breakpoints.
	st, err = d.Cont()
	if err != nil || st.Why != kernel.WhySysExit {
		t.Fatalf("fork exit: %+v %v", st, err)
	}
	childPid := int(st.Reg.R[0])
	// The child may already have run to completion while the parent's
	// exit stop was being awaited — the strongest possible evidence that
	// it ran unmolested (an inherited breakpoint would have killed it
	// with SIGTRAP). If it is still around, check its text directly.
	if child := s.K.Proc(childPid); child != nil && child.Alive() {
		var w [4]byte
		child.AS.ReadAt(w[:], int64(fn))
		if w[0] == 0x24 {
			t.Fatal("child inherited a breakpoint despite the lift")
		}
		if !child.Trace.Empty() {
			t.Fatal("child inherited tracing flags")
		}
	}
	if err := d.PlantAll(); err != nil {
		t.Fatal(err)
	}
	// The child runs unmolested to exit 0; the parent's wait returns it.
	d.Close()
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, code := kernel.WIfExited(status); code != 0 {
		t.Fatalf("status %#x: the child should have run unmolested", status)
	}
}

// vfork shares the address space: a breakpoint planted in the parent is the
// same memory the child executes. The paper says "special care must be
// taken with vfork"; this verifies why.
func TestVforkSharesBreakpoints(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("vfshare", `
.entry main
fn:	ret
main:	movi r0, SYS_vfork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_exit	; the child exits straight away
	movi r1, 0
	syscall
parent:
	movi r0, SYS_wait
	movi r1, 0
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	d, err := tools.NewDebugger(s, p, types.RootCred())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	fn, _ := d.Lookup("fn")
	if err := d.SetBreak(fn); err != nil {
		t.Fatal(err)
	}
	var exits types.SysSet
	exits.Add(kernel.SysVfork)
	if err := d.F.Ioctl(procfs.PIOCSFORK, nil); err != nil {
		t.Fatal(err)
	}
	if err := d.F.Ioctl(procfs.PIOCSEXIT, &exits); err != nil {
		t.Fatal(err)
	}
	// The child's vfork-exit stop comes first (the parent is asleep until
	// the child exits or execs).
	var child *kernel.Proc
	err = s.RunUntil(func() bool {
		for _, q := range s.K.Procs() {
			if q.Parent == p && q.EventStoppedLWP() != nil {
				child = q
				return true
			}
		}
		return false
	}, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Same address space object: the breakpoint is visible to the child.
	if child.AS != p.AS {
		t.Fatal("vfork child should borrow the parent's address space")
	}
	var w [4]byte
	child.AS.ReadAt(w[:], int64(fn))
	if w[0] != 0x24 {
		t.Fatal("breakpoint not visible through the shared space")
	}
	// Release the child; it exits, which wakes the parent out of its
	// vfork sleep — and the parent then takes its own vfork exit stop.
	if err := s.K.RunLWP(child.EventStoppedLWP(), kernel.RunFlags{}); err != nil {
		t.Fatal(err)
	}
	var pst kernel.ProcStatus
	if err := d.F.Ioctl(procfs.PIOCWSTOP, &pst); err != nil {
		t.Fatal(err)
	}
	if pst.Why != kernel.WhySysExit || pst.What != kernel.SysVfork {
		t.Fatalf("parent stop: %v/%d", pst.Why, pst.What)
	}
	if int(pst.Reg.R[0]) != child.Pid {
		t.Fatalf("parent vfork return = %d, want child pid %d", pst.Reg.R[0], child.Pid)
	}
	var none types.SysSet
	if err := d.F.Ioctl(procfs.PIOCSEXIT, &none); err != nil {
		t.Fatal(err)
	}
	if err := d.F.Ioctl(procfs.PIOCRUN, nil); err != nil {
		t.Fatal(err)
	}
	d.ClearBreak(fn)
	d.Close()
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, code := kernel.WIfExited(status); code != 0 {
		t.Fatalf("status %#x", status)
	}
}

func mustOrig(t *testing.T, d *tools.Debugger, addr uint32) uint32 {
	t.Helper()
	orig, ok := d.OrigWord(addr)
	if !ok {
		t.Fatal("no recorded original word")
	}
	return orig
}
