package tools

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/vcpu"
)

// PtraceDebugger is the same breakpoint debugger built on the obsolete
// ptrace(2) mechanism — the baseline the paper's interface supersedes. Every
// memory transfer moves one word; every register access moves one word;
// stops are entangled with signals; and the debugger must be the parent of
// the process it controls. It exists so the benchmarks can reproduce the
// paper's efficiency comparison ("breakpoints per second").
type PtraceDebugger struct {
	C      *kernel.PtraceController
	breaks map[uint32]uint32
}

// NewPtraceDebugger attaches via the ptrace mechanism.
func NewPtraceDebugger(c *kernel.PtraceController) *PtraceDebugger {
	return &PtraceDebugger{C: c, breaks: map[uint32]uint32{}}
}

// Ops reports the ptrace calls issued.
func (d *PtraceDebugger) Ops() int64 { return d.C.Ops }

// WaitTrap waits until the child stops with SIGTRAP (a breakpoint fault
// converted to a signal, since ptrace has no stop-on-fault).
func (d *PtraceDebugger) WaitTrap(maxSteps int) error {
	sig, err := d.C.WaitStop(maxSteps)
	if err != nil {
		return err
	}
	if sig != 0 && sig != 5 { // SIGTRAP
		return fmt.Errorf("ptrace dbg: unexpected stop signal %d", sig)
	}
	return nil
}

// ReadMem reads n bytes the only way ptrace can: one word at a time.
func (d *PtraceDebugger) ReadMem(addr uint32, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	for off := 0; off < n; off += 4 {
		w, err := d.C.PeekText(addr + uint32(off))
		if err != nil {
			return nil, err
		}
		out = append(out, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
	}
	return out[:n], nil
}

// WriteMem writes bytes one word at a time (with read-modify-write at the
// edges, as real ptrace users had to).
func (d *PtraceDebugger) WriteMem(addr uint32, b []byte) error {
	for off := 0; off < len(b); off += 4 {
		var w uint32
		if off+4 <= len(b) {
			w = uint32(b[off])<<24 | uint32(b[off+1])<<16 | uint32(b[off+2])<<8 | uint32(b[off+3])
		} else {
			old, err := d.C.PeekText(addr + uint32(off))
			if err != nil {
				return err
			}
			w = old
			for i := 0; off+i < len(b); i++ {
				shift := uint(24 - 8*i)
				w = w&^(0xFF<<shift) | uint32(b[off+i])<<shift
			}
		}
		if err := d.C.PokeText(addr+uint32(off), w); err != nil {
			return err
		}
	}
	return nil
}

// Regs fetches the registers one word at a time (PEEKUSER).
func (d *PtraceDebugger) Regs() (vcpu.Regs, error) {
	var r vcpu.Regs
	for i := 0; i < vcpu.NumRegs; i++ {
		v, err := d.C.PeekUser(i)
		if err != nil {
			return r, err
		}
		r.R[i] = v
	}
	var err error
	if r.PC, err = d.C.PeekUser(kernel.PtUserPC); err != nil {
		return r, err
	}
	if r.SP, err = d.C.PeekUser(kernel.PtUserSP); err != nil {
		return r, err
	}
	if r.PSW, err = d.C.PeekUser(kernel.PtUserPSW); err != nil {
		return r, err
	}
	return r, nil
}

// SetBreak plants a breakpoint.
func (d *PtraceDebugger) SetBreak(addr uint32) error {
	if _, dup := d.breaks[addr]; dup {
		return nil
	}
	orig, err := d.C.PeekText(addr)
	if err != nil {
		return err
	}
	if err := d.C.PokeText(addr, vcpu.BreakpointWord); err != nil {
		return err
	}
	d.breaks[addr] = orig
	return nil
}

// ClearBreak lifts a breakpoint.
func (d *PtraceDebugger) ClearBreak(addr uint32) error {
	orig, ok := d.breaks[addr]
	if !ok {
		return nil
	}
	delete(d.breaks, addr)
	return d.C.PokeText(addr, orig)
}

// Cont resumes until the next SIGTRAP stop, stepping over a breakpoint at
// the current PC if there is one. With ptrace, the debugger must clear the
// signal on every continuation — the signal-overload problem the paper
// describes.
func (d *PtraceDebugger) Cont(maxSteps int) error {
	pc, err := d.C.PeekUser(kernel.PtUserPC)
	if err != nil {
		return err
	}
	if orig, ok := d.breaks[pc]; ok {
		if err := d.C.PokeText(pc, orig); err != nil {
			return err
		}
		if err := d.C.Step(0); err != nil {
			return err
		}
		if _, err := d.C.WaitStop(maxSteps); err != nil {
			return err
		}
		if err := d.C.PokeText(pc, vcpu.BreakpointWord); err != nil {
			return err
		}
	}
	if err := d.C.Cont(0); err != nil {
		return err
	}
	return d.WaitTrap(maxSteps)
}
