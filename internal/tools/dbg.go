package tools

import (
	"encoding/binary"
	"fmt"

	"repro"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/procfs"
	"repro/internal/types"
	"repro/internal/vcpu"
	"repro/internal/vfs"
	"repro/internal/xout"
)

// Debugger is a breakpoint debugger built on /proc, the way the paper
// intends: breakpoints are planted by writing the approved breakpoint
// instruction into the (copy-on-write) text through the process file, and
// fielded as FLTBPT faulted stops — the preferred method, relieved of the
// ambiguities of signals.
type Debugger struct {
	Sys  *repro.System
	P    *kernel.Proc
	F    *vfs.File
	Syms []kernel.Sym

	breaks map[uint32]uint32 // addr -> original instruction word
	// Ops counts /proc operations issued (opens, ioctls, reads, writes),
	// the debugger-efficiency measure.
	Ops int64
}

// NewDebugger attaches to a process with full control: FLTBPT and FLTTRACE
// become events of interest.
func NewDebugger(sys *repro.System, p *kernel.Proc, cred types.Cred) (*Debugger, error) {
	f, err := sys.OpenProc(p.Pid, vfs.ORead|vfs.OWrite, cred)
	if err != nil {
		return nil, err
	}
	return NewDebuggerFile(sys, p, f)
}

// NewDebuggerFile attaches through an already-open process file — which may
// be a remote one obtained over RFS, since the debugger needs nothing but
// the file operations.
func NewDebuggerFile(sys *repro.System, p *kernel.Proc, f *vfs.File) (*Debugger, error) {
	d := &Debugger{Sys: sys, P: p, F: f, breaks: map[uint32]uint32{}}
	if syms, ok := p.ImageSyms(); ok {
		d.Syms = syms
	}
	var flts types.FltSet
	flts.Add(types.FLTBPT)
	flts.Add(types.FLTTRACE)
	d.Ops++
	if err := f.Ioctl(procfs.PIOCSFAULT, &flts); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// Close detaches; without run-on-last-close the tracing flags would persist,
// so clear them first and release any stop.
func (d *Debugger) Close() error {
	for addr := range d.breaks {
		d.ClearBreak(addr)
	}
	var none types.FltSet
	d.Ops++
	d.F.Ioctl(procfs.PIOCSFAULT, &none)
	if d.P.EventStoppedLWP() != nil {
		d.Ops++
		d.F.Ioctl(procfs.PIOCRUN, &kernel.RunFlags{ClearFault: true, ClearSig: true})
	}
	return d.F.Close()
}

// LoadMappedSymbols walks the memory map and, for every mapped executable
// object (the a.out and each shared library), obtains a descriptor with
// PIOCOPENM, reads the image, and merges its symbol table into the
// debugger's — relocated to where the object is actually mapped. This is
// exactly what PIOCOPENM exists for: finding executable file symbol tables,
// including those for shared libraries attached to the process, without
// having to know pathnames.
func (d *Debugger) LoadMappedSymbols() error {
	var maps []procfs.PrMap
	d.Ops++
	if err := d.F.Ioctl(procfs.PIOCMAP, &maps); err != nil {
		return err
	}
	for _, m := range maps {
		if m.Kind != mem.KindText && m.Kind != mem.KindShlibText {
			continue
		}
		vaddr := m.Vaddr
		om := procfs.OpenMap{Vaddr: &vaddr}
		d.Ops++
		if err := d.F.Ioctl(procfs.PIOCOPENM, &om); err != nil {
			continue // anonymous or unopenable; skip
		}
		img, err := readImage(om.File)
		om.File.Close()
		if err != nil {
			continue
		}
		// Relocate: the image's symbols are relative to the conventional
		// text base; the object may be mapped elsewhere (libraries are).
		delta := int64(m.Vaddr) - int64(xout.TextBase)
		known := make(map[kernel.Sym]bool, len(d.Syms))
		for _, sym := range d.Syms {
			known[sym] = true
		}
		for _, sym := range img.Syms {
			s := kernel.Sym{Name: sym.Name, Value: uint32(int64(sym.Value) + delta)}
			if !known[s] {
				d.Syms = append(d.Syms, s)
			}
		}
	}
	return nil
}

// readImage slurps and parses an executable through an open descriptor.
func readImage(f *vfs.File) (*xout.File, error) {
	var data []byte
	buf := make([]byte, 8192)
	off := int64(0)
	for {
		n, err := f.Pread(buf, off)
		data = append(data, buf[:n]...)
		off += int64(n)
		if err != nil || n == 0 {
			break
		}
	}
	return xout.Unmarshal(data)
}

// Lookup resolves a symbol to its address.
func (d *Debugger) Lookup(name string) (uint32, bool) {
	for _, s := range d.Syms {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// SymAt names the symbol covering addr.
func (d *Debugger) SymAt(addr uint32) string {
	best := ""
	var bestVal uint32
	for _, s := range d.Syms {
		if s.Value <= addr && (best == "" || s.Value > bestVal) {
			best, bestVal = s.Name, s.Value
		}
	}
	if best == "" {
		return fmt.Sprintf("%#x", addr)
	}
	if addr == bestVal {
		return best
	}
	return fmt.Sprintf("%s+%#x", best, addr-bestVal)
}

// ReadWord reads one instruction word from the target.
func (d *Debugger) ReadWord(addr uint32) (uint32, error) {
	var b [4]byte
	d.Ops++
	if _, err := d.F.Pread(b[:], int64(addr)); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b[:]), nil
}

// WriteWord writes one instruction word into the target (COW protects the
// executable and other processes).
func (d *Debugger) WriteWord(addr, w uint32) error {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], w)
	d.Ops++
	_, err := d.F.Pwrite(b[:], int64(addr))
	return err
}

// ReadMem reads a block of target memory.
func (d *Debugger) ReadMem(addr uint32, n int) ([]byte, error) {
	buf := make([]byte, n)
	d.Ops++
	got, err := d.F.Pread(buf, int64(addr))
	if err != nil {
		return nil, err
	}
	return buf[:got], nil
}

// WriteMem writes a block of target memory.
func (d *Debugger) WriteMem(addr uint32, b []byte) error {
	d.Ops++
	_, err := d.F.Pwrite(b, int64(addr))
	return err
}

// SetBreak plants a breakpoint at addr.
func (d *Debugger) SetBreak(addr uint32) error {
	if _, dup := d.breaks[addr]; dup {
		return nil
	}
	orig, err := d.ReadWord(addr)
	if err != nil {
		return err
	}
	if err := d.WriteWord(addr, vcpu.BreakpointWord); err != nil {
		return err
	}
	d.breaks[addr] = orig
	return nil
}

// SetBreakRecord registers a breakpoint that is already planted in the
// target's text — the inherit-on-fork case, where the child's copied
// address space carries the parent's breakpoint instructions and the
// debugger of the child must know the original words without re-reading
// clobbered text.
func (d *Debugger) SetBreakRecord(addr, orig uint32) {
	d.breaks[addr] = orig
}

// OrigWord returns the original instruction recorded under a breakpoint.
func (d *Debugger) OrigWord(addr uint32) (uint32, bool) {
	orig, ok := d.breaks[addr]
	return orig, ok
}

// ClearBreak lifts a breakpoint.
func (d *Debugger) ClearBreak(addr uint32) error {
	orig, ok := d.breaks[addr]
	if !ok {
		return nil
	}
	delete(d.breaks, addr)
	return d.WriteWord(addr, orig)
}

// LiftAll removes every breakpoint (e.g. before letting an untraced child
// run, per the paper's fork discussion); PlantAll re-establishes them.
func (d *Debugger) LiftAll() error {
	for addr, orig := range d.breaks {
		if err := d.WriteWord(addr, orig); err != nil {
			return err
		}
	}
	return nil
}

// PlantAll re-writes every breakpoint instruction.
func (d *Debugger) PlantAll() error {
	for addr := range d.breaks {
		if err := d.WriteWord(addr, vcpu.BreakpointWord); err != nil {
			return err
		}
	}
	return nil
}

// Stop directs the process to stop and waits.
func (d *Debugger) Stop() (kernel.ProcStatus, error) {
	var st kernel.ProcStatus
	d.Ops++
	err := d.F.Ioctl(procfs.PIOCSTOP, &st)
	return st, err
}

// Status fetches the status.
func (d *Debugger) Status() (kernel.ProcStatus, error) {
	var st kernel.ProcStatus
	d.Ops++
	err := d.F.Ioctl(procfs.PIOCSTATUS, &st)
	return st, err
}

// Regs fetches the registers.
func (d *Debugger) Regs() (vcpu.Regs, error) {
	var r vcpu.Regs
	d.Ops++
	err := d.F.Ioctl(procfs.PIOCGREG, &r)
	return r, err
}

// SetRegs stores the registers.
func (d *Debugger) SetRegs(r vcpu.Regs) error {
	d.Ops++
	return d.F.Ioctl(procfs.PIOCSREG, &r)
}

// Cont resumes the target until the next breakpoint (or other traced fault)
// and returns the stop status. If the target is currently stopped at a
// breakpoint, Cont first steps over it: lift, single-step (FLTTRACE),
// re-plant, then run free.
func (d *Debugger) Cont() (kernel.ProcStatus, error) {
	st, err := d.Status()
	if err != nil {
		return st, err
	}
	if st.Flags&kernel.PRIstop != 0 {
		if st.Why == kernel.WhyFaulted && st.What == types.FLTBPT {
			if err := d.stepOverBreakpoint(st.Reg.PC); err != nil {
				return st, err
			}
		} else {
			d.Ops++
			if err := d.F.Ioctl(procfs.PIOCRUN, &kernel.RunFlags{ClearFault: true}); err != nil {
				return st, err
			}
		}
	}
	d.Ops++
	var out kernel.ProcStatus
	if err := d.F.Ioctl(procfs.PIOCWSTOP, &out); err != nil {
		return out, err
	}
	return out, nil
}

// stepOverBreakpoint executes the original instruction under a breakpoint:
// restore it, single-step with the fault cleared, then re-plant.
func (d *Debugger) stepOverBreakpoint(pc uint32) error {
	orig, ok := d.breaks[pc]
	if !ok {
		// Not ours: just clear and run.
		d.Ops++
		return d.F.Ioctl(procfs.PIOCRUN, &kernel.RunFlags{ClearFault: true})
	}
	if err := d.WriteWord(pc, orig); err != nil {
		return err
	}
	d.Ops++
	if err := d.F.Ioctl(procfs.PIOCRUN, &kernel.RunFlags{ClearFault: true, Step: true}); err != nil {
		return err
	}
	d.Ops++
	var st kernel.ProcStatus
	if err := d.F.Ioctl(procfs.PIOCWSTOP, &st); err != nil {
		return err
	}
	if st.Why != kernel.WhyFaulted || st.What != types.FLTTRACE {
		return fmt.Errorf("dbg: expected FLTTRACE after step, got %v/%d", st.Why, st.What)
	}
	if err := d.WriteWord(pc, vcpu.BreakpointWord); err != nil {
		return err
	}
	// Leave the process stopped at the trace fault; the caller's PIOCRUN
	// (in Cont) releases it.
	d.Ops++
	return d.F.Ioctl(procfs.PIOCRUN, &kernel.RunFlags{ClearFault: true})
}

// StepInstr executes exactly one instruction.
func (d *Debugger) StepInstr() (kernel.ProcStatus, error) {
	st, err := d.Status()
	if err != nil {
		return st, err
	}
	if st.Flags&kernel.PRIstop == 0 {
		return st, fmt.Errorf("dbg: process is not stopped")
	}
	if st.Why == kernel.WhyFaulted && st.What == types.FLTBPT {
		if orig, ok := d.breaks[st.Reg.PC]; ok {
			// Step the real instruction, keeping the breakpoint planted
			// for future hits.
			if err := d.WriteWord(st.Reg.PC, orig); err != nil {
				return st, err
			}
			defer d.WriteWord(st.Reg.PC, vcpu.BreakpointWord)
		}
	}
	d.Ops++
	if err := d.F.Ioctl(procfs.PIOCRUN, &kernel.RunFlags{ClearFault: true, Step: true}); err != nil {
		return st, err
	}
	d.Ops++
	var out kernel.ProcStatus
	err = d.F.Ioctl(procfs.PIOCWSTOP, &out)
	return out, err
}
