package tools_test

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/tools"
	"repro/internal/types"
	"repro/internal/vfs"
)

func TestUsageSampling(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("worker2", `
	la r6, buf
	movi r7, 0
loop:	st r7, [r6]
	addi r6, 0x1000
	addi r7, 1
	cmpi r7, 4
	jne loop
	movi r0, SYS_getpid
	syscall
spin:	jmp spin
.bss
buf:	.space 20480
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.OpenProc(p.Pid, vfs.ORead, types.RootCred())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var out strings.Builder
	mon := &tools.UsageMonitor{F: f, Out: &out}
	s1, err := mon.Report(s.K.Now())
	if err != nil {
		t.Fatal(err)
	}
	s.Run(50)
	s2, err := mon.Report(s.K.Now())
	if err != nil {
		t.Fatal(err)
	}
	if s2.Usage.UserTicks <= s1.Usage.UserTicks {
		t.Fatal("user time should advance between samples")
	}
	if s2.ModifiedPages() < 4 {
		t.Fatalf("modified pages = %d, want >= 4 (the strided stores)", s2.ModifiedPages())
	}
	if s2.Usage.MinorFaults < 4 {
		t.Fatalf("minor faults = %d", s2.Usage.MinorFaults)
	}
	if !strings.Contains(out.String(), "pages modified") {
		t.Fatalf("report output:\n%s", out.String())
	}
	s.K.PostSignal(p, types.SIGKILL)
	s.WaitExit(p)
}
