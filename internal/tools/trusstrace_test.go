package tools_test

import (
	"sort"
	"strings"
	"testing"

	"repro"
	"repro/internal/rfs"
	"repro/internal/tools"
	"repro/internal/types"
)

// The cmd/truss demonstration workload: file I/O, a fork, a failing open.
const trussDemoProg = `
	movi r0, SYS_getpid
	syscall
	movi r0, SYS_creat
	la r1, path
	movi r2, 0x1B6
	syscall
	mov r6, r0
	movi r0, SYS_write
	mov r1, r6
	la r2, msg
	movi r3, 6
	syscall
	movi r0, SYS_close
	mov r1, r6
	syscall
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_getuid	; child
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
parent:
	movi r0, SYS_wait
	movi r1, 0
	syscall
	movi r0, SYS_open	; fails: ENOENT
	la r1, nopath
	movi r2, 1
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
.data
path:	.asciz "/tmp/truss.out"
msg:	.ascii "hello\n"
nopath:	.asciz "/no/such"
`

// runDemoTruss boots a fresh system, spawns the demo and trusses it with the
// given configuration, returning the report text. configure may adjust the
// tracer (and gets the system, e.g. to point tr.Client at an rfs mount).
func runDemoTruss(t *testing.T, configure func(s *repro.System, tr *tools.Truss)) string {
	t.Helper()
	s := repro.NewSystem()
	if err := s.Install("/bin/demo", trussDemoProg, 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	p, err := s.Spawn("/bin/demo", nil, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	tr := tools.NewTruss(s, &out, types.RootCred())
	configure(s, tr)
	if err := tr.TraceToExit(p, 10_000_000); err != nil {
		t.Fatalf("truss: %v", err)
	}
	if tr.Summary {
		tr.WriteSummary(&out)
	}
	return out.String()
}

// TestTrussTraceMatchesLegacy pins the headline property of the trace-mode
// tracer: reading the report back from the kernel event ring reproduces the
// stop-and-poll loop's output byte for byte, without ever stopping the
// target.
func TestTrussTraceMatchesLegacy(t *testing.T) {
	legacy := runDemoTruss(t, func(s *repro.System, tr *tools.Truss) { tr.UseTrace = false })
	traced := runDemoTruss(t, func(s *repro.System, tr *tools.Truss) { tr.UseTrace = true })
	if legacy != traced {
		t.Fatalf("trace-mode report diverges from legacy:\n--- legacy ---\n%s--- trace ---\n%s",
			legacy, traced)
	}
	for _, want := range []string{
		`creat("/tmp/truss.out", 0x1b6)`,
		"Received signal SIGCHLD",
		`open("/no/such", 0x1) = -1 ENOENT`,
		"_exit(0)",
	} {
		if !strings.Contains(traced, want) {
			t.Errorf("report missing %q:\n%s", want, traced)
		}
	}
}

// TestTrussTraceSummaryMatchesLegacy: the -c accounting agrees too, with
// follow-forks exercising child adoption from fork events.
func TestTrussTraceSummaryMatchesLegacy(t *testing.T) {
	conf := func(useTrace bool) func(*repro.System, *tools.Truss) {
		return func(s *repro.System, tr *tools.Truss) {
			tr.UseTrace = useTrace
			tr.Summary = true
			tr.FollowForks = true
		}
	}
	legacy := runDemoTruss(t, conf(false))
	traced := runDemoTruss(t, conf(true))
	if legacy != traced {
		t.Fatalf("summary diverges:\n--- legacy ---\n%s--- trace ---\n%s", legacy, traced)
	}
}

// TestTrussTraceFollowSameLines: in follow mode the two mechanisms may order
// a child's final line differently (the legacy loop prints at the exit stop,
// the trace at the exit event), but they must report exactly the same set of
// lines.
func TestTrussTraceFollowSameLines(t *testing.T) {
	conf := func(useTrace bool) func(*repro.System, *tools.Truss) {
		return func(s *repro.System, tr *tools.Truss) {
			tr.UseTrace = useTrace
			tr.FollowForks = true
		}
	}
	sorted := func(s string) []string {
		lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
		sort.Strings(lines)
		return lines
	}
	legacy := sorted(runDemoTruss(t, conf(false)))
	traced := sorted(runDemoTruss(t, conf(true)))
	if len(legacy) != len(traced) {
		t.Fatalf("line counts differ: %d legacy, %d traced", len(legacy), len(traced))
	}
	for i := range legacy {
		if legacy[i] != traced[i] {
			t.Fatalf("line sets differ at %q vs %q", legacy[i], traced[i])
		}
	}
	if !strings.Contains(strings.Join(traced, "\n"), "(following new process") {
		t.Fatal("follow mode never adopted the child")
	}
}

// TestTrussTraceRemote runs the trace-mode tracer entirely over an rfs
// mount: the control message, the trace file and the address-space reads all
// cross the wire, and the report still matches the local one.
func TestTrussTraceRemote(t *testing.T) {
	local := runDemoTruss(t, func(s *repro.System, tr *tools.Truss) { tr.UseTrace = true })
	remote := runDemoTruss(t, func(s *repro.System, tr *tools.Truss) {
		tr.UseTrace = true
		srv := rfs.NewServer(s.NS, nil)
		tr.Client = rfs.NewClient(rfs.LocalTransport{S: srv}, types.RootCred())
	})
	if local != remote {
		t.Fatalf("remote report diverges from local:\n--- local ---\n%s--- remote ---\n%s",
			local, remote)
	}
}
