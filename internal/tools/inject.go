package tools

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/types"
	"repro/internal/vcpu"
)

// InjectSyscall forces the stopped target to execute a system call on the
// debugger's behalf, without the process's knowledge or consent — the
// paper's answer to everything /proc does not provide directly ("for the
// remainder, a debugger can force a process to execute system calls on the
// debugger's behalf").
//
// Mechanics: save the registers and the instruction at PC; write a SYSCALL
// instruction there; load the call number and arguments into the registers;
// trace the call's exit; run; collect the results at the exit stop; restore
// the instruction, the registers and the trace set. The process resumes
// exactly where it was, none the wiser.
//
// The target must be stopped on a /proc event of interest.
func (d *Debugger) InjectSyscall(num int, args ...uint32) (ret uint32, errno kernel.Errno, err error) {
	if len(args) > 5 {
		return 0, 0, fmt.Errorf("dbg: too many syscall arguments")
	}
	st, err := d.Status()
	if err != nil {
		return 0, 0, err
	}
	if st.Flags&kernel.PRIstop == 0 {
		return 0, 0, fmt.Errorf("dbg: target must be stopped")
	}
	savedRegs := st.Reg
	pc := st.Reg.PC
	savedWord, err := d.ReadWord(pc)
	if err != nil {
		return 0, 0, err
	}
	// Save and replace the exit trace set.
	var savedExit types.SysSet
	d.Ops++
	if err := d.F.Ioctl(procfs.PIOCGEXIT, &savedExit); err != nil {
		return 0, 0, err
	}
	var onlyThis types.SysSet
	onlyThis.Add(num)
	d.Ops++
	if err := d.F.Ioctl(procfs.PIOCSEXIT, &onlyThis); err != nil {
		return 0, 0, err
	}
	restore := func() {
		d.WriteWord(pc, savedWord)
		d.SetRegs(savedRegs)
		d.Ops++
		d.F.Ioctl(procfs.PIOCSEXIT, &savedExit)
	}
	// Plant the SYSCALL instruction and load the registers.
	if err := d.WriteWord(pc, vcpu.Encode(vcpu.OpSYSCALL, 0, 0, 0)); err != nil {
		restore()
		return 0, 0, err
	}
	regs := savedRegs
	regs.R[0] = uint32(num)
	for i, a := range args {
		regs.R[i+1] = a
	}
	if err := d.SetRegs(regs); err != nil {
		restore()
		return 0, 0, err
	}
	// Run to the exit stop. If the current stop is a faulted one, the
	// fault must be cleared or the instruction would be re-processed.
	d.Ops++
	if err := d.F.Ioctl(procfs.PIOCRUN, &kernel.RunFlags{ClearFault: true, ClearSig: true}); err != nil {
		restore()
		return 0, 0, err
	}
	var out kernel.ProcStatus
	d.Ops++
	if err := d.F.Ioctl(procfs.PIOCWSTOP, &out); err != nil {
		restore()
		return 0, 0, err
	}
	if out.Why != kernel.WhySysExit || out.What != num {
		restore()
		return 0, 0, fmt.Errorf("dbg: unexpected stop %v/%d during injection", out.Why, out.What)
	}
	if out.Reg.PSW&vcpu.FlagC != 0 {
		errno = kernel.Errno(out.Reg.R[0])
	} else {
		ret = out.Reg.R[0]
	}
	// Put everything back; the target remains stopped at the original PC
	// with its original registers.
	restore()
	return ret, errno, nil
}
