package tools_test

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/tools"
	"repro/internal/types"
)

// The debugger finds a shared library's symbol table through PIOCOPENM —
// without knowing the library's pathname — and plants a breakpoint on a
// library function that the program calls through the mapped address.
func TestDebuggerBreaksInSharedLibrary(t *testing.T) {
	s := repro.NewSystem()
	// The library: one function that doubles r1.
	if err := s.Install("/lib/libdouble", `
lib_double:
	add r1, r1
	ret
`, 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	// The program calls the library at its conventional mapped base.
	p, err := s.SpawnProg("libuser", `
.lib "libdouble"
.entry main
main:
	movi r1, 21
	movi r2, 0		; the library text base: 0xC0000000
	movhi r2, 0xC000
	callr r2
	movi r0, SYS_exit	; exit with the doubled value
	syscall
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	d, err := tools.NewDebugger(s, p, types.RootCred())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Before loading mapped symbols, the library function is unknown.
	if _, ok := d.Lookup("lib_double"); ok {
		t.Fatal("library symbol should not be known yet")
	}
	if err := d.LoadMappedSymbols(); err != nil {
		t.Fatal(err)
	}
	fn, ok := d.Lookup("lib_double")
	if !ok {
		t.Fatal("PIOCOPENM symbol loading failed")
	}
	if fn != 0xC0000000 {
		t.Fatalf("lib_double relocated to %#x, want 0xC0000000", fn)
	}
	// Break on it; the hit proves both the relocation and the COW write
	// into the library's read/exec text.
	if err := d.SetBreak(fn); err != nil {
		t.Fatal(err)
	}
	st, err := d.Cont()
	if err != nil {
		t.Fatal(err)
	}
	if st.Reg.PC != fn || st.Reg.R[1] != 21 {
		t.Fatalf("stop: pc=%#x r1=%d", st.Reg.PC, st.Reg.R[1])
	}
	if got := d.SymAt(st.Reg.PC); got != "lib_double" {
		t.Fatalf("SymAt = %q", got)
	}
	if err := d.ClearBreak(fn); err != nil {
		t.Fatal(err)
	}
	d.Close()
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, code := kernel.WIfExited(status); code != 42 {
		t.Fatalf("code = %d, want 42", code)
	}
	// The library file on disk is unscathed (COW).
	data, _ := s.Client(types.RootCred()).ReadFile("/lib/libdouble")
	if strings.Contains(string(data), "\x24\x00\x00\x00") {
		t.Fatal("breakpoint leaked into the library file")
	}
}
