package tools

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/kernel"
	"repro/internal/ktrace"
	"repro/internal/procfs"
	"repro/internal/procfs2"
	"repro/internal/types"
	"repro/internal/vfs"
)

// The trace-mode tracer: instead of making every system call entry, exit,
// signal and fault an event of interest and releasing the target from each
// stop, it enables the kernel's event ring with one control message and
// reads the report back from /procx/<pid>/trace. The target never stops, so
// the per-event cost drops from a stop/poll/run round trip to a ring append.

// attachTrace enables the event ring and opens the trace and as files. A
// child adopted after it already exited cannot take the control message, but
// its ring — inherited from the traced parent at fork — is still readable on
// the zombie, so the enable failure matters only for a live target.
func (tr *Truss) attachTrace(p *kernel.Proc) error {
	cl := tr.Client
	if cl == nil {
		cl = tr.Sys.Client(tr.Cred)
	}
	base := "/procx/" + procfs.PidName(p.Pid)
	ctl, err := cl.Open(base+"/ctl", vfs.OWrite)
	if err == nil {
		capacity := tr.TraceCap
		if capacity <= 0 {
			capacity = ktrace.DefaultCap
		}
		_, werr := ctl.Write((&procfs2.CtlBuf{}).Trace(capacity).Bytes())
		ctl.Close()
		err = werr
	}
	if err != nil && p.Alive() {
		return err
	}
	tf, err := cl.Open(base+"/trace", vfs.ORead)
	if err != nil {
		return err
	}
	as, err := cl.Open(base+"/as", vfs.ORead)
	if err != nil {
		tf.Close()
		return err
	}
	tr.targets[p.Pid] = &trussTarget{
		p: p, f: as, tf: tf,
		entry: map[int]string{}, calls: map[int]*pendCall{},
	}
	return nil
}

// runTrace drives the system until every traced process has exited. Each
// pass drains the new events from every target's trace file, merges them
// into one globally ordered report, and only then advances the scheduler.
func (tr *Truss) runTrace(maxSteps int) error {
	steps := 0
	buf := make([]byte, 256*ktrace.EventSize)
	type tev struct {
		tgt *trussTarget
		e   ktrace.Event
	}
	// Merge by emission time; within a tie, by pid then sequence. Events of
	// one process are already in sequence order, so this is a stable global
	// ordering across runs.
	merge := func(all []tev) {
		sort.SliceStable(all, func(i, j int) bool {
			a, b := all[i].e, all[j].e
			if a.Time != b.Time {
				return a.Time < b.Time
			}
			if a.Pid != b.Pid {
				return a.Pid < b.Pid
			}
			return a.Seq < b.Seq
		})
	}
	for len(tr.targets) > 0 {
		pids := make([]int, 0, len(tr.targets))
		for pid := range tr.targets {
			pids = append(pids, pid)
		}
		sort.Ints(pids)
		var all []tev
		for _, pid := range pids {
			tgt := tr.targets[pid]
			evs, err := tr.drainTrace(tgt, buf)
			for _, e := range evs {
				all = append(all, tev{tgt, e})
			}
			if err != nil {
				return err
			}
		}
		merge(all)
		progress := len(all) > 0
		for i := 0; i < len(all); i++ {
			before := len(tr.targets)
			tr.traceEvent(all[i].tgt, all[i].e)
			if len(tr.targets) == before {
				continue
			}
			// A child was adopted mid-stream: fold its backlog into the
			// remainder of this pass so the time ordering holds.
			known := make(map[*trussTarget]bool, len(all))
			for _, te := range all {
				known[te.tgt] = true
			}
			rest := all[i+1:]
			for _, tgt := range tr.targets {
				if known[tgt] {
					continue
				}
				evs, err := tr.drainTrace(tgt, buf)
				if err != nil {
					return err
				}
				for _, e := range evs {
					rest = append(rest, tev{tgt, e})
				}
			}
			merge(rest)
			all = append(all[:i+1], rest...)
		}
		for pid, tgt := range tr.targets {
			if !tgt.done && tgt.p.State() == kernel.PGone && len(tgt.pend) == 0 {
				// The target is gone from the process table and its drained
				// ring carried no final event: nothing more will ever
				// arrive, so stepping and re-polling would hang. Report the
				// loss and the exit status we can still see, and move on.
				if !tr.Summary {
					tr.printf("%5d: (target lost: process reaped before its trace completed)\n", pid)
				}
				tr.reportExitStatus(pid, tgt.p.ExitStatus)
				tgt.done = true
			}
			if tgt.done {
				tgt.tf.Close()
				tgt.f.Close()
				delete(tr.targets, pid)
				progress = true
			}
		}
		if !progress {
			if !tr.Sys.Step() && !tr.Sys.K.TimersPending() {
				return fmt.Errorf("truss: nothing runnable and %d target(s) remain", len(tr.targets))
			}
			steps++
			if steps > maxSteps {
				return fmt.Errorf("truss: exceeded %d steps", maxSteps)
			}
		}
	}
	return nil
}

// drainTrace reads and decodes every event currently available from one
// target's trace file.
func (tr *Truss) drainTrace(tgt *trussTarget, buf []byte) ([]ktrace.Event, error) {
	var evs []ktrace.Event
	for {
		n, err := tgt.tf.Pread(buf, tgt.off)
		if n > 0 {
			tgt.off += int64(n)
			tgt.pend = append(tgt.pend, buf[:n]...)
			for len(tgt.pend) >= ktrace.EventSize {
				e, derr := ktrace.DecodeEvent(tgt.pend)
				if derr != nil {
					return evs, derr
				}
				tgt.pend = tgt.pend[ktrace.EventSize:]
				evs = append(evs, e)
			}
		}
		if err != nil {
			if isEOF(err) {
				return evs, nil
			}
			if errors.Is(err, ktrace.ErrDataLoss) {
				return evs, fmt.Errorf("truss: pid %d: trace data lost; raise TraceCap", tgt.p.Pid)
			}
			// Anything else is the transport going away under us (a dead
			// rfs connection, an invalidated /proc descriptor): name it,
			// so the tool can exit with a diagnostic instead of a raw
			// protocol error.
			return evs, fmt.Errorf("truss: pid %d: trace transport lost (%v)", tgt.p.Pid, err)
		}
		if n == 0 {
			return evs, nil
		}
	}
}

// isEOF matches end-of-file both locally and through an rfs mount.
func isEOF(err error) bool {
	return err == vfs.EOF || (err != nil && err.Error() == "EOF")
}

// traceEvent turns one kernel event into the same report line the legacy
// stop-and-poll loop would have produced.
func (tr *Truss) traceEvent(tgt *trussTarget, e ktrace.Event) {
	switch e.Kind {
	case ktrace.KSysEntry:
		pc := &pendCall{num: int(e.What), args: e.Args,
			str: map[int]string{}, strOK: map[int]bool{}}
		tgt.calls[pc.num] = pc
		tgt.last = pc

	case ktrace.KArgStr:
		if tgt.last != nil {
			chunk, off, complete := ktrace.DecodeArgStr(e)
			i := int(e.What)
			if off == len(tgt.last.str[i]) {
				tgt.last.str[i] += chunk
			}
			if complete {
				tgt.last.strOK[i] = true
			}
		}

	case ktrace.KSysExit:
		num := int(e.What)
		tr.counts[num]++
		failed := e.B != 0
		if failed {
			tr.errors[num]++
		}
		pc := tgt.calls[num]
		delete(tgt.calls, num)
		if !tr.Summary {
			call := kernel.SyscallName(num) + "(...)"
			if pc != nil {
				call = tr.renderCall(num, pc.args, func(i int, addr uint32) (string, bool) {
					// Prefer the inline capture; fall back to the address
					// space for strings that did not fit, then to whatever
					// partial capture exists.
					if pc.strOK[i] {
						return pc.str[i], true
					}
					if s, ok := tr.readString(tgt, addr); ok {
						return s, true
					}
					if s, exists := pc.str[i]; exists {
						return s, true
					}
					return "", false
				})
			}
			if failed {
				tr.printf("%5d: %s = -1 %s\n", e.Pid, call, kernel.Errno(e.B))
			} else {
				tr.printf("%5d: %s = %d\n", e.Pid, call, int32(e.A))
			}
		}
		if tr.FollowForks && (num == kernel.SysFork || num == kernel.SysVfork) &&
			!failed && int32(e.A) > 0 {
			childPid := int(int32(e.A))
			if child := tr.Sys.K.Proc(childPid); child != nil && !child.System {
				if _, dup := tr.targets[childPid]; !dup {
					if err := tr.attachTrace(child); err == nil && !tr.Summary {
						tr.printf("%5d: (following new process %d)\n", e.Pid, childPid)
					}
				}
			}
		}

	case ktrace.KSigPost:
		sig := int(e.What)
		if sig == types.SIGKILL {
			return // the legacy mechanism cannot trace SIGKILL; match it
		}
		tr.signals[sig]++
		if !tr.Summary {
			tr.printf("%5d:     Received signal %s\n", e.Pid, types.SigName(sig))
		}

	case ktrace.KFault:
		flt := int(e.What)
		tr.faults[flt]++
		if !tr.Summary {
			tr.printf("%5d:     Incurred fault %s\n", e.Pid, types.FltName(flt))
		}

	case ktrace.KExit:
		tr.reportExitStatus(int(e.Pid), int(e.What))
		tgt.done = true
	}
}
