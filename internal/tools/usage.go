package tools

import (
	"fmt"
	"io"

	"repro/internal/procfs"
	"repro/internal/vfs"
)

// UsageSample is one observation of a process's resource usage and page
// data — the paper's proposed interface "whereby a performance monitor can
// sample page-level referenced and modified information for a process on
// intervals at will".
type UsageSample struct {
	Clock int64
	Usage procfs.PrUsage
	Pages []procfs.PageData
}

// SampleUsage takes one sample through an open /proc file.
func SampleUsage(f *vfs.File, clock int64) (UsageSample, error) {
	s := UsageSample{Clock: clock}
	if err := f.Ioctl(procfs.PIOCUSAGE, &s.Usage); err != nil {
		return s, err
	}
	if err := f.Ioctl(procfs.PIOCPGD, &s.Pages); err != nil {
		return s, err
	}
	return s, nil
}

// ModifiedPages totals the privatized (written) pages across the mappings.
func (s UsageSample) ModifiedPages() int {
	n := 0
	for _, pd := range s.Pages {
		n += pd.PrivatePages
	}
	return n
}

// UsageMonitor samples a process at intervals, driving the simulation
// between samples, and reports per-interval deltas.
type UsageMonitor struct {
	F    *vfs.File
	Out  io.Writer
	prev *UsageSample
}

// Report takes a sample and prints the deltas since the previous one.
func (m *UsageMonitor) Report(clock int64) (UsageSample, error) {
	s, err := SampleUsage(m.F, clock)
	if err != nil {
		return s, err
	}
	if m.prev != nil && m.Out != nil {
		p := m.prev
		fmt.Fprintf(m.Out,
			"t+%06d: +%4d utime +%4d stime +%3d syscalls +%3d faults +%3d minor +%2d cow, %d pages modified\n",
			s.Clock,
			s.Usage.UserTicks-p.Usage.UserTicks,
			s.Usage.SysTicks-p.Usage.SysTicks,
			s.Usage.Syscalls-p.Usage.Syscalls,
			s.Usage.Faults-p.Usage.Faults,
			s.Usage.MinorFaults-p.Usage.MinorFaults,
			s.Usage.COWFaults-p.Usage.COWFaults,
			s.ModifiedPages(),
		)
	}
	m.prev = &s
	return s, nil
}
