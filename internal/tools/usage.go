package tools

import (
	"fmt"
	"io"

	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/vfs"
)

// UsageSample is one observation of a process's resource usage and page
// data — the paper's proposed interface "whereby a performance monitor can
// sample page-level referenced and modified information for a process on
// intervals at will".
type UsageSample struct {
	Clock int64
	Usage procfs.PrUsage
	Pages []procfs.PageData
}

// SampleUsage takes one sample through an open /proc file.
func SampleUsage(f *vfs.File, clock int64) (UsageSample, error) {
	s := UsageSample{Clock: clock}
	if err := f.Ioctl(procfs.PIOCUSAGE, &s.Usage); err != nil {
		return s, err
	}
	if err := f.Ioctl(procfs.PIOCPGD, &s.Pages); err != nil {
		return s, err
	}
	return s, nil
}

// ModifiedPages totals the privatized (written) pages across the mappings.
func (s UsageSample) ModifiedPages() int {
	n := 0
	for _, pd := range s.Pages {
		n += pd.PrivatePages
	}
	return n
}

func usageHeader(w io.Writer) {
	fmt.Fprintf(w, "%5s %-12s %6s %6s %8s %6s %6s %5s %5s %5s\n",
		"PID", "COMD", "UTIME", "STIME", "SYSCALLS", "FAULTS", "MINFLT", "COW", "VCTX", "ICTX")
}

func usageLine(w io.Writer, info kernel.PSInfo, u procfs.PrUsage) {
	fmt.Fprintf(w, "%5d %-12s %6d %6d %8d %6d %6d %5d %5d %5d\n",
		info.Pid, info.Comm, u.UserTicks, u.SysTicks, u.Syscalls,
		u.Faults, u.MinorFaults, u.COWFaults, u.VolCtx, u.InvolCtx)
}

// FleetUsage prints one resource-usage line per live process using the
// batched snapshot: one open of /proc, one PIOCSNAP with usage records.
// Output is line-identical to FleetUsageLegacy on a static process table.
func FleetUsage(cl ProcClient, w io.Writer) error {
	sn := procfs.PrSnap{WithUsage: true}
	if err := Snapshot(cl, &sn); err != nil {
		return err
	}
	usageHeader(w)
	for _, rec := range sn.Procs {
		if rec.Info.State == 'Z' {
			// The per-pid path skips zombies: PIOCUSAGE fails once the
			// process has exited.
			continue
		}
		usageLine(w, rec.Info, rec.Usage)
	}
	return nil
}

// FleetUsageLegacy is the per-pid sweep: readdir /proc, then one open and
// two ioctls (PIOCPSINFO, PIOCUSAGE) per process.
func FleetUsageLegacy(cl ProcClient, w io.Writer) error {
	ents, err := cl.ReadDir("/proc")
	if err != nil {
		return err
	}
	usageHeader(w)
	for _, e := range ents {
		f, err := cl.Open("/proc/"+e.Name, vfs.ORead)
		if err != nil {
			continue // exited between readdir and open
		}
		var info kernel.PSInfo
		var u procfs.PrUsage
		err = f.Ioctl(procfs.PIOCPSINFO, &info)
		if err == nil {
			err = f.Ioctl(procfs.PIOCUSAGE, &u)
		}
		f.Close()
		if err != nil {
			continue // became a zombie under the open handle
		}
		usageLine(w, info, u)
	}
	return nil
}

// UsageMonitor samples a process at intervals, driving the simulation
// between samples, and reports per-interval deltas.
type UsageMonitor struct {
	F    *vfs.File
	Out  io.Writer
	prev *UsageSample
}

// Report takes a sample and prints the deltas since the previous one.
func (m *UsageMonitor) Report(clock int64) (UsageSample, error) {
	s, err := SampleUsage(m.F, clock)
	if err != nil {
		return s, err
	}
	if m.prev != nil && m.Out != nil {
		p := m.prev
		fmt.Fprintf(m.Out,
			"t+%06d: +%4d utime +%4d stime +%3d syscalls +%3d faults +%3d minor +%2d cow, %d pages modified\n",
			s.Clock,
			s.Usage.UserTicks-p.Usage.UserTicks,
			s.Usage.SysTicks-p.Usage.SysTicks,
			s.Usage.Syscalls-p.Usage.Syscalls,
			s.Usage.Faults-p.Usage.Faults,
			s.Usage.MinorFaults-p.Usage.MinorFaults,
			s.Usage.COWFaults-p.Usage.COWFaults,
			s.ModifiedPages(),
		)
	}
	m.prev = &s
	return s, nil
}
