package tools_test

import (
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/tools"
	"repro/internal/types"
	"repro/internal/vfs"
)

// Force a stopped process to call getpid on the debugger's behalf, without
// its knowledge: its own computation must be unaffected.
func TestInjectGetpid(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("victim", `
	movi r5, 0
loop:	addi r5, 1
	cmpi r5, 10000
	jne loop
	mov r1, r5
	movi r0, SYS_exit
	syscall
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	d, err := tools.NewDebugger(s, p, types.RootCred())
	if err != nil {
		t.Fatal(err)
	}
	s.Run(5)
	if _, err := d.Stop(); err != nil {
		t.Fatal(err)
	}
	before, _ := d.Regs()

	ret, errno, err := d.InjectSyscall(kernel.SysGetpid)
	if err != nil {
		t.Fatal(err)
	}
	if errno != 0 || int(ret) != p.Pid {
		t.Fatalf("injected getpid = %d/%v", ret, errno)
	}
	// The target's registers are exactly as before.
	after, _ := d.Regs()
	if before != after {
		t.Fatalf("registers disturbed:\n%v\n%v", before, after)
	}
	// The target completes its own computation untouched.
	d.Close()
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, code := kernel.WIfExited(status); code != 10000&0xFF {
		t.Fatalf("exit code = %d", code)
	}
}

// Inject an open(2): a descriptor appears in the target's table, the thing
// /proc deliberately does not provide an ioctl for.
func TestInjectOpenCreatesVictimFD(t *testing.T) {
	s := repro.NewSystem()
	s.FS.WriteFile("/tmp/planted", []byte("evidence"), 0o644, 0, 0)
	p, _ := s.SpawnProg("mark", `
loop:	jmp loop
.data
path:	.asciz "/tmp/planted"
`, types.UserCred(100, 10))
	d, err := tools.NewDebugger(s, p, types.RootCred())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s.Run(3)
	if _, err := d.Stop(); err != nil {
		t.Fatal(err)
	}
	path, _ := d.Lookup("path")
	fdsBefore := len(p.FDs())
	ret, errno, err := d.InjectSyscall(kernel.SysOpen, path, vfs.ORead)
	if err != nil {
		t.Fatal(err)
	}
	if errno != 0 {
		t.Fatalf("injected open failed: %v", errno)
	}
	if len(p.FDs()) != fdsBefore+1 {
		t.Fatal("no new descriptor in the victim's table")
	}
	f := p.FD(int(ret))
	if f == nil {
		t.Fatal("returned fd not present")
	}
	buf := make([]byte, 8)
	if _, err := f.Pread(buf, 0); err != nil || string(buf) != "evidence" {
		t.Fatalf("victim's fd reads %q, %v", buf, err)
	}
}

// A failing injected call reports the errno.
func TestInjectReportsErrno(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("failmark", `
loop:	jmp loop
.data
path:	.asciz "/no/such/thing"
`, types.UserCred(100, 10))
	d, err := tools.NewDebugger(s, p, types.RootCred())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s.Run(3)
	if _, err := d.Stop(); err != nil {
		t.Fatal(err)
	}
	path, _ := d.Lookup("path")
	_, errno, err := d.InjectSyscall(kernel.SysOpen, path, vfs.ORead)
	if err != nil {
		t.Fatal(err)
	}
	if errno != kernel.ENOENT {
		t.Fatalf("errno = %v, want ENOENT", errno)
	}
}

// Injection on a running (unstopped) process is refused.
func TestInjectRequiresStop(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("free", "loop:\tjmp loop\n", types.UserCred(100, 10))
	d, err := tools.NewDebugger(s, p, types.RootCred())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s.Run(3)
	if _, _, err := d.InjectSyscall(kernel.SysGetpid); err == nil {
		t.Fatal("injection into a running process should be refused")
	}
}
