package tools_test

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/procfs"
	"repro/internal/procfs2"
	"repro/internal/rfs"
	"repro/internal/tools"
	"repro/internal/types"
	"repro/internal/vfs"
)

// A target that is reaped before its trace completes must not hang the
// tracer: truss reports the loss and the exit status it can still see, and
// returns cleanly. The scenario: the event ring is disabled out from under
// the tracer, so the exit event is never recorded, and the target exits and
// is reaped with the trace forever incomplete.
func TestTrussTraceTargetLost(t *testing.T) {
	s := repro.NewSystem()
	if err := s.Install("/bin/brief", `
	movi r0, SYS_getpid
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
`, 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	p, err := s.Spawn("/bin/brief", nil, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	tr := tools.NewTruss(s, &out, types.RootCred())
	tr.UseTrace = true
	if err := tr.Attach(p); err != nil {
		t.Fatal(err)
	}
	// Sabotage: disable the ring behind the tracer's back.
	ctl, err := s.Client(types.RootCred()).Open(
		"/procx/"+procfs.PidName(p.Pid)+"/ctl", vfs.OWrite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Write((&procfs2.CtlBuf{}).Trace(0).Bytes()); err != nil {
		t.Fatal(err)
	}
	ctl.Close()
	if err := tr.Run(1_000_000); err != nil {
		t.Fatalf("truss did not exit cleanly on a lost target: %v", err)
	}
	report := out.String()
	if !strings.Contains(report, "target lost") {
		t.Fatalf("no loss diagnostic in the report:\n%s", report)
	}
	if !strings.Contains(report, "_exit(0)") {
		t.Fatalf("no exit status in the report:\n%s", report)
	}
}

// A transport that dies mid-trace must surface as a named diagnostic error,
// not a hang or a raw protocol error. The scenario: truss traces through an
// rfs client whose connection disconnects after the attach.
func TestTrussTraceTransportLost(t *testing.T) {
	s := repro.NewSystem()
	if err := s.Install("/bin/demo", trussDemoProg, 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	p, err := s.Spawn("/bin/demo", nil, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	srv := rfs.NewServer(s.NS, nil)
	n := 0
	faults := &rfs.Faults{Plan: func(ord int) rfs.FaultKind {
		n = ord
		if ord >= 8 { // let the attach through, then cut the line
			return rfs.FaultDisconnect
		}
		return rfs.FaultNone
	}}
	ft := &rfs.FaultTransport{Inner: rfs.LocalTransport{S: srv}, Faults: faults}
	var out strings.Builder
	tr := tools.NewTruss(s, &out, types.RootCred())
	tr.UseTrace = true
	tr.Client = rfs.NewClient(ft, types.RootCred())
	err = tr.TraceToExit(p, 1_000_000)
	if err == nil {
		t.Fatalf("truss succeeded across a dead transport (last frame %d):\n%s", n, out.String())
	}
	if !strings.Contains(err.Error(), "trace transport lost") {
		t.Fatalf("undiagnosed transport failure: %v", err)
	}
}
