// Package tools implements the applications the paper describes on top of
// /proc: ps(1) (via PIOCPSINFO), a Figure-1 style directory lister, a
// Figure-2 style memory map reporter, truss(1) (system call tracing via
// entry/exit stops), and a breakpoint debugger — in both its /proc form and
// the obsolete ptrace form the paper compares against.
package tools

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/vfs"
)

// ProcClient is the name-space access the /proc sweeps need: Open and
// ReadDir. Both *vfs.Client and *rfs.Client satisfy it, so every tool here
// runs unmodified against a remote /proc.
type ProcClient interface {
	Open(path string, flags int) (*vfs.File, error)
	ReadDir(path string) ([]vfs.Dirent, error)
}

// Snapshot takes one batched PIOCSNAP through a fresh open of the /proc
// directory: the one-open-one-ioctl protocol the per-pid sweep is measured
// against. The caller seeds sn with the filter, usage flag and any prior
// revision token.
func Snapshot(cl ProcClient, sn *procfs.PrSnap) error {
	f, err := cl.Open("/proc", vfs.ORead)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Ioctl(procfs.PIOCSNAP, sn)
}

func psHeader(w io.Writer) {
	fmt.Fprintf(w, "%5s %5s %4s %4s %2s %8s %6s %s\n",
		"PID", "PPID", "UID", "GID", "S", "VSZ", "TIME", "COMD")
}

func psLine(w io.Writer, info kernel.PSInfo) {
	fmt.Fprintf(w, "%5d %5d %4d %4d %2c %8d %6d %s\n",
		info.Pid, info.PPid, info.UID, info.GID, info.State,
		info.VSize, info.Time, info.Comm)
}

// PS implements ps(1) over the batched snapshot: one open of the /proc
// directory and one PIOCSNAP return every line's worth of data, and the
// whole listing — not just each line — is a true snapshot of the system.
// Output is line-identical to PSLegacy on a static process table.
func PS(cl ProcClient, w io.Writer) error {
	var sn procfs.PrSnap
	if err := Snapshot(cl, &sn); err != nil {
		return err
	}
	psHeader(w)
	for _, rec := range sn.Procs {
		psLine(w, rec.Info)
	}
	return nil
}

// PSLegacy implements the SVR4 ps(1) logic the paper describes: read the
// /proc directory, open each process file read-only, issue the PIOCPSINFO
// request, close the file, and print the result. Because all the
// information for a process is obtained in a single operation, each line is
// a true snapshot of the process, even though the complete listing is not a
// true snapshot of the whole system.
func PSLegacy(cl ProcClient, w io.Writer) error {
	ents, err := cl.ReadDir("/proc")
	if err != nil {
		return err
	}
	psHeader(w)
	for _, e := range ents {
		info, err := PSInfoOf(cl, e.Name)
		if err != nil {
			// The process may have exited between readdir and open.
			continue
		}
		psLine(w, info)
	}
	return nil
}

// PSInfoOf fetches one process's PIOCPSINFO by directory entry name.
func PSInfoOf(cl ProcClient, name string) (kernel.PSInfo, error) {
	f, err := cl.Open("/proc/"+name, vfs.ORead)
	if err != nil {
		return kernel.PSInfo{}, err
	}
	defer f.Close()
	var info kernel.PSInfo
	if err := f.Ioctl(procfs.PIOCPSINFO, &info); err != nil {
		return kernel.PSInfo{}, err
	}
	return info, nil
}

// LsProc renders "ls -l /proc" in the style of the paper's Figure 1.
func LsProc(cl ProcClient, w io.Writer, names func(uid, gid int) (string, string)) error {
	if names == nil {
		names = func(uid, gid int) (string, string) {
			return strconv.Itoa(uid), strconv.Itoa(gid)
		}
	}
	ents, err := cl.ReadDir("/proc")
	if err != nil {
		return err
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
	for _, e := range ents {
		user, group := names(e.Attr.UID, e.Attr.GID)
		fmt.Fprintf(w, "-%s %2d %-8s %-8s %8d %s %s\n",
			vfs.FmtMode(e.Attr.Mode), e.Attr.Nlink, user, group,
			e.Attr.Size, fmtTime(e.Attr.MTime), e.Name)
	}
	return nil
}

// fmtTime renders the simulated clock as a timestamp-like column.
func fmtTime(ticks int64) string {
	return fmt.Sprintf("t+%08d", ticks)
}

// PrMap renders the memory map of a process in the style of the paper's
// Figure 2, using PIOCMAP.
func PrMap(cl ProcClient, pid int, w io.Writer) error {
	f, err := cl.Open("/proc/"+procfs.PidName(pid), vfs.ORead)
	if err != nil {
		return err
	}
	defer f.Close()
	var maps []procfs.PrMap
	if err := f.Ioctl(procfs.PIOCMAP, &maps); err != nil {
		return err
	}
	for _, m := range maps {
		kb := (int64(m.Size) + 1023) / 1024
		attrs := ""
		if m.Shared {
			attrs = " shared"
		}
		kind := ""
		if m.Kind.String() != "" {
			kind = " [" + m.Kind.String() + "]"
		}
		fmt.Fprintf(w, "%08X %6dK %-10s%s%s %s\n", m.Vaddr, kb, m.Prot, attrs, kind, m.Name)
	}
	return nil
}
