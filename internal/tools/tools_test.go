package tools_test

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/tools"
	"repro/internal/types"
)

func TestPSOutput(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("worker", `
loop:	jmp loop
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(5)
	var out strings.Builder
	if err := tools.PS(s.Client(types.RootCred()), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"PID", "sched", "init", "pageout", "worker"} {
		if !strings.Contains(text, want) {
			t.Fatalf("ps output missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "100") {
		t.Fatal("worker uid missing")
	}
	_ = p
}

func TestPSIsPerLineSnapshot(t *testing.T) {
	// Kill a process between readdir and ps's open: its line just drops.
	s := repro.NewSystem()
	p, _ := s.SpawnProg("ephemeral", `
	movi r0, SYS_exit
	movi r1, 0
	syscall
`, types.UserCred(100, 10))
	if _, err := s.WaitExit(p); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := tools.PS(s.Client(types.RootCred()), &out); err != nil {
		t.Fatal(err)
	}
	// init auto-reaped it; ps must not error or show it.
	if strings.Contains(out.String(), "ephemeral") {
		t.Fatal("reaped process still shown")
	}
}

func TestLsProcFigure1(t *testing.T) {
	s := repro.NewSystem()
	s.SpawnProg("app", `
loop:	jmp loop
`, types.UserCred(205, 20))
	s.Run(3)
	names := func(uid, gid int) (string, string) {
		users := map[int]string{0: "root", 205: "weath"}
		groups := map[int]string{0: "root", 20: "staff"}
		u, ok := users[uid]
		if !ok {
			u = "???"
		}
		g, ok := groups[gid]
		if !ok {
			g = "???"
		}
		return u, g
	}
	var out strings.Builder
	if err := tools.LsProc(s.Client(types.RootCred()), &out, names); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines:\n%s", text)
	}
	// Figure 1 shape: -rw------- mode, owner, size, pid name.
	if !strings.HasPrefix(lines[0], "-rw-------") {
		t.Fatalf("first line %q", lines[0])
	}
	if !strings.Contains(text, "00000") || !strings.Contains(text, "00002") {
		t.Fatal("system process entries missing")
	}
	if !strings.Contains(text, "weath") || !strings.Contains(text, "staff") {
		t.Fatal("user/group names missing")
	}
}

func TestPrMapFigure2(t *testing.T) {
	s := repro.NewSystem()
	if err := s.Install("/lib/libx", "fn:\tret\n.data\nd:\t.word 1\n", 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	p, err := s.SpawnProg("mapme", `
.lib "libx"
loop:	jmp loop
.data
msg:	.ascii "hello"
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(3)
	var out strings.Builder
	if err := tools.PrMap(s.Client(types.RootCred()), p.Pid, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"80000000", "read/exec", "read/write",
		"[text]", "[data]", "[stack]", "[break]", "C0000000", "/lib/libx"} {
		if !strings.Contains(text, want) {
			t.Fatalf("prmap output missing %q:\n%s", want, text)
		}
	}
}

func TestTrussBasic(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("traced", `
	movi r0, SYS_getpid
	syscall
	movi r0, SYS_open
	la r1, path
	movi r2, 1
	syscall
	movi r0, SYS_exit
	movi r1, 3
	syscall
.data
path:	.asciz "/etc/init"
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	tr := tools.NewTruss(s, &out, types.RootCred())
	if err := tr.TraceToExit(p, 2_000_000); err != nil {
		t.Fatalf("%v\noutput so far:\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"getpid()",
		`open("/etc/init", 0x1)`,
		"_exit(3)",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("truss output missing %q:\n%s", want, text)
		}
	}
	// Return values appear.
	if !strings.Contains(text, "= "+itoa(p.Pid)) {
		t.Fatalf("getpid return value missing:\n%s", text)
	}
}

func itoa(n int) string {
	return strings.TrimSpace(strings.Replace(strings.Repeat("", 0)+sprintInt(n), "\n", "", -1))
}

func sprintInt(n int) string {
	var b strings.Builder
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	b.Write(digits)
	return b.String()
}

func TestTrussReportsErrno(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("failer", `
	movi r0, SYS_open
	la r1, path
	movi r2, 1
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
.data
path:	.asciz "/no/such/file"
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	tr := tools.NewTruss(s, &out, types.RootCred())
	if err := tr.TraceToExit(p, 2_000_000); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "= -1 ENOENT") {
		t.Fatalf("errno missing:\n%s", out.String())
	}
}

func TestTrussSignalsAndFaults(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("faulty", `
	movi r1, 4
	movi r2, 0
	div r1, r2		; FLTIZDIV -> SIGFPE -> death with core
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	tr := tools.NewTruss(s, &out, types.RootCred())
	if err := tr.TraceToExit(p, 2_000_000); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "Incurred fault FLTIZDIV") {
		t.Fatalf("fault report missing:\n%s", text)
	}
	if !strings.Contains(text, "Received signal SIGFPE") {
		t.Fatalf("signal report missing:\n%s", text)
	}
	if !strings.Contains(text, "killed by SIGFPE - core dumped") {
		t.Fatalf("death report missing:\n%s", text)
	}
}

func TestTrussFollowsForks(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("forker", `
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_getuid	; child does something visible
	syscall
	movi r0, SYS_exit
	movi r1, 9
	syscall
parent:
	movi r0, SYS_wait
	movi r1, 0
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	tr := tools.NewTruss(s, &out, types.RootCred())
	tr.FollowForks = true
	if err := tr.TraceToExit(p, 4_000_000); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "following new process") {
		t.Fatalf("fork not followed:\n%s", text)
	}
	if !strings.Contains(text, "_exit(9)") {
		t.Fatalf("child exit not seen:\n%s", text)
	}
	if !strings.Contains(text, "getuid()") {
		t.Fatalf("child syscall not traced:\n%s", text)
	}
}

func TestDebuggerBreakpoints(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("debugme", `
.entry main
counter_fn:
	la r3, count
	ld r4, [r3]
	addi r4, 1
	st r4, [r3]
	ret
main:
	movi r5, 3
loop:	call counter_fn
	addi r5, -1
	cmpi r5, 0
	jne loop
	movi r0, SYS_exit
	la r3, count
	ld r1, [r3]
	syscall
.data
count:	.word 0
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	d, err := tools.NewDebugger(s, p, types.RootCred())
	if err != nil {
		t.Fatal(err)
	}
	fn, ok := d.Lookup("counter_fn")
	if !ok {
		t.Fatal("symbol lookup failed")
	}
	if err := d.SetBreak(fn); err != nil {
		t.Fatal(err)
	}
	// Hit the breakpoint three times, inspecting the counter each time.
	for hit := 0; hit < 3; hit++ {
		st, err := d.Cont()
		if err != nil {
			t.Fatalf("hit %d: %v", hit, err)
		}
		if st.Why != kernel.WhyFaulted || st.What != types.FLTBPT {
			t.Fatalf("hit %d: why=%v what=%d", hit, st.Why, st.What)
		}
		if st.Reg.PC != fn {
			t.Fatalf("hit %d: pc=%#x want %#x", hit, st.Reg.PC, fn)
		}
		if got := d.SymAt(st.Reg.PC); got != "counter_fn" {
			t.Fatalf("SymAt = %q", got)
		}
		// The counter has been incremented hit times so far.
		cnt, _ := d.Lookup("count")
		mem, err := d.ReadMem(cnt, 4)
		if err != nil {
			t.Fatal(err)
		}
		if int(mem[3]) != hit {
			t.Fatalf("hit %d: count=%d", hit, mem[3])
		}
	}
	// Lift the breakpoint and run to completion: exit code = 3.
	if err := d.ClearBreak(fn); err != nil {
		t.Fatal(err)
	}
	d.Close()
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, code := kernel.WIfExited(status); code != 3 {
		t.Fatalf("exit code = %d", code)
	}
}

func TestDebuggerSingleStep(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("stepme", `
	movi r1, 1
	movi r2, 2
	movi r3, 3
	movi r0, SYS_exit
	movi r1, 0
	syscall
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	d, err := tools.NewDebugger(s, p, types.RootCred())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	st, err := d.Stop()
	if err != nil {
		t.Fatal(err)
	}
	pc := st.Reg.PC
	for i := 1; i <= 3; i++ {
		st, err = d.StepInstr()
		if err != nil {
			t.Fatal(err)
		}
		if st.Reg.PC != pc+uint32(4*i) {
			t.Fatalf("step %d: pc=%#x", i, st.Reg.PC)
		}
	}
	regs, err := d.Regs()
	if err != nil {
		t.Fatal(err)
	}
	if regs.R[1] != 1 || regs.R[2] != 2 || regs.R[3] != 3 {
		t.Fatalf("regs after 3 steps: %+v", regs)
	}
}

func TestDebuggerModifiesVariables(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("patchme", `
	la r3, value
	ld r1, [r3]
	movi r0, SYS_exit
	syscall
.data
value:	.word 7
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	d, err := tools.NewDebugger(s, p, types.RootCred())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Stop(); err != nil {
		t.Fatal(err)
	}
	addr, _ := d.Lookup("value")
	if err := d.WriteMem(addr, []byte{0, 0, 0, 42}); err != nil {
		t.Fatal(err)
	}
	d.Close()
	status, _ := s.WaitExit(p)
	if _, code := kernel.WIfExited(status); code != 42 {
		t.Fatalf("exit code = %d, want the patched 42", code)
	}
}

func TestPtraceDebuggerBaseline(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("ptme", `
.entry main
fn:	addi r4, 1
	ret
main:	movi r5, 2
loop:	call fn
	addi r5, -1
	cmpi r5, 0
	jne loop
	movi r0, SYS_exit
	movi r1, 0
	syscall
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	c := s.K.PtraceAttach(p)
	d := tools.NewPtraceDebugger(c)
	syms, _ := p.ImageSyms()
	var fn uint32
	for _, sym := range syms {
		if sym.Name == "fn" {
			fn = sym.Value
		}
	}
	// ptrace needs the child stopped before it can operate: nudge it.
	s.K.PostSignal(p, types.SIGTRAP)
	if err := d.WaitTrap(2_000_000); err != nil {
		t.Fatal(err)
	}
	if err := d.SetBreak(fn); err != nil {
		t.Fatal(err)
	}
	for hit := 0; hit < 2; hit++ {
		if err := d.Cont(2_000_000); err != nil {
			t.Fatalf("hit %d: %v", hit, err)
		}
		regs, err := d.Regs()
		if err != nil {
			t.Fatal(err)
		}
		if regs.PC != fn {
			t.Fatalf("hit %d: pc=%#x", hit, regs.PC)
		}
	}
	if err := d.ClearBreak(fn); err != nil {
		t.Fatal(err)
	}
	if err := c.Cont(0); err != nil {
		t.Fatal(err)
	}
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatal(err)
	}
	if ok, code := kernel.WIfExited(status); !ok || code != 0 {
		t.Fatalf("status = %#x", status)
	}
	if d.Ops() == 0 {
		t.Fatal("ops counter should count ptrace calls")
	}
}

func TestPtraceWordAtATimeCosts(t *testing.T) {
	// The efficiency claim in miniature: reading 4KiB costs ~1024 ptrace
	// ops but one /proc read.
	s := repro.NewSystem()
	p, err := s.SpawnProg("bulk", `
loop:	jmp loop
.data
blob:	.space 4096
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	c := s.K.PtraceAttach(p)
	d := tools.NewPtraceDebugger(c)
	s.K.PostSignal(p, types.SIGTRAP)
	if err := d.WaitTrap(2_000_000); err != nil {
		t.Fatal(err)
	}
	syms, _ := p.ImageSyms()
	var blob uint32
	for _, sym := range syms {
		if sym.Name == "blob" {
			blob = sym.Value
		}
	}
	before := d.Ops()
	if _, err := d.ReadMem(blob, 4096); err != nil {
		t.Fatal(err)
	}
	ptraceOps := d.Ops() - before

	dbg, err := tools.NewDebugger(s, p, types.RootCred())
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()
	opsBefore := dbg.Ops
	if _, err := dbg.ReadMem(blob, 4096); err != nil {
		t.Fatal(err)
	}
	procOps := dbg.Ops - opsBefore

	if ptraceOps < 1024 {
		t.Fatalf("ptrace ops = %d, want ~1024", ptraceOps)
	}
	if procOps != 1 {
		t.Fatalf("proc ops = %d, want 1", procOps)
	}
}

func TestTrussSummaryMode(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("summary", `
	movi r5, 5
loop:	movi r0, SYS_getpid
	syscall
	addi r5, -1
	cmpi r5, 0
	jne loop
	movi r0, SYS_open
	la r1, nopath
	movi r2, 1
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
.data
nopath:	.asciz "/missing"
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	tr := tools.NewTruss(s, &out, types.RootCred())
	tr.Summary = true
	if err := tr.TraceToExit(p, 2_000_000); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("summary mode should print nothing during the run:\n%s", out.String())
	}
	if tr.Counts(kernel.SysGetpid) != 5 {
		t.Fatalf("getpid count = %d", tr.Counts(kernel.SysGetpid))
	}
	tr.WriteSummary(&out)
	text := out.String()
	if !strings.Contains(text, "getpid") || !strings.Contains(text, "5") {
		t.Fatalf("summary table:\n%s", text)
	}
	if !strings.Contains(text, "open") {
		t.Fatalf("open missing from summary:\n%s", text)
	}
}
