package tools

import (
	"fmt"
	"io"

	"repro"
	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/types"
	"repro/internal/vcpu"
	"repro/internal/vfs"
)

// Truss traces the execution of processes, producing a symbolic report of
// the system calls they execute, the faults they encounter and the signals
// they receive — the interception of system calls with /proc that the paper
// says is "at the heart of truss(1)". It requires no symbol information, can
// optionally follow children, and does not alter the behavior of a process
// other than by slowing it down.
type Truss struct {
	Sys         *repro.System
	Out         io.Writer
	Cred        types.Cred
	FollowForks bool
	// Summary suppresses the per-call report and counts calls, faults and
	// signals instead (truss -c); print the table with WriteSummary.
	Summary bool
	// UseTrace selects the event-trace mechanism: instead of stopping the
	// target at every entry, exit, signal and fault and polling for the
	// stops, the tracer enables the kernel's event ring (PCTRACE) and reads
	// the report back from /procx/<pid>/trace — the target never stops.
	UseTrace bool
	// TraceCap sizes the per-process event ring (0 selects the default).
	TraceCap int
	// Client overrides the file system client used in trace mode; an
	// rfs.Client here traces processes on a remote machine through the same
	// files. Nil means the local name space under Cred.
	Client Opener

	targets map[int]*trussTarget
	counts  map[int]int64 // syscall number -> completed calls
	errors  map[int]int64 // syscall number -> failed calls
	faults  map[int]int64 // fault number -> occurrences
	signals map[int]int64 // signal number -> receipts
	// Stats for the harnesses.
	Lines int
}

// Opener is the slice of a file system client truss needs; *vfs.Client and
// *rfs.Client both satisfy it.
type Opener interface {
	Open(path string, flags int) (*vfs.File, error)
}

type trussTarget struct {
	p     *kernel.Proc
	f     *vfs.File
	entry map[int]string // syscall number -> formatted call at entry

	// Trace mode state.
	tf    *vfs.File // /procx/<pid>/trace
	off   int64     // next byte to read from tf
	pend  []byte    // partial event carried between reads
	done  bool      // the exit event has been seen
	calls map[int]*pendCall
	last  *pendCall // most recent entry, for KArgStr attachment
}

// pendCall is a system call seen at entry and not yet exited, in trace mode.
type pendCall struct {
	num    int
	args   [6]uint32
	str    map[int]string // inline-captured string arguments
	strOK  map[int]bool   // whether the capture was complete
}

// NewTruss creates a tracer acting under cred.
func NewTruss(sys *repro.System, out io.Writer, cred types.Cred) *Truss {
	return &Truss{
		Sys: sys, Out: out, Cred: cred,
		targets: map[int]*trussTarget{},
		counts:  map[int]int64{},
		errors:  map[int]int64{},
		faults:  map[int]int64{},
		signals: map[int]int64{},
	}
}

// Attach begins tracing a process: all system call entries and exits, all
// signals, and all machine faults become events of interest (legacy mode),
// or the kernel's event ring is enabled (trace mode).
func (tr *Truss) Attach(p *kernel.Proc) error {
	if tr.UseTrace {
		return tr.attachTrace(p)
	}
	f, err := tr.Sys.OpenProc(p.Pid, vfs.ORead|vfs.OWrite, tr.Cred)
	if err != nil {
		return err
	}
	var all types.SysSet
	all.Fill()
	if err := f.Ioctl(procfs.PIOCSENTRY, &all); err != nil {
		f.Close()
		return err
	}
	if err := f.Ioctl(procfs.PIOCSEXIT, &all); err != nil {
		f.Close()
		return err
	}
	var sigs types.SigSet
	sigs.Fill()
	sigs.Del(types.SIGKILL) // SIGKILL cannot be traced
	if err := f.Ioctl(procfs.PIOCSTRACE, &sigs); err != nil {
		f.Close()
		return err
	}
	var flts types.FltSet
	flts.Fill()
	if err := f.Ioctl(procfs.PIOCSFAULT, &flts); err != nil {
		f.Close()
		return err
	}
	if tr.FollowForks {
		if err := f.Ioctl(procfs.PIOCSFORK, nil); err != nil {
			f.Close()
			return err
		}
	}
	tr.targets[p.Pid] = &trussTarget{p: p, f: f, entry: map[int]string{}}
	return nil
}

// Run drives the system until every traced process has exited, reporting
// each event. maxIdle bounds scheduler passes with no event (deadlock guard).
func (tr *Truss) Run(maxSteps int) error {
	if tr.UseTrace {
		return tr.runTrace(maxSteps)
	}
	steps := 0
	for len(tr.targets) > 0 {
		progress := false
		for pid, tgt := range tr.targets {
			if !tgt.p.Alive() {
				tr.reportExit(tgt)
				tgt.f.Close()
				delete(tr.targets, pid)
				progress = true
				continue
			}
			switch ev := tgt.f.Poll(vfs.PollPri); {
			case ev&vfs.PollErr != 0:
				// Polling itself failed: the /proc descriptor was
				// invalidated (set-id exec) or the transport under it died.
				// Waiting would never end, so stop tracing this target with
				// a diagnostic rather than spinning forever.
				tr.printf("%5d: (target lost: /proc descriptor failed — target died or transport disconnected)\n", pid)
				tgt.f.Close()
				delete(tr.targets, pid)
				progress = true
			case ev != 0:
				if err := tr.handleStop(tgt); err != nil {
					return err
				}
				progress = true
			}
		}
		if !progress {
			if !tr.Sys.Step() && !tr.Sys.K.TimersPending() {
				return fmt.Errorf("truss: nothing runnable and %d target(s) remain", len(tr.targets))
			}
			steps++
			if steps > maxSteps {
				return fmt.Errorf("truss: exceeded %d steps", maxSteps)
			}
		}
	}
	return nil
}

// TraceToExit is the common Attach+Run combination.
func (tr *Truss) TraceToExit(p *kernel.Proc, maxSteps int) error {
	if err := tr.Attach(p); err != nil {
		return err
	}
	return tr.Run(maxSteps)
}

func (tr *Truss) printf(format string, args ...interface{}) {
	tr.Lines++
	if tr.Out != nil {
		fmt.Fprintf(tr.Out, format, args...)
	}
}

func (tr *Truss) handleStop(tgt *trussTarget) error {
	l := tgt.p.EventStoppedLWP()
	if l == nil {
		return nil
	}
	st := l.LWPStatus()
	run := kernel.RunFlags{}
	switch st.Why {
	case kernel.WhySysEntry:
		if !tr.Summary {
			tgt.entry[st.What] = tr.formatCall(tgt, st)
		}
	case kernel.WhySysExit:
		tr.counts[st.What]++
		failed := st.Reg.PSW&vcpu.FlagC != 0
		if failed {
			tr.errors[st.What]++
		}
		if !tr.Summary {
			call := tgt.entry[st.What]
			if call == "" {
				call = kernel.SyscallName(st.What) + "(...)"
			}
			delete(tgt.entry, st.What)
			if failed {
				tr.printf("%5d: %s = -1 %s\n", st.Pid, call, kernel.Errno(st.Reg.R[0]))
			} else {
				tr.printf("%5d: %s = %d\n", st.Pid, call, int32(st.Reg.R[0]))
			}
		}
		// Follow a successful fork/vfork even in summary mode — with
		// inherit-on-fork set, the child is stopped at the exit of fork
		// and must be adopted (or it would stay stopped forever). Only the
		// parent's exit reports the child pid; the child's own fork return
		// value is 0.
		if tr.FollowForks && (st.What == kernel.SysFork || st.What == kernel.SysVfork) &&
			!failed && int(st.Reg.R[0]) > 0 {
			childPid := int(st.Reg.R[0])
			if child := tr.Sys.K.Proc(childPid); child != nil && !child.System {
				if _, dup := tr.targets[childPid]; !dup {
					if err := tr.Attach(child); err == nil && !tr.Summary {
						tr.printf("%5d: (following new process %d)\n", st.Pid, childPid)
					}
				}
			}
		}
	case kernel.WhySignalled:
		tr.signals[st.What]++
		if !tr.Summary {
			tr.printf("%5d:     Received signal %s\n", st.Pid, types.SigName(st.What))
		}
		// Pass the signal on: run without clearing it; truss does not
		// alter the behavior of the process.
	case kernel.WhyFaulted:
		tr.faults[st.What]++
		if !tr.Summary {
			tr.printf("%5d:     Incurred fault %s\n", st.Pid, types.FltName(st.What))
		}
		// Likewise: the fault's conversion to a signal proceeds.
	case kernel.WhyRequested:
		// Someone else's directive; just release it.
	}
	return tr.Sys.K.RunLWP(l, run)
}

func (tr *Truss) reportExit(tgt *trussTarget) {
	tr.reportExitStatus(tgt.p.Pid, tgt.p.ExitStatus)
}

// reportExitStatus prints the termination line for a wait(2)-encoded status.
func (tr *Truss) reportExitStatus(pid, status int) {
	if tr.Summary {
		return
	}
	if ok, code := kernel.WIfExited(status); ok {
		tr.printf("%5d: _exit(%d)\n", pid, code)
		return
	}
	if ok, sig, core := kernel.WIfSignaled(status); ok {
		suffix := ""
		if core {
			suffix = " - core dumped"
		}
		tr.printf("%5d: killed by %s%s\n", pid, types.SigName(sig), suffix)
	}
}

// formatCall renders a system call with its arguments at the entry stop,
// fetching string arguments from the target's address space.
func (tr *Truss) formatCall(tgt *trussTarget, st kernel.ProcStatus) string {
	return tr.renderCall(st.What, st.SysArgs, func(i int, addr uint32) (string, bool) {
		return tr.readString(tgt, addr)
	})
}

// renderCall renders one call; str fetches a string argument by index and
// address, however the mode at hand can.
func (tr *Truss) renderCall(num int, args [6]uint32, str func(i int, addr uint32) (string, bool)) string {
	name := kernel.SyscallName(num)
	nargs := kernel.SyscallArity(num)
	out := name + "("
	for i := 0; i < nargs; i++ {
		if i > 0 {
			out += ", "
		}
		if i == 0 && takesPathArg(num) {
			if s, ok := str(i, args[0]); ok {
				out += fmt.Sprintf("%q", s)
				continue
			}
		}
		out += fmt.Sprintf("%#x", args[i])
	}
	return out + ")"
}

// takesPathArg reports whether the first argument is a pathname.
func takesPathArg(num int) bool {
	switch num {
	case kernel.SysOpen, kernel.SysCreat, kernel.SysUnlink, kernel.SysExec,
		kernel.SysChdir, kernel.SysChmod, kernel.SysAccess:
		return true
	}
	return false
}

// readString fetches a NUL-terminated string through the /proc file.
func (tr *Truss) readString(tgt *trussTarget, addr uint32) (string, bool) {
	buf := make([]byte, 256)
	n, err := tgt.f.Pread(buf, int64(addr))
	if err != nil || n == 0 {
		return "", false
	}
	for i := 0; i < n; i++ {
		if buf[i] == 0 {
			return string(buf[:i]), true
		}
	}
	return string(buf[:n]), true
}

// WriteSummary prints the truss -c style table of calls, errors, faults and
// signals accumulated by a Summary run (or any run).
func (tr *Truss) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "%-12s %8s %8s\n", "syscall", "calls", "errors")
	for num := 1; num <= kernel.MaxSysNum; num++ {
		if tr.counts[num] == 0 {
			continue
		}
		fmt.Fprintf(w, "%-12s %8d %8d\n",
			kernel.SyscallName(num), tr.counts[num], tr.errors[num])
	}
	for flt, n := range tr.faults {
		fmt.Fprintf(w, "fault %-6s %8d\n", types.FltName(flt), n)
	}
	for sig, n := range tr.signals {
		fmt.Fprintf(w, "signal %-5s %8d\n", types.SigName(sig), n)
	}
}

// Counts returns the completed-call count for one syscall number.
func (tr *Truss) Counts(num int) int64 { return tr.counts[num] }
