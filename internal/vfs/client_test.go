package vfs_test

import (
	"testing"

	"repro/internal/memfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

func clientFixture() (*memfs.FS, *vfs.Client) {
	fs := memfs.New(nil)
	ns := vfs.NewNS(fs.Root())
	return fs, &vfs.Client{NS: ns, Cred: types.RootCred()}
}

func TestClientOpenCreate(t *testing.T) {
	fs, cl := clientFixture()
	fs.MkdirAll("/d", 0o777)
	f, err := cl.Open("/d/new", vfs.OWrite|vfs.OCreat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, err := cl.ReadFile("/d/new")
	if err != nil || string(data) != "abc" {
		t.Fatalf("%q %v", data, err)
	}
	// OCreat on an existing file opens it.
	g, err := cl.Open("/d/new", vfs.ORead|vfs.OCreat)
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	// OCreat in a missing directory propagates the lookup error.
	if _, err := cl.Open("/nodir/x", vfs.OWrite|vfs.OCreat); err == nil {
		t.Fatal("create in missing dir should fail")
	}
}

func TestClientReadFileLarge(t *testing.T) {
	fs, cl := clientFixture()
	big := make([]byte, 40000)
	for i := range big {
		big[i] = byte(i)
	}
	fs.WriteFile("/big", big, 0o644, 0, 0)
	got, err := cl.ReadFile("/big")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(big) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range got {
		if got[i] != big[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}

func TestClientReadDirErrors(t *testing.T) {
	fs, cl := clientFixture()
	fs.WriteFile("/f", []byte("x"), 0o644, 0, 0)
	if _, err := cl.ReadDir("/f"); err != vfs.ErrNotDir {
		t.Fatalf("readdir of file: %v", err)
	}
	if _, err := cl.ReadDir("/missing"); err != vfs.ErrNotExist {
		t.Fatalf("readdir of missing: %v", err)
	}
	// ReadDir requires read permission on the directory.
	fs.MkdirAll("/locked", 0o311)
	user := &vfs.Client{NS: cl.NS, Cred: types.UserCred(5, 5)}
	if _, err := user.ReadDir("/locked"); err != vfs.ErrPerm {
		t.Fatalf("readdir without r: %v", err)
	}
}

func TestLookupThroughFileFails(t *testing.T) {
	fs, cl := clientFixture()
	fs.WriteFile("/f", []byte("x"), 0o644, 0, 0)
	if _, err := cl.Stat("/f/sub"); err != vfs.ErrNotDir {
		t.Fatalf("lookup through file: %v", err)
	}
}

func TestLookupDirOfRootComponent(t *testing.T) {
	_, cl := clientFixture()
	if _, _, err := cl.NS.LookupDir("/", cl.Cred); err != vfs.ErrInval {
		t.Fatalf("LookupDir of /: %v", err)
	}
	dw, name, err := cl.NS.LookupDir("/top", cl.Cred)
	if err != nil || name != "top" || dw == nil {
		t.Fatalf("%v %q", err, name)
	}
}

func TestMountSplicesSubtree(t *testing.T) {
	fs, cl := clientFixture()
	fs.MkdirAll("/mnt", 0o755)
	other := memfs.New(nil)
	other.WriteFile("/inside", []byte("mounted"), 0o644, 0, 0)
	if err := cl.NS.Mount("/mnt", other.Root()); err != nil {
		t.Fatal(err)
	}
	data, err := cl.ReadFile("/mnt/inside")
	if err != nil || string(data) != "mounted" {
		t.Fatalf("%q %v", data, err)
	}
	// The covered directory's own content is hidden.
	fs.WriteFile("/mnt/hidden", []byte("x"), 0o644, 0, 0)
	if _, err := cl.Stat("/mnt/hidden"); err != vfs.ErrNotExist {
		t.Fatalf("covered entry visible: %v", err)
	}
}

func TestRootMountOverride(t *testing.T) {
	_, cl := clientFixture()
	other := memfs.New(nil)
	other.WriteFile("/only", nil, 0o644, 0, 0)
	if err := cl.NS.Mount("/", other.Root()); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Stat("/only"); err != nil {
		t.Fatalf("root mount not honored: %v", err)
	}
}

func TestSeekEndUsesAttr(t *testing.T) {
	fs, cl := clientFixture()
	fs.WriteFile("/f", []byte("0123456789"), 0o644, 0, 0)
	f, _ := cl.Open("/f", vfs.ORead)
	defer f.Close()
	off, err := f.Seek(-4, vfs.SeekEnd)
	if err != nil || off != 6 {
		t.Fatalf("off=%d err=%v", off, err)
	}
	buf := make([]byte, 4)
	n, _ := f.Read(buf)
	if string(buf[:n]) != "6789" {
		t.Fatalf("read %q", buf[:n])
	}
}

func TestIoctlOnClosedFile(t *testing.T) {
	fs, cl := clientFixture()
	fs.WriteFile("/f", []byte("x"), 0o644, 0, 0)
	f, _ := cl.Open("/f", vfs.ORead)
	f.Close()
	if err := f.Ioctl(1, nil); err != vfs.ErrBadFD {
		t.Fatalf("ioctl after close: %v", err)
	}
	if _, err := f.Seek(0, vfs.SeekSet); err != vfs.ErrBadFD {
		t.Fatalf("seek after close: %v", err)
	}
	if f.Poll(vfs.PollIn) != 0 {
		t.Fatal("poll after close should be 0")
	}
}
