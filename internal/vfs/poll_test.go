package vfs

import (
	"testing"

	"repro/internal/types"
)

// fakePollHandle is a controllable Poller.
type fakePollHandle struct {
	ready int
}

func (h *fakePollHandle) HRead(p []byte, off int64) (int, error)  { return 0, EOF }
func (h *fakePollHandle) HWrite(p []byte, off int64) (int, error) { return len(p), nil }
func (h *fakePollHandle) HIoctl(cmd int, arg interface{}) error   { return ErrNoIoctl }
func (h *fakePollHandle) HClose() error                           { return nil }
func (h *fakePollHandle) HPoll(mask int) int                      { return h.ready & mask }

type fakeVnode struct{}

func (fakeVnode) VAttr() (Attr, error) { return Attr{Type: VREG, Mode: 0o666}, nil }
func (fakeVnode) VOpen(flags int, c types.Cred) (Handle, error) {
	return &fakePollHandle{}, nil
}

func TestPollReturnsReadyIndex(t *testing.T) {
	h1, h2 := &fakePollHandle{}, &fakePollHandle{}
	f1 := &File{VN: fakeVnode{}, H: h1, Flags: ORead}
	f2 := &File{VN: fakeVnode{}, H: h2, Flags: ORead}
	steps := 0
	idx, ev, err := Poll([]*File{f1, f2}, PollPri, func() bool {
		steps++
		if steps == 3 {
			h2.ready = PollPri
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 || ev != PollPri {
		t.Fatalf("idx=%d ev=%d", idx, ev)
	}
	if steps != 3 {
		t.Fatalf("steps = %d", steps)
	}
}

func TestPollDeadlock(t *testing.T) {
	h := &fakePollHandle{}
	f := &File{VN: fakeVnode{}, H: h, Flags: ORead}
	_, _, err := Poll([]*File{f}, PollPri, func() bool { return false })
	if err != ErrWouldDead {
		t.Fatalf("err = %v, want ErrWouldDead", err)
	}
}

func TestPollMaskFiltering(t *testing.T) {
	h := &fakePollHandle{ready: PollOut}
	f := &File{VN: fakeVnode{}, H: h, Flags: ORead | OWrite}
	// Asking for PollPri only: the PollOut readiness must not match.
	if r := f.Poll(PollPri); r != 0 {
		t.Fatalf("poll = %#x", r)
	}
	if r := f.Poll(PollOut | PollPri); r != PollOut {
		t.Fatalf("poll = %#x", r)
	}
}

func TestFileSeekInvalidWhence(t *testing.T) {
	f := &File{VN: fakeVnode{}, H: &fakePollHandle{}, Flags: ORead}
	if _, err := f.Seek(0, 99); err != ErrInval {
		t.Fatalf("err = %v", err)
	}
}

func TestFileIncRefSharing(t *testing.T) {
	f := &File{VN: fakeVnode{}, H: &fakePollHandle{}, Flags: ORead}
	f.IncRef()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if f.Closed() {
		t.Fatal("first close with an extra ref should not close")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if !f.Closed() {
		t.Fatal("last close should close")
	}
	if err := f.Close(); err != ErrBadFD {
		t.Fatal("close after last close should be EBADF")
	}
}

func TestNSMountConflicts(t *testing.T) {
	ns := NewNS(nil)
	if err := ns.Mount("/proc", fakeVnode{}); err != nil {
		t.Fatal(err)
	}
	if err := ns.Mount("/proc", fakeVnode{}); err != ErrBusy {
		t.Fatalf("double mount: %v", err)
	}
	if err := ns.Mount("/proc/", fakeVnode{}); err != ErrBusy {
		t.Fatal("mount of equivalent path should conflict")
	}
}
