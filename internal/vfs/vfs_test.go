package vfs

import (
	"testing"

	"repro/internal/types"
)

func ucred(uid, gid int) types.Cred { return types.UserCred(uid, gid) }

func TestSplitAndClean(t *testing.T) {
	cases := map[string][]string{
		"/":            nil,
		"//":           nil,
		"/a/b":         {"a", "b"},
		"a/b/":         {"a", "b"},
		"/a/./b":       {"a", "b"},
		"/a/../b":      {"b"},
		"/../a":        {"a"},
		"/a/b/../../c": {"c"},
	}
	for in, want := range cases {
		got := Split(in)
		if len(got) != len(want) {
			t.Errorf("Split(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("Split(%q) = %v, want %v", in, got, want)
			}
		}
	}
	if Clean("//a//b/") != "/a/b" {
		t.Errorf("Clean = %q", Clean("//a//b/"))
	}
	if Clean("/") != "/" {
		t.Errorf("Clean(/) = %q", Clean("/"))
	}
}

func TestCheckAccess(t *testing.T) {
	attr := Attr{Mode: 0o640, UID: 100, GID: 10}
	owner := ucred(100, 10)
	groupie := ucred(200, 10)
	other := ucred(300, 30)
	root := ucred(0, 0)

	if err := CheckAccess(attr, owner, 4|2); err != nil {
		t.Error("owner should read/write")
	}
	if err := CheckAccess(attr, owner, 1); err == nil {
		t.Error("owner should not exec")
	}
	if err := CheckAccess(attr, groupie, 4); err != nil {
		t.Error("group should read")
	}
	if err := CheckAccess(attr, groupie, 2); err == nil {
		t.Error("group should not write")
	}
	if err := CheckAccess(attr, other, 4); err == nil {
		t.Error("other should not read")
	}
	if err := CheckAccess(attr, root, 4|2|1); err != nil {
		t.Error("root can do anything")
	}
}

func TestFmtMode(t *testing.T) {
	cases := map[uint16]string{
		0o644:  "rw-r--r--",
		0o755:  "rwxr-xr-x",
		0o600:  "rw-------",
		0o4755: "rwsr-xr-x",
		0o2755: "rwxr-sr-x",
		0:      "---------",
	}
	for mode, want := range cases {
		if got := FmtMode(mode); got != want {
			t.Errorf("FmtMode(%o) = %q, want %q", mode, got, want)
		}
	}
}

func TestIsSetID(t *testing.T) {
	if (Attr{Mode: 0o755}).IsSetID() {
		t.Error("plain file is not set-id")
	}
	if !(Attr{Mode: 0o4755}).IsSetID() {
		t.Error("setuid file is set-id")
	}
	if !(Attr{Mode: 0o2755}).IsSetID() {
		t.Error("setgid file is set-id")
	}
}
