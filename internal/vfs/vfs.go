// Package vfs is the Virtual File System architecture of the simulated
// system: the clean separation of file system code into generic
// (file-system-independent) and specific (file-system-dependent) pieces with
// a well-defined but narrow interface between them. As in SVR4, the
// fundamental data structure manipulated by the generic code is the vnode;
// the developer of a file system type provides the code that implements the
// necessary set of vnode operations for that type. Within this framework the
// construction of the "fantasy world" — the illusion that processes are
// actually files — is straightforward, and any resource can be made to
// appear within the file system name space if it makes sense to view it that
// way.
package vfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/types"
)

// VType is a vnode type.
type VType int

// Vnode types.
const (
	VREG  VType = iota // regular file
	VDIR               // directory
	VPROC              // process file (the /proc fantasy world)
	VFIFO              // pipe
)

// Mode permission bits (octal), plus the set-id bits honored by exec.
const (
	ModeSetUID = 0o4000
	ModeSetGID = 0o2000
)

// Attr is the public attribute data of a vnode — the information maintained
// by the upper level or that does not change over the life of the file.
type Attr struct {
	Type  VType
	Mode  uint16 // permission bits incl. set-id bits
	UID   int
	GID   int
	Size  int64
	MTime int64 // modification time (simulated clock ticks)
	Nlink int
}

// IsSetID reports whether the file has the setuid or setgid bit.
func (a Attr) IsSetID() bool { return a.Mode&(ModeSetUID|ModeSetGID) != 0 }

// Open flags.
const (
	ORead  = 1 << iota // open for reading
	OWrite             // open for writing
	OExcl              // exclusive open (for /proc: exclusive write access)
	OCreat             // create if missing
	OTrunc             // truncate to zero length
)

// Poll event mask bits.
const (
	PollIn  = 1 << iota // readable
	PollOut             // writable
	PollPri             // exceptional condition (a /proc stop is one)
	// PollErr reports that polling itself failed — e.g. the transport under
	// a remote handle died. Like POLLERR it is reported regardless of the
	// requested mask; a poll loop that sees it must stop waiting, because
	// no event will ever arrive.
	PollErr
)

// Common error values, the moral equivalents of the UNIX errnos.
var (
	ErrNotExist = errors.New("no such file or directory")          // ENOENT
	ErrPerm     = errors.New("permission denied")                  // EACCES
	ErrNotDir   = errors.New("not a directory")                    // ENOTDIR
	ErrIsDir    = errors.New("is a directory")                     // EISDIR
	ErrExist    = errors.New("file exists")                        // EEXIST
	ErrBusy     = errors.New("device busy")                        // EBUSY
	ErrInval    = errors.New("invalid argument")                   // EINVAL
	ErrNotSup   = errors.New("operation not supported by fs type") // ENOSYS
	ErrBadFD    = errors.New("bad file descriptor")                // EBADF
	ErrAgain    = errors.New("resource temporarily unavailable")   // EAGAIN
	ErrNoIoctl  = errors.New("inappropriate ioctl for device")     // ENOTTY

	// ErrIO (EIO) reports that a device operation failed underneath the
	// file system — a buffer-cache fill, a write-back, a journal record.
	// File system types must return the sentinel itself (or wrap it with
	// %w) rather than a private error: the kernel's errno mapping, the
	// fault-storm matchers, and the rfs wire codec all branch on it with
	// errors.Is, and the rfs protocol carries it as a dedicated code so the
	// identity survives a round trip through a remote mount.
	ErrIO = errors.New("I/O error") // EIO

	// ErrNoSpace (ENOSPC) reports resource exhaustion inside a file system
	// type: no free inode, no free block, a file at its maximum size, or an
	// injected allocation failure (memfs.create, blockfs zone allocation).
	// Like ErrIO it is an errors.Is identity preserved across the rfs wire
	// codec in both directions, so a remote client can distinguish a full
	// file system from a broken one.
	ErrNoSpace = errors.New("no space left on device") // ENOSPC

	ErrStale     = errors.New("stale /proc file descriptor") // the set-id invalidation
	ErrWouldDead = errors.New("poll would deadlock: nothing runnable")
)

// Vnode is the system's internal representation of a file; it provides the
// handle by which file manipulations are performed.
type Vnode interface {
	// VAttr returns the vnode attributes.
	VAttr() (Attr, error)
	// VOpen prepares the vnode for I/O, performing type-specific permission
	// checks, and returns a Handle carrying the open state.
	VOpen(flags int, c types.Cred) (Handle, error)
}

// Dir is a vnode that supports name lookup — a directory.
type Dir interface {
	Vnode
	// VLookup resolves one path component.
	VLookup(name string, c types.Cred) (Vnode, error)
	// VReadDir lists the directory.
	VReadDir(c types.Cred) ([]Dirent, error)
}

// DirWriter is a directory that supports creating and removing entries.
type DirWriter interface {
	Dir
	VCreate(name string, mode uint16, c types.Cred) (Vnode, error)
	VMkdir(name string, mode uint16, c types.Cred) (Dir, error)
	VRemove(name string, c types.Cred) error
}

// Dirent is one directory entry.
type Dirent struct {
	Name string
	Attr Attr
}

// Handle is the per-open state of a vnode, through which I/O and control
// operations flow.
type Handle interface {
	// HRead reads at an absolute offset.
	HRead(p []byte, off int64) (int, error)
	// HWrite writes at an absolute offset.
	HWrite(p []byte, off int64) (int, error)
	// HIoctl performs a control operation.
	HIoctl(cmd int, arg interface{}) error
	// HClose releases the open state.
	HClose() error
}

// Poller is implemented by handles that support poll(2). The /proc polling
// extension proposed in the paper hangs off this.
type Poller interface {
	// HPoll returns the ready events among those requested.
	HPoll(mask int) int
}

// CheckAccess implements the classic UNIX permission check of want
// (a bitmask of 4=read, 2=write, 1=exec) against the attribute bits.
func CheckAccess(a Attr, c types.Cred, want uint16) error {
	if c.IsSuper() {
		return nil
	}
	var perm uint16
	switch {
	case c.EUID == a.UID:
		perm = a.Mode >> 6
	case c.InGroup(a.GID):
		perm = a.Mode >> 3
	default:
		perm = a.Mode
	}
	if want&^(perm&7) != 0 {
		return ErrPerm
	}
	return nil
}

// NS is a name space: a root directory plus a mount table. Mounting a file
// system type's root vnode over a path splices it into the name space, which
// is how /proc appears alongside conventional file systems.
type NS struct {
	root   Dir
	mounts map[string]Vnode
}

// NewNS returns a name space rooted at root.
func NewNS(root Dir) *NS {
	return &NS{root: root, mounts: make(map[string]Vnode)}
}

// Mount splices a file system root over path.
func (ns *NS) Mount(path string, root Vnode) error {
	clean := Clean(path)
	if _, dup := ns.mounts[clean]; dup {
		return ErrBusy
	}
	ns.mounts[clean] = root
	return nil
}

// Syncer is implemented by the root vnode of file system types with delayed
// writes: VSync flushes everything the type has buffered to stable storage.
// In-memory types (memfs, /proc) simply don't implement it.
type Syncer interface {
	VSync() error
}

// SyncAll flushes every mounted file system that supports it, in mount-path
// order (sorted, so the device-write sequence is deterministic). All mounts
// are attempted even after a failure; the first error is returned — the
// sync(2) contract of scheduling everything and reporting what broke.
func (ns *NS) SyncAll() error {
	paths := make([]string, 0, len(ns.mounts))
	for p := range ns.mounts {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var first error
	for _, p := range paths {
		if s, ok := ns.mounts[p].(Syncer); ok {
			if err := s.VSync(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Clean normalizes a path: absolute, no trailing slash, no empty components.
func Clean(path string) string {
	parts := Split(path)
	return "/" + strings.Join(parts, "/")
}

// Split breaks a path into components, ignoring empty ones and ".".
func Split(path string) []string {
	var out []string
	for _, p := range strings.Split(path, "/") {
		switch p {
		case "", ".":
		case "..":
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		default:
			out = append(out, p)
		}
	}
	return out
}

// Lookup resolves an absolute path to a vnode, honoring mounts. Directory
// search permission is required at each step.
func (ns *NS) Lookup(path string, c types.Cred) (Vnode, error) {
	var cur Vnode = ns.root
	if m, ok := ns.mounts["/"]; ok {
		cur = m
	}
	walked := ""
	for _, name := range Split(path) {
		dir, ok := cur.(Dir)
		if !ok {
			return nil, ErrNotDir
		}
		attr, err := dir.VAttr()
		if err != nil {
			return nil, err
		}
		if err := CheckAccess(attr, c, 1); err != nil {
			return nil, err
		}
		next, err := dir.VLookup(name, c)
		if err != nil {
			return nil, err
		}
		walked += "/" + name
		if m, ok := ns.mounts[walked]; ok {
			next = m
		}
		cur = next
	}
	return cur, nil
}

// LookupDir resolves the parent directory of path and returns it with the
// final component, for create/remove operations.
func (ns *NS) LookupDir(path string, c types.Cred) (DirWriter, string, error) {
	parts := Split(path)
	if len(parts) == 0 {
		return nil, "", ErrInval
	}
	parent := "/" + strings.Join(parts[:len(parts)-1], "/")
	vn, err := ns.Lookup(parent, c)
	if err != nil {
		return nil, "", err
	}
	dw, ok := vn.(DirWriter)
	if !ok {
		return nil, "", ErrNotSup
	}
	return dw, parts[len(parts)-1], nil
}

// File is an open file description: a vnode, its open handle, the current
// offset and the open flags. It is shared by user processes (through their
// file descriptor tables) and by controlling programs.
type File struct {
	VN     Vnode
	H      Handle
	Flags  int
	Offset int64
	closed bool
	extra  int // extra references beyond the first (fork/dup sharing)
}

// IncRef adds a reference to the open file description; fork(2) and dup(2)
// share descriptions rather than duplicating them, so the offset is shared
// and the handle is closed only on the last close.
func (f *File) IncRef() { f.extra++ }

// Read reads sequentially from the current offset.
func (f *File) Read(p []byte) (int, error) {
	if f.closed || f.Flags&ORead == 0 {
		return 0, ErrBadFD
	}
	n, err := f.H.HRead(p, f.Offset)
	f.Offset += int64(n)
	return n, err
}

// Write writes sequentially at the current offset.
func (f *File) Write(p []byte) (int, error) {
	if f.closed || f.Flags&OWrite == 0 {
		return 0, ErrBadFD
	}
	n, err := f.H.HWrite(p, f.Offset)
	f.Offset += int64(n)
	return n, err
}

// Pread reads at an absolute offset without moving the file offset.
func (f *File) Pread(p []byte, off int64) (int, error) {
	if f.closed || f.Flags&ORead == 0 {
		return 0, ErrBadFD
	}
	return f.H.HRead(p, off)
}

// Pwrite writes at an absolute offset without moving the file offset.
func (f *File) Pwrite(p []byte, off int64) (int, error) {
	if f.closed || f.Flags&OWrite == 0 {
		return 0, ErrBadFD
	}
	return f.H.HWrite(p, off)
}

// Seek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Seek repositions the offset; applying lseek to position the file at the
// virtual address of interest is how /proc address-space I/O is addressed.
func (f *File) Seek(off int64, whence int) (int64, error) {
	if f.closed {
		return 0, ErrBadFD
	}
	switch whence {
	case SeekSet:
		f.Offset = off
	case SeekCur:
		f.Offset += off
	case SeekEnd:
		attr, err := f.VN.VAttr()
		if err != nil {
			return 0, err
		}
		f.Offset = attr.Size + off
	default:
		return 0, ErrInval
	}
	return f.Offset, nil
}

// Ioctl performs a control operation on the open file.
func (f *File) Ioctl(cmd int, arg interface{}) error {
	if f.closed {
		return ErrBadFD
	}
	return f.H.HIoctl(cmd, arg)
}

// Poll returns the ready events among mask, or 0 for handles that do not
// support polling.
func (f *File) Poll(mask int) int {
	if f.closed {
		return 0
	}
	if p, ok := f.H.(Poller); ok {
		return p.HPoll(mask)
	}
	return 0
}

// Close drops one reference to the open file; the handle is released when
// the last reference is closed. Closing an already-closed file returns
// ErrBadFD.
func (f *File) Close() error {
	if f.closed {
		return ErrBadFD
	}
	if f.extra > 0 {
		f.extra--
		return nil
	}
	f.closed = true
	return f.H.HClose()
}

// Closed reports whether Close has been called.
func (f *File) Closed() bool { return f.closed }

// FileState is the mutable state of one open file description, captured
// for whole-kernel checkpoints: the shared offset, the closed flag, the
// extra-reference count from fork/dup sharing, and any handle-private
// state the handle chose to expose via HandleSnapshotter.
type FileState struct {
	Offset int64
	Closed bool
	Extra  int
	Handle any
}

// HandleSnapshotter is optionally implemented by handles that carry
// mutable per-open state beyond the File's own fields — a closed flag, a
// cached snapshot buffer. Handles whose state is fixed at open time (the
// common case) need not implement it.
type HandleSnapshotter interface {
	// HSaveState returns an opaque deep copy of the handle's mutable state.
	HSaveState() any
	// HLoadState restores state previously returned by HSaveState.
	HLoadState(st any)
}

// SaveState captures the description's mutable state. Checkpoints restore
// into the same File object (pointer identity is what fork/dup sharing
// hangs off), so only the mutable fields are recorded.
func (f *File) SaveState() FileState {
	st := FileState{Offset: f.Offset, Closed: f.closed, Extra: f.extra}
	if hs, ok := f.H.(HandleSnapshotter); ok {
		st.Handle = hs.HSaveState()
	}
	return st
}

// LoadState restores state captured by SaveState into this File.
func (f *File) LoadState(st FileState) {
	f.Offset, f.closed, f.extra = st.Offset, st.Closed, st.Extra
	if hs, ok := f.H.(HandleSnapshotter); ok {
		hs.HLoadState(st.Handle)
	}
}

// Client is a controlling program's view of a name space: a credential plus
// path-based convenience operations. Debuggers, ps and truss act through a
// Client exactly as user-level SVR4 programs act through the system call
// interface.
type Client struct {
	NS   *NS
	Cred types.Cred
}

// Open opens a path.
func (cl *Client) Open(path string, flags int) (*File, error) {
	if flags&OCreat != 0 {
		if _, err := cl.NS.Lookup(path, cl.Cred); err == ErrNotExist {
			dw, name, derr := cl.NS.LookupDir(path, cl.Cred)
			if derr != nil {
				return nil, derr
			}
			if _, cerr := dw.VCreate(name, 0o644, cl.Cred); cerr != nil {
				return nil, cerr
			}
		}
	}
	vn, err := cl.NS.Lookup(path, cl.Cred)
	if err != nil {
		return nil, err
	}
	h, err := vn.VOpen(flags, cl.Cred)
	if err != nil {
		return nil, err
	}
	return &File{VN: vn, H: h, Flags: flags}, nil
}

// Stat returns the attributes of a path.
func (cl *Client) Stat(path string) (Attr, error) {
	vn, err := cl.NS.Lookup(path, cl.Cred)
	if err != nil {
		return Attr{}, err
	}
	return vn.VAttr()
}

// ReadDir lists a directory path.
func (cl *Client) ReadDir(path string) ([]Dirent, error) {
	vn, err := cl.NS.Lookup(path, cl.Cred)
	if err != nil {
		return nil, err
	}
	dir, ok := vn.(Dir)
	if !ok {
		return nil, ErrNotDir
	}
	attr, err := dir.VAttr()
	if err != nil {
		return nil, err
	}
	if err := CheckAccess(attr, cl.Cred, 4); err != nil {
		return nil, err
	}
	return dir.VReadDir(cl.Cred)
}

// ReadFile reads an entire regular file.
func (cl *Client) ReadFile(path string) ([]byte, error) {
	f, err := cl.Open(path, ORead)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []byte
	buf := make([]byte, 8192)
	for {
		n, err := f.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil || n == 0 {
			if err != nil && err.Error() == "EOF" {
				err = nil
			}
			return out, err
		}
	}
}

// Poll waits until one of the files reports a ready event in mask, calling
// step to advance the simulation between checks. It returns the index of the
// first ready file and its events. If nothing is ready and step reports that
// no progress is possible, ErrWouldDead is returned — the simulated
// equivalent of a poll that would block forever.
func Poll(files []*File, mask int, step func() bool) (int, int, error) {
	for {
		for i, f := range files {
			if r := f.Poll(mask); r != 0 {
				return i, r, nil
			}
		}
		if !step() {
			return -1, 0, ErrWouldDead
		}
	}
}

// FmtMode renders permission bits in ls -l style (without the type letter).
func FmtMode(mode uint16) string {
	s := []byte("rwxrwxrwx")
	for i := 0; i < 9; i++ {
		if mode&(1<<uint(8-i)) == 0 {
			s[i] = '-'
		}
	}
	if mode&ModeSetUID != 0 {
		s[2] = 's'
	}
	if mode&ModeSetGID != 0 {
		s[5] = 's'
	}
	return string(s)
}

// EOF is the error returned by sequential reads at end of file.
var EOF = errors.New("EOF")

// Errorf wraps fmt.Errorf so fs implementations need not import fmt for
// one-off errors.
func Errorf(format string, args ...interface{}) error {
	return fmt.Errorf(format, args...)
}
