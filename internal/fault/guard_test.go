package fault

import "testing"

// fakeTB records Guard's observable behaviour without failing a real test.
type fakeTB struct {
	errs     []string
	cleanups []func()
}

func (f *fakeTB) Helper()                       {}
func (f *fakeTB) Cleanup(fn func())             { f.cleanups = append(f.cleanups, fn) }
func (f *fakeTB) Errorf(string, ...interface{}) { f.errs = append(f.errs, "err") }
func (f *fakeTB) runCleanups() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

// TestGuardDetectsLeakedPlan is the regression test for cross-test plan
// leakage: a site left armed by a "previous test" must fail the next test at
// entry, and the guard's cleanup must disarm everything it found.
func TestGuardDetectsLeakedPlan(t *testing.T) {
	Guard(t) // the real guard, for this real test

	site := Register("guardtest.leak")
	site.Arm(Spec{Nth: 1})

	fake := &fakeTB{}
	Guard(fake)
	if len(fake.errs) == 0 {
		t.Fatalf("Guard did not report a leaked armed site")
	}
	if Default.AnyArmed() {
		t.Fatalf("Guard did not reset the leaked plan at entry")
	}

	// The cleanup must also reset plans armed during the guarded test.
	site.Arm(Spec{Every: 2})
	fake.runCleanups()
	if Default.AnyArmed() {
		t.Fatalf("Guard cleanup left a site armed")
	}
}

// TestGuardCleanOnCleanRegistry: a clean registry passes and stays clean.
func TestGuardCleanOnCleanRegistry(t *testing.T) {
	Guard(t)
	fake := &fakeTB{}
	Guard(fake)
	if len(fake.errs) != 0 {
		t.Fatalf("Guard reported errors on a clean registry: %v", fake.errs)
	}
	if len(fake.cleanups) != 1 {
		t.Fatalf("Guard registered %d cleanups, want 1", len(fake.cleanups))
	}
}
