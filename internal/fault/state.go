package fault

// SiteState is the complete saved state of one site: the armed plan (if
// any), its decision counters, and the cumulative statistics. Restoring it
// rewinds the site to exactly that point in its decision stream, so a plan
// keyed to hit ordinals re-fires at the same ordinals after a whole-kernel
// checkpoint restore — without this, a storm replayed across a restore
// would inject at shifted points and diverge.
type SiteState struct {
	Name     string
	Armed    bool
	Spec     Spec
	N        uint64 // matching hits under the current plan
	Inj      uint64 // injections under the current plan
	RNG      uint64 // xorshift64 state for Prob decisions
	Hits     uint64 // cumulative hits while armed
	Injected uint64 // cumulative injections
}

// SaveState captures the site's plan and counters.
func (s *Site) SaveState() SiteState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SiteState{Name: s.name, Hits: s.hits.Load(), Injected: s.injected.Load()}
	if pl := s.p.Load(); pl != nil {
		st.Armed = true
		st.Spec = pl.spec
		st.N, st.Inj, st.RNG = pl.n, pl.inj, pl.rng
	}
	return st
}

// LoadState restores a previously saved state, including mid-plan decision
// counters (unlike Arm, which starts the plan fresh).
func (s *Site) LoadState(st SiteState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits.Store(st.Hits)
	s.injected.Store(st.Injected)
	if st.Armed {
		s.p.Store(&plan{spec: st.Spec, n: st.N, inj: st.Inj, rng: st.RNG})
	} else {
		s.p.Store(nil)
	}
}

// SaveState captures every registered site, in registration order. Sites
// register once at package init, so the slice covers the whole registry.
func (r *Registry) SaveState() []SiteState {
	sites := r.Sites()
	out := make([]SiteState, len(sites))
	for i, s := range sites {
		out[i] = s.SaveState()
	}
	return out
}

// LoadState restores a saved registry state. Sites named in the state are
// restored exactly; registered sites absent from it are disarmed and
// zeroed, so the registry as a whole matches the capture point. Unknown
// names are ignored (a state recorded by a build with fewer sites still
// loads).
func (r *Registry) LoadState(states []SiteState) {
	byName := make(map[string]SiteState, len(states))
	for _, st := range states {
		byName[st.Name] = st
	}
	for _, s := range r.Sites() {
		if st, ok := byName[s.Name()]; ok {
			s.LoadState(st)
		} else {
			s.LoadState(SiteState{Name: s.Name()})
		}
	}
}
