package fault

import (
	"strings"
	"testing"
)

func hits(s *Site, pid, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = s.Hit(pid)
	}
	return out
}

func count(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

func TestDisarmedNeverFires(t *testing.T) {
	r := NewRegistry()
	s := r.Register("a")
	for i := 0; i < 100; i++ {
		if s.Hit(i) {
			t.Fatal("disarmed site fired")
		}
	}
	if s.Hits() != 0 {
		t.Fatalf("disarmed site counted %d hits", s.Hits())
	}
}

func TestNth(t *testing.T) {
	r := NewRegistry()
	s := r.Register("a")
	s.Arm(Spec{Nth: 3})
	got := hits(s, 1, 6)
	want := []bool{false, false, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if s.Injected() != 1 || s.Hits() != 6 {
		t.Fatalf("injected=%d hits=%d", s.Injected(), s.Hits())
	}
}

func TestEveryAndCount(t *testing.T) {
	r := NewRegistry()
	s := r.Register("a")
	s.Arm(Spec{Every: 2, Count: 3})
	got := hits(s, 1, 10)
	if n := count(got); n != 3 {
		t.Fatalf("injected %d times, want 3 (capped)", n)
	}
	for i, g := range got {
		want := i%2 == 1 && i < 6
		if g != want {
			t.Fatalf("hit %d: got %v, want %v", i, g, want)
		}
	}
}

func TestAlways(t *testing.T) {
	r := NewRegistry()
	s := r.Register("a")
	s.Arm(Spec{})
	if n := count(hits(s, 1, 5)); n != 5 {
		t.Fatalf("empty spec fired %d/5 times", n)
	}
}

func TestPidScope(t *testing.T) {
	r := NewRegistry()
	s := r.Register("a")
	s.Arm(Spec{Pid: 7})
	if s.Hit(3) || s.Hit(0) {
		t.Fatal("pid-scoped plan fired for the wrong pid")
	}
	if !s.Hit(7) {
		t.Fatal("pid-scoped plan did not fire for its pid")
	}
	// Ordinals count only matching hits: nth=2 pid=7 must ignore other pids.
	s.Arm(Spec{Nth: 2, Pid: 7})
	s.Hit(9)
	if s.Hit(7) {
		t.Fatal("first matching hit fired on nth=2")
	}
	s.Hit(9)
	if !s.Hit(7) {
		t.Fatal("second matching hit did not fire on nth=2")
	}
}

func TestProbDeterministic(t *testing.T) {
	run := func(seed uint64) []bool {
		r := NewRegistry()
		s := r.Register("a")
		s.Arm(Spec{Seed: seed, Prob: 300})
		return hits(s, 1, 200)
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	n := count(a)
	if n == 0 || n == len(a) {
		t.Fatalf("prob=300 fired %d/%d times", n, len(a))
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestRearmReplays(t *testing.T) {
	r := NewRegistry()
	s := r.Register("a")
	s.Arm(Spec{Nth: 2})
	first := hits(s, 1, 4)
	s.Arm(Spec{Nth: 2})
	second := hits(s, 1, 4)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("re-armed plan diverged at hit %d", i)
		}
	}
	if s.Injected() != 2 {
		t.Fatalf("cumulative injected = %d, want 2", s.Injected())
	}
	r.Reset()
	if s.Injected() != 0 || s.Hits() != 0 {
		t.Fatal("Reset did not zero counters")
	}
	if _, armed := s.Plan(); armed {
		t.Fatal("Reset left a plan armed")
	}
}

func TestRegistryExecAndEncode(t *testing.T) {
	r := NewRegistry()
	r.Register("mem.page")
	r.Register("kernel.fork")
	if err := r.Exec("mem.page nth=3 pid=5"); err != nil {
		t.Fatal(err)
	}
	sp, ok := r.Lookup("mem.page").Plan()
	if !ok || sp.Nth != 3 || sp.Pid != 5 {
		t.Fatalf("plan = %+v armed=%v", sp, ok)
	}
	if err := r.Exec("bogus.site nth=1"); err == nil {
		t.Fatal("unknown site accepted")
	}
	if err := r.Exec("mem.page nth=x"); err == nil {
		t.Fatal("malformed field accepted")
	}
	if err := r.Exec("# comment"); err != nil {
		t.Fatal("comment rejected")
	}
	text := string(r.EncodeText())
	if !strings.Contains(text, "site mem.page plan=nth=3,pid=5") {
		t.Fatalf("encoding missing armed plan:\n%s", text)
	}
	if !strings.Contains(text, "site kernel.fork plan=-") {
		t.Fatalf("encoding missing disarmed site:\n%s", text)
	}
	if err := r.Exec("clear mem.page"); err != nil {
		t.Fatal(err)
	}
	if _, armed := r.Lookup("mem.page").Plan(); armed {
		t.Fatal("clear did not disarm")
	}
	if err := r.ExecAll("mem.page every=2\nkernel.fork nth=1\n"); err != nil {
		t.Fatal(err)
	}
	if !r.AnyArmed() {
		t.Fatal("ExecAll armed nothing")
	}
	if err := r.Exec("clear"); err != nil {
		t.Fatal(err)
	}
	if r.AnyArmed() {
		t.Fatal("clear left plans armed")
	}
}

func TestSpecRoundTrip(t *testing.T) {
	sp := Spec{Nth: 3, Every: 4, Count: 5, Pid: 6, Seed: 7, Prob: 8}
	got, err := ParseSpec(sp.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != sp {
		t.Fatalf("round trip: got %+v, want %+v", got, sp)
	}
	if got, err := ParseSpec("always"); err != nil || got != (Spec{}) {
		t.Fatalf("always: %+v, %v", got, err)
	}
}

func TestSeq(t *testing.T) {
	var s Seq
	if s.Next() != 0 || s.Next() != 1 {
		t.Fatal("Seq ordinals not consecutive from zero")
	}
	s.Note(2)
	s.Note(2)
	s.Note(3)
	if s.Injected(2) != 2 || s.Injected(3) != 1 || s.Injected(4) != 0 {
		t.Fatal("Seq injection tallies wrong")
	}
}

func TestRegisterIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Register("x")
	b := r.Register("x")
	if a != b {
		t.Fatal("Register returned distinct sites for one name")
	}
	if len(r.Sites()) != 1 {
		t.Fatal("duplicate registration grew the site list")
	}
}
