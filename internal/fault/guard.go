package fault

// TB is the sliver of testing.TB that Guard needs; taking an interface keeps
// the package free of a testing import (it is compiled into the kernel) and
// lets the guard's own tests drive it with a fake.
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...interface{})
}

// Guard protects a test from fault-plan leakage in both directions: it fails
// the test immediately if a previous test left any Default-registry site
// armed, and it registers a cleanup that resets the registry (disarming all
// sites and zeroing counters) when the test ends — however it ends. Every
// test that arms a site should start with
//
//	fault.Guard(t)
//
// so a forgotten Disarm cannot silently inject faults into whichever test
// happens to run next.
func Guard(tb TB) {
	tb.Helper()
	for _, s := range Default.Sites() {
		if sp, ok := s.Plan(); ok {
			tb.Errorf("fault: site %s already armed at test entry (leaked plan %q)", s.Name(), sp.String())
		}
	}
	Default.Reset()
	tb.Cleanup(Default.Reset)
}
