// Package fault is the kernel-wide deterministic fault-injection registry.
//
// Code that acquires a resource or performs I/O declares a named Site at the
// choke point and asks it, per attempt, whether to fail:
//
//	var sitePage = fault.Register("mem.page")
//	...
//	if sitePage.Hit(pid) {
//		return ErrNoMem
//	}
//
// A site costs one atomic pointer load while disarmed, so sites can sit on
// hot paths (page materialization, fd allocation) without measurable cost.
// Arming a site installs a Spec — a deterministic plan in the same shape as
// the rfs wire-fault plans: decisions are a pure function of the hit ordinal
// (nth-hit, every-k), optionally scoped to one pid, optionally driven by a
// seeded pseudo-random sequence. Identical plans over identical executions
// inject identical faults, which is what makes storms replayable and their
// fallout debuggable (PR 1's ktrace determinism harness applies unchanged).
//
// The package is a leaf: it knows nothing of the kernel, and every consumer
// (mem, kernel, memfs, procfs, rfs) shares the Default registry, which the
// /procx/faults control file exposes at run time.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Spec is a deterministic fault plan for one site. All criteria are ANDed
// with the pid scope and the injection budget; among the firing criteria
// (Nth, Every, Prob) any match fires. A Spec with no firing criterion fires
// on every matching hit.
type Spec struct {
	Nth   uint64 // fire on exactly the nth matching hit (1-based)
	Every uint64 // fire on every kth matching hit
	Count uint64 // stop after this many injections (0 = unlimited)
	Pid   int    // only hits attributed to this pid match (0 = any)
	Seed  uint64 // seed for the Prob stream (plans differing only in Seed differ)
	Prob  uint64 // fire with probability Prob/1000 per matching hit
}

// String encodes the spec in the textual plan format ("nth=3 pid=5").
func (sp Spec) String() string {
	var parts []string
	add := func(k string, v uint64) {
		if v != 0 {
			parts = append(parts, k+"="+strconv.FormatUint(v, 10))
		}
	}
	add("nth", sp.Nth)
	add("every", sp.Every)
	add("count", sp.Count)
	add("pid", uint64(sp.Pid))
	add("seed", sp.Seed)
	add("prob", sp.Prob)
	if len(parts) == 0 {
		return "always"
	}
	return strings.Join(parts, " ")
}

// plan is an installed Spec plus its decision state. A fresh plan starts all
// counters at zero, so re-arming a site replays the same decisions.
type plan struct {
	spec Spec
	n    uint64 // matching hits so far
	inj  uint64 // injections so far under this plan
	rng  uint64 // xorshift64 state for Prob decisions
}

// xorshift64 is the deterministic pseudo-random step for Prob plans.
func xorshift64(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}

// Site is one named injection point.
type Site struct {
	name string

	// p is the armed plan; nil means disarmed. The nil check is the entire
	// disabled-path cost.
	p atomic.Pointer[plan]

	mu       sync.Mutex    // serializes armed-path decisions
	hits     atomic.Uint64 // hits observed while armed
	injected atomic.Uint64 // faults injected (all plans, cumulative)
}

// Name returns the site's registered name.
func (s *Site) Name() string { return s.name }

// Hits returns how many times the site was hit while armed.
func (s *Site) Hits() uint64 { return s.hits.Load() }

// Injected returns how many faults the site has injected.
func (s *Site) Injected() uint64 { return s.injected.Load() }

// Plan returns the armed spec, if any.
func (s *Site) Plan() (Spec, bool) {
	if pl := s.p.Load(); pl != nil {
		return pl.spec, true
	}
	return Spec{}, false
}

// Arm installs a plan. The plan's decision state starts fresh, so arming the
// same spec before identical executions injects identical faults.
func (s *Site) Arm(sp Spec) {
	// The +odd-constant keeps a zero seed from producing the all-zero
	// xorshift fixed point while staying a pure function of Seed.
	s.p.Store(&plan{spec: sp, rng: sp.Seed + 0x9e3779b97f4a7c15})
}

// Disarm removes the plan; the site reverts to the single-load disabled path.
func (s *Site) Disarm() { s.p.Store(nil) }

// ResetCounters zeroes the cumulative hit and injection counters.
func (s *Site) ResetCounters() {
	s.hits.Store(0)
	s.injected.Store(0)
}

// Hit reports whether the site should fail this attempt, attributed to pid
// (0 when the caller has no process context; such hits never match a
// pid-scoped plan). Disarmed sites answer false after one atomic load.
func (s *Site) Hit(pid int) bool {
	if s.p.Load() == nil {
		return false
	}
	return s.slowHit(pid)
}

func (s *Site) slowHit(pid int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	pl := s.p.Load()
	if pl == nil {
		return false
	}
	s.hits.Add(1)
	sp := pl.spec
	if sp.Pid != 0 && sp.Pid != pid {
		return false
	}
	pl.n++
	if sp.Count != 0 && pl.inj >= sp.Count {
		return false
	}
	fire := sp.Nth == 0 && sp.Every == 0 && sp.Prob == 0
	if sp.Nth != 0 && pl.n == sp.Nth {
		fire = true
	}
	if sp.Every != 0 && pl.n%sp.Every == 0 {
		fire = true
	}
	if sp.Prob != 0 {
		pl.rng = xorshift64(pl.rng)
		if pl.rng%1000 < sp.Prob {
			fire = true
		}
	}
	if fire {
		pl.inj++
		s.injected.Add(1)
	}
	return fire
}

// Registry holds the named sites. Sites register once at package init time;
// controllers arm and disarm them at run time.
type Registry struct {
	mu    sync.Mutex
	sites map[string]*Site
	order []*Site // registration order, for stable listings
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{sites: map[string]*Site{}} }

// Default is the registry every kernel subsystem registers with; the
// /procx/faults control file exposes it.
var Default = NewRegistry()

// Register returns the site named name, creating it if needed. Registering
// the same name twice returns the same site.
func (r *Registry) Register(name string) *Site {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.sites[name]; ok {
		return s
	}
	s := &Site{name: name}
	r.sites[name] = s
	r.order = append(r.order, s)
	return s
}

// Register registers name with the Default registry.
func Register(name string) *Site { return Default.Register(name) }

// Lookup returns the site named name, or nil.
func (r *Registry) Lookup(name string) *Site {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sites[name]
}

// Sites returns the registered sites in registration order.
func (r *Registry) Sites() []*Site {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Site(nil), r.order...)
}

// SiteNames returns the registered names, sorted.
func (r *Registry) SiteNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.sites))
	for n := range r.sites {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DisarmAll removes every plan.
func (r *Registry) DisarmAll() {
	for _, s := range r.Sites() {
		s.Disarm()
	}
}

// Reset disarms every site and zeroes every counter: the clean slate a
// determinism comparison starts from.
func (r *Registry) Reset() {
	for _, s := range r.Sites() {
		s.Disarm()
		s.ResetCounters()
	}
}

// AnyArmed reports whether any site has a plan installed.
func (r *Registry) AnyArmed() bool {
	for _, s := range r.Sites() {
		if _, ok := s.Plan(); ok {
			return true
		}
	}
	return false
}

// TotalInjected sums the injection counters over all sites.
func (r *Registry) TotalInjected() uint64 {
	var n uint64
	for _, s := range r.Sites() {
		n += s.Injected()
	}
	return n
}

// EncodeText renders the registry as the /procx/faults file contents: one
// line per site, in registration order.
//
//	site mem.page plan=nth=3 hits=12 injected=1
//	site kernel.fork plan=- hits=0 injected=0
func (r *Registry) EncodeText() []byte {
	var b strings.Builder
	for _, s := range r.Sites() {
		planStr := "-"
		if sp, ok := s.Plan(); ok {
			planStr = strings.ReplaceAll(sp.String(), " ", ",")
		}
		fmt.Fprintf(&b, "site %s plan=%s hits=%d injected=%d\n",
			s.Name(), planStr, s.Hits(), s.Injected())
	}
	return []byte(b.String())
}

// ErrUnknownSite reports a command naming a site nothing registered.
var ErrUnknownSite = errors.New("fault: unknown site")

// ErrBadCommand reports a malformed control command.
var ErrBadCommand = errors.New("fault: bad command")

// ParseSpec parses "k=v" fields (nth, every, count, pid, seed, prob) into a
// Spec. Fields may be space- or comma-separated.
func ParseSpec(args string) (Spec, error) {
	var sp Spec
	fields := strings.FieldsFunc(args, func(r rune) bool { return r == ' ' || r == ',' || r == '\t' })
	for _, f := range fields {
		if f == "always" {
			continue
		}
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return Spec{}, fmt.Errorf("%w: field %q", ErrBadCommand, f)
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("%w: field %q", ErrBadCommand, f)
		}
		switch k {
		case "nth":
			sp.Nth = n
		case "every":
			sp.Every = n
		case "count":
			sp.Count = n
		case "pid":
			sp.Pid = int(n)
		case "seed":
			sp.Seed = n
		case "prob":
			if n > 1000 {
				n = 1000
			}
			sp.Prob = n
		default:
			return Spec{}, fmt.Errorf("%w: field %q", ErrBadCommand, f)
		}
	}
	return sp, nil
}

// Exec runs one textual control command against the registry:
//
//	clear            disarm every site
//	clear <site>     disarm one site
//	reset            disarm every site and zero all counters
//	<site> [k=v...]  arm a site with the given Spec fields
//
// Blank lines and #-comments are ignored.
func (r *Registry) Exec(line string) error {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return nil
	}
	name, rest, _ := strings.Cut(line, " ")
	switch name {
	case "clear":
		rest = strings.TrimSpace(rest)
		if rest == "" {
			r.DisarmAll()
			return nil
		}
		s := r.Lookup(rest)
		if s == nil {
			return fmt.Errorf("%w: %q", ErrUnknownSite, rest)
		}
		s.Disarm()
		return nil
	case "reset":
		r.Reset()
		return nil
	}
	s := r.Lookup(name)
	if s == nil {
		return fmt.Errorf("%w: %q", ErrUnknownSite, name)
	}
	sp, err := ParseSpec(rest)
	if err != nil {
		return err
	}
	s.Arm(sp)
	return nil
}

// ExecAll runs a batch of newline-separated commands, stopping at the first
// failure.
func (r *Registry) ExecAll(text string) error {
	for _, line := range strings.Split(text, "\n") {
		if err := r.Exec(line); err != nil {
			return err
		}
	}
	return nil
}

// Seq is the deterministic ordinal-and-count core shared by fault plans: it
// numbers decision points and tallies injections per kind. The rfs transport
// plans (rfs.Faults) and the per-site counters above are both built on it,
// so wire-level and kernel-level injection share one bookkeeping shape.
type Seq struct {
	mu       sync.Mutex
	n        int
	injected map[int]int
}

// Next returns the current ordinal and advances it.
func (s *Seq) Next() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.n
	s.n++
	return n
}

// Note records one injection of kind.
func (s *Seq) Note(kind int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.injected == nil {
		s.injected = map[int]int{}
	}
	s.injected[kind]++
}

// Injected reports how many injections of kind have been noted.
func (s *Seq) Injected(kind int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected[kind]
}
