package memfs

import "repro/internal/vfs"

// nodeState is one node's captured contents.
type nodeState struct {
	attr     vfs.Attr
	data     []byte
	children map[string]*node // same node pointers; the map itself is copied
}

// FSState is a deep copy of the file system tree, captured for whole-kernel
// checkpoints. States are keyed by node identity and restored in place, so
// every live pointer into the tree — mapped segments' backing objects, open
// file handles, exec vnodes — remains valid across a restore. Nodes created
// after the capture simply become unreachable; nodes removed after it are
// re-linked by restoring their parent's child map, which still references
// them.
type FSState struct {
	nodes map[*node]*nodeState
}

// SaveState captures every node reachable from the root.
func (fs *FS) SaveState() *FSState {
	st := &FSState{nodes: map[*node]*nodeState{}}
	fs.root.save(st)
	return st
}

func (n *node) save(st *FSState) {
	n.mu.Lock()
	ns := &nodeState{attr: n.attr}
	if n.data != nil {
		ns.data = append([]byte(nil), n.data...)
	}
	if n.children != nil {
		ns.children = make(map[string]*node, len(n.children))
		for name, c := range n.children {
			ns.children[name] = c
		}
	}
	n.mu.Unlock()
	st.nodes[n] = ns
	for _, c := range ns.children {
		if _, done := st.nodes[c]; !done {
			c.save(st)
		}
	}
}

// RestoreState rewinds the tree in place to a state captured by SaveState.
// The state remains reusable. Every restored file's revision is bumped so
// frame-cached pages of mapped files revalidate against the restored
// contents.
func (fs *FS) RestoreState(st *FSState) {
	for n, ns := range st.nodes {
		n.mu.Lock()
		n.attr = ns.attr
		n.data = append([]byte(nil), ns.data...)
		if ns.children == nil {
			n.children = nil
		} else {
			n.children = make(map[string]*node, len(ns.children))
			for name, c := range ns.children {
				n.children[name] = c
			}
		}
		n.rev.Add(1)
		n.mu.Unlock()
	}
}
