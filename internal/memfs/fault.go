package memfs

import "repro/internal/fault"

// Fault-injection sites for the in-memory file system. The vnode layer has
// no process context, so hits carry pid 0 and pid-scoped plans never fire
// here; site-wide plans (nth-hit, every-k, seeded) do. Injected errors use
// the vfs sentinels the kernel maps to ENOSPC and EIO — the file-system
// errors the paper's error-return semantics are supposed to carry through
// read(2)/write(2)/creat(2) unchanged.
var (
	siteFaultCreate = fault.Register("memfs.create") // node allocation (creat, mkdir)
	siteFaultRead   = fault.Register("memfs.read")   // handle reads
	siteFaultWrite  = fault.Register("memfs.write")  // handle writes
)
