package memfs

import (
	"bytes"
	"testing"

	"repro/internal/types"
	"repro/internal/vfs"
)

func newFixture(t *testing.T) (*FS, *vfs.NS) {
	t.Helper()
	clock := int64(0)
	fs := New(func() int64 { clock++; return clock })
	ns := vfs.NewNS(fs.Root())
	return fs, ns
}

func TestWriteAndReadFile(t *testing.T) {
	fs, ns := newFixture(t)
	if err := fs.WriteFile("/bin/hello", []byte("payload"), 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	cl := &vfs.Client{NS: ns, Cred: types.UserCred(100, 10)}
	data, err := cl.ReadFile("/bin/hello")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "payload" {
		t.Fatalf("data = %q", data)
	}
	attr, err := cl.Stat("/bin/hello")
	if err != nil {
		t.Fatal(err)
	}
	if attr.Mode != 0o755 || attr.Size != 7 || attr.Type != vfs.VREG {
		t.Fatalf("attr = %+v", attr)
	}
}

func TestPermissionEnforcement(t *testing.T) {
	fs, ns := newFixture(t)
	fs.WriteFile("/secret", []byte("x"), 0o600, 0, 0)
	user := &vfs.Client{NS: ns, Cred: types.UserCred(100, 10)}
	if _, err := user.Open("/secret", vfs.ORead); err != vfs.ErrPerm {
		t.Fatalf("err = %v, want ErrPerm", err)
	}
	root := &vfs.Client{NS: ns, Cred: types.RootCred()}
	if _, err := root.Open("/secret", vfs.ORead); err != nil {
		t.Fatalf("root open failed: %v", err)
	}
	// Search permission on directories is enforced too.
	fs.MkdirAll("/locked", 0o700)
	fs.WriteFile("/locked/f", []byte("y"), 0o644, 0, 0)
	if _, err := user.Open("/locked/f", vfs.ORead); err != vfs.ErrPerm {
		t.Fatalf("err = %v, want ErrPerm through locked dir", err)
	}
}

func TestCreateRemove(t *testing.T) {
	fs, ns := newFixture(t)
	fs.MkdirAll("/tmp", 0o777)
	cl := &vfs.Client{NS: ns, Cred: types.UserCred(100, 10)}
	f, err := cl.Open("/tmp/new", vfs.OWrite|vfs.OCreat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	attr, err := cl.Stat("/tmp/new")
	if err != nil {
		t.Fatal(err)
	}
	if attr.UID != 100 {
		t.Fatalf("creator uid = %d", attr.UID)
	}
	dw, name, err := ns.LookupDir("/tmp/new", cl.Cred)
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.VRemove(name, cl.Cred); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Stat("/tmp/new"); err != vfs.ErrNotExist {
		t.Fatal("file should be gone")
	}
}

func TestReadDirSorted(t *testing.T) {
	fs, ns := newFixture(t)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		fs.WriteFile("/d/"+n, nil, 0o644, 0, 0)
	}
	cl := &vfs.Client{NS: ns, Cred: types.RootCred()}
	ents, err := cl.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 3 || ents[0].Name != "alpha" || ents[1].Name != "mid" || ents[2].Name != "zeta" {
		t.Fatalf("ents = %+v", ents)
	}
}

func TestSequentialReadWriteAndSeek(t *testing.T) {
	fs, ns := newFixture(t)
	fs.WriteFile("/f", []byte("0123456789"), 0o666, 0, 0)
	cl := &vfs.Client{NS: ns, Cred: types.UserCred(1, 1)}
	f, err := cl.Open("/f", vfs.ORead|vfs.OWrite)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	f.Read(buf)
	if string(buf) != "0123" {
		t.Fatalf("first read %q", buf)
	}
	f.Read(buf)
	if string(buf) != "4567" {
		t.Fatalf("second read %q", buf)
	}
	if _, err := f.Seek(2, vfs.SeekSet); err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("XY"))
	if off, _ := f.Seek(0, vfs.SeekCur); off != 4 {
		t.Fatalf("offset = %d", off)
	}
	if off, _ := f.Seek(-1, vfs.SeekEnd); off != 9 {
		t.Fatalf("seek end = %d", off)
	}
	data, _ := cl.ReadFile("/f")
	if string(data) != "01XY456789" {
		t.Fatalf("data = %q", data)
	}
	// Read past EOF.
	f.Seek(100, vfs.SeekSet)
	if _, err := f.Read(buf); err != vfs.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestOTruncAndClosedFile(t *testing.T) {
	fs, ns := newFixture(t)
	fs.WriteFile("/f", []byte("long content"), 0o666, 0, 0)
	cl := &vfs.Client{NS: ns, Cred: types.UserCred(1, 1)}
	f, err := cl.Open("/f", vfs.OWrite|vfs.OTrunc)
	if err != nil {
		t.Fatal(err)
	}
	attr, _ := cl.Stat("/f")
	if attr.Size != 0 {
		t.Fatal("OTrunc should empty the file")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != vfs.ErrBadFD {
		t.Fatal("double close should be EBADF")
	}
	if _, err := f.Write([]byte("x")); err != vfs.ErrBadFD {
		t.Fatal("write after close should be EBADF")
	}
}

func TestReadNotOpenForWrite(t *testing.T) {
	fs, ns := newFixture(t)
	fs.WriteFile("/f", []byte("data"), 0o666, 0, 0)
	cl := &vfs.Client{NS: ns, Cred: types.UserCred(1, 1)}
	f, _ := cl.Open("/f", vfs.ORead)
	if _, err := f.Write([]byte("x")); err != vfs.ErrBadFD {
		t.Fatal("write on read-only fd should fail")
	}
	g, _ := cl.Open("/f", vfs.OWrite)
	if _, err := g.Read(make([]byte, 1)); err != vfs.ErrBadFD {
		t.Fatal("read on write-only fd should fail")
	}
}

func TestMemObjectMapping(t *testing.T) {
	fs, _ := newFixture(t)
	content := bytes.Repeat([]byte{0xEE}, 100)
	fs.WriteFile("/bin/prog", content, 0o755, 0, 0)
	obj, err := fs.Object("/bin/prog")
	if err != nil {
		t.Fatal(err)
	}
	if obj.ObjName() != "/bin/prog" {
		t.Fatalf("ObjName = %q", obj.ObjName())
	}
	if obj.ObjSize() != 100 {
		t.Fatalf("ObjSize = %d", obj.ObjSize())
	}
	buf := make([]byte, 8)
	obj.ReadObj(buf, 96)
	if buf[0] != 0xEE || buf[3] != 0xEE || buf[4] != 0 {
		t.Fatalf("ReadObj zero-fill wrong: %v", buf)
	}
	if err := obj.WriteObj([]byte{1, 2}, 200); err != nil {
		t.Fatal(err)
	}
	if obj.ObjSize() != 202 {
		t.Fatal("WriteObj should grow the file")
	}
	// Directories are not mappable.
	if _, err := fs.Object("/bin"); err == nil {
		t.Fatal("directory should not be an object")
	}
}

func TestMkdirAllIdempotentAndConflicts(t *testing.T) {
	fs, _ := newFixture(t)
	if err := fs.MkdirAll("/a/b/c", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/a/b/c", 0o755); err != nil {
		t.Fatal("MkdirAll should be idempotent")
	}
	fs.WriteFile("/a/file", nil, 0o644, 0, 0)
	if err := fs.MkdirAll("/a/file/sub", 0o755); err != vfs.ErrNotDir {
		t.Fatalf("err = %v, want ErrNotDir", err)
	}
}

func TestChmodChown(t *testing.T) {
	fs, ns := newFixture(t)
	fs.WriteFile("/f", nil, 0o644, 0, 0)
	fs.Chmod("/f", 0o4755)
	fs.Chown("/f", 5, 6)
	cl := &vfs.Client{NS: ns, Cred: types.RootCred()}
	attr, _ := cl.Stat("/f")
	if attr.Mode != 0o4755 || attr.UID != 5 || attr.GID != 6 {
		t.Fatalf("attr = %+v", attr)
	}
	if !attr.IsSetID() {
		t.Fatal("setuid bit lost")
	}
}

func TestRemoveNonEmptyDirRefused(t *testing.T) {
	fs, ns := newFixture(t)
	fs.WriteFile("/d/f", nil, 0o644, 0, 0)
	dw, name, err := ns.LookupDir("/d", types.RootCred())
	if err != nil {
		t.Fatal(err)
	}
	if err := dw.VRemove(name, types.RootCred()); err != vfs.ErrBusy {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
}

func TestPollOnRegularFile(t *testing.T) {
	fs, ns := newFixture(t)
	fs.WriteFile("/f", []byte("x"), 0o644, 0, 0)
	cl := &vfs.Client{NS: ns, Cred: types.RootCred()}
	f, _ := cl.Open("/f", vfs.ORead)
	if f.Poll(vfs.PollIn) != 0 {
		t.Fatal("regular files do not implement poll; expect 0")
	}
}
