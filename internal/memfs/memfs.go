// Package memfs is a conventional file system type for the simulated system:
// a hierarchical in-memory store of directories and regular files with full
// UNIX attributes (including the set-id bits honored by exec). It hosts the
// executables, shared libraries and data files that the process model runs;
// its regular files also implement mem.Object so they can be mapped into
// address spaces — which is what makes text/data mappings, PIOCOPENM, and
// copy-on-write breakpoint isolation work end to end.
package memfs

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/types"
	"repro/internal/vfs"
)

// FS is one memfs instance.
type FS struct {
	root *node
	now  func() int64
}

// New creates a file system whose timestamps come from now (typically the
// simulated kernel clock).
func New(now func() int64) *FS {
	if now == nil {
		now = func() int64 { return 0 }
	}
	fs := &FS{now: now}
	fs.root = &node{
		fs:   fs,
		path: "/",
		attr: vfs.Attr{Type: vfs.VDIR, Mode: 0o755, Nlink: 2},
	}
	fs.root.children = map[string]*node{}
	return fs
}

// Root returns the root directory vnode.
func (fs *FS) Root() vfs.Dir { return fs.root }

type node struct {
	fs   *FS
	path string

	mu       sync.Mutex
	attr     vfs.Attr
	data     []byte           // regular files
	children map[string]*node // directories

	// rev counts content changes to data (in-place or reallocating). It
	// backs the mem.RevBytes contract that lets mapped pages of this file
	// be frame-cached by the vCPU fast path: a cached page is revalidated
	// against ObjRev before every use, so a write to a mapped file is
	// visible to a running process exactly as it is on the ReadObj slow
	// path. Atomic so ObjRev needs no lock on the per-instruction path.
	rev atomic.Uint64
}

// --- vfs.Vnode ---

// VAttr implements vfs.Vnode.
func (n *node) VAttr() (vfs.Attr, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	a := n.attr
	a.Size = int64(len(n.data))
	if n.attr.Type == vfs.VDIR {
		a.Size = int64(len(n.children))
	}
	return a, nil
}

// VOpen implements vfs.Vnode.
func (n *node) VOpen(flags int, c types.Cred) (vfs.Handle, error) {
	n.mu.Lock()
	isDir := n.attr.Type == vfs.VDIR
	attr := n.attr
	n.mu.Unlock()
	if isDir && flags&vfs.OWrite != 0 {
		return nil, vfs.ErrIsDir
	}
	var want uint16
	if flags&vfs.ORead != 0 {
		want |= 4
	}
	if flags&vfs.OWrite != 0 {
		want |= 2
	}
	if err := vfs.CheckAccess(attr, c, want); err != nil {
		return nil, err
	}
	if flags&vfs.OTrunc != 0 && !isDir {
		n.mu.Lock()
		n.data = nil
		n.rev.Add(1)
		n.attr.MTime = n.fs.now()
		n.mu.Unlock()
	}
	return &fileHandle{n: n}, nil
}

// --- vfs.Dir ---

// VLookup implements vfs.Dir.
func (n *node) VLookup(name string, c types.Cred) (vfs.Vnode, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.attr.Type != vfs.VDIR {
		return nil, vfs.ErrNotDir
	}
	child, ok := n.children[name]
	if !ok {
		return nil, vfs.ErrNotExist
	}
	return child, nil
}

// VReadDir implements vfs.Dir.
func (n *node) VReadDir(c types.Cred) ([]vfs.Dirent, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.attr.Type != vfs.VDIR {
		return nil, vfs.ErrNotDir
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]vfs.Dirent, 0, len(names))
	for _, name := range names {
		a, _ := n.children[name].VAttr()
		out = append(out, vfs.Dirent{Name: name, Attr: a})
	}
	return out, nil
}

// --- vfs.DirWriter ---

// VCreate implements vfs.DirWriter.
func (n *node) VCreate(name string, mode uint16, c types.Cred) (vfs.Vnode, error) {
	return n.addChild(name, mode, c, vfs.VREG)
}

// VMkdir implements vfs.DirWriter.
func (n *node) VMkdir(name string, mode uint16, c types.Cred) (vfs.Dir, error) {
	child, err := n.addChild(name, mode, c, vfs.VDIR)
	if err != nil {
		return nil, err
	}
	return child.(*node), nil
}

func (n *node) addChild(name string, mode uint16, c types.Cred, typ vfs.VType) (vfs.Vnode, error) {
	if name == "" || name == "." || name == ".." {
		return nil, vfs.ErrInval
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.attr.Type != vfs.VDIR {
		return nil, vfs.ErrNotDir
	}
	if err := vfs.CheckAccess(n.attr, c, 2); err != nil {
		return nil, err
	}
	if _, dup := n.children[name]; dup {
		return nil, vfs.ErrExist
	}
	// The node-allocation check runs after validation so an injected ENOSPC
	// reports a full file system, not a malformed request, and before the
	// child exists so nothing dangles.
	if siteFaultCreate.Hit(0) {
		return nil, vfs.ErrNoSpace
	}
	child := &node{
		fs:   n.fs,
		path: joinPath(n.path, name),
		attr: vfs.Attr{Type: typ, Mode: mode, UID: c.EUID, GID: c.EGID, MTime: n.fs.now(), Nlink: 1},
	}
	if typ == vfs.VDIR {
		child.children = map[string]*node{}
		child.attr.Nlink = 2
	}
	n.children[name] = child
	n.attr.MTime = n.fs.now()
	return child, nil
}

// VRemove implements vfs.DirWriter.
func (n *node) VRemove(name string, c types.Cred) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.attr.Type != vfs.VDIR {
		return vfs.ErrNotDir
	}
	if err := vfs.CheckAccess(n.attr, c, 2); err != nil {
		return err
	}
	child, ok := n.children[name]
	if !ok {
		return vfs.ErrNotExist
	}
	child.mu.Lock()
	nonEmptyDir := child.attr.Type == vfs.VDIR && len(child.children) > 0
	child.mu.Unlock()
	if nonEmptyDir {
		return vfs.ErrBusy
	}
	delete(n.children, name)
	n.attr.MTime = n.fs.now()
	return nil
}

// SetMode changes the permission bits; the kernel's chmod(2) reaches it
// through an interface assertion after its ownership check.
func (n *node) SetMode(mode uint16) {
	n.mu.Lock()
	n.attr.Mode = mode
	n.attr.MTime = n.fs.now()
	n.mu.Unlock()
}

// --- mem.Object (regular files can be mapped) ---

// ObjName implements mem.Object.
func (n *node) ObjName() string { return n.path }

// ObjSize implements mem.Object.
func (n *node) ObjSize() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return int64(len(n.data))
}

// ReadObj implements mem.Object.
func (n *node) ReadObj(p []byte, off int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i := range p {
		p[i] = 0
	}
	if off < int64(len(n.data)) {
		copy(p, n.data[off:])
	}
}

// WriteObj implements mem.Object: shared mappings write through.
func (n *node) WriteObj(p []byte, off int64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(n.data)) {
		grown := make([]byte, end)
		copy(grown, n.data)
		n.data = grown
	}
	copy(n.data[off:], p)
	n.rev.Add(1)
	n.attr.MTime = n.fs.now()
	return nil
}

// ObjBytes implements mem.RevBytes: the current file contents plus the
// revision under which they may be aliased by frame caches.
func (n *node) ObjBytes() ([]byte, uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.data, n.rev.Load()
}

// ObjRev implements mem.RevBytes. It is consulted on every cached access to
// a mapped page of this file, so it takes no lock.
func (n *node) ObjRev() uint64 { return n.rev.Load() }

var (
	_ vfs.DirWriter = (*node)(nil)
	_ mem.Object    = (*node)(nil)
	_ mem.RevBytes  = (*node)(nil)
)

// fileHandle is the open state of a regular file (or read-only directory).
type fileHandle struct {
	n *node
}

// HRead implements vfs.Handle.
func (h *fileHandle) HRead(p []byte, off int64) (int, error) {
	if siteFaultRead.Hit(0) {
		return 0, vfs.ErrIO
	}
	h.n.mu.Lock()
	defer h.n.mu.Unlock()
	if h.n.attr.Type == vfs.VDIR {
		return 0, vfs.ErrIsDir
	}
	if off >= int64(len(h.n.data)) {
		return 0, vfs.EOF
	}
	n := copy(p, h.n.data[off:])
	return n, nil
}

// HWrite implements vfs.Handle.
func (h *fileHandle) HWrite(p []byte, off int64) (int, error) {
	if siteFaultWrite.Hit(0) {
		return 0, vfs.ErrIO
	}
	if err := h.n.WriteObj(p, off); err != nil {
		return 0, err
	}
	return len(p), nil
}

// HIoctl implements vfs.Handle; regular files have no control operations.
func (h *fileHandle) HIoctl(cmd int, arg interface{}) error { return vfs.ErrNoIoctl }

// HClose implements vfs.Handle.
func (h *fileHandle) HClose() error { return nil }

func joinPath(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}

// --- administrative helpers (used to populate the system at boot) ---

// MkdirAll creates a directory path (and parents) with the given mode, owned
// by root. Existing directories are left alone.
func (fs *FS) MkdirAll(path string, mode uint16) error {
	cur := fs.root
	for _, name := range vfs.Split(path) {
		cur.mu.Lock()
		child, ok := cur.children[name]
		cur.mu.Unlock()
		if !ok {
			vn, err := cur.VMkdir(name, mode, types.RootCred())
			if err != nil {
				return err
			}
			child = vn.(*node)
		}
		if child.attr.Type != vfs.VDIR {
			return vfs.ErrNotDir
		}
		cur = child
	}
	return nil
}

// WriteFile installs a file at path with the given contents, mode and owner,
// creating parent directories as needed and replacing any existing file.
func (fs *FS) WriteFile(path string, data []byte, mode uint16, uid, gid int) error {
	parts := vfs.Split(path)
	if len(parts) == 0 {
		return vfs.ErrInval
	}
	dir := "/"
	for _, p := range parts[:len(parts)-1] {
		dir = joinPath(dir, p)
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	parent, err := fs.lookupNode(dir)
	if err != nil {
		return err
	}
	name := parts[len(parts)-1]
	parent.mu.Lock()
	child, ok := parent.children[name]
	parent.mu.Unlock()
	if !ok {
		vn, err := parent.addChild(name, mode, types.RootCred(), vfs.VREG)
		if err != nil {
			return err
		}
		child = vn.(*node)
	}
	child.mu.Lock()
	child.data = append([]byte(nil), data...)
	child.rev.Add(1)
	child.attr.Mode = mode
	child.attr.UID = uid
	child.attr.GID = gid
	child.attr.MTime = fs.now()
	child.mu.Unlock()
	return nil
}

// Chmod changes a file's mode bits.
func (fs *FS) Chmod(path string, mode uint16) error {
	n, err := fs.lookupNode(path)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.attr.Mode = mode
	n.mu.Unlock()
	return nil
}

// Chown changes a file's owner and group.
func (fs *FS) Chown(path string, uid, gid int) error {
	n, err := fs.lookupNode(path)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.attr.UID = uid
	n.attr.GID = gid
	n.mu.Unlock()
	return nil
}

func (fs *FS) lookupNode(path string) (*node, error) {
	cur := fs.root
	for _, name := range vfs.Split(path) {
		cur.mu.Lock()
		child, ok := cur.children[name]
		cur.mu.Unlock()
		if !ok {
			return nil, vfs.ErrNotExist
		}
		cur = child
	}
	return cur, nil
}

// Object returns the mem.Object for a regular file path, for mapping.
func (fs *FS) Object(path string) (mem.Object, error) {
	n, err := fs.lookupNode(path)
	if err != nil {
		return nil, err
	}
	if n.attr.Type != vfs.VREG {
		return nil, vfs.ErrIsDir
	}
	return n, nil
}
