package kernel

import "repro/internal/ktrace"

// The kernel half of the event-tracing subsystem: the emit helpers called
// from the natural control points in run.go, signal.go, proc.go and
// sysproc.go. Every hot-path call site is guarded by a nil check on the
// rings, so tracing costs two pointer comparisons when disabled.
//
// Two rings can receive an event: the per-process ring (enabled per process
// through the PCTRACE control message or Proc.SetKTrace) and the
// kernel-wide ring (Kernel.EnableKTraceAll), which records every traced
// process's events in one globally ordered stream — the oracle the
// determinism tests compare across boots.

// ktEnabled reports whether any ring would receive events for p.
func (k *Kernel) ktEnabled(p *Proc) bool { return k.KT != nil || p.KT != nil }

// EnableKTraceAll turns on the kernel-wide ring (capacity in events; <= 0
// selects the default) and arranges for every subsequently created process
// to get a per-process ring of the same capacity.
func (k *Kernel) EnableKTraceAll(capacity int) {
	k.KT = ktrace.NewRing(capacity)
	k.KTDefaultCap = k.KT.Cap()
}

// DisableKTraceAll drops the kernel-wide ring and stops auto-enabling
// per-process rings. Existing per-process rings are left alone.
func (k *Kernel) DisableKTraceAll() {
	k.KT = nil
	k.KTDefaultCap = 0
}

// KTraceStats returns the kernel-wide tracing counters. Drops are folded
// in from the kernel-wide ring; per-process ring drops are accumulated as
// they happen (ktEmit) so they survive process reaping.
func (k *Kernel) KTraceStats() ktrace.Stats {
	s := k.ktStats
	if k.KT != nil {
		s.AddDropped(k.KT.Dropped())
	}
	return s
}

// SetKTrace enables (capacity > 0), resizes, or disables (capacity == 0)
// per-process tracing — the PCTRACE control message. Disabling folds the
// ring's drop count into the kernel-wide counters before discarding it.
func (p *Proc) SetKTrace(capacity int) {
	switch {
	case capacity <= 0:
		if p.KT != nil {
			p.k.ktStats.AddDropped(p.KT.Dropped())
			p.ktDropBase = 0
			p.KT = nil
		}
	case p.KT == nil:
		p.KT = ktrace.NewRing(capacity)
	default:
		p.KT.Resize(capacity)
	}
}

// ktEmit stamps and routes one event. Callers guard with ktEnabled so the
// disabled path never reaches here.
func (k *Kernel) ktEmit(p *Proc, e *ktrace.Event) {
	e.Time = k.Now()
	e.Pid = int32(p.Pid)
	k.ktStats.Count(e.Kind, e.What)
	if k.KTTap != nil {
		k.KTTap(e)
	}
	if p.KT != nil {
		p.KT.Append(e)
		// Accumulate this ring's drops incrementally so the kernel-wide
		// counter stays right even after the process is reaped.
		if d := p.KT.Dropped(); d != p.ktDropBase {
			k.ktStats.AddDropped(d - p.ktDropBase)
			p.ktDropBase = d
		}
	}
	if k.KT != nil {
		k.KT.Append(e)
	}
}

// ktSysEntry records a system call entry with its fetched arguments. For
// calls whose first argument is a pathname, the string is captured inline in
// a follow-on KArgStr event — the address space it points into may be gone
// (exit, exec) by the time a tool drains the trace.
func (k *Kernel) ktSysEntry(l *LWP) {
	e := ktrace.Event{
		LWP: int32(l.ID), Kind: ktrace.KSysEntry,
		What: int32(l.sysNum), Args: l.sysArgs,
	}
	k.ktEmit(l.Proc, &e)
	if ktPathArg(l.sysNum) {
		if s, errno := k.copyinStr(l, l.sysArgs[0]); errno == 0 {
			// Chunked across as many events as the string needs, capped at
			// the same bound the stop-and-poll readers apply.
			if len(s) > ktArgStrCap {
				s = s[:ktArgStrCap]
			}
			for off := 0; ; off += ktrace.ArgStrMax {
				ev := ktrace.Event{LWP: int32(l.ID), Kind: ktrace.KArgStr}
				ktrace.EncodeArgStr(&ev, s, off)
				k.ktEmit(l.Proc, &ev)
				if off+ktrace.ArgStrMax >= len(s) {
					break
				}
			}
		}
	}
}

// ktArgStrCap bounds inline string capture, matching the 256-byte display
// bound tools apply when reading strings out of the address space.
const ktArgStrCap = 256

// ktPathArg reports whether a syscall's first argument is a pathname worth
// capturing inline.
func ktPathArg(num int) bool {
	switch num {
	case SysOpen, SysCreat, SysUnlink, SysExec, SysChdir, SysChmod, SysAccess:
		return true
	}
	return false
}

// ktSysExit records a system call exit with its return value and errno.
func (k *Kernel) ktSysExit(l *LWP) {
	e := ktrace.Event{
		LWP: int32(l.ID), Kind: ktrace.KSysExit,
		What: int32(l.sysNum), A: l.sysRet, B: uint32(l.sysErr),
	}
	k.ktEmit(l.Proc, &e)
}

// ktFault records a machine fault.
func (k *Kernel) ktFault(l *LWP, flt int, addr uint32) {
	e := ktrace.Event{
		LWP: int32(l.ID), Kind: ktrace.KFault, What: int32(flt), A: addr,
	}
	k.ktEmit(l.Proc, &e)
}

// ktSigPost records a signal generated for the process — before the
// discard-if-ignored logic, so the trace sees signals that no handler,
// stop, or wait status ever will.
func (k *Kernel) ktSigPost(p *Proc, sig int) {
	e := ktrace.Event{Kind: ktrace.KSigPost, What: int32(sig)}
	k.ktEmit(p, &e)
}

// ktSigDeliver records psig() acting on a signal (handler dispatch or
// default disposition).
func (k *Kernel) ktSigDeliver(l *LWP, sig int, handler uint32) {
	e := ktrace.Event{
		LWP: int32(l.ID), Kind: ktrace.KSigDeliver, What: int32(sig), A: handler,
	}
	k.ktEmit(l.Proc, &e)
}

// ktLWPState records an LWP scheduling-state transition.
func (k *Kernel) ktLWPState(l *LWP, old LState) {
	e := ktrace.Event{
		LWP: int32(l.ID), Kind: ktrace.KLWPState,
		What: int32(l.state), A: uint32(old), B: uint32(l.why),
		Args: [6]uint32{uint32(l.what)},
	}
	k.ktEmit(l.Proc, &e)
}

// ktFork records a fork from the parent's perspective.
func (k *Kernel) ktFork(p *Proc, childPid int) {
	e := ktrace.Event{Kind: ktrace.KFork, What: int32(childPid)}
	k.ktEmit(p, &e)
}

// ktExit records process termination with its wait(2) status encoding.
func (k *Kernel) ktExit(p *Proc, status int) {
	e := ktrace.Event{Kind: ktrace.KExit, What: int32(status)}
	k.ktEmit(p, &e)
}

// ktSchedTick records a quantum expiry (involuntary context switch).
func (k *Kernel) ktSchedTick(l *LWP) {
	e := ktrace.Event{LWP: int32(l.ID), Kind: ktrace.KSchedTick}
	k.ktEmit(l.Proc, &e)
}
