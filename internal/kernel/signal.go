package kernel

import (
	"repro/internal/types"
	"repro/internal/vcpu"
)

// sigALRM is a local alias to keep kernel.go free of a types import cycle of
// names; all other signal numbers are used via the types package directly.
const sigALRM = types.SIGALRM

// PostSignal generates a signal for a process — the kernel half of kill(2),
// alarm expiry, fault conversion and PIOCKILL. Generation and receipt are
// distinct: "a signal does not cause a process to stop when it is generated,
// only when it is received", which is exactly why the paper prefers faults
// over signals for breakpoints.
//
// Locking (SMP): the caller holds the global lock; when p is not the
// calling process (kill, SIGCHLD, alarm sweep, PIOCKILL) the caller holds
// p's process lock as well, because the usage counter, the disposition
// table and the hold masks read here are written by p's own process-local
// system calls under only that lock.
func (k *Kernel) PostSignal(p *Proc, sig int) {
	if p == nil || !p.Alive() || sig < 1 || sig > types.MaxSig {
		return
	}
	p.Usage.Signals++
	// Record generation before the discard-if-ignored logic below: the
	// trace observes signals that nothing else ever will.
	if k.ktEnabled(p) {
		k.ktSigPost(p, sig)
	}
	switch {
	case sig == types.SIGCONT:
		// Generating SIGCONT resumes a job-control-stopped process even if
		// SIGCONT is blocked or ignored, and discards pending stop signals.
		for _, s := range []int{types.SIGSTOP, types.SIGTSTP, types.SIGTTIN, types.SIGTTOU} {
			p.SigPend.Del(s)
		}
		if p.jobStopped {
			p.jobStopped = false
			for _, l := range p.LWPs {
				l.jobClaim = false
				l.recompute()
			}
			k.tracef("pid %d continued by SIGCONT", p.Pid)
		}
	case types.IsJobControlStop(sig):
		// Generating a stop signal discards pending SIGCONT.
		p.SigPend.Del(types.SIGCONT)
	}

	// Discard at generation if the action is to ignore and nothing will
	// ever observe the signal (not traced via /proc or ptrace; SIGKILL and
	// SIGSTOP cannot be ignored). SIGCONT's wake-up side effect above has
	// already been applied, so a default-action SIGCONT is also discarded.
	if sig != types.SIGKILL && sig != types.SIGSTOP && !p.Trace.Sigs.Has(sig) && !p.Ptraced {
		act := p.Actions[sig]
		ignored := act.Handler == SigIGN ||
			(act.Handler == SigDFL &&
				(types.SigDefault(sig) == types.DispIgnore || sig == types.SIGCONT))
		if ignored {
			return
		}
	}

	p.SigPend.Add(sig)
	p.noteIntr()
	// Wake any interruptible sleeper that can receive it, so issig() runs.
	for _, l := range p.LWPs {
		if l.sleeping && (!l.SigHold.Has(sig) || sig == types.SIGKILL) {
			l.wake()
		}
		if sig == types.SIGKILL && l.Stopped() {
			// SIGKILL cannot be blocked by stops other than /proc's own
			// claims; job-control stops do not survive it.
			l.jobClaim = false
			l.recompute()
		}
	}
}

// promote moves the lowest-numbered deliverable pending signal to the LWP's
// current signal, implementing the "current signal" concept that fixed the
// race the paper's footnote describes.
func (l *LWP) promote() {
	if l.CurSig != 0 {
		return // a current signal already exists; do not promote another
	}
	p := l.Proc
	for _, sig := range p.SigPend.Members() {
		if !l.SigHold.Has(sig) || sig == types.SIGKILL {
			p.SigPend.Del(sig)
			l.CurSig = sig
			return
		}
	}
}

// issig implements the complete control logic of the paper's Figure 4: the
// single kernel function that handles requested stops, signalled stops,
// ptrace stops and job-control stops — with /proc getting the last word. It
// returns true when a current signal remains to be acted on by psig.
//
// inSleep distinguishes the call made from within an interruptible sleep:
// there a true return means the system call fails with EINTR.
func (k *Kernel) issig(l *LWP, inSleep bool) bool {
	p := l.Proc
	for {
		// A /proc stop directive is honored first and last: a process
		// resumed by SIGCONT or ptrace stops again on a requested stop
		// before exiting issig().
		if l.dstop {
			l.dstop = false
			l.stopEvent(WhyRequested, 0)
			return false // remains stopped; caller re-enters on resume
		}

		l.promote()
		if l.CurSig == 0 {
			return false
		}
		sig := l.CurSig

		// Signalled stop: receipt of a traced signal. If the process is
		// also ptraced, the ptrace claim is established at the same stop:
		// when /proc later sets it running it remains stopped on the
		// signalled stop — ptrace has control.
		if p.Trace.Sigs.Has(sig) && !l.sigStopTaken {
			l.sigStopTaken = true
			if p.Ptraced && !l.ptraceStopTaken && sig != types.SIGKILL {
				l.ptraceStopTaken = true
				l.ptraceClaim = true
				l.waitReport = statusStopped(sig)
				k.notifyParent(p)
			}
			l.stopEvent(WhySignalled, sig)
			return false
		}

		// Legacy ptrace: a ptraced process stops on receipt of ANY signal,
		// whether or not traced via /proc. If both mechanisms apply, the
		// /proc stop comes first (above); once /proc sets it running, the
		// process remains stopped here — ptrace has control.
		if p.Ptraced && !l.ptraceStopTaken && sig != types.SIGKILL {
			l.ptraceStopTaken = true
			l.ptraceClaim = true
			l.why, l.what = WhyPtrace, sig
			l.recompute()
			l.waitReport = statusStopped(sig)
			k.notifyParent(p)
			k.tracef("pid %d ptrace-stop sig %s", p.Pid, types.SigName(sig))
			return false
		}

		// The stop/ptrace bookkeeping is per-delivery: reset once we get
		// past both stop points with the signal still current.
		l.sigStopTaken = false
		l.ptraceStopTaken = false

		if l.CurSig == 0 {
			continue // the debugger cleared it; look again
		}
		sig = l.CurSig

		act := p.Actions[sig]
		// SIGKILL's action is always the default, always fatal.
		if sig == types.SIGKILL {
			return true
		}

		// Job-control stop signals: the default action is taken inside
		// issig(). The process may thus stop twice for one signal: first
		// on the signalled stop above, then here if it was set running
		// without clearing the signal.
		if types.IsJobControlStop(sig) && act.Handler == SigDFL {
			l.CurSig = 0
			p.jobStopped = true
			for _, sib := range p.LWPs {
				if sib.state != LZombie {
					sib.jobClaim = true
					sib.recompute()
				}
			}
			l.why, l.what = WhyJobControl, sig
			l.waitReport = statusStopped(sig)
			k.notifyParent(p)
			k.tracef("pid %d job-control stop %s", p.Pid, types.SigName(sig))
			return false // stopped; restarted only by SIGCONT
		}

		if act.Handler == SigIGN ||
			(act.Handler == SigDFL && types.SigDefault(sig) == types.DispIgnore) ||
			(sig == types.SIGCONT && act.Handler == SigDFL) {
			l.CurSig = 0
			continue
		}
		return true
	}
}

// psig acts on the current signal: either arrange for the user handler to
// run, or terminate the process (possibly with a core dump).
func (k *Kernel) psig(l *LWP) {
	p := l.Proc
	sig := l.CurSig
	if sig == 0 {
		return
	}
	l.CurSig = 0
	act := p.Actions[sig]
	if k.ktEnabled(p) {
		k.ktSigDeliver(l, sig, act.Handler)
	}
	if sig != types.SIGKILL && act.Handler > SigIGN {
		k.pushSignalFrame(l, sig, act)
		return
	}
	// Default action: terminate (with core for the core-dump signals).
	status := sig & 0x7F
	if types.SigDefault(sig) == types.DispCore {
		status |= 0x80
		k.writeCore(p, sig)
	}
	k.tracef("pid %d killed by %s", p.Pid, types.SigName(sig))
	k.exitProc(p, status)
}

// pushSignalFrame modifies the saved registers and the user-level stack so
// that the process enters the signal handler when resumed at user level. The
// frame carries everything sigreturn needs to restore.
func (k *Kernel) pushSignalFrame(l *LWP, sig int, act SigAction) {
	// Frame layout (first pushed to last): PC, PSW, R7..R0, hold mask (4
	// words), sig. sigreturn pops it all back, so the interrupted
	// computation's registers survive the handler.
	hold := l.SigHold
	words := []uint32{l.CPU.Regs.PC, l.CPU.Regs.PSW}
	for i := vcpu.NumRegs - 1; i >= 0; i-- {
		words = append(words, l.CPU.Regs.R[i])
	}
	words = append(words,
		uint32(hold[1]>>32), uint32(hold[1]), uint32(hold[0]>>32), uint32(hold[0]),
		uint32(sig))
	for _, v := range words {
		if t := l.CPU.Push(v); t != nil {
			// Stack gone bad: the traditional response is SIGSEGV with
			// default action, i.e. death.
			k.tracef("pid %d signal stack fault", l.Proc.Pid)
			k.exitProc(l.Proc, types.SIGSEGV&0x7F|0x80)
			return
		}
	}
	// The handler runs with the signal itself and the action mask held.
	l.SigHold = l.SigHold.Union(act.Mask)
	l.SigHold.Add(sig)
	l.CPU.Regs.PC = act.Handler
	l.CPU.Regs.R[1] = uint32(sig)
	l.CPU.Regs.PSW &^= uint32(0xF) // clear condition flags
}

// sigreturnFrame pops the signal frame pushed by pushSignalFrame.
func (k *Kernel) sigreturnFrame(l *LWP) Errno {
	pop := func() (uint32, Errno) {
		v, t := l.CPU.Pop()
		if t != nil {
			return 0, EFAULT
		}
		return v, 0
	}
	var vals [7 + vcpu.NumRegs]uint32 // sig, mask*4, R0..R7, PSW, PC
	for i := range vals {
		v, e := pop()
		if e != 0 {
			return e
		}
		vals[i] = v
	}
	// vals: [0]=sig, [1]=h0lo, [2]=h0hi, [3]=h1lo, [4]=h1hi,
	// [5..5+N-1]=R0..R7, then PSW, PC.
	l.SigHold = types.SigSet{
		uint64(vals[2])<<32 | uint64(vals[1]),
		uint64(vals[4])<<32 | uint64(vals[3]),
	}
	for i := 0; i < vcpu.NumRegs; i++ {
		l.CPU.Regs.R[i] = vals[5+i]
	}
	l.CPU.Regs.PSW = vals[5+vcpu.NumRegs]
	l.CPU.Regs.PC = vals[6+vcpu.NumRegs]
	return 0
}

// sigNameFor is a tiny indirection so syscall.go can build the assembler
// predefine table without importing types at its call site.
func sigNameFor(sig int) string { return types.SigName(sig) }

// notifyParent wakes a parent blocked in wait(2).
func (k *Kernel) notifyParent(p *Proc) {
	if p.Parent != nil {
		k.wakeAll(&p.Parent.waitq)
	}
}

// Status encodings compatible with the classic wait(2) interface.

// statusExited encodes normal termination.
func statusExited(code int) int { return (code & 0xFF) << 8 }

// statusSignaled encodes termination by signal (bit 0x80 = core dumped).
func statusSignaled(sig int, core bool) int {
	s := sig & 0x7F
	if core {
		s |= 0x80
	}
	return s
}

// statusStopped encodes a stop reported to wait(2).
func statusStopped(sig int) int { return (sig&0xFF)<<8 | 0x7F }

// WIFSTOPPED and friends, for tests and tools.

// WIfExited reports normal termination and the exit code.
func WIfExited(status int) (bool, int) {
	if status&0xFF == 0 {
		return true, status >> 8
	}
	return false, 0
}

// WIfSignaled reports termination by signal.
func WIfSignaled(status int) (bool, int, bool) {
	low := status & 0x7F
	if low != 0 && low != 0x7F {
		return true, low, status&0x80 != 0
	}
	return false, 0, false
}

// WIfStopped reports a job-control or ptrace stop.
func WIfStopped(status int) (bool, int) {
	if status&0xFF == 0x7F {
		return true, status >> 8
	}
	return false, 0
}
