package kernel

import "fmt"

// Errno is a simulated UNIX error number; 0 means success.
type Errno int

// Error numbers (classic System V values).
const (
	EPERM   Errno = 1
	ENOENT  Errno = 2
	ESRCH   Errno = 3
	EINTR   Errno = 4
	EIO     Errno = 5
	ENOEXEC Errno = 8
	EBADF   Errno = 9
	ECHILD  Errno = 10
	EAGAIN  Errno = 11
	ENOMEM  Errno = 12
	EACCES  Errno = 13
	EFAULT  Errno = 14
	EBUSY   Errno = 16
	EEXIST  Errno = 17
	ENOTDIR Errno = 20
	EISDIR  Errno = 21
	EINVAL  Errno = 22
	ENFILE  Errno = 23
	EMFILE  Errno = 24
	ENOTTY  Errno = 25
	EFBIG   Errno = 27
	ENOSPC  Errno = 28
	EPIPE   Errno = 32
	ERANGE  Errno = 34
	ENOSYS  Errno = 89
)

var errnoNames = map[Errno]string{
	EPERM: "EPERM", ENOENT: "ENOENT", ESRCH: "ESRCH", EINTR: "EINTR",
	EIO: "EIO", ENOEXEC: "ENOEXEC", EBADF: "EBADF", ECHILD: "ECHILD",
	EAGAIN: "EAGAIN", ENOMEM: "ENOMEM", EACCES: "EACCES", EFAULT: "EFAULT",
	EBUSY: "EBUSY", EEXIST: "EEXIST", ENOTDIR: "ENOTDIR", EISDIR: "EISDIR",
	EINVAL: "EINVAL", ENFILE: "ENFILE", EMFILE: "EMFILE", ENOTTY: "ENOTTY",
	EFBIG: "EFBIG", ENOSPC: "ENOSPC", EPIPE: "EPIPE", ERANGE: "ERANGE",
	ENOSYS: "ENOSYS",
}

// String names the errno.
func (e Errno) String() string {
	if e == 0 {
		return "OK"
	}
	if n, ok := errnoNames[e]; ok {
		return n
	}
	return fmt.Sprintf("E%d", int(e))
}

// Error implements error.
func (e Errno) Error() string { return e.String() }

// System call numbers, following System V numbering where one exists.
// There is no system call number 0.
const (
	SysExit      = 1
	SysFork      = 2
	SysRead      = 3
	SysWrite     = 4
	SysOpen      = 5
	SysClose     = 6
	SysWait      = 7
	SysCreat     = 8
	SysUnlink    = 10
	SysExec      = 11
	SysChdir     = 12
	SysTime      = 13
	SysChmod     = 15
	SysBrk       = 17
	SysLseek     = 19
	SysGetpid    = 20
	SysSetuid    = 23
	SysGetuid    = 24
	SysPtrace    = 26
	SysAlarm     = 27
	SysPause     = 29
	SysAccess    = 33
	SysNice      = 34
	SysSync      = 36
	SysKill      = 37
	SysDup       = 41
	SysPipe      = 42
	SysTimes     = 43
	SysSetgid    = 46
	SysGetgid    = 47
	SysSignal    = 48
	SysIoctl     = 54
	SysUmask     = 60
	SysVfork     = 66
	SysGetdents  = 81
	SysGetpgrp   = 63
	SysSetpgrp   = 64
	SysSleep     = 90
	SysSigreturn = 93
	SysSigmask   = 95
	SysSigsusp   = 96
	SysMmap      = 115
	SysMprotect  = 116
	SysMunmap    = 117
	SysFsync     = 118
	SysLwpCreate = 170
	SysLwpExit   = 171
	SysLwpSelf   = 172
	SysYield     = 173
	MaxSysNum    = 180
)

// sysent describes one system call for dispatch and for truss.
type sysent struct {
	Name  string
	NArgs int
	// Handler runs the call. It may return sleepOn non-nil to block; the
	// call is then retried from scratch when the LWP wakes — the classic
	// "while (condition) sleep()" structure.
	Handler func(k *Kernel, l *LWP) sysResult
}

// sysResult is the outcome of a system call handler.
type sysResult struct {
	R0, R1  uint32 // return values
	Err     Errno
	SleepOn *waitq // non-nil: block and retry when woken
	// NoReturn marks calls that do not return normally (exit, lwp_exit).
	NoReturn bool
	// SkipStore suppresses storing R0/carry — sigreturn restores the full
	// register context itself.
	SkipStore bool
}

func ret(v uint32) sysResult     { return sysResult{R0: v} }
func ret2(a, b uint32) sysResult { return sysResult{R0: a, R1: b} }
func rerr(e Errno) sysResult     { return sysResult{Err: e} }
func rsleep(q *waitq) sysResult  { return sysResult{SleepOn: q} }

var sysTable [MaxSysNum + 1]sysent

// Lock classes: the lock an SMP worker must hold to dispatch a system
// call (run.go). Deterministic mode ignores the table entirely.
//
//   - sysLockNone: the handler reads only its own process's stable or
//     atomically-maintained state — no lock at all, so a fleet of getpid
//     grinders scales with CPUs.
//   - sysLockProc: the handler touches only the calling process's own
//     state (address space, time/usage accounting, dispositions, masks,
//     identity mutations) — the per-process lock, under which inspectors
//     (procfs) and cross-process writers (kill's permission check,
//     SIGCHLD posting) also access those fields.
//   - sysLockGlobal: everything else — anything that can sleep, touch
//     another process, or go through the (unsynchronized) file system
//     layers takes the narrow global lock.
//
// A call may be sysLockProc only if its handler performs no cross-process
// access, no file-system access, no ktrace emission, and no sleeping.
type sysLockKind uint8

const (
	sysLockGlobal sysLockKind = iota // zero value: global is the safe default
	sysLockProc
	sysLockNone
)

var sysLockClass = [MaxSysNum + 1]sysLockKind{
	SysGetpid:   sysLockNone, // Pid immutable; ppid kept in an atomic
	SysGetuid:   sysLockNone, // own Cred, written only by this process's own calls
	SysGetgid:   sysLockNone,
	SysGetpgrp:  sysLockNone, // own Pgrp, written only by this process's setpgrp
	SysLwpSelf:  sysLockNone, // own LWP id
	SysYield:    sysLockNone, // no state at all
	SysBrk:      sysLockProc, // own address space; shootdown withdraws curAS
	SysMmap:     sysLockProc,
	SysMunmap:   sysLockProc,
	SysMprotect: sysLockProc,
	SysTime:     sysLockProc, // atomic clock; classed proc so the flush runs
	SysTimes:    sysLockProc, // own usage, flushed under this same lock
	SysAlarm:    sysLockProc, // alarmAt atomic; remaining-time math wants the flush
	SysUmask:    sysLockProc, // own umask
	SysNice:     sysLockProc, // own nice
	SysSetuid:   sysLockProc, // own creds; kill's permission check takes this lock
	SysSetgid:   sysLockProc,
	SysSetpgrp:  sysLockProc, // own pgrp; kill's group sweep takes this lock
	SysSignal:   sysLockProc, // own dispositions; cross-CPU posters take this lock
	SysSigmask:  sysLockProc, // own hold mask; PostSignal reads it under this lock
}

// sysClassOf returns the lock class for a system call number; out-of-range
// numbers dispatch to the ENOSYS path under the global lock.
func sysClassOf(num int) sysLockKind {
	if num < 1 || num > MaxSysNum {
		return sysLockGlobal
	}
	return sysLockClass[num]
}

func init() {
	sysTable[SysExit] = sysent{"exit", 1, sysExit}
	sysTable[SysFork] = sysent{"fork", 0, sysFork}
	sysTable[SysRead] = sysent{"read", 3, sysRead}
	sysTable[SysWrite] = sysent{"write", 3, sysWrite}
	sysTable[SysOpen] = sysent{"open", 2, sysOpen}
	sysTable[SysClose] = sysent{"close", 1, sysClose}
	sysTable[SysWait] = sysent{"wait", 1, sysWait}
	sysTable[SysCreat] = sysent{"creat", 2, sysCreat}
	sysTable[SysUnlink] = sysent{"unlink", 1, sysUnlink}
	sysTable[SysExec] = sysent{"exec", 1, sysExec}
	sysTable[SysChdir] = sysent{"chdir", 1, sysChdir}
	sysTable[SysSync] = sysent{"sync", 0, sysSync}
	sysTable[SysFsync] = sysent{"fsync", 1, sysFsync}
	sysTable[SysTime] = sysent{"time", 0, sysTime}
	sysTable[SysChmod] = sysent{"chmod", 2, sysChmod}
	sysTable[SysBrk] = sysent{"brk", 1, sysBrk}
	sysTable[SysLseek] = sysent{"lseek", 3, sysLseek}
	sysTable[SysGetpid] = sysent{"getpid", 0, sysGetpid}
	sysTable[SysSetuid] = sysent{"setuid", 1, sysSetuid}
	sysTable[SysGetuid] = sysent{"getuid", 0, sysGetuid}
	sysTable[SysPtrace] = sysent{"ptrace", 4, sysPtrace}
	sysTable[SysAlarm] = sysent{"alarm", 1, sysAlarm}
	sysTable[SysPause] = sysent{"pause", 0, sysPause}
	sysTable[SysAccess] = sysent{"access", 2, sysAccess}
	sysTable[SysNice] = sysent{"nice", 1, sysNice}
	sysTable[SysKill] = sysent{"kill", 2, sysKill}
	sysTable[SysDup] = sysent{"dup", 1, sysDup}
	sysTable[SysPipe] = sysent{"pipe", 0, sysPipe}
	sysTable[SysTimes] = sysent{"times", 0, sysTimes}
	sysTable[SysSetgid] = sysent{"setgid", 1, sysSetgid}
	sysTable[SysGetgid] = sysent{"getgid", 0, sysGetgid}
	sysTable[SysSignal] = sysent{"signal", 2, sysSignal}
	sysTable[SysIoctl] = sysent{"ioctl", 3, sysIoctl}
	sysTable[SysUmask] = sysent{"umask", 1, sysUmask}
	sysTable[SysGetpgrp] = sysent{"getpgrp", 0, sysGetpgrp}
	sysTable[SysSetpgrp] = sysent{"setpgrp", 0, sysSetpgrp}
	sysTable[SysVfork] = sysent{"vfork", 0, sysVfork}
	sysTable[SysGetdents] = sysent{"getdents", 3, sysGetdents}
	sysTable[SysSleep] = sysent{"sleep", 1, sysSleep}
	sysTable[SysSigreturn] = sysent{"sigreturn", 0, sysSigreturn}
	sysTable[SysSigmask] = sysent{"sigprocmask", 3, sysSigmask}
	sysTable[SysSigsusp] = sysent{"sigsuspend", 2, sysSigsusp}
	sysTable[SysMmap] = sysent{"mmap", 4, sysMmap}
	sysTable[SysMprotect] = sysent{"mprotect", 3, sysMprotect}
	sysTable[SysMunmap] = sysent{"munmap", 2, sysMunmap}
	sysTable[SysLwpCreate] = sysent{"lwp_create", 2, sysLwpCreate}
	sysTable[SysLwpExit] = sysent{"lwp_exit", 0, sysLwpExit}
	sysTable[SysLwpSelf] = sysent{"lwp_self", 0, sysLwpSelf}
	sysTable[SysYield] = sysent{"yield", 0, sysYield}
}

// SyscallName returns the name for truss-style reporting.
func SyscallName(num int) string {
	if num >= 1 && num <= MaxSysNum && sysTable[num].Name != "" {
		return sysTable[num].Name
	}
	return fmt.Sprintf("sys#%d", num)
}

// SyscallNumber returns the number for a name, or 0.
func SyscallNumber(name string) int {
	for i := 1; i <= MaxSysNum; i++ {
		if sysTable[i].Name == name {
			return i
		}
	}
	return 0
}

// SyscallArity returns the declared argument count (for truss formatting).
func SyscallArity(num int) int {
	if num >= 1 && num <= MaxSysNum {
		return sysTable[num].NArgs
	}
	return 0
}

// Predefs returns assembler predefined symbols: SYS_* numbers and SIG*
// numbers, so example programs can be written symbolically.
func Predefs() map[string]uint32 {
	m := make(map[string]uint32)
	for i := 1; i <= MaxSysNum; i++ {
		if sysTable[i].Name != "" {
			m["SYS_"+sysTable[i].Name] = uint32(i)
		}
	}
	for sig := 1; sig < 32; sig++ {
		m[sigNameFor(sig)] = uint32(sig)
	}
	return m
}

// copyinStr reads a NUL-terminated string from user memory.
func (k *Kernel) copyinStr(l *LWP, addr uint32) (string, Errno) {
	var out []byte
	buf := make([]byte, 64)
	for len(out) < 4096 {
		n, err := l.CPU.AS.ReadAt(buf, int64(addr)+int64(len(out)))
		if err != nil || n == 0 {
			return "", EFAULT
		}
		for i := 0; i < n; i++ {
			if buf[i] == 0 {
				return string(out), 0
			}
			out = append(out, buf[i])
		}
	}
	return "", ERANGE
}

// copyin reads n bytes of user memory.
func (k *Kernel) copyin(l *LWP, addr uint32, n int) ([]byte, Errno) {
	buf := make([]byte, n)
	got, err := l.CPU.AS.ReadAt(buf, int64(addr))
	if err != nil || got != n {
		return nil, EFAULT
	}
	return buf, 0
}

// copyout writes bytes to user memory.
func (k *Kernel) copyout(l *LWP, addr uint32, b []byte) Errno {
	n, err := l.CPU.AS.WriteAt(b, int64(addr))
	if err != nil || n != len(b) {
		return EFAULT
	}
	return 0
}

// copyoutWord writes one 32-bit word to user memory.
func (k *Kernel) copyoutWord(l *LWP, addr uint32, v uint32) Errno {
	return k.copyout(l, addr, []byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}
