//go:build lockdebug

package kernel

import (
	"fmt"
	"runtime"
	"sync"
)

// Lock ranks in acquisition order; see lockdebug_off.go for the canonical
// ordering rules. This build tracks, per goroutine, the multiset of held
// ranks and panics the moment a lock is taken out of order, turning a
// would-be deadlock into a stack trace at the offending acquisition site.
const (
	rankGlobal = 1 // Kernel.global
	rankProc   = 2 // Proc.mu
	rankSleep  = 3 // Kernel.sleepMu
	rankQueue  = 4 // runQueue.mu
)

var lockDebug struct {
	mu   sync.Mutex
	held map[uint64][]int // goroutine id -> stack of held ranks
}

func init() { lockDebug.held = map[uint64][]int{} }

// goid extracts the current goroutine's id from the runtime stack header
// ("goroutine 123 [running]:"). Slow, but this is a debug-only build.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	// Skip "goroutine ".
	i := 0
	for i < len(s) && (s[i] < '0' || s[i] > '9') {
		i++
	}
	var id uint64
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		id = id*10 + uint64(s[i]-'0')
		i++
	}
	return id
}

func lockOrderAcquire(rank int) {
	g := goid()
	lockDebug.mu.Lock()
	defer lockDebug.mu.Unlock()
	held := lockDebug.held[g]
	for _, h := range held {
		if rank > h {
			continue
		}
		// Sanctioned exception: the global-lock holder may take per-process
		// locks one at a time, including re-ranking down from a previously
		// released one; what it may never do is hold two rankProc locks at
		// once or re-enter the same rank it still holds.
		if rank == rankProc && h == rankGlobal && countRank(held, rankProc) == 0 {
			continue
		}
		panic(fmt.Sprintf("lockdebug: goroutine %d acquires rank %d while holding %v (out of order)", g, rank, held))
	}
	lockDebug.held[g] = append(held, rank)
}

func lockOrderRelease(rank int) {
	g := goid()
	lockDebug.mu.Lock()
	defer lockDebug.mu.Unlock()
	held := lockDebug.held[g]
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == rank {
			held = append(held[:i], held[i+1:]...)
			if len(held) == 0 {
				delete(lockDebug.held, g)
			} else {
				lockDebug.held[g] = held
			}
			return
		}
	}
	panic(fmt.Sprintf("lockdebug: goroutine %d releases rank %d it does not hold (%v)", g, rank, held))
}

func countRank(held []int, rank int) int {
	n := 0
	for _, h := range held {
		if h == rank {
			n++
		}
	}
	return n
}
