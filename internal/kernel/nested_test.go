package kernel_test

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/types"
)

// A handler's action mask holds further signals while it runs; sigreturn
// restores the mask, after which the held signal is delivered.
func TestHandlerMaskDefersNestedSignal(t *testing.T) {
	f := boot(t)
	p := f.spawn("nested", `
.entry main
; handler for SIGUSR1: record entry, then spin until poked
h1:
	la r3, inh1
	movi r4, 1
	st r4, [r3]
wait1:	la r3, poke
	ld r4, [r3]
	cmpi r4, 1
	jne wait1
	movi r0, SYS_sigreturn
	syscall
; handler for SIGUSR2: set its flag
h2:
	la r3, gotu2
	movi r4, 1
	st r4, [r3]
	movi r0, SYS_sigreturn
	syscall
main:
	movi r0, SYS_signal
	movi r1, SIGUSR1
	la r2, h1
	syscall
	movi r0, SYS_signal
	movi r1, SIGUSR2
	la r2, h2
	syscall
loop:	la r3, gotu2
	ld r4, [r3]
	cmpi r4, 1
	jne loop
	movi r0, SYS_exit
	movi r1, 0
	syscall
.data
inh1:	.word 0
poke:	.word 0
gotu2:	.word 0
`, user())
	// Make SIGUSR1's handler hold SIGUSR2.
	f.K.Run(30)
	act := p.Actions[types.SIGUSR1]
	act.Mask.Add(types.SIGUSR2)
	p.Actions[types.SIGUSR1] = act

	// Deliver USR1; once the handler is running, deliver USR2 — it must
	// stay pending until the handler returns.
	f.K.PostSignal(p, types.SIGUSR1)
	syms, _ := p.ImageSyms()
	addr := func(name string) uint32 {
		for _, s := range syms {
			if s.Name == name {
				return s.Value
			}
		}
		t.Fatalf("no symbol %s", name)
		return 0
	}
	inH1 := addr("inh1")
	err := f.K.RunUntil(func() bool {
		var b [4]byte
		p.AS.ReadAt(b[:], int64(inH1))
		return b[3] == 1
	}, 500000)
	if err != nil {
		t.Fatal(err)
	}
	f.K.PostSignal(p, types.SIGUSR2)
	f.K.Run(30)
	var b [4]byte
	p.AS.ReadAt(b[:], int64(addr("gotu2")))
	if b[3] != 0 {
		t.Fatal("USR2 delivered while held by the handler mask")
	}
	if !p.SigPend.Has(types.SIGUSR2) {
		t.Fatal("USR2 should be pending")
	}
	// Poke the handler loose: sigreturn restores the mask; USR2 delivers.
	p.AS.WriteAt([]byte{0, 0, 0, 1}, int64(addr("poke")))
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != 0 {
		t.Fatalf("status %#x", status)
	}
}

// The handler's own signal is held while the handler runs, so a re-send
// pends instead of recursing.
func TestHandlerSignalSelfHeld(t *testing.T) {
	f := boot(t)
	p := f.spawn("selfheld", `
.entry main
h:	la r3, depth
	ld r4, [r3]
	addi r4, 1
	st r4, [r3]		; depth++
	la r3, maxd
	ld r5, [r3]
	cmp r5, r4
	jge nomax
	la r3, maxd
	st r4, [r3]		; maxd = max(maxd, depth)
nomax:
wait:	la r3, poke
	ld r6, [r3]
	cmpi r6, 1
	jne wait
	la r3, depth
	ld r4, [r3]
	addi r4, -1
	st r4, [r3]		; depth--
	movi r0, SYS_sigreturn
	syscall
main:
	movi r0, SYS_signal
	movi r1, SIGUSR1
	la r2, h
	syscall
spin:	la r3, done
	ld r4, [r3]
	cmpi r4, 2
	jne spin
	la r3, maxd
	ld r1, [r3]		; exit code = max nesting depth
	movi r0, SYS_exit
	syscall
.data
depth:	.word 0
maxd:	.word 0
poke:	.word 0
done:	.word 0
`, user())
	f.K.Run(30)
	syms, _ := p.ImageSyms()
	addr := func(name string) uint32 {
		for _, s := range syms {
			if s.Name == name {
				return s.Value
			}
		}
		return 0
	}
	f.K.PostSignal(p, types.SIGUSR1)
	// Wait until the handler is running.
	err := f.K.RunUntil(func() bool {
		var b [4]byte
		p.AS.ReadAt(b[:], int64(addr("depth")))
		return b[3] == 1
	}, 500000)
	if err != nil {
		t.Fatal(err)
	}
	// Send it again while the handler runs: it must pend (self-held).
	f.K.PostSignal(p, types.SIGUSR1)
	f.K.Run(30)
	if !p.SigPend.Has(types.SIGUSR1) {
		t.Fatal("re-sent signal should pend while the handler runs")
	}
	// Release the handler; the pending signal runs the handler again
	// (sequentially, depth never exceeding 1); then tell main to exit.
	p.AS.WriteAt([]byte{0, 0, 0, 1}, int64(addr("poke")))
	err = f.K.RunUntil(func() bool {
		var b [4]byte
		p.AS.ReadAt(b[:], int64(addr("depth")))
		// Both handler runs finished: depth back to 0 and no pending.
		return b[3] == 0 && !p.SigPend.Has(types.SIGUSR1)
	}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	p.AS.WriteAt([]byte{0, 0, 0, 2}, int64(addr("done")))
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != 1 {
		t.Fatalf("max depth = %d, want 1 (no recursion)", code)
	}
}

// Registers survive signal delivery: the handler clobbers everything, and
// sigreturn restores the interrupted computation exactly.
func TestSignalFramePreservesRegisters(t *testing.T) {
	f := boot(t)
	p := f.spawn("frames", `
.entry main
h:	movi r2, 0		; clobber the registers main depends on
	movi r3, 0
	movi r4, 0
	movi r5, 0
	movi r6, 0
	movi r7, 0
	la r3, seen
	movi r4, 1
	st r4, [r3]
	movi r0, SYS_sigreturn
	syscall
main:
	movi r0, SYS_signal
	movi r1, SIGUSR1
	la r2, h
	syscall
	movi r2, 11		; the state the handler must not destroy
	movi r3, 22
	movi r4, 33
wait:	la r5, seen
	ld r6, [r5]
	cmpi r6, 1
	jne wait
	; r2..r4 must be intact
	movi r1, 0
	cmpi r2, 11
	jne bad
	cmpi r3, 22
	jne bad
	cmpi r4, 33
	jne bad
	movi r1, 1
bad:	movi r0, SYS_exit
	syscall
.data
seen:	.word 0
`, user())
	f.K.Run(30)
	f.K.PostSignal(p, types.SIGUSR1)
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != 1 {
		t.Fatal("registers were not preserved across signal delivery")
	}
}
