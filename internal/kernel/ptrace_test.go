package kernel_test

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/types"
)

// The ptrace(2) system call used by simulated programs themselves: a parent
// debugging its child the 1979 way. The child requests tracing, stops on a
// signal; the parent's wait(2) reports the stop; the parent peeks a word of
// the child's data, pokes it, continues the child; the child exits with the
// poked value, proving the old interface still works — "ptrace is made
// obsolete by /proc but is still required by the System V Interface
// Definition".
func TestPtraceSyscallFromPrograms(t *testing.T) {
	f := boot(t)
	p := f.spawn("oldschool", `
.entry main
main:
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	; --- child ---
	movi r0, SYS_ptrace
	movi r1, 0		; PTRACE_TRACEME
	syscall
	movi r0, SYS_getpid
	syscall
	mov r6, r0		; my pid
	movi r0, SYS_kill	; raise SIGTRAP: stop for the parent
	mov r1, r6
	movi r2, 5		; SIGTRAP
	syscall
	; resumed by the parent: exit with the (poked) cell value
	la r3, cell
	ld r1, [r3]
	movi r0, SYS_exit
	syscall
parent:
	mov r6, r0		; child pid
	movi r0, SYS_wait	; reports the ptrace stop
	movi r1, 0
	syscall
	; peek the child's cell (expect 17)
	movi r0, SYS_ptrace
	movi r1, 1		; PTRACE_PEEKTEXT
	mov r2, r6
	la r3, cell
	syscall
	mov r7, r0		; peeked value
	; poke cell = peeked + 25 = 42
	mov r4, r7
	addi r4, 25
	movi r0, SYS_ptrace
	movi r1, 4		; PTRACE_POKETEXT
	mov r2, r6
	la r3, cell
	syscall			; r4 is the data argument
	; continue the child, clearing the signal
	movi r0, SYS_ptrace
	movi r1, 7		; PTRACE_CONT
	mov r2, r6
	movi r3, 0
	movi r4, 0
	syscall
	movi r0, SYS_wait	; reap the child
	movi r1, 0
	syscall
	shr r1, 8		; the child's exit code (42)
	movi r0, SYS_exit
	syscall
.data
cell:	.word 17
`, user())
	status := f.runToExit(p)
	if ok, code := kernel.WIfExited(status); !ok || code != 42 {
		t.Fatalf("status = %#x, want the poked 42", status)
	}
}

// ptrace requests against processes that are not stopped traced children
// fail with ESRCH.
func TestPtraceSyscallPermissions(t *testing.T) {
	f := boot(t)
	p := f.spawn("noperm", `
	movi r0, SYS_ptrace
	movi r1, 1		; PEEKTEXT of...
	movi r2, 1		; ...init, not our child
	movi r3, 0
	syscall
	mov r1, r0		; ESRCH
	movi r0, SYS_exit
	syscall
`, user())
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != int(kernel.ESRCH) {
		t.Fatalf("code = %d, want ESRCH", code)
	}
}

// PTRACE_KILL from a simulated parent.
func TestPtraceKillFromProgram(t *testing.T) {
	f := boot(t)
	p := f.spawn("killer", `
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_ptrace	; child: TRACEME then stop
	movi r1, 0
	syscall
	movi r0, SYS_getpid
	syscall
	mov r6, r0
	movi r0, SYS_kill
	mov r1, r6
	movi r2, 5
	syscall
loop:	jmp loop
parent:
	mov r6, r0
	movi r0, SYS_wait
	movi r1, 0
	syscall
	movi r0, SYS_ptrace
	movi r1, 8		; PTRACE_KILL
	mov r2, r6
	syscall
	movi r0, SYS_wait	; reap: killed by SIGKILL
	movi r1, 0
	syscall
	mov r2, r1
	movi r3, 0x7F
	and r2, r3		; termination signal
	mov r1, r2
	movi r0, SYS_exit
	syscall
`, user())
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != types.SIGKILL {
		t.Fatalf("termination signal = %d, want SIGKILL", code)
	}
}
