package kernel

import (
	"encoding/binary"
	"fmt"

	"repro/internal/types"
	"repro/internal/vfs"
)

// Core dumps. When a signal's default disposition is DispCore, the dying
// process leaves an image of its address space and registers in a file named
// core.<pid> in its working directory — the "possibly with a core dump" of
// the paper's psig() description. The format is a simple segment dump that
// debuggers (and tests) can parse with ParseCore.

// CoreMagic identifies a core file.
var CoreMagic = [4]byte{'C', 'O', 'R', 'E'}

// CoreImage is a parsed core file.
type CoreImage struct {
	Pid    int
	Signal int
	Regs   [11]uint32 // R0..R7, PC, SP, PSW
	Segs   []CoreSeg
}

// CoreSeg is one dumped mapping.
type CoreSeg struct {
	Vaddr uint32
	Data  []byte
}

// writeCore dumps the process image. Failures are ignored — a core dump is
// best-effort, as it always was.
func (k *Kernel) writeCore(p *Proc, sig int) {
	l := p.Rep()
	if l == nil || p.AS == nil {
		return
	}
	var out []byte
	out = append(out, CoreMagic[:]...)
	out = binary.BigEndian.AppendUint32(out, uint32(p.Pid))
	out = binary.BigEndian.AppendUint32(out, uint32(sig))
	regs := l.CPU.Regs
	for _, v := range regs.R {
		out = binary.BigEndian.AppendUint32(out, v)
	}
	out = binary.BigEndian.AppendUint32(out, regs.PC)
	out = binary.BigEndian.AppendUint32(out, regs.SP)
	out = binary.BigEndian.AppendUint32(out, regs.PSW)
	segs := p.AS.SegsView()
	out = binary.BigEndian.AppendUint32(out, uint32(len(segs)))
	for _, s := range segs {
		out = binary.BigEndian.AppendUint32(out, s.Base)
		out = binary.BigEndian.AppendUint32(out, s.Len)
		data := make([]byte, s.Len)
		p.AS.ReadAt(data, int64(s.Base))
		out = append(out, data...)
	}
	name := fmt.Sprintf("core.%d", p.Pid)
	dir := p.CWD
	if dir == "" {
		dir = "/tmp"
	}
	dw, base, err := k.NS.LookupDir(vfs.Clean(dir+"/"+name), p.Cred)
	if err != nil {
		return
	}
	vn, err := dw.VLookup(base, types.RootCred())
	if err == vfs.ErrNotExist {
		vn, err = dw.VCreate(base, 0o600, p.Cred)
	}
	if err != nil {
		return
	}
	h, err := vn.VOpen(vfs.OWrite, p.Cred)
	if err != nil {
		return
	}
	defer h.HClose()
	h.HWrite(out, 0)
	k.tracef("pid %d dumped core (%d bytes)", p.Pid, len(out))
}

// ParseCore parses a core file.
func ParseCore(b []byte) (*CoreImage, error) {
	if len(b) < 4 || b[0] != 'C' || b[1] != 'O' || b[2] != 'R' || b[3] != 'E' {
		return nil, fmt.Errorf("kernel: not a core file")
	}
	off := 4
	u32 := func() (uint32, error) {
		if off+4 > len(b) {
			return 0, fmt.Errorf("kernel: truncated core file")
		}
		v := binary.BigEndian.Uint32(b[off:])
		off += 4
		return v, nil
	}
	img := &CoreImage{}
	v, err := u32()
	if err != nil {
		return nil, err
	}
	img.Pid = int(v)
	if v, err = u32(); err != nil {
		return nil, err
	}
	img.Signal = int(v)
	for i := range img.Regs {
		if img.Regs[i], err = u32(); err != nil {
			return nil, err
		}
	}
	n, err := u32()
	if err != nil {
		return nil, err
	}
	if n > 1024 {
		return nil, fmt.Errorf("kernel: unreasonable core segment count")
	}
	for i := uint32(0); i < n; i++ {
		base, err := u32()
		if err != nil {
			return nil, err
		}
		size, err := u32()
		if err != nil {
			return nil, err
		}
		if off+int(size) > len(b) {
			return nil, fmt.Errorf("kernel: truncated core segment")
		}
		data := make([]byte, size)
		copy(data, b[off:])
		off += int(size)
		img.Segs = append(img.Segs, CoreSeg{Vaddr: base, Data: data})
	}
	return img, nil
}

// At returns the byte at a virtual address in the core image.
func (c *CoreImage) At(addr uint32) (byte, bool) {
	for _, s := range c.Segs {
		if addr >= s.Vaddr && addr < s.Vaddr+uint32(len(s.Data)) {
			return s.Data[addr-s.Vaddr], true
		}
	}
	return 0, false
}
