package kernel

import (
	"encoding/binary"
	"fmt"

	"repro/internal/types"
	"repro/internal/vcpu"
)

// ptrace(2) requests — the obsolete interface /proc supersedes, kept because
// it "is still required by the System V Interface Definition" and because it
// is the baseline the paper's design improves on: word-at-a-time transfers,
// stops entangled with signals, and control restricted to child processes.
const (
	PtTraceMe  = 0 // child: arrange to be traced by the parent
	PtPeekText = 1 // read a word of text
	PtPeekData = 2 // read a word of data
	PtPeekUser = 3 // read a word of the user area (registers)
	PtPokeText = 4 // write a word of text
	PtPokeData = 5 // write a word of data
	PtPokeUser = 6 // write a word of the user area
	PtCont     = 7 // continue, optionally delivering a signal
	PtKill     = 8 // terminate
	PtStep     = 9 // single-step
)

// User-area word offsets for PtPeekUser/PtPokeUser: 0..7 are R0..R7, then
// PC, SP, PSW — one word per call, in the classic style.
const (
	PtUserPC  = vcpu.NumRegs
	PtUserSP  = vcpu.NumRegs + 1
	PtUserPSW = vcpu.NumRegs + 2
)

func sysPtrace(k *Kernel, l *LWP) sysResult {
	req := int(l.sysArgs[0])
	pid := int(l.sysArgs[1])
	addr := l.sysArgs[2]
	data := l.sysArgs[3]

	if req == PtTraceMe {
		l.Proc.Ptraced = true
		return ret(0)
	}
	// All other requests operate on a stopped traced child.
	child := k.Proc(pid)
	if child == nil || child.Parent != l.Proc || !child.Ptraced || !child.Alive() {
		return rerr(ESRCH)
	}
	cl := child.Rep()
	if cl == nil || !cl.ptraceClaim {
		return rerr(ESRCH)
	}
	v, e := k.ptraceOp(cl, req, addr, data)
	if e != 0 {
		return rerr(e)
	}
	return ret(v)
}

// ptraceOp performs one ptrace operation on a ptrace-stopped LWP. It is
// shared by the ptrace system call and the Go-level PtraceController.
func (k *Kernel) ptraceOp(cl *LWP, req int, addr, data uint32) (uint32, Errno) {
	child := cl.Proc
	switch req {
	case PtPeekText, PtPeekData:
		var b [4]byte
		if _, err := child.AS.ReadAt(b[:], int64(addr)); err != nil {
			return 0, EIO
		}
		return binary.BigEndian.Uint32(b[:]), 0
	case PtPokeText, PtPokeData:
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], data)
		if _, err := child.AS.WriteAt(b[:], int64(addr)); err != nil {
			return 0, EIO
		}
		return 0, 0
	case PtPeekUser:
		return ptUserWord(cl, int(addr/4), false, 0)
	case PtPokeUser:
		return ptUserWord(cl, int(addr/4), true, data)
	case PtCont, PtStep:
		sig := int(data)
		if sig < 0 || sig > types.MaxSig {
			return 0, EINVAL
		}
		cl.CurSig = sig // 0 clears the signal; otherwise it is delivered
		if sig != 0 {
			// The delivery must pass the return-to-user gate, which reads
			// only the intr atomic.
			cl.Proc.noteIntr()
		}
		if sig == 0 {
			// A cleared signal ends this delivery: the next signal gets
			// fresh stop processing. (Delivering a signal keeps the
			// bookkeeping so issig does not stop again for it.)
			cl.sigStopTaken = false
			cl.ptraceStopTaken = false
		}
		cl.ptraceClaim = false
		cl.recompute()
		if req == PtStep {
			cl.CPU.Regs.PSW |= uint32(vcpu.FlagTrace)
		}
		return 0, 0
	case PtKill:
		k.exitProc(child, statusSignaled(types.SIGKILL, false))
		return 0, 0
	}
	return 0, EINVAL
}

func ptUserWord(cl *LWP, idx int, write bool, data uint32) (uint32, Errno) {
	var slot *uint32
	switch {
	case idx >= 0 && idx < vcpu.NumRegs:
		slot = &cl.CPU.Regs.R[idx]
	case idx == PtUserPC:
		slot = &cl.CPU.Regs.PC
	case idx == PtUserSP:
		slot = &cl.CPU.Regs.SP
	case idx == PtUserPSW:
		slot = &cl.CPU.Regs.PSW
	default:
		return 0, EIO
	}
	if write {
		*slot = data
		return 0, 0
	}
	return *slot, 0
}

// PtraceController is the Go-level embodiment of a parent debugging a child
// with ptrace — the baseline /proc is compared against in the benchmarks.
// Every operation transfers at most one word, and waiting is entangled with
// the wait(2)/signal machinery, exactly as the paper laments.
type PtraceController struct {
	K *Kernel
	P *Proc
	// Ops counts ptrace "system calls" issued, for the efficiency claims.
	Ops int64
}

// PtraceAttach marks a process traced as if it had called ptrace(TRACEME)
// and returns the parent-side controller.
func (k *Kernel) PtraceAttach(p *Proc) *PtraceController {
	k.GlobalLock()
	p.Lock()
	p.Ptraced = true
	p.Unlock()
	k.GlobalUnlock()
	return &PtraceController{K: k, P: p}
}

// WaitStop drives the scheduler until the child stops on a signal (the only
// stop ptrace knows), returning the stopping signal.
func (c *PtraceController) WaitStop(maxSteps int) (int, error) {
	c.Ops++ // the wait(2) call
	cl := c.P.Rep()
	err := c.K.RunUntil(func() bool {
		return !c.P.Alive() || (cl != nil && cl.ptraceClaim)
	}, maxSteps)
	if err != nil {
		return 0, err
	}
	if !c.P.Alive() {
		return 0, fmt.Errorf("ptrace: process %d exited", c.P.Pid)
	}
	return cl.what, nil
}

// Stopped reports whether the child is in a ptrace stop.
func (c *PtraceController) Stopped() bool {
	cl := c.P.Rep()
	return cl != nil && cl.ptraceClaim
}

func (c *PtraceController) op(req int, addr, data uint32) (uint32, Errno) {
	c.Ops++
	// The controller is host-side code that may run concurrently with the
	// SMP scheduler; it follows the cross-process locking contract (both
	// locks are no-ops in deterministic mode). WaitStop stays unlocked —
	// it drives the scheduler.
	c.K.GlobalLock()
	c.P.Lock()
	defer func() {
		c.P.Unlock()
		c.K.GlobalUnlock()
	}()
	cl := c.P.Rep()
	if !c.P.Alive() || cl == nil {
		return 0, ESRCH
	}
	if req != PtKill && !cl.ptraceClaim {
		return 0, ESRCH
	}
	return c.K.ptraceOp(cl, req, addr, data)
}

// PeekText reads one word of the child's memory.
func (c *PtraceController) PeekText(addr uint32) (uint32, error) {
	v, e := c.op(PtPeekText, addr, 0)
	if e != 0 {
		return 0, e
	}
	return v, nil
}

// PokeText writes one word of the child's memory.
func (c *PtraceController) PokeText(addr, w uint32) error {
	if _, e := c.op(PtPokeText, addr, w); e != 0 {
		return e
	}
	return nil
}

// PeekUser reads one word of the child's register context.
func (c *PtraceController) PeekUser(idx int) (uint32, error) {
	v, e := c.op(PtPeekUser, uint32(idx*4), 0)
	if e != 0 {
		return 0, e
	}
	return v, nil
}

// PokeUser writes one word of the child's register context.
func (c *PtraceController) PokeUser(idx int, w uint32) error {
	if _, e := c.op(PtPokeUser, uint32(idx*4), w); e != 0 {
		return e
	}
	return nil
}

// Cont resumes the child, delivering sig (0 = clear the signal).
func (c *PtraceController) Cont(sig int) error {
	if _, e := c.op(PtCont, 0, uint32(sig)); e != 0 {
		return e
	}
	return nil
}

// Step resumes the child for one instruction.
func (c *PtraceController) Step(sig int) error {
	if _, e := c.op(PtStep, 0, uint32(sig)); e != 0 {
		return e
	}
	return nil
}

// Kill terminates the child.
func (c *PtraceController) Kill() error {
	if _, e := c.op(PtKill, 0, 0); e != 0 {
		return e
	}
	return nil
}
