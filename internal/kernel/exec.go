package kernel

import (
	"repro/internal/mem"
	"repro/internal/types"
	"repro/internal/vfs"
	"repro/internal/xout"
)

func sysExec(k *Kernel, l *LWP) sysResult {
	path, e := k.copyinStr(l, l.sysArgs[0])
	if e != 0 {
		return rerr(e)
	}
	return k.execProc(l, path, nil)
}

// Exec loads a new image into an existing process from Go-level code (used
// by Spawn). args become the ps-visible argument list.
func (k *Kernel) Exec(p *Proc, path string, args []string) error {
	l := p.Rep()
	if l == nil {
		return ErrNoProcess
	}
	res := k.execProc(l, path, args)
	if res.Err != 0 {
		return res.Err
	}
	return nil
}

// execProc implements exec(2): overlay the process with a new program. Per
// the paper, exec interacts with /proc in two ways: tracing flags survive an
// ordinary exec, and a set-id exec is honored while invalidating the /proc
// file descriptors held by controlling processes — the traced process is
// directed to stop and its run-on-last-close flag is set, so a controlling
// process with appropriate privilege can reopen the /proc file to retain
// control, while just closing the invalid descriptor sets it running.
func (k *Kernel) execProc(l *LWP, path string, args []string) sysResult {
	p := l.Proc
	abs := vfs.Clean(p.absPath(path))
	vn, err := k.NS.Lookup(abs, p.Cred)
	if err != nil {
		return rerr(mapErr(err))
	}
	attr, err := vn.VAttr()
	if err != nil {
		return rerr(mapErr(err))
	}
	if attr.Type != vfs.VREG {
		return rerr(EACCES)
	}
	if err := vfs.CheckAccess(attr, p.Cred, 1); err != nil {
		return rerr(EACCES)
	}
	img, errno := k.loadImage(vn)
	if errno != 0 {
		return rerr(errno)
	}

	// Build the new address space first: a failed exec must leave the old
	// image — and the process's credentials and /proc descriptors — exactly
	// as they were. (Honoring set-id bits before this point would leak a
	// credential change out of an exec that then failed with ENOMEM.)
	newAS, entry, errno := k.buildAS(vn, abs, img, p.Pid)
	if errno != 0 {
		return rerr(errno)
	}

	// The exec is committed. Honor set-id bits.
	setid := false
	if attr.Mode&vfs.ModeSetUID != 0 && p.Cred.EUID != attr.UID {
		p.Cred.EUID = attr.UID
		p.Cred.SUID = attr.UID
		setid = true
	}
	if attr.Mode&vfs.ModeSetGID != 0 && p.Cred.EGID != attr.GID {
		p.Cred.EGID = attr.GID
		p.Cred.SGID = attr.GID
		setid = true
	}
	if setid {
		p.SugidDirty = true
		if p.Trace.Writers > 0 {
			// Invalidate controlling /proc descriptors, direct the process
			// to stop, and set run-on-last-close.
			p.Trace.Gen++
			p.Trace.Writers = 0
			p.Trace.Excl = false
			p.Trace.RunLC = true
			l.dstop = true
			p.noteIntr()
			k.tracef("pid %d set-id exec: /proc descriptors invalidated", p.Pid)
		}
	}

	// exec single-threads the process.
	for _, sib := range p.LWPs {
		if sib != l {
			sib.forgetSleep()
			sib.setSchedState(LZombie)
		}
	}
	old := p.AS
	p.AS = newAS
	l.CPU.AS = newAS
	if old != nil {
		old.Unref()
		// No other CPU may keep serving translations for the retired space.
		k.shootdown(old)
	}
	if p.borrowsAS {
		// A vfork child gives the borrowed space back on exec.
		p.borrowsAS = false
		k.wakeAll(&p.vforkQ)
	}

	// Fresh registers at the entry point.
	l.CPU.Regs = vcpuRegsAt(entry)
	l.CPU.FP = fpZero()

	// Caught signals revert to default action; ignored ones stay ignored.
	for sig := 1; sig <= types.MaxSig; sig++ {
		if p.Actions[sig].Handler > SigIGN {
			p.Actions[sig] = SigAction{}
		}
	}

	base := abs
	for i := len(abs) - 1; i >= 0; i-- {
		if abs[i] == '/' {
			base = abs[i+1:]
			break
		}
	}
	p.Comm = base
	if args == nil {
		args = []string{base}
	}
	p.Args = args
	p.ExecVN = vn
	p.ExecPath = abs
	syms := make([]Sym, len(img.Syms))
	for i, s := range img.Syms {
		syms[i] = Sym{Name: s.Name, Value: s.Value}
	}
	p.ImageSyms = func() ([]Sym, bool) { return syms, true }

	// A ptrace-traced process receives SIGTRAP after exec so the parent
	// regains control before the new image runs.
	if p.Ptraced {
		k.PostSignal(p, types.SIGTRAP)
	}
	k.tracef("pid %d exec %s", p.Pid, abs)
	return ret(0)
}

// loadImage reads and parses an executable.
func (k *Kernel) loadImage(vn vfs.Vnode) (*xout.File, Errno) {
	h, err := vn.VOpen(vfs.ORead, types.RootCred())
	if err != nil {
		return nil, EACCES
	}
	defer h.HClose()
	attr, _ := vn.VAttr()
	data := make([]byte, attr.Size)
	got, err := h.HRead(data, 0)
	if err != nil && err != vfs.EOF {
		return nil, EIO
	}
	img, perr := xout.Unmarshal(data[:got])
	if perr != nil {
		return nil, ENOEXEC
	}
	return img, 0
}

// buildAS constructs the address space for an image: a private read/exec
// text mapping of the executable, a private read/write data mapping, an
// anonymous break (bss) mapping, a stack mapping the system will grow
// automatically, and the text and data of each shared library.
func (k *Kernel) buildAS(vn vfs.Vnode, path string, img *xout.File, pid int) (*mem.AS, uint32, Errno) {
	if siteFaultExec.Hit(pid) {
		return nil, 0, ENOMEM
	}
	as := mem.NewAS(k.PageSize)
	as.SetOwner(pid)
	obj, ok := vn.(mem.Object)
	if !ok {
		// Executables on file systems that cannot be mapped directly are
		// copied into an anonymous immutable object.
		obj = &mem.ByteObject{Name: path, Data: append(append([]byte{}, img.Text...), img.Data...)}
	}
	if len(img.Text) > 0 {
		if _, err := as.Map(mem.MapArgs{
			Base: xout.TextBase, Len: uint32(len(img.Text)), Prot: mem.ProtRX,
			Obj: obj, Off: imageTextOff(obj, img), Kind: mem.KindText, Fixed: true,
		}); err != nil {
			return nil, 0, ENOMEM
		}
	}
	if len(img.Data) > 0 {
		if _, err := as.Map(mem.MapArgs{
			Base: img.DataBase(), Len: uint32(len(img.Data)), Prot: mem.ProtRW,
			Obj: obj, Off: imageTextOff(obj, img) + int64(len(img.Text)),
			Kind: mem.KindData, Fixed: true,
		}); err != nil {
			return nil, 0, ENOMEM
		}
	}
	bss := img.BSSSize
	if bss == 0 {
		bss = uint32(k.PageSize)
	}
	brkSeg, err := as.Map(mem.MapArgs{
		Base: img.BSSBase(), Len: bss, Prot: mem.ProtRW, Kind: mem.KindBreak, Fixed: true,
	})
	if err != nil {
		return nil, 0, ENOMEM
	}
	as.SetBrk(brkSeg)
	stk, err := as.Map(mem.MapArgs{
		Base: xout.StackTop - xout.StackInit, Len: xout.StackInit,
		Prot: mem.ProtRW, Kind: mem.KindStack, Fixed: true,
	})
	if err != nil {
		return nil, 0, ENOMEM
	}
	as.SetStack(stk, xout.StackLimit)

	// Map shared libraries: code and data of a shared library executable
	// file are mapped into the address space, as the paper describes.
	for i, lib := range img.Libs {
		libBase := uint32(xout.LibBase + i*xout.LibStride)
		lvn, err := k.NS.Lookup("/lib/"+lib, types.RootCred())
		if err != nil {
			return nil, 0, ENOENT
		}
		limg, errno := k.loadImage(lvn)
		if errno != 0 {
			return nil, 0, errno
		}
		lobj, ok := lvn.(mem.Object)
		if !ok {
			lobj = &mem.ByteObject{Name: "/lib/" + lib,
				Data: append(append([]byte{}, limg.Text...), limg.Data...)}
		}
		loff := imageTextOff(lobj, limg)
		if len(limg.Text) > 0 {
			if _, err := as.Map(mem.MapArgs{
				Base: libBase, Len: uint32(len(limg.Text)), Prot: mem.ProtRX,
				Obj: lobj, Off: loff, Kind: mem.KindShlibText, Fixed: true,
			}); err != nil {
				return nil, 0, ENOMEM
			}
		}
		dataBase := libBase + roundUp32(uint32(len(limg.Text)), xout.SegAlign)
		if len(limg.Data) > 0 {
			if _, err := as.Map(mem.MapArgs{
				Base: dataBase, Len: uint32(len(limg.Data)), Prot: mem.ProtRW,
				Obj: lobj, Off: loff + int64(len(limg.Text)), Kind: mem.KindShlibData, Fixed: true,
			}); err != nil {
				return nil, 0, ENOMEM
			}
		}
	}
	return as, img.Entry, 0
}

// imageTextOff returns the object offset of the text bytes. For memfs files
// the object is the raw xout file, so the text starts after the header; for
// ByteObject fallbacks the object holds text+data only.
func imageTextOff(obj mem.Object, img *xout.File) int64 {
	if _, ok := obj.(*mem.ByteObject); ok {
		return 0
	}
	return int64(obj.ObjSize()) - int64(len(img.Text)) - int64(len(img.Data))
}

func roundUp32(n, align uint32) uint32 {
	if n == 0 {
		return align
	}
	return (n + align - 1) &^ (align - 1)
}
