package kernel

import (
	"errors"
	"fmt"

	"repro/internal/ktrace"
	"repro/internal/mem"
	"repro/internal/types"
	"repro/internal/vcpu"
	"repro/internal/vfs"
)

// Whole-kernel checkpoints: a deep copy of every piece of mutable process-
// model state, restorable in place. "In place" is the load-bearing choice —
// a checkpoint remembers the live *Proc, *LWP, *mem.AS, *vfs.File and pipe
// objects and, on restore, writes the saved state back into those same
// objects rather than building replacements. Pointer identity is what the
// kernel's cross-references hang off (a sleeping LWP's sleepQ points into
// its parent's embedded waitq, fork-shared descriptors alias one *vfs.File,
// a vfork child borrows the parent's *mem.AS), so preserving it means none
// of those references need fixing up. Objects created after the checkpoint
// simply become unreachable again; objects destroyed after it are revived,
// because the snapshot's references kept them alive.
//
// Snapshots are deterministic-mode only (Config.NCPU <= 1): the replayer
// pins NCPU=1, nothing is concurrent, and the deep copy can walk every
// structure lock-free.

// ErrSnapshotSMP reports a snapshot attempt on an SMP kernel.
var ErrSnapshotSMP = errors.New("kernel: snapshots require the deterministic scheduler (NCPU <= 1)")

// lwpSnap is the saved state of one LWP.
type lwpSnap struct {
	l *LWP

	regs    vcpu.Regs
	fp      vcpu.FPRegs
	instret uint64
	as      *mem.AS

	state LState
	phase phase

	procClaim, jobClaim, ptraceClaim bool
	why                              StopWhy
	what                             int

	dstop, abortSys, clearFlt        bool
	sigStopTaken, ptraceStopTaken    bool

	sigHold     types.SigSet
	curSig      int
	curFlt      int
	fltAddr     uint32
	fltStopDone bool

	sysNum       int
	sysArgs      [6]uint32
	sysEntryDone bool
	sysExitDone  bool
	sysStored    bool
	sysRet       uint32
	sysR1        uint32
	sysErr       Errno
	suspSaved    *types.SigSet // copied, not aliased

	sleepQ        *waitq // points into pointer-stable objects (kernel, Proc, pipe)
	sleeping      bool
	sleepDeadline int64
	vforkChild    *Proc

	waitReport int
}

// procSnap is the saved state of one process.
type procSnap struct {
	p *Proc

	parent     *Proc
	kids       []*Proc
	pgrp, sid  int
	cred       types.Cred
	sugidDirty bool
	comm       string
	args       []string
	cwd        string
	umask      uint16
	nice       int
	start      int64

	as        *mem.AS
	lwps      []*LWP
	lwpSnaps  []lwpSnap
	state     PState
	exitSt    int
	fds       map[int]*vfs.File
	execVN    vfs.Vnode
	execPath  string
	imageSyms func() ([]Sym, bool)

	sigPend types.SigSet
	actions [types.MaxSig + 1]SigAction
	alarmAt int64

	trace TraceState
	usage Usage

	kt         *ktrace.Ring // clone; nil when tracing disabled
	ktDropBase uint64

	jobStopped bool
	ptraced    bool
	borrowsAS  bool
	nextLWPID  int
	ppid       int32
}

// pipeSnap is the saved state of one pipe, keyed by identity.
type pipeSnap struct {
	p        *pipe
	buf      []byte
	readers  int
	writers  int
}

// Snapshot is one whole-kernel checkpoint.
type Snapshot struct {
	clock    int64
	nextPid  int
	rrIndex  int
	tableRev uint64
	order    []*Proc
	initProc *Proc

	kt           *ktrace.Ring // kernel-wide ring clone; nil when disabled
	ktDefaultCap int
	ktStats      ktrace.Stats

	procs []procSnap
	ases  map[*mem.AS]*mem.ASState
	files map[*vfs.File]vfs.FileState
	pipes []pipeSnap
}

// Clock returns the simulated time the checkpoint was taken at.
func (sn *Snapshot) Clock() int64 { return sn.clock }

// Snapshot captures the kernel. The file-system contents backing mapped
// segments and open files are NOT included — memfs has its own
// SaveState/RestoreState, and a coherent checkpoint restores both together
// (internal/replay owns that pairing).
func (k *Kernel) Snapshot() (*Snapshot, error) {
	if k.smp != nil {
		return nil, ErrSnapshotSMP
	}
	sn := &Snapshot{
		clock:        k.clock,
		nextPid:      k.nextPid,
		rrIndex:      k.rrIndex,
		tableRev:     k.tableRev.Load(),
		order:        append([]*Proc(nil), k.order...),
		initProc:     k.initProc,
		ktDefaultCap: k.KTDefaultCap,
		ktStats:      k.ktStats,
		ases:         map[*mem.AS]*mem.ASState{},
		files:        map[*vfs.File]vfs.FileState{},
	}
	if k.KT != nil {
		sn.kt = k.KT.Clone()
	}
	seenPipes := map[*pipe]bool{}
	for _, p := range k.order {
		sn.procs = append(sn.procs, k.snapProc(sn, p, seenPipes))
	}
	return sn, nil
}

func (k *Kernel) snapProc(sn *Snapshot, p *Proc, seenPipes map[*pipe]bool) procSnap {
	ps := procSnap{
		p:          p,
		parent:     p.Parent,
		kids:       append([]*Proc(nil), p.Kids...),
		pgrp:       p.Pgrp,
		sid:        p.Sid,
		cred:       p.Cred,
		sugidDirty: p.SugidDirty,
		comm:       p.Comm,
		args:       append([]string(nil), p.Args...),
		cwd:        p.CWD,
		umask:      p.Umask,
		nice:       p.Nice,
		start:      p.Start,
		as:         p.AS,
		lwps:       append([]*LWP(nil), p.LWPs...),
		state:      p.State(),
		exitSt:     p.ExitStatus,
		execVN:     p.ExecVN,
		execPath:   p.ExecPath,
		imageSyms:  p.ImageSyms,
		sigPend:    p.SigPend,
		actions:    p.Actions,
		alarmAt:    p.alarmAt.Load(),
		trace:      p.Trace,
		usage:      p.Usage,
		ktDropBase: p.ktDropBase,
		jobStopped: p.jobStopped,
		ptraced:    p.Ptraced,
		borrowsAS:  p.borrowsAS,
		nextLWPID:  p.nextLWPID,
		ppid:       p.ppid.Load(),
	}
	if p.KT != nil {
		ps.kt = p.KT.Clone()
	}
	if p.AS != nil {
		if _, done := sn.ases[p.AS]; !done {
			sn.ases[p.AS] = p.AS.SaveState()
		}
	}
	ps.fds = make(map[int]*vfs.File, len(p.fds))
	for fd, f := range p.fds {
		ps.fds[fd] = f
		sn.snapFile(f, seenPipes)
	}
	for _, l := range p.LWPs {
		ps.lwpSnaps = append(ps.lwpSnaps, snapLWP(l))
	}
	return ps
}

// snapFile records an open file description once (fork/dup share them) and,
// for pipe ends, the pipe once (both ends reference it).
func (sn *Snapshot) snapFile(f *vfs.File, seenPipes map[*pipe]bool) {
	if _, done := sn.files[f]; done {
		return
	}
	sn.files[f] = f.SaveState()
	if pe, ok := f.H.(*pipeEnd); ok && !seenPipes[pe.p] {
		seenPipes[pe.p] = true
		sn.pipes = append(sn.pipes, pipeSnap{
			p: pe.p, buf: append([]byte(nil), pe.p.buf...),
			readers: pe.p.readers, writers: pe.p.writers,
		})
	}
}

func snapLWP(l *LWP) lwpSnap {
	s := lwpSnap{
		l:       l,
		regs:    l.CPU.Regs,
		fp:      l.CPU.FP,
		instret: l.CPU.Instret,
		as:      l.CPU.AS,

		state: l.state,
		phase: l.phase,

		procClaim: l.procClaim, jobClaim: l.jobClaim, ptraceClaim: l.ptraceClaim,
		why: l.why, what: l.what,

		dstop: l.dstop, abortSys: l.abortSys, clearFlt: l.clearFlt,
		sigStopTaken: l.sigStopTaken, ptraceStopTaken: l.ptraceStopTaken,

		sigHold: l.SigHold, curSig: l.CurSig, curFlt: l.CurFlt,
		fltAddr: l.FltAddr, fltStopDone: l.fltStopDone,

		sysNum: l.sysNum, sysArgs: l.sysArgs,
		sysEntryDone: l.sysEntryDone, sysExitDone: l.sysExitDone,
		sysStored: l.sysStored, sysRet: l.sysRet, sysR1: l.sysR1, sysErr: l.sysErr,

		sleepQ: l.sleepQ, sleeping: l.sleeping, sleepDeadline: l.sleepDeadline,
		vforkChild: l.vforkChild,

		waitReport: l.waitReport,
	}
	if l.suspSaved != nil {
		saved := *l.suspSaved
		s.suspSaved = &saved
	}
	return s
}

// Restore rewinds the kernel in place to a checkpoint taken by Snapshot.
// The snapshot remains reusable: one checkpoint can seed any number of
// forward re-executions (reverse-step restores it repeatedly).
func (k *Kernel) Restore(sn *Snapshot) error {
	if k.smp != nil {
		return ErrSnapshotSMP
	}
	k.clock = sn.clock
	k.nextPid = sn.nextPid
	k.rrIndex = sn.rrIndex
	k.tableRev.Store(sn.tableRev)
	k.order = append(k.order[:0:0], sn.order...)
	k.initProc = sn.initProc
	k.KTDefaultCap = sn.ktDefaultCap
	k.ktStats = sn.ktStats
	k.KT = nil
	if sn.kt != nil {
		k.KT = sn.kt.Clone()
	}

	// Rebuild the pid map from the restored order: processes created after
	// the checkpoint drop out, reaped ones come back.
	for i := range k.pids {
		sh := &k.pids[i]
		sh.m = make(map[int]*Proc)
	}
	for _, p := range sn.order {
		k.pidShardOf(p.Pid).m[p.Pid] = p
	}

	// Address spaces, file descriptions and pipes first: the per-process
	// restore below re-points processes at them.
	for as, st := range sn.ases {
		as.LoadState(st)
	}
	for f, st := range sn.files {
		f.LoadState(st)
	}
	for _, psn := range sn.pipes {
		psn.p.buf = append([]byte(nil), psn.buf...)
		psn.p.readers = psn.readers
		psn.p.writers = psn.writers
	}

	for i := range sn.procs {
		restoreProc(&sn.procs[i])
	}
	return nil
}

func restoreProc(ps *procSnap) {
	p := ps.p
	p.Parent = ps.parent
	p.Kids = append(p.Kids[:0:0], ps.kids...)
	p.Pgrp, p.Sid = ps.pgrp, ps.sid
	p.Cred = ps.cred
	p.SugidDirty = ps.sugidDirty
	p.Comm = ps.comm
	p.Args = append(p.Args[:0:0], ps.args...)
	p.CWD = ps.cwd
	p.Umask = ps.umask
	p.Nice = ps.nice
	p.Start = ps.start
	p.AS = ps.as
	p.LWPs = append(p.LWPs[:0:0], ps.lwps...)
	p.setState(ps.state)
	p.ExitStatus = ps.exitSt
	p.ExecVN = ps.execVN
	p.ExecPath = ps.execPath
	p.ImageSyms = ps.imageSyms
	p.SigPend = ps.sigPend
	p.Actions = ps.actions
	p.alarmAt.Store(ps.alarmAt)
	p.Trace = ps.trace
	p.Usage = ps.usage
	p.ktDropBase = ps.ktDropBase
	p.jobStopped = ps.jobStopped
	p.Ptraced = ps.ptraced
	p.borrowsAS = ps.borrowsAS
	p.nextLWPID = ps.nextLWPID
	p.ppid.Store(ps.ppid)
	p.KT = nil
	if ps.kt != nil {
		p.KT = ps.kt.Clone()
	}
	p.fds = make(map[int]*vfs.File, len(ps.fds))
	for fd, f := range ps.fds {
		p.fds[fd] = f
	}
	var nrun int32
	for i := range ps.lwpSnaps {
		restoreLWP(&ps.lwpSnaps[i])
		if ps.lwpSnaps[i].state == LRun {
			nrun++
		}
	}
	p.nrun.Store(nrun)
	p.intr.Store(0)
	// The deterministic scheduler never consults intr, and the sleeper
	// lists on embedded waitqs are SMP-only; both stay untouched.
	if p.k.Trace != nil {
		p.k.tracef("pid %d restored to t=%d", p.Pid, p.k.clock)
	}
}

func restoreLWP(s *lwpSnap) {
	l := s.l
	l.CPU.Regs = s.regs
	l.CPU.FP = s.fp
	l.CPU.Instret = s.instret
	l.CPU.AS = s.as
	// Cached translations may describe a post-checkpoint address space
	// whose generation counter could collide with the restored one; drop
	// them outright rather than trusting revalidation.
	l.CPU.FlushTLB()

	l.state = s.state
	l.stateA.Store(int32(s.state))
	l.phase = s.phase

	l.procClaim, l.jobClaim, l.ptraceClaim = s.procClaim, s.jobClaim, s.ptraceClaim
	l.why, l.what = s.why, s.what

	l.dstop, l.abortSys, l.clearFlt = s.dstop, s.abortSys, s.clearFlt
	l.sigStopTaken, l.ptraceStopTaken = s.sigStopTaken, s.ptraceStopTaken

	l.SigHold = s.sigHold
	l.CurSig, l.CurFlt, l.FltAddr, l.fltStopDone = s.curSig, s.curFlt, s.fltAddr, s.fltStopDone

	l.sysNum, l.sysArgs = s.sysNum, s.sysArgs
	l.sysEntryDone, l.sysExitDone, l.sysStored = s.sysEntryDone, s.sysExitDone, s.sysStored
	l.sysRet, l.sysR1, l.sysErr = s.sysRet, s.sysR1, s.sysErr
	l.suspSaved = nil
	if s.suspSaved != nil {
		saved := *s.suspSaved
		l.suspSaved = &saved
	}

	l.sleepQ, l.sleeping, l.sleepDeadline = s.sleepQ, s.sleeping, s.sleepDeadline
	l.vforkChild = s.vforkChild
	l.waitReport = s.waitReport
}

// CheckRestored verifies gross restore invariants: pid-map/order agreement
// and per-process LWP-count consistency. Tests call it after Restore.
func (k *Kernel) CheckRestored() error {
	if n := k.pidCount(); n != len(k.order) {
		return fmt.Errorf("kernel: %d pid-map entries, %d order entries", n, len(k.order))
	}
	for _, p := range k.order {
		if got := k.Proc(p.Pid); got != p {
			return fmt.Errorf("kernel: pid %d maps to a different process", p.Pid)
		}
		var nrun int32
		for _, l := range p.LWPs {
			if l.state == LRun {
				nrun++
			}
		}
		if got := p.nrun.Load(); got != nrun {
			return fmt.Errorf("kernel: pid %d nrun %d, want %d", p.Pid, got, nrun)
		}
	}
	return nil
}
