package kernel_test

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/types"
	"repro/internal/vcpu"
)

// These tests pin the TLB invalidation protocol end to end: each one warms
// the vCPU's translation cache on a page, changes the mapping state through
// a different kernel path, and then proves the very next access sees the new
// state. A stale translation would let the guarded access slip through (or
// read dropped storage), flipping the observable outcome.

// A store that worked before mprotect must fault immediately after: a stale
// writable TLB entry would let it through and the program would exit 7.
func TestTLBInvalidateMprotect(t *testing.T) {
	f := boot(t)
	p := f.spawn("tlbprot", `
	movi r0, SYS_mmap
	movi r1, 0
	movi r2, 4096
	movi r3, 3		; read|write
	movi r4, 0		; private anon
	syscall
	mov r6, r0
	movi r5, 1
	st r5, [r6]		; materialize the page (slow path)
	st r5, [r6+4]		; warm a writable TLB entry
	movi r0, SYS_mprotect
	mov r1, r6
	movi r2, 4096
	movi r3, 1		; read-only
	syscall
	st r5, [r6+8]		; must fault: the cached entry is stale
	movi r0, SYS_exit
	movi r1, 7
	syscall
`, user())
	status := f.runToExit(p)
	if sig, num, _ := kernel.WIfSignaled(status); !sig || num != types.SIGSEGV {
		t.Fatalf("status = %#x, want SIGSEGV death (exit 7 means a stale TLB entry let a store through mprotect)", status)
	}
}

// A load that worked before munmap must fault immediately after.
func TestTLBInvalidateMunmap(t *testing.T) {
	f := boot(t)
	p := f.spawn("tlbunmap", `
	movi r0, SYS_mmap
	movi r1, 0
	movi r2, 4096
	movi r3, 3
	movi r4, 0
	syscall
	mov r6, r0
	movi r5, 9
	st r5, [r6]
	ld r7, [r6]		; warm the TLB entry
	movi r0, SYS_munmap
	mov r1, r6
	movi r2, 4096
	syscall
	ld r7, [r6]		; must fault: the page is gone
	movi r0, SYS_exit
	movi r1, 7
	syscall
`, user())
	status := f.runToExit(p)
	if sig, num, _ := kernel.WIfSignaled(status); !sig || num != types.SIGSEGV {
		t.Fatalf("status = %#x, want SIGSEGV death (exit 7 means a stale TLB entry survived munmap)", status)
	}
}

// Shrinking the break drops its private pages; growing it back must produce
// fresh zero-fill. A stale TLB entry still aliases the dropped page's
// storage and would read the old value (99) instead of 0.
func TestTLBInvalidateBrk(t *testing.T) {
	f := boot(t)
	p := f.spawn("tlbbrk", `
	la r6, heap
	movi r5, 99
	st r5, [r6]		; materialize the break page
	ld r7, [r6]		; warm the TLB entry (reads 99)
	movi r0, SYS_brk
	mov r1, r6
	syscall			; shrink the break to zero length
	movi r0, SYS_brk
	mov r1, r6
	addi r1, 4096
	syscall			; grow it back: fresh zero-fill page
	ld r4, [r6]		; must read 0, not the dropped 99
	movi r0, SYS_exit
	mov r1, r4
	syscall
.bss
heap:	.space 8
`, user())
	status := f.runToExit(p)
	if ok, code := kernel.WIfExited(status); !ok || code != 0 {
		t.Fatalf("status = %#x, want exit 0 (exit 99 means a stale TLB entry read a dropped break page)", status)
	}
}

// Automatic stack growth happens on the slow path and must invalidate any
// negatively-cached translation for the grown page, so subsequent fast-path
// accesses see the new mapping.
func TestTLBInvalidateStackGrowth(t *testing.T) {
	// Quantum 1 so the growth stat is observable between scheduler steps;
	// with the default quantum the whole program runs inside one Step and
	// the address space is gone (exit) before the test can look.
	f := bootWith(t, 1)
	p := f.spawn("tlbstack", `
	movi r6, 0
	movhi r6, 0x7FFE	; below the initial stack mapping, in the growth region
	movi r5, 123
	st r5, [r6]		; grows the stack
	ld r7, [r6]		; fast path over the grown page
	st r7, [r6+4]
	ld r4, [r6+4]
	sub r4, r5		; 0 if the value round-tripped
	movi r0, SYS_exit
	mov r1, r4
	syscall
`, user())
	grew := false
	if err := f.K.RunUntil(func() bool {
		if p.AS != nil && p.AS.Stats.GrowStack > 0 {
			grew = true
		}
		return !p.Alive()
	}, 2_000_000); err != nil {
		t.Fatal(err)
	}
	if !grew {
		t.Fatal("stack did not grow: the test did not exercise the growth path")
	}
	if ok, code := kernel.WIfExited(p.ExitStatus); !ok || code != 0 {
		t.Fatalf("status = %#x, want exit 0", p.ExitStatus)
	}
}

// Poking the text of a spinning process through ptrace must invalidate the
// instruction-fetch translation: the process escapes its jmp-to-self only if
// the very next fetch sees the poked NOP.
func TestTLBInvalidatePokeText(t *testing.T) {
	f := boot(t)
	p := f.spawn("tlbpoke", `
spin:	jmp spin
	movi r0, SYS_exit
	movi r1, 5
	syscall
`, user())
	f.K.Run(20) // warm the fetch translation on the text page
	c := f.K.PtraceAttach(p)
	f.K.PostSignal(p, types.SIGTRAP)
	if _, err := c.WaitStop(100000); err != nil {
		t.Fatal(err)
	}
	if err := c.PokeText(0x80000000, vcpu.Encode(vcpu.OpNOP, 0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := c.Cont(0); err != nil {
		t.Fatal(err)
	}
	status := f.runToExit(p)
	if ok, code := kernel.WIfExited(status); !ok || code != 5 {
		t.Fatalf("status = %#x, want exit 5 (still spinning means the fetch TLB kept the pre-poke instruction)", status)
	}
}
