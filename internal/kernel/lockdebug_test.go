//go:build lockdebug

package kernel

import "testing"

// These tests only exist in the lockdebug build (go test -tags lockdebug):
// they verify that the lock-order checker admits the documented hierarchy
// and panics on the violations it is meant to catch. The rest of the kernel
// suite running under the same tag checks that no legitimate code path
// trips an assertion.

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected a lock-order panic", name)
		}
	}()
	fn()
}

func TestLockOrderHierarchy(t *testing.T) {
	// Strictly increasing rank is always legal.
	lockOrderAcquire(rankGlobal)
	lockOrderAcquire(rankProc)
	lockOrderAcquire(rankSleep)
	lockOrderAcquire(rankQueue)
	lockOrderRelease(rankQueue)
	lockOrderRelease(rankSleep)
	lockOrderRelease(rankProc)
	lockOrderRelease(rankGlobal)

	// The sanctioned exception: the global holder may take process locks
	// one at a time, even after holding a higher rank in between.
	lockOrderAcquire(rankGlobal)
	lockOrderAcquire(rankProc)
	lockOrderRelease(rankProc)
	lockOrderAcquire(rankProc) // re-acquire a (different) process lock
	lockOrderRelease(rankProc)
	lockOrderRelease(rankGlobal)
}

func TestLockOrderViolations(t *testing.T) {
	// Taking the global lock above a higher rank is a deadlock in waiting.
	lockOrderAcquire(rankQueue)
	mustPanic(t, "queue→global", func() { lockOrderAcquire(rankGlobal) })
	lockOrderRelease(rankQueue)

	// Two process locks at once violates the single-target rule even for
	// the global holder.
	lockOrderAcquire(rankGlobal)
	lockOrderAcquire(rankProc)
	mustPanic(t, "proc→proc", func() { lockOrderAcquire(rankProc) })
	lockOrderRelease(rankProc)
	lockOrderRelease(rankGlobal)

	// A bare process-lock holder may not reach back down to the global.
	lockOrderAcquire(rankProc)
	mustPanic(t, "proc→global", func() { lockOrderAcquire(rankGlobal) })
	lockOrderRelease(rankProc)

	// Releasing a rank that is not held is a bookkeeping bug.
	mustPanic(t, "release-unheld", func() { lockOrderRelease(rankSleep) })
}
