package kernel

import (
	"testing"

	"repro/internal/ktrace"
	"repro/internal/vfs"
)

// Regression test: a quantum that never runs anything must not be billed.
// runLWP used to charge InvolCtx and emit a ktSchedTick unconditionally on
// loop exit, so an LWP handed an exhausted (or zero) budget — which cannot
// have held the CPU — was charged for an involuntary context switch and
// polluted the trace stream with scheduling ticks.
func TestRunLWPNoChargeWhenNothingRan(t *testing.T) {
	k := New(vfs.NewNS(nil), Config{NCPU: 1})
	p := &Proc{k: k, Pid: 99, Comm: "t", fds: map[int]*vfs.File{}}
	k.addProc(p)
	l := p.newLWP()
	p.KT = ktrace.NewRing(64) // make ktEnabled true so a tick would be recorded

	if ran := k.runLWP(l, 0); ran {
		t.Fatal("zero-budget runLWP reported progress")
	}
	if got := p.Usage.InvolCtx; got != 0 {
		t.Fatalf("zero-budget runLWP charged InvolCtx = %d, want 0", got)
	}
	if n := p.KT.Len(); n != 0 {
		t.Fatalf("zero-budget runLWP emitted %d trace events, want 0", n)
	}

	// A gated LWP (asleep the whole quantum) is equally not billed.
	l.sleeping = true
	if ran := k.runLWP(l, 5); ran {
		t.Fatal("sleeping runLWP reported progress")
	}
	if got := p.Usage.InvolCtx; got != 0 {
		t.Fatalf("sleeping runLWP charged InvolCtx = %d, want 0", got)
	}
	if n := p.KT.Len(); n != 0 {
		t.Fatalf("sleeping runLWP emitted %d trace events, want 0", n)
	}
}
