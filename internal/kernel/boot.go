package kernel

import (
	"repro/internal/types"
	"repro/internal/vcpu"
	"repro/internal/vfs"
)

// initialSP is the initial user stack pointer (the top of the stack
// mapping); it matches the xout layout conventions.
const initialSP = 0x7FFF8000

// vcpuRegsAt returns a fresh register set positioned at entry with the
// conventional initial stack pointer.
func vcpuRegsAt(entry uint32) vcpu.Regs {
	return vcpu.Regs{PC: entry, SP: initialSP}
}

func fpZero() vcpu.FPRegs { return vcpu.FPRegs{} }

// Spawn creates a new process running the executable at path with the given
// credentials. parent may be nil, in which case the process becomes a child
// of init (or parentless, for init itself). The new process has not executed
// any instruction yet, so a controlling program can establish tracing flags
// before it runs.
func (k *Kernel) Spawn(path string, args []string, cred types.Cred, parent *Proc) (*Proc, error) {
	if parent == nil {
		parent = k.initProc
	}
	p := &Proc{
		k:      k,
		Pid:    k.allocPid(),
		Parent: parent,
		Cred:   cred.Clone(),
		CWD:    "/",
		Umask:  0o22,
		Start:  k.Now(),
		fds:    map[int]*vfs.File{},
	}
	if parent != nil {
		p.Pgrp = parent.Pgrp
		p.Sid = parent.Sid
		parent.Kids = append(parent.Kids, p)
	}
	if p.Pgrp == 0 {
		p.Pgrp = p.Pid
		p.Sid = p.Pid
	}
	k.addProc(p)
	p.newLWP()
	if err := k.Exec(p, path, args); err != nil {
		k.exitProc(p, statusExited(127))
		k.reap(p)
		return nil, err
	}
	return p, nil
}
