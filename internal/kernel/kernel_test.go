package kernel_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/kernel"
	"repro/internal/memfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

// fixture boots a kernel over a memfs root.
type fixture struct {
	t  *testing.T
	K  *kernel.Kernel
	FS *memfs.FS
}

func boot(t *testing.T) *fixture { return bootWith(t, 0) }

// bootWith boots a kernel with an explicit scheduler quantum.
func bootWith(t *testing.T, quantum int) *fixture {
	t.Helper()
	var k *kernel.Kernel
	fs := memfs.New(func() int64 {
		if k == nil {
			return 0
		}
		return k.Now()
	})
	ns := vfs.NewNS(fs.Root())
	k = kernel.New(ns, kernel.Config{Quantum: quantum})
	k.BootSystemProcs()
	fs.MkdirAll("/bin", 0o755)
	fs.MkdirAll("/lib", 0o755)
	fs.MkdirAll("/tmp", 0o777)
	return &fixture{t: t, K: k, FS: fs}
}

// install assembles src and writes the executable.
func (f *fixture) install(path, src string, mode uint16, uid, gid int) {
	f.t.Helper()
	img, err := asm.Assemble(src, &asm.Options{Predef: kernel.Predefs()})
	if err != nil {
		f.t.Fatalf("assemble %s: %v", path, err)
	}
	if err := f.FS.WriteFile(path, img.Marshal(), mode, uid, gid); err != nil {
		f.t.Fatal(err)
	}
}

// spawn installs and starts a program.
func (f *fixture) spawn(name, src string, cred types.Cred) *kernel.Proc {
	f.t.Helper()
	path := "/bin/" + name
	f.install(path, src, 0o755, 0, 0)
	p, err := f.K.Spawn(path, nil, cred, nil)
	if err != nil {
		f.t.Fatalf("spawn %s: %v", path, err)
	}
	return p
}

// runToExit drives the scheduler until p exits and returns the status.
func (f *fixture) runToExit(p *kernel.Proc) int {
	f.t.Helper()
	if err := f.K.RunUntil(func() bool { return !p.Alive() }, 2_000_000); err != nil {
		st, _ := p.Status()
		f.t.Fatalf("process %d did not exit: %v (status %+v)", p.Pid, err, st)
	}
	return p.ExitStatus
}

func user() types.Cred { return types.UserCred(100, 10) }

const exit42 = `
	movi r0, SYS_exit
	movi r1, 42
	syscall
`

func TestSpawnExitStatus(t *testing.T) {
	f := boot(t)
	p := f.spawn("exit42", exit42, user())
	status := f.runToExit(p)
	if ok, code := kernel.WIfExited(status); !ok || code != 42 {
		t.Fatalf("status = %#x", status)
	}
}

func TestSystemProcsExist(t *testing.T) {
	f := boot(t)
	if p := f.K.Proc(0); p == nil || p.Comm != "sched" || p.VirtSize() != 0 {
		t.Fatal("pid 0 sched missing or has an address space")
	}
	if p := f.K.Proc(2); p == nil || p.Comm != "pageout" {
		t.Fatal("pid 2 pageout missing")
	}
}

func TestForkAndWait(t *testing.T) {
	f := boot(t)
	p := f.spawn("forker", `
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_exit	; child
	movi r1, 7
	syscall
parent:
	movi r0, SYS_wait
	movi r1, 0
	syscall			; r0 = pid, r1 = status
	shr r1, 8		; exit code of child
	movi r0, SYS_exit
	syscall
`, user())
	status := f.runToExit(p)
	if ok, code := kernel.WIfExited(status); !ok || code != 7 {
		t.Fatalf("parent status = %#x, want child's code 7", status)
	}
}

func TestVforkSharesAddressSpace(t *testing.T) {
	f := boot(t)
	p := f.spawn("vforker", `
	movi r0, SYS_vfork
	syscall
	cmpi r0, 0
	jne parent
	la r3, flag		; child: write the shared flag
	movi r4, 1
	st r4, [r3]
	movi r0, SYS_exit
	movi r1, 0
	syscall
parent:
	la r3, flag
	ld r4, [r3]
	mov r1, r4		; 1 if the child's store is visible
	movi r0, SYS_exit
	syscall
.data
flag:	.word 0
`, user())
	status := f.runToExit(p)
	if ok, code := kernel.WIfExited(status); !ok || code != 1 {
		t.Fatalf("status = %#x: vfork child's store was not visible to parent", status)
	}
}

func TestForkCopiesAddressSpace(t *testing.T) {
	f := boot(t)
	p := f.spawn("forkcow", `
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	la r3, flag		; child: write the (private) flag
	movi r4, 1
	st r4, [r3]
	movi r0, SYS_exit
	movi r1, 0
	syscall
parent:
	movi r0, SYS_wait	; reap first so the write surely happened
	movi r1, 0
	syscall
	la r3, flag
	ld r4, [r3]
	mov r1, r4		; 0: the child's store must NOT be visible
	movi r0, SYS_exit
	syscall
.data
flag:	.word 0
`, user())
	status := f.runToExit(p)
	if ok, code := kernel.WIfExited(status); !ok || code != 0 {
		t.Fatalf("status = %#x: fork child's store leaked into parent", status)
	}
}

func TestPipeRoundTrip(t *testing.T) {
	f := boot(t)
	p := f.spawn("piper", `
	movi r0, SYS_pipe
	syscall			; r0 = read fd, r1 = write fd
	mov r6, r0		; save read fd
	mov r7, r1		; save write fd
	movi r0, SYS_write
	mov r1, r7
	la r2, msg
	movi r3, 5
	syscall
	movi r0, SYS_read
	mov r1, r6
	la r2, buf
	movi r3, 5
	syscall
	la r3, buf
	ldb r1, [r3+4]		; 'o' = 111
	movi r0, SYS_exit
	syscall
.data
msg:	.ascii "hello"
buf:	.space 8
`, user())
	status := f.runToExit(p)
	if ok, code := kernel.WIfExited(status); !ok || code != 'o' {
		t.Fatalf("status = %#x, want 'o'", status)
	}
}

func TestPipeBlocksAndWakes(t *testing.T) {
	f := boot(t)
	// Parent forks; the child writes to the pipe after spinning a while;
	// the parent's read must block and then complete.
	p := f.spawn("pipeblock", `
	movi r0, SYS_pipe
	syscall
	mov r6, r0
	mov r7, r1
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r5, 200		; child: delay loop
spin:	addi r5, -1
	cmpi r5, 0
	jne spin
	movi r0, SYS_write
	mov r1, r7
	la r2, msg
	movi r3, 1
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
parent:
	movi r0, SYS_read	; blocks until the child writes
	mov r1, r6
	la r2, buf
	movi r3, 1
	syscall
	mov r1, r0		; bytes read (1)
	movi r0, SYS_exit
	syscall
.data
msg:	.ascii "x"
buf:	.space 4
`, user())
	status := f.runToExit(p)
	if ok, code := kernel.WIfExited(status); !ok || code != 1 {
		t.Fatalf("status = %#x, want read of 1 byte", status)
	}
}

func TestBrkGrowsBreakSegment(t *testing.T) {
	f := boot(t)
	p := f.spawn("brker", `
	la r3, end		; current break end (bss base + bss size)
	mov r1, r3
	movi r2, 0		; + 64K
	movhi r2, 1
	add r1, r2
	mov r5, r1		; target end
	movi r0, SYS_brk
	syscall
	st r5, [r5-4]		; store into the new memory
	ld r1, [r5-4]
	sub r1, r5		; 0 on success
	movi r0, SYS_exit
	syscall
.bss
end:	.space 4
`, user())
	status := f.runToExit(p)
	if ok, code := kernel.WIfExited(status); !ok || code != 0 {
		t.Fatalf("status = %#x", status)
	}
}

func TestStackGrowsAutomatically(t *testing.T) {
	f := boot(t)
	p := f.spawn("stack", `
	movspr r3
	movi r4, 0		; 0x30000 below the stack pointer
	movhi r4, 3
	sub r3, r4
	movi r5, 99
	st r5, [r3]		; far below the mapping: must auto-grow
	ld r1, [r3]
	addi r1, -99		; 0 on success
	movi r0, SYS_exit
	syscall
`, user())
	status := f.runToExit(p)
	if ok, code := kernel.WIfExited(status); !ok || code != 0 {
		t.Fatalf("status = %#x", status)
	}
}

func TestExecReplacesImage(t *testing.T) {
	f := boot(t)
	f.install("/bin/second", exit42, 0o755, 0, 0)
	p := f.spawn("execer", `
	movi r0, SYS_exec
	la r1, path
	syscall
	movi r0, SYS_exit	; only reached if exec failed
	movi r1, 1
	syscall
.data
path:	.asciz "/bin/second"
`, user())
	status := f.runToExit(p)
	if ok, code := kernel.WIfExited(status); !ok || code != 42 {
		t.Fatalf("status = %#x, want 42 from the exec'd image", status)
	}
	if p.Comm != "second" {
		t.Fatalf("comm = %q", p.Comm)
	}
}

func TestExecENOENTAndENOEXEC(t *testing.T) {
	f := boot(t)
	f.FS.WriteFile("/bin/notxout", []byte("#!/bin/sh"), 0o755, 0, 0)
	p := f.spawn("badexec", `
	movi r0, SYS_exec
	la r1, missing
	syscall			; fails; carry set, r0 = errno
	mov r5, r0
	movi r0, SYS_exec
	la r1, notexec
	syscall
	mov r1, r0		; ENOEXEC = 8
	shl r1, 8
	or r1, r5		; low byte ENOENT = 2
	movi r0, SYS_exit
	syscall
.data
missing: .asciz "/bin/nonesuch"
notexec: .asciz "/bin/notxout"
`, user())
	status := f.runToExit(p)
	_, code := kernel.WIfExited(status)
	if code != (8<<8|2)&0xFF && code != 8*16+2 { // exit code truncated to 8 bits: 0x02 expected low byte
		// The exit code keeps only the low byte: (ENOEXEC<<8|ENOENT)&0xFF == ENOENT.
		if code != 2 {
			t.Fatalf("exit code = %d", code)
		}
	}
}

func TestZombieAndReap(t *testing.T) {
	f := boot(t)
	// Parent forks and spins without waiting: the child becomes a zombie.
	p := f.spawn("nowait", `
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_exit
	movi r1, 0
	syscall
parent:
	jmp parent
`, user())
	var child *kernel.Proc
	err := f.K.RunUntil(func() bool {
		for _, q := range f.K.Procs() {
			if q.Parent == p && q.Zombie() {
				child = q
				return true
			}
		}
		return false
	}, 100000)
	if err != nil {
		t.Fatalf("no zombie child: %v", err)
	}
	if info := child.PSInfo(); info.State != 'Z' {
		t.Fatalf("zombie state = %c", info.State)
	}
	// Kill the parent: the zombie is reparented to init and reaped.
	f.K.PostSignal(p, types.SIGKILL)
	if err := f.K.RunUntil(func() bool { return !p.Alive() }, 100000); err != nil {
		t.Fatal(err)
	}
	if f.K.Proc(child.Pid) != nil {
		t.Fatal("orphan zombie was not reaped")
	}
}

func TestGetpidAndCreds(t *testing.T) {
	f := boot(t)
	p := f.spawn("ident", `
	movi r0, SYS_getuid
	syscall
	mov r5, r0		; ruid
	movi r0, SYS_getgid
	syscall
	mov r6, r0		; rgid
	movi r0, SYS_getpid
	syscall
	mov r7, r0		; pid
	mov r1, r5
	shl r1, 8
	or r1, r6		; (uid<<8)|gid ... uid=100 too big; use gid only
	mov r1, r6
	movi r0, SYS_exit
	syscall
`, user())
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != 10 {
		t.Fatalf("gid = %d, want 10", code)
	}
}

func TestTimeAdvances(t *testing.T) {
	f := boot(t)
	before := f.K.Now()
	p := f.spawn("timer", exit42, user())
	f.runToExit(p)
	if f.K.Now() <= before {
		t.Fatal("clock did not advance")
	}
}

func TestSleepSyscall(t *testing.T) {
	f := boot(t)
	p := f.spawn("sleeper", `
	movi r0, SYS_sleep
	movi r1, 500
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
`, user())
	start := f.K.Now()
	status := f.runToExit(p)
	if ok, code := kernel.WIfExited(status); !ok || code != 0 {
		t.Fatalf("status = %#x", status)
	}
	if f.K.Now()-start < 500 {
		t.Fatalf("sleep returned after %d ticks, want >= 500", f.K.Now()-start)
	}
}

func TestMmapMunmap(t *testing.T) {
	f := boot(t)
	p := f.spawn("mapper", `
	movi r0, SYS_mmap
	movi r1, 0		; any address
	movi r2, 0		; 64K
	movhi r2, 1
	movi r3, 3		; read|write
	movi r4, 0		; private anon
	syscall
	mov r6, r0		; base
	movi r5, 77
	st r5, [r6+128]
	ld r7, [r6+128]
	movi r0, SYS_munmap
	mov r1, r6
	movi r2, 0
	movhi r2, 1
	syscall
	mov r1, r7
	addi r1, -77		; 0 on success
	movi r0, SYS_exit
	syscall
`, user())
	status := f.runToExit(p)
	if ok, code := kernel.WIfExited(status); !ok || code != 0 {
		t.Fatalf("status = %#x", status)
	}
}

func TestENOSYSForUnknownSyscall(t *testing.T) {
	f := boot(t)
	p := f.spawn("badnum", `
	movi r0, 177		; unassigned number
	syscall
	mov r1, r0		; errno
	movi r0, SYS_exit
	syscall
`, user())
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != int(kernel.ENOSYS) {
		t.Fatalf("errno = %d, want ENOSYS", code)
	}
}

func TestFileIOFromProcess(t *testing.T) {
	f := boot(t)
	f.FS.WriteFile("/tmp/in", []byte("Q"), 0o666, 0, 0)
	p := f.spawn("fileio", `
	movi r0, SYS_open
	la r1, inpath
	movi r2, 1		; O_RDONLY
	syscall
	mov r6, r0
	movi r0, SYS_read
	mov r1, r6
	la r2, buf
	movi r3, 1
	syscall
	movi r0, SYS_creat
	la r1, outpath
	movi r2, 0x1B6		; 0666
	syscall
	mov r7, r0
	movi r0, SYS_write
	mov r1, r7
	la r2, buf
	movi r3, 1
	syscall
	movi r0, SYS_close
	mov r1, r7
	syscall
	la r3, buf
	ldb r1, [r3]
	movi r0, SYS_exit
	syscall
.data
inpath:	 .asciz "/tmp/in"
outpath: .asciz "/tmp/out"
buf:	 .space 4
`, user())
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != 'Q' {
		t.Fatalf("code = %d", code)
	}
	cl := &vfs.Client{NS: f.K.NS, Cred: types.RootCred()}
	data, err := cl.ReadFile("/tmp/out")
	if err != nil || string(data) != "Q" {
		t.Fatalf("out = %q, %v", data, err)
	}
}
