package kernel

import (
	"repro/internal/types"
	"repro/internal/vcpu"
)

// runLWP advances one LWP through the kernel entry/exit cycle for up to
// budget instructions. The stop points of the paper's Figure 3 are the
// transitions of this machine: system call entry, system call exit, machine
// faults, and signal receipt on the way back to user level. It returns
// whether anything ran. This is the deterministic scheduler's entry point;
// the SMP workers call runLWPOn with their own CPU.
func (k *Kernel) runLWP(l *LWP, budget int) (ran bool) {
	return k.runLWPOn(nil, l, budget)
}

// runLWPOn is the phase machine parameterized by the executing CPU.
//
// w == nil is the deterministic single-threaded mode: counters are bumped
// directly, no locks are taken, and the control flow is exactly the
// historical one, so the bit-for-bit ktrace and fault-storm suites pin the
// same behaviour they always did.
//
// w != nil is one SMP worker. The division of labor per iteration:
//
//   - User instruction stepping runs with no kernel lock at all. The only
//     per-instruction synchronization is the process's intr atomic (the
//     full signal/stop gate is taken under the global lock only when it
//     is set) and the address space's own atomics on the TLB path.
//   - System calls dispatch under the lock their class requires
//     (sysLockClass): none for pure reads of process-local atomics,
//     the per-process lock for calls that touch only the caller (brk,
//     signal masks, alarm/times, umask/nice), and the narrow global
//     lock for everything that can see another process (fork/exit/wait,
//     file ops, kill, every call that can sleep). Kernel phases that
//     touch cross-process state (signal delivery, stop events, sleeps,
//     trace emission) take the global lock lazily via w.lockGlobal()
//     and drop everything at the return to user level.
//   - The clock and usage counters accumulate in the worker and flush
//     under the per-process lock once per quantum, so the user-mode hot
//     loop performs no shared-memory writes per instruction and the
//     accounting flush never touches the global lock.
func (k *Kernel) runLWPOn(w *kcpu, l *LWP, budget int) (ran bool) {
	p := l.Proc
	// A stop, sleep or death reached during this call counts as progress
	// even when no instruction executed — the state advanced, and waiters
	// (PIOCWSTOP, poll) must get a chance to observe it.
	entryPhase, entryState := l.phase, l.state
	if w != nil {
		// Other CPUs mutate scheduling state under the global lock; this
		// worker holds nothing yet, so entry/exit observations and the
		// loop-top check below go through the atomic state mirror.
		entryState = LState(l.stateA.Load())
		w.enter(l)
	}
	defer func() {
		st := l.state
		if w != nil {
			st = LState(l.stateA.Load())
		}
		if l.phase != entryPhase || st != entryState {
			ran = true
		}
		if w != nil {
			w.leave(p)
		}
	}()
	for budget > 0 {
		if w == nil {
			if l.state == LZombie || !p.Alive() || l.Stopped() || l.sleeping {
				return ran
			}
		} else if LState(l.stateA.Load()) != LRun || !p.Alive() {
			return ran
		}
		switch l.phase {
		case phUser:
			// Natural points of control are where the process enters and
			// leaves the kernel; a pending directive or signal enters it.
			if w == nil {
				if l.dstop || l.CurSig != 0 || !p.SigPend.IsEmpty() {
					if k.issig(l, false) {
						k.psig(l)
					}
					if l.state == LZombie || !p.Alive() || l.Stopped() {
						return ran
					}
				}
			} else {
				w.unlock() // back at user level: run with no locks at all
				// The gate reads only the intr atomic: everything that sets
				// a pending signal, current signal or directed stop calls
				// noteIntr, so a clear atomic means nothing to deliver.
				if p.intr.Load() != 0 {
					w.lockGlobal()
					if l.dstop || l.CurSig != 0 || !p.SigPend.IsEmpty() {
						if k.issig(l, false) {
							k.psig(l)
						}
					} else {
						p.clearIntr()
					}
					w.unlock()
					if LState(l.stateA.Load()) != LRun || !p.Alive() {
						return ran
					}
				}
			}
			tr := l.CPU.Step()
			budget--
			ran = true
			if w == nil {
				k.clock++
				p.Usage.UserTicks++
			} else {
				w.ticks++
				w.userTicks++
			}
			switch tr.Kind {
			case vcpu.TrapNone:
			case vcpu.TrapSyscall:
				l.sysNum = int(l.CPU.Regs.R[0])
				l.sysEntryDone = false
				l.sysExitDone = false
				l.sysStored = false
				l.abortSys = false
				if w == nil {
					p.Usage.Syscalls++
				} else {
					w.syscalls++
				}
				l.phase = phSysEntry
			case vcpu.TrapFault:
				if tr.Fault == types.FLTTRACE {
					// A single step is one instruction; drop the trace bit.
					l.CPU.Regs.PSW &^= uint32(vcpu.FlagTrace)
				}
				l.CurFlt = tr.Fault
				l.FltAddr = tr.Addr
				l.fltStopDone = false
				if w == nil {
					p.Usage.Faults++
				} else {
					w.faults++
				}
				if k.ktEnabled(p) {
					if w != nil {
						w.lockGlobal()
					}
					k.ktFault(l, tr.Fault, tr.Addr)
				}
				l.phase = phFault
			}

		case phSysEntry:
			// A stop on system call entry occurs before the system has
			// fetched the arguments, so a debugger can change them.
			if !l.sysEntryDone && p.Trace.Entry.Has(l.sysNum) {
				l.sysEntryDone = true
				if w != nil {
					w.lockGlobal()
				}
				l.stopEvent(WhySysEntry, l.sysNum)
				return ran
			}
			l.sysEntryDone = true
			for i := 0; i < 5; i++ {
				l.sysArgs[i] = l.CPU.Regs.R[i+1]
			}
			l.sysArgs[5] = 0
			// The entry event is recorded after the arguments are fetched,
			// so it reflects any changes a debugger made at the entry stop.
			if k.ktEnabled(p) {
				if w != nil {
					w.lockGlobal()
				}
				k.ktSysEntry(l)
			}
			if l.abortSys {
				// PRSABORT: go directly to system call exit with EINTR.
				l.abortSys = false
				l.sysRet, l.sysR1, l.sysErr = 0, 0, EINTR
				l.phase = phSysExit
				continue
			}
			l.phase = phSysRun

		case phSysRun:
			// Re-entry here after a sleep (or a stop taken while asleep)
			// re-asks the question, as issig() within an interruptible
			// sleep does: a delivered signal makes the call fail EINTR; a
			// requested stop leaves the call undisturbed.
			if w == nil {
				if l.dstop || l.CurSig != 0 || !p.SigPend.IsEmpty() {
					if k.issig(l, true) {
						l.sysRet, l.sysR1, l.sysErr = 0, 0, EINTR
						l.phase = phSysExit
						continue
					}
					if l.state == LZombie || !p.Alive() || l.Stopped() {
						return ran
					}
				}
			} else if p.intr.Load() != 0 {
				w.lockGlobal()
				if l.dstop || l.CurSig != 0 || !p.SigPend.IsEmpty() {
					if k.issig(l, true) {
						l.sysRet, l.sysR1, l.sysErr = 0, 0, EINTR
						l.phase = phSysExit
						continue
					}
					if l.state == LZombie || !p.Alive() || l.Stopped() {
						return ran
					}
				}
			}
			if l.abortSys {
				l.abortSys = false
				l.sysRet, l.sysR1, l.sysErr = 0, 0, EINTR
				l.phase = phSysExit
				continue
			}
			if w != nil {
				// Take the lock the system call's class requires, and fold
				// the quantum's deltas in first under it so handlers that
				// read the clock or this process's own usage (time, times,
				// alarm) observe their own ticks, as they would have in
				// deterministic mode.
				switch cls := sysClassOf(l.sysNum); cls {
				case sysLockProc:
					w.lockProc()
					w.flush(p)
				case sysLockGlobal:
					w.lockGlobal()
					w.flush(p)
				}
			}
			res := k.dispatch(l)
			budget--
			ran = true
			if w == nil {
				k.clock++
				p.Usage.SysTicks++
			} else {
				w.ticks++
				w.sysTicks++
			}
			if res.NoReturn {
				return ran
			}
			if res.SleepOn != nil {
				if w != nil {
					w.lockGlobal() // wakers on other CPUs read the sleep state
				}
				l.sleep(res.SleepOn)
				return ran
			}
			l.sysRet, l.sysR1, l.sysErr = res.R0, res.R1, res.Err
			if res.SkipStore {
				l.sysStored = true
			}
			l.phase = phSysExit

		case phSysExit:
			// Return values are stored before the exit stop, so a debugger
			// can manufacture whatever values it wishes the process to see.
			if !l.sysStored {
				l.storeSysResult()
				l.sysStored = true
			}
			if !l.sysExitDone && p.Trace.Exit.Has(l.sysNum) {
				l.sysExitDone = true
				if w != nil {
					w.lockGlobal()
				}
				l.stopEvent(WhySysExit, l.sysNum)
				return ran
			}
			if k.ktEnabled(p) {
				if w != nil {
					w.lockGlobal()
				}
				k.ktSysExit(l)
			}
			if l.suspSaved != nil {
				l.SigHold = *l.suspSaved
				l.suspSaved = nil
			}
			l.sysNum = 0
			l.phase = phRetUser

		case phRetUser:
			// Just before returning to user level:
			//	if (issig()) psig();
			if w == nil {
				if k.issig(l, false) {
					k.psig(l)
				}
				if l.state == LZombie || !p.Alive() || l.Stopped() {
					return ran
				}
			} else if p.intr.Load() != 0 {
				// The gate reads only the intr atomic: every setter of a
				// pending, current or directed-stop condition raises it,
				// and clearIntr refuses to drop it while any of them
				// remain, so a clear atomic means nothing to deliver.
				w.lockGlobal()
				if k.issig(l, false) {
					k.psig(l)
				}
				if l.state == LZombie || !p.Alive() || l.Stopped() {
					return ran
				}
			}
			l.phase = phUser

		case phFault:
			if !l.fltStopDone && p.Trace.Faults.Has(l.CurFlt) {
				l.fltStopDone = true
				if w != nil {
					w.lockGlobal()
				}
				l.stopEvent(WhyFaulted, l.CurFlt)
				return ran
			}
			flt := l.CurFlt
			if l.clearFlt {
				// PRCFAULT: the debugger repaired the cause (e.g. replaced
				// the breakpoint instruction); re-execute from the same PC.
				l.clearFlt = false
				l.CurFlt = 0
				l.phase = phRetUser
				continue
			}
			l.CurFlt = 0
			// Otherwise the process is sent a signal, normally SIGTRAP or
			// SIGILL for breakpoints.
			if sig := types.FaultSignal(flt); sig != 0 {
				if w != nil {
					w.lockGlobal()
				}
				k.PostSignal(p, sig)
			}
			l.phase = phRetUser
		}
	}
	// Quantum expiry. The involuntary context switch is charged (and the
	// scheduling tick traced) only when something actually ran: a call
	// that arrives with an exhausted budget, or spends the whole quantum
	// gated, never held the CPU and must not be billed for losing it.
	if ran {
		if w == nil {
			p.Usage.InvolCtx++
			if k.ktEnabled(p) {
				k.ktSchedTick(l)
			}
		} else {
			w.involCtx++
			if k.ktEnabled(p) {
				w.lockGlobal()
				k.ktSchedTick(l)
			}
		}
	}
	return ran
}

// storeSysResult writes the system call results into the saved registers:
// R0 = return value (or errno), R1 = second return value, with the carry
// flag signalling error in the System V convention.
func (l *LWP) storeSysResult() {
	if l.sysErr != 0 {
		l.CPU.Regs.R[0] = uint32(l.sysErr)
		l.CPU.Regs.PSW |= uint32(vcpu.FlagC)
	} else {
		l.CPU.Regs.R[0] = l.sysRet
		l.CPU.Regs.R[1] = l.sysR1
		l.CPU.Regs.PSW &^= uint32(vcpu.FlagC)
	}
}

// dispatch executes the system call the LWP has entered.
func (k *Kernel) dispatch(l *LWP) sysResult {
	num := l.sysNum
	if num < 1 || num > MaxSysNum || sysTable[num].Handler == nil {
		return rerr(ENOSYS)
	}
	return sysTable[num].Handler(k, l)
}
