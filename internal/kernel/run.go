package kernel

import (
	"repro/internal/types"
	"repro/internal/vcpu"
)

// runLWP advances one LWP through the kernel entry/exit cycle for up to
// budget instructions. The stop points of the paper's Figure 3 are the
// transitions of this machine: system call entry, system call exit, machine
// faults, and signal receipt on the way back to user level. It returns
// whether anything ran.
func (k *Kernel) runLWP(l *LWP, budget int) (ran bool) {
	p := l.Proc
	// A stop, sleep or death reached during this call counts as progress
	// even when no instruction executed — the state advanced, and waiters
	// (PIOCWSTOP, poll) must get a chance to observe it.
	entryPhase, entryState := l.phase, l.state
	defer func() {
		if l.phase != entryPhase || l.state != entryState {
			ran = true
		}
	}()
	for budget > 0 {
		if l.state == LZombie || !p.Alive() || l.Stopped() || l.sleeping {
			return ran
		}
		switch l.phase {
		case phUser:
			// Natural points of control are where the process enters and
			// leaves the kernel; a pending directive or signal enters it.
			if l.dstop || l.CurSig != 0 || !p.SigPend.IsEmpty() {
				if k.issig(l, false) {
					k.psig(l)
				}
				if l.state == LZombie || !p.Alive() || l.Stopped() {
					return ran
				}
			}
			tr := l.CPU.Step()
			budget--
			ran = true
			k.clock++
			p.Usage.UserTicks++
			switch tr.Kind {
			case vcpu.TrapNone:
			case vcpu.TrapSyscall:
				l.sysNum = int(l.CPU.Regs.R[0])
				l.sysEntryDone = false
				l.sysExitDone = false
				l.sysStored = false
				l.abortSys = false
				p.Usage.Syscalls++
				l.phase = phSysEntry
			case vcpu.TrapFault:
				if tr.Fault == types.FLTTRACE {
					// A single step is one instruction; drop the trace bit.
					l.CPU.Regs.PSW &^= uint32(vcpu.FlagTrace)
				}
				l.CurFlt = tr.Fault
				l.FltAddr = tr.Addr
				l.fltStopDone = false
				p.Usage.Faults++
				if k.ktEnabled(p) {
					k.ktFault(l, tr.Fault, tr.Addr)
				}
				l.phase = phFault
			}

		case phSysEntry:
			// A stop on system call entry occurs before the system has
			// fetched the arguments, so a debugger can change them.
			if !l.sysEntryDone && p.Trace.Entry.Has(l.sysNum) {
				l.sysEntryDone = true
				l.stopEvent(WhySysEntry, l.sysNum)
				return ran
			}
			l.sysEntryDone = true
			for i := 0; i < 5; i++ {
				l.sysArgs[i] = l.CPU.Regs.R[i+1]
			}
			l.sysArgs[5] = 0
			// The entry event is recorded after the arguments are fetched,
			// so it reflects any changes a debugger made at the entry stop.
			if k.ktEnabled(p) {
				k.ktSysEntry(l)
			}
			if l.abortSys {
				// PRSABORT: go directly to system call exit with EINTR.
				l.abortSys = false
				l.sysRet, l.sysR1, l.sysErr = 0, 0, EINTR
				l.phase = phSysExit
				continue
			}
			l.phase = phSysRun

		case phSysRun:
			// Re-entry here after a sleep (or a stop taken while asleep)
			// re-asks the question, as issig() within an interruptible
			// sleep does: a delivered signal makes the call fail EINTR; a
			// requested stop leaves the call undisturbed.
			if l.dstop || l.CurSig != 0 || !p.SigPend.IsEmpty() {
				if k.issig(l, true) {
					l.sysRet, l.sysR1, l.sysErr = 0, 0, EINTR
					l.phase = phSysExit
					continue
				}
				if l.state == LZombie || !p.Alive() || l.Stopped() {
					return ran
				}
			}
			if l.abortSys {
				l.abortSys = false
				l.sysRet, l.sysR1, l.sysErr = 0, 0, EINTR
				l.phase = phSysExit
				continue
			}
			res := k.dispatch(l)
			budget--
			ran = true
			k.clock++
			p.Usage.SysTicks++
			if res.NoReturn {
				return ran
			}
			if res.SleepOn != nil {
				l.sleep(res.SleepOn)
				return ran
			}
			l.sysRet, l.sysR1, l.sysErr = res.R0, res.R1, res.Err
			if res.SkipStore {
				l.sysStored = true
			}
			l.phase = phSysExit

		case phSysExit:
			// Return values are stored before the exit stop, so a debugger
			// can manufacture whatever values it wishes the process to see.
			if !l.sysStored {
				l.storeSysResult()
				l.sysStored = true
			}
			if !l.sysExitDone && p.Trace.Exit.Has(l.sysNum) {
				l.sysExitDone = true
				l.stopEvent(WhySysExit, l.sysNum)
				return ran
			}
			if k.ktEnabled(p) {
				k.ktSysExit(l)
			}
			if l.suspSaved != nil {
				l.SigHold = *l.suspSaved
				l.suspSaved = nil
			}
			l.sysNum = 0
			l.phase = phRetUser

		case phRetUser:
			// Just before returning to user level:
			//	if (issig()) psig();
			if k.issig(l, false) {
				k.psig(l)
			}
			if l.state == LZombie || !p.Alive() || l.Stopped() {
				return ran
			}
			l.phase = phUser

		case phFault:
			if !l.fltStopDone && p.Trace.Faults.Has(l.CurFlt) {
				l.fltStopDone = true
				l.stopEvent(WhyFaulted, l.CurFlt)
				return ran
			}
			flt := l.CurFlt
			if l.clearFlt {
				// PRCFAULT: the debugger repaired the cause (e.g. replaced
				// the breakpoint instruction); re-execute from the same PC.
				l.clearFlt = false
				l.CurFlt = 0
				l.phase = phRetUser
				continue
			}
			l.CurFlt = 0
			// Otherwise the process is sent a signal, normally SIGTRAP or
			// SIGILL for breakpoints.
			if sig := types.FaultSignal(flt); sig != 0 {
				k.PostSignal(p, sig)
			}
			l.phase = phRetUser
		}
	}
	p.Usage.InvolCtx++
	if k.ktEnabled(p) {
		k.ktSchedTick(l)
	}
	return ran
}

// storeSysResult writes the system call results into the saved registers:
// R0 = return value (or errno), R1 = second return value, with the carry
// flag signalling error in the System V convention.
func (l *LWP) storeSysResult() {
	if l.sysErr != 0 {
		l.CPU.Regs.R[0] = uint32(l.sysErr)
		l.CPU.Regs.PSW |= uint32(vcpu.FlagC)
	} else {
		l.CPU.Regs.R[0] = l.sysRet
		l.CPU.Regs.R[1] = l.sysR1
		l.CPU.Regs.PSW &^= uint32(vcpu.FlagC)
	}
}

// dispatch executes the system call the LWP has entered.
func (k *Kernel) dispatch(l *LWP) sysResult {
	num := l.sysNum
	if num < 1 || num > MaxSysNum || sysTable[num].Handler == nil {
		return rerr(ENOSYS)
	}
	return sysTable[num].Handler(k, l)
}
