package kernel

import (
	"errors"

	"repro/internal/types"
	"repro/internal/vfs"
)

// errPipeGone is the internal marker for writing to a pipe with no readers.
var errPipeGone = errors.New("kernel: pipe has no readers")

// PipeCap is the pipe buffer capacity.
const PipeCap = 4096

// pipe is the shared state of one pipe(2).
type pipe struct {
	k       *Kernel
	buf     []byte
	readers int
	writers int
	rq, wq  waitq // sleep queues for empty reads / full writes
}

// pipeVnode gives pipes a presentable vnode (VFIFO).
type pipeVnode struct{ p *pipe }

// VAttr implements vfs.Vnode.
func (v *pipeVnode) VAttr() (vfs.Attr, error) {
	return vfs.Attr{Type: vfs.VFIFO, Mode: 0o600, Size: int64(len(v.p.buf)), Nlink: 1}, nil
}

// VOpen implements vfs.Vnode; pipe ends are created by pipe(2), not open(2).
func (v *pipeVnode) VOpen(flags int, c types.Cred) (vfs.Handle, error) {
	return nil, vfs.ErrNotSup
}

// pipeEnd is one end's handle.
type pipeEnd struct {
	p       *pipe
	readEnd bool
}

// HRead implements vfs.Handle (offsets are ignored: pipes are streams).
func (e *pipeEnd) HRead(p []byte, off int64) (int, error) {
	if !e.readEnd {
		return 0, vfs.ErrBadFD
	}
	pp := e.p
	if len(pp.buf) == 0 {
		if pp.writers == 0 {
			return 0, vfs.EOF
		}
		return 0, vfs.ErrAgain
	}
	n := copy(p, pp.buf)
	pp.buf = pp.buf[n:]
	pp.k.wakeAll(&pp.wq)
	return n, nil
}

// HWrite implements vfs.Handle.
func (e *pipeEnd) HWrite(p []byte, off int64) (int, error) {
	if e.readEnd {
		return 0, vfs.ErrBadFD
	}
	pp := e.p
	if pp.readers == 0 {
		return 0, errPipeGone
	}
	space := PipeCap - len(pp.buf)
	if space <= 0 {
		return 0, vfs.ErrAgain
	}
	n := len(p)
	if n > space {
		n = space
	}
	pp.buf = append(pp.buf, p[:n]...)
	pp.k.wakeAll(&pp.rq)
	return n, nil
}

// HIoctl implements vfs.Handle.
func (e *pipeEnd) HIoctl(cmd int, arg interface{}) error { return vfs.ErrNoIoctl }

// HClose implements vfs.Handle.
func (e *pipeEnd) HClose() error {
	if e.readEnd {
		e.p.readers--
	} else {
		e.p.writers--
	}
	// Wake sleepers so they observe EOF / EPIPE.
	e.p.k.wakeAll(&e.p.rq)
	e.p.k.wakeAll(&e.p.wq)
	return nil
}

// HPoll implements vfs.Poller.
func (e *pipeEnd) HPoll(mask int) int {
	ready := 0
	if e.readEnd && mask&vfs.PollIn != 0 && (len(e.p.buf) > 0 || e.p.writers == 0) {
		ready |= vfs.PollIn
	}
	if !e.readEnd && mask&vfs.PollOut != 0 && (PipeCap-len(e.p.buf) > 0 || e.p.readers == 0) {
		ready |= vfs.PollOut
	}
	return ready
}

// NewPipe creates a pipe and returns the read and write open files.
func (k *Kernel) NewPipe() (r, w *vfs.File) {
	p := &pipe{k: k, readers: 1, writers: 1}
	vn := &pipeVnode{p: p}
	r = &vfs.File{VN: vn, H: &pipeEnd{p: p, readEnd: true}, Flags: vfs.ORead}
	w = &vfs.File{VN: vn, H: &pipeEnd{p: p, readEnd: false}, Flags: vfs.OWrite}
	return r, w
}

func sysPipe(k *Kernel, l *LWP) sysResult {
	p := l.Proc
	// The pipe-slot check precedes creation: a refused pipe(2) allocates
	// nothing to roll back.
	if siteFaultPipe.Hit(p.Pid) {
		return rerr(ENFILE)
	}
	r, w := k.NewPipe()
	rfd, e := p.allocFD(r)
	if e != 0 {
		r.Close()
		w.Close()
		return rerr(e)
	}
	wfd, e := p.allocFD(w)
	if e != 0 {
		delete(p.fds, rfd)
		r.Close()
		w.Close()
		return rerr(e)
	}
	return ret2(uint32(rfd), uint32(wfd))
}
