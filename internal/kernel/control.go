package kernel

import (
	"errors"

	"repro/internal/types"
	"repro/internal/vcpu"
)

// Status flag bits (pr_flags of prstatus_t).
const (
	PRStopped = 1 << iota // an LWP is stopped
	PRIstop               // stopped on an event of interest, awaiting PIOCRUN
	PRDstop               // a stop directive is pending
	PRAsleep              // sleeping in an interruptible system call
	PRFork                // inherit-on-fork is set
	PRRlc                 // run-on-last-close is set
	PRPtrace              // process is traced via the obsolete ptrace(2)
	PRJobStop             // stopped by job control
)

// RunFlags qualify a run directive (prrun_t flags).
type RunFlags struct {
	ClearSig   bool   // PRCSIG: clear the current signal
	ClearFault bool   // PRCFAULT: clear the current fault
	Abort      bool   // PRSABORT: abort the system call (at entry or sleeping)
	Step       bool   // PRSTEP: single-step (FLTTRACE after one instruction)
	Stop       bool   // PRSTOP: direct it to stop again at the next event
	SetPC      bool   // PRSVADDR: resume at a new program counter
	PC         uint32 // the new program counter when SetPC is set
	SetSig     int    // if non-zero, make this the current signal (PIOCSSIG-style)
}

// RunLWP makes a stopped LWP runnable again (PIOCRUN). The LWP must be in a
// /proc stop (an event of interest or a requested stop); an error is
// returned otherwise. Note the paper's semantics for the competing
// mechanisms: clearing the /proc claim does not release a job-control stop
// (only SIGCONT does) or a ptrace stop (only the ptrace parent can).
func (k *Kernel) RunLWP(l *LWP, f RunFlags) error {
	if !l.Proc.Alive() {
		return ErrNoProcess
	}
	if !l.procClaim {
		return ErrNotStopped
	}
	if f.ClearSig {
		l.CurSig = 0
		l.sigStopTaken = false
		l.ptraceStopTaken = false
	}
	if f.SetSig != 0 {
		l.CurSig = f.SetSig
		l.Proc.noteIntr()
	}
	if f.ClearFault {
		l.clearFlt = true
	}
	if f.Abort {
		l.abortSys = true
		if l.sleeping {
			l.wake()
		}
	}
	if f.Step {
		// Set the trace bit directly: the LWP may resume in user mode
		// without passing through the return-to-user path first.
		l.CPU.Regs.PSW |= uint32(vcpu.FlagTrace)
	}
	if f.Stop {
		l.dstop = true
		l.Proc.noteIntr()
	}
	if f.SetPC {
		l.CPU.Regs.PC = f.PC
	}
	l.procClaim = false
	l.why, l.what = WhyNone, 0
	l.recompute()
	return nil
}

// ErrNotStopped is returned by RunLWP when the target is not in a /proc stop.
var ErrNotStopped = errNotStopped{}

type errNotStopped struct{}

func (errNotStopped) Error() string { return "kernel: process is not stopped on a /proc event" }

// DirectStopAll directs every live LWP of the process to stop (PIOCSTOP's
// first half; PIOCWSTOP additionally drives the system until it happens).
func (p *Proc) DirectStopAll() {
	for _, l := range p.LWPs {
		if l.state != LZombie {
			l.DirectStop()
		}
	}
}

// EventStoppedLWP returns an LWP stopped on an event of interest, or nil.
func (p *Proc) EventStoppedLWP() *LWP {
	for _, l := range p.LWPs {
		if l.StoppedOnEvent() {
			return l
		}
	}
	return nil
}

// ErrJobStopped reports that a wait-for-stop cannot complete because the
// target is stopped by job control: the pending /proc directive will take
// effect only when SIGCONT restarts it — "/proc gets the last word", but
// only once the process runs again.
var ErrJobStopped = errors.New("kernel: process is stopped by job control; the requested stop takes effect when SIGCONT restarts it")

// WaitStop drives the scheduler until some LWP of p stops on an event of
// interest, returning that LWP. It fails with ErrNoProcess if the process
// exits first, and with ErrJobStopped if the target is parked in a
// job-control stop that only SIGCONT can release.
func (k *Kernel) WaitStop(p *Proc, maxSteps int) (*LWP, error) {
	err := k.RunUntil(func() bool {
		return !p.Alive() || p.EventStoppedLWP() != nil
	}, maxSteps)
	if err != nil {
		if err == ErrDeadlock {
			for _, l := range p.LWPs {
				if l.jobClaim && l.dstop {
					return nil, ErrJobStopped
				}
			}
		}
		return nil, err
	}
	if !p.Alive() {
		return nil, ErrNoProcess
	}
	return p.EventStoppedLWP(), nil
}

// WaitLWPStop is WaitStop for one specific LWP (the hierarchical per-LWP
// control files use it).
func (k *Kernel) WaitLWPStop(l *LWP, maxSteps int) error {
	err := k.RunUntil(func() bool {
		return !l.Proc.Alive() || l.state == LZombie || l.StoppedOnEvent()
	}, maxSteps)
	if err != nil {
		return err
	}
	if !l.Proc.Alive() || l.state == LZombie {
		return ErrNoProcess
	}
	return nil
}

// ReleaseTracing clears every tracing flag of a process and sets any
// /proc-stopped LWP running — the run-on-last-close behavior shared by both
// /proc interfaces, and the explicit detach path.
func (k *Kernel) ReleaseTracing(p *Proc) {
	p.Trace.Sigs.Clear()
	p.Trace.Faults.Clear()
	p.Trace.Entry.Clear()
	p.Trace.Exit.Clear()
	p.Trace.InhFork = false
	p.Trace.RunLC = false
	for _, l := range p.LWPs {
		if l.StoppedOnEvent() {
			k.RunLWP(l, RunFlags{})
		}
	}
}

// SetCurSig makes sig the current signal of the LWP (PIOCSSIG). A zero sig
// clears the current signal.
func (l *LWP) SetCurSig(sig int) {
	l.CurSig = sig
	if sig != 0 {
		l.Proc.noteIntr()
	}
	if sig == 0 {
		l.sigStopTaken = false
		l.ptraceStopTaken = false
	}
}

// UnKill deletes a pending signal (PIOCUNKILL).
func (p *Proc) UnKill(sig int) { p.SigPend.Del(sig) }

// ProcStatus is the prstatus_t analogue: the execution context a controlling
// process requests at any time, designed to contain the information most
// frequently needed by a debugger.
type ProcStatus struct {
	Flags   int
	Why     StopWhy
	What    int
	CurSig  int
	Pid     int
	PPid    int
	Pgrp    int
	Sid     int
	LWPID   int
	NLWP    int
	SigPend types.SigSet
	SigHold types.SigSet
	Reg     vcpu.Regs
	Syscall int       // system call number when stopped in one
	SysArgs [6]uint32 // its arguments
	Instret uint64
	UTime   int64
	STime   int64
	BrkBase uint32
	BrkSize uint32
	StkBase uint32
	StkSize uint32
	VSize   int64
}

// LWPStatus snapshots one LWP.
func (l *LWP) LWPStatus() ProcStatus {
	p := l.Proc
	st := ProcStatus{
		Why:     l.why,
		What:    l.what,
		CurSig:  l.CurSig,
		Pid:     p.Pid,
		Pgrp:    p.Pgrp,
		Sid:     p.Sid,
		LWPID:   l.ID,
		NLWP:    len(p.LiveLWPs()),
		SigPend: p.SigPend,
		SigHold: l.SigHold,
		Reg:     l.CPU.Regs,
		Instret: l.CPU.Instret,
		UTime:   p.Usage.UserTicks,
		STime:   p.Usage.SysTicks,
		VSize:   p.VirtSize(),
	}
	if p.Parent != nil {
		st.PPid = p.Parent.Pid
	}
	if l.Stopped() {
		st.Flags |= PRStopped
	}
	if l.StoppedOnEvent() {
		st.Flags |= PRIstop
	}
	if l.dstop {
		st.Flags |= PRDstop
	}
	if l.sleeping {
		st.Flags |= PRAsleep
	}
	if l.jobClaim {
		st.Flags |= PRJobStop
	}
	if p.Trace.InhFork {
		st.Flags |= PRFork
	}
	if p.Trace.RunLC {
		st.Flags |= PRRlc
	}
	if p.Ptraced {
		st.Flags |= PRPtrace
	}
	if n := l.InSyscall(); n != 0 {
		st.Syscall = n
		if l.phase == phSysEntry {
			// At an entry stop the system has not yet fetched the
			// arguments; report them from the registers, which is where
			// they will be fetched from (and where a debugger changes
			// them).
			for i := 0; i < 5; i++ {
				st.SysArgs[i] = l.CPU.Regs.R[i+1]
			}
		} else {
			st.SysArgs = l.sysArgs
		}
	}
	if p.AS != nil {
		if b := p.AS.BrkSeg(); b != nil {
			st.BrkBase, st.BrkSize = b.Base, b.Len
		}
		if s := p.AS.StackSeg(); s != nil {
			st.StkBase, st.StkSize = s.Base, s.Len
		}
	}
	return st
}

// Status snapshots the representative LWP — what the flat (single-threaded)
// /proc interface reports.
func (p *Proc) Status() (ProcStatus, error) {
	if !p.Alive() {
		return ProcStatus{}, ErrNoProcess
	}
	l := p.Rep()
	if l == nil {
		return ProcStatus{}, ErrNoProcess
	}
	return l.LWPStatus(), nil
}

// PSInfo is the PIOCPSINFO analogue: everything ps(1) might want to display
// about a process, obtained in a single operation so each line of ps output
// is a true snapshot of the process.
type PSInfo struct {
	Pid   int
	PPid  int
	Pgrp  int
	Sid   int
	UID   int
	GID   int
	State byte // R, S, T, Z as in ps
	Nice  int
	VSize int64
	Time  int64 // user + system ticks
	Start int64
	Comm  string
	Args  string
	NLWP  int
}

// PSInfo snapshots the process for ps. It works on zombies too (state Z),
// unlike the status and control operations.
func (p *Proc) PSInfo() PSInfo {
	info := PSInfo{
		Pid:   p.Pid,
		Pgrp:  p.Pgrp,
		Sid:   p.Sid,
		UID:   p.Cred.RUID,
		GID:   p.Cred.RGID,
		Nice:  p.Nice,
		VSize: p.VirtSize(),
		Time:  p.Usage.UserTicks + p.Usage.SysTicks,
		Start: p.Start,
		Comm:  p.Comm,
		NLWP:  len(p.LiveLWPs()),
	}
	if p.Parent != nil {
		info.PPid = p.Parent.Pid
	}
	for i, a := range p.Args {
		if i > 0 {
			info.Args += " "
		}
		info.Args += a
	}
	switch {
	case p.State() == PZombie || p.State() == PGone:
		info.State = 'Z'
	case p.System:
		info.State = 'S'
	default:
		info.State = 'R'
		if l := p.Rep(); l != nil {
			switch {
			case l.Stopped():
				info.State = 'T'
			case l.sleeping:
				info.State = 'S'
			}
		}
	}
	return info
}

// Credentials returns the process credentials (PIOCCRED/PIOCGROUPS).
func (p *Proc) Credentials() types.Cred { return p.Cred.Clone() }

// SetNice adjusts the nice value (PIOCNICE).
func (p *Proc) SetNice(incr int) {
	p.Nice += incr
	if p.Nice < -20 {
		p.Nice = -20
	}
	if p.Nice > 19 {
		p.Nice = 19
	}
}

// SigActionOf returns the action for a signal (PIOCACTION).
func (p *Proc) SigActionOf(sig int) SigAction {
	if sig < 1 || sig > types.MaxSig {
		return SigAction{}
	}
	return p.Actions[sig]
}
