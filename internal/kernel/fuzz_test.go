package kernel_test

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/ktrace"
	"repro/internal/memfs"
	"repro/internal/types"
	"repro/internal/vfs"
	"repro/internal/xout"
)

// Random machine code must never break the kernel: whatever a process
// executes — illegal instructions, wild jumps, random system calls with
// garbage arguments — the worst outcome is its own death. The kernel's
// invariants hold and every process remains killable.
func TestRandomProgramsCannotBreakKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(1991)) // deterministic
	for trial := 0; trial < 40; trial++ {
		var k *kernel.Kernel
		fs := memfs.New(func() int64 {
			if k == nil {
				return 0
			}
			return k.Now()
		})
		ns := vfs.NewNS(fs.Root())
		k = kernel.New(ns, kernel.Config{})
		k.BootSystemProcs()
		fs.MkdirAll("/bin", 0o755)
		fs.MkdirAll("/tmp", 0o777)

		// A random text segment.
		text := make([]byte, 256)
		for i := 0; i < len(text); i += 4 {
			w := rng.Uint32()
			if rng.Intn(4) == 0 {
				// Bias toward plausible opcodes so some programs run a while.
				w = (w%0x2F)<<24 | rng.Uint32()&0x00FFFFFF
			}
			binary.BigEndian.PutUint32(text[i:], w)
		}
		img := &xout.File{Entry: xout.TextBase, Text: text, BSSSize: 4096}
		if err := fs.WriteFile("/bin/chaos", img.Marshal(), 0o755, 0, 0); err != nil {
			t.Fatal(err)
		}
		p, err := k.Spawn("/bin/chaos", nil, types.UserCred(100, 10), nil)
		if err != nil {
			t.Fatalf("trial %d: spawn: %v", trial, err)
		}
		// Run a while; the program may die of its own faults or loop.
		k.Run(2000)
		// Invariants: the process is alive, zombie, or reaped; the clock
		// advanced; nothing panicked to get here.
		switch p.State() {
		case kernel.PAlive, kernel.PZombie, kernel.PGone:
		default:
			t.Fatalf("trial %d: bad state %v", trial, p.State())
		}
		// Whatever it is doing, SIGKILL ends it.
		if p.Alive() {
			k.PostSignal(p, types.SIGKILL)
			if err := k.RunUntil(func() bool { return !p.Alive() }, 2_000_000); err != nil {
				t.Fatalf("trial %d: unkillable process: %v", trial, err)
			}
		}
	}
}

// Random register states under single-stepping: the /proc debugger machinery
// survives stepping through garbage.
func TestRandomStepping(t *testing.T) {
	f := boot(t)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		text := make([]byte, 64)
		for i := 0; i < len(text); i += 4 {
			binary.BigEndian.PutUint32(text[i:], (rng.Uint32()%0x2F)<<24|rng.Uint32()&0xFFFFFF)
		}
		img := &xout.File{Entry: xout.TextBase, Text: text, BSSSize: 4096}
		f.FS.WriteFile("/bin/step", img.Marshal(), 0o755, 0, 0)
		p, err := f.K.Spawn("/bin/step", nil, user(), nil)
		if err != nil {
			t.Fatal(err)
		}
		var flts types.FltSet
		flts.Fill()
		p.Trace.Faults = flts
		p.DirectStopAll()
		l, err := f.K.WaitStop(p, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20 && p.Alive(); i++ {
			if l = p.EventStoppedLWP(); l == nil {
				break
			}
			if err := f.K.RunLWP(l, kernel.RunFlags{Step: true, ClearFault: true, ClearSig: true}); err != nil {
				t.Fatal(err)
			}
			if _, err := f.K.WaitStop(p, 1_000_000); err != nil {
				break // it died or ran away; both fine
			}
		}
		if p.Alive() {
			if l := p.EventStoppedLWP(); l != nil {
				f.K.RunLWP(l, kernel.RunFlags{ClearFault: true, ClearSig: true})
			}
			p.Trace.Faults.Clear()
			f.K.PostSignal(p, types.SIGKILL)
			f.runToExit(p)
		}
	}
}

// snapshotSystem renders everything observable about a kernel after a fuzz
// run into one comparable string: clock, every process's state, exit status,
// LWP registers, address-space statistics, a digest of its memory image, and
// a digest of its event-trace stream.
func snapshotSystem(k *kernel.Kernel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "clock=%d\n", k.Now())
	for _, p := range k.Procs() {
		fmt.Fprintf(&b, "pid=%d comm=%q state=%v exit=%#x\n",
			p.Pid, p.Comm, p.State(), p.ExitStatus)
		for _, l := range p.LWPs {
			fmt.Fprintf(&b, "  lwp=%d state=%v regs=%v\n", l.ID, l.State(), l.CPU.Regs)
		}
		if p.AS != nil {
			fmt.Fprintf(&b, "  stats=%+v\n", p.AS.Stats)
			h := sha256.New()
			for _, s := range p.AS.SegsView() {
				buf := make([]byte, s.Len)
				p.AS.ReadAt(buf, int64(s.Base))
				fmt.Fprintf(h, "%x:%x:%v:", s.Base, s.Len, s.Prot)
				h.Write(buf)
			}
			fmt.Fprintf(&b, "  mem=%x\n", h.Sum(nil))
		}
		if p.KT != nil {
			fmt.Fprintf(&b, "  ktrace=%d events %x\n",
				p.KT.Len(), sha256.Sum256(ktrace.Encode(p.KT.Events())))
		}
	}
	if k.KT != nil {
		fmt.Fprintf(&b, "ktrace=%d events %x\n",
			k.KT.Len(), sha256.Sum256(ktrace.Encode(k.KT.Events())))
	}
	return b.String()
}

// TestDifferentialTLBvsNoTLB is the reference-interpreter oracle for the
// translation fast path: the same random program, run under the TLB-enabled
// pipeline and under the NoTLB reference interpreter, must produce identical
// final registers, memory images, fault statistics, process outcomes, and
// event-trace streams. Any divergence means the fast path changed observable
// semantics.
func TestDifferentialTLBvsNoTLB(t *testing.T) {
	rng := rand.New(rand.NewSource(7321)) // deterministic
	for trial := 0; trial < 25; trial++ {
		text := make([]byte, 512)
		for i := 0; i < len(text); i += 4 {
			w := rng.Uint32()
			if rng.Intn(3) != 0 {
				// Bias toward plausible opcodes so most programs execute
				// real instruction sequences rather than faulting at once.
				w = (w%0x2F)<<24 | rng.Uint32()&0x00FFFFFF
			}
			binary.BigEndian.PutUint32(text[i:], w)
		}

		runOne := func(noTLB bool) string {
			var k *kernel.Kernel
			fs := memfs.New(func() int64 {
				if k == nil {
					return 0
				}
				return k.Now()
			})
			ns := vfs.NewNS(fs.Root())
			k = kernel.New(ns, kernel.Config{NoTLB: noTLB})
			k.EnableKTraceAll(1 << 16)
			k.BootSystemProcs()
			fs.MkdirAll("/bin", 0o755)
			fs.MkdirAll("/tmp", 0o777)
			img := &xout.File{Entry: xout.TextBase, Text: text, BSSSize: 4096}
			if err := fs.WriteFile("/bin/chaos", img.Marshal(), 0o755, 0, 0); err != nil {
				t.Fatal(err)
			}
			p, err := k.Spawn("/bin/chaos", nil, types.UserCred(100, 10), nil)
			if err != nil {
				t.Fatalf("trial %d: spawn: %v", trial, err)
			}
			k.Run(1500)
			snap := snapshotSystem(k)
			// The program (and any children it managed to fork) must also
			// die identically.
			for _, q := range k.Procs() {
				if q.Alive() && !q.System {
					k.PostSignal(q, types.SIGKILL)
				}
			}
			if p.Alive() {
				if err := k.RunUntil(func() bool { return !p.Alive() }, 2_000_000); err != nil {
					t.Fatalf("trial %d: unkillable process: %v", trial, err)
				}
			}
			return snap + "---\n" + snapshotSystem(k)
		}

		fast := runOne(false)
		ref := runOne(true)
		if fast != ref {
			t.Fatalf("trial %d: TLB and NoTLB runs diverge:\n--- with TLB ---\n%s\n--- NoTLB reference ---\n%s",
				trial, fast, ref)
		}
	}
}
