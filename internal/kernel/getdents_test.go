package kernel_test

import (
	"testing"

	"repro/internal/kernel"
)

// A user program lists a directory with getdents(2).
func TestGetdents(t *testing.T) {
	f := boot(t)
	f.FS.WriteFile("/tmp/a", nil, 0o644, 0, 0)
	f.FS.WriteFile("/tmp/b", nil, 0o644, 0, 0)
	f.FS.MkdirAll("/tmp/sub", 0o755)
	p := f.spawn("lister", `
	movi r0, SYS_open
	la r1, dir
	movi r2, 1
	syscall
	mov r6, r0
	movi r7, 0		; entry count
more:	movi r0, SYS_getdents
	mov r1, r6
	la r2, buf
	movi r3, 256
	syscall
	cmpi r0, 0
	je done
	; r0 bytes = r0/64 entries
	movi r2, 64
	div r0, r2
	add r7, r0
	jmp more
done:	mov r1, r7
	movi r0, SYS_exit
	syscall
.data
dir:	.asciz "/tmp"
buf:	.space 256
`, user())
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != 3 {
		t.Fatalf("entries = %d, want 3", code)
	}
}

// getdents on a non-directory fails.
func TestGetdentsOnFile(t *testing.T) {
	f := boot(t)
	f.FS.WriteFile("/tmp/plain", []byte("x"), 0o644, 0, 0)
	p := f.spawn("badlist", `
	movi r0, SYS_open
	la r1, path
	movi r2, 1
	syscall
	mov r6, r0
	movi r0, SYS_getdents
	mov r1, r6
	la r2, buf
	movi r3, 128
	syscall
	mov r1, r0		; ENOTDIR
	movi r0, SYS_exit
	syscall
.data
path:	.asciz "/tmp/plain"
buf:	.space 128
`, user())
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != int(kernel.ENOTDIR) {
		t.Fatalf("code = %d, want ENOTDIR", code)
	}
}
