package kernel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/mem"
)

// SMP scheduling (Config.NCPU > 1).
//
// The schedulable unit is the whole process: the LWPs of one process never
// run on two CPUs at once, which preserves the kernel's invariant that a
// process's own state is only ever mutated from "its" CPU or under the
// appropriate lock. Each process has a home run queue (by pid, so placement
// is stable) and queue membership is maintained incrementally: a process is
// enqueued when it gains its first runnable LWP (noteSchedulable, from
// wakeup and fork) and lazily dequeued when a claimer finds it dead or with
// nothing runnable. A scheduling pass resets each queue's claim cursor and
// fans out to persistent per-CPU worker goroutines parked on a channel; a
// worker drains its own queue first and then steals from the others. The
// per-pass claim stamp (Proc.lastPass) keeps a process that blocks and is
// re-woken within one pass from being claimed twice — the second claim
// would race the first CPU's still-running quantum.
//
// Locking: see the hierarchy comment on Kernel.global in kernel.go.
// Workers take the narrow global lock only for global-class kernel phases
// (fork/exit, sleeps, cross-process work — runLWPOn), the per-process lock
// alone for process-local system calls, the sleep-queue lock to collect a
// claimed process's runnable LWPs, and each run queue's own lock to claim.
// kcpu.curAS publishes which address space the worker may be touching
// lock-free (user-mode stepping); the TLB shootdown barrier spins on it.

// runQueue is one CPU's run queue. Membership (procs, the inQueue flags of
// its members, their lastPass stamps) and the claim cursor are guarded by
// mu; avail mirrors the number of unclaimed entries so thieves can probe a
// victim without taking its lock (near-empty queues otherwise serialize
// every thief on the lock for nothing — the fork_storm p99 stampede).
type runQueue struct {
	procs []*Proc
	next  int
	avail atomic.Int32
	qmu
}

// qmu wraps the queue lock so lockdebug builds see rank-ordered
// acquisition without every call site repeating the bookkeeping.
type qmu struct{ mu sync.Mutex }

func (q *qmu) lock() {
	lockOrderAcquire(rankQueue)
	q.mu.Lock()
}

func (q *qmu) unlock() {
	q.mu.Unlock()
	lockOrderRelease(rankQueue)
}

// kcpu is one scheduler CPU. Fields other than curAS are only touched by
// the worker goroutine that owns the kcpu during a pass (or by the
// single-threaded driver between passes).
type kcpu struct {
	id int
	k  *Kernel

	// curAS publishes the address space this CPU may currently be
	// translating for without holding any lock (user-mode stepping).
	// nil whenever the CPU is idle or inside the kernel. The shootdown
	// barrier spins until no CPU publishes the dying space.
	curAS atomic.Pointer[mem.AS]
	as    *mem.AS // the running LWP's space (restored into curAS on unlock)
	p     *Proc   // the process of the current quantum (enter..leave)

	// haveGlobal/haveProc track which locks this worker holds, making the
	// acquisitions idempotent: runLWPOn acquires lazily at the first
	// kernel-phase need and unlock releases everything on return to user
	// level. Escalating from the proc lock to the global lock drops the
	// proc lock first (rank order) and retakes it after.
	haveGlobal bool
	haveProc   bool

	// Per-quantum counter deltas, flushed under the process lock by flush().
	ticks     int64
	userTicks int64
	sysTicks  int64
	syscalls  int64
	faults    int64
	involCtx  int64

	ran     bool   // did anything run on this CPU this pass
	scratch []*LWP // claimed-LWP buffer, reused across quanta
}

// smpState hangs off the Kernel when Config.NCPU > 1.
type smpState struct {
	cpus   []*kcpu
	queues []runQueue

	// Persistent workers: one token on work per CPU per pass, one result
	// on done per token. Lazily started at the first pass; Shutdown closes
	// work and the workers drain out.
	work    chan struct{}
	done    chan bool
	started bool
	// shutMu serializes Shutdown against concurrent callers; down marks
	// the kernel dead, so a Shutdown that lands before the lazy worker
	// start still prevents it.
	shutMu sync.Mutex
	down   bool
	pass   uint64 // pass ordinal; also keys the steal-victim rotation
}

func newSMP(k *Kernel, n int) *smpState {
	s := &smpState{
		cpus:   make([]*kcpu, n),
		queues: make([]runQueue, n),
		work:   make(chan struct{}, n),
		done:   make(chan bool, n),
	}
	for i := range s.cpus {
		s.cpus[i] = &kcpu{id: i, k: k}
	}
	return s
}

// NCPU returns the number of scheduler CPUs (1 in deterministic mode).
func (k *Kernel) NCPU() int {
	if k.smp == nil {
		return 1
	}
	return len(k.smp.cpus)
}

// noteSchedulable hands p to its home run queue if it is not already a
// member. Called when a process gains its first runnable LWP (wakeup,
// continue) and at fork; no-op in deterministic mode and for system
// processes. Callers hold the global lock, except addProc's host-side
// boot path where no pass can be running.
func (k *Kernel) noteSchedulable(p *Proc) {
	s := k.smp
	if s == nil || p.System {
		return
	}
	q := &s.queues[uint(p.Pid)%uint(len(s.queues))]
	q.lock()
	if !p.inQueue {
		p.inQueue = true
		q.procs = append(q.procs, p)
		q.avail.Add(1)
	}
	q.unlock()
}

// claim pops the next claimable process, lazily dequeuing entries that are
// dead or have nothing runnable, and skipping (but consuming) entries
// already claimed this pass — a process that blocked and was re-woken
// mid-pass must not run on a second CPU while the first may still be in
// its quantum loop; it stays a member and runs next pass.
func (q *runQueue) claim(pass uint64) *Proc {
	q.lock()
	for q.next < len(q.procs) {
		p := q.procs[q.next]
		if !p.Alive() || p.nrun.Load() == 0 {
			last := len(q.procs) - 1
			q.procs[q.next] = q.procs[last]
			q.procs[last] = nil
			q.procs = q.procs[:last]
			p.inQueue = false
			q.avail.Add(-1)
			continue
		}
		q.next++
		q.avail.Add(-1)
		if p.lastPass == pass {
			continue
		}
		p.lastPass = pass
		q.unlock()
		return p
	}
	q.unlock()
	return nil
}

// lockProc acquires the current process's lock (rank 2) for this worker if
// not already held. The published address space is cleared first: a CPU
// that blocks on any lock must never be spun on by a shootdown initiator,
// or the two would deadlock.
func (w *kcpu) lockProc() {
	if w.haveProc {
		return
	}
	w.curAS.Store(nil)
	w.p.Lock()
	w.haveProc = true
}

// lockGlobal acquires the global kernel lock (rank 1). Own-process state
// may be accessed under either the global lock or the per-process lock
// (cross-process accessors hold both, so every conflicting pair shares a
// lock); global-class phases therefore do not take the proc lock at all.
// A worker holding only the proc lock escalates by dropping it first —
// rank order forbids proc→global.
func (w *kcpu) lockGlobal() {
	if w.haveGlobal {
		return
	}
	if w.haveProc {
		w.p.Unlock()
		w.haveProc = false
	}
	w.curAS.Store(nil)
	w.k.GlobalLock()
	w.haveGlobal = true
}

// lock is lockGlobal under its historical big-kernel-lock name; the
// shootdown-barrier tests exercise the withdraw/block contract through it.
func (w *kcpu) lock() { w.lockGlobal() }

// unlock drops whatever locks the worker holds (proc before global, the
// reverse of acquisition) and republishes the running space for the
// user-mode stepping that follows.
func (w *kcpu) unlock() {
	if w.haveProc {
		w.p.Unlock()
		w.haveProc = false
	}
	if w.haveGlobal {
		w.k.GlobalUnlock()
		w.haveGlobal = false
	}
	if w.as != nil {
		w.curAS.Store(w.as)
	}
}

// enter marks the start of a quantum for l on this CPU.
func (w *kcpu) enter(l *LWP) {
	w.p = l.Proc
	w.as = l.CPU.AS
	if w.as != nil {
		w.curAS.Store(w.as)
	}
}

// leave marks the end of a quantum: flush counter deltas — under the
// per-process lock alone when no lock is held, so a quantum spent purely
// in user mode or process-local calls never touches the global lock for
// accounting — then release everything and withdraw the published space.
func (w *kcpu) leave(p *Proc) {
	if w.ticks != 0 || w.syscalls != 0 || w.faults != 0 || w.involCtx != 0 {
		if !w.haveGlobal && !w.haveProc {
			w.lockProc()
		}
		w.flush(p)
	}
	w.unlock()
	w.p = nil
	w.as = nil
	w.curAS.Store(nil)
}

// flush folds the per-quantum deltas into the shared clock and the
// process's usage. The caller holds the global lock or p's lock (either
// suffices for own-process state); the clock itself is atomic and needs
// neither.
func (w *kcpu) flush(p *Proc) {
	w.k.clockA.Add(w.ticks)
	p.Usage.UserTicks += w.userTicks
	p.Usage.SysTicks += w.sysTicks
	p.Usage.Syscalls += w.syscalls
	p.Usage.Faults += w.faults
	p.Usage.InvolCtx += w.involCtx
	w.ticks, w.userTicks, w.sysTicks = 0, 0, 0
	w.syscalls, w.faults, w.involCtx = 0, 0, 0
}

// shootdown is the cross-CPU TLB invalidation barrier. The caller has
// already bumped the address space's generation (every Map/Unmap/Mprotect/
// Brk does), which stops new translations; this waits until no other CPU
// is still inside a user instruction on the space, closing the window in
// which an in-flight access could use a stale frame. The initiator runs
// under the global lock (or, for address-space-only calls, the per-process
// lock) with its own curAS withdrawn, and blocked CPUs clear theirs before
// sleeping on any lock, so the spin always terminates. Deterministic mode
// and host-side callers (no pass running) fall through immediately.
func (k *Kernel) shootdown(as *mem.AS) {
	if k.smp == nil || as == nil {
		return
	}
	for _, w := range k.smp.cpus {
		for w.curAS.Load() == as {
			runtime.Gosched()
		}
	}
}

// stepSMP is Step for NCPU > 1: one scheduling pass fanned out to the
// persistent worker goroutines.
func (k *Kernel) stepSMP() bool {
	s := k.smp
	s.shutMu.Lock()
	if s.down {
		s.shutMu.Unlock()
		panic("kernel: Step after Shutdown")
	}
	start := !s.started
	s.started = true
	s.shutMu.Unlock()
	if start {
		for _, w := range s.cpus {
			go k.smpWorker(w)
		}
	}

	// The pass prologue runs on the single driver goroutine under the
	// global lock (timer-fired wakeups mutate scheduling state).
	k.GlobalLock()
	k.tickClock()
	k.checkTimers()
	k.GlobalUnlock()

	// Arm the queues for the new pass: reset the claim cursors over the
	// incrementally-maintained membership. No rebuild, no allocation.
	s.pass++
	idle := true
	for i := range s.queues {
		q := &s.queues[i]
		q.lock()
		q.next = 0
		q.avail.Store(int32(len(q.procs)))
		if len(q.procs) > 0 {
			idle = false
		}
		q.unlock()
	}
	if idle {
		// Nothing is a member of any queue: fully blocked/stopped/exited.
		// Skip the fan-out; the prologue already advanced time.
		return false
	}

	for range s.cpus {
		s.work <- struct{}{}
	}
	ran := false
	for range s.cpus {
		if <-s.done {
			ran = true
		}
	}
	return ran
}

// smpWorker is the persistent per-CPU scheduler loop: park on the work
// channel, run one pass, report whether anything executed. Exits when
// Shutdown closes the channel.
func (k *Kernel) smpWorker(w *kcpu) {
	for range k.smp.work {
		w.ran = false
		k.runPass(w)
		k.smp.done <- w.ran
	}
}

// runPass drains this CPU's own queue, then steals. Victims are visited in
// a rotation keyed off the pass ordinal (a pure function, so no host
// nondeterminism), which spreads thieves across victims instead of
// stampeding them all onto the same near-empty queue; the avail probe lets
// a thief skip an empty victim without touching its lock.
func (k *Kernel) runPass(w *kcpu) {
	s := k.smp
	n := len(s.queues)
	k.drainQueue(w, &s.queues[w.id])
	if n == 1 {
		return
	}
	start := (w.id + int(s.pass)) % n
	for i := 0; i < n; i++ {
		qi := (start + i) % n
		if qi == w.id {
			continue
		}
		q := &s.queues[qi]
		if q.avail.Load() <= 0 {
			continue
		}
		k.drainQueue(w, q)
	}
}

func (k *Kernel) drainQueue(w *kcpu, q *runQueue) {
	for {
		p := q.claim(k.smp.pass)
		if p == nil {
			return
		}
		k.runProc(w, p)
	}
}

// runProc gives every runnable LWP of p one quantum on this CPU. The
// runnable set is collected under the sleep-queue lock (which guards LWP
// list membership) from the atomic state mirror — no global lock; the
// quanta themselves run with the usual lazy locking in runLWPOn.
func (k *Kernel) runProc(w *kcpu, p *Proc) {
	k.sleepMu.Lock()
	lockOrderAcquire(rankSleep)
	w.scratch = w.scratch[:0]
	for _, l := range p.LWPs {
		if LState(l.stateA.Load()) == LRun {
			w.scratch = append(w.scratch, l)
		}
	}
	lockOrderRelease(rankSleep)
	k.sleepMu.Unlock()
	for _, l := range w.scratch {
		if k.runLWPOn(w, l, k.Quantum) {
			w.ran = true
		}
		if !p.Alive() {
			return
		}
	}
}
