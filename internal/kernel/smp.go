package kernel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/mem"
)

// SMP scheduling (Config.NCPU > 1).
//
// The schedulable unit is the whole process: the LWPs of one process never
// run on two CPUs at once, which preserves the kernel's invariant that a
// process's own state is only ever mutated from "its" CPU or under the big
// kernel lock. Each scheduling pass partitions the alive user processes
// into per-CPU run queues (by pid, so placement is stable across passes),
// spawns one worker goroutine per CPU, and joins them. A worker drains its
// own queue first and then steals from the other queues; the atomic cursor
// in each queue makes popping race-free, so a process is claimed by exactly
// one worker per pass.
//
// Workers are spawned per pass rather than parked persistently: the pass
// join is the only synchronization the control plane needs (everything
// between Step calls is single-threaded, exactly like deterministic mode),
// and goroutine-leak checks in tests stay trivially clean.
//
// Synchronization summary:
//
//   - k.big, the big kernel lock, serializes all kernel phases that touch
//     cross-process state (signals, stops, sleeps, most system calls,
//     trace rings, fork/exit). See runLWPOn.
//   - Process-table membership is sharded (k.pids) with a separate order
//     list lock (k.orderMu) so host-side readers never block the passes.
//   - The per-quantum clock/usage counters accumulate in the kcpu and
//     flush under k.big once per quantum.
//   - kcpu.curAS publishes which address space the worker may be touching
//     lock-free (user-mode stepping); the TLB shootdown barrier below
//     spins on it.

// runQueue is one CPU's share of a scheduling pass. pos is the claim
// cursor: pop = pos.Add(1)-1, so owners and thieves use the same code.
type runQueue struct {
	pos   atomic.Int32
	procs []*Proc
}

// kcpu is one scheduler CPU. Fields other than curAS are only touched by
// the worker goroutine that owns the kcpu during a pass (or by the
// single-threaded driver between passes).
type kcpu struct {
	id int
	k  *Kernel

	// curAS publishes the address space this CPU may currently be
	// translating for without holding the big lock (user-mode stepping).
	// nil whenever the CPU is idle or inside the kernel. The shootdown
	// barrier spins until no CPU publishes the dying space.
	curAS atomic.Pointer[mem.AS]
	as    *mem.AS // the running LWP's space (restored into curAS on unlock)

	// locked tracks whether this worker holds k.big, making lock/unlock
	// idempotent: runLWPOn acquires lazily at the first kernel-phase need
	// and releases on return to user level.
	locked bool

	// Per-quantum counter deltas, flushed under the big lock by flush().
	ticks     int64
	userTicks int64
	sysTicks  int64
	syscalls  int64
	faults    int64
	involCtx  int64

	ran     bool   // did anything run on this CPU this pass
	scratch []*LWP // claimed-LWP buffer, reused across quanta
}

// smpState hangs off the Kernel when Config.NCPU > 1.
type smpState struct {
	cpus   []*kcpu
	queues []runQueue
}

func newSMP(k *Kernel, n int) *smpState {
	s := &smpState{
		cpus:   make([]*kcpu, n),
		queues: make([]runQueue, n),
	}
	for i := range s.cpus {
		s.cpus[i] = &kcpu{id: i, k: k}
	}
	return s
}

// NCPU returns the number of scheduler CPUs (1 in deterministic mode).
func (k *Kernel) NCPU() int {
	if k.smp == nil {
		return 1
	}
	return len(k.smp.cpus)
}

// lock acquires the big kernel lock for this worker if it does not already
// hold it. The worker's published address space is cleared first: a CPU
// that blocks on the lock must never be spun on by a shootdown initiator
// that holds the lock, or the two would deadlock.
func (w *kcpu) lock() {
	if w.locked {
		return
	}
	w.curAS.Store(nil)
	w.k.big.Lock()
	w.locked = true
}

// unlock drops the big lock if held and republishes the running space for
// the user-mode stepping that follows.
func (w *kcpu) unlock() {
	if !w.locked {
		return
	}
	w.k.big.Unlock()
	w.locked = false
	if w.as != nil {
		w.curAS.Store(w.as)
	}
}

// enter marks the start of a quantum for l on this CPU.
func (w *kcpu) enter(l *LWP) {
	w.as = l.CPU.AS
	if w.as != nil {
		w.curAS.Store(w.as)
	}
}

// leave marks the end of a quantum: flush counter deltas under the big
// lock if any accumulated, release the lock, and withdraw the published
// address space.
func (w *kcpu) leave(p *Proc) {
	if w.ticks != 0 || w.syscalls != 0 || w.faults != 0 || w.involCtx != 0 {
		w.lock()
		w.flush(p)
	}
	w.unlock()
	w.as = nil
	w.curAS.Store(nil)
}

// flush folds the per-quantum deltas into the shared clock and the
// process's usage. Caller holds the big lock.
func (w *kcpu) flush(p *Proc) {
	w.k.clock += w.ticks
	p.Usage.UserTicks += w.userTicks
	p.Usage.SysTicks += w.sysTicks
	p.Usage.Syscalls += w.syscalls
	p.Usage.Faults += w.faults
	p.Usage.InvolCtx += w.involCtx
	w.ticks, w.userTicks, w.sysTicks = 0, 0, 0
	w.syscalls, w.faults, w.involCtx = 0, 0, 0
}

// shootdown is the cross-CPU TLB invalidation barrier. The caller has
// already bumped the address space's generation (every Map/Unmap/Mprotect/
// Brk does), which stops new translations; this waits until no other CPU
// is still inside a user instruction on the space, closing the window in
// which an in-flight access could use a stale frame. The initiator runs
// under the big lock with its own curAS withdrawn, and blocked CPUs clear
// theirs before sleeping on the lock, so the spin always terminates.
// Deterministic mode and host-side callers (no pass running) fall through
// immediately.
func (k *Kernel) shootdown(as *mem.AS) {
	if k.smp == nil || as == nil {
		return
	}
	for _, w := range k.smp.cpus {
		for w.curAS.Load() == as {
			runtime.Gosched()
		}
	}
}

// stepSMP is Step for NCPU > 1: one scheduling pass fanned out to the
// worker goroutines.
func (k *Kernel) stepSMP() bool {
	// The pass prologue is single-threaded: no workers are running, so the
	// clock tick and timer sweep need no locks and stay in pass order.
	k.clock++
	k.checkTimers()

	// Rebuild the run queues. Placement by pid keeps a process on the same
	// queue across passes (cache- and reasoning-friendly); work-stealing
	// rebalances when the partition is uneven.
	s := k.smp
	n := len(s.cpus)
	for i := range s.queues {
		s.queues[i].procs = s.queues[i].procs[:0]
		s.queues[i].pos.Store(0)
	}
	k.orderMu.RLock()
	for _, p := range k.order {
		if !p.Alive() || p.System {
			continue
		}
		q := &s.queues[uint(p.Pid)%uint(n)]
		q.procs = append(q.procs, p)
	}
	k.orderMu.RUnlock()

	var wg sync.WaitGroup
	for _, w := range s.cpus {
		w.ran = false
		wg.Add(1)
		go func(w *kcpu) {
			defer wg.Done()
			k.runPass(w)
		}(w)
	}
	wg.Wait()

	ran := false
	for _, w := range s.cpus {
		if w.ran {
			ran = true
		}
	}
	return ran
}

// runPass drains this CPU's queue, then steals from the others.
func (k *Kernel) runPass(w *kcpu) {
	s := k.smp
	n := len(s.queues)
	for i := 0; i < n; i++ {
		q := &s.queues[(w.id+i)%n]
		for {
			idx := int(q.pos.Add(1)) - 1
			if idx >= len(q.procs) {
				break
			}
			k.runProc(w, q.procs[idx])
		}
	}
}

// runProc gives every runnable LWP of p one quantum on this CPU. The
// runnable set is collected under the big lock (other CPUs wake sleepers
// and post signals under it); the quanta themselves run with the usual
// lazy locking in runLWPOn.
func (k *Kernel) runProc(w *kcpu, p *Proc) {
	k.big.Lock()
	if !p.Alive() {
		k.big.Unlock()
		return
	}
	w.scratch = w.scratch[:0]
	for _, l := range p.LWPs {
		if l.Runnable() {
			w.scratch = append(w.scratch, l)
		}
	}
	k.big.Unlock()
	for _, l := range w.scratch {
		if k.runLWPOn(w, l, k.Quantum) {
			w.ran = true
		}
		if !p.Alive() {
			return
		}
	}
}
