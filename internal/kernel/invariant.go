package kernel

import (
	"fmt"

	"repro/internal/mem"
)

// CheckInvariants verifies the kernel's structural invariants: process-table
// and pid-map consistency, parent/child bidirectionality, descriptor-table
// and address-space accounting, /proc writer counts, TLB generation
// consistency for every LWP, and the sanity of every ktrace ring. The
// fault-storm harness calls it after every injected fault — an error path
// anywhere in the kernel must leave all of this exactly as it found it.
// It returns the first violation found, or nil.
func (k *Kernel) CheckInvariants() error {
	if n := k.pidCount(); n != len(k.order) {
		return fmt.Errorf("kernel: pid map has %d entries, order list %d", n, len(k.order))
	}
	seen := make(map[int]bool, len(k.order))
	checkedAS := make(map[*mem.AS]bool)
	for _, p := range k.order {
		if q := k.Proc(p.Pid); q != p {
			return fmt.Errorf("kernel: pid %d maps to a different process record", p.Pid)
		}
		if seen[p.Pid] {
			return fmt.Errorf("kernel: pid %d appears twice in the order list", p.Pid)
		}
		seen[p.Pid] = true
		if err := k.checkProc(p, checkedAS); err != nil {
			return err
		}
	}
	if k.initProc != nil && k.Proc(1) != k.initProc {
		return fmt.Errorf("kernel: init process is not pid 1 in the table")
	}
	if k.KT != nil {
		if err := k.KT.CheckSane(); err != nil {
			return fmt.Errorf("kernel trace ring: %w", err)
		}
	}
	return nil
}

func (k *Kernel) checkProc(p *Proc, checkedAS map[*mem.AS]bool) error {
	switch p.State() {
	case PAlive, PZombie:
	case PGone:
		return fmt.Errorf("kernel: pid %d is reaped but still in the process table", p.Pid)
	default:
		return fmt.Errorf("kernel: pid %d in unknown state %d", p.Pid, p.State())
	}
	// Pid 0 is the conventional sched/swapper system process; every other
	// slot must carry a positive pid.
	if p.Pid < 0 || (p.Pid == 0 && !p.System) {
		return fmt.Errorf("kernel: process with non-positive pid %d", p.Pid)
	}
	// Parent/child links must be bidirectional.
	if p.Parent != nil {
		found := false
		for _, kid := range p.Parent.Kids {
			if kid == p {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("kernel: pid %d has parent %d but is not among its children",
				p.Pid, p.Parent.Pid)
		}
	}
	for _, kid := range p.Kids {
		if kid.Parent != p {
			return fmt.Errorf("kernel: pid %d lists child %d whose parent is not it",
				p.Pid, kid.Pid)
		}
		if kid.State() == PGone {
			return fmt.Errorf("kernel: pid %d lists reaped child %d", p.Pid, kid.Pid)
		}
	}
	// Descriptor table: zombies hold nothing; live tables stay in bounds.
	if p.State() == PZombie {
		if len(p.fds) != 0 {
			return fmt.Errorf("kernel: zombie pid %d holds %d open descriptors", p.Pid, len(p.fds))
		}
		if p.AS != nil {
			return fmt.Errorf("kernel: zombie pid %d still holds an address space", p.Pid)
		}
		for _, l := range p.LWPs {
			if l.state != LZombie {
				return fmt.Errorf("kernel: zombie pid %d has a live LWP", p.Pid)
			}
		}
	} else {
		if p.fds == nil {
			return fmt.Errorf("kernel: live pid %d has no descriptor table", p.Pid)
		}
		for fd, f := range p.fds {
			if fd < 0 || fd >= OpenFDLimit {
				return fmt.Errorf("kernel: pid %d descriptor %d out of range", p.Pid, fd)
			}
			if f == nil {
				return fmt.Errorf("kernel: pid %d descriptor %d is nil", p.Pid, fd)
			}
		}
		if !p.System && len(p.LWPs) > 0 && p.AS == nil {
			return fmt.Errorf("kernel: live pid %d has LWPs but no address space", p.Pid)
		}
		if p.borrowsAS && (p.Parent == nil || p.AS == nil || p.AS != p.Parent.AS) {
			return fmt.Errorf("kernel: pid %d claims a borrowed address space it does not share", p.Pid)
		}
	}
	if p.Trace.Writers < 0 {
		return fmt.Errorf("kernel: pid %d has %d /proc writers", p.Pid, p.Trace.Writers)
	}
	if p.Trace.Excl && p.Trace.Writers < 1 {
		return fmt.Errorf("kernel: pid %d holds exclusive /proc access with no writers", p.Pid)
	}
	if p.AS != nil && !checkedAS[p.AS] {
		// vfork sharers alias one space; check it once.
		checkedAS[p.AS] = true
		if err := p.AS.CheckInvariants(); err != nil {
			return fmt.Errorf("pid %d: %w", p.Pid, err)
		}
	}
	for _, l := range p.LWPs {
		if p.Alive() && l.state != LZombie && l.CPU.AS != p.AS {
			return fmt.Errorf("kernel: pid %d LWP runs on a different address space", p.Pid)
		}
		if err := l.CPU.CheckTLB(); err != nil {
			return fmt.Errorf("pid %d: %w", p.Pid, err)
		}
	}
	if p.KT != nil {
		if err := p.KT.CheckSane(); err != nil {
			return fmt.Errorf("pid %d trace ring: %w", p.Pid, err)
		}
	}
	return nil
}
