package kernel_test

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/types"
	"repro/internal/vcpu"
)

// waitStop drives until an event-of-interest stop.
func (f *fixture) waitStop(p *kernel.Proc) *kernel.LWP {
	f.t.Helper()
	l, err := f.K.WaitStop(p, 2_000_000)
	if err != nil {
		f.t.Fatalf("WaitStop: %v", err)
	}
	return l
}

func (f *fixture) run(l *kernel.LWP, flags kernel.RunFlags) {
	f.t.Helper()
	if err := f.K.RunLWP(l, flags); err != nil {
		f.t.Fatalf("RunLWP: %v", err)
	}
}

// --- Figure 3: points in the kernel at which a process may stop ---

func TestFigure3StopOnSyscallEntry(t *testing.T) {
	f := boot(t)
	p := f.spawn("f3entry", exit42, user())
	p.Trace.Entry.Add(kernel.SysExit)
	l := f.waitStop(p)
	why, what := l.Why()
	if why != kernel.WhySysEntry || what != kernel.SysExit {
		t.Fatalf("why=%v what=%d", why, what)
	}
	// The stop occurs before the system has fetched the arguments: the
	// debugger can change them now.
	l.CPU.Regs.R[1] = 99
	f.run(l, kernel.RunFlags{})
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != 99 {
		t.Fatalf("exit code = %d, want the debugger's 99", code)
	}
}

func TestFigure3StopOnSyscallExit(t *testing.T) {
	f := boot(t)
	p := f.spawn("f3exit", `
	movi r0, SYS_getpid
	syscall
	mov r1, r0		; pid (possibly forged by the debugger)
	movi r0, SYS_exit
	syscall
`, user())
	p.Trace.Exit.Add(kernel.SysGetpid)
	l := f.waitStop(p)
	why, what := l.Why()
	if why != kernel.WhySysExit || what != kernel.SysGetpid {
		t.Fatalf("why=%v what=%d", why, what)
	}
	// Return values are already stored: manufacture a different one.
	if l.CPU.Regs.R[0] != uint32(p.Pid) {
		t.Fatalf("r0 = %d, want real pid %d", l.CPU.Regs.R[0], p.Pid)
	}
	l.CPU.Regs.R[0] = 123
	f.run(l, kernel.RunFlags{})
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != 123 {
		t.Fatalf("exit code = %d, want forged 123", code)
	}
}

func TestFigure3StopOnFault(t *testing.T) {
	f := boot(t)
	p := f.spawn("f3fault", `
	bpt
	movi r0, SYS_exit
	movi r1, 5
	syscall
`, user())
	p.Trace.Faults.Add(types.FLTBPT)
	l := f.waitStop(p)
	why, what := l.Why()
	if why != kernel.WhyFaulted || what != types.FLTBPT {
		t.Fatalf("why=%v what=%d", why, what)
	}
	// PC is at the breakpoint itself.
	st, _ := p.Status()
	if st.Reg.PC != 0x80000000 {
		t.Fatalf("pc = %#x", st.Reg.PC)
	}
	// Clearing the fault and stepping over: replace with NOP and run.
	var nop [4]byte
	w := vcpu.Encode(vcpu.OpNOP, 0, 0, 0)
	nop[0], nop[1], nop[2], nop[3] = byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
	p.AS.WriteAt(nop[:], int64(st.Reg.PC))
	f.run(l, kernel.RunFlags{ClearFault: true})
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != 5 {
		t.Fatalf("exit code = %d", code)
	}
}

func TestFigure3StopOnSignalReceipt(t *testing.T) {
	f := boot(t)
	p := f.spawn("f3sig", spinForever, user())
	p.Trace.Sigs.Add(types.SIGUSR2)
	f.K.Run(3)
	f.K.PostSignal(p, types.SIGUSR2)
	l := f.waitStop(p)
	why, what := l.Why()
	if why != kernel.WhySignalled || what != types.SIGUSR2 {
		t.Fatalf("why=%v what=%d", why, what)
	}
	if l.CurSig != types.SIGUSR2 {
		t.Fatal("current signal should be set at a signalled stop")
	}
	// Clear the signal and run: the default action (termination) must NOT
	// be taken — breakpoint debugging relieved of signal ambiguity.
	f.run(l, kernel.RunFlags{ClearSig: true})
	f.K.Run(20)
	if !p.Alive() {
		t.Fatal("cleared signal still killed the process")
	}
	f.K.PostSignal(p, types.SIGKILL)
	f.runToExit(p)
}

func TestRequestedStop(t *testing.T) {
	f := boot(t)
	p := f.spawn("reqstop", spinForever, user())
	f.K.Run(3)
	p.DirectStopAll()
	l := f.waitStop(p)
	if why, _ := l.Why(); why != kernel.WhyRequested {
		t.Fatalf("why = %v", why)
	}
	f.run(l, kernel.RunFlags{})
	f.K.Run(5)
	if p.Rep().Stopped() {
		t.Fatal("did not resume")
	}
	f.K.PostSignal(p, types.SIGKILL)
	f.runToExit(p)
}

func TestPRSTEPSingleStep(t *testing.T) {
	f := boot(t)
	p := f.spawn("stepper", `
	movi r1, 1
	movi r2, 2
	movi r3, 3
	movi r0, SYS_exit
	movi r1, 0
	syscall
`, user())
	p.Trace.Faults.Add(types.FLTTRACE)
	p.DirectStopAll()
	l := f.waitStop(p)
	pc0 := l.CPU.Regs.PC
	f.run(l, kernel.RunFlags{Step: true})
	l = f.waitStop(p)
	why, what := l.Why()
	if why != kernel.WhyFaulted || what != types.FLTTRACE {
		t.Fatalf("why=%v what=%d", why, what)
	}
	if l.CPU.Regs.PC != pc0+4 {
		t.Fatalf("pc advanced %#x -> %#x, want one instruction", pc0, l.CPU.Regs.PC)
	}
	// Step again.
	f.run(l, kernel.RunFlags{Step: true, ClearFault: true})
	l = f.waitStop(p)
	if l.CPU.Regs.PC != pc0+8 {
		t.Fatalf("second step pc = %#x", l.CPU.Regs.PC)
	}
	f.run(l, kernel.RunFlags{ClearFault: true})
	f.runToExit(p)
}

// --- Figure 4: issig() scenarios ---

// The process stops twice for one job-control signal: first a signalled
// stop (traced), then the job-control stop when set running without
// clearing the signal.
func TestFigure4DoubleStopOnJobControlSignal(t *testing.T) {
	f := boot(t)
	p := f.spawn("dbl", spinForever, user())
	p.Trace.Sigs.Add(types.SIGTSTP)
	f.K.Run(3)
	f.K.PostSignal(p, types.SIGTSTP)
	l := f.waitStop(p)
	if why, what := l.Why(); why != kernel.WhySignalled || what != types.SIGTSTP {
		t.Fatalf("first stop: why=%v what=%d", why, what)
	}
	// Set running WITHOUT clearing the signal: job-control stop follows.
	f.run(l, kernel.RunFlags{})
	if err := f.K.RunUntil(func() bool {
		why, _ := l.Why()
		return l.Stopped() && why == kernel.WhyJobControl
	}, 100000); err != nil {
		t.Fatalf("no job-control stop: %v", err)
	}
	// Such a stopped process can be restarted only by SIGCONT.
	f.K.PostSignal(p, types.SIGCONT)
	f.K.Run(5)
	if l.Stopped() {
		t.Fatal("SIGCONT did not restart")
	}
	f.K.PostSignal(p, types.SIGKILL)
	f.runToExit(p)
}

// "/proc gets the last word": a process stopped by job control, directed to
// stop via /proc, stops again on the requested stop when SIGCONT restarts it.
func TestFigure4ProcGetsTheLastWord(t *testing.T) {
	f := boot(t)
	p := f.spawn("lastword", spinForever, user())
	f.K.Run(3)
	f.K.PostSignal(p, types.SIGSTOP)
	f.K.Run(5)
	l := p.Rep()
	if why, _ := l.Why(); why != kernel.WhyJobControl {
		t.Fatal("setup: no job-control stop")
	}
	// Direct it to stop via /proc while job-stopped.
	p.DirectStopAll()
	// Restart with SIGCONT: it must stop again, now on the requested stop,
	// before exiting issig().
	f.K.PostSignal(p, types.SIGCONT)
	l2 := f.waitStop(p)
	if why, _ := l2.Why(); why != kernel.WhyRequested {
		t.Fatalf("why = %v, want requested stop after SIGCONT", why)
	}
	f.run(l2, kernel.RunFlags{})
	f.K.PostSignal(p, types.SIGKILL)
	f.runToExit(p)
}

// A requested stop is performed in issig(), so a process can be directed to
// stop while sleeping and set running again without disturbing the system
// call.
func TestFigure4StopWhileSleepingWithoutDisturbing(t *testing.T) {
	f := boot(t)
	p := f.spawn("sleepstop", `
	movi r0, SYS_pipe
	syscall
	mov r6, r0
	mov r7, r1
	movi r0, SYS_read	; sleeps: empty pipe
	mov r1, r6
	la r2, buf
	movi r3, 1
	syscall
	mov r1, r0		; bytes read: must be 1, NOT EINTR
	movi r0, SYS_exit
	syscall
.data
buf:	.space 4
`, user())
	err := f.K.RunUntil(func() bool {
		l := p.Rep()
		return l != nil && l.Asleep()
	}, 100000)
	if err != nil {
		t.Fatalf("never slept: %v", err)
	}
	// Direct a stop while it sleeps.
	p.DirectStopAll()
	l := f.waitStop(p)
	if why, _ := l.Why(); why != kernel.WhyRequested {
		t.Fatalf("why = %v", why)
	}
	st := l.LWPStatus()
	if st.Syscall != kernel.SysRead {
		t.Fatalf("stopped syscall = %d, want read", st.Syscall)
	}
	// Set it running again: the read must keep waiting, undisturbed.
	f.run(l, kernel.RunFlags{})
	f.K.Run(20)
	if !p.Alive() {
		t.Fatal("process died")
	}
	// Satisfy the read by writing into the pipe from the kernel side: the
	// write end is fd r7 of the process — write via its descriptor.
	wfd := p.FD(int(l.CPU.Regs.R[7]))
	if wfd == nil {
		t.Fatal("no write fd")
	}
	if _, err := wfd.Write([]byte{'x'}); err != nil {
		t.Fatal(err)
	}
	status := f.runToExit(p)
	if ok, code := kernel.WIfExited(status); !ok || code != 1 {
		t.Fatalf("status = %#x, want clean read of 1 byte", status)
	}
}

// PRSABORT: a sleeping system call can be aborted without sending a signal.
func TestFigure4AbortSyscallWithoutSignal(t *testing.T) {
	f := boot(t)
	p := f.spawn("aborter", `
	movi r0, SYS_pipe
	syscall
	mov r6, r0
	movi r0, SYS_read
	mov r1, r6
	la r2, buf
	movi r3, 1
	syscall			; aborted -> EINTR
	mov r1, r0
	movi r0, SYS_exit
	syscall
.data
buf:	.space 4
`, user())
	err := f.K.RunUntil(func() bool {
		l := p.Rep()
		return l != nil && l.Asleep()
	}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	p.DirectStopAll()
	l := f.waitStop(p)
	f.run(l, kernel.RunFlags{Abort: true})
	status := f.runToExit(p)
	if ok, code := kernel.WIfExited(status); !ok || code != int(kernel.EINTR) {
		t.Fatalf("status = %#x, want EINTR without any signal", status)
	}
	if p.Usage.Signals != 0 {
		t.Fatal("abort should not involve signals")
	}
}

// Syscall encapsulation (C13): abort at entry and manufacture return values
// at exit — simulating a system call entirely at user level.
func TestSyscallEncapsulation(t *testing.T) {
	f := boot(t)
	p := f.spawn("encap", `
	movi r0, SYS_time
	syscall			; the "obsolete syscall" we simulate
	mov r1, r0
	movi r0, SYS_exit
	syscall
`, user())
	p.Trace.Entry.Add(kernel.SysTime)
	p.Trace.Exit.Add(kernel.SysTime)
	l := f.waitStop(p)
	if why, _ := l.Why(); why != kernel.WhySysEntry {
		t.Fatal("no entry stop")
	}
	// Abort execution of the call and go directly to system call exit.
	f.run(l, kernel.RunFlags{Abort: true})
	l = f.waitStop(p)
	if why, _ := l.Why(); why != kernel.WhySysExit {
		t.Fatal("no exit stop")
	}
	// The aborted call failed with EINTR; manufacture a success instead.
	l.CPU.Regs.R[0] = 7777 & 0xFF // fabricated "time" (exit code is 8 bits)
	l.CPU.Regs.PSW &^= uint32(vcpu.FlagC)
	f.run(l, kernel.RunFlags{})
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != 7777&0xFF {
		t.Fatalf("code = %d, want the fabricated value", code)
	}
}

// --- the competing mechanism: ptrace ---

func TestPtraceStopOnSignal(t *testing.T) {
	f := boot(t)
	p := f.spawn("pt1", spinForever, user())
	c := f.K.PtraceAttach(p)
	f.K.PostSignal(p, types.SIGUSR1)
	sig, err := c.WaitStop(100000)
	if err != nil {
		t.Fatal(err)
	}
	if sig != types.SIGUSR1 {
		t.Fatalf("stop sig = %d", sig)
	}
	// Peek registers a word at a time.
	pc, err := c.PeekUser(kernel.PtUserPC)
	if err != nil {
		t.Fatal(err)
	}
	if pc < 0x80000000 {
		t.Fatalf("pc = %#x", pc)
	}
	// Continue clearing the signal; then kill.
	if err := c.Cont(0); err != nil {
		t.Fatal(err)
	}
	f.K.Run(5)
	if !p.Alive() {
		t.Fatal("cleared signal killed the process")
	}
	c.Kill()
	if p.Alive() {
		f.runToExit(p)
	}
}

func TestPtracePeekPoke(t *testing.T) {
	f := boot(t)
	p := f.spawn("pt2", spinForever, user())
	c := f.K.PtraceAttach(p)
	f.K.PostSignal(p, types.SIGTRAP)
	if _, err := c.WaitStop(100000); err != nil {
		t.Fatal(err)
	}
	w, err := c.PeekText(0x80000000)
	if err != nil {
		t.Fatal(err)
	}
	if w>>24 != vcpu.OpJMP {
		t.Fatalf("text word = %#x", w)
	}
	if err := c.PokeText(0x80000000, vcpu.Encode(vcpu.OpNOP, 0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	w2, _ := c.PeekText(0x80000000)
	if w2>>24 != vcpu.OpNOP {
		t.Fatal("poke did not take")
	}
	c.Kill()
}

// The paper's interplay: a signal traced by /proc in a ptraced process stops
// first for /proc; setting it running via /proc leaves it ptrace-stopped;
// after ptrace continues it, a pending /proc directive stops it again.
func TestPtraceProcInterplay(t *testing.T) {
	f := boot(t)
	p := f.spawn("pt3", spinForever, user())
	p.Trace.Sigs.Add(types.SIGUSR1)
	c := f.K.PtraceAttach(p)
	f.K.PostSignal(p, types.SIGUSR1)

	// First: the /proc signalled stop.
	l := f.waitStop(p)
	if why, _ := l.Why(); why != kernel.WhySignalled {
		t.Fatalf("first stop why = %v", why)
	}
	// Direct a future stop, then set running through /proc: it remains
	// stopped — ptrace has control.
	p.DirectStopAll()
	f.run(l, kernel.RunFlags{})
	f.K.Run(5)
	if !l.Stopped() {
		t.Fatal("should remain ptrace-stopped")
	}
	if !c.Stopped() {
		t.Fatal("ptrace does not see its stop")
	}
	// ptrace sets it running: it stops again on the requested stop.
	if err := c.Cont(0); err != nil {
		t.Fatal(err)
	}
	l2 := f.waitStop(p)
	if why, _ := l2.Why(); why != kernel.WhyRequested {
		t.Fatalf("after ptrace cont: why = %v, want requested (/proc gets the last word)", why)
	}
	f.run(l2, kernel.RunFlags{})
	c.Kill()
}

// Breakpoints: stop-on-FLTBPT is independent of signals — a held SIGTRAP
// does not prevent the faulted stop, while a signalled stop would never
// happen for a held signal.
func TestBreakpointFaultVsHeldSignal(t *testing.T) {
	f := boot(t)
	p := f.spawn("heldtrap", `
	movi r0, SYS_sigprocmask
	movi r1, 1		; BLOCK
	movi r2, 0x10		; 1 << (SIGTRAP-1) = 1<<4
	movi r3, 0
	syscall
	bpt
	movi r0, SYS_exit
	movi r1, 0
	syscall
`, user())
	p.Trace.Faults.Add(types.FLTBPT)
	l := f.waitStop(p)
	if why, what := l.Why(); why != kernel.WhyFaulted || what != types.FLTBPT {
		t.Fatalf("why=%v what=%d: fault stop must ignore signal masking", why, what)
	}
	// Contrast: tracing SIGTRAP instead would never stop (signal held).
	st := l.LWPStatus()
	if !st.SigHold.Has(types.SIGTRAP) {
		t.Fatal("SIGTRAP should be held")
	}
	// Repair: overwrite bpt with nop, clear fault, run to exit.
	w := vcpu.Encode(vcpu.OpNOP, 0, 0, 0)
	p.AS.WriteAt([]byte{byte(w >> 24), byte(w >> 16), byte(w >> 8), byte(w)}, int64(st.Reg.PC))
	f.run(l, kernel.RunFlags{ClearFault: true})
	f.runToExit(p)
}

// Inherit-on-fork: the child inherits tracing flags and both parent and
// child stop on exit from fork; the child has run no user-level code.
func TestInheritOnFork(t *testing.T) {
	f := boot(t)
	p := f.spawn("inh", `
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_exit
	movi r1, 21
	syscall
parent:
	movi r0, SYS_wait
	movi r1, 0
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
`, user())
	p.Trace.InhFork = true
	p.Trace.Exit.Add(kernel.SysFork)
	// Parent stops on exit from fork.
	l := f.waitStop(p)
	if why, what := l.Why(); why != kernel.WhySysExit || what != kernel.SysFork {
		t.Fatalf("parent: why=%v what=%d", why, what)
	}
	childPid := int(l.CPU.Regs.R[0])
	child := f.K.Proc(childPid)
	if child == nil {
		t.Fatal("child not found from fork return value")
	}
	if !child.Trace.InhFork || !child.Trace.Exit.Has(kernel.SysFork) {
		t.Fatal("child did not inherit tracing flags")
	}
	// Child stops on exit from fork too, before any user-level code.
	cl, err := f.K.WaitStop(child, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if why, what := cl.Why(); why != kernel.WhySysExit || what != kernel.SysFork {
		t.Fatalf("child: why=%v what=%d", why, what)
	}
	if cl.CPU.Regs.R[0] != 0 {
		t.Fatal("child fork return value should be 0")
	}
	if cl.CPU.Instret != 0 {
		t.Fatal("child should not have executed user instructions")
	}
	// Release both; the child must exit 21, the parent 0.
	f.run(cl, kernel.RunFlags{})
	f.run(l, kernel.RunFlags{})
	if err := f.K.RunUntil(func() bool { return !p.Alive() }, 2_000_000); err != nil {
		t.Fatal(err)
	}
	if _, code := kernel.WIfExited(p.ExitStatus); code != 0 {
		t.Fatalf("parent code = %d", code)
	}
}

// Without inherit-on-fork the child starts with tracing flags cleared.
func TestForkClearsTracingWithoutInherit(t *testing.T) {
	f := boot(t)
	p := f.spawn("noinh", `
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_exit
	movi r1, 0
	syscall
parent:
	movi r0, SYS_wait
	movi r1, 0
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
`, user())
	p.Trace.Exit.Add(kernel.SysFork)
	l := f.waitStop(p)
	childPid := int(l.CPU.Regs.R[0])
	child := f.K.Proc(childPid)
	if child == nil {
		t.Fatal("no child")
	}
	if !child.Trace.Empty() {
		t.Fatal("child should start with tracing flags cleared")
	}
	f.run(l, kernel.RunFlags{})
	f.runToExit(p)
}

// LWPs: a multi-threaded process exposes per-LWP stops.
func TestLWPCreationAndControl(t *testing.T) {
	f := boot(t)
	p := f.spawn("threads", `
	movi r0, SYS_mmap	; stack for the new lwp
	movi r1, 0
	movi r2, 0
	movhi r2, 1
	movi r3, 3
	movi r4, 0
	syscall
	mov r6, r0
	movi r2, 0		; stack top = base + 64K
	movhi r2, 1
	add r6, r2
	movi r0, SYS_lwp_create
	la r1, thread
	mov r2, r6
	syscall
	; main lwp spins on the flag
wait:	la r3, flag
	ld r4, [r3]
	cmpi r4, 1
	jne wait
	movi r0, SYS_exit
	movi r1, 66
	syscall
thread:
	la r3, flag
	movi r4, 1
	st r4, [r3]
	movi r0, SYS_lwp_exit
	syscall
.data
flag:	.word 0
`, user())
	status := f.runToExit(p)
	if ok, code := kernel.WIfExited(status); !ok || code != 66 {
		t.Fatalf("status = %#x", status)
	}
	if p.Usage.Syscalls < 3 {
		t.Fatal("expected several syscalls")
	}
}

func TestSetIDExecMarksSugid(t *testing.T) {
	f := boot(t)
	f.install("/bin/su", exit42, 0o4755, 0, 0) // setuid root
	p := f.spawn("runner", `
	movi r0, SYS_exec
	la r1, path
	syscall
	movi r0, SYS_exit
	movi r1, 1
	syscall
.data
path:	.asciz "/bin/su"
`, user())
	f.runToExit(p)
	if !p.SugidDirty {
		t.Fatal("set-id exec should mark the process")
	}
	if p.Cred.EUID != 0 || p.Cred.RUID != 100 {
		t.Fatalf("cred = %+v", p.Cred)
	}
}

func TestPSInfoSnapshot(t *testing.T) {
	f := boot(t)
	p := f.spawn("psinfo", spinForever, user())
	f.K.Run(10)
	info := p.PSInfo()
	if info.Pid != p.Pid || info.UID != 100 || info.GID != 10 ||
		info.Comm != "psinfo" || info.State != 'R' || info.VSize == 0 {
		t.Fatalf("info = %+v", info)
	}
	f.K.PostSignal(p, types.SIGKILL)
	f.runToExit(p)
}

func TestUsageAccounting(t *testing.T) {
	f := boot(t)
	p := f.spawn("usage", `
	movi r0, SYS_getpid
	syscall
	movi r0, SYS_getuid
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
`, user())
	f.runToExit(p)
	if p.Usage.Syscalls != 3 {
		t.Fatalf("syscalls = %d, want 3", p.Usage.Syscalls)
	}
	if p.Usage.UserTicks == 0 || p.Usage.SysTicks == 0 {
		t.Fatalf("usage = %+v", p.Usage)
	}
}
