package kernel_test

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/types"
)

// Waiting for a directed stop on a job-stopped process cannot complete until
// SIGCONT; the kernel diagnoses the situation instead of spinning.
func TestWaitStopDiagnosesJobStop(t *testing.T) {
	f := boot(t)
	p := f.spawn("parked", spinForever, user())
	f.K.Run(3)
	f.K.PostSignal(p, types.SIGSTOP)
	f.K.Run(5)
	p.DirectStopAll()
	if _, err := f.K.WaitStop(p, 100000); err != kernel.ErrJobStopped {
		t.Fatalf("err = %v, want ErrJobStopped", err)
	}
	// SIGCONT releases it; the directed stop then takes effect.
	f.K.PostSignal(p, types.SIGCONT)
	l, err := f.K.WaitStop(p, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if why, _ := l.Why(); why != kernel.WhyRequested {
		t.Fatalf("why = %v", why)
	}
	f.K.RunLWP(l, kernel.RunFlags{})
	f.K.PostSignal(p, types.SIGKILL)
	f.runToExit(p)
}
