package kernel_test

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/types"
	"repro/internal/vfs"
)

// A root-owned program drops privilege with setuid/setgid; a second setuid
// back to root must then fail.
func TestSetuidDropsPrivilege(t *testing.T) {
	f := boot(t)
	p := f.spawn("dropper", `
	movi r0, SYS_setgid
	movi r1, 50
	syscall
	movi r0, SYS_setuid
	movi r1, 500
	syscall
	movi r0, SYS_setuid	; try to get root back: EPERM
	movi r1, 0
	syscall
	mov r1, r0
	movi r0, SYS_exit
	syscall
`, types.RootCred())
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != int(kernel.EPERM) {
		t.Fatalf("code = %d, want EPERM", code)
	}
	if p.Cred.RUID != 500 || p.Cred.RGID != 50 {
		t.Fatalf("cred = %+v", p.Cred)
	}
}

// setuid to the real or saved uid works without privilege.
func TestSetuidToRealUID(t *testing.T) {
	f := boot(t)
	p := f.spawn("swapper", `
	movi r0, SYS_setuid
	movi r1, 100		; our own ruid: allowed
	syscall
	mov r1, r0
	movi r0, SYS_exit
	syscall
`, user())
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != 0 {
		t.Fatalf("code = %d", code)
	}
}

// sigsuspend: atomically replace the mask and wait; the saved mask is
// restored on return.
func TestSigsuspend(t *testing.T) {
	f := boot(t)
	p := f.spawn("susp", `
.entry main
h:	movi r0, SYS_sigreturn
	syscall
main:
	movi r0, SYS_signal
	movi r1, SIGUSR1
	la r2, h
	syscall
	movi r0, SYS_sigprocmask	; block USR1
	movi r1, 1
	movi r2, 0x8000
	movi r3, 0
	syscall
	movi r0, SYS_sigsuspend		; wait with an empty mask
	movi r1, 0
	movi r2, 0
	syscall				; returns EINTR after the handler
	mov r6, r0
	movi r0, SYS_sigprocmask	; read back the mask: USR1 still blocked
	movi r1, 1
	movi r2, 0
	movi r3, 0
	syscall				; old mask in r0 (low word)
	movi r2, 0x8000
	and r0, r2
	cmpi r0, 0
	je bad
	mov r1, r6			; EINTR
	movi r0, SYS_exit
	syscall
bad:	movi r1, 77
	movi r0, SYS_exit
	syscall
`, user())
	err := f.K.RunUntil(func() bool {
		l := p.Rep()
		return l != nil && l.Asleep()
	}, 500000)
	if err != nil {
		t.Fatal(err)
	}
	f.K.PostSignal(p, types.SIGUSR1)
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != int(kernel.EINTR) {
		t.Fatalf("code = %d (77 = mask not restored)", code)
	}
}

// times, yield, getpgrp and time are trivially correct.
func TestTrivialSyscalls(t *testing.T) {
	f := boot(t)
	p := f.spawn("triv", `
	movi r0, SYS_yield
	syscall
	movi r0, SYS_time
	syscall
	mov r6, r0		; clock > 0
	movi r0, SYS_times
	syscall			; r0 utime, r1 stime
	mov r7, r0
	movi r0, SYS_getpgrp
	syscall
	mov r5, r0		; pgrp
	cmpi r6, 1
	jlt bad
	cmpi r7, 1
	jlt bad
	cmpi r5, 1
	jlt bad
	movi r1, 0
	movi r0, SYS_exit
	syscall
bad:	movi r1, 1
	movi r0, SYS_exit
	syscall
`, user())
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != 0 {
		t.Fatalf("code = %d", code)
	}
}

// chmod by the owner through the chmodder interface; by a non-owner EPERM.
func TestChmodSyscall(t *testing.T) {
	f := boot(t)
	f.FS.WriteFile("/tmp/own", []byte("x"), 0o644, 100, 10)
	f.FS.WriteFile("/tmp/other", []byte("x"), 0o644, 999, 10)
	p := f.spawn("chm", `
	movi r0, SYS_chmod
	la r1, own
	movi r2, 0x1C0		; 0700
	syscall
	mov r6, r0
	movi r0, SYS_chmod
	la r1, other
	movi r2, 0x1C0
	syscall			; EPERM
	mov r1, r0
	movi r0, SYS_exit
	syscall
.data
own:	.asciz "/tmp/own"
other:	.asciz "/tmp/other"
`, user())
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != int(kernel.EPERM) {
		t.Fatalf("code = %d, want EPERM", code)
	}
	cl := &vfs.Client{NS: f.K.NS, Cred: types.RootCred()}
	attr, _ := cl.Stat("/tmp/own")
	if attr.Mode != 0o700 {
		t.Fatalf("mode = %o", attr.Mode)
	}
}

// wait(&status): the status word is stored through the user pointer.
func TestWaitStoresStatusWord(t *testing.T) {
	f := boot(t)
	p := f.spawn("waiter", `
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_exit
	movi r1, 3
	syscall
parent:
	movi r0, SYS_wait
	la r1, statw		; store the status here
	syscall
	la r3, statw
	ld r1, [r3]
	shr r1, 8		; exit code from the stored word
	movi r0, SYS_exit
	syscall
.data
statw:	.word 0
`, user())
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != 3 {
		t.Fatalf("code = %d", code)
	}
}

// ioctl(2) from a user program: no devices, ENOTTY; bad fd, EBADF.
func TestUserIoctl(t *testing.T) {
	f := boot(t)
	p := f.spawn("uio", `
	movi r0, SYS_pipe
	syscall
	mov r6, r0
	movi r0, SYS_ioctl
	mov r1, r6
	movi r2, 1
	movi r3, 0
	syscall
	mov r7, r0		; ENOTTY
	movi r0, SYS_ioctl
	movi r1, 63		; unopened fd
	movi r2, 1
	movi r3, 0
	syscall			; EBADF
	shl r0, 8
	or r0, r7
	mov r1, r0
	movi r0, SYS_exit
	syscall
`, user())
	status := f.runToExit(p)
	_, code := kernel.WIfExited(status)
	// low byte ENOTTY; the EBADF<<8 is truncated off the 8-bit exit code.
	if code != int(kernel.ENOTTY) {
		t.Fatalf("code = %d, want ENOTTY", code)
	}
}

// Ptrace controller PokeUser and single-step.
func TestPtraceControllerPokeUserStep(t *testing.T) {
	f := boot(t)
	p := f.spawn("pstep", `
	movi r1, 1
	movi r2, 2
	movi r3, 3
loop:	jmp loop
`, user())
	c := f.K.PtraceAttach(p)
	f.K.PostSignal(p, types.SIGTRAP)
	if _, err := c.WaitStop(500000); err != nil {
		t.Fatal(err)
	}
	// Rewind the PC to the start and step through, poking a register.
	if err := c.PokeUser(kernel.PtUserPC, 0x80000000); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitStop(500000); err != nil {
		t.Fatal(err)
	}
	pc, _ := c.PeekUser(kernel.PtUserPC)
	if pc != 0x80000004 {
		t.Fatalf("pc = %#x after one step", pc)
	}
	if err := c.PokeUser(5, 0xAA); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.PeekUser(5); v != 0xAA {
		t.Fatal("poke user did not take")
	}
	c.Kill()
}

// Pipe vnode attributes and poll.
func TestPipeAttrAndPoll(t *testing.T) {
	f := boot(t)
	r, w := f.K.NewPipe()
	defer r.Close()
	defer w.Close()
	attr, err := r.VN.VAttr()
	if err != nil || attr.Type != vfs.VFIFO {
		t.Fatalf("%+v %v", attr, err)
	}
	if r.Poll(vfs.PollIn) != 0 {
		t.Fatal("empty pipe should not be readable")
	}
	if w.Poll(vfs.PollOut) != vfs.PollOut {
		t.Fatal("empty pipe should be writable")
	}
	w.Write([]byte("x"))
	if r.Poll(vfs.PollIn) != vfs.PollIn {
		t.Fatal("nonempty pipe should be readable")
	}
	// A pipe vnode cannot be reopened by path machinery.
	if _, err := r.VN.VOpen(vfs.ORead, types.RootCred()); err == nil {
		t.Fatal("pipe VOpen should fail")
	}
	if err := r.Ioctl(1, nil); err != vfs.ErrNoIoctl {
		t.Fatalf("pipe ioctl: %v", err)
	}
}

// Kernel odds and ends: Tick advances timers, Proc.LWP lookup, stop-reason
// and state strings.
func TestKernelOddsAndEnds(t *testing.T) {
	f := boot(t)
	p := f.spawn("odds", spinForever, user())
	before := f.K.Now()
	f.K.Tick()
	if f.K.Now() != before+1 {
		t.Fatal("Tick did not advance")
	}
	if f.K.InitProc() != nil {
		t.Fatal("this fixture boots without an init")
	}
	l := p.LWP(1)
	if l == nil || p.LWP(99) != nil {
		t.Fatal("LWP lookup wrong")
	}
	if l.State().String() != "run" {
		t.Fatalf("state = %q", l.State())
	}
	if kernel.WhySignalled.String() != "signalled" {
		t.Fatal("why string")
	}
	if kernel.StopWhy(99).String() != "?" || kernel.LState(99).String() != "?" {
		t.Fatal("out-of-range strings")
	}
	if args := l.SysArgs(); args != ([6]uint32{}) {
		t.Fatalf("args = %v", args)
	}
	if kernel.ErrNotStopped.Error() == "" {
		t.Fatal("error string empty")
	}
	f.K.PostSignal(p, types.SIGKILL)
	f.runToExit(p)
}
