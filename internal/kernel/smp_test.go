package kernel

import (
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/vfs"
)

// TestShootdownBarrier exercises the cross-CPU TLB invalidation barrier
// mechanics directly: shootdown must spin while any CPU publishes the dying
// address space and return as soon as none does, and the big-lock protocol
// must withdraw the published space before blocking (the property that makes
// the barrier deadlock-free).
func TestShootdownBarrier(t *testing.T) {
	k := New(vfs.NewNS(nil), Config{NCPU: 3})
	as := mem.NewAS(4096)
	other := mem.NewAS(4096)

	// No publisher: the barrier falls through immediately.
	k.shootdown(as)

	// A CPU publishing a different space does not hold the barrier.
	k.smp.cpus[1].curAS.Store(other)
	k.shootdown(as)
	k.smp.cpus[1].curAS.Store(nil)

	// A CPU publishing the target space holds the barrier until it
	// withdraws; the initiator must return promptly afterwards.
	w := k.smp.cpus[2]
	w.curAS.Store(as)
	done := make(chan struct{})
	go func() {
		k.shootdown(as)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("shootdown returned while a CPU still published the space")
	case <-time.After(10 * time.Millisecond):
	}
	w.curAS.Store(nil)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("shootdown did not return after the publisher withdrew")
	}

	// The lock protocol: taking the big lock withdraws the published
	// space (so a lock-holding shootdown initiator cannot spin on a CPU
	// that is itself waiting for the lock), and releasing republishes it.
	w.as = as
	w.curAS.Store(as)
	w.lock()
	if got := w.curAS.Load(); got != nil {
		t.Fatal("big-lock acquisition left the address space published")
	}
	w.unlock()
	if got := w.curAS.Load(); got != as {
		t.Fatal("big-lock release did not republish the running space")
	}
	w.as = nil
	w.curAS.Store(nil)
}

// TestDeterministicModeHasNoSMP pins the default: without NCPU the kernel
// runs the deterministic single-threaded scheduler and the shootdown
// barrier is a no-op.
func TestDeterministicModeHasNoSMP(t *testing.T) {
	k := New(vfs.NewNS(nil), Config{NCPU: 1})
	if k.smp != nil || k.NCPU() != 1 {
		t.Fatalf("NCPU=1 built an SMP scheduler (NCPU() = %d)", k.NCPU())
	}
	k.shootdown(mem.NewAS(4096)) // must fall through
}
