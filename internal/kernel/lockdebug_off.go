//go:build !lockdebug

package kernel

// Lock ranks in acquisition order. A goroutine must take locks in strictly
// increasing rank, with one sanctioned exception: a holder of the global
// kernel lock (rankGlobal) may take any number of per-process locks
// (rankProc) one at a time — that is the only way to hold two process
// locks' worth of state (e.g. signalling every member of a process group).
// See the hierarchy comment on Kernel.global in kernel.go.
const (
	rankGlobal = 1 // Kernel.global
	rankProc   = 2 // Proc.mu
	rankSleep  = 3 // Kernel.sleepMu
	rankQueue  = 4 // runQueue.mu
)

// In normal builds the lock-order checker compiles to nothing.
func lockOrderAcquire(rank int) {}
func lockOrderRelease(rank int) {}
