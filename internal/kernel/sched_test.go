package kernel_test

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/types"
)

// Two CPU-bound processes both make progress under the round-robin
// scheduler; neither starves.
func TestSchedulerFairness(t *testing.T) {
	f := boot(t)
	prog := `
loop:	addi r5, 1
	jmp loop
`
	a := f.spawn("spina", prog, user())
	b := f.spawn("spinb", prog, user())
	f.K.Run(200)
	ra := a.Rep().CPU.Regs.R[5]
	rb := b.Rep().CPU.Regs.R[5]
	if ra == 0 || rb == 0 {
		t.Fatalf("starvation: a=%d b=%d", ra, rb)
	}
	ratio := float64(ra) / float64(rb)
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("unfair: a=%d b=%d", ra, rb)
	}
	f.K.PostSignal(a, types.SIGKILL)
	f.K.PostSignal(b, types.SIGKILL)
	f.runToExit(a)
	f.runToExit(b)
}

// Two LWPs of one process both make progress, and a signal is delivered to
// an LWP that does not hold it when another does.
func TestMultiLWPSignalRouting(t *testing.T) {
	f := boot(t)
	p := f.spawn("routed", `
.entry main
h:	la r3, got
	movi r4, 1
	st r4, [r3]
	movi r0, SYS_sigreturn
	syscall
main:
	movi r0, SYS_signal
	movi r1, SIGUSR1
	la r2, h
	syscall
	; LWP 1 blocks SIGUSR1
	movi r0, SYS_sigprocmask
	movi r1, 1
	movi r2, 0x8000		; 1 << (SIGUSR1-1)
	movi r3, 0
	syscall
	; create LWP 2 with an open mask
	movi r0, SYS_mmap
	movi r1, 0
	movi r2, 0
	movhi r2, 1
	movi r3, 3
	movi r4, 0
	syscall
	mov r6, r0
	movi r2, 0
	movhi r2, 1
	add r6, r2
	movi r0, SYS_lwp_create
	la r1, worker
	mov r2, r6
	syscall
	; LWP 1 spins until the handler ran somewhere
wait:	la r3, got
	ld r4, [r3]
	cmpi r4, 1
	jne wait
	movi r0, SYS_exit
	movi r1, 0
	syscall
worker:	jmp worker
.data
got:	.word 0
`, user())
	if err := f.K.RunUntil(func() bool { return len(p.LiveLWPs()) == 2 }, 500000); err != nil {
		t.Fatal(err)
	}
	f.K.Run(10)
	f.K.PostSignal(p, types.SIGUSR1)
	// The signal must be delivered (to LWP 2, which does not hold it), and
	// the process exits.
	status := f.runToExit(p)
	if ok, code := kernel.WIfExited(status); !ok || code != 0 {
		t.Fatalf("status = %#x", status)
	}
	// LWP 1 held the signal the whole time.
	if !p.LWPs[0].SigHold.Has(types.SIGUSR1) {
		t.Fatal("lwp 1 hold lost")
	}
}

// Quantum configuration is honored: a smaller quantum produces more
// involuntary context switches for the same work.
func TestQuantumAffectsSwitches(t *testing.T) {
	run := func(quantum int) int64 {
		f := bootWith(t, quantum)
		p := f.spawn("q", `
	movi r5, 0
loop:	addi r5, 1
	cmpi r5, 2000
	jne loop
	movi r0, SYS_exit
	movi r1, 0
	syscall
`, user())
		f.runToExit(p)
		return p.Usage.InvolCtx
	}
	small := run(10)
	large := run(500)
	if small <= large {
		t.Fatalf("switches: quantum10=%d quantum500=%d", small, large)
	}
}
