package kernel_test

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/types"
)

const spinForever = `
loop:	jmp loop
`

// sigHandlerProg installs a handler for SIGUSR1 that bumps a counter; the
// main loop exits once the counter reaches r5's target.
const sigHandlerProg = `
.entry main
handler:
	la r3, counter
	ld r4, [r3]
	addi r4, 1
	st r4, [r3]
	movi r0, SYS_sigreturn
	syscall
main:
	movi r0, SYS_signal
	movi r1, SIGUSR1
	la r2, handler
	syscall
loop:
	la r3, counter
	ld r4, [r3]
	cmpi r4, 1
	jne loop
	movi r0, SYS_exit
	movi r1, 55
	syscall
.data
counter: .word 0
`

func TestDefaultSignalTerminates(t *testing.T) {
	f := boot(t)
	p := f.spawn("spin", spinForever, user())
	f.K.Run(10)
	f.K.PostSignal(p, types.SIGTERM)
	status := f.runToExit(p)
	if ok, sig, core := kernel.WIfSignaled(status); !ok || sig != types.SIGTERM || core {
		t.Fatalf("status = %#x", status)
	}
}

func TestCoreDumpSignals(t *testing.T) {
	f := boot(t)
	p := f.spawn("spin2", spinForever, user())
	f.K.Run(10)
	f.K.PostSignal(p, types.SIGQUIT)
	status := f.runToExit(p)
	if ok, sig, core := kernel.WIfSignaled(status); !ok || sig != types.SIGQUIT || !core {
		t.Fatalf("status = %#x, want core dump", status)
	}
}

func TestSignalHandlerAndSigreturn(t *testing.T) {
	f := boot(t)
	p := f.spawn("handled", sigHandlerProg, user())
	f.K.Run(20) // let it install the handler
	f.K.PostSignal(p, types.SIGUSR1)
	status := f.runToExit(p)
	if ok, code := kernel.WIfExited(status); !ok || code != 55 {
		t.Fatalf("status = %#x, want handled exit 55", status)
	}
}

func TestIgnoredSignalDiscarded(t *testing.T) {
	f := boot(t)
	p := f.spawn("ign", `
	movi r0, SYS_signal
	movi r1, SIGUSR1
	movi r2, 1		; SIG_IGN
	syscall
loop:	jmp loop
`, user())
	f.K.Run(20)
	f.K.PostSignal(p, types.SIGUSR1)
	f.K.Run(20)
	if !p.Alive() {
		t.Fatal("ignored signal killed the process")
	}
	if !p.SigPend.IsEmpty() {
		t.Fatal("ignored signal should be discarded at generation")
	}
	f.K.PostSignal(p, types.SIGKILL)
	f.runToExit(p)
}

func TestSIGKILLUnblockable(t *testing.T) {
	f := boot(t)
	// The program tries to block and ignore SIGKILL; both must fail.
	p := f.spawn("tough", `
	movi r0, SYS_signal
	movi r1, SIGKILL
	movi r2, 1
	syscall			; EINVAL
	mov r6, r0
	movi r0, SYS_sigprocmask
	movi r1, 3		; SETMASK
	movi r2, 0
	movhi r2, 0x100		; bit 40? actually set every bit below:
	syscall
loop:	jmp loop
`, user())
	f.K.Run(30)
	f.K.PostSignal(p, types.SIGKILL)
	status := f.runToExit(p)
	if ok, sig, _ := kernel.WIfSignaled(status); !ok || sig != types.SIGKILL {
		t.Fatalf("status = %#x", status)
	}
}

func TestSigprocmaskHoldsAndReleases(t *testing.T) {
	f := boot(t)
	// Block SIGUSR1, install handler, spin until a marker is set, then
	// unblock: the pending signal is delivered only after the unblock.
	p := f.spawn("masker", `
.entry main
handler:
	la r3, counter
	movi r4, 1
	st r4, [r3]
	movi r0, SYS_sigreturn
	syscall
main:
	movi r0, SYS_signal
	movi r1, SIGUSR1
	la r2, handler
	syscall
	movi r0, SYS_sigprocmask
	movi r1, 1		; BLOCK
	movi r2, 0x8000		; 1 << (SIGUSR1-1) = 1<<15
	movi r3, 0
	syscall
	movi r5, 300
spin:	addi r5, -1
	cmpi r5, 0
	jne spin
	la r3, counter		; handler must NOT have run yet
	ld r4, [r3]
	cmpi r4, 0
	jne bad
	movi r0, SYS_sigprocmask
	movi r1, 3		; SETMASK to empty: release
	movi r2, 0
	movi r3, 0
	syscall
wait:	la r3, counter
	ld r4, [r3]
	cmpi r4, 1
	jne wait
	movi r0, SYS_exit
	movi r1, 0
	syscall
bad:	movi r0, SYS_exit
	movi r1, 9
	syscall
.data
counter: .word 0
`, user())
	f.K.Run(30)
	f.K.PostSignal(p, types.SIGUSR1)
	status := f.runToExit(p)
	if ok, code := kernel.WIfExited(status); !ok || code != 0 {
		t.Fatalf("status = %#x (9 = handler ran while blocked)", status)
	}
}

func TestAlarmPause(t *testing.T) {
	f := boot(t)
	p := f.spawn("alarmer", `
.entry main
handler:
	movi r0, SYS_sigreturn
	syscall
main:
	movi r0, SYS_signal
	movi r1, SIGALRM
	la r2, handler
	syscall
	movi r0, SYS_alarm
	movi r1, 100
	syscall
	movi r0, SYS_pause
	syscall			; EINTR when SIGALRM arrives
	mov r1, r0		; EINTR = 4
	movi r0, SYS_exit
	syscall
`, user())
	status := f.runToExit(p)
	if ok, code := kernel.WIfExited(status); !ok || code != int(kernel.EINTR) {
		t.Fatalf("status = %#x, want pause -> EINTR", status)
	}
}

func TestJobControlStopAndContinue(t *testing.T) {
	f := boot(t)
	p := f.spawn("jc", spinForever, user())
	f.K.Run(5)
	f.K.PostSignal(p, types.SIGSTOP)
	f.K.Run(5)
	l := p.Rep()
	if !l.Stopped() {
		t.Fatal("SIGSTOP did not stop the process")
	}
	if why, what := l.Why(); why != kernel.WhyJobControl || what != types.SIGSTOP {
		t.Fatalf("why=%v what=%d", why, what)
	}
	if info := p.PSInfo(); info.State != 'T' {
		t.Fatalf("ps state = %c, want T", info.State)
	}
	// A /proc run directive cannot release a job-control stop...
	if err := f.K.RunLWP(l, kernel.RunFlags{}); err == nil {
		t.Fatal("RunLWP should fail: job-control stop is not a /proc stop")
	}
	// ...only SIGCONT can.
	f.K.PostSignal(p, types.SIGCONT)
	f.K.Run(5)
	if l.Stopped() {
		t.Fatal("SIGCONT did not resume the process")
	}
	f.K.PostSignal(p, types.SIGKILL)
	f.runToExit(p)
}

func TestSIGCONTDiscardsPendingStops(t *testing.T) {
	f := boot(t)
	p := f.spawn("jc2", spinForever, user())
	f.K.Run(5)
	// Stop it, then queue another stop signal while stopped, then CONT.
	f.K.PostSignal(p, types.SIGSTOP)
	f.K.Run(5)
	f.K.PostSignal(p, types.SIGTSTP)
	f.K.PostSignal(p, types.SIGCONT)
	f.K.Run(10)
	if p.Rep().Stopped() {
		t.Fatal("pending stop signal should have been discarded by SIGCONT")
	}
	f.K.PostSignal(p, types.SIGKILL)
	f.runToExit(p)
}

func TestStopSignalDiscardsPendingCont(t *testing.T) {
	f := boot(t)
	p := f.spawn("jc3", spinForever, user())
	f.K.Run(5)
	f.K.PostSignal(p, types.SIGSTOP)
	f.K.Run(5)
	if !p.Rep().Stopped() {
		t.Fatal("not stopped")
	}
	f.K.PostSignal(p, types.SIGKILL)
	f.runToExit(p)
}

func TestSignalDuringSleepEINTR(t *testing.T) {
	f := boot(t)
	// Reading an empty pipe sleeps; a caught signal interrupts with EINTR.
	p := f.spawn("eintr", `
.entry main
handler:
	movi r0, SYS_sigreturn
	syscall
main:
	movi r0, SYS_signal
	movi r1, SIGUSR1
	la r2, handler
	syscall
	movi r0, SYS_pipe
	syscall
	mov r6, r0
	movi r0, SYS_read	; blocks forever (no writer data)
	mov r1, r6
	la r2, buf
	movi r3, 1
	syscall			; -> EINTR
	mov r1, r0
	movi r0, SYS_exit
	syscall
.data
buf:	.space 4
`, user())
	// Let it reach the sleeping read.
	err := f.K.RunUntil(func() bool {
		l := p.Rep()
		return l != nil && l.Asleep()
	}, 100000)
	if err != nil {
		t.Fatalf("never slept: %v", err)
	}
	f.K.PostSignal(p, types.SIGUSR1)
	status := f.runToExit(p)
	if ok, code := kernel.WIfExited(status); !ok || code != int(kernel.EINTR) {
		t.Fatalf("status = %#x, want EINTR", status)
	}
}

func TestSIGPIPE(t *testing.T) {
	f := boot(t)
	p := f.spawn("pipekill", `
	movi r0, SYS_pipe
	syscall
	mov r6, r0
	mov r7, r1
	movi r0, SYS_close	; close the read end
	mov r1, r6
	syscall
	movi r0, SYS_write	; write on a pipe with no one to read it
	mov r1, r7
	la r2, msg
	movi r3, 1
	syscall
loop:	jmp loop
.data
msg:	.ascii "x"
`, user())
	status := f.runToExit(p)
	if ok, sig, _ := kernel.WIfSignaled(status); !ok || sig != types.SIGPIPE {
		t.Fatalf("status = %#x, want SIGPIPE death", status)
	}
}

func TestSIGCHLDIgnoreAutoReaps(t *testing.T) {
	f := boot(t)
	p := f.spawn("autoreap", `
	movi r0, SYS_signal
	movi r1, SIGCHLD
	movi r2, 1		; SIG_IGN
	syscall
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_exit
	movi r1, 0
	syscall
parent:
loop:	jmp parent
`, user())
	err := f.K.RunUntil(func() bool {
		// The child should exist briefly then be auto-reaped.
		count := 0
		for _, q := range f.K.Procs() {
			if q.Parent == p {
				count++
			}
		}
		return p.Alive() && count == 0 && p.Kernel().Now() > 100
	}, 100000)
	if err != nil {
		t.Fatalf("child not auto-reaped: %v", err)
	}
	f.K.PostSignal(p, types.SIGKILL)
	f.runToExit(p)
}
