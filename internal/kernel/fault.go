package kernel

import "repro/internal/fault"

// Fault-injection sites for the kernel proper. Each guards a resource
// acquisition the paper's error-return semantics depend on: a refused
// acquisition must come back to the calling process as a plain errno
// (EAGAIN, ENOMEM, EMFILE, ENFILE) with no partially-created state left in
// the process table or any descriptor table.
var (
	siteFaultFork = fault.Register("kernel.fork") // proc-slot allocation in fork/vfork
	siteFaultExec = fault.Register("kernel.exec") // exec image segment setup
	siteFaultFD   = fault.Register("kernel.fd")   // file-descriptor allocation
	siteFaultPipe = fault.Register("kernel.pipe") // pipe creation
)
