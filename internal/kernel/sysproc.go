package kernel

import (
	"repro/internal/ktrace"
	"repro/internal/mem"
	"repro/internal/types"
	"repro/internal/vfs"
)

// --- exit / wait ---

func sysExit(k *Kernel, l *LWP) sysResult {
	k.exitProc(l.Proc, statusExited(int(l.sysArgs[0])))
	return sysResult{NoReturn: true}
}

// exitProc terminates a process: the exit(2) path, also reached from psig
// for fatal signals.
func (k *Kernel) exitProc(p *Proc, status int) {
	if !p.Alive() {
		return
	}
	k.tracef("pid %d exit status %#x", p.Pid, status)
	if k.ktEnabled(p) {
		k.ktExit(p, status)
	}
	p.setState(PZombie)
	p.ExitStatus = status
	k.tableRev.Add(1) // liveness changed: snapshots taken before this are stale
	for _, l := range p.LWPs {
		l.forgetSleep()
		l.setSchedState(LZombie)
		l.procClaim, l.jobClaim, l.ptraceClaim = false, false, false
	}
	for _, f := range p.fds {
		f.Close()
	}
	p.fds = map[int]*vfs.File{}
	k.finishExit(p)
}

// finishExit handles the relationships: address space, vfork, children,
// parent notification.
func (k *Kernel) finishExit(p *Proc) {
	if p.AS != nil {
		p.AS.Unref()
		p.AS = nil
	}
	// A vfork child that exits without exec releases the borrowed space.
	if p.borrowsAS {
		p.borrowsAS = false
		k.wakeAll(&p.vforkQ)
	}
	// Reparent children to init. Reparented zombies are reaped immediately,
	// in the classic style of init.
	newParent := k.initProc
	if newParent == p || (newParent != nil && !newParent.Alive()) {
		newParent = nil
	}
	kids := p.Kids
	p.Kids = nil
	for _, kid := range kids {
		kid.Parent = newParent
		if newParent != nil {
			kid.ppid.Store(int32(newParent.Pid))
			newParent.Kids = append(newParent.Kids, kid)
		} else {
			kid.ppid.Store(0)
		}
		if kid.Zombie() {
			k.reap(kid)
		}
	}
	// Notify the parent. The disposition read and the post are
	// cross-process: take the parent's lock under the global lock.
	if p.Parent != nil && p.Parent.Alive() {
		parent := p.Parent
		parent.Lock()
		ignored := parent.Actions[types.SIGCHLD].Handler == SigIGN
		if ignored || parent == k.initProc && !parentWaits(parent) {
			parent.Unlock()
			// SIGCHLD ignored: children do not become zombies.
			k.reap(p)
		} else {
			k.PostSignal(parent, types.SIGCHLD)
			parent.Unlock()
			k.wakeAll(&parent.waitq)
		}
	} else {
		k.reap(p)
	}
}

// parentWaits reports whether any LWP of the parent is blocked in wait(2).
func parentWaits(p *Proc) bool {
	for _, l := range p.LWPs {
		if l.sleeping && l.InSyscall() == SysWait {
			return true
		}
	}
	return false
}

// reap removes a zombie from the process table.
func (k *Kernel) reap(p *Proc) {
	if p.State() != PZombie {
		return
	}
	p.setState(PGone)
	if p.Parent != nil {
		kids := p.Parent.Kids[:0]
		for _, q := range p.Parent.Kids {
			if q != p {
				kids = append(kids, q)
			}
		}
		p.Parent.Kids = kids
	}
	k.removeProc(p)
}

func sysWait(k *Kernel, l *LWP) sysResult {
	p := l.Proc
	if len(p.Kids) == 0 {
		return rerr(ECHILD)
	}
	// Zombies first.
	for _, c := range p.Kids {
		if c.Zombie() {
			pid, status := c.Pid, c.ExitStatus
			k.reap(c)
			if addr := l.sysArgs[0]; addr != 0 {
				if e := k.copyoutWord(l, addr, uint32(status)); e != 0 {
					return rerr(e)
				}
			}
			return ret2(uint32(pid), uint32(status))
		}
	}
	// Stop reports (ptrace and job control).
	for _, c := range p.Kids {
		for _, cl := range c.LWPs {
			if cl.waitReport != 0 {
				status := cl.waitReport
				cl.waitReport = 0
				if addr := l.sysArgs[0]; addr != 0 {
					if e := k.copyoutWord(l, addr, uint32(status)); e != 0 {
						return rerr(e)
					}
				}
				return ret2(uint32(c.Pid), uint32(status))
			}
		}
	}
	return rsleep(&p.waitq)
}

// --- fork / vfork ---

func sysFork(k *Kernel, l *LWP) sysResult {
	child := k.forkProc(l, false)
	if child == nil {
		return rerr(EAGAIN)
	}
	return ret2(uint32(child.Pid), 0)
}

func sysVfork(k *Kernel, l *LWP) sysResult {
	if l.vforkChild == nil {
		child := k.forkProc(l, true)
		if child == nil {
			return rerr(EAGAIN)
		}
		l.vforkChild = child
		return rsleep(&child.vforkQ)
	}
	// Woken: the child has exec'd or exited.
	child := l.vforkChild
	if child.borrowsAS {
		return rsleep(&child.vforkQ)
	}
	l.vforkChild = nil
	return ret2(uint32(child.Pid), 0)
}

// forkProc creates the child process. The child begins life at the exit of
// the fork system call (with return value 0), so with exit-from-fork traced
// — the inherit-on-fork arrangement — both parent and child stop on exit
// from fork and the child has not executed any user-level code, giving the
// debugger complete control.
func (k *Kernel) forkProc(l *LWP, vfork bool) *Proc {
	p := l.Proc
	// The proc-slot check precedes every allocation: a refused fork leaves
	// no pid, address space, or descriptor reference behind.
	if siteFaultFork.Hit(p.Pid) {
		return nil
	}
	child := &Proc{
		k:         k,
		Pid:       k.allocPid(),
		Parent:    p,
		Pgrp:      p.Pgrp,
		Sid:       p.Sid,
		Cred:      p.Cred.Clone(),
		Comm:      p.Comm,
		Args:      append([]string(nil), p.Args...),
		CWD:       p.CWD,
		Umask:     p.Umask,
		Nice:      p.Nice,
		Start:     k.Now(),
		fds:       map[int]*vfs.File{},
		ExecVN:    p.ExecVN,
		ExecPath:  p.ExecPath,
		ImageSyms: p.ImageSyms,
		Actions:   p.Actions,
	}
	if vfork {
		child.AS = p.AS
		child.AS.Ref()
		child.borrowsAS = true
	} else {
		child.AS = p.AS.Dup()
		// Attribute the copy to the child so pid-scoped fault plans can
		// target its pages; a vfork child borrows the parent's space and
		// keeps the parent's attribution.
		child.AS.SetOwner(child.Pid)
	}
	// Duplicate the descriptor table: entries share open file descriptions.
	for fd, f := range p.fds {
		f.IncRef()
		child.fds[fd] = f
	}
	// The child inherits the parent's tracing flags if inherit-on-fork is
	// set; otherwise it starts with all tracing flags cleared.
	if p.Trace.InhFork {
		child.Trace.Sigs = p.Trace.Sigs
		child.Trace.Faults = p.Trace.Faults
		child.Trace.Entry = p.Trace.Entry
		child.Trace.Exit = p.Trace.Exit
		child.Trace.InhFork = true
		child.Trace.RunLC = p.Trace.RunLC
	}
	// Event tracing is always inherited: a traced parent's children are
	// traced from birth, so a tool following forks misses nothing.
	if p.KT != nil {
		child.KT = ktrace.NewRing(p.KT.Cap())
	}
	cl := child.newLWP()
	cl.CPU.Regs = l.CPU.Regs
	cl.CPU.FP = l.CPU.FP
	cl.SigHold = l.SigHold
	// The child resumes at the exit of fork with return value 0.
	cl.phase = phSysExit
	cl.sysNum = l.sysNum
	cl.sysEntryDone = true
	cl.sysRet, cl.sysR1, cl.sysErr = 0, 1, 0
	// With exit-from-fork traced, the child's stop is established here
	// rather than at its first scheduling: "both parent and child stop on
	// exit from fork" must be simultaneously observable. Under SMP the
	// child would otherwise not be queued (and so not stopped) until a
	// pass after the debugger has already seen the parent's stop.
	if child.Trace.Exit.Has(cl.sysNum) {
		cl.storeSysResult()
		cl.sysStored = true
		cl.sysExitDone = true
		cl.stopEvent(WhySysExit, cl.sysNum)
	}
	p.Kids = append(p.Kids, child)
	p.Usage.ForkedKids++
	k.addProc(child)
	if k.ktEnabled(p) {
		k.ktFork(p, child.Pid)
	}
	k.tracef("pid %d forked pid %d (vfork=%v)", p.Pid, child.Pid, child.borrowsAS)
	return child
}

// --- identity and credentials ---

func sysGetpid(k *Kernel, l *LWP) sysResult {
	// The cached ppid (not Parent.Pid) keeps this call process-local in SMP
	// mode: another CPU may be reparenting our orphaned siblings under the
	// big lock while we read.
	return ret2(uint32(l.Proc.Pid), uint32(l.Proc.PPid()))
}

func sysGetuid(k *Kernel, l *LWP) sysResult {
	return ret2(uint32(l.Proc.Cred.RUID), uint32(l.Proc.Cred.EUID))
}

func sysGetgid(k *Kernel, l *LWP) sysResult {
	return ret2(uint32(l.Proc.Cred.RGID), uint32(l.Proc.Cred.EGID))
}

func sysSetuid(k *Kernel, l *LWP) sysResult {
	p := l.Proc
	uid := int(l.sysArgs[0])
	switch {
	case p.Cred.IsSuper():
		p.Cred.RUID, p.Cred.EUID, p.Cred.SUID = uid, uid, uid
	case uid == p.Cred.RUID || uid == p.Cred.SUID:
		p.Cred.EUID = uid
	default:
		return rerr(EPERM)
	}
	return ret(0)
}

func sysSetgid(k *Kernel, l *LWP) sysResult {
	p := l.Proc
	gid := int(l.sysArgs[0])
	switch {
	case p.Cred.IsSuper():
		p.Cred.RGID, p.Cred.EGID, p.Cred.SGID = gid, gid, gid
	case gid == p.Cred.RGID || gid == p.Cred.SGID:
		p.Cred.EGID = gid
	default:
		return rerr(EPERM)
	}
	return ret(0)
}

func sysGetpgrp(k *Kernel, l *LWP) sysResult { return ret(uint32(l.Proc.Pgrp)) }

func sysSetpgrp(k *Kernel, l *LWP) sysResult {
	l.Proc.Pgrp = l.Proc.Pid
	return ret(uint32(l.Proc.Pgrp))
}

func sysNice(k *Kernel, l *LWP) sysResult {
	p := l.Proc
	incr := int(int32(l.sysArgs[0]))
	if incr < 0 && !p.Cred.IsSuper() {
		return rerr(EPERM)
	}
	p.Nice += incr
	if p.Nice < -20 {
		p.Nice = -20
	}
	if p.Nice > 19 {
		p.Nice = 19
	}
	return ret(uint32(p.Nice + 20))
}

func sysUmask(k *Kernel, l *LWP) sysResult {
	old := l.Proc.Umask
	l.Proc.Umask = uint16(l.sysArgs[0]) & 0o777
	return ret(uint32(old))
}

// --- time and timers ---

func sysTime(k *Kernel, l *LWP) sysResult { return ret(uint32(k.Now())) }

func sysTimes(k *Kernel, l *LWP) sysResult {
	u := l.Proc.Usage
	return ret2(uint32(u.UserTicks), uint32(u.SysTicks))
}

func sysAlarm(k *Kernel, l *LWP) sysResult {
	p := l.Proc
	now := k.Now()
	var remaining int64
	if at := p.alarmAt.Load(); at > now {
		remaining = at - now
	}
	ticks := int64(l.sysArgs[0])
	if ticks == 0 {
		p.alarmAt.Store(0)
	} else {
		p.alarmAt.Store(now + ticks)
	}
	return ret(uint32(remaining))
}

func sysPause(k *Kernel, l *LWP) sysResult {
	// pause() returns only via a caught signal's EINTR.
	return rsleep(&l.Proc.pauseQ)
}

func sysSleep(k *Kernel, l *LWP) sysResult {
	if l.sleepDeadline == 0 {
		l.sleepDeadline = k.Now() + int64(l.sysArgs[0])
	}
	if k.Now() >= l.sleepDeadline {
		l.sleepDeadline = 0
		return ret(0)
	}
	return rsleep(&k.clockQ)
}

func sysYield(k *Kernel, l *LWP) sysResult { return ret(0) }

// --- signals ---

func sysKill(k *Kernel, l *LWP) sysResult {
	pid := int(int32(l.sysArgs[0]))
	sig := int(l.sysArgs[1])
	if sig < 0 || sig > types.MaxSig {
		return rerr(EINVAL)
	}
	p := l.Proc
	// Cross-process access: the target's credentials and usage are written
	// by its own process-local calls under only its process lock, so the
	// permission check and the post take global + target lock.
	send := func(t *Proc) Errno {
		t.Lock()
		defer t.Unlock()
		if !p.Cred.IsSuper() && p.Cred.RUID != t.Cred.RUID && p.Cred.EUID != t.Cred.RUID {
			return EPERM
		}
		if sig != 0 {
			k.PostSignal(t, sig)
		}
		return 0
	}
	if pid > 0 {
		t := k.Proc(pid)
		if t == nil || !t.Alive() {
			return rerr(ESRCH)
		}
		if e := send(t); e != 0 {
			return rerr(e)
		}
		return ret(0)
	}
	// pid 0: the sender's process group. The membership read takes the
	// target lock too (setpgrp is process-local).
	found := false
	for _, t := range k.Procs() {
		if !t.Alive() || t.System {
			continue
		}
		t.Lock()
		match := t.Pgrp == p.Pgrp
		t.Unlock()
		if match {
			found = true
			send(t)
		}
	}
	if !found {
		return rerr(ESRCH)
	}
	return ret(0)
}

func sysSignal(k *Kernel, l *LWP) sysResult {
	sig := int(l.sysArgs[0])
	handler := l.sysArgs[1]
	if sig < 1 || sig > types.MaxSig || sig == types.SIGKILL || sig == types.SIGSTOP {
		return rerr(EINVAL)
	}
	p := l.Proc
	old := p.Actions[sig].Handler
	p.Actions[sig] = SigAction{Handler: handler}
	return ret(old)
}

// sigprocmask how values.
const (
	SigBlock   = 1
	SigUnblock = 2
	SigSetMask = 3
)

func sysSigmask(k *Kernel, l *LWP) sysResult {
	how := int(l.sysArgs[0])
	set := types.SigSet{uint64(l.sysArgs[1]), uint64(l.sysArgs[2])}
	old := l.SigHold
	switch how {
	case SigBlock:
		l.SigHold = l.SigHold.Union(set)
	case SigUnblock:
		l.SigHold = l.SigHold.Minus(set)
	case SigSetMask:
		l.SigHold = set
	default:
		return rerr(EINVAL)
	}
	// SIGKILL and SIGSTOP cannot be held.
	l.SigHold.Del(types.SIGKILL)
	l.SigHold.Del(types.SIGSTOP)
	return ret2(uint32(old[0]), uint32(old[1]))
}

func sysSigsusp(k *Kernel, l *LWP) sysResult {
	if l.suspSaved == nil {
		saved := l.SigHold
		l.suspSaved = &saved
		l.SigHold = types.SigSet{uint64(l.sysArgs[0]), uint64(l.sysArgs[1])}
		l.SigHold.Del(types.SIGKILL)
		l.SigHold.Del(types.SIGSTOP)
	}
	return rsleep(&l.Proc.pauseQ)
}

func sysSigreturn(k *Kernel, l *LWP) sysResult {
	if e := k.sigreturnFrame(l); e != 0 {
		k.exitProc(l.Proc, statusSignaled(types.SIGSEGV, true))
		return sysResult{NoReturn: true}
	}
	return sysResult{SkipStore: true}
}

// --- memory ---

func sysBrk(k *Kernel, l *LWP) sysResult {
	if err := l.CPU.AS.Brk(l.sysArgs[0]); err != nil {
		return rerr(ENOMEM)
	}
	k.shootdown(l.CPU.AS)
	return ret(0)
}

// mmap flag bits (simplified: anonymous memory only).
const (
	MapShared = 1
	MapFixed  = 0x10
)

func sysMmap(k *Kernel, l *LWP) sysResult {
	addr, length := l.sysArgs[0], l.sysArgs[1]
	prot := mem.Prot(l.sysArgs[2] & 7)
	flags := l.sysArgs[3]
	if length == 0 {
		return rerr(EINVAL)
	}
	args := mem.MapArgs{
		Base: addr, Len: length, Prot: prot,
		Fixed: flags&MapFixed != 0, Kind: mem.KindOther,
	}
	if flags&MapShared != 0 {
		args.Shared = true
		args.Obj = mem.NewAnon("[shm]", int(l.CPU.AS.PageSize()))
	}
	if args.Base == 0 && !args.Fixed {
		args.Base = 0x40000000 // mmap arena hint
	}
	seg, err := l.CPU.AS.Map(args)
	if err != nil {
		return rerr(ENOMEM)
	}
	k.shootdown(l.CPU.AS)
	return ret(seg.Base)
}

func sysMunmap(k *Kernel, l *LWP) sysResult {
	if err := l.CPU.AS.Unmap(l.sysArgs[0], l.sysArgs[1]); err != nil {
		return rerr(EINVAL)
	}
	k.shootdown(l.CPU.AS)
	return ret(0)
}

func sysMprotect(k *Kernel, l *LWP) sysResult {
	if err := l.CPU.AS.Mprotect(l.sysArgs[0], l.sysArgs[1], mem.Prot(l.sysArgs[2]&7)); err != nil {
		return rerr(EACCES)
	}
	k.shootdown(l.CPU.AS)
	return ret(0)
}

// --- LWPs (threads of control) ---

func sysLwpCreate(k *Kernel, l *LWP) sysResult {
	entry, stackTop := l.sysArgs[0], l.sysArgs[1]
	if stackTop%4 != 0 {
		return rerr(EINVAL)
	}
	nl := l.Proc.newLWP()
	nl.CPU.Regs.PC = entry
	nl.CPU.Regs.SP = stackTop
	nl.phase = phUser
	k.tracef("pid %d created lwp %d", l.Proc.Pid, nl.ID)
	return ret(uint32(nl.ID))
}

func sysLwpExit(k *Kernel, l *LWP) sysResult {
	l.setSchedState(LZombie)
	if len(l.Proc.LiveLWPs()) == 0 {
		k.exitProc(l.Proc, statusExited(0))
	}
	return sysResult{NoReturn: true}
}

func sysLwpSelf(k *Kernel, l *LWP) sysResult { return ret(uint32(l.ID)) }
