// Package kernel implements the UNIX System V process model the paper's
// /proc interface presents: processes with address spaces and credentials,
// threads of control (LWPs) with register contexts, fork/vfork/exec/exit/
// wait, a full signal machinery reproducing the issig()/psig() logic of the
// paper's Figure 4, machine-fault handling, system-call dispatch with entry
// and exit stop points (Figure 3), job control, the legacy ptrace(2)
// mechanism that /proc supersedes, and the process-control operations /proc
// is built from (directed stops, traced events of interest, run directives).
//
// The kernel is a deterministic cooperative simulation: target processes
// execute on virtual CPUs, one Step at a time, on the caller's goroutine.
// Controlling programs are ordinary Go code that calls the control API
// (typically through the /proc file system) and drives the scheduler when it
// needs to wait. Nothing here is goroutine-safe by design; determinism is a
// feature for testing the paper's control scenarios.
package kernel

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/ktrace"
	"repro/internal/mem"
	"repro/internal/vfs"
)

// Config tunes a kernel instance.
type Config struct {
	PageSize int // address-space page size (default mem.DefaultPageSize)
	Quantum  int // instructions per scheduling quantum (default 50)
	// NoTLB disables the vCPU translation fast path on every LWP: the
	// reference interpreter for differential testing. The REPRO_NOTLB
	// environment variable forces it for a whole test or benchmark run.
	NoTLB bool
	// NCPU is the number of scheduler CPUs. 0 or 1 selects the
	// deterministic single-threaded scheduler (the default); above 1 each
	// Step fans the run queues out to NCPU worker goroutines with
	// work-stealing (see smp.go). The REPRO_NCPU environment variable
	// supplies a value for a whole run when the config leaves it 0 — an
	// explicit setting wins, so the bit-for-bit suites can pin the
	// deterministic scheduler regardless of the environment.
	NCPU int
}

// pidShards is the pid-map shard count (a power of two so the shard index
// is a mask). Sharding keeps pid lookups contention-free when many CPUs
// fork and look up concurrently.
const pidShards = 16

// pidShard is one shard of the pid map.
type pidShard struct {
	mu sync.RWMutex
	m  map[int]*Proc
}

// Kernel is one simulated system.
type Kernel struct {
	NS       *vfs.NS
	PageSize int
	Quantum  int
	NoTLB    bool

	// clock is the simulated time in deterministic mode: a plain counter
	// bumped per instruction on the hot path. In SMP mode time lives in
	// clockA instead (workers fold their tick deltas in atomically, under
	// only the per-process lock); Now() reads whichever applies, so the
	// deterministic scheduler pays no atomic per instruction.
	clock   int64
	clockA  atomic.Int64
	pids    [pidShards]pidShard // sharded pid map
	order   []*Proc             // scheduling and readdir order
	orderMu sync.RWMutex        // guards order for host-side readers (Procs)
	nextPid int
	rrIndex  int           // round-robin position (deterministic scheduler)
	tableRev atomic.Uint64 // bumped on every process-table change (fork, exit, reap)

	// SMP mode (Config.NCPU > 1). nil smp means the deterministic
	// single-threaded scheduler and none of the locks below are ever taken.
	//
	// The locking hierarchy (outermost first; see INTERNALS.md for the
	// field-by-field table):
	//
	//   1. global — the narrow global kernel lock: fork/exit/reap, exec,
	//      wait, cross-process signal generation, stop/run control,
	//      ptrace, /proc control operations, ktrace emission, and the
	//      Parent/Kids/order relations. Formerly the "big kernel lock";
	//      process-local system calls no longer take it.
	//   2. Proc.mu — one process's own state: fd table, credentials,
	//      signal dispositions and masks, usage counters, address-space
	//      operations. A global holder may lock any number of Proc.mu
	//      (the only sanctioned way to hold two); a Proc.mu holder must
	//      not take global without dropping the proc lock first
	//      (kcpu.lockGlobal implements that escalation).
	//   3. sleepMu — the sleep-queue/wait-channel lock: waitq sleeper
	//      lists and LWP-list membership, so the run-queue claim path can
	//      collect runnable LWPs without the global lock.
	//   4. runQueue.mu — one per-CPU run queue's membership and cursor.
	//
	// Rank-ordered acquisition is asserted in lockdebug builds
	// (-tags lockdebug, lockdebug_on.go).
	smp     *smpState
	global  sync.Mutex
	sleepMu sync.Mutex

	initProc *Proc
	clockQ   waitq // timed sleeps (sleep(2)) block here
	// Trace, if set, receives a line for every process-model event of
	// note (stops, signals, exits); used by tests and verbose tools.
	Trace func(format string, args ...interface{})

	// Event tracing (internal/ktrace). KT is the optional kernel-wide
	// ring; KTDefaultCap, when non-zero, gives every new process a ring of
	// that capacity; ktStats accumulates the kernel-wide counters.
	KT           *ktrace.Ring
	KTDefaultCap int
	ktStats      ktrace.Stats
	// KTTap, if set, observes every emitted trace event before it is
	// appended to any ring (so the Seq field is not yet stamped). Unlike
	// the bounded rings it never drops, which is what lets the record/
	// replay subsystem capture and verify the complete stream. Only
	// consulted on the traced path; costs nothing when tracing is off.
	KTTap func(e *ktrace.Event)
}

// New creates a kernel over a name space. The conventional system processes
// 0 (sched) and 2 (pageout) are created immediately; like the paper's Figure
// 1 shows, they have no user-level address space so their /proc sizes are 0.
func New(ns *vfs.NS, cfg Config) *Kernel {
	if cfg.PageSize <= 0 {
		cfg.PageSize = mem.DefaultPageSize
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 50
	}
	if os.Getenv("REPRO_NOTLB") != "" {
		cfg.NoTLB = true
	}
	if cfg.NCPU == 0 {
		if v := os.Getenv("REPRO_NCPU"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				cfg.NCPU = n
			}
		}
	}
	k := &Kernel{
		NS:       ns,
		PageSize: cfg.PageSize,
		Quantum:  cfg.Quantum,
		NoTLB:    cfg.NoTLB,
	}
	for i := range k.pids {
		k.pids[i].m = make(map[int]*Proc)
	}
	if cfg.NCPU > 1 {
		k.smp = newSMP(k, cfg.NCPU)
	}
	k.newSystemProc(0, "sched")
	k.nextPid = 1 // init will be pid 1 when spawned
	return k
}

func (k *Kernel) tracef(format string, args ...interface{}) {
	if k.Trace != nil {
		k.Trace(format, args...)
	}
}

// Now returns the simulated clock in ticks.
func (k *Kernel) Now() int64 {
	if k.smp != nil {
		return k.clockA.Load()
	}
	return k.clock
}

// tickClock advances the clock by one, in whichever representation applies.
func (k *Kernel) tickClock() {
	if k.smp != nil {
		k.clockA.Add(1)
	} else {
		k.clock++
	}
}

// Tick advances the clock without running anything (timers still fire).
func (k *Kernel) Tick() {
	k.GlobalLock()
	k.tickClock()
	k.checkTimers()
	k.GlobalUnlock()
}

// GlobalLock acquires the global kernel lock. It is a no-op in
// deterministic mode, where nothing is concurrent by design; host-side
// callers (procfs control operations, ptrace controllers) use it to
// serialize against the SMP workers.
func (k *Kernel) GlobalLock() {
	if k.smp != nil {
		lockOrderAcquire(rankGlobal)
		k.global.Lock()
	}
}

// GlobalUnlock releases the global kernel lock (no-op in deterministic mode).
func (k *Kernel) GlobalUnlock() {
	if k.smp != nil {
		k.global.Unlock()
		lockOrderRelease(rankGlobal)
	}
}

// Shutdown retires the persistent SMP worker goroutines and ends the
// kernel's life: after it returns, Step panics. Deterministic kernels have
// no workers and Shutdown is a no-op. It is idempotent and safe to call
// from multiple goroutines — checkpoint/replay tears kernels down
// repeatedly, and a System.Close may race a deferred cleanup.
func (k *Kernel) Shutdown() {
	if k.smp == nil {
		return
	}
	s := k.smp
	s.shutMu.Lock()
	defer s.shutMu.Unlock()
	if s.down {
		return
	}
	s.down = true
	if s.started {
		s.started = false
		close(s.work)
	}
}

// pidShardOf returns the shard holding pid.
func (k *Kernel) pidShardOf(pid int) *pidShard {
	return &k.pids[uint(pid)&(pidShards-1)]
}

// Proc looks up a process by pid; nil if no such process.
func (k *Kernel) Proc(pid int) *Proc {
	sh := k.pidShardOf(pid)
	sh.mu.RLock()
	p := sh.m[pid]
	sh.mu.RUnlock()
	return p
}

// pidCount returns the number of pid-map entries across all shards.
func (k *Kernel) pidCount() int {
	n := 0
	for i := range k.pids {
		sh := &k.pids[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Procs returns all processes in creation order (including zombies).
func (k *Kernel) Procs() []*Proc {
	k.orderMu.RLock()
	out := append([]*Proc(nil), k.order...)
	k.orderMu.RUnlock()
	return out
}

// TableRev is the process-table revision: it advances whenever the set of
// processes (or their liveness) changes — fork, exit, reap. A caller holding
// a table snapshot compares revisions to detect churn since it was taken.
func (k *Kernel) TableRev() uint64 { return k.tableRev.Load() }

// InitProc returns process 1, if it has been spawned.
func (k *Kernel) InitProc() *Proc { return k.initProc }

func (k *Kernel) allocPid() int {
	for {
		pid := k.nextPid
		k.nextPid++
		if k.Proc(pid) == nil {
			return pid
		}
	}
}

func (k *Kernel) addProc(p *Proc) {
	if p.KT == nil && k.KTDefaultCap > 0 {
		p.KT = ktrace.NewRing(k.KTDefaultCap)
	}
	if p.Parent != nil {
		p.ppid.Store(int32(p.Parent.Pid))
	}
	sh := k.pidShardOf(p.Pid)
	sh.mu.Lock()
	sh.m[p.Pid] = p
	sh.mu.Unlock()
	k.orderMu.Lock()
	k.order = append(k.order, p)
	k.orderMu.Unlock()
	k.tableRev.Add(1)
	if p.Pid == 1 {
		k.initProc = p
	}
	k.noteSchedulable(p)
}

// removeProc drops a fully-reaped process from the tables.
func (k *Kernel) removeProc(p *Proc) {
	k.tableRev.Add(1)
	sh := k.pidShardOf(p.Pid)
	sh.mu.Lock()
	delete(sh.m, p.Pid)
	sh.mu.Unlock()
	k.orderMu.Lock()
	for i, q := range k.order {
		if q == p {
			k.order = append(k.order[:i], k.order[i+1:]...)
			break
		}
	}
	k.orderMu.Unlock()
}

// newSystemProc creates a kernel-internal process with no address space.
func (k *Kernel) newSystemProc(pid int, name string) *Proc {
	p := &Proc{
		k:      k,
		Pid:    pid,
		Comm:   name,
		Args:   []string{name},
		System: true,
		fds:    map[int]*vfs.File{},
		CWD:    "/",
		Start:  k.Now(),
	}
	k.addProc(p)
	return p
}

// BootSystemProcs creates the conventional pid-2 pageout daemon (pid 0 is
// created by New). Call after init has been spawned so pid numbering matches
// historical systems.
func (k *Kernel) BootSystemProcs() {
	if k.Proc(2) == nil {
		k.newSystemProc(2, "pageout")
		if k.nextPid <= 2 {
			k.nextPid = 3
		}
	}
}

// ErrNoProcess is returned by control operations on exited processes.
var ErrNoProcess = errors.New("kernel: no such process")

// ErrDeadlock is returned when the scheduler is asked to wait for a
// condition that no runnable process can ever satisfy.
var ErrDeadlock = errors.New("kernel: deadlock: nothing runnable")

// Step runs one scheduling pass: every runnable LWP gets up to one quantum.
// It reports whether any instruction was executed (false means the system is
// fully idle: everything blocked, stopped or exited). With Config.NCPU > 1
// the pass fans out to the SMP scheduler's worker goroutines (smp.go);
// otherwise it is the deterministic round-robin below.
func (k *Kernel) Step() bool {
	if k.smp != nil {
		return k.stepSMP()
	}
	k.clock++
	k.checkTimers()
	ran := false
	n := len(k.order)
	for i := 0; i < n; i++ {
		k.rrIndex = (k.rrIndex + 1) % max(1, len(k.order))
		if k.rrIndex >= len(k.order) {
			k.rrIndex = 0
		}
		p := k.order[k.rrIndex]
		if !p.Alive() || p.System {
			continue
		}
		for _, l := range p.LWPs {
			if l.Runnable() {
				if k.runLWP(l, k.Quantum) {
					ran = true
				}
			}
		}
	}
	return ran
}

// Run steps the scheduler until the system is idle or maxSteps have been
// taken; it returns the number of steps.
func (k *Kernel) Run(maxSteps int) int {
	for i := 0; i < maxSteps; i++ {
		if !k.Step() {
			return i
		}
	}
	return maxSteps
}

// RunUntil steps the scheduler until cond is true. It fails with ErrDeadlock
// if the system goes idle first, and with a timeout error after maxSteps.
func (k *Kernel) RunUntil(cond func() bool, maxSteps int) error {
	for i := 0; i < maxSteps; i++ {
		if cond() {
			return nil
		}
		if !k.Step() {
			if cond() {
				return nil
			}
			if !k.TimersPending() {
				return ErrDeadlock
			}
		}
	}
	if cond() {
		return nil
	}
	return fmt.Errorf("kernel: condition not reached in %d steps", maxSteps)
}

// checkTimers fires alarm(2) timers that have expired and wakes timed
// sleepers whose deadline has passed. Deterministic mode calls it bare; in
// SMP mode the caller holds the global lock (the pass prologue, Tick), and
// the per-process lock is taken around signal generation per the PostSignal
// contract.
func (k *Kernel) checkTimers() {
	now := k.Now()
	for _, p := range k.order {
		if !p.Alive() {
			continue
		}
		if at := p.alarmAt.Load(); at != 0 && now >= at {
			p.alarmAt.Store(0)
			p.Lock()
			k.PostSignal(p, sigALRM)
			p.Unlock()
		}
		for _, l := range p.LWPs {
			if l.sleeping && l.sleepQ == &k.clockQ && l.sleepDeadline != 0 && now >= l.sleepDeadline {
				l.wake()
			}
		}
	}
}

// TimersPending reports whether a future clock tick can unblock anything —
// an armed alarm or a timed sleep. It distinguishes "idle for now" from
// deadlock (Step advances the clock even when nothing runs, so pending
// timers always fire eventually).
func (k *Kernel) TimersPending() bool {
	k.GlobalLock()
	defer k.GlobalUnlock()
	for _, p := range k.order {
		if !p.Alive() {
			continue
		}
		if p.alarmAt.Load() != 0 {
			return true
		}
		for _, l := range p.LWPs {
			if l.sleeping && l.sleepDeadline != 0 {
				return true
			}
		}
	}
	return false
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
