package kernel

import (
	"sync"
	"sync/atomic"

	"repro/internal/ktrace"
	"repro/internal/mem"
	"repro/internal/types"
	"repro/internal/vcpu"
	"repro/internal/vfs"
)

// PState is the lifecycle state of a process.
type PState int

// Process states.
const (
	PAlive  PState = iota // has at least one live LWP (possibly stopped)
	PZombie               // exited, waiting to be reaped
	PGone                 // reaped; the struct lingers only in old references
)

// StopWhy explains why an LWP is stopped — the pr_why of prstatus_t.
type StopWhy int

// Stop reasons. The first five are "events of interest" (PR_ISTOP): the
// process is stopped on an event a controlling process asked about and
// awaits a run directive. WhyJobControl and WhyPtrace are the competing
// mechanisms the paper discusses.
const (
	WhyNone       StopWhy = iota
	WhyRequested          // directed to stop (PIOCSTOP / PCSTOP)
	WhySignalled          // stopped on receipt of a traced signal
	WhyFaulted            // stopped on a traced machine fault
	WhySysEntry           // stopped on entry to a traced system call
	WhySysExit            // stopped on exit from a traced system call
	WhyJobControl         // job-control stop (default action of stop signals)
	WhyPtrace             // stopped for the legacy ptrace mechanism
)

var whyNames = [...]string{"none", "requested", "signalled", "faulted",
	"sysentry", "sysexit", "jobcontrol", "ptrace"}

// String names the stop reason.
func (w StopWhy) String() string {
	if int(w) < len(whyNames) {
		return whyNames[w]
	}
	return "?"
}

// EventOfInterest reports whether the stop reason is a /proc event of
// interest (as opposed to the competing mechanisms).
func (w StopWhy) EventOfInterest() bool {
	return w == WhyRequested || w == WhySignalled || w == WhyFaulted ||
		w == WhySysEntry || w == WhySysExit
}

// phase is the position of an LWP in the kernel entry/exit cycle; the stop
// points of the paper's Figure 3 are transitions of this machine.
type phase int

const (
	phUser     phase = iota // executing user instructions
	phSysEntry              // trapped for a system call; entry stop point
	phSysRun                // executing the system call (may sleep)
	phSysExit               // storing results; exit stop point
	phRetUser               // returning to user level: issig()/psig()
	phFault                 // processing a machine fault; fault stop point
)

// waitq identifies a sleep channel; LWPs sleeping on it are woken together
// and retry their system call, in the classic "while (condition) sleep()"
// style the paper remarks on. In SMP mode the queue keeps its sleeper list
// under the kernel's sleep-queue lock (k.sleepMu), so wakeAll touches only
// the LWPs actually blocked on the channel instead of scanning the process
// table; the deterministic scheduler keeps the historical full scan, whose
// wake order the bit-for-bit suites pin.
type waitq struct {
	name     string
	sleepers []*LWP // SMP only; guarded by k.sleepMu
}

// SigAction is the disposition of one signal.
type SigAction struct {
	Handler uint32       // user handler address; 0 = SIG_DFL, 1 = SIG_IGN
	Mask    types.SigSet // additional signals held during the handler
}

// Handler sentinel values.
const (
	SigDFL = 0
	SigIGN = 1
)

// TraceState is the per-process /proc tracing state: the sets of traced
// signals, faults and system calls, and the mode flags.
type TraceState struct {
	Sigs    types.SigSet // signals that stop the process on receipt
	Faults  types.FltSet // machine faults that stop the process
	Entry   types.SysSet // system calls that stop the process at entry
	Exit    types.SysSet // system calls that stop the process at exit
	InhFork bool         // inherit-on-fork: children inherit tracing flags
	RunLC   bool         // run-on-last-close: clear and run on last writable close

	// Writers counts open writable /proc file descriptors; Gen is bumped
	// when a set-id exec invalidates them; Excl marks an O_EXCL writer.
	Writers int
	Gen     int
	Excl    bool
}

// Empty reports whether no tracing at all is in effect.
func (t *TraceState) Empty() bool {
	return t.Sigs.IsEmpty() && t.Faults.IsEmpty() && t.Entry.IsEmpty() &&
		t.Exit.IsEmpty() && !t.InhFork && !t.RunLC
}

// Usage accumulates resource usage for the PIOCUSAGE proposed extension.
type Usage struct {
	UserTicks  int64 // clock ticks executing user instructions
	SysTicks   int64 // clock ticks executing system calls
	Syscalls   int64 // system calls made
	Faults     int64 // machine faults incurred
	Signals    int64 // signals received
	ForkedKids int64 // children created
	VolCtx     int64 // voluntary context switches (sleeps)
	InvolCtx   int64 // involuntary context switches (quantum expiry)
}

// Proc is the system's record of one process — the paper's proc structure
// plus what SVR4 kept in the user area.
type Proc struct {
	k *Kernel

	// mu is the per-process lock, rank 2 in the hierarchy (below the
	// global lock, above the sleep-queue and run-queue locks). It guards
	// the state only the owning process's system calls and explicitly
	// locked host inspectors touch: the fd table, credentials, Pgrp,
	// Umask, Nice, CWD, signal dispositions/masks/pending set, and the
	// Usage counters (which the per-CPU tick flush folds in under this
	// lock alone — times/alarm never need the global lock on the hot
	// path). Never taken in deterministic mode; Lock/Unlock are no-ops
	// there. A holder of the global lock may take any number of Proc.mu;
	// a Proc.mu holder must never take the global lock or a second
	// Proc.mu directly (kcpu.lockGlobal drops and reacquires instead).
	mu sync.Mutex

	Pid    int
	Parent *Proc
	Kids   []*Proc
	Pgrp   int
	Sid    int
	Cred   types.Cred
	// SugidDirty marks a process that has done a set-id exec; /proc open
	// then requires super-user credentials.
	SugidDirty bool
	Comm       string
	Args       []string
	CWD        string
	Umask      uint16
	Nice       int
	Start      int64 // clock at creation
	System     bool  // pids 0 and 2: no user address space

	AS   *mem.AS
	LWPs []*LWP

	// state holds a PState. It is atomic because SMP workers check the
	// liveness of their claimed processes lock-free while a parent on
	// another CPU may reap a zombie (PZombie → PGone) under the big lock;
	// PAlive is the zero value so fresh Procs need no initialization.
	state      atomic.Int32
	ExitStatus int // wait(2) status encoding, valid when zombie

	fds map[int]*vfs.File
	// ExecVN is the vnode of the running executable (for PIOCOPENM with
	// offset 0 and for symbol lookup); ExecPath its name.
	ExecVN   vfs.Vnode
	ExecPath string
	// Image is the parsed executable, kept for symbol lookup by debuggers
	// (the real system would re-read it from the file).
	ImageSyms func() ([]Sym, bool)

	// Signal machinery.
	SigPend types.SigSet // pending signals (process level)
	Actions [types.MaxSig + 1]SigAction
	// alarmAt is atomic so the timer sweep can scan armed alarms without
	// taking every process's lock; alarm(2) itself runs under p.mu only.
	alarmAt atomic.Int64

	// /proc state.
	Trace TraceState
	Usage Usage

	// Event tracing: the per-process ring (nil when disabled) and the
	// portion of its drop count already folded into the kernel counters.
	KT         *ktrace.Ring
	ktDropBase uint64

	// Job control: true when stopped by a job-control signal.
	jobStopped bool
	// Ptrace: process is traced via the legacy mechanism by its parent.
	Ptraced bool

	// vfork support: a vfork child borrows the parent's address space
	// until it execs or exits; the parent sleeps on the child's vforkQ.
	borrowsAS bool
	vforkQ    waitq

	// SMP: intr is the interrupt nudge. The SMP user-mode hot loop checks
	// only this atomic per instruction; anything that could require the
	// full signal/stop gate (a posted signal, a directed stop, a current
	// signal planted by a control operation) sets it, and the gate clears
	// it — under the big kernel lock — once the condition is fully drained
	// for every LWP. The deterministic scheduler never consults it.
	intr atomic.Int32
	// ppid caches Parent.Pid (0 when no parent) so lock-free process-local
	// system calls (getpid) can read it while another CPU reparents
	// orphans under the global lock. Maintained by addProc and finishExit.
	ppid atomic.Int32

	// nrun counts LWPs in state LRun. The incremental run queues key on
	// it: a 0→1 transition (wakeup, fork, stop release) enqueues the
	// process on its home queue, and the claim path skips queue entries
	// whose count is back to zero. Maintained by setSchedState.
	nrun atomic.Int32
	// inQueue marks membership of the home run queue; guarded by that
	// queue's own mutex (rank 4), not by mu. lastPass is the ordinal of
	// the scheduling pass that last claimed this process (same guard) —
	// a process re-woken mid-pass must not be claimed twice in one pass.
	inQueue  bool
	lastPass uint64

	waitq  waitq // this process sleeps here in wait(2)
	pauseQ waitq // this process sleeps here in pause(2)/sigsuspend(2)

	nextLWPID int
}

// Sym mirrors xout.Sym without importing it (kernel stays format-agnostic).
type Sym struct {
	Name  string
	Value uint32
}

// noteIntr marks the process as needing the full signal/stop gate on its
// next user-mode instruction boundary. Call after posting a signal, setting
// a current signal, or directing a stop.
func (p *Proc) noteIntr() { p.intr.Store(1) }

// Lock acquires the per-process lock (rank 2). It is a no-op in
// deterministic mode. Host-side inspectors (procfs ioctls, snapshots) take
// it with the global lock already held; the owning process's system calls
// take it alone.
func (p *Proc) Lock() {
	if p.k.smp != nil {
		lockOrderAcquire(rankProc)
		p.mu.Lock()
	}
}

// Unlock releases the per-process lock (no-op in deterministic mode).
func (p *Proc) Unlock() {
	if p.k.smp != nil {
		p.mu.Unlock()
		lockOrderRelease(rankProc)
	}
}

// clearIntr drops the interrupt nudge if nothing is left to gate on: no
// pending process-level signal, and no LWP with a directed stop or current
// signal. Callers hold the global kernel lock in SMP mode; every setter of
// the fields read here (PostSignal, SetCurSig, DirectStop, ptrace continue)
// holds it too.
func (p *Proc) clearIntr() {
	if !p.SigPend.IsEmpty() {
		return
	}
	for _, l := range p.LWPs {
		if l.dstop || l.CurSig != 0 {
			return
		}
	}
	p.intr.Store(0)
}

// PPid returns the parent pid (0 for parentless processes). It is safe to
// call lock-free from any CPU.
func (p *Proc) PPid() int { return int(p.ppid.Load()) }

// State returns the lifecycle state.
func (p *Proc) State() PState { return PState(p.state.Load()) }

// setState moves the process to a new lifecycle state.
func (p *Proc) setState(st PState) { p.state.Store(int32(st)) }

// Alive reports whether the process has not exited.
func (p *Proc) Alive() bool { return p.State() == PAlive }

// Zombie reports whether the process awaits reaping.
func (p *Proc) Zombie() bool { return p.State() == PZombie }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Rep returns the representative LWP (the first live one) — the thread whose
// context the flat /proc interface reports, as in single-threaded SVR4.
func (p *Proc) Rep() *LWP {
	for _, l := range p.LWPs {
		if l.state != LZombie {
			return l
		}
	}
	return nil
}

// LWP looks up a thread by id.
func (p *Proc) LWP(id int) *LWP {
	for _, l := range p.LWPs {
		if l.ID == id {
			return l
		}
	}
	return nil
}

// LiveLWPs returns the non-zombie threads.
func (p *Proc) LiveLWPs() []*LWP {
	var out []*LWP
	for _, l := range p.LWPs {
		if l.state != LZombie {
			out = append(out, l)
		}
	}
	return out
}

// VirtSize is the total virtual memory size (0 for system processes).
func (p *Proc) VirtSize() int64 {
	if p.AS == nil {
		return 0
	}
	return p.AS.VirtSize()
}

func (p *Proc) newLWP() *LWP {
	p.nextLWPID++
	l := &LWP{ID: p.nextLWPID, Proc: p, state: LRun}
	l.stateA.Store(int32(LRun))
	p.nrun.Add(1)
	l.CPU.AS = p.AS
	l.CPU.NoTLB = p.k.NoTLB
	// The LWP list is walked by the run-queue claim path under only the
	// sleep-queue lock; membership changes take it too.
	k := p.k
	if k.smp != nil {
		k.sleepMu.Lock()
	}
	p.LWPs = append(p.LWPs, l)
	if k.smp != nil {
		k.sleepMu.Unlock()
	}
	return l
}

// LState is the scheduling state of an LWP.
type LState int

// LWP states.
const (
	LRun    LState = iota // runnable (or running)
	LSleep                // blocked in a system call
	LStop                 // stopped
	LZombie               // exited
)

var lstateNames = [...]string{"run", "sleep", "stop", "zombie"}

// String names the state.
func (s LState) String() string {
	if int(s) < len(lstateNames) {
		return lstateNames[s]
	}
	return "?"
}

// LWP is one thread of control: a virtual CPU context plus the kernel-side
// state that the stop/run machinery manipulates.
type LWP struct {
	ID   int
	Proc *Proc
	CPU  vcpu.CPU

	state LState
	// stateA mirrors state atomically for the two lock-free readers: the
	// SMP phase machine's loop-top check and the run-queue claim path.
	// All writes go through setSchedState (under the global lock in SMP
	// mode); everything else reads the plain field under that lock.
	stateA atomic.Int32
	phase  phase

	// Stop bookkeeping. An LWP may be claimed stopped by several competing
	// mechanisms at once (the paper's /proc-vs-ptrace-vs-job-control
	// discussion); it runs only when no claim remains.
	procClaim   bool // stopped for /proc (event of interest or request)
	jobClaim    bool // job-control stop
	ptraceClaim bool // ptrace signal stop
	why         StopWhy
	what        int // signal, fault or syscall number for why

	dstop    bool // a /proc stop directive is pending ("/proc gets the last word")
	abortSys bool // PRSABORT: abort the current system call
	clearFlt bool // PRCFAULT applied at the faulted stop
	// Per-delivery stop bookkeeping: which stop points the current signal
	// has already passed (a process may stop twice for one signal).
	sigStopTaken    bool
	ptraceStopTaken bool

	// Signal state.
	SigHold     types.SigSet
	CurSig      int    // the current signal (promoted from pending)
	CurFlt      int    // current fault, valid at a faulted stop
	FltAddr     uint32 // faulting address for the current fault
	fltStopDone bool   // fault stop already taken for this fault

	// System call context.
	sysNum       int
	sysArgs      [6]uint32
	sysEntryDone bool // entry stop already taken for this call
	sysExitDone  bool // exit stop already taken for this call
	sysStored    bool // return values already stored in the registers
	sysRet       uint32
	sysR1        uint32
	sysErr       Errno
	// sigsuspend: the mask to restore when the call returns.
	suspSaved *types.SigSet

	// Sleep state.
	sleepQ   *waitq
	sleeping bool
	// sleep(2) deadline in clock ticks; 0 when not in a timed sleep.
	sleepDeadline int64
	// vfork: the child this LWP waits on.
	vforkChild *Proc

	// wait reporting for ptrace/job control: set when a stop should be
	// reported to the parent's wait(2) and not yet consumed.
	waitReport int // encoded status, 0 = none
}

// State returns the LWP scheduling state.
func (l *LWP) State() LState { return l.state }

// Why returns the stop reason and detail (signal/fault/syscall number).
func (l *LWP) Why() (StopWhy, int) { return l.why, l.what }

// Stopped reports whether any stop claim holds the LWP.
func (l *LWP) Stopped() bool { return l.procClaim || l.jobClaim || l.ptraceClaim }

// StoppedOnEvent reports whether the LWP is stopped on a /proc event of
// interest and awaits a run directive (PR_ISTOP).
func (l *LWP) StoppedOnEvent() bool { return l.procClaim && l.why.EventOfInterest() }

// Asleep reports whether the LWP is blocked in a system call (PR_ASLEEP).
func (l *LWP) Asleep() bool { return l.sleeping || (l.phase == phSysRun && l.state == LSleep) }

// InSyscall returns the number of the system call the LWP is executing or
// stopped in, or 0.
func (l *LWP) InSyscall() int {
	switch l.phase {
	case phSysEntry, phSysRun, phSysExit:
		return l.sysNum
	}
	return 0
}

// SysArgs returns the captured system call arguments.
func (l *LWP) SysArgs() [6]uint32 { return l.sysArgs }

// Runnable reports whether the scheduler may run this LWP now.
func (l *LWP) Runnable() bool {
	return l.state == LRun && !l.Stopped() && !l.sleeping
}

// setSchedState moves the LWP to st, maintaining the atomic mirror and the
// process's runnable-LWP count. A 0→1 runnable transition hands the process
// to its home run queue (noteSchedulable; no-op in deterministic mode). In
// SMP mode every caller holds the global lock.
func (l *LWP) setSchedState(st LState) {
	old := l.state
	if old == st {
		return
	}
	l.state = st
	l.stateA.Store(int32(st))
	p := l.Proc
	if old == LRun {
		p.nrun.Add(-1)
	}
	if st == LRun && p.nrun.Add(1) == 1 {
		p.k.noteSchedulable(p)
	}
}

// markStopped recomputes the scheduling state from the claims.
func (l *LWP) recompute() {
	old := l.state
	switch {
	case l.state == LZombie:
	case l.Stopped():
		l.setSchedState(LStop)
	case l.sleeping:
		l.setSchedState(LSleep)
	default:
		l.setSchedState(LRun)
	}
	if l.state != old {
		if k := l.Proc.k; k.ktEnabled(l.Proc) {
			k.ktLWPState(l, old)
		}
	}
}

// stopEvent stops the LWP on a /proc event of interest.
func (l *LWP) stopEvent(why StopWhy, what int) {
	l.procClaim = true
	l.why, l.what = why, what
	l.recompute()
	l.Proc.k.tracef("pid %d lwp %d stop %v/%d", l.Proc.Pid, l.ID, why, what)
}

// DirectStop arranges for the LWP to stop at the next stop point (PIOCSTOP
// without waiting). Directed stops are honored even while the LWP sleeps.
func (l *LWP) DirectStop() {
	if l.state == LZombie {
		return
	}
	l.dstop = true
	l.Proc.noteIntr()
	if l.sleeping {
		// Wake it so the sleep loop can take the requested stop without
		// disturbing the system call.
		l.wake()
	}
}

// sleep blocks the LWP on q. In SMP mode the caller holds the global lock
// (only global-class system calls sleep) and the LWP is registered on the
// channel's sleeper list under the sleep-queue lock.
func (l *LWP) sleep(q *waitq) {
	l.sleepQ = q
	l.sleeping = true
	l.Proc.Usage.VolCtx++
	if k := l.Proc.k; k.smp != nil {
		k.sleepMu.Lock()
		lockOrderAcquire(rankSleep)
		q.sleepers = append(q.sleepers, l)
		lockOrderRelease(rankSleep)
		k.sleepMu.Unlock()
	}
	l.recompute()
}

// forgetSleep clears the sleep state without recomputing: the exit path and
// wake share it. Caller holds the global lock in SMP mode.
func (l *LWP) forgetSleep() {
	if !l.sleeping {
		return
	}
	if k := l.Proc.k; k.smp != nil && l.sleepQ != nil {
		k.sleepMu.Lock()
		lockOrderAcquire(rankSleep)
		s := l.sleepQ.sleepers
		for i, sl := range s {
			if sl == l {
				s[i] = s[len(s)-1]
				s[len(s)-1] = nil
				l.sleepQ.sleepers = s[:len(s)-1]
				break
			}
		}
		lockOrderRelease(rankSleep)
		k.sleepMu.Unlock()
	}
	l.sleeping = false
	l.sleepQ = nil
}

// wake makes a sleeping LWP runnable again (it will retry its system call).
func (l *LWP) wake() {
	if !l.sleeping {
		return
	}
	l.forgetSleep()
	l.recompute()
}

// wakeAll wakes every LWP in the system sleeping on q. The deterministic
// scheduler keeps the historical process-table scan — its wake order is
// pinned bit-for-bit by the replay suites. The SMP path walks the channel's
// own sleeper list instead (O(sleepers), under the sleep-queue lock), with
// the global lock held by every caller.
func (k *Kernel) wakeAll(q *waitq) {
	if k.smp != nil {
		// Pop-and-wake, one sleeper at a time: the global lock (held by
		// every caller) keeps the list from growing underneath, wake's own
		// removal shrinks it, and no scratch slice is allocated.
		for {
			k.sleepMu.Lock()
			lockOrderAcquire(rankSleep)
			var l *LWP
			if n := len(q.sleepers); n > 0 {
				l = q.sleepers[n-1]
			}
			lockOrderRelease(rankSleep)
			k.sleepMu.Unlock()
			if l == nil {
				return
			}
			l.wake()
		}
	}
	for _, p := range k.order {
		for _, l := range p.LWPs {
			if l.sleeping && l.sleepQ == q {
				l.wake()
			}
		}
	}
}
