package kernel

import (
	"sort"

	"repro/internal/types"
	"repro/internal/vfs"
)

// OpenFDLimit is the per-process file descriptor limit.
const OpenFDLimit = 64

// mapErr converts a vfs error to an errno.
func mapErr(err error) Errno {
	switch err {
	case nil:
		return 0
	case vfs.ErrNotExist:
		return ENOENT
	case vfs.ErrPerm:
		return EACCES
	case vfs.ErrNotDir:
		return ENOTDIR
	case vfs.ErrIsDir:
		return EISDIR
	case vfs.ErrExist:
		return EEXIST
	case vfs.ErrBusy:
		return EBUSY
	case vfs.ErrInval:
		return EINVAL
	case vfs.ErrBadFD, vfs.ErrStale:
		return EBADF
	case vfs.ErrAgain:
		return EAGAIN
	case vfs.ErrNoIoctl:
		return ENOTTY
	case vfs.ErrIO:
		return EIO
	case vfs.ErrNoSpace:
		return ENOSPC
	case vfs.EOF:
		return 0
	}
	return EIO
}

// absPath resolves a possibly-relative path against the process cwd.
func (p *Proc) absPath(path string) string {
	if len(path) > 0 && path[0] == '/' {
		return path
	}
	return p.CWD + "/" + path
}

// allocFD installs an open file at the lowest free descriptor. An injected
// failure behaves exactly like a full descriptor table; every caller already
// rolls back (closing the file, or unwinding a partially-built pipe).
func (p *Proc) allocFD(f *vfs.File) (int, Errno) {
	if siteFaultFD.Hit(p.Pid) {
		return 0, EMFILE
	}
	for fd := 0; fd < OpenFDLimit; fd++ {
		if _, used := p.fds[fd]; !used {
			p.fds[fd] = f
			return fd, 0
		}
	}
	return 0, EMFILE
}

// FD returns the open file for a descriptor (exported for /proc tools that
// inspect a process's open files).
func (p *Proc) FD(fd int) *vfs.File { return p.fds[fd] }

// FDs returns the descriptor table keys in use, in ascending order.
func (p *Proc) FDs() []int {
	var out []int
	for fd := range p.fds {
		out = append(out, fd)
	}
	sort.Ints(out)
	return out
}

// SetFD installs an open file at a descriptor (used by Spawn to wire
// standard descriptors).
func (p *Proc) SetFD(fd int, f *vfs.File) { p.fds[fd] = f }

func (p *Proc) getFD(fd int) (*vfs.File, Errno) {
	f, ok := p.fds[int(fd)]
	if !ok {
		return nil, EBADF
	}
	return f, 0
}

func sysOpen(k *Kernel, l *LWP) sysResult {
	p := l.Proc
	path, e := k.copyinStr(l, l.sysArgs[0])
	if e != 0 {
		return rerr(e)
	}
	flags := int(l.sysArgs[1])
	if flags&(vfs.ORead|vfs.OWrite) == 0 {
		flags |= vfs.ORead
	}
	cl := &vfs.Client{NS: k.NS, Cred: p.Cred}
	f, err := cl.Open(p.absPath(path), flags)
	if err != nil {
		return rerr(mapErr(err))
	}
	fd, e := p.allocFD(f)
	if e != 0 {
		f.Close()
		return rerr(e)
	}
	return ret(uint32(fd))
}

func sysCreat(k *Kernel, l *LWP) sysResult {
	p := l.Proc
	path, e := k.copyinStr(l, l.sysArgs[0])
	if e != 0 {
		return rerr(e)
	}
	mode := uint16(l.sysArgs[1]) &^ p.Umask
	abs := p.absPath(path)
	if _, err := k.NS.Lookup(abs, p.Cred); err == vfs.ErrNotExist {
		dw, name, derr := k.NS.LookupDir(abs, p.Cred)
		if derr != nil {
			return rerr(mapErr(derr))
		}
		if _, cerr := dw.VCreate(name, mode, p.Cred); cerr != nil {
			return rerr(mapErr(cerr))
		}
	}
	cl := &vfs.Client{NS: k.NS, Cred: p.Cred}
	f, err := cl.Open(abs, vfs.OWrite|vfs.OTrunc)
	if err != nil {
		return rerr(mapErr(err))
	}
	fd, e := p.allocFD(f)
	if e != 0 {
		f.Close()
		return rerr(e)
	}
	return ret(uint32(fd))
}

func sysClose(k *Kernel, l *LWP) sysResult {
	p := l.Proc
	f, e := p.getFD(int(l.sysArgs[0]))
	if e != 0 {
		return rerr(e)
	}
	delete(p.fds, int(l.sysArgs[0]))
	f.Close()
	return ret(0)
}

func sysDup(k *Kernel, l *LWP) sysResult {
	p := l.Proc
	f, e := p.getFD(int(l.sysArgs[0]))
	if e != 0 {
		return rerr(e)
	}
	f.IncRef()
	fd, e := p.allocFD(f)
	if e != 0 {
		f.Close()
		return rerr(e)
	}
	return ret(uint32(fd))
}

func sysRead(k *Kernel, l *LWP) sysResult {
	p := l.Proc
	f, e := p.getFD(int(l.sysArgs[0]))
	if e != 0 {
		return rerr(e)
	}
	buf, n := l.sysArgs[1], int(l.sysArgs[2])
	if n < 0 {
		return rerr(EINVAL)
	}
	if n > 1<<20 {
		n = 1 << 20
	}
	tmp := make([]byte, n)
	got, err := f.Read(tmp)
	if err == vfs.ErrAgain {
		// Blocking read (a pipe with no data): sleep until a writer acts.
		if pe, ok := f.H.(*pipeEnd); ok {
			return rsleep(&pe.p.rq)
		}
		return rerr(EAGAIN)
	}
	if err != nil && err != vfs.EOF {
		return rerr(mapErr(err))
	}
	if got > 0 {
		if e := k.copyout(l, buf, tmp[:got]); e != 0 {
			return rerr(e)
		}
	}
	return ret(uint32(got))
}

func sysWrite(k *Kernel, l *LWP) sysResult {
	p := l.Proc
	f, e := p.getFD(int(l.sysArgs[0]))
	if e != 0 {
		return rerr(e)
	}
	buf, n := l.sysArgs[1], int(l.sysArgs[2])
	if n < 0 {
		return rerr(EINVAL)
	}
	if n > 1<<20 {
		return rerr(EINVAL)
	}
	tmp, e := k.copyin(l, buf, n)
	if e != 0 {
		return rerr(e)
	}
	got, err := f.Write(tmp)
	switch err {
	case nil:
		return ret(uint32(got))
	case vfs.ErrAgain:
		if pe, ok := f.H.(*pipeEnd); ok {
			return rsleep(&pe.p.wq)
		}
		return rerr(EAGAIN)
	case errPipeGone:
		// Write on a pipe with no one to read it.
		k.PostSignal(p, types.SIGPIPE)
		return rerr(EPIPE)
	}
	return rerr(mapErr(err))
}

func sysLseek(k *Kernel, l *LWP) sysResult {
	p := l.Proc
	f, e := p.getFD(int(l.sysArgs[0]))
	if e != 0 {
		return rerr(e)
	}
	off, err := f.Seek(int64(int32(l.sysArgs[1])), int(l.sysArgs[2]))
	if err != nil {
		return rerr(mapErr(err))
	}
	return ret(uint32(off))
}

func sysUnlink(k *Kernel, l *LWP) sysResult {
	p := l.Proc
	path, e := k.copyinStr(l, l.sysArgs[0])
	if e != 0 {
		return rerr(e)
	}
	dw, name, err := k.NS.LookupDir(p.absPath(path), p.Cred)
	if err != nil {
		return rerr(mapErr(err))
	}
	if err := dw.VRemove(name, p.Cred); err != nil {
		return rerr(mapErr(err))
	}
	return ret(0)
}

// sysSync flushes every mounted file system with delayed writes; like the
// historical sync(2) it reports the first failure but attempts them all.
func sysSync(k *Kernel, l *LWP) sysResult {
	if err := k.NS.SyncAll(); err != nil {
		return rerr(mapErr(err))
	}
	return ret(0)
}

// sysFsync flushes the file system behind one descriptor. Handles of
// in-memory types don't implement the hook and succeed trivially — their
// writes were never delayed.
func sysFsync(k *Kernel, l *LWP) sysResult {
	p := l.Proc
	f, e := p.getFD(int(l.sysArgs[0]))
	if e != 0 {
		return rerr(e)
	}
	if s, ok := f.H.(interface{ HSync() error }); ok {
		if err := s.HSync(); err != nil {
			return rerr(mapErr(err))
		}
	}
	return ret(0)
}

func sysChdir(k *Kernel, l *LWP) sysResult {
	p := l.Proc
	path, e := k.copyinStr(l, l.sysArgs[0])
	if e != 0 {
		return rerr(e)
	}
	abs := vfs.Clean(p.absPath(path))
	vn, err := k.NS.Lookup(abs, p.Cred)
	if err != nil {
		return rerr(mapErr(err))
	}
	if _, ok := vn.(vfs.Dir); !ok {
		return rerr(ENOTDIR)
	}
	p.CWD = abs
	return ret(0)
}

func sysChmod(k *Kernel, l *LWP) sysResult {
	p := l.Proc
	path, e := k.copyinStr(l, l.sysArgs[0])
	if e != 0 {
		return rerr(e)
	}
	vn, err := k.NS.Lookup(p.absPath(path), p.Cred)
	if err != nil {
		return rerr(mapErr(err))
	}
	attr, err := vn.VAttr()
	if err != nil {
		return rerr(mapErr(err))
	}
	if !p.Cred.IsSuper() && p.Cred.EUID != attr.UID {
		return rerr(EPERM)
	}
	type chmodder interface{ SetMode(uint16) }
	if c, ok := vn.(chmodder); ok {
		c.SetMode(uint16(l.sysArgs[1]) & 0o7777)
		return ret(0)
	}
	return rerr(ENOSYS)
}

func sysAccess(k *Kernel, l *LWP) sysResult {
	p := l.Proc
	path, e := k.copyinStr(l, l.sysArgs[0])
	if e != 0 {
		return rerr(e)
	}
	vn, err := k.NS.Lookup(p.absPath(path), p.Cred)
	if err != nil {
		return rerr(mapErr(err))
	}
	attr, err := vn.VAttr()
	if err != nil {
		return rerr(mapErr(err))
	}
	// access(2) checks with the real ids.
	realCred := p.Cred
	realCred.EUID, realCred.EGID = realCred.RUID, realCred.RGID
	if err := vfs.CheckAccess(attr, realCred, uint16(l.sysArgs[1])&7); err != nil {
		return rerr(EACCES)
	}
	return ret(0)
}

func sysIoctl(k *Kernel, l *LWP) sysResult {
	p := l.Proc
	if _, e := p.getFD(int(l.sysArgs[0])); e != 0 {
		return rerr(e)
	}
	// User-level programs in the simulation have no ioctl-capable devices.
	return rerr(ENOTTY)
}
