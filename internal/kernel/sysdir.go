package kernel

import "repro/internal/vfs"

// getdents(2): directory reading for user programs. Each entry is a
// fixed-size 64-byte record — a NUL-padded name (60 bytes), a type byte
// (0 regular, 1 directory, 2 process, 3 fifo), and 3 pad bytes. The file
// offset counts entries.
//
// This call matters for the reproduction because it lets simulated programs
// traverse /proc and /procx themselves: a program inside the system can read
// another process's psinfo file through the restructured interface with
// nothing but open/read — while the ioctl-based flat interface is beyond
// reach of a plain binary interface, exactly the contrast the paper's
// proposed restructuring draws.

// DirentSize is the size of one getdents record.
const DirentSize = 64

// direntName is the length of the name field.
const direntName = 60

func sysGetdents(k *Kernel, l *LWP) sysResult {
	p := l.Proc
	f, e := p.getFD(int(l.sysArgs[0]))
	if e != 0 {
		return rerr(e)
	}
	buf, n := l.sysArgs[1], int(l.sysArgs[2])
	if n < DirentSize {
		return rerr(EINVAL)
	}
	dir, ok := f.VN.(vfs.Dir)
	if !ok {
		return rerr(ENOTDIR)
	}
	ents, err := dir.VReadDir(p.Cred)
	if err != nil {
		return rerr(mapErr(err))
	}
	// f.Offset indexes the entry stream.
	idx := int(f.Offset)
	if idx >= len(ents) {
		return ret(0) // end of directory
	}
	var out []byte
	for ; idx < len(ents) && len(out)+DirentSize <= n; idx++ {
		rec := make([]byte, DirentSize)
		name := ents[idx].Name
		if len(name) > direntName-1 {
			name = name[:direntName-1]
		}
		copy(rec, name)
		switch ents[idx].Attr.Type {
		case vfs.VDIR:
			rec[direntName] = 1
		case vfs.VPROC:
			rec[direntName] = 2
		case vfs.VFIFO:
			rec[direntName] = 3
		}
		out = append(out, rec...)
	}
	if e := k.copyout(l, buf, out); e != 0 {
		return rerr(e)
	}
	f.Offset = int64(idx)
	return ret(uint32(len(out)))
}
