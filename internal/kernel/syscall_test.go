package kernel_test

import (
	"testing"
	"testing/quick"

	"repro/internal/kernel"
	"repro/internal/types"
	"repro/internal/vfs"
)

func TestUmaskAppliesToCreat(t *testing.T) {
	f := boot(t)
	p := f.spawn("um", `
	movi r0, SYS_umask
	movi r1, 0x3F		; 077
	syscall
	movi r0, SYS_creat
	la r1, path
	movi r2, 0x1B6		; 0666
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
.data
path:	.asciz "/tmp/masked"
`, user())
	f.runToExit(p)
	cl := &vfs.Client{NS: f.K.NS, Cred: types.RootCred()}
	attr, err := cl.Stat("/tmp/masked")
	if err != nil {
		t.Fatal(err)
	}
	if attr.Mode != 0o600 {
		t.Fatalf("mode = %o, want 600 (0666 &^ 077)", attr.Mode)
	}
}

func TestDupSharesOffset(t *testing.T) {
	f := boot(t)
	f.FS.WriteFile("/tmp/seq", []byte("ABCDEF"), 0o666, 0, 0)
	p := f.spawn("dup", `
	movi r0, SYS_open
	la r1, path
	movi r2, 1
	syscall
	mov r6, r0
	movi r0, SYS_dup
	mov r1, r6
	syscall
	mov r7, r0		; dup'd fd
	movi r0, SYS_read	; read 2 via original
	mov r1, r6
	la r2, buf
	movi r3, 2
	syscall
	movi r0, SYS_read	; read 1 via the dup: shares the offset
	mov r1, r7
	la r2, buf
	movi r3, 1
	syscall
	la r3, buf
	ldb r1, [r3]		; should be 'C'
	movi r0, SYS_exit
	syscall
.data
path:	.asciz "/tmp/seq"
buf:	.space 4
`, user())
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != 'C' {
		t.Fatalf("read %c, want C: dup must share the file offset", code)
	}
}

func TestEMFILE(t *testing.T) {
	f := boot(t)
	f.FS.WriteFile("/tmp/x", []byte("x"), 0o666, 0, 0)
	// Open the same file 100 times without closing: the per-process
	// descriptor limit (64) makes the tail of them fail with EMFILE.
	p := f.spawn("manyfds", `
	movi r5, 0
loop:	movi r0, SYS_open
	la r1, path
	movi r2, 1
	syscall
	mov r6, r0		; result of the last open
	addi r5, 1
	cmpi r5, 100
	jne loop
	mov r1, r6
	movi r0, SYS_exit
	syscall
.data
path:	.asciz "/tmp/x"
`, user())
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != int(kernel.EMFILE) {
		t.Fatalf("last open result = %d, want EMFILE", code)
	}
}

func TestAlarmRearmsAndCancels(t *testing.T) {
	f := boot(t)
	p := f.spawn("alarms", `
	movi r0, SYS_alarm
	movi r1, 1000
	syscall			; arm
	movi r0, SYS_alarm
	movi r1, 2000
	syscall			; re-arm: returns remaining (~1000)
	mov r6, r0
	movi r0, SYS_alarm
	movi r1, 0
	syscall			; cancel: returns remaining (~2000)
	mov r7, r0
	; exit with 1 if both remainders look sane
	cmpi r6, 900
	jlt bad
	cmpi r7, 1900
	jlt bad
	movi r1, 1
	movi r0, SYS_exit
	syscall
bad:	movi r1, 0
	movi r0, SYS_exit
	syscall
`, user())
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != 1 {
		t.Fatal("alarm remainders wrong")
	}
	// Cancelled alarm never fires.
	if p.SigPend.Has(types.SIGALRM) {
		t.Fatal("cancelled alarm fired")
	}
}

func TestKillProcessGroup(t *testing.T) {
	f := boot(t)
	// Parent forks two children (same pgrp), then kill(0, SIGKILL) nukes
	// the whole group including itself.
	p := f.spawn("groupkill", `
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	je child
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	je child
	movi r5, 100
spin:	addi r5, -1
	cmpi r5, 0
	jne spin
	movi r0, SYS_kill
	movi r1, 0		; pid 0: my process group
	movi r2, 9		; SIGKILL
	syscall
child:	jmp child
`, user())
	err := f.K.RunUntil(func() bool {
		for _, q := range f.K.Procs() {
			if q.Comm == "groupkill" && q.Alive() {
				return false
			}
		}
		return true
	}, 2_000_000)
	if err != nil {
		t.Fatalf("a group member survived: %v", err)
	}
	_ = p
}

func TestSetpgrpSeparatesGroups(t *testing.T) {
	f := boot(t)
	p := f.spawn("pg", `
	movi r0, SYS_setpgrp
	syscall
	mov r6, r0		; new pgrp == pid
	movi r0, SYS_getpid
	syscall
	sub r6, r0		; 0 if pgrp == pid
	mov r1, r6
	movi r0, SYS_exit
	syscall
`, user())
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != 0 {
		t.Fatal("setpgrp should set pgrp = pid")
	}
}

func TestLseekWhence(t *testing.T) {
	f := boot(t)
	f.FS.WriteFile("/tmp/lk", []byte("0123456789"), 0o666, 0, 0)
	p := f.spawn("lk", `
	movi r0, SYS_open
	la r1, path
	movi r2, 1
	syscall
	mov r6, r0
	movi r0, SYS_lseek	; SEEK_END -3 -> offset 7
	mov r1, r6
	li r2, -3
	movi r3, 2
	syscall
	movi r0, SYS_read
	mov r1, r6
	la r2, buf
	movi r3, 1
	syscall
	la r3, buf
	ldb r1, [r3]		; '7'
	movi r0, SYS_exit
	syscall
.data
path:	.asciz "/tmp/lk"
buf:	.space 4
`, user())
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != '7' {
		t.Fatalf("read %c, want 7", code)
	}
}

func TestUnlinkAndAccess(t *testing.T) {
	f := boot(t)
	f.FS.WriteFile("/tmp/gone", []byte("x"), 0o666, 0, 0)
	p := f.spawn("ua", `
	movi r0, SYS_access
	la r1, path
	movi r2, 4		; R_OK
	syscall
	mov r6, r0		; 0
	movi r0, SYS_unlink
	la r1, path
	syscall
	movi r0, SYS_access
	la r1, path
	movi r2, 4
	syscall			; now ENOENT
	mov r1, r0
	movi r0, SYS_exit
	syscall
.data
path:	.asciz "/tmp/gone"
`, user())
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != int(kernel.ENOENT) {
		t.Fatalf("second access = %d, want ENOENT", code)
	}
}

func TestChdirAffectsRelativePaths(t *testing.T) {
	f := boot(t)
	f.FS.WriteFile("/tmp/sub/data", []byte("K"), 0o666, 0, 0)
	p := f.spawn("cd", `
	movi r0, SYS_chdir
	la r1, dir
	syscall
	movi r0, SYS_open
	la r1, rel		; relative path
	movi r2, 1
	syscall
	mov r6, r0
	movi r0, SYS_read
	mov r1, r6
	la r2, buf
	movi r3, 1
	syscall
	la r3, buf
	ldb r1, [r3]
	movi r0, SYS_exit
	syscall
.data
dir:	.asciz "/tmp/sub"
rel:	.asciz "data"
buf:	.space 4
`, user())
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != 'K' {
		t.Fatalf("code = %d", code)
	}
}

func TestVforkChildExecsReleasesParent(t *testing.T) {
	f := boot(t)
	f.install("/bin/quick", exit42, 0o755, 0, 0)
	// vfork; the child execs (the classic pattern); the parent must not
	// resume until the exec happens, and its own memory must be intact.
	p := f.spawn("vfexec", `
	la r3, marker
	movi r4, 7
	st r4, [r3]
	movi r0, SYS_vfork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_exec	; child borrows the AS until here
	la r1, path
	syscall
	movi r0, SYS_exit	; exec failed
	movi r1, 99
	syscall
parent:
	movi r0, SYS_wait
	movi r1, 0
	syscall
	shr r1, 8		; child's code (42)
	la r3, marker
	ld r4, [r3]
	cmpi r4, 7		; parent memory intact?
	jne bad
	movi r0, SYS_exit
	syscall
bad:	movi r1, 0
	movi r0, SYS_exit
	syscall
.data
marker:	.word 0
path:	.asciz "/bin/quick"
`, user())
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != 42 {
		t.Fatalf("code = %d, want child's 42 with parent memory intact", code)
	}
}

func TestCoreDumpWritten(t *testing.T) {
	f := boot(t)
	p := f.spawn("dumper", `
	movi r0, SYS_chdir	; cores go to the cwd, which must be writable
	la r1, tmp
	syscall
	la r3, tag
	movi r4, 0x5A
	stb r4, [r3]
	movi r5, 1
	movi r6, 0
	div r5, r6		; FLTIZDIV -> SIGFPE -> core
.data
tmp:	.asciz "/tmp"
tag:	.byte 0
`, user())
	status := f.runToExit(p)
	if ok, sig, core := kernel.WIfSignaled(status); !ok || sig != types.SIGFPE || !core {
		t.Fatalf("status = %#x", status)
	}
	cl := &vfs.Client{NS: f.K.NS, Cred: types.RootCred()}
	data, err := cl.ReadFile("/tmp/core." + itoa(p.Pid))
	if err != nil {
		t.Fatalf("no core file: %v", err)
	}
	img, err := kernel.ParseCore(data)
	if err != nil {
		t.Fatal(err)
	}
	if img.Pid != p.Pid || img.Signal != types.SIGFPE {
		t.Fatalf("core header: %+v", img)
	}
	// The PC points at the faulting div.
	pc := img.Regs[8]
	if pc < 0x80000000 {
		t.Fatalf("core pc = %#x", pc)
	}
	// The memory image contains the tag the program wrote.
	syms, _ := p.ImageSyms()
	var tag uint32
	for _, s := range syms {
		if s.Name == "tag" {
			tag = s.Value
		}
	}
	if b, ok := img.At(tag); !ok || b != 0x5A {
		t.Fatalf("core memory at tag = %#x, %v", b, ok)
	}
	if _, ok := img.At(0x100); ok {
		t.Fatal("unmapped address should not be in the core")
	}
}

func TestParseCoreErrors(t *testing.T) {
	if _, err := kernel.ParseCore([]byte("NOPE")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := kernel.ParseCore([]byte{'C', 'O', 'R', 'E', 0}); err == nil {
		t.Fatal("truncated core accepted")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// Property: the wait-status encodings are disjoint and invertible.
func TestQuickWaitStatusEncodings(t *testing.T) {
	fn := func(code uint8, rawSig uint8, core bool) bool {
		sig := int(rawSig%31) + 1
		// Exited.
		if ok, c := kernel.WIfExited(int(code) << 8); !ok || c != int(code) {
			return false
		}
		if ok, _, _ := kernel.WIfSignaled(int(code) << 8); ok {
			return false
		}
		// Stopped.
		st := sig<<8 | 0x7F
		if ok, s := kernel.WIfStopped(st); !ok || s != sig {
			return false
		}
		if ok, _ := kernel.WIfExited(st); ok {
			return false
		}
		return true
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSyscallNameTables(t *testing.T) {
	if kernel.SyscallName(kernel.SysRead) != "read" {
		t.Fatal("name read")
	}
	if kernel.SyscallName(499) != "sys#499" {
		t.Fatalf("name 499 = %q", kernel.SyscallName(499))
	}
	if kernel.SyscallNumber("write") != kernel.SysWrite {
		t.Fatal("number write")
	}
	if kernel.SyscallNumber("bogus") != 0 {
		t.Fatal("number bogus")
	}
	if kernel.SyscallArity(kernel.SysRead) != 3 {
		t.Fatal("arity read")
	}
	pre := kernel.Predefs()
	if pre["SYS_exit"] != kernel.SysExit || pre["SIGKILL"] != types.SIGKILL {
		t.Fatal("predefs")
	}
}

func TestErrnoStrings(t *testing.T) {
	if kernel.ENOENT.String() != "ENOENT" || kernel.Errno(0).String() != "OK" {
		t.Fatal("errno strings")
	}
	if kernel.Errno(77).String() != "E77" {
		t.Fatalf("unknown errno = %q", kernel.Errno(77).String())
	}
	if kernel.EINVAL.Error() != "EINVAL" {
		t.Fatal("Error()")
	}
}

func TestNiceBounds(t *testing.T) {
	f := boot(t)
	p := f.spawn("nice", `
	movi r0, SYS_nice
	movi r1, 100		; clamped to 19
	syscall
	mov r1, r0		; nice+20 = 39
	movi r0, SYS_exit
	syscall
`, user())
	status := f.runToExit(p)
	if _, code := kernel.WIfExited(status); code != 39 {
		t.Fatalf("nice result = %d, want 39", code)
	}
	// Negative increments need privilege.
	q := f.spawn("mean", `
	movi r0, SYS_nice
	li r1, -5
	syscall
	mov r1, r0		; EPERM for a plain user
	movi r0, SYS_exit
	syscall
`, user())
	status = f.runToExit(q)
	if _, code := kernel.WIfExited(status); code != int(kernel.EPERM) {
		t.Fatalf("negative nice by user = %d, want EPERM", code)
	}
}
