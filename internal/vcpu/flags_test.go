package vcpu

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

// quickCPU builds a minimal CPU for property tests.
func quickCPU() *CPU {
	as := mem.NewAS(4096)
	as.Map(mem.MapArgs{Base: 0x1000, Len: 4096, Prot: mem.ProtRWX, MaxProt: mem.ProtRWX, Fixed: true})
	c := &CPU{AS: as}
	c.Regs.PC = 0x1000
	c.Regs.SP = 0x1800
	return c
}

// exec1 runs a single instruction on fresh state and returns the CPU.
func exec1(w uint32, setup func(*CPU)) *CPU {
	c := quickCPU()
	var b [4]byte
	b[0], b[1], b[2], b[3] = byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
	c.AS.WriteAt(b[:], 0x1000)
	if setup != nil {
		setup(c)
	}
	c.Step()
	return c
}

// Property: ADD result and flags agree with wide arithmetic.
func TestQuickAddFlags(t *testing.T) {
	f := func(a, b uint32) bool {
		c := exec1(Encode(OpADD, 1, 2, 0), func(c *CPU) {
			c.Regs.R[1], c.Regs.R[2] = a, b
		})
		res := a + b
		if c.Regs.R[1] != res {
			return false
		}
		z := res == 0
		n := res&0x80000000 != 0
		carry := uint64(a)+uint64(b) > 0xFFFFFFFF
		ovf := int64(int32(a))+int64(int32(b)) != int64(int32(res))
		return c.flag(FlagZ) == z && c.flag(FlagN) == n &&
			c.flag(FlagC) == carry && c.flag(FlagV) == ovf
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SUB result and flags agree with wide arithmetic.
func TestQuickSubFlags(t *testing.T) {
	f := func(a, b uint32) bool {
		c := exec1(Encode(OpSUB, 1, 2, 0), func(c *CPU) {
			c.Regs.R[1], c.Regs.R[2] = a, b
		})
		res := a - b
		if c.Regs.R[1] != res {
			return false
		}
		borrow := a < b
		ovf := int64(int32(a))-int64(int32(b)) != int64(int32(res))
		return c.flag(FlagC) == borrow && c.flag(FlagV) == ovf &&
			c.flag(FlagZ) == (res == 0) && c.flag(FlagN) == (res&0x80000000 != 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: signed conditional jumps agree with Go's < > == on int32.
func TestQuickSignedConditions(t *testing.T) {
	f := func(a, b uint32) bool {
		sa, sb := int32(a), int32(b)
		cases := map[int]bool{
			OpJE:  sa == sb,
			OpJNE: sa != sb,
			OpJLT: sa < sb,
			OpJGE: sa >= sb,
			OpJGT: sa > sb,
			OpJLE: sa <= sb,
		}
		for op, want := range cases {
			c := quickCPU()
			c.Regs.R[1], c.Regs.R[2] = a, b
			// cmp r1, r2; j<op> +8 (skip a word)
			var prog [8]byte
			w1 := Encode(OpCMP, 1, 2, 0)
			w2 := Encode(op, 0, 0, 4)
			prog[0], prog[1], prog[2], prog[3] = byte(w1>>24), byte(w1>>16), byte(w1>>8), byte(w1)
			prog[4], prog[5], prog[6], prog[7] = byte(w2>>24), byte(w2>>16), byte(w2>>8), byte(w2)
			c.AS.WriteAt(prog[:], 0x1000)
			c.Step()
			c.Step()
			taken := c.Regs.PC == 0x1000+12
			if taken != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: DIV/MOD match Go semantics when defined.
func TestQuickDivMod(t *testing.T) {
	f := func(a, b uint32) bool {
		sa, sb := int32(a), int32(b)
		if sb == 0 || (sa == -1<<31 && sb == -1) {
			return true // faults, covered elsewhere
		}
		c := exec1(Encode(OpDIV, 1, 2, 0), func(c *CPU) {
			c.Regs.R[1], c.Regs.R[2] = a, b
		})
		if int32(c.Regs.R[1]) != sa/sb {
			return false
		}
		c = exec1(Encode(OpMOD, 1, 2, 0), func(c *CPU) {
			c.Regs.R[1], c.Regs.R[2] = a, b
		})
		return int32(c.Regs.R[1]) == sa%sb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: PUSH then POP restores the value and SP.
func TestQuickPushPop(t *testing.T) {
	f := func(v uint32) bool {
		c := quickCPU()
		c.Regs.R[3] = v
		words := []uint32{Encode(OpPUSH, 3, 0, 0), Encode(OpPOP, 4, 0, 0)}
		var prog []byte
		for _, w := range words {
			prog = append(prog, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
		}
		c.AS.WriteAt(prog, 0x1000)
		sp := c.Regs.SP
		c.Step()
		c.Step()
		return c.Regs.R[4] == v && c.Regs.SP == sp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: logical ops match Go.
func TestQuickLogicalOps(t *testing.T) {
	f := func(a, b uint32, sh uint8) bool {
		shift := uint16(sh % 32)
		checks := []struct {
			op   int
			want uint32
			imm  uint16
		}{
			{OpAND, a & b, 0},
			{OpOR, a | b, 0},
			{OpXOR, a ^ b, 0},
			{OpSHL, a << shift, shift},
			{OpSHR, a >> shift, shift},
			{OpNOT, ^a, 0},
		}
		for _, ck := range checks {
			c := exec1(Encode(ck.op, 1, 2, ck.imm), func(c *CPU) {
				c.Regs.R[1], c.Regs.R[2] = a, b
			})
			if c.Regs.R[1] != ck.want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCallRJr(t *testing.T) {
	c := quickCPU()
	c.Regs.R[5] = 0x1010
	words := []uint32{
		Encode(OpCALLR, 0, 5, 0), // 0x1000: call *r5 -> 0x1010
		0, 0, 0,
		Encode(OpJR, 0, 6, 0), // 0x1010: jr r6
	}
	var prog []byte
	for _, w := range words {
		prog = append(prog, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
	}
	c.AS.WriteAt(prog, 0x1000)
	c.Regs.R[6] = 0x1004
	if tr := c.Step(); tr.Kind != TrapNone {
		t.Fatalf("callr: %+v", tr)
	}
	if c.Regs.PC != 0x1010 {
		t.Fatalf("pc = %#x", c.Regs.PC)
	}
	// Return address pushed.
	var b [4]byte
	c.AS.ReadAt(b[:], int64(c.Regs.SP))
	if got := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]); got != 0x1004 {
		t.Fatalf("pushed ra = %#x", got)
	}
	if tr := c.Step(); tr.Kind != TrapNone {
		t.Fatalf("jr: %+v", tr)
	}
	if c.Regs.PC != 0x1004 {
		t.Fatalf("jr pc = %#x", c.Regs.PC)
	}
}

func TestRegsString(t *testing.T) {
	var r Regs
	r.PC = 0x80000000
	s := r.String()
	if len(s) == 0 || s[:2] != "r0" {
		t.Fatalf("String = %q", s)
	}
}

func TestMisalignedPCFaults(t *testing.T) {
	c := quickCPU()
	c.Regs.PC = 0x1002
	tr := c.Step()
	if tr.Kind != TrapFault {
		t.Fatalf("trap = %+v", tr)
	}
}
