package vcpu

import (
	"strings"
	"testing"
)

// Every defined opcode disassembles to its mnemonic, and includes the
// operand shapes its format declares.
func TestDisasmCoversEveryOpcode(t *testing.T) {
	for op := 1; op < NOpcodes; op++ {
		name := OpName(op)
		if name == "" || name == "(illegal)" {
			continue
		}
		out := Disasm(Encode(op, 1, 2, 8), 0x1000)
		if !strings.HasPrefix(out, name) {
			t.Errorf("op %#x: Disasm = %q, want prefix %q", op, out, name)
		}
		switch OpFormat(op) {
		case "a":
			if !strings.Contains(out, "r1") {
				t.Errorf("%s: missing ra: %q", name, out)
			}
		case "b":
			if !strings.Contains(out, "r2") {
				t.Errorf("%s: missing rb: %q", name, out)
			}
		case "ab":
			if !strings.Contains(out, "r1") || !strings.Contains(out, "r2") {
				t.Errorf("%s: missing regs: %q", name, out)
			}
		case "am":
			if !strings.Contains(out, "[r2+8]") {
				t.Errorf("%s: missing mem operand: %q", name, out)
			}
		}
	}
}

// Round trip: OpByName(OpName(op)) == op for every named opcode.
func TestOpcodeNameRoundTrip(t *testing.T) {
	for op := 1; op < NOpcodes; op++ {
		name := OpName(op)
		if name == "" || name == "(illegal)" {
			continue
		}
		if got := OpByName(name); got != op {
			t.Errorf("OpByName(%q) = %#x, want %#x", name, got, op)
		}
	}
}
