package vcpu

import (
	"encoding/binary"
	"testing"

	"repro/internal/mem"
	"repro/internal/types"
)

// simm encodes a signed 16-bit immediate.
func simm(v int16) uint16 { return uint16(v) }

// newCPU builds a CPU with a RWX code page at 0x1000 and a stack at 0x8000.
func newCPU(t *testing.T, words ...uint32) *CPU {
	t.Helper()
	as := mem.NewAS(4096)
	if _, err := as.Map(mem.MapArgs{Base: 0x1000, Len: 4096, Prot: mem.ProtRWX, MaxProt: mem.ProtRWX, Fixed: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Map(mem.MapArgs{Base: 0x8000, Len: 4096, Prot: mem.ProtRW, Fixed: true}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4*len(words))
	for i, w := range words {
		binary.BigEndian.PutUint32(buf[4*i:], w)
	}
	if _, err := as.WriteAt(buf, 0x1000); err != nil {
		t.Fatal(err)
	}
	c := &CPU{AS: as}
	c.Regs.PC = 0x1000
	c.Regs.SP = 0x9000
	return c
}

func stepOK(t *testing.T, c *CPU) {
	t.Helper()
	if tr := c.Step(); tr.Kind != TrapNone {
		t.Fatalf("unexpected trap %+v at pc=%#x", tr, c.Regs.PC)
	}
}

func TestArithmetic(t *testing.T) {
	c := newCPU(t,
		Encode(OpMOVI, 1, 0, 7),
		Encode(OpMOVI, 2, 0, 5),
		Encode(OpADD, 1, 2, 0),         // r1 = 12
		Encode(OpSUB, 1, 2, 0),         // r1 = 7
		Encode(OpMUL, 1, 2, 0),         // r1 = 35
		Encode(OpDIV, 1, 2, 0),         // r1 = 7
		Encode(OpADDI, 1, 0, simm(-3)), // r1 = 4
	)
	for i := 0; i < 7; i++ {
		stepOK(t, c)
	}
	if c.Regs.R[1] != 4 {
		t.Fatalf("r1 = %d, want 4", c.Regs.R[1])
	}
	if c.Instret != 7 {
		t.Fatalf("Instret = %d", c.Instret)
	}
}

func TestMovHiBuildsConstant(t *testing.T) {
	c := newCPU(t,
		Encode(OpMOVI, 3, 0, 0xBEEF),
		Encode(OpMOVHI, 3, 0, 0xDEAD),
	)
	stepOK(t, c)
	stepOK(t, c)
	if c.Regs.R[3] != 0xDEADBEEF {
		t.Fatalf("r3 = %#x", c.Regs.R[3])
	}
}

func TestLoadStore(t *testing.T) {
	c := newCPU(t,
		Encode(OpMOVI, 1, 0, 0x8000), // base
		Encode(OpMOVI, 2, 0, 0x1234),
		Encode(OpST, 2, 1, 8),
		Encode(OpLD, 3, 1, 8),
		Encode(OpMOVI, 4, 0, 0xAB),
		Encode(OpSTB, 4, 1, 100),
		Encode(OpLDB, 5, 1, 100),
	)
	for i := 0; i < 7; i++ {
		stepOK(t, c)
	}
	if c.Regs.R[3] != 0x1234 {
		t.Fatalf("r3 = %#x", c.Regs.R[3])
	}
	if c.Regs.R[5] != 0xAB {
		t.Fatalf("r5 = %#x", c.Regs.R[5])
	}
}

func TestBranching(t *testing.T) {
	// Count down from 3: movi r1,3; loop: addi r1,-1; cmpi r1,0; jne loop; nop
	c := newCPU(t,
		Encode(OpMOVI, 1, 0, 3),
		Encode(OpADDI, 1, 0, simm(-1)),
		Encode(OpCMPI, 1, 0, 0),
		Encode(OpJNE, 0, 0, simm(-12)),
		Encode(OpNOP, 0, 0, 0),
	)
	for i := 0; i < 11; i++ { // 1 + 3*3 + 1 final nop
		stepOK(t, c)
	}
	if c.Regs.R[1] != 0 {
		t.Fatalf("r1 = %d", c.Regs.R[1])
	}
	if c.Regs.PC != 0x1000+5*4 {
		t.Fatalf("pc = %#x", c.Regs.PC)
	}
}

func TestSignedConditions(t *testing.T) {
	// CMP -1 vs 1 → JLT should be taken.
	c := newCPU(t,
		Encode(OpMOVI, 1, 0, 0xFFFF),
		Encode(OpMOVHI, 1, 0, 0xFFFF), // r1 = -1
		Encode(OpMOVI, 2, 0, 1),
		Encode(OpCMP, 1, 2, 0),
		Encode(OpJLT, 0, 0, 4), // skip next word
		Encode(OpIllegal, 0, 0, 0),
		Encode(OpNOP, 0, 0, 0),
	)
	for i := 0; i < 5; i++ {
		stepOK(t, c)
	}
	stepOK(t, c) // the NOP; the illegal word was skipped
	if c.Regs.PC != 0x1000+7*4 {
		t.Fatalf("pc = %#x", c.Regs.PC)
	}
}

func TestCallRetPushPop(t *testing.T) {
	c := newCPU(t,
		Encode(OpMOVI, 1, 0, 42),
		Encode(OpPUSH, 1, 0, 0),
		Encode(OpCALL, 0, 0, 8), // call 0x1000+12+8 = 0x1014
		Encode(OpPOP, 2, 0, 0),  // after return
		Encode(OpNOP, 0, 0, 0),  // 0x1010
		Encode(OpRET, 0, 0, 0),  // 0x1014: the "function"
	)
	for i := 0; i < 5; i++ {
		stepOK(t, c)
	}
	if c.Regs.R[2] != 42 {
		t.Fatalf("r2 = %d", c.Regs.R[2])
	}
	if c.Regs.SP != 0x9000 {
		t.Fatalf("sp = %#x", c.Regs.SP)
	}
}

func TestSyscallTrap(t *testing.T) {
	c := newCPU(t,
		Encode(OpMOVI, 0, 0, 4),
		Encode(OpSYSCALL, 0, 0, 0),
	)
	stepOK(t, c)
	tr := c.Step()
	if tr.Kind != TrapSyscall {
		t.Fatalf("trap = %+v", tr)
	}
	// PC advanced past the syscall so resumption continues after it.
	if c.Regs.PC != 0x1008 {
		t.Fatalf("pc = %#x", c.Regs.PC)
	}
}

func TestBreakpointLeavesPC(t *testing.T) {
	c := newCPU(t, Encode(OpBPT, 0, 0, 0))
	tr := c.Step()
	if tr.Kind != TrapFault || tr.Fault != types.FLTBPT {
		t.Fatalf("trap = %+v", tr)
	}
	// "The execution of the breakpoint instruction should leave the program
	// counter ... preferably the breakpoint address itself."
	if c.Regs.PC != 0x1000 {
		t.Fatalf("pc = %#x, want 0x1000", c.Regs.PC)
	}
	if tr.Addr != 0x1000 {
		t.Fatalf("addr = %#x", tr.Addr)
	}
}

func TestFaults(t *testing.T) {
	cases := []struct {
		name string
		word uint32
		flt  int
		pre  func(*CPU)
	}{
		{"illegal zero word", 0, types.FLTILL, nil},
		{"unknown opcode", Encode(0x7F, 0, 0, 0), types.FLTILL, nil},
		{"privileged", Encode(OpHLT, 0, 0, 0), types.FLTPRIV, nil},
		{"divide by zero", Encode(OpDIV, 1, 2, 0), types.FLTIZDIV, func(c *CPU) { c.Regs.R[1] = 10; c.Regs.R[2] = 0 }},
		{"mod by zero", Encode(OpMOD, 1, 2, 0), types.FLTIZDIV, func(c *CPU) { c.Regs.R[1] = 10 }},
		{"div overflow", Encode(OpDIV, 1, 2, 0), types.FLTIOVF, func(c *CPU) { c.Regs.R[1] = 0x80000000; c.Regs.R[2] = 0xFFFFFFFF }},
		{"mul overflow", Encode(OpMUL, 1, 2, 0), types.FLTIOVF, func(c *CPU) { c.Regs.R[1] = 0x10000; c.Regs.R[2] = 0x10000 }},
		{"fp divide by zero", Encode(OpFDIV, 1, 2, 0), types.FLTFPE, nil},
		{"unmapped load", Encode(OpLD, 1, 2, 0), types.FLTBOUNDS, func(c *CPU) { c.Regs.R[2] = 0x50000 }},
		{"misaligned load", Encode(OpLD, 1, 2, 1), types.FLTBOUNDS, func(c *CPU) { c.Regs.R[2] = 0x8000 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newCPU(t, tc.word)
			if tc.pre != nil {
				tc.pre(c)
			}
			tr := c.Step()
			if tr.Kind != TrapFault || tr.Fault != tc.flt {
				t.Fatalf("trap = %+v, want fault %s", tr, types.FltName(tc.flt))
			}
			if c.Regs.PC != 0x1000 {
				t.Fatalf("pc advanced to %#x on a fault", c.Regs.PC)
			}
		})
	}
}

func TestProtectionFault(t *testing.T) {
	// Store into the text page after making it read/exec.
	c := newCPU(t,
		Encode(OpMOVI, 1, 0, 0x1000),
		Encode(OpST, 1, 1, 0),
	)
	if err := c.AS.Mprotect(0x1000, 4096, mem.ProtRX); err != nil {
		t.Fatal(err)
	}
	stepOK(t, c)
	tr := c.Step()
	if tr.Kind != TrapFault || tr.Fault != types.FLTACCESS {
		t.Fatalf("trap = %+v", tr)
	}
}

func TestExecFaultOnNonExecPage(t *testing.T) {
	c := newCPU(t, Encode(OpNOP, 0, 0, 0))
	c.Regs.PC = 0x8000 // data page, no exec permission
	tr := c.Step()
	if tr.Kind != TrapFault || tr.Fault != types.FLTACCESS {
		t.Fatalf("trap = %+v", tr)
	}
}

func TestTraceBit(t *testing.T) {
	c := newCPU(t,
		Encode(OpMOVI, 1, 0, 1),
		Encode(OpMOVI, 2, 0, 2),
	)
	c.Regs.PSW |= FlagTrace
	tr := c.Step()
	if tr.Kind != TrapFault || tr.Fault != types.FLTTRACE {
		t.Fatalf("trap = %+v", tr)
	}
	// FLTTRACE is reported after the instruction completes.
	if c.Regs.R[1] != 1 || c.Regs.PC != 0x1004 {
		t.Fatalf("instruction did not complete before trace trap")
	}
}

func TestStackFaultOnBadPush(t *testing.T) {
	c := newCPU(t, Encode(OpPUSH, 1, 0, 0))
	c.Regs.SP = 0x5000 // unmapped
	tr := c.Step()
	if tr.Kind != TrapFault || tr.Fault != types.FLTSTACK {
		t.Fatalf("trap = %+v, want FLTSTACK", tr)
	}
}

func TestWatchpointTrap(t *testing.T) {
	c := newCPU(t,
		Encode(OpMOVI, 1, 0, 0x8000),
		Encode(OpMOVI, 2, 0, 99),
		Encode(OpST, 2, 1, 16),
	)
	c.AS.SetWatch(0x8010, 4, mem.ProtWrite)
	stepOK(t, c)
	stepOK(t, c)
	tr := c.Step()
	if tr.Kind != TrapFault || tr.Fault != types.FLTWATCH {
		t.Fatalf("trap = %+v", tr)
	}
	if tr.Addr != 0x8010 {
		t.Fatalf("watch addr = %#x", tr.Addr)
	}
	// The store did not happen (trap before modification).
	var b [4]byte
	c.AS.ReadAt(b[:], 0x8010)
	if binary.BigEndian.Uint32(b[:]) != 0 {
		t.Fatal("watched store should not have completed")
	}
}

func TestFloatingPoint(t *testing.T) {
	c := newCPU(t,
		Encode(OpFMOVI, 1, 0, 3),
		Encode(OpFMOVI, 2, 0, 4),
		Encode(OpFADD, 1, 2, 0),
		Encode(OpFMUL, 1, 2, 0),
	)
	for i := 0; i < 4; i++ {
		stepOK(t, c)
	}
	if c.FP.F[1] != 28 {
		t.Fatalf("f1 = %v", c.FP.F[1])
	}
}

func TestMoveSP(t *testing.T) {
	c := newCPU(t,
		Encode(OpMOVSPR, 1, 0, 0),
		Encode(OpADDI, 1, 0, simm(-8)),
		Encode(OpMOVRSP, 1, 0, 0),
	)
	for i := 0; i < 3; i++ {
		stepOK(t, c)
	}
	if c.Regs.SP != 0x9000-8 {
		t.Fatalf("sp = %#x", c.Regs.SP)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for op := 1; op < NOpcodes; op++ {
		w := Encode(op, 3, 5, 0xBEEF)
		gop, ra, rb, imm := Decode(w)
		if gop != op || ra != 3 || rb != 5 || imm != 0xBEEF {
			t.Fatalf("round trip failed for op %d", op)
		}
	}
}

func TestDisasm(t *testing.T) {
	cases := map[uint32]string{
		Encode(OpMOVI, 1, 0, 10):      "movi r1, 0xa",
		Encode(OpADD, 1, 2, 0):        "add r1, r2",
		Encode(OpLD, 3, 4, simm(-8)):  "ld r3, [r4-8]",
		Encode(OpJMP, 0, 0, simm(-4)): "jmp 0x1000",
		Encode(OpSYSCALL, 0, 0, 0):    "syscall",
		Encode(OpBPT, 0, 0, 0):        "bpt",
		0:                             ".word 0x00000000",
	}
	for w, want := range cases {
		if got := Disasm(w, 0x1000); got != want {
			t.Errorf("Disasm(%#x) = %q, want %q", w, got, want)
		}
	}
}

func TestOpNameTables(t *testing.T) {
	if OpByName("movi") != OpMOVI {
		t.Fatal("OpByName movi")
	}
	if OpByName("nonsense") != -1 {
		t.Fatal("OpByName nonsense should be -1")
	}
	if OpName(OpBPT) != "bpt" {
		t.Fatal("OpName bpt")
	}
	if OpName(200) != "" {
		t.Fatal("OpName out of range")
	}
}
