package vcpu

import "fmt"

// CheckTLB verifies the TLB's generation contract: when the cache claims to
// be current (same AS pointer, same generation), every entry must agree with
// a fresh PageFrame translation. The fault-storm harness calls it after every
// injected fault — a refused allocation must never leave a stale translation
// behind at an unchanged generation. A cache keyed to an old generation or a
// different space is legal (it drops itself on the next access), so that
// case vacuously passes.
func (c *CPU) CheckTLB() error {
	t := &c.tlb
	if c.AS == nil || t.as != c.AS || t.gen != c.AS.Gen() {
		return nil
	}
	for i := range t.ents {
		e := &t.ents[i]
		if e.tag == tlbNoTag {
			continue
		}
		if e.obj != nil && e.obj.ObjRev() != e.rev {
			// Stale by object revision: legal, revalidated away on hit.
			continue
		}
		f, ok := c.AS.PageFrame(e.tag)
		if e.frame == nil && e.prot == 0 {
			// Negative entry: the address space refused this page at fill
			// time and the generation has not moved since.
			if ok {
				return fmt.Errorf("vcpu: negative TLB entry for %#x but PageFrame now succeeds", e.tag)
			}
			continue
		}
		if !ok {
			return fmt.Errorf("vcpu: TLB entry for %#x but PageFrame now refuses it", e.tag)
		}
		if f.Prot != e.prot || f.Writable != e.writable {
			return fmt.Errorf("vcpu: TLB entry for %#x has prot=%v writable=%v, PageFrame says prot=%v writable=%v",
				e.tag, e.prot, e.writable, f.Prot, f.Writable)
		}
		if e.obj == nil {
			// Private or zero-page frames alias one live slice; an entry
			// pointing anywhere else serves stale data.
			if len(e.frame) != len(f.Data) || (len(f.Data) > 0 && &e.frame[0] != &f.Data[0]) {
				return fmt.Errorf("vcpu: TLB entry for %#x aliases the wrong frame", e.tag)
			}
		} else if f.Obj != e.obj || f.Rev != e.rev {
			return fmt.Errorf("vcpu: TLB entry for %#x disagrees with PageFrame on object/revision", e.tag)
		}
	}
	return nil
}
