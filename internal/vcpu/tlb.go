package vcpu

import (
	"math/bits"

	"repro/internal/mem"
)

// The software TLB: a small direct-mapped per-CPU cache of page
// translations, the fast half of the fast-path/slow-path split. A hit
// resolves a load, store, or instruction fetch to a direct frame access —
// one index, one tag compare, one permission check — with no segment walk,
// no staging buffer, and no allocation. Everything with interesting
// semantics (watchpoints, copy-on-write, stack growth, write-through,
// permission faults) is deliberately a miss, so the slow path keeps those
// behaviors bit-for-bit identical to the unaccelerated interpreter.
//
// Validity is the generation protocol of mem/frame.go: entries are tagged
// with the address space pointer and its Gen() at fill time, and the whole
// TLB is dropped the moment either changes — exec replaces the AS pointer,
// every mapping mutation (map/unmap/mprotect/brk/stack growth/COW
// materialization/watchpoint change) bumps the generation, whether it came
// from the process itself, a /proc as-file write, or ptrace POKE. Frames
// backed by a mapped object additionally carry the object's revision and
// are revalidated against it on every hit, so writes to a mapped file are
// never served stale.

const (
	tlbBits = 6
	tlbSize = 1 << tlbBits
	// tlbNoTag is an address that is never a page base (page bases are
	// page-aligned); empty entries carry it so they can never hit.
	tlbNoTag = ^uint32(0)
)

// tlbEntry caches one page translation.
type tlbEntry struct {
	tag      uint32   // page base address, or tlbNoTag
	prot     mem.Prot // effective permissions of the mapping
	writable bool     // stores may write the frame directly
	rev      uint64   // object revision at fill time (obj != nil)
	frame    []byte   // one page of live storage
	obj      mem.RevBytes // non-nil: revalidate every hit against ObjRev
}

// tlb is the per-CPU translation cache.
type tlb struct {
	as    *mem.AS // address space the entries describe
	gen   uint64  // its Gen() when they were filled
	shift uint32  // page shift
	mask  uint32  // page size - 1
	ents  [tlbSize]tlbEntry
}

// reset re-keys the TLB to the address space's current generation and
// drops every entry. Called whenever the AS pointer or generation moves.
func (t *tlb) reset(as *mem.AS) {
	t.as = as
	t.gen = as.Gen()
	ps := as.PageSize()
	t.mask = ps - 1
	t.shift = uint32(bits.TrailingZeros32(ps))
	for i := range t.ents {
		t.ents[i] = tlbEntry{tag: tlbNoTag}
	}
}

// FlushTLB drops every cached translation and un-keys the TLB; the next
// access re-keys it against the current address space. Checkpoint restore
// calls it: cached frames may describe an address space the restore just
// discarded, and pointer+generation revalidation is not trusted across a
// rewind.
func (c *CPU) FlushTLB() { c.tlb = tlb{} }

// tlbFrame returns the direct frame for an access needing permissions want
// at addr, or nil when the access must take the slow path. write
// additionally requires a writable (materialized private) frame. On a miss
// it attempts one fill via AS.PageFrame; pages the address space refuses to
// expose (watched, shared, COW-unresolved without stable backing) simply
// never enter the cache.
func (c *CPU) tlbFrame(addr uint32, want mem.Prot, write bool) []byte {
	if c.NoTLB || c.AS == nil {
		return nil
	}
	t := &c.tlb
	if t.as != c.AS || t.gen != c.AS.Gen() {
		t.reset(c.AS)
	}
	e := &t.ents[(addr>>t.shift)&(tlbSize-1)]
	tag := addr &^ t.mask
	if e.tag == tag {
		if e.obj != nil && e.obj.ObjRev() != e.rev {
			e.tag = tlbNoTag // the mapped object changed under the entry
		} else if e.prot&want == want && (!write || e.writable) {
			return e.frame
		} else {
			// The translation is valid but this access needs the slow
			// path: a permission fault, or a store that must do
			// copy-on-write first. Keep the entry.
			return nil
		}
	}
	f, ok := c.AS.PageFrame(tag)
	if !ok {
		// Negatively cache the refusal: accesses to a watched, shared or
		// otherwise uncacheable page go straight to the slow path without
		// re-asking PageFrame, until the next generation bump (or a
		// conflicting fill) drops the entry. prot == 0 can satisfy no
		// access, so the entry can never serve a hit.
		*e = tlbEntry{tag: tag}
		return nil
	}
	e.tag, e.prot, e.writable, e.frame, e.obj, e.rev =
		tag, f.Prot, f.Writable, f.Data, f.Obj, f.Rev
	if f.Prot&want != want || (write && !f.Writable) {
		return nil
	}
	return e.frame
}
