// Package vcpu implements the virtual CPU on which user programs execute.
//
// The paper's process-control machinery is defined in terms of machine-level
// events — breakpoint instructions, illegal and privileged instructions,
// traced (single-step) execution, memory access faults, integer and floating
// point exceptions. Reproducing /proc therefore requires a real (if small)
// instruction set architecture. This one is a 32-bit RISC-like machine with
// the properties the paper calls out: a dedicated breakpoint instruction
// (BPT) whose execution leaves the program counter at the breakpoint address
// itself, a privileged instruction (HLT), and a trace bit in the processor
// status word that raises FLTTRACE after each completed instruction.
//
// Instructions are one 32-bit big-endian word:
//
//	| opcode:8 | ra:4 | rb:4 | imm:16 |
//
// The machine has eight general registers R0..R7, a program counter, a stack
// pointer, a status word, and eight floating-point registers (so that the
// PIOCGFPREG/PIOCSFPREG operations have something real to transfer).
package vcpu

import "fmt"

// Opcodes.
const (
	OpIllegal = 0x00 // a zero word is an illegal instruction (FLTILL)
	OpMOVI    = 0x01 // ra <- imm (zero-extended)
	OpMOVHI   = 0x02 // ra <- imm<<16 | (ra & 0xFFFF)
	OpMOV     = 0x03 // ra <- rb
	OpADD     = 0x04 // ra <- ra + rb
	OpADDI    = 0x05 // ra <- ra + simm
	OpSUB     = 0x06 // ra <- ra - rb
	OpMUL     = 0x07 // ra <- ra * rb (FLTIOVF on signed overflow)
	OpDIV     = 0x08 // ra <- ra / rb (FLTIZDIV on rb==0, FLTIOVF on MinInt/-1)
	OpMOD     = 0x09 // ra <- ra % rb (FLTIZDIV on rb==0)
	OpAND     = 0x0A // ra <- ra & rb
	OpOR      = 0x0B // ra <- ra | rb
	OpXOR     = 0x0C // ra <- ra ^ rb
	OpSHL     = 0x0D // ra <- ra << imm
	OpSHR     = 0x0E // ra <- ra >> imm (logical)
	OpNOT     = 0x0F // ra <- ^ra
	OpLD      = 0x10 // ra <- mem32[rb + simm]
	OpST      = 0x11 // mem32[rb + simm] <- ra
	OpLDB     = 0x12 // ra <- zeroext mem8[rb + simm]
	OpSTB     = 0x13 // mem8[rb + simm] <- ra & 0xFF
	OpCMP     = 0x14 // set flags from ra - rb
	OpCMPI    = 0x15 // set flags from ra - simm
	OpJMP     = 0x16 // pc <- pc + 4 + simm
	OpJE      = 0x17 // conditional jumps (signed comparisons)
	OpJNE     = 0x18
	OpJLT     = 0x19
	OpJGE     = 0x1A
	OpJGT     = 0x1B
	OpJLE     = 0x1C
	OpJR      = 0x1D // pc <- rb
	OpCALL    = 0x1E // push pc+4; pc <- pc + 4 + simm
	OpCALLR   = 0x1F // push pc+4; pc <- rb
	OpRET     = 0x20 // pc <- pop
	OpPUSH    = 0x21 // sp -= 4; mem32[sp] <- ra
	OpPOP     = 0x22 // ra <- mem32[sp]; sp += 4
	OpSYSCALL = 0x23 // trap to kernel: number in R0, args in R1..R5
	OpBPT     = 0x24 // breakpoint trap (FLTBPT); pc left at the BPT itself
	OpHLT     = 0x25 // privileged instruction (FLTPRIV from user mode)
	OpNOP     = 0x26
	OpFMOVI   = 0x27 // f[ra] <- float64(simm)
	OpFADD    = 0x28 // f[ra] <- f[ra] + f[rb]
	OpFMUL    = 0x29 // f[ra] <- f[ra] * f[rb]
	OpFDIV    = 0x2A // f[ra] <- f[ra] / f[rb] (FLTFPE on f[rb]==0)
	OpMOVSPR  = 0x2B // ra <- sp
	OpMOVRSP  = 0x2C // sp <- ra
	OpSHLR    = 0x2D // ra <- ra << (rb & 31)
	OpSHRR    = 0x2E // ra <- ra >> (rb & 31) (logical)
	NOpcodes  = 0x2F
)

// InstrSize is the size of every instruction in bytes. On this fixed-width
// machine the breakpoint instruction trivially satisfies the paper's rule
// that it be no longer than the shortest instruction.
const InstrSize = 4

// opInfo describes an opcode for the assembler and disassembler.
type opInfo struct {
	Name string
	Fmt  string // operand format: "", "a", "ab", "ai", "abi", "i", "am" (mem), "f..."
}

var opTable = [NOpcodes]opInfo{
	OpIllegal: {"(illegal)", ""},
	OpMOVI:    {"movi", "ai"},
	OpMOVHI:   {"movhi", "ai"},
	OpMOV:     {"mov", "ab"},
	OpADD:     {"add", "ab"},
	OpADDI:    {"addi", "ai"},
	OpSUB:     {"sub", "ab"},
	OpMUL:     {"mul", "ab"},
	OpDIV:     {"div", "ab"},
	OpMOD:     {"mod", "ab"},
	OpAND:     {"and", "ab"},
	OpOR:      {"or", "ab"},
	OpXOR:     {"xor", "ab"},
	OpSHL:     {"shl", "ai"},
	OpSHR:     {"shr", "ai"},
	OpNOT:     {"not", "a"},
	OpLD:      {"ld", "am"},
	OpST:      {"st", "am"},
	OpLDB:     {"ldb", "am"},
	OpSTB:     {"stb", "am"},
	OpCMP:     {"cmp", "ab"},
	OpCMPI:    {"cmpi", "ai"},
	OpJMP:     {"jmp", "i"},
	OpJE:      {"je", "i"},
	OpJNE:     {"jne", "i"},
	OpJLT:     {"jlt", "i"},
	OpJGE:     {"jge", "i"},
	OpJGT:     {"jgt", "i"},
	OpJLE:     {"jle", "i"},
	OpJR:      {"jr", "b"},
	OpCALL:    {"call", "i"},
	OpCALLR:   {"callr", "b"},
	OpRET:     {"ret", ""},
	OpPUSH:    {"push", "a"},
	OpPOP:     {"pop", "a"},
	OpSYSCALL: {"syscall", ""},
	OpBPT:     {"bpt", ""},
	OpHLT:     {"hlt", ""},
	OpNOP:     {"nop", ""},
	OpFMOVI:   {"fmovi", "ai"},
	OpFADD:    {"fadd", "ab"},
	OpFMUL:    {"fmul", "ab"},
	OpFDIV:    {"fdiv", "ab"},
	OpMOVSPR:  {"movspr", "a"},
	OpMOVRSP:  {"movrsp", "a"},
	OpSHLR:    {"shlr", "ab"},
	OpSHRR:    {"shrr", "ab"},
}

// OpName returns the mnemonic for an opcode, or "" if unknown.
func OpName(op int) string {
	if op >= 0 && op < NOpcodes {
		return opTable[op].Name
	}
	return ""
}

// OpByName returns the opcode for a mnemonic, or -1 if unknown.
func OpByName(name string) int {
	for op, info := range opTable {
		if info.Name == name && name != "" {
			return op
		}
	}
	return -1
}

// OpFormat returns the operand format string for the assembler.
func OpFormat(op int) string {
	if op >= 0 && op < NOpcodes {
		return opTable[op].Fmt
	}
	return ""
}

// Encode packs an instruction word.
func Encode(op, ra, rb int, imm uint16) uint32 {
	return uint32(op&0xFF)<<24 | uint32(ra&0xF)<<20 | uint32(rb&0xF)<<16 | uint32(imm)
}

// Decode unpacks an instruction word.
func Decode(w uint32) (op, ra, rb int, imm uint16) {
	return int(w >> 24), int(w >> 20 & 0xF), int(w >> 16 & 0xF), uint16(w)
}

// BreakpointWord is the encoded approved breakpoint instruction, for
// debuggers to plant via /proc address-space writes.
var BreakpointWord = Encode(OpBPT, 0, 0, 0)

// Disasm renders one instruction word as assembly. pc is the address of the
// instruction (used to resolve pc-relative targets).
func Disasm(w uint32, pc uint32) string {
	op, ra, rb, imm := Decode(w)
	if op <= 0 || op >= NOpcodes || opTable[op].Name == "(illegal)" {
		return fmt.Sprintf(".word %#08x", w)
	}
	info := opTable[op]
	simm := int32(int16(imm))
	switch info.Fmt {
	case "":
		return info.Name
	case "a":
		return fmt.Sprintf("%s r%d", info.Name, ra)
	case "b":
		return fmt.Sprintf("%s r%d", info.Name, rb)
	case "ab":
		return fmt.Sprintf("%s r%d, r%d", info.Name, ra, rb)
	case "ai":
		if op == OpMOVI || op == OpMOVHI {
			return fmt.Sprintf("%s r%d, %#x", info.Name, ra, imm)
		}
		return fmt.Sprintf("%s r%d, %d", info.Name, ra, simm)
	case "i":
		target := uint32(int64(pc) + InstrSize + int64(simm))
		return fmt.Sprintf("%s %#x", info.Name, target)
	case "am":
		return fmt.Sprintf("%s r%d, [r%d%+d]", info.Name, ra, rb, simm)
	}
	return fmt.Sprintf(".word %#08x", w)
}
