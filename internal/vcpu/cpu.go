package vcpu

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/mem"
	"repro/internal/types"
)

// PSW flag bits.
const (
	FlagZ     = 1 << 0 // zero
	FlagN     = 1 << 1 // negative
	FlagC     = 1 << 2 // carry / borrow (unsigned)
	FlagV     = 1 << 3 // signed overflow
	FlagTrace = 1 << 8 // trace bit: FLTTRACE after each instruction
)

// NumRegs is the number of general registers.
const NumRegs = 8

// Regs is the general-register context of a thread of control, transferred
// by the PIOCGREG and PIOCSREG operations.
type Regs struct {
	R   [NumRegs]uint32 // general registers
	PC  uint32          // program counter
	SP  uint32          // stack pointer
	PSW uint32          // processor status word
}

// String renders the register set for debuggers.
func (r Regs) String() string {
	s := ""
	for i, v := range r.R {
		s += fmt.Sprintf("r%d=%#x ", i, v)
	}
	return s + fmt.Sprintf("pc=%#x sp=%#x psw=%#x", r.PC, r.SP, r.PSW)
}

// FPRegs is the floating-point register context, transferred by the
// PIOCGFPREG and PIOCSFPREG operations.
type FPRegs struct {
	F [NumRegs]float64
}

// TrapKind classifies the outcome of executing one instruction.
type TrapKind int

// Trap kinds.
const (
	TrapNone    TrapKind = iota // instruction completed; continue
	TrapSyscall                 // SYSCALL executed; PC advanced past it
	TrapFault                   // machine fault; PC at the faulting instruction
)

// Trap reports a kernel entry caused by instruction execution.
type Trap struct {
	Kind  TrapKind
	Fault int    // types.FLT* when Kind == TrapFault
	Addr  uint32 // faulting address (data address for access faults, else PC)
}

// CPU executes instructions against an address space. It is the
// machine-dependent register context of one thread of control (LWP).
type CPU struct {
	Regs    Regs
	FP      FPRegs
	AS      *mem.AS
	Instret uint64 // instructions retired (for resource usage reporting)

	// NoTLB disables the translation fast path: every access takes the
	// full segment-walk slow path. The reference interpreter for
	// differential testing (and the REPRO_NOTLB ablation).
	NoTLB bool

	tlb   tlb     // software TLB (tlb.go)
	stage [4]byte // slow-path staging buffer; reused to avoid per-access allocation
}

// fault builds a fault trap.
func fault(flt int, addr uint32) Trap {
	return Trap{Kind: TrapFault, Fault: flt, Addr: addr}
}

// memFault converts an address-space access error into a trap.
func memFault(err error, fallback uint32) Trap {
	if ae, ok := err.(*mem.AccessError); ok {
		return fault(ae.Fault, ae.Addr)
	}
	return fault(types.FLTACCESS, fallback)
}

// The memory pipeline. Each accessor tries the TLB hit path first — a
// direct frame access with no segment walk, no staging buffer and no
// allocation — and falls back to the combined AccessRead/AccessWrite slow
// path, which performs the permission check, watchpoint check, automatic
// stack growth, copy-on-write and the copy in a single segment walk.
// Word accesses are 4-aligned and the page size is a multiple of 4, so an
// aligned word never crosses a page; byte accesses are single-byte. A TLB
// hit therefore always lies entirely inside its frame.

func (c *CPU) load32(addr uint32) (uint32, *Trap) {
	if addr%4 != 0 {
		t := fault(types.FLTBOUNDS, addr)
		return 0, &t
	}
	if f := c.tlbFrame(addr, mem.ProtRead, false); f != nil {
		off := addr & c.tlb.mask
		return binary.BigEndian.Uint32(f[off : off+4]), nil
	}
	if err := c.AS.AccessRead(addr, c.stage[:4]); err != nil {
		t := memFault(err, addr)
		return 0, &t
	}
	return binary.BigEndian.Uint32(c.stage[:4]), nil
}

func (c *CPU) store32(addr, v uint32) *Trap {
	if addr%4 != 0 {
		t := fault(types.FLTBOUNDS, addr)
		return &t
	}
	if f := c.tlbFrame(addr, mem.ProtWrite, true); f != nil {
		off := addr & c.tlb.mask
		binary.BigEndian.PutUint32(f[off:off+4], v)
		return nil
	}
	binary.BigEndian.PutUint32(c.stage[:4], v)
	if err := c.AS.AccessWrite(addr, c.stage[:4]); err != nil {
		t := memFault(err, addr)
		return &t
	}
	return nil
}

func (c *CPU) load8(addr uint32) (byte, *Trap) {
	if f := c.tlbFrame(addr, mem.ProtRead, false); f != nil {
		return f[addr&c.tlb.mask], nil
	}
	if err := c.AS.AccessRead(addr, c.stage[:1]); err != nil {
		t := memFault(err, addr)
		return 0, &t
	}
	return c.stage[0], nil
}

func (c *CPU) store8(addr uint32, v byte) *Trap {
	if f := c.tlbFrame(addr, mem.ProtWrite, true); f != nil {
		f[addr&c.tlb.mask] = v
		return nil
	}
	c.stage[0] = v
	if err := c.AS.AccessWrite(addr, c.stage[:1]); err != nil {
		t := memFault(err, addr)
		return &t
	}
	return nil
}

// fetch32 reads the instruction word at pc (execute permission).
func (c *CPU) fetch32(pc uint32) (uint32, *Trap) {
	if f := c.tlbFrame(pc, mem.ProtExec, false); f != nil {
		off := pc & c.tlb.mask
		return binary.BigEndian.Uint32(f[off : off+4]), nil
	}
	if err := c.AS.AccessFetch(pc, c.stage[:4]); err != nil {
		t := memFault(err, pc)
		return 0, &t
	}
	return binary.BigEndian.Uint32(c.stage[:4]), nil
}

// Push pushes a word onto the user stack (used by the kernel to build signal
// frames as well as by PUSH/CALL).
func (c *CPU) Push(v uint32) *Trap {
	sp := c.Regs.SP - 4
	if t := c.store32(sp, v); t != nil {
		if t.Fault == types.FLTBOUNDS {
			t.Fault = types.FLTSTACK
		}
		return t
	}
	c.Regs.SP = sp
	return nil
}

// Pop pops a word from the user stack.
func (c *CPU) Pop() (uint32, *Trap) {
	v, t := c.load32(c.Regs.SP)
	if t != nil {
		return 0, t
	}
	c.Regs.SP += 4
	return v, nil
}

// setFlagsArith sets Z/N/C/V from an arithmetic result.
func (c *CPU) setFlagsArith(res uint32, carry, overflow bool) {
	psw := c.Regs.PSW &^ uint32(FlagZ|FlagN|FlagC|FlagV)
	if res == 0 {
		psw |= FlagZ
	}
	if res&0x80000000 != 0 {
		psw |= FlagN
	}
	if carry {
		psw |= FlagC
	}
	if overflow {
		psw |= FlagV
	}
	c.Regs.PSW = psw
}

func (c *CPU) flag(f uint32) bool { return c.Regs.PSW&f != 0 }

// condTaken evaluates a conditional jump against the flags (signed compares).
func (c *CPU) condTaken(op int) bool {
	z, n, v := c.flag(FlagZ), c.flag(FlagN), c.flag(FlagV)
	switch op {
	case OpJE:
		return z
	case OpJNE:
		return !z
	case OpJLT:
		return n != v
	case OpJGE:
		return n == v
	case OpJGT:
		return !z && n == v
	case OpJLE:
		return z || n != v
	}
	return false
}

// Step executes one instruction. On TrapFault the program counter is left at
// the faulting instruction (so the debugger can repair and re-execute); the
// one exception is FLTTRACE, which is reported after the instruction
// completes. On TrapSyscall the PC has advanced past the SYSCALL instruction.
func (c *CPU) Step() Trap {
	pc := c.Regs.PC
	if pc%4 != 0 {
		return fault(types.FLTBOUNDS, pc)
	}
	w, ft := c.fetch32(pc)
	if ft != nil {
		return *ft
	}
	op, ra, rb, imm := Decode(w)
	// The register fields are 4 bits wide but the machine has NumRegs
	// registers; encodings naming nonexistent registers are illegal
	// instructions, like any other malformed word.
	if ra >= NumRegs || rb >= NumRegs {
		return fault(types.FLTILL, pc)
	}
	simm := int32(int16(imm))
	npc := pc + InstrSize
	r := &c.Regs.R

	switch op {
	case OpNOP:
	case OpMOVI:
		r[ra] = uint32(imm)
	case OpMOVHI:
		r[ra] = uint32(imm)<<16 | r[ra]&0xFFFF
	case OpMOV:
		r[ra] = r[rb]
	case OpADD, OpADDI, OpSUB:
		a := r[ra]
		var b uint32
		if op == OpADDI {
			b = uint32(simm)
		} else {
			b = r[rb]
		}
		var res uint32
		var carry, ovf bool
		if op == OpSUB {
			res = a - b
			carry = a < b
			ovf = (a^b)&0x80000000 != 0 && (a^res)&0x80000000 != 0
		} else {
			res = a + b
			carry = res < a
			ovf = (a^b)&0x80000000 == 0 && (a^res)&0x80000000 != 0
		}
		r[ra] = res
		c.setFlagsArith(res, carry, ovf)
	case OpMUL:
		prod := int64(int32(r[ra])) * int64(int32(r[rb]))
		if prod > math.MaxInt32 || prod < math.MinInt32 {
			return fault(types.FLTIOVF, pc)
		}
		r[ra] = uint32(int32(prod))
		c.setFlagsArith(r[ra], false, false)
	case OpDIV, OpMOD:
		d := int32(r[rb])
		if d == 0 {
			return fault(types.FLTIZDIV, pc)
		}
		n := int32(r[ra])
		if n == math.MinInt32 && d == -1 {
			return fault(types.FLTIOVF, pc)
		}
		if op == OpDIV {
			r[ra] = uint32(n / d)
		} else {
			r[ra] = uint32(n % d)
		}
		c.setFlagsArith(r[ra], false, false)
	case OpAND:
		r[ra] &= r[rb]
		c.setFlagsArith(r[ra], false, false)
	case OpOR:
		r[ra] |= r[rb]
		c.setFlagsArith(r[ra], false, false)
	case OpXOR:
		r[ra] ^= r[rb]
		c.setFlagsArith(r[ra], false, false)
	case OpSHL:
		r[ra] <<= uint(imm) & 31
		c.setFlagsArith(r[ra], false, false)
	case OpSHR:
		r[ra] >>= uint(imm) & 31
		c.setFlagsArith(r[ra], false, false)
	case OpNOT:
		r[ra] = ^r[ra]
		c.setFlagsArith(r[ra], false, false)
	case OpLD:
		v, t := c.load32(r[rb] + uint32(simm))
		if t != nil {
			return *t
		}
		r[ra] = v
	case OpST:
		if t := c.store32(r[rb]+uint32(simm), r[ra]); t != nil {
			return *t
		}
	case OpLDB:
		v, t := c.load8(r[rb] + uint32(simm))
		if t != nil {
			return *t
		}
		r[ra] = uint32(v)
	case OpSTB:
		if t := c.store8(r[rb]+uint32(simm), byte(r[ra])); t != nil {
			return *t
		}
	case OpCMP, OpCMPI:
		a := r[ra]
		var b uint32
		if op == OpCMPI {
			b = uint32(simm)
		} else {
			b = r[rb]
		}
		res := a - b
		c.setFlagsArith(res, a < b, (a^b)&0x80000000 != 0 && (a^res)&0x80000000 != 0)
	case OpJMP:
		npc = uint32(int64(pc) + InstrSize + int64(simm))
	case OpJE, OpJNE, OpJLT, OpJGE, OpJGT, OpJLE:
		if c.condTaken(op) {
			npc = uint32(int64(pc) + InstrSize + int64(simm))
		}
	case OpJR:
		npc = r[rb]
	case OpCALL:
		if t := c.Push(npc); t != nil {
			return *t
		}
		npc = uint32(int64(pc) + InstrSize + int64(simm))
	case OpCALLR:
		if t := c.Push(npc); t != nil {
			return *t
		}
		npc = r[rb]
	case OpRET:
		v, t := c.Pop()
		if t != nil {
			return *t
		}
		npc = v
	case OpPUSH:
		if t := c.Push(r[ra]); t != nil {
			return *t
		}
	case OpPOP:
		v, t := c.Pop()
		if t != nil {
			return *t
		}
		r[ra] = v
	case OpSYSCALL:
		c.Regs.PC = npc
		c.Instret++
		return Trap{Kind: TrapSyscall}
	case OpBPT:
		// PC stays at the breakpoint address itself.
		return fault(types.FLTBPT, pc)
	case OpHLT:
		return fault(types.FLTPRIV, pc)
	case OpFMOVI:
		c.FP.F[ra] = float64(simm)
	case OpFADD:
		c.FP.F[ra] += c.FP.F[rb]
	case OpFMUL:
		c.FP.F[ra] *= c.FP.F[rb]
	case OpFDIV:
		if c.FP.F[rb] == 0 {
			return fault(types.FLTFPE, pc)
		}
		c.FP.F[ra] /= c.FP.F[rb]
	case OpMOVSPR:
		r[ra] = c.Regs.SP
	case OpMOVRSP:
		c.Regs.SP = r[ra]
	case OpSHLR:
		r[ra] <<= r[rb] & 31
		c.setFlagsArith(r[ra], false, false)
	case OpSHRR:
		r[ra] >>= r[rb] & 31
		c.setFlagsArith(r[ra], false, false)
	default:
		return fault(types.FLTILL, pc)
	}

	c.Regs.PC = npc
	c.Instret++
	if c.Regs.PSW&FlagTrace != 0 {
		return fault(types.FLTTRACE, c.Regs.PC)
	}
	return Trap{}
}
