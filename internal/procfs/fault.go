package procfs

import "repro/internal/fault"

// siteFaultIoctl guards the ioctl operations that allocate scratch state
// (status snapshots, map tables, watchpoint lists). Hits are attributed to
// the target process's pid.
var siteFaultIoctl = fault.Register("procfs.ioctl")

// siteFaultSnap guards the batched snapshot's record-table allocation
// (PIOCSNAP). Hits carry no process context: the caller is an external
// controlling program, not a simulated process.
var siteFaultSnap = fault.Register("procfs.snap")
