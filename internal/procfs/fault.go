package procfs

import "repro/internal/fault"

// siteFaultIoctl guards the ioctl operations that allocate scratch state
// (status snapshots, map tables, watchpoint lists). Hits are attributed to
// the target process's pid.
var siteFaultIoctl = fault.Register("procfs.ioctl")
