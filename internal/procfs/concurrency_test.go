package procfs_test

import (
	"fmt"
	"sync"
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

// TestConcurrentControllers races host-side /proc controllers against the
// SMP scheduler: while the driver goroutine steps a fork/exit/ptrace storm
// across four simulated CPUs, inspector goroutines continuously take
// PIOCSNAP snapshots and chase individual pids with PIOCPSINFO/PIOCCRED,
// and a killer goroutine posts signals with PIOCKILL. Run under -race, this
// exercises the cross-process locking contract of every host-side /proc
// entry point (open, ioctl, snapshot, close) against fork, exit, reap,
// signal delivery and the ptrace stop machinery.
//
// The test keeps the single-driver discipline: only the main goroutine
// steps the scheduler, so the wait-style operations (PIOCSTOP, PIOCWSTOP)
// that drive it are deliberately absent from the inspector loops.
func TestConcurrentControllers(t *testing.T) {
	s := repro.NewSystem(repro.Options{NCPU: 4})
	defer s.Close()

	// A process family: fork a napping child and a crashing child, reap
	// both, exit 7 — fork, sleep/wake, fault-to-signal, exit and reap.
	const family = `
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_sleep
	movi r1, 20
	syscall
	movi r0, SYS_exit
	movi r1, 0
	syscall
parent:
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne reap
	movi r1, 1
	movi r2, 0
	div r1, r2
reap:
	movi r0, SYS_wait
	movi r1, 0
	syscall
	movi r0, SYS_wait
	movi r1, 0
	syscall
	movi r0, SYS_exit
	movi r1, 7
	syscall
`
	// A ptrace family: the child arranges to be traced and stops on a
	// signal; the parent kills it through ptrace and reaps the corpse.
	const tracer = `
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_ptrace	; child: TRACEME then stop on a signal
	movi r1, 0
	syscall
	movi r0, SYS_getpid
	syscall
	mov r6, r0
	movi r0, SYS_kill
	mov r1, r6
	movi r2, 5
	syscall
loop:	jmp loop
parent:
	mov r6, r0
	movi r0, SYS_wait
	movi r1, 0
	syscall
	movi r0, SYS_ptrace
	movi r1, 8		; PTRACE_KILL
	mov r2, r6
	syscall
	movi r0, SYS_wait
	movi r1, 0
	syscall
	movi r0, SYS_exit
	movi r1, 7
	syscall
`
	// Long-lived spinners give the killer goroutine stable targets.
	const spinner = `
loop:	movi r0, SYS_getpid
	syscall
	jmp loop
`
	var parents []*kernel.Proc
	for i := 0; i < 3; i++ {
		p, err := s.SpawnProg(fmt.Sprintf("cfam%d", i), family, types.UserCred(100, 10))
		if err != nil {
			t.Fatal(err)
		}
		parents = append(parents, p)
	}
	for i := 0; i < 2; i++ {
		p, err := s.SpawnProg(fmt.Sprintf("ctrc%d", i), tracer, types.UserCred(100, 10))
		if err != nil {
			t.Fatal(err)
		}
		parents = append(parents, p)
	}
	var victims []*kernel.Proc
	for i := 0; i < 3; i++ {
		p, err := s.SpawnProg(fmt.Sprintf("cvic%d", i), spinner, types.UserCred(100, 10))
		if err != nil {
			t.Fatal(err)
		}
		victims = append(victims, p)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup

	// Inspectors: snapshot the table, then chase one pid from the result.
	// Per-pid operations tolerate errors — the target may exit, be reaped
	// or exec between the snapshot and the open — but the snapshot itself
	// must always succeed.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := s.Client(types.RootCred())
			rng := uint32(g)*2654435761 + 12345
			next := func(n int) int {
				rng = rng*1664525 + 1013904223
				return int(rng>>16) % n
			}
			var sn procfs.PrSnap
			for {
				select {
				case <-done:
					return
				default:
				}
				dir, err := cl.Open("/proc", vfs.ORead)
				if err != nil {
					t.Errorf("inspector %d: open /proc: %v", g, err)
					return
				}
				sn.WithUsage = true
				err = dir.Ioctl(procfs.PIOCSNAP, &sn)
				dir.Close()
				if err != nil {
					t.Errorf("inspector %d: PIOCSNAP: %v", g, err)
					return
				}
				if len(sn.Procs) == 0 {
					t.Errorf("inspector %d: empty snapshot", g)
					return
				}
				rec := sn.Procs[next(len(sn.Procs))]
				f, err := s.OpenProc(rec.Info.Pid, vfs.ORead, types.RootCred())
				if err != nil {
					continue // exited or reaped since the snapshot
				}
				var ps kernel.PSInfo
				_ = f.Ioctl(procfs.PIOCPSINFO, &ps)
				var cred types.Cred
				_ = f.Ioctl(procfs.PIOCCRED, &cred)
				f.Close()
			}
		}(g)
	}

	// Killer: post harmless signals at the spinners through PIOCKILL. The
	// spinners ignore nothing — SIGINT terminates them — so the fleet also
	// exercises signal-driven exit racing the inspectors.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-done:
				return
			default:
			}
			v := victims[i%len(victims)]
			i++
			f, err := s.OpenProc(v.Pid, vfs.ORead|vfs.OWrite, types.RootCred())
			if err != nil {
				continue // already dead
			}
			sig := types.SIGINT
			_ = f.Ioctl(procfs.PIOCKILL, &sig)
			f.Close()
		}
	}()

	// The driver: the only goroutine that steps the scheduler.
	for _, p := range parents {
		status, err := s.WaitExit(p)
		if err != nil {
			close(done)
			wg.Wait()
			t.Fatalf("pid %d: %v", p.Pid, err)
		}
		if ok, code := kernel.WIfExited(status); !ok || code != 7 {
			close(done)
			wg.Wait()
			t.Fatalf("pid %d: status %#x, want clean exit 7", p.Pid, status)
		}
	}
	// Give the controllers a little more concurrent run time over a
	// now-stable table, then stop them.
	for i := 0; i < 2000; i++ {
		s.Step()
	}
	close(done)
	wg.Wait()
}
