package procfs_test

import (
	"encoding/binary"
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/procfs"
	"repro/internal/types"
)

// These tests pin TLB invalidation driven from outside the process, through
// /proc: the target is mid-run with hot translations when the controller
// changes mapping state, and the change must take effect on the target's
// very next access.

// symAddr resolves a label in the target's image.
func symAddr(t *testing.T, p *kernel.Proc, name string) uint32 {
	t.Helper()
	syms, _ := p.ImageSyms()
	for _, sym := range syms {
		if sym.Name == name {
			return sym.Value
		}
	}
	t.Fatalf("symbol %q not found", name)
	return 0
}

// A watchpoint set through PIOCSWATCH while the target is storing to the
// page every few instructions must fire on the next store: the target's
// writable translation for the page is hot and has to be shot down.
func TestTLBInvalidateWatchThroughProc(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("hotwatch", `
	la r3, cell
	movi r4, 0
loop:	addi r4, 1
	st r4, [r3]		; store every iteration: translation stays hot
	movi r5, 0
	movhi r5, 2		; 131072 iterations
	cmp r4, r5
	jne loop
	movi r0, SYS_exit
	movi r1, 0
	syscall
.data
cell:	.word 0
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(50) // let it run: the store translation is now cached
	f := rootOpen(t, s, p.Pid)
	defer f.Close()

	cell := symAddr(t, p, "cell")
	var fset types.FltSet
	fset.Add(types.FLTWATCH)
	if err := f.Ioctl(procfs.PIOCSFAULT, &fset); err != nil {
		t.Fatal(err)
	}
	w := procfs.PrWatch{Vaddr: cell, Size: 4, Mode: mem.ProtWrite}
	if err := f.Ioctl(procfs.PIOCSWATCH, &w); err != nil {
		t.Fatal(err)
	}
	var st kernel.ProcStatus
	if err := f.Ioctl(procfs.PIOCWSTOP, &st); err != nil {
		t.Fatal(err)
	}
	if st.Why != kernel.WhyFaulted || st.What != types.FLTWATCH {
		t.Fatalf("stop: %+v, want FLTWATCH (no stop means a stale TLB entry kept absorbing the stores)", st)
	}

	// Clearing the watchpoint must re-enable direct stores; the target
	// finishes its remaining iterations promptly.
	if err := f.Ioctl(procfs.PIOCCWATCH, nil); err != nil {
		t.Fatal(err)
	}
	run := kernel.RunFlags{ClearFault: true}
	if err := f.Ioctl(procfs.PIOCRUN, &run); err != nil {
		t.Fatal(err)
	}
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatal(err)
	}
	if ok, code := kernel.WIfExited(status); !ok || code != 0 {
		t.Fatalf("status = %#x", status)
	}
}

// A write to the target's address space through the /proc image file must be
// seen by the target's next load. The target polls a flag it has read (as
// zero) many times, so its translation for the page — the shared zero page,
// before the write materializes a private one — is as stale as it can get.
func TestTLBInvalidateProcPwrite(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("hotflag", `
	la r3, flag
loop:	ld r4, [r3]		; poll: translation stays hot
	cmpi r4, 0
	je loop
	movi r0, SYS_exit
	mov r1, r4
	syscall
.bss
flag:	.space 4
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(50) // the flag page's read translation is now cached
	f := rootOpen(t, s, p.Pid)
	defer f.Close()

	flag := symAddr(t, p, "flag")
	var word [4]byte
	binary.BigEndian.PutUint32(word[:], 9)
	if _, err := f.Pwrite(word[:], int64(flag)); err != nil {
		t.Fatal(err)
	}
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatalf("target never saw the written flag (stale zero-page translation): %v", err)
	}
	if ok, code := kernel.WIfExited(status); !ok || code != 9 {
		t.Fatalf("status = %#x, want exit 9", status)
	}
}
