package procfs_test

import (
	"fmt"
	"strings"
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/procfs"
	"repro/internal/types"
	"repro/internal/vcpu"
	"repro/internal/vfs"
)

const spin = `
loop:	jmp loop
`

func open(t *testing.T, s *repro.System, pid int, flags int, cred types.Cred) *vfs.File {
	t.Helper()
	f, err := s.OpenProc(pid, flags, cred)
	if err != nil {
		t.Fatalf("open /proc/%05d: %v", pid, err)
	}
	return f
}

func rootOpen(t *testing.T, s *repro.System, pid int) *vfs.File {
	return open(t, s, pid, vfs.ORead|vfs.OWrite, types.RootCred())
}

// --- Figure 1: a sample /proc directory ---

func TestFigure1Listing(t *testing.T) {
	s := repro.NewSystem()
	// A couple of user processes under different uids, like the figure.
	if _, err := s.SpawnProg("weather", spin, types.UserCred(205, 20)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SpawnProg("shell", spin, types.UserCred(101, 10)); err != nil {
		t.Fatal(err)
	}
	s.Run(5)

	ents, err := s.Client(types.RootCred()).ReadDir("/proc")
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]vfs.Attr{}
	for _, e := range ents {
		byName[e.Name] = e.Attr
	}
	// The name of each entry is a decimal number corresponding to the pid.
	if _, ok := byName["00000"]; !ok {
		t.Fatal("no entry for process 0")
	}
	if _, ok := byName["00001"]; !ok {
		t.Fatal("no entry for init")
	}
	if _, ok := byName["00002"]; !ok {
		t.Fatal("no entry for process 2")
	}
	// System processes have no user-level address space: size 0.
	if byName["00000"].Size != 0 || byName["00002"].Size != 0 {
		t.Fatal("system process sizes should be 0")
	}
	// init is a real program: nonzero size.
	if byName["00001"].Size == 0 {
		t.Fatal("init size should be nonzero")
	}
	// Owner and group are the real ids; mode prints as -rw-------.
	for name, attr := range byName {
		if attr.Type != vfs.VPROC {
			t.Fatalf("%s: type %v", name, attr.Type)
		}
		if got := vfs.FmtMode(attr.Mode); got != "rw-------" {
			t.Fatalf("%s: mode %s", name, got)
		}
	}
	// Find the weather process entry and check ownership.
	found := false
	for name, attr := range byName {
		var pid int
		fmt.Sscanf(name, "%d", &pid)
		p := s.K.Proc(pid)
		if p != nil && p.Comm == "weather" {
			found = true
			if attr.UID != 205 || attr.GID != 20 {
				t.Fatalf("weather owned by %d/%d", attr.UID, attr.GID)
			}
			if attr.Size != p.VirtSize() || attr.Size == 0 {
				t.Fatalf("weather size %d", attr.Size)
			}
		}
	}
	if !found {
		t.Fatal("weather process not listed")
	}
}

// --- Figure 2: a typical memory map ---

func TestFigure2MemoryMap(t *testing.T) {
	s := repro.NewSystem()
	// Install a shared library and a program using it, with initialized
	// data and bss — the ingredients of the figure's map.
	if err := s.Install("/lib/libdemo", `
libfn:	ret
.data
libdata: .word 1, 2, 3
`, 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	p, err := s.SpawnProg("mapped", `
.lib "libdemo"
loop:	jmp loop
.data
greet:	.ascii "data!"
.bss
scratch: .space 8192
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(3)

	f := rootOpen(t, s, p.Pid)
	defer f.Close()
	var n int
	if err := f.Ioctl(procfs.PIOCNMAP, &n); err != nil {
		t.Fatal(err)
	}
	var maps []procfs.PrMap
	if err := f.Ioctl(procfs.PIOCMAP, &maps); err != nil {
		t.Fatal(err)
	}
	if len(maps) != n {
		t.Fatalf("PIOCNMAP %d != len(PIOCMAP) %d", n, len(maps))
	}
	// Expect: text (read/exec), data (rw), break (rw), stack (rw),
	// shlib text (read/exec), shlib data (rw) = 6 mappings.
	kinds := map[mem.SegKind]*procfs.PrMap{}
	for i := range maps {
		kinds[maps[i].Kind] = &maps[i]
	}
	text := kinds[mem.KindText]
	if text == nil || text.Prot != mem.ProtRX || text.Vaddr != 0x80000000 {
		t.Fatalf("text mapping wrong: %+v", text)
	}
	if text.Shared {
		t.Fatal("text must be MAP_PRIVATE — that is what makes breakpoints safe")
	}
	data := kinds[mem.KindData]
	if data == nil || data.Prot != mem.ProtRW {
		t.Fatalf("data mapping wrong: %+v", data)
	}
	if kinds[mem.KindBreak] == nil || kinds[mem.KindStack] == nil {
		t.Fatal("break and stack mappings appear in the list despite the disclaimers")
	}
	lt := kinds[mem.KindShlibText]
	if lt == nil || lt.Vaddr < 0xC0000000 || lt.Prot != mem.ProtRX {
		t.Fatalf("shared library text wrong: %+v", lt)
	}
	if kinds[mem.KindShlibData] == nil {
		t.Fatal("shared library data missing")
	}
	if !strings.Contains(text.Name, "/bin/mapped") {
		t.Fatalf("text object name %q", text.Name)
	}
}

// --- address space I/O ---

func TestAddressSpaceIO(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("target", `
loop:	jmp loop
.data
blob:	.ascii "0123456789"
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2)
	f := rootOpen(t, s, p.Pid)
	defer f.Close()

	var st kernel.ProcStatus
	if err := f.Ioctl(procfs.PIOCSTATUS, &st); err != nil {
		t.Fatal(err)
	}
	// lseek to the virtual address of interest, then read.
	syms, _ := p.ImageSyms()
	var blob uint32
	for _, sym := range syms {
		if sym.Name == "blob" {
			blob = sym.Value
		}
	}
	if blob == 0 {
		t.Fatal("no blob symbol")
	}
	if _, err := f.Seek(int64(blob), vfs.SeekSet); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if _, err := f.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "0123456789" {
		t.Fatalf("read %q", buf)
	}
	// Write through /proc and read back.
	if _, err := f.Pwrite([]byte("XY"), int64(blob)); err != nil {
		t.Fatal(err)
	}
	f.Pread(buf, int64(blob))
	if string(buf[:2]) != "XY" {
		t.Fatalf("write did not take: %q", buf)
	}
	// I/O at an unmapped offset fails.
	if _, err := f.Pread(buf, 0x100); err == nil {
		t.Fatal("read of unmapped area should fail")
	}
	if _, err := f.Pwrite(buf, 0x100); err == nil {
		t.Fatal("write of unmapped area should fail")
	}
}

// C8: a breakpoint planted through /proc is isolated by copy-on-write from
// the executable file and from other processes running the same program.
func TestBreakpointCOWIsolation(t *testing.T) {
	s := repro.NewSystem()
	cred := types.UserCred(100, 10)
	if err := s.Install("/bin/shared", spin, 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	p1, err := s.Spawn("/bin/shared", nil, cred)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Spawn("/bin/shared", nil, cred)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2)

	f1 := rootOpen(t, s, p1.Pid)
	defer f1.Close()
	// Plant a breakpoint in p1's (read/exec) text.
	w := vcpu.BreakpointWord
	bp := []byte{byte(w >> 24), byte(w >> 16), byte(w >> 8), byte(w)}
	if _, err := f1.Pwrite(bp, 0x80000000); err != nil {
		t.Fatalf("breakpoint write failed: %v", err)
	}
	// Visible in p1.
	got := make([]byte, 4)
	f1.Pread(got, 0x80000000)
	if got[0] != bp[0] {
		t.Fatal("breakpoint not visible in p1")
	}
	// Invisible in p2.
	f2 := rootOpen(t, s, p2.Pid)
	defer f2.Close()
	f2.Pread(got, 0x80000000)
	if got[0] == bp[0] {
		t.Fatal("breakpoint leaked into p2's address space")
	}
	// And the executable file itself is unchanged.
	data, err := s.Client(types.RootCred()).ReadFile("/bin/shared")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data[len(data)-8:]), string(bp)) {
		t.Fatal("suspicious: check file content")
	}
	obj, _ := s.FS.Object("/bin/shared")
	hdr := make([]byte, 4)
	obj.ReadObj(hdr, obj.ObjSize()-4) // last word is text+data region
	// Stronger check: p1's text segment has a private page, the file none.
	if p1.AS.FindSeg(0x80000000).PrivatePages() != 1 {
		t.Fatal("expected exactly one privatized page in p1's text")
	}
	if p2.AS.FindSeg(0x80000000).PrivatePages() != 0 {
		t.Fatal("p2's text should have no privatized pages")
	}
}

// --- security (C10 among others) ---

func TestOpenSecurity(t *testing.T) {
	s := repro.NewSystem()
	owner := types.UserCred(100, 10)
	p, err := s.SpawnProg("victim", spin, owner)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2)
	// Owner can open.
	f := open(t, s, p.Pid, vfs.ORead|vfs.OWrite, owner)
	f.Close()
	// A different uid cannot.
	if _, err := s.OpenProc(p.Pid, vfs.ORead, types.UserCred(200, 10)); err != vfs.ErrPerm {
		t.Fatalf("foreign uid open: %v", err)
	}
	// Same uid, different gid cannot (both must match).
	if _, err := s.OpenProc(p.Pid, vfs.ORead, types.UserCred(100, 99)); err != vfs.ErrPerm {
		t.Fatalf("foreign gid open: %v", err)
	}
	// Root can always open.
	open(t, s, p.Pid, vfs.ORead|vfs.OWrite, types.RootCred()).Close()
}

func TestSetuidProcessRequiresRoot(t *testing.T) {
	s := repro.NewSystem()
	// A setuid-root executable spawned by a user.
	if err := s.Install("/bin/su", spin, 0o4755, 0, 0); err != nil {
		t.Fatal(err)
	}
	user := types.UserCred(100, 10)
	p, err := s.Spawn("/bin/su", nil, user)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2)
	if !p.SugidDirty {
		t.Fatal("setup: process should be set-id")
	}
	if _, err := s.OpenProc(p.Pid, vfs.ORead, user); err != vfs.ErrPerm {
		t.Fatalf("set-id open by user: %v", err)
	}
	open(t, s, p.Pid, vfs.ORead, types.RootCred()).Close()
}

func TestExclusiveOpen(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("excl", spin, types.UserCred(100, 10))
	s.Run(2)
	f1 := open(t, s, p.Pid, vfs.ORead|vfs.OWrite|vfs.OExcl, types.RootCred())
	// Another writer collides.
	if _, err := s.OpenProc(p.Pid, vfs.ORead|vfs.OWrite, types.RootCred()); err != vfs.ErrBusy {
		t.Fatalf("second writer: %v", err)
	}
	// Read-only opens are unaffected.
	ro := open(t, s, p.Pid, vfs.ORead, types.RootCred())
	ro.Close()
	f1.Close()
	// After the exclusive close, writers may open again.
	open(t, s, p.Pid, vfs.ORead|vfs.OWrite, types.RootCred()).Close()
}

// C10: when a traced process execs a set-id file, the set-id is honored but
// the control descriptor becomes invalid; only close works. The process is
// directed to stop with run-on-last-close set, so a privileged controller
// can reopen to retain control, while closing releases it.
func TestSetIDExecInvalidation(t *testing.T) {
	s := repro.NewSystem()
	if err := s.Install("/bin/suprog", spin, 0o4755, 0, 0); err != nil {
		t.Fatal(err)
	}
	user := types.UserCred(100, 10)
	p, err := s.SpawnProg("execsu", `
	movi r0, SYS_exec
	la r1, path
	syscall
loop:	jmp loop
.data
path:	.asciz "/bin/suprog"
`, user)
	if err != nil {
		t.Fatal(err)
	}
	f := open(t, s, p.Pid, vfs.ORead|vfs.OWrite, user)
	// Trace something so we are a real controller, then let it exec.
	var eset types.SysSet
	eset.Add(kernel.SysGetpid)
	if err := f.Ioctl(procfs.PIOCSENTRY, &eset); err != nil {
		t.Fatal(err)
	}
	err = s.RunUntil(func() bool { return p.SugidDirty }, 200000)
	if err != nil {
		t.Fatal(err)
	}
	// The descriptor is now invalid: no further operation succeeds...
	var st kernel.ProcStatus
	if err := f.Ioctl(procfs.PIOCSTATUS, &st); err != vfs.ErrStale {
		t.Fatalf("ioctl on stale fd: %v", err)
	}
	if _, err := f.Pread(make([]byte, 4), 0x80000000); err != vfs.ErrStale {
		t.Fatalf("read on stale fd: %v", err)
	}
	// ...and the process was directed to stop with run-on-last-close set.
	if !p.Trace.RunLC {
		t.Fatal("run-on-last-close should be set")
	}
	if err := s.RunUntil(func() bool { return p.EventStoppedLWP() != nil }, 200000); err != nil {
		t.Fatalf("process did not stop: %v", err)
	}
	// A privileged controller can reopen and retain control.
	g := open(t, s, p.Pid, vfs.ORead|vfs.OWrite, types.RootCred())
	if err := g.Ioctl(procfs.PIOCSTATUS, &st); err != nil {
		t.Fatal(err)
	}
	// Just closing the descriptors clears tracing and sets it running.
	if err := f.Close(); err != nil {
		t.Fatalf("close of stale fd must succeed: %v", err)
	}
	g.Close()
	s.Run(5)
	if p.EventStoppedLWP() != nil {
		t.Fatal("process should be running after last close")
	}
	if !p.Trace.Empty() {
		t.Fatal("tracing flags should be cleared")
	}
}

func TestRunOnLastClose(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("rlc", spin, types.UserCred(100, 10))
	f := rootOpen(t, s, p.Pid)
	if err := f.Ioctl(procfs.PIOCSRLC, nil); err != nil {
		t.Fatal(err)
	}
	var st kernel.ProcStatus
	if err := f.Ioctl(procfs.PIOCSTOP, &st); err != nil {
		t.Fatal(err)
	}
	if st.Flags&kernel.PRStopped == 0 || st.Flags&kernel.PRRlc == 0 {
		t.Fatalf("flags = %#x", st.Flags)
	}
	// The controller "dies": closing the last writable fd releases the
	// stopped process and clears all tracing flags.
	f.Close()
	s.Run(5)
	if p.Rep().Stopped() {
		t.Fatal("process should have been set running on last close")
	}
	if !p.Trace.Empty() {
		t.Fatal("tracing flags should be cleared on last close")
	}
}

// Without run-on-last-close, tracing flags remain active after close so the
// process can be left hanging and reattached later.
func TestTracingSurvivesCloseWithoutRLC(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("hang", spin, types.UserCred(100, 10))
	f := rootOpen(t, s, p.Pid)
	var st kernel.ProcStatus
	if err := f.Ioctl(procfs.PIOCSTOP, &st); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s.Run(5)
	if !p.Rep().Stopped() {
		t.Fatal("process should remain stopped (left hanging)")
	}
	// Reattach and release.
	g := rootOpen(t, s, p.Pid)
	if err := g.Ioctl(procfs.PIOCRUN, nil); err != nil {
		t.Fatal(err)
	}
	g.Close()
	s.Run(5)
	if p.Rep().Stopped() {
		t.Fatal("reattached run failed")
	}
}
