// Package procfs implements the SVR4 process file system — the paper's
// central contribution. Every process in the system appears as a file in a
// directory conventionally named /proc; the name of each entry is a decimal
// number corresponding to the process id, the owner and group are the
// process's real user-id and group-id, and the reported size is the total
// virtual memory size of the process.
//
// Standard system call interfaces access the files: open, close, lseek,
// read, write and ioctl. Data may be transferred from or to any valid
// locations in the process's address space by applying lseek to position the
// file at the virtual address of interest followed by read or write.
// Information and control operations are provided through ioctl.
//
// The implementation mirrors the paper's: /proc is an fstype under the VFS —
// lookups construct vnodes for live processes (prlookup), reading the
// directory synthesizes entries for every process (preaddir), and
// read/write/ioctl on a process file turn into address-space I/O and
// process-control operations (prread/prwrite/prioctl).
package procfs

import (
	"fmt"
	"strconv"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/types"
	"repro/internal/vfs"
)

// FS is a /proc file system instance over one kernel.
type FS struct {
	K *kernel.Kernel
	// MaxWait bounds the scheduling work a blocking operation (PIOCSTOP,
	// PIOCWSTOP) will perform before giving up.
	MaxWait int
}

// New creates the file system.
func New(k *kernel.Kernel) *FS {
	return &FS{K: k, MaxWait: 5_000_000}
}

// Root returns the /proc directory vnode, ready to be mounted.
func (fs *FS) Root() vfs.Dir { return &rootVnode{fs: fs} }

// PidName formats a pid the way /proc names its entries ("00042").
func PidName(pid int) string { return fmt.Sprintf("%05d", pid) }

// rootVnode is the /proc directory: its contents are synthesized from the
// process table on every operation, the "fantasy world" of the paper.
type rootVnode struct{ fs *FS }

// VAttr implements vfs.Vnode.
//
// The vnode operations below are host-side entry points (debuggers, ps,
// tests); they may run concurrently with the SMP scheduler. Process-table
// enumeration (Proc, Procs, TableRev) is internally synchronized, but any
// per-process state is read or written under the kernel's cross-process
// contract — the global kernel lock plus the per-process lock, both no-ops
// in deterministic mode.
func (r *rootVnode) VAttr() (vfs.Attr, error) {
	return vfs.Attr{
		Type: vfs.VDIR, Mode: 0o555, UID: 0, GID: 0,
		Size: int64(len(r.fs.K.Procs())), MTime: r.fs.K.Now(), Nlink: 2,
	}, nil
}

// VOpen implements vfs.Vnode. The directory handle remembers the opening
// credentials: PIOCSNAP, the batched snapshot, is issued on it and filters
// the table by the same rule the per-process opens enforce.
func (r *rootVnode) VOpen(flags int, c types.Cred) (vfs.Handle, error) {
	if flags&vfs.OWrite != 0 {
		return nil, vfs.ErrIsDir
	}
	return &rootHandle{fs: r.fs, cred: c}, nil
}

// VLookup implements vfs.Dir: prlookup searches the process table for the
// named pid and constructs a vnode for it.
func (r *rootVnode) VLookup(name string, c types.Cred) (vfs.Vnode, error) {
	pid, err := strconv.Atoi(name)
	if err != nil || pid < 0 {
		return nil, vfs.ErrNotExist
	}
	p := r.fs.K.Proc(pid)
	if p == nil {
		return nil, vfs.ErrNotExist
	}
	return &ProcVnode{FS: r.fs, P: p}, nil
}

// VReadDir implements vfs.Dir: preaddir examines the system process
// structures and constructs a set of directory entries naming all the
// processes in the system.
func (r *rootVnode) VReadDir(c types.Cred) ([]vfs.Dirent, error) {
	var out []vfs.Dirent
	r.fs.K.GlobalLock()
	defer r.fs.K.GlobalUnlock()
	for _, p := range r.fs.K.Procs() {
		vn := &ProcVnode{FS: r.fs, P: p}
		p.Lock()
		attr, _ := vn.attrLocked()
		p.Unlock()
		out = append(out, vfs.Dirent{Name: PidName(p.Pid), Attr: attr})
	}
	return out, nil
}

// ProcVnode is the vnode of one process file.
type ProcVnode struct {
	FS *FS
	P  *kernel.Proc
}

// VAttr implements vfs.Vnode: the owner and group of the file are the
// process's real user-id and group-id, and the size is the total virtual
// memory size (system processes such as 0 and 2 have no user-level address
// space, so their sizes are zero).
func (v *ProcVnode) VAttr() (vfs.Attr, error) {
	v.FS.K.GlobalLock()
	v.P.Lock()
	attr, err := v.attrLocked()
	v.P.Unlock()
	v.FS.K.GlobalUnlock()
	return attr, err
}

// attrLocked builds the attributes with the global and per-process locks
// already held (VReadDir batches them under one global acquisition).
func (v *ProcVnode) attrLocked() (vfs.Attr, error) {
	return vfs.Attr{
		Type: vfs.VPROC, Mode: 0o600,
		UID: v.P.Cred.RUID, GID: v.P.Cred.RGID,
		Size: v.P.VirtSize(), MTime: v.FS.K.Now(), Nlink: 1,
	}, nil
}

// VOpen implements vfs.Vnode. Permission to open is more restrictive than
// traditional file system permissions: both the uid and gid of the traced
// process must match those of the controlling process; set-id processes can
// be opened only by the super-user. A /proc file may be opened for exclusive
// read/write use with O_EXCL; read-only opens are unaffected by exclusivity.
func (v *ProcVnode) VOpen(flags int, c types.Cred) (vfs.Handle, error) {
	p := v.P
	v.FS.K.GlobalLock()
	p.Lock()
	defer func() {
		p.Unlock()
		v.FS.K.GlobalUnlock()
	}()
	if p.State() == kernel.PGone {
		return nil, vfs.ErrNotExist
	}
	if !CanOpen(p, c) {
		return nil, vfs.ErrPerm
	}
	writer := flags&vfs.OWrite != 0
	if writer {
		if p.Trace.Excl {
			return nil, vfs.ErrBusy
		}
		if flags&vfs.OExcl != 0 {
			if p.Trace.Writers > 0 {
				return nil, vfs.ErrBusy
			}
			p.Trace.Excl = true
		}
		p.Trace.Writers++
	}
	return &Handle{
		fs: v.FS, p: p, flags: flags, gen: p.Trace.Gen,
		excl: writer && flags&vfs.OExcl != 0,
	}, nil
}

var _ vfs.Vnode = (*ProcVnode)(nil)

// Handle is the open state of a process file.
type Handle struct {
	fs     *FS
	p      *kernel.Proc
	flags  int
	gen    int
	excl   bool
	closed bool
}

// valid checks the handle before an operation. When a traced process execs a
// set-id file, previously-opened descriptors become invalid: no further
// operation succeeds except close.
func (h *Handle) valid() error {
	if h.closed {
		return vfs.ErrBadFD
	}
	if h.gen != h.p.Trace.Gen {
		return vfs.ErrStale
	}
	if !h.p.Alive() {
		return vfs.ErrNotExist
	}
	return nil
}

// addrSpace validates the handle and returns the process's address space,
// taking the cross-process locks around the state reads. The address-space
// I/O itself runs outside the kernel locks: the AS serializes internally,
// and page copies should not extend global-lock hold times.
func (h *Handle) addrSpace() (*mem.AS, error) {
	h.fs.K.GlobalLock()
	h.p.Lock()
	defer func() {
		h.p.Unlock()
		h.fs.K.GlobalUnlock()
	}()
	if err := h.valid(); err != nil {
		return nil, err
	}
	if h.p.AS == nil {
		return nil, vfs.ErrInval
	}
	return h.p.AS, nil
}

// HRead implements vfs.Handle: reads the process address space at the
// virtual address given by the file offset.
func (h *Handle) HRead(b []byte, off int64) (int, error) {
	as, err := h.addrSpace()
	if err != nil {
		return 0, err
	}
	n, err := as.ReadAt(b, off)
	if err != nil {
		return 0, vfs.Errorf("procfs: read at unmapped offset %#x", off)
	}
	return n, nil
}

// HWrite implements vfs.Handle: writes the process address space. Writes to
// MAP_PRIVATE mappings (including read/exec text) are satisfied by
// copy-on-write, so planting breakpoints corrupts neither the executable
// file nor other processes running the same code.
func (h *Handle) HWrite(b []byte, off int64) (int, error) {
	as, err := h.addrSpace()
	if err != nil {
		return 0, err
	}
	if h.flags&vfs.OWrite == 0 {
		return 0, vfs.ErrBadFD
	}
	n, err := as.WriteAt(b, off)
	if err != nil {
		if err == mem.ErrNoMem {
			// A refused page materialization is a transient resource
			// failure, not an address error; report it as such.
			return 0, vfs.ErrAgain
		}
		return 0, vfs.Errorf("procfs: write at unmapped offset %#x", off)
	}
	return n, nil
}

// HClose implements vfs.Handle. With run-on-last-close set, when the last
// writable descriptor is closed all tracing flags are cleared and the
// process, if stopped, is set running — so a controlled process is released
// even if its controller is killed with SIGKILL.
func (h *Handle) HClose() error {
	if h.closed {
		return vfs.ErrBadFD
	}
	h.closed = true
	p := h.p
	h.fs.K.GlobalLock()
	p.Lock()
	defer func() {
		p.Unlock()
		h.fs.K.GlobalUnlock()
	}()
	stale := h.gen != p.Trace.Gen
	if h.flags&vfs.OWrite != 0 && !stale {
		if h.excl {
			p.Trace.Excl = false
		}
		if p.Trace.Writers > 0 {
			p.Trace.Writers--
		}
		if p.Trace.Writers == 0 && p.Trace.RunLC && p.Alive() {
			h.fs.K.ReleaseTracing(p)
		}
	}
	return nil
}

// HPoll implements vfs.Poller — the paper's proposed extension: a /proc file
// descriptor is "ready" (exceptional condition) when the process is stopped
// on an event of interest, so a debugger can wait for any one of a set of
// controlled processes with poll(2).
func (h *Handle) HPoll(mask int) int {
	if h.closed {
		return 0
	}
	h.fs.K.GlobalLock()
	h.p.Lock()
	defer func() {
		h.p.Unlock()
		h.fs.K.GlobalUnlock()
	}()
	if !h.p.Alive() {
		return 0
	}
	if mask&vfs.PollPri != 0 && h.p.EventStoppedLWP() != nil {
		return vfs.PollPri
	}
	return 0
}

// HSaveState / HLoadState implement vfs.HandleSnapshotter: the only
// mutable per-open state is the closed flag (gen, excl and flags are fixed
// at open; the writer accounting they feed lives in the Proc, which the
// kernel snapshot covers).
func (h *Handle) HSaveState() any      { return h.closed }
func (h *Handle) HLoadState(st any) {
	if c, ok := st.(bool); ok {
		h.closed = c
	}
}

var (
	_ vfs.Handle           = (*Handle)(nil)
	_ vfs.Poller           = (*Handle)(nil)
	_ vfs.HandleSnapshotter = (*Handle)(nil)
)
