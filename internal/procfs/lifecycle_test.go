package procfs_test

import (
	"sort"
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

// Operations on a process that exits while the handle is open fail, except
// close — and PIOCPSINFO, which works for zombies (ps shows state Z).
func TestProcessDeathInvalidatesOperations(t *testing.T) {
	s := repro.NewSystem()
	// A parent that never waits keeps the child a zombie.
	parent, err := s.SpawnProg("keeper", `
	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne spin
	movi r0, SYS_exit
	movi r1, 4
	syscall
spin:	jmp spin
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	var child *kernel.Proc
	err = s.RunUntil(func() bool {
		for _, q := range s.K.Procs() {
			if q.Parent == parent {
				child = q
				return true
			}
		}
		return false
	}, 500000)
	if err != nil {
		t.Fatal(err)
	}
	f := open(t, s, child.Pid, vfs.ORead|vfs.OWrite, types.RootCred())
	defer f.Close()
	// Let the child exit while we hold the handle.
	if err := s.RunUntil(func() bool { return child.Zombie() }, 500000); err != nil {
		t.Fatal(err)
	}
	var st kernel.ProcStatus
	if err := f.Ioctl(procfs.PIOCSTATUS, &st); err != vfs.ErrNotExist {
		t.Fatalf("status on zombie: %v", err)
	}
	if _, err := f.Pread(make([]byte, 4), 0x80000000); err != vfs.ErrNotExist {
		t.Fatalf("read on zombie: %v", err)
	}
	// PIOCPSINFO still works and reports Z.
	var info kernel.PSInfo
	if err := f.Ioctl(procfs.PIOCPSINFO, &info); err != nil {
		t.Fatal(err)
	}
	if info.State != 'Z' {
		t.Fatalf("state = %c", info.State)
	}
	s.K.PostSignal(parent, types.SIGKILL)
	s.WaitExit(parent)
}

// A fully reaped process disappears from /proc entirely.
func TestReapedProcessGoneFromProc(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("brief", "\tmovi r0, SYS_exit\n\tmovi r1, 0\n\tsyscall\n", types.UserCred(100, 10))
	pid := p.Pid
	s.WaitExit(p)
	s.Run(5)
	if _, err := s.OpenProc(pid, vfs.ORead, types.RootCred()); err != vfs.ErrNotExist {
		t.Fatalf("open of reaped pid: %v", err)
	}
	ents, _ := s.Client(types.RootCred()).ReadDir("/proc")
	for _, e := range ents {
		if e.Name == procfs.PidName(pid) {
			t.Fatal("reaped pid still listed")
		}
	}
}

// PIOCSSIG sets the current signal: injecting a signal into a stopped
// process so that, when set running, it acts on it.
func TestPIOCSSIGInjectsSignal(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("inject", spin, types.UserCred(100, 10))
	f := rootOpen(t, s, p.Pid)
	defer f.Close()
	var st kernel.ProcStatus
	if err := f.Ioctl(procfs.PIOCSTOP, &st); err != nil {
		t.Fatal(err)
	}
	sig := types.SIGTERM
	if err := f.Ioctl(procfs.PIOCSSIG, &sig); err != nil {
		t.Fatal(err)
	}
	if err := f.Ioctl(procfs.PIOCRUN, nil); err != nil {
		t.Fatal(err)
	}
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatal(err)
	}
	if ok, got, _ := kernel.WIfSignaled(status); !ok || got != types.SIGTERM {
		t.Fatalf("status = %#x, want SIGTERM death", status)
	}
}

// PIOCSSIG with zero clears the current signal at a signalled stop.
func TestPIOCSSIGZeroClears(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("clear", spin, types.UserCred(100, 10))
	f := rootOpen(t, s, p.Pid)
	defer f.Close()
	var sigs types.SigSet
	sigs.Add(types.SIGTERM)
	if err := f.Ioctl(procfs.PIOCSTRACE, &sigs); err != nil {
		t.Fatal(err)
	}
	s.Run(2)
	kill := types.SIGTERM
	if err := f.Ioctl(procfs.PIOCKILL, &kill); err != nil {
		t.Fatal(err)
	}
	var st kernel.ProcStatus
	if err := f.Ioctl(procfs.PIOCWSTOP, &st); err != nil {
		t.Fatal(err)
	}
	if st.CurSig != types.SIGTERM {
		t.Fatalf("cursig = %d", st.CurSig)
	}
	zero := 0
	if err := f.Ioctl(procfs.PIOCSSIG, &zero); err != nil {
		t.Fatal(err)
	}
	if err := f.Ioctl(procfs.PIOCRUN, nil); err != nil {
		t.Fatal(err)
	}
	s.Run(20)
	if !p.Alive() {
		t.Fatal("cleared signal should not kill")
	}
	var none types.SigSet
	f.Ioctl(procfs.PIOCSTRACE, &none)
	s.K.PostSignal(p, types.SIGKILL)
	s.WaitExit(p)
}

// Directory attributes and the root vnode.
func TestProcRootAttributes(t *testing.T) {
	s := repro.NewSystem()
	cl := s.Client(types.RootCred())
	attr, err := cl.Stat("/proc")
	if err != nil {
		t.Fatal(err)
	}
	if attr.Type != vfs.VDIR || attr.Mode != 0o555 {
		t.Fatalf("attr = %+v", attr)
	}
	// /proc itself cannot be opened for writing.
	if _, err := cl.Open("/proc", vfs.OWrite); err == nil {
		t.Fatal("writable open of /proc should fail")
	}
	// Lookup of junk names fails cleanly.
	for _, name := range []string{"abc", "-1", "99999"} {
		if _, err := cl.Stat("/proc/" + name); err != vfs.ErrNotExist {
			t.Fatalf("lookup %q: %v", name, err)
		}
	}
	// Unpadded decimal names work too ("ls /proc/1").
	if _, err := cl.Stat("/proc/1"); err != nil {
		t.Fatalf("unpadded pid: %v", err)
	}
}

// The flat file's HPoll is the proposed poll extension.
func TestProcHandlePollSemantics(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("pollsem", spin, types.UserCred(100, 10))
	f := rootOpen(t, s, p.Pid)
	defer f.Close()
	if f.Poll(vfs.PollPri) != 0 {
		t.Fatal("running process should not be ready")
	}
	var st kernel.ProcStatus
	f.Ioctl(procfs.PIOCSTOP, &st)
	if f.Poll(vfs.PollPri) != vfs.PollPri {
		t.Fatal("stopped process should be ready")
	}
	if f.Poll(vfs.PollIn) != 0 {
		t.Fatal("only PollPri signals a stop")
	}
	f.Ioctl(procfs.PIOCRUN, nil)
}

// Writes through /proc respect mapping boundaries exactly like reads —
// "this includes writes as well as reads".
func TestWriteTruncationAtBoundary(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("edge", `
loop:	jmp loop
`, types.UserCred(100, 10))
	s.Run(2)
	f := rootOpen(t, s, p.Pid)
	defer f.Close()
	// The text mapping is one page; a write straddling its end truncates.
	seg := p.AS.FindSeg(0x80000000)
	end := int64(seg.Base) + int64(seg.Len)
	buf := make([]byte, 64)
	n, err := f.Pwrite(buf, end-16)
	if err != nil {
		t.Fatal(err)
	}
	if n != 16 {
		t.Fatalf("write n = %d, want 16 (truncated at boundary)", n)
	}
	n, err = f.Pread(buf, end-16)
	if err != nil || n != 16 {
		t.Fatalf("read n = %d err=%v", n, err)
	}
}

// saneStaleErr reports whether an operation on a handle to a dead or dying
// process failed the way the interface promises: with a clean errno, never
// a panic and never success on state that no longer exists.
func saneStaleErr(err error) bool {
	switch err {
	case nil, vfs.ErrNotExist, vfs.ErrStale, vfs.ErrAgain, vfs.ErrPerm,
		vfs.ErrBusy, vfs.ErrInval, vfs.EOF:
		return true
	}
	return false
}

// staleOps is every op class a holder of a /proc (or /procx) handle can
// issue: reads, writes, control ioctls and polls. Each must stay sane at
// every point of the target's lifecycle.
func staleOps(f *vfs.File) map[string]func() error {
	buf := make([]byte, 16)
	return map[string]func() error{
		"pread":  func() error { _, err := f.Pread(buf, 0x80000000); return err },
		"pwrite": func() error { _, err := f.Pwrite(buf, 0x80000000); return err },
		"status": func() error {
			var st kernel.ProcStatus
			return f.Ioctl(procfs.PIOCSTATUS, &st)
		},
		"psinfo": func() error {
			var info kernel.PSInfo
			return f.Ioctl(procfs.PIOCPSINFO, &info)
		},
		"map": func() error {
			var maps []procfs.PrMap
			return f.Ioctl(procfs.PIOCMAP, &maps)
		},
		"cred": func() error {
			var cred types.Cred
			return f.Ioctl(procfs.PIOCCRED, &cred)
		},
		"kill": func() error {
			sig := types.SIGINT
			return f.Ioctl(procfs.PIOCKILL, &sig)
		},
		"poll": func() error { f.Poll(vfs.PollPri | vfs.PollIn); return nil },
	}
}

// TestStaleHandleOpsAfterReap holds a /proc handle across the target's full
// exit and reap, then issues every op class: each must return a proper errno
// rather than panic, succeed, or hang.
func TestStaleHandleOpsAfterReap(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("brief", "\tmovi r0, SYS_exit\n\tmovi r1, 0\n\tsyscall\n",
		types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	f := open(t, s, p.Pid, vfs.ORead|vfs.OWrite, types.RootCred())
	defer f.Close()
	s.WaitExit(p)
	s.Run(5)
	if p.State() != kernel.PGone {
		t.Fatalf("target not reaped: state %v", p.State())
	}
	for name, op := range staleOps(f) {
		err := op()
		if err == nil && (name == "pread" || name == "pwrite" || name == "status" ||
			name == "map" || name == "kill") {
			t.Errorf("%s on reaped process succeeded", name)
		}
		if !saneStaleErr(err) {
			t.Errorf("%s on reaped process: unexpected error %v", name, err)
		}
	}
}

// TestOpsRacedAgainstExit interleaves every op class with single scheduler
// steps while the target runs to its death and reap, so each op hits every
// lifecycle stage at least once. No interleaving may panic or return a
// non-errno failure; this is the regression test for handles held across
// process exit.
func TestOpsRacedAgainstExit(t *testing.T) {
	s := repro.NewSystem()
	// The target burns a few quanta and exits on its own.
	p, err := s.SpawnProg("doomed", `
	movi r2, 200
loop:	addi r2, -1
	cmpi r2, 0
	jne loop
	movi r0, SYS_exit
	movi r1, 0
	syscall
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	flat := open(t, s, p.Pid, vfs.ORead|vfs.OWrite, types.RootCred())
	defer flat.Close()
	cl := s.Client(types.RootCred())
	base := "/procx/" + procfs.PidName(p.Pid)
	asF, err := cl.Open(base+"/as", vfs.ORead|vfs.OWrite)
	if err != nil {
		t.Fatal(err)
	}
	defer asF.Close()
	statusF, err := cl.Open(base+"/status", vfs.ORead)
	if err != nil {
		t.Fatal(err)
	}
	defer statusF.Close()

	ops := staleOps(flat)
	names := make([]string, 0, len(ops))
	for name := range ops {
		names = append(names, name)
	}
	sort.Strings(names)
	buf := make([]byte, 32)
	hier := map[string]func() error{
		"as-read":     func() error { _, err := asF.Pread(buf, 0x80000000); return err },
		"as-write":    func() error { _, err := asF.Pwrite(buf, 0x80000000); return err },
		"status-read": func() error { _, err := statusF.Pread(buf, 0); return err },
	}
	for name := range hier {
		names = append(names, name)
	}
	sort.Strings(names)

	for i := 0; i < 3000 && p.State() != kernel.PGone; i++ {
		s.Step()
		name := names[i%len(names)]
		op := ops[name]
		if op == nil {
			op = hier[name]
		}
		if err := op(); !saneStaleErr(err) {
			t.Fatalf("step %d: %s returned unexpected error %v (state %v)",
				i, name, err, p.State())
		}
	}
	if p.State() != kernel.PGone {
		t.Fatal("target never exited under the op barrage")
	}
	// One more full sweep on the now-reaped target.
	for _, name := range names {
		op := ops[name]
		if op == nil {
			op = hier[name]
		}
		if err := op(); !saneStaleErr(err) {
			t.Errorf("%s after reap: unexpected error %v", name, err)
		}
	}
}
