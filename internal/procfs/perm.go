package procfs

import (
	"repro/internal/kernel"
	"repro/internal/types"
)

// CanOpen is THE /proc visibility rule, shared by every path that exposes a
// process: per-pid open in the flat /proc (ProcVnode.VOpen), per-pid open in
// the restructured /procx, and the batched snapshot (PIOCSNAP and the
// /procx/snapshot file). Permission is more restrictive than traditional
// file permissions: both the effective uid and gid of the controlling
// process must match the real uid and gid of the traced process, a process
// that has done a set-id exec is visible only to the super-user, and the
// super-user sees everything. Keeping one predicate guarantees the batched
// path can never reveal a process the per-pid path would refuse — the two
// used to drift because each carried its own copy.
func CanOpen(p *kernel.Proc, c types.Cred) bool {
	if c.IsSuper() {
		return true
	}
	if p.SugidDirty {
		return false
	}
	return c.EUID == p.Cred.RUID && c.EGID == p.Cred.RGID
}
