package procfs_test

import (
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

// snapOpen opens the /proc directory itself — the PIOCSNAP handle.
func snapOpen(t *testing.T, s *repro.System, cred types.Cred) *vfs.File {
	t.Helper()
	f, err := s.Client(cred).Open("/proc", vfs.ORead)
	if err != nil {
		t.Fatalf("open /proc: %v", err)
	}
	return f
}

// forever forks short-lived children and reaps them, endlessly: the table
// churns at every few scheduler steps.
const forever = `
loop:	movi r0, SYS_fork
	syscall
	cmpi r0, 0
	jne parent
	movi r0, SYS_exit	; child exits at once
	movi r1, 0
	syscall
parent:	movi r0, SYS_wait
	movi r1, 0
	syscall
	jmp loop
`

// TestSnapshotStaticTable pins the easy half of the revision contract: with
// no table changes between two snapshots, the token matches, Churned stays
// false, and the records are identical.
func TestSnapshotStaticTable(t *testing.T) {
	s := repro.NewSystem()
	for i := 0; i < 3; i++ {
		if _, err := s.SpawnProg("stat", spin, types.UserCred(100+i, 10)); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(10)
	f := snapOpen(t, s, types.RootCred())
	defer f.Close()

	var a procfs.PrSnap
	if err := f.Ioctl(procfs.PIOCSNAP, &a); err != nil {
		t.Fatal(err)
	}
	if a.Churned {
		t.Fatal("first snapshot (no prior token) reported churn")
	}
	if len(a.Procs) < 4 { // init + 3 spinners
		t.Fatalf("only %d records", len(a.Procs))
	}
	b := procfs.PrSnap{Rev: a.Rev}
	if err := f.Ioctl(procfs.PIOCSNAP, &b); err != nil {
		t.Fatal(err)
	}
	if b.Churned || b.Rev != a.Rev {
		t.Fatalf("static table churned: rev %d -> %d, churned %v", a.Rev, b.Rev, b.Churned)
	}
	if len(a.Procs) != len(b.Procs) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Procs), len(b.Procs))
	}
	for i := range a.Procs {
		if a.Procs[i].Info != b.Procs[i].Info {
			t.Fatalf("record %d differs:\n%+v\nvs\n%+v", i, a.Procs[i].Info, b.Procs[i].Info)
		}
	}
}

// TestSnapshotUnderChurn races PIOCSNAP against a continuous fork/exit storm:
// every snapshot must be internally consistent — no pid listed twice, no
// reaped process resurrected — and the revision token must report the churn.
func TestSnapshotUnderChurn(t *testing.T) {
	s := repro.NewSystem()
	for i := 0; i < 3; i++ {
		if _, err := s.SpawnProg("churner", forever, types.UserCred(100+i, 10)); err != nil {
			t.Fatal(err)
		}
	}
	f := snapOpen(t, s, types.RootCred())
	defer f.Close()

	var sn procfs.PrSnap
	churned := 0
	for i := 0; i < 400; i++ {
		s.Step()
		prev := sn.Rev
		if err := f.Ioctl(procfs.PIOCSNAP, &sn); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		seen := make(map[int]bool, len(sn.Procs))
		for _, rec := range sn.Procs {
			if seen[rec.Info.Pid] {
				t.Fatalf("step %d: pid %d listed twice", i, rec.Info.Pid)
			}
			seen[rec.Info.Pid] = true
			switch rec.Info.State {
			case 'R', 'S', 'T', 'Z':
			default:
				t.Fatalf("step %d: pid %d in impossible state %c", i, rec.Info.Pid, rec.Info.State)
			}
		}
		// The token must agree with the kernel's own account of churn.
		if prev != 0 {
			if sn.Churned != (prev != sn.Rev) {
				t.Fatalf("step %d: churned=%v but rev %d -> %d", i, sn.Churned, prev, sn.Rev)
			}
		}
		if sn.Churned {
			churned++
		}
	}
	if churned == 0 {
		t.Fatal("fork/exit storm never tripped the revision token")
	}
}

// TestSnapshotSkipsReaped holds the snapshot handle across a target's exit
// and reap: once reaped the pid must vanish from the records (and nothing
// may panic on its carcass).
func TestSnapshotSkipsReaped(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("brief", "\tmovi r0, SYS_exit\n\tmovi r1, 0\n\tsyscall\n",
		types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	f := snapOpen(t, s, types.RootCred())
	defer f.Close()

	listed := func() bool {
		var sn procfs.PrSnap
		if err := f.Ioctl(procfs.PIOCSNAP, &sn); err != nil {
			t.Fatal(err)
		}
		for _, rec := range sn.Procs {
			if rec.Info.Pid == p.Pid {
				return true
			}
		}
		return false
	}
	if !listed() {
		t.Fatal("live target missing from snapshot")
	}
	s.WaitExit(p)
	s.Run(5)
	if p.State() != kernel.PGone {
		t.Fatalf("target not reaped: state %v", p.State())
	}
	if listed() {
		t.Fatal("reaped pid still in snapshot")
	}
}

// TestSnapshotVisibility applies the /proc permission rule to the batched
// path: a non-super caller's snapshot lists exactly the processes it could
// have opened one at a time.
func TestSnapshotVisibility(t *testing.T) {
	s := repro.NewSystem()
	mine, err := s.SpawnProg("mine", spin, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	other, err := s.SpawnProg("other", spin, types.UserCred(200, 20))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(5)
	f := snapOpen(t, s, types.UserCred(100, 10))
	defer f.Close()
	var sn procfs.PrSnap
	if err := f.Ioctl(procfs.PIOCSNAP, &sn); err != nil {
		t.Fatal(err)
	}
	for _, rec := range sn.Procs {
		if rec.Info.Pid == other.Pid {
			t.Fatal("snapshot revealed another user's process")
		}
		if rec.Info.UID != 100 {
			t.Fatalf("snapshot leaked pid %d (uid %d)", rec.Info.Pid, rec.Info.UID)
		}
	}
	found := false
	for _, rec := range sn.Procs {
		found = found || rec.Info.Pid == mine.Pid
	}
	if !found {
		t.Fatal("caller's own process missing from snapshot")
	}
}

// TestSnapshotPidFilter restricts the walk to an explicit pid set.
func TestSnapshotPidFilter(t *testing.T) {
	s := repro.NewSystem()
	a, _ := s.SpawnProg("a", spin, types.UserCred(100, 10))
	s.SpawnProg("b", spin, types.UserCred(100, 10))
	s.Run(5)
	f := snapOpen(t, s, types.RootCred())
	defer f.Close()
	sn := procfs.PrSnap{Pids: []int{a.Pid}}
	if err := f.Ioctl(procfs.PIOCSNAP, &sn); err != nil {
		t.Fatal(err)
	}
	if len(sn.Procs) != 1 || sn.Procs[0].Info.Pid != a.Pid {
		t.Fatalf("filtered snapshot = %+v", sn.Procs)
	}
}

// TestSnapshotHandleErrno pins the error surface of the /proc root handle:
// reads and writes say EISDIR, foreign ioctls say ENOTTY, a nil argument is
// EINVAL, and a closed handle is EBADF.
func TestSnapshotHandleErrno(t *testing.T) {
	s := repro.NewSystem()
	f := snapOpen(t, s, types.RootCred())
	if _, err := f.Read(make([]byte, 8)); err != vfs.ErrIsDir {
		t.Fatalf("read: %v", err)
	}
	if err := f.Ioctl(procfs.PIOCSTATUS, nil); err != vfs.ErrNoIoctl {
		t.Fatalf("foreign ioctl: %v", err)
	}
	if err := f.Ioctl(procfs.PIOCSNAP, nil); err != vfs.ErrInval {
		t.Fatalf("nil arg: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := f.Ioctl(procfs.PIOCSNAP, &procfs.PrSnap{}); err != vfs.ErrBadFD {
		t.Fatalf("ioctl after close: %v", err)
	}
}

// TestSnapshotUsageMatchesPerPid cross-checks the batched usage records
// against PIOCUSAGE on the same static table.
func TestSnapshotUsageMatchesPerPid(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("worker", spin, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(30)
	f := snapOpen(t, s, types.RootCred())
	defer f.Close()
	sn := procfs.PrSnap{Pids: []int{p.Pid}, WithUsage: true}
	if err := f.Ioctl(procfs.PIOCSNAP, &sn); err != nil {
		t.Fatal(err)
	}
	if len(sn.Procs) != 1 {
		t.Fatalf("%d records", len(sn.Procs))
	}
	pf := rootOpen(t, s, p.Pid)
	defer pf.Close()
	var u procfs.PrUsage
	if err := pf.Ioctl(procfs.PIOCUSAGE, &u); err != nil {
		t.Fatal(err)
	}
	if sn.Procs[0].Usage != u {
		t.Fatalf("usage mismatch:\nsnap %+v\npid  %+v", sn.Procs[0].Usage, u)
	}
}
