package procfs

import (
	"repro/internal/kernel"
	"repro/internal/types"
	"repro/internal/vfs"
)

// PrSnapRec is one process in a PIOCSNAP result: the psinfo snapshot, plus
// the resource usage when the request asked for it. Usage is meaningful only
// for live processes (Info.State != 'Z'); zombies report zeroes, matching
// the per-pid path where PIOCUSAGE fails once the process has exited.
type PrSnapRec struct {
	Info  kernel.PSInfo
	Usage PrUsage
}

// PrSnap is the PIOCSNAP argument/result. The caller may pass the revision
// token of an earlier snapshot in Rev; on return Rev holds the table
// revision the records were taken at and Churned reports whether the table
// changed in between — the cue to retry if the caller needs two consistent
// sweeps. The batched form exists because the per-pid protocol (readdir,
// then open + ioctl + close per process) pays one file lifecycle per pid;
// over a remote file system that is one round trip each.
type PrSnap struct {
	// In.
	Pids      []int // restrict to these pids; nil means every visible process
	WithUsage bool  // also fill Usage in each record

	// Out.
	Rev     uint64 // in: previous token (0 = none); out: revision at snapshot
	Churned bool   // a non-zero in-Rev differed from the out-Rev
	Procs   []PrSnapRec
}

// canSee applies the /proc open permission rule to a snapshot record: the
// batched path must never reveal a process the per-pid path would have
// refused to open. It is the shared CanOpen predicate, by construction.
func canSee(p *kernel.Proc, c types.Cred) bool {
	return CanOpen(p, c)
}

// Snapshot implements PIOCSNAP: walk the process table once, under the
// caller's credentials, and fill sn with one record per visible process in
// table (creation) order — the same order readdir presents. Each record is
// a true snapshot of its process; the revision token tells the caller
// whether the collection as a whole is one too. The restructured /proc
// serves the same records through its snapshot file, so both interfaces
// share this walk (and its fault site).
func Snapshot(k *kernel.Kernel, c types.Cred, sn *PrSnap) error {
	if sn == nil {
		return vfs.ErrInval
	}
	// The record slice is the snapshot's scratch allocation; an injected
	// refusal surfaces as EAGAIN, like the other ioctl-layer allocations.
	if siteFaultSnap.Hit(0) {
		return vfs.ErrAgain
	}
	var want map[int]bool
	if sn.Pids != nil {
		want = make(map[int]bool, len(sn.Pids))
		for _, pid := range sn.Pids {
			want[pid] = true
		}
	}
	// The walk holds the global kernel lock (table order, revision and
	// liveness are global-domain state) and takes each process's lock
	// around its record, the cross-process contract for the per-process
	// fields PSInfo and Usage read. Both are no-ops in deterministic mode.
	k.GlobalLock()
	defer k.GlobalUnlock()
	prev := sn.Rev
	sn.Rev = k.TableRev()
	sn.Churned = prev != 0 && prev != sn.Rev
	sn.Procs = sn.Procs[:0]
	for _, p := range k.Procs() {
		if p.State() == kernel.PGone {
			continue
		}
		if want != nil && !want[p.Pid] {
			continue
		}
		p.Lock()
		if !canSee(p, c) {
			p.Unlock()
			continue
		}
		rec := PrSnapRec{Info: p.PSInfo()}
		if sn.WithUsage && p.Alive() {
			rec.Usage = PrUsage{Usage: p.Usage}
			if p.AS != nil {
				st := p.AS.StatsSnap()
				rec.Usage.MinorFaults = st.MinorFaults
				rec.Usage.COWFaults = st.COWFaults
				rec.Usage.WatchRecover = st.WatchRecover
				rec.Usage.StackGrows = st.GrowStack
			}
		}
		p.Unlock()
		sn.Procs = append(sn.Procs, rec)
	}
	return nil
}

// rootHandle is the open state of the /proc directory itself. It exists for
// one purpose: PIOCSNAP, the batched snapshot. The credentials are captured
// at open time, as with any file.
type rootHandle struct {
	fs     *FS
	cred   types.Cred
	closed bool
}

func (h *rootHandle) HRead(p []byte, off int64) (int, error)  { return 0, vfs.ErrIsDir }
func (h *rootHandle) HWrite(p []byte, off int64) (int, error) { return 0, vfs.ErrIsDir }

func (h *rootHandle) HIoctl(cmd int, arg interface{}) error {
	if h.closed {
		return vfs.ErrBadFD
	}
	if cmd != PIOCSNAP {
		return vfs.ErrNoIoctl
	}
	sn, ok := arg.(*PrSnap)
	if !ok || sn == nil {
		return vfs.ErrInval
	}
	return Snapshot(h.fs.K, h.cred, sn)
}

func (h *rootHandle) HClose() error {
	if h.closed {
		return vfs.ErrBadFD
	}
	h.closed = true
	return nil
}

// HSaveState / HLoadState implement vfs.HandleSnapshotter.
func (h *rootHandle) HSaveState() any { return h.closed }
func (h *rootHandle) HLoadState(st any) {
	if c, ok := st.(bool); ok {
		h.closed = c
	}
}
