package procfs_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/procfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

// TestVisibilityMatrix pins the contract of the shared CanOpen predicate:
// for every (credential, process) pair, the batched snapshot shows a
// process exactly when the per-pid open succeeds — on both the flat /proc
// and the restructured /procx. The three paths used to carry private copies
// of the rule; this matrix is what keeps them from drifting again.
func TestVisibilityMatrix(t *testing.T) {
	s := repro.NewSystem(repro.Options{NCPU: 1})
	spin := `
loop:	movi r0, SYS_yield
	syscall
	jmp loop
`
	a, err := s.SpawnProg("a", spin, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.SpawnProg("b", spin, types.UserCred(200, 20))
	if err != nil {
		t.Fatal(err)
	}
	sg, err := s.SpawnProg("sg", spin, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	// A process that has done a set-id exec: super-user only.
	sg.SugidDirty = true
	s.Run(3)

	creds := []types.Cred{
		types.RootCred(),
		types.UserCred(100, 10), // matches a and sg (but sg is set-id)
		types.UserCred(100, 20), // uid of a, wrong gid
		types.UserCred(200, 20), // matches b
		types.UserCred(300, 30), // matches nothing
	}
	targets := []int{a.Pid, b.Pid, sg.Pid}

	for _, c := range creds {
		c := c
		snap := &procfs.PrSnap{}
		if err := procfs.Snapshot(s.K, c, snap); err != nil {
			t.Fatalf("cred %v: snapshot: %v", c, err)
		}
		inSnap := map[int]bool{}
		for _, rec := range snap.Procs {
			inSnap[rec.Info.Pid] = true
		}
		cl := s.Client(c)
		for _, pid := range targets {
			want := inSnap[pid]

			_, err := cl.Open("/proc/"+procfs.PidName(pid), vfs.ORead)
			flatOK := err == nil
			if err != nil && err != vfs.ErrPerm {
				t.Fatalf("cred %v pid %d: flat open: %v", c, pid, err)
			}
			if flatOK != want {
				t.Errorf("cred %v pid %d: flat /proc open = %v, snapshot visible = %v",
					c, pid, flatOK, want)
			}

			_, err = cl.ReadFile(fmt.Sprintf("/procx/%05d/psinfo", pid))
			xOK := err == nil
			if err != nil && err != vfs.ErrPerm {
				t.Fatalf("cred %v pid %d: /procx read: %v", c, pid, err)
			}
			if xOK != want {
				t.Errorf("cred %v pid %d: /procx open = %v, snapshot visible = %v",
					c, pid, xOK, want)
			}
		}
	}
}
