package procfs

import (
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/types"
	"repro/internal/vcpu"
	"repro/internal/vfs"
)

// The /proc ioctl operations (prioctl). The names and semantics follow the
// SVR4 proc(4) manual page; the last group implements the paper's proposed
// extensions (resource usage, watchpoints, page data).
const (
	PIOCSTATUS = iota + 0x500 // get process status (arg *kernel.ProcStatus, may be nil)
	PIOCSTOP                  // direct the process to stop and wait for it
	PIOCWSTOP                 // wait for the process to stop on an event of interest
	PIOCRUN                   // make a stopped process runnable (arg *kernel.RunFlags, may be nil)
	PIOCSTRACE                // define the set of traced signals (arg *types.SigSet)
	PIOCGTRACE                // get the set of traced signals
	PIOCSSIG                  // set the current signal (arg *int; nil or 0 clears)
	PIOCKILL                  // send a signal (arg *int)
	PIOCUNKILL                // delete a pending signal (arg *int)
	PIOCSHOLD                 // set the held (blocked) signal set (arg *types.SigSet)
	PIOCGHOLD                 // get the held signal set
	PIOCMAXSIG                // get the highest signal number (arg *int)
	PIOCACTION                // get the signal actions for every signal (arg *[]kernel.SigAction)
	PIOCSFAULT                // define the set of traced machine faults (arg *types.FltSet)
	PIOCGFAULT                // get the set of traced faults
	PIOCCFAULT                // clear the current fault
	PIOCSENTRY                // define the set of traced syscall entries (arg *types.SysSet)
	PIOCGENTRY                // get the traced entry set
	PIOCSEXIT                 // define the set of traced syscall exits (arg *types.SysSet)
	PIOCGEXIT                 // get the traced exit set
	PIOCSFORK                 // set inherit-on-fork
	PIOCRFORK                 // reset inherit-on-fork
	PIOCSRLC                  // set run-on-last-close
	PIOCRRLC                  // reset run-on-last-close
	PIOCGREG                  // get the general registers (arg *vcpu.Regs)
	PIOCSREG                  // set the general registers (arg *vcpu.Regs)
	PIOCGFPREG                // get the floating point registers (arg *vcpu.FPRegs)
	PIOCSFPREG                // set the floating point registers (arg *vcpu.FPRegs)
	PIOCNMAP                  // get the number of mappings (arg *int)
	PIOCMAP                   // get the memory map (arg *[]PrMap)
	PIOCOPENM                 // open the mapped object at a vaddr (arg *OpenMap)
	PIOCCRED                  // get credentials (arg *types.Cred)
	PIOCGROUPS                // get supplementary groups (arg *[]int)
	PIOCPSINFO                // get everything ps wants (arg *kernel.PSInfo)
	PIOCNICE                  // change priority (arg *int)
	PIOCGETPR                 // get the proc structure (deprecated; arg **kernel.Proc)
	PIOCGETU                  // get the user area (deprecated; arg *UArea)

	// Proposed extensions implemented here.
	PIOCUSAGE  // resource usage (arg *PrUsage)
	PIOCSWATCH // set a data watchpoint (arg *PrWatch)
	PIOCCWATCH // clear watchpoints (arg *uint32 for one address; nil for all)
	PIOCGWATCH // get the watchpoints (arg *[]PrWatch)
	PIOCPGD    // page data: per-mapping private page counts (arg *[]PageData)

	// PIOCSNAP is issued on the /proc directory itself, not a process file:
	// one open plus one ioctl returns status/usage records for every visible
	// process, with a table-revision token so a retry detects churn
	// (arg *PrSnap).
	PIOCSNAP
)

// PrMap is one entry of the PIOCMAP result, the prmap_t analogue: a virtual
// address, a length, permissions and attributes of one mapping.
type PrMap struct {
	Vaddr  uint32
	Size   uint32
	Off    int64
	Prot   mem.Prot
	Shared bool
	Kind   mem.SegKind
	Name   string // backing object name
}

// OpenMap is the PIOCOPENM argument/result: given a virtual address, a
// read-only open of the underlying mapped object — this is how a debugger
// finds executable and shared library symbol tables without knowing
// pathnames. A nil Vaddr means the process's own executable file.
type OpenMap struct {
	Vaddr *uint32   // address inside the mapping of interest; nil = a.out
	File  *vfs.File // out: a read-only open of the mapped object
}

// UArea is the deprecated PIOCGETU result: a copy of the parts of the user
// area worth exposing. Its use ties a program to this implementation.
type UArea struct {
	CWD   string
	Umask uint16
	Args  []string
	FDs   []int
}

// PrWatch describes one watchpoint for PIOCSWATCH/PIOCGWATCH.
type PrWatch struct {
	Vaddr uint32
	Size  uint32
	Mode  mem.Prot // ProtRead and/or ProtWrite
}

// PrUsage is the PIOCUSAGE result: kernel accounting plus page-level counts.
type PrUsage struct {
	kernel.Usage
	MinorFaults  int64
	COWFaults    int64
	WatchRecover int64
	StackGrows   int64
}

// PageData is one entry of the PIOCPGD result: which mappings have private
// (modified) pages — the page-level modified information of the proposed
// performance-monitor interface.
type PageData struct {
	Vaddr        uint32
	Pages        int
	PrivatePages int
}

// HIoctl implements vfs.Handle: prioctl, the information and control half of
// the interface. Operations that modify process state or behavior require
// the descriptor to be open for writing; read-only inspection operations do
// not.
func (h *Handle) HIoctl(cmd int, arg interface{}) error {
	// PIOCPSINFO works even on zombies; everything else requires a live,
	// valid handle.
	if cmd == PIOCPSINFO {
		if h.closed {
			return vfs.ErrBadFD
		}
		out, ok := arg.(*kernel.PSInfo)
		if !ok {
			return vfs.ErrInval
		}
		h.fs.K.GlobalLock()
		h.p.Lock()
		*out = h.p.PSInfo()
		h.p.Unlock()
		h.fs.K.GlobalUnlock()
		return nil
	}
	p := h.p
	k := h.fs.K

	// check validates the handle and the operation; it runs with the locks
	// below held because it reads process state (liveness, the exec
	// generation) that the scheduler mutates. Operations that build scratch
	// state (snapshots, map tables, watchpoint lists, descriptor images)
	// are the ioctl layer's allocation choke point; an injected failure
	// surfaces as EAGAIN, the paper's errno for a transiently unsatisfiable
	// request.
	check := func() error {
		if err := h.valid(); err != nil {
			return err
		}
		if h.writeOp(cmd) && h.flags&vfs.OWrite == 0 {
			return vfs.ErrBadFD
		}
		switch cmd {
		case PIOCACTION, PIOCMAP, PIOCGWATCH, PIOCPGD, PIOCGROUPS, PIOCOPENM:
			if siteFaultIoctl.Hit(h.p.Pid) {
				return vfs.ErrAgain
			}
		}
		return nil
	}

	// Ioctls arrive from host-side controllers (debuggers, ps, tests) that
	// may run concurrently with the SMP scheduler, so they follow the
	// kernel's cross-process locking contract: the global kernel lock plus
	// the target's per-process lock (both no-ops in deterministic mode).
	// The two wait-style commands are exceptions — WaitStop drives the
	// scheduler and must run unlocked — so they are handled first;
	// PIOCSTOP locks only around the stop directive itself.
	switch cmd {
	case PIOCSTOP:
		k.GlobalLock()
		p.Lock()
		if err := check(); err != nil {
			p.Unlock()
			k.GlobalUnlock()
			return err
		}
		p.DirectStopAll()
		p.Unlock()
		k.GlobalUnlock()
		l, err := k.WaitStop(p, h.fs.MaxWait)
		if err != nil {
			return vfs.Errorf("procfs: PIOCSTOP: %v", err)
		}
		if out, ok := arg.(*kernel.ProcStatus); ok && out != nil {
			k.GlobalLock()
			p.Lock()
			*out = l.LWPStatus()
			p.Unlock()
			k.GlobalUnlock()
		}
		return nil

	case PIOCWSTOP:
		k.GlobalLock()
		p.Lock()
		err := check()
		p.Unlock()
		k.GlobalUnlock()
		if err != nil {
			return err
		}
		l, err := k.WaitStop(p, h.fs.MaxWait)
		if err != nil {
			return vfs.Errorf("procfs: PIOCWSTOP: %v", err)
		}
		if out, ok := arg.(*kernel.ProcStatus); ok && out != nil {
			k.GlobalLock()
			p.Lock()
			*out = l.LWPStatus()
			p.Unlock()
			k.GlobalUnlock()
		}
		return nil
	}

	k.GlobalLock()
	p.Lock()
	defer func() {
		p.Unlock()
		k.GlobalUnlock()
	}()
	if err := check(); err != nil {
		return err
	}
	switch cmd {
	case PIOCSTATUS:
		st, err := p.Status()
		if err != nil {
			return vfs.ErrNotExist
		}
		if out, ok := arg.(*kernel.ProcStatus); ok && out != nil {
			*out = st
		}
		return nil

	case PIOCRUN:
		l := p.EventStoppedLWP()
		if l == nil {
			return vfs.Errorf("procfs: PIOCRUN: %v", kernel.ErrNotStopped)
		}
		var flags kernel.RunFlags
		if in, ok := arg.(*kernel.RunFlags); ok && in != nil {
			flags = *in
		}
		return h.fs.K.RunLWP(l, flags)

	case PIOCSTRACE:
		in, ok := arg.(*types.SigSet)
		if !ok {
			return vfs.ErrInval
		}
		p.Trace.Sigs = *in
		return nil
	case PIOCGTRACE:
		out, ok := arg.(*types.SigSet)
		if !ok {
			return vfs.ErrInval
		}
		*out = p.Trace.Sigs
		return nil

	case PIOCSSIG:
		sig := 0
		if in, ok := arg.(*int); ok && in != nil {
			sig = *in
		}
		if sig < 0 || sig > types.MaxSig {
			return vfs.ErrInval
		}
		l := p.Rep()
		if l == nil {
			return vfs.ErrNotExist
		}
		l.SetCurSig(sig)
		return nil
	case PIOCKILL:
		in, ok := arg.(*int)
		if !ok || *in < 1 || *in > types.MaxSig {
			return vfs.ErrInval
		}
		h.fs.K.PostSignal(p, *in)
		return nil
	case PIOCUNKILL:
		in, ok := arg.(*int)
		if !ok || *in < 1 || *in > types.MaxSig {
			return vfs.ErrInval
		}
		p.UnKill(*in)
		return nil

	case PIOCSHOLD:
		in, ok := arg.(*types.SigSet)
		if !ok {
			return vfs.ErrInval
		}
		l := p.Rep()
		if l == nil {
			return vfs.ErrNotExist
		}
		hold := *in
		hold.Del(types.SIGKILL)
		hold.Del(types.SIGSTOP)
		l.SigHold = hold
		return nil
	case PIOCGHOLD:
		out, ok := arg.(*types.SigSet)
		if !ok {
			return vfs.ErrInval
		}
		if l := p.Rep(); l != nil {
			*out = l.SigHold
		}
		return nil
	case PIOCMAXSIG:
		out, ok := arg.(*int)
		if !ok {
			return vfs.ErrInval
		}
		*out = types.MaxSig
		return nil
	case PIOCACTION:
		out, ok := arg.(*[]kernel.SigAction)
		if !ok {
			return vfs.ErrInval
		}
		acts := make([]kernel.SigAction, types.MaxSig+1)
		for sig := 1; sig <= types.MaxSig; sig++ {
			acts[sig] = p.SigActionOf(sig)
		}
		*out = acts
		return nil

	case PIOCSFAULT:
		in, ok := arg.(*types.FltSet)
		if !ok {
			return vfs.ErrInval
		}
		p.Trace.Faults = *in
		return nil
	case PIOCGFAULT:
		out, ok := arg.(*types.FltSet)
		if !ok {
			return vfs.ErrInval
		}
		*out = p.Trace.Faults
		return nil
	case PIOCCFAULT:
		l := p.EventStoppedLWP()
		if l == nil {
			return vfs.Errorf("procfs: PIOCCFAULT: %v", kernel.ErrNotStopped)
		}
		l.CurFlt = 0
		return nil

	case PIOCSENTRY:
		in, ok := arg.(*types.SysSet)
		if !ok {
			return vfs.ErrInval
		}
		p.Trace.Entry = *in
		return nil
	case PIOCGENTRY:
		out, ok := arg.(*types.SysSet)
		if !ok {
			return vfs.ErrInval
		}
		*out = p.Trace.Entry
		return nil
	case PIOCSEXIT:
		in, ok := arg.(*types.SysSet)
		if !ok {
			return vfs.ErrInval
		}
		p.Trace.Exit = *in
		return nil
	case PIOCGEXIT:
		out, ok := arg.(*types.SysSet)
		if !ok {
			return vfs.ErrInval
		}
		*out = p.Trace.Exit
		return nil

	case PIOCSFORK:
		p.Trace.InhFork = true
		return nil
	case PIOCRFORK:
		p.Trace.InhFork = false
		return nil
	case PIOCSRLC:
		p.Trace.RunLC = true
		return nil
	case PIOCRRLC:
		p.Trace.RunLC = false
		return nil

	case PIOCGREG:
		out, ok := arg.(*vcpu.Regs)
		if !ok {
			return vfs.ErrInval
		}
		l := p.Rep()
		if l == nil {
			return vfs.ErrNotExist
		}
		*out = l.CPU.Regs
		return nil
	case PIOCSREG:
		in, ok := arg.(*vcpu.Regs)
		if !ok {
			return vfs.ErrInval
		}
		l := p.Rep()
		if l == nil {
			return vfs.ErrNotExist
		}
		l.CPU.Regs = *in
		return nil
	case PIOCGFPREG:
		out, ok := arg.(*vcpu.FPRegs)
		if !ok {
			return vfs.ErrInval
		}
		l := p.Rep()
		if l == nil {
			return vfs.ErrNotExist
		}
		*out = l.CPU.FP
		return nil
	case PIOCSFPREG:
		in, ok := arg.(*vcpu.FPRegs)
		if !ok {
			return vfs.ErrInval
		}
		l := p.Rep()
		if l == nil {
			return vfs.ErrNotExist
		}
		l.CPU.FP = *in
		return nil

	case PIOCNMAP:
		out, ok := arg.(*int)
		if !ok {
			return vfs.ErrInval
		}
		if p.AS == nil {
			*out = 0
			return nil
		}
		*out = p.AS.NSegs()
		return nil
	case PIOCMAP:
		out, ok := arg.(*[]PrMap)
		if !ok {
			return vfs.ErrInval
		}
		*out = h.MapEntries()
		return nil

	case PIOCOPENM:
		om, ok := arg.(*OpenMap)
		if !ok {
			return vfs.ErrInval
		}
		return h.openMapped(om)

	case PIOCCRED:
		out, ok := arg.(*types.Cred)
		if !ok {
			return vfs.ErrInval
		}
		*out = p.Credentials()
		return nil
	case PIOCGROUPS:
		out, ok := arg.(*[]int)
		if !ok {
			return vfs.ErrInval
		}
		*out = append([]int(nil), p.Cred.Groups...)
		return nil

	case PIOCNICE:
		in, ok := arg.(*int)
		if !ok {
			return vfs.ErrInval
		}
		p.SetNice(*in)
		return nil

	case PIOCGETPR:
		// Deprecated: exposes the implementation's proc structure, tying
		// the caller to this version of the system.
		out, ok := arg.(**kernel.Proc)
		if !ok {
			return vfs.ErrInval
		}
		*out = p
		return nil
	case PIOCGETU:
		out, ok := arg.(*UArea)
		if !ok {
			return vfs.ErrInval
		}
		*out = UArea{
			CWD: p.CWD, Umask: p.Umask,
			Args: append([]string(nil), p.Args...),
			FDs:  p.FDs(),
		}
		return nil

	case PIOCUSAGE:
		out, ok := arg.(*PrUsage)
		if !ok {
			return vfs.ErrInval
		}
		u := PrUsage{Usage: p.Usage}
		if p.AS != nil {
			st := p.AS.StatsSnap()
			u.MinorFaults = st.MinorFaults
			u.COWFaults = st.COWFaults
			u.WatchRecover = st.WatchRecover
			u.StackGrows = st.GrowStack
		}
		*out = u
		return nil

	case PIOCSWATCH:
		in, ok := arg.(*PrWatch)
		if !ok || in.Size == 0 {
			return vfs.ErrInval
		}
		if p.AS == nil {
			return vfs.ErrInval
		}
		p.AS.SetWatch(in.Vaddr, in.Size, in.Mode)
		return nil
	case PIOCCWATCH:
		if p.AS == nil {
			return vfs.ErrInval
		}
		if addr, ok := arg.(*uint32); ok && addr != nil {
			p.AS.ClearWatch(*addr)
		} else {
			p.AS.ClearAllWatches()
		}
		return nil
	case PIOCGWATCH:
		out, ok := arg.(*[]PrWatch)
		if !ok {
			return vfs.ErrInval
		}
		if p.AS == nil {
			*out = nil
			return nil
		}
		var ws []PrWatch
		for _, w := range p.AS.WatchesView() {
			ws = append(ws, PrWatch{Vaddr: w.Addr, Size: w.Len, Mode: w.Mode})
		}
		*out = ws
		return nil

	case PIOCPGD:
		out, ok := arg.(*[]PageData)
		if !ok {
			return vfs.ErrInval
		}
		if p.AS == nil {
			*out = nil
			return nil
		}
		var pd []PageData
		ps := int(p.AS.PageSize())
		for _, s := range p.AS.SegsView() {
			pd = append(pd, PageData{
				Vaddr:        s.Base,
				Pages:        (int(s.Len) + ps - 1) / ps,
				PrivatePages: s.PrivatePages(),
			})
		}
		*out = pd
		return nil
	}
	return vfs.ErrNoIoctl
}

// writeOp classifies operations that modify process state or behavior
// ("read/write" operations) versus those that merely inspect it
// ("read-only" operations).
func (h *Handle) writeOp(cmd int) bool {
	switch cmd {
	case PIOCSTATUS, PIOCGTRACE, PIOCGFAULT, PIOCGENTRY, PIOCGEXIT,
		PIOCGREG, PIOCGFPREG, PIOCNMAP, PIOCMAP, PIOCCRED, PIOCGROUPS,
		PIOCPSINFO, PIOCGHOLD, PIOCMAXSIG, PIOCACTION, PIOCGETPR, PIOCGETU,
		PIOCUSAGE, PIOCGWATCH, PIOCPGD, PIOCOPENM:
		return false
	}
	return true
}

// MapEntries extracts the memory map (PIOCMAP).
func (h *Handle) MapEntries() []PrMap {
	if h.p.AS == nil {
		return nil
	}
	var out []PrMap
	for _, s := range h.p.AS.SegsView() {
		out = append(out, PrMap{
			Vaddr: s.Base, Size: s.Len, Off: s.Off,
			Prot: s.Prot, Shared: s.Shared, Kind: s.Kind, Name: s.ObjName(),
		})
	}
	return out
}

// openMapped implements PIOCOPENM: return a read-only descriptor for the
// object mapped at a virtual address (or the a.out itself), enabling a
// debugger to find symbol tables without knowing pathnames.
func (h *Handle) openMapped(om *OpenMap) error {
	p := h.p
	var vn vfs.Vnode
	if om.Vaddr == nil {
		vn = p.ExecVN
	} else {
		if p.AS == nil {
			return vfs.ErrInval
		}
		seg := p.AS.FindSeg(*om.Vaddr)
		if seg == nil || seg.Obj == nil {
			return vfs.ErrInval
		}
		v, ok := seg.Obj.(vfs.Vnode)
		if !ok {
			return vfs.ErrNotSup
		}
		vn = v
	}
	if vn == nil {
		return vfs.ErrNotExist
	}
	// The object is opened with the system's own credentials: the check
	// that mattered was the /proc open itself.
	handle, err := vn.VOpen(vfs.ORead, types.RootCred())
	if err != nil {
		return err
	}
	om.File = &vfs.File{VN: vn, H: handle, Flags: vfs.ORead}
	return nil
}
