package procfs_test

import (
	"fmt"
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/procfs"
	"repro/internal/types"
	"repro/internal/vcpu"
	"repro/internal/vfs"
	"repro/internal/xout"
)

// T1: round-trip every ioctl operation in the paper's table and the proc(4)
// set it points at.
func TestIoctlTable(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("table", `
loop:	movi r0, SYS_getpid
	syscall
	jmp loop
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2)
	f := rootOpen(t, s, p.Pid)
	defer f.Close()

	// PIOCSTATUS.
	var st kernel.ProcStatus
	if err := f.Ioctl(procfs.PIOCSTATUS, &st); err != nil {
		t.Fatal(err)
	}
	if st.Pid != p.Pid || st.PPid != 1 {
		t.Fatalf("status = %+v", st)
	}

	// PIOCSTOP / PIOCRUN / PIOCWSTOP.
	if err := f.Ioctl(procfs.PIOCSTOP, &st); err != nil {
		t.Fatal(err)
	}
	if st.Flags&kernel.PRIstop == 0 || st.Why != kernel.WhyRequested {
		t.Fatalf("stop status: %+v", st)
	}
	var eset types.SysSet
	eset.Add(kernel.SysGetpid)
	if err := f.Ioctl(procfs.PIOCSENTRY, &eset); err != nil {
		t.Fatal(err)
	}
	if err := f.Ioctl(procfs.PIOCRUN, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Ioctl(procfs.PIOCWSTOP, &st); err != nil {
		t.Fatal(err)
	}
	if st.Why != kernel.WhySysEntry || st.What != kernel.SysGetpid {
		t.Fatalf("wstop: %+v", st)
	}
	if st.Syscall != kernel.SysGetpid {
		t.Fatalf("pr_syscall = %d", st.Syscall)
	}

	// PIOCGENTRY / PIOCSEXIT / PIOCGEXIT / PIOCSTRACE / PIOCGTRACE /
	// PIOCSFAULT / PIOCGFAULT.
	var gset types.SysSet
	if err := f.Ioctl(procfs.PIOCGENTRY, &gset); err != nil || !gset.Has(kernel.SysGetpid) {
		t.Fatalf("gentry: %v %v", err, gset)
	}
	var xset types.SysSet
	xset.Add(kernel.SysGetpid)
	if err := f.Ioctl(procfs.PIOCSEXIT, &xset); err != nil {
		t.Fatal(err)
	}
	var gx types.SysSet
	f.Ioctl(procfs.PIOCGEXIT, &gx)
	if !gx.Has(kernel.SysGetpid) {
		t.Fatal("gexit")
	}
	var sset types.SigSet
	sset.Add(types.SIGUSR1)
	if err := f.Ioctl(procfs.PIOCSTRACE, &sset); err != nil {
		t.Fatal(err)
	}
	var gs types.SigSet
	f.Ioctl(procfs.PIOCGTRACE, &gs)
	if !gs.Has(types.SIGUSR1) {
		t.Fatal("gtrace")
	}
	var fset types.FltSet
	fset.Add(types.FLTBPT)
	if err := f.Ioctl(procfs.PIOCSFAULT, &fset); err != nil {
		t.Fatal(err)
	}
	var gf types.FltSet
	f.Ioctl(procfs.PIOCGFAULT, &gf)
	if !gf.Has(types.FLTBPT) {
		t.Fatal("gfault")
	}

	// PIOCGREG / PIOCSREG.
	var regs vcpu.Regs
	if err := f.Ioctl(procfs.PIOCGREG, &regs); err != nil {
		t.Fatal(err)
	}
	regs.R[5] = 0xDEAD
	if err := f.Ioctl(procfs.PIOCSREG, &regs); err != nil {
		t.Fatal(err)
	}
	var regs2 vcpu.Regs
	f.Ioctl(procfs.PIOCGREG, &regs2)
	if regs2.R[5] != 0xDEAD {
		t.Fatal("sreg did not take")
	}

	// PIOCGFPREG / PIOCSFPREG.
	var fp vcpu.FPRegs
	if err := f.Ioctl(procfs.PIOCGFPREG, &fp); err != nil {
		t.Fatal(err)
	}
	fp.F[2] = 3.25
	if err := f.Ioctl(procfs.PIOCSFPREG, &fp); err != nil {
		t.Fatal(err)
	}
	var fp2 vcpu.FPRegs
	f.Ioctl(procfs.PIOCGFPREG, &fp2)
	if fp2.F[2] != 3.25 {
		t.Fatal("sfpreg did not take")
	}

	// PIOCSHOLD / PIOCGHOLD (SIGKILL and SIGSTOP silently excluded).
	var hold types.SigSet
	hold.Add(types.SIGUSR2)
	hold.Add(types.SIGKILL)
	if err := f.Ioctl(procfs.PIOCSHOLD, &hold); err != nil {
		t.Fatal(err)
	}
	var ghold types.SigSet
	f.Ioctl(procfs.PIOCGHOLD, &ghold)
	if !ghold.Has(types.SIGUSR2) || ghold.Has(types.SIGKILL) {
		t.Fatalf("ghold = %v", ghold)
	}

	// PIOCMAXSIG / PIOCACTION.
	var maxsig int
	if err := f.Ioctl(procfs.PIOCMAXSIG, &maxsig); err != nil || maxsig != types.MaxSig {
		t.Fatalf("maxsig = %d %v", maxsig, err)
	}
	var acts []kernel.SigAction
	if err := f.Ioctl(procfs.PIOCACTION, &acts); err != nil || len(acts) != types.MaxSig+1 {
		t.Fatalf("action: %v len %d", err, len(acts))
	}

	// PIOCCRED / PIOCGROUPS.
	var cred types.Cred
	if err := f.Ioctl(procfs.PIOCCRED, &cred); err != nil {
		t.Fatal(err)
	}
	if cred.RUID != 100 || cred.RGID != 10 {
		t.Fatalf("cred = %+v", cred)
	}
	var groups []int
	if err := f.Ioctl(procfs.PIOCGROUPS, &groups); err != nil {
		t.Fatal(err)
	}

	// PIOCPSINFO.
	var info kernel.PSInfo
	if err := f.Ioctl(procfs.PIOCPSINFO, &info); err != nil {
		t.Fatal(err)
	}
	if info.Comm != "table" || info.UID != 100 {
		t.Fatalf("psinfo = %+v", info)
	}

	// PIOCNICE.
	incr := 5
	if err := f.Ioctl(procfs.PIOCNICE, &incr); err != nil {
		t.Fatal(err)
	}
	if p.Nice != 5 {
		t.Fatalf("nice = %d", p.Nice)
	}

	// PIOCSFORK / PIOCRFORK / PIOCSRLC / PIOCRRLC.
	for _, op := range []int{procfs.PIOCSFORK, procfs.PIOCSRLC} {
		if err := f.Ioctl(op, nil); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Trace.InhFork || !p.Trace.RunLC {
		t.Fatal("sfork/srlc")
	}
	for _, op := range []int{procfs.PIOCRFORK, procfs.PIOCRRLC} {
		if err := f.Ioctl(op, nil); err != nil {
			t.Fatal(err)
		}
	}
	if p.Trace.InhFork || p.Trace.RunLC {
		t.Fatal("rfork/rrlc")
	}

	// PIOCKILL / PIOCUNKILL / PIOCSSIG.
	sig := types.SIGUSR2
	if err := f.Ioctl(procfs.PIOCKILL, &sig); err != nil {
		t.Fatal(err)
	}
	// SIGUSR2 is held (from PIOCSHOLD above) so it stays pending.
	if !p.SigPend.Has(types.SIGUSR2) {
		t.Fatal("kill did not pend")
	}
	if err := f.Ioctl(procfs.PIOCUNKILL, &sig); err != nil {
		t.Fatal(err)
	}
	if p.SigPend.Has(types.SIGUSR2) {
		t.Fatal("unkill did not delete")
	}

	// PIOCGETPR / PIOCGETU (deprecated, implementation-revealing).
	var pr *kernel.Proc
	if err := f.Ioctl(procfs.PIOCGETPR, &pr); err != nil || pr != p {
		t.Fatalf("getpr: %v", err)
	}
	var u procfs.UArea
	if err := f.Ioctl(procfs.PIOCGETU, &u); err != nil || u.CWD != "/" {
		t.Fatalf("getu: %v %+v", err, u)
	}

	// PIOCUSAGE.
	var usage procfs.PrUsage
	if err := f.Ioctl(procfs.PIOCUSAGE, &usage); err != nil {
		t.Fatal(err)
	}
	if usage.Syscalls == 0 {
		t.Fatal("usage should show syscalls")
	}

	// PIOCPGD.
	var pgd []procfs.PageData
	if err := f.Ioctl(procfs.PIOCPGD, &pgd); err != nil || len(pgd) == 0 {
		t.Fatalf("pgd: %v", err)
	}

	// Unknown command.
	if err := f.Ioctl(0x7FFF, nil); err != vfs.ErrNoIoctl {
		t.Fatalf("unknown ioctl: %v", err)
	}

	// Cleanup: stop tracing so the process can be killed.
	var empty types.SysSet
	f.Ioctl(procfs.PIOCSENTRY, &empty)
	f.Ioctl(procfs.PIOCSEXIT, &empty)
	var emptySig types.SigSet
	f.Ioctl(procfs.PIOCSTRACE, &emptySig)
	var emptyFlt types.FltSet
	f.Ioctl(procfs.PIOCSFAULT, &emptyFlt)
}

// Read-only descriptors may inspect but not control.
func TestReadOnlyDescriptorRestrictions(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("ro", spin, types.UserCred(100, 10))
	s.Run(2)
	f := open(t, s, p.Pid, vfs.ORead, types.RootCred())
	defer f.Close()
	var st kernel.ProcStatus
	if err := f.Ioctl(procfs.PIOCSTATUS, &st); err != nil {
		t.Fatalf("read-only status: %v", err)
	}
	var info kernel.PSInfo
	if err := f.Ioctl(procfs.PIOCPSINFO, &info); err != nil {
		t.Fatal(err)
	}
	var maps []procfs.PrMap
	if err := f.Ioctl(procfs.PIOCMAP, &maps); err != nil {
		t.Fatal(err)
	}
	// Control operations are rejected.
	if err := f.Ioctl(procfs.PIOCSTOP, nil); err != vfs.ErrBadFD {
		t.Fatalf("stop on read-only fd: %v", err)
	}
	var sset types.SigSet
	if err := f.Ioctl(procfs.PIOCSTRACE, &sset); err != vfs.ErrBadFD {
		t.Fatalf("strace on read-only fd: %v", err)
	}
	if _, err := f.Pwrite([]byte{0}, 0x80000000); err != vfs.ErrBadFD {
		t.Fatalf("write on read-only fd: %v", err)
	}
}

// PIOCOPENM: get a descriptor for the mapped object without its pathname.
func TestPIOCOPENM(t *testing.T) {
	s := repro.NewSystem()
	if err := s.Install("/lib/libsym", `
fn:	ret
`, 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	p, err := s.SpawnProg("openm", `
.lib "libsym"
loop:	jmp loop
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2)
	f := rootOpen(t, s, p.Pid)
	defer f.Close()

	// nil vaddr: the a.out itself.
	var om procfs.OpenMap
	if err := f.Ioctl(procfs.PIOCOPENM, &om); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4)
	if _, err := om.File.Pread(data, 0); err != nil {
		t.Fatal(err)
	}
	if string(data) != "XOUT" {
		t.Fatalf("a.out magic = %q", data)
	}
	om.File.Close()

	// A shared library address: its file, found without a pathname.
	lib := uint32(xout.LibBase)
	om = procfs.OpenMap{Vaddr: &lib}
	if err := f.Ioctl(procfs.PIOCOPENM, &om); err != nil {
		t.Fatal(err)
	}
	if _, err := om.File.Pread(data, 0); err != nil || string(data) != "XOUT" {
		t.Fatalf("lib magic = %q, %v", data, err)
	}
	// The symbol table of the library is reachable through it.
	all, _ := s.Client(types.RootCred()).ReadFile("/lib/libsym")
	sz := om.File
	buf := make([]byte, len(all))
	if n, _ := sz.Pread(buf, 0); n != len(all) {
		t.Fatalf("short read %d of %d", n, len(all))
	}
	img, err := xout.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := img.Lookup("fn"); !ok {
		t.Fatal("library symbol table missing fn")
	}
	om.File.Close()

	// An anonymous mapping has no object.
	st, _ := p.Status()
	anon := st.StkBase
	om = procfs.OpenMap{Vaddr: &anon}
	if err := f.Ioctl(procfs.PIOCOPENM, &om); err == nil {
		t.Fatal("openm on anonymous mapping should fail")
	}
}

// C7: the watchpoint extension through /proc.
func TestWatchpointThroughProc(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("watched", `
	la r3, cell
	movi r4, 0
loop:	addi r4, 1
	cmpi r4, 100
	jne loop
	movi r5, 42
	st r5, [r3]		; fires the watchpoint
	movi r0, SYS_exit
	movi r1, 0
	syscall
.data
cell:	.word 0
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	f := rootOpen(t, s, p.Pid)
	defer f.Close()
	syms, _ := p.ImageSyms()
	var cell uint32
	for _, sym := range syms {
		if sym.Name == "cell" {
			cell = sym.Value
		}
	}
	var fset types.FltSet
	fset.Add(types.FLTWATCH)
	if err := f.Ioctl(procfs.PIOCSFAULT, &fset); err != nil {
		t.Fatal(err)
	}
	w := procfs.PrWatch{Vaddr: cell, Size: 4, Mode: mem.ProtWrite}
	if err := f.Ioctl(procfs.PIOCSWATCH, &w); err != nil {
		t.Fatal(err)
	}
	var ws []procfs.PrWatch
	if err := f.Ioctl(procfs.PIOCGWATCH, &ws); err != nil || len(ws) != 1 || ws[0].Vaddr != cell {
		t.Fatalf("gwatch: %v %+v", err, ws)
	}
	var st kernel.ProcStatus
	if err := f.Ioctl(procfs.PIOCWSTOP, &st); err != nil {
		t.Fatal(err)
	}
	if st.Why != kernel.WhyFaulted || st.What != types.FLTWATCH {
		t.Fatalf("stop: %+v", st)
	}
	// The traced process stops only when the watchpoint really fires: the
	// loop's 100 iterations did not stop it. The store has not happened.
	buf := make([]byte, 4)
	f.Pread(buf, int64(cell))
	if buf[3] != 0 {
		t.Fatal("watched store should not have completed")
	}
	// Clear the watchpoint, clear the fault, run to completion.
	if err := f.Ioctl(procfs.PIOCCWATCH, nil); err != nil {
		t.Fatal(err)
	}
	run := kernel.RunFlags{ClearFault: true}
	if err := f.Ioctl(procfs.PIOCRUN, &run); err != nil {
		t.Fatal(err)
	}
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatal(err)
	}
	if ok, code := kernel.WIfExited(status); !ok || code != 0 {
		t.Fatalf("status = %#x", status)
	}
}

// C11 (proposed): poll(2) on /proc file descriptors — wait for any one of a
// set of controlled processes to stop.
func TestPollProcFiles(t *testing.T) {
	s := repro.NewSystem()
	cred := types.UserCred(100, 10)
	var files []*vfs.File
	var procs []*kernel.Proc
	for i := 0; i < 3; i++ {
		p, err := s.SpawnProg(fmt.Sprintf("poll%d", i), `
	movi r5, 0
spin:	addi r5, 1
	cmpi r5, 300
	jne spin
	bpt
back:	jmp back
`, cred)
		if err != nil {
			t.Fatal(err)
		}
		procs = append(procs, p)
		f := rootOpen(t, s, p.Pid)
		defer f.Close()
		var fset types.FltSet
		fset.Add(types.FLTBPT)
		if err := f.Ioctl(procfs.PIOCSFAULT, &fset); err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	// Poll across all three: one of them hits its breakpoint first.
	idx, ev, err := vfs.Poll(files, vfs.PollPri, s.Step)
	if err != nil {
		t.Fatal(err)
	}
	if ev != vfs.PollPri {
		t.Fatalf("events = %#x", ev)
	}
	if procs[idx].EventStoppedLWP() == nil {
		t.Fatal("polled process is not stopped")
	}
	// The others become ready too, eventually.
	for i := range files {
		if i == idx {
			continue
		}
		if err := s.RunUntil(func() bool { return files[i].Poll(vfs.PollPri) != 0 }, 200000); err != nil {
			t.Fatalf("file %d never ready: %v", i, err)
		}
	}
}
