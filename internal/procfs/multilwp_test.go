package procfs_test

import (
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

const twoLWPProg = `
	movi r0, SYS_mmap
	movi r1, 0
	movi r2, 0
	movhi r2, 1
	movi r3, 3
	movi r4, 0
	syscall
	mov r6, r0
	movi r2, 0
	movhi r2, 1
	add r6, r2
	movi r0, SYS_lwp_create
	la r1, thread
	mov r2, r6
	syscall
main:	jmp main
thread:	jmp thread
`

// The flat interface's PIOCSTOP stops the whole process: every LWP.
func TestFlatStopStopsAllLWPs(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("all", twoLWPProg, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntil(func() bool { return len(p.LiveLWPs()) == 2 }, 500000); err != nil {
		t.Fatal(err)
	}
	f := rootOpen(t, s, p.Pid)
	defer f.Close()
	var st kernel.ProcStatus
	if err := f.Ioctl(procfs.PIOCSTOP, &st); err != nil {
		t.Fatal(err)
	}
	// Give the second LWP its chance to take the directive too.
	s.RunUntil(func() bool {
		for _, l := range p.LiveLWPs() {
			if !l.Stopped() {
				return false
			}
		}
		return true
	}, 500000)
	for _, l := range p.LiveLWPs() {
		if !l.Stopped() {
			t.Fatalf("lwp %d not stopped", l.ID)
		}
	}
	if st.NLWP != 2 {
		t.Fatalf("status NLWP = %d", st.NLWP)
	}
	// PIOCRUN releases the event-stopped one; the other stays until its
	// own run (the flat interface operates on one representative at a
	// time, which is the strain multi-threading puts on it).
	if err := f.Ioctl(procfs.PIOCRUN, nil); err != nil {
		t.Fatal(err)
	}
	if second := p.EventStoppedLWP(); second != nil {
		if err := s.K.RunLWP(second, kernel.RunFlags{}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(5)
	for _, l := range p.LiveLWPs() {
		if l.Stopped() {
			t.Fatalf("lwp %d still stopped", l.ID)
		}
	}
	s.K.PostSignal(p, types.SIGKILL)
	s.WaitExit(p)
}

// Every ioctl rejects a wrongly-typed argument with EINVAL instead of
// panicking — a debugger bug must not take the kernel down.
func TestIoctlArgTypeRobustness(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("argt", spin, types.UserCred(100, 10))
	s.Run(2)
	f := rootOpen(t, s, p.Pid)
	defer f.Close()

	bad := struct{ X int }{} // never the right type
	cmds := []int{
		procfs.PIOCSTRACE, procfs.PIOCGTRACE, procfs.PIOCSFAULT,
		procfs.PIOCGFAULT, procfs.PIOCSENTRY, procfs.PIOCGENTRY,
		procfs.PIOCSEXIT, procfs.PIOCGEXIT, procfs.PIOCKILL,
		procfs.PIOCUNKILL, procfs.PIOCSHOLD, procfs.PIOCGHOLD,
		procfs.PIOCMAXSIG, procfs.PIOCACTION, procfs.PIOCGREG,
		procfs.PIOCSREG, procfs.PIOCGFPREG, procfs.PIOCSFPREG,
		procfs.PIOCNMAP, procfs.PIOCMAP, procfs.PIOCOPENM,
		procfs.PIOCCRED, procfs.PIOCGROUPS, procfs.PIOCPSINFO,
		procfs.PIOCNICE, procfs.PIOCGETPR, procfs.PIOCGETU,
		procfs.PIOCUSAGE, procfs.PIOCSWATCH, procfs.PIOCGWATCH,
		procfs.PIOCPGD,
	}
	for _, cmd := range cmds {
		if err := f.Ioctl(cmd, &bad); err != vfs.ErrInval {
			t.Errorf("cmd %#x with bad arg: %v, want ErrInval", cmd, err)
		}
	}
	// Also with a plain nil where an argument is required.
	for _, cmd := range []int{procfs.PIOCSTRACE, procfs.PIOCKILL, procfs.PIOCSREG} {
		if err := f.Ioctl(cmd, nil); err != vfs.ErrInval {
			t.Errorf("cmd %#x with nil arg: %v, want ErrInval", cmd, err)
		}
	}
	// The process is unharmed.
	var st kernel.ProcStatus
	if err := f.Ioctl(procfs.PIOCSTATUS, &st); err != nil {
		t.Fatal(err)
	}
	if st.Reg.PC < 0x80000000 {
		t.Fatal("process state corrupted")
	}
}
