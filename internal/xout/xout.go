// Package xout defines the executable file format of the simulated system —
// the analogue of the SVR4 a.out/ELF. An xout image carries a text segment,
// an initialized data segment, a bss size, an entry point, a list of shared
// libraries to map at exec time, and a symbol table (so debuggers can resolve
// names, and so PIOCOPENM — which hands a debugger a file descriptor for the
// mapped object — is useful for finding symbol tables without pathnames).
//
// The package also fixes the address-space layout conventions shared by the
// assembler and the kernel's exec: where text, data, stack and shared
// libraries are placed. The layout follows the paper's Figure 2: the a.out
// text at 0x80000000 and shared libraries at 0xC0000000 and up.
package xout

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Address-space layout conventions.
const (
	TextBase   = 0x80000000 // a.out text mapping base
	SegAlign   = 0x8000     // alignment between text and data mappings (32K)
	StackTop   = 0x7FFF8000 // first address above the initial stack mapping
	StackInit  = 0x8000     // initial stack mapping size (grows down)
	StackLimit = 0x7F000000 // lowest address the stack may grow to
	LibBase    = 0xC0000000 // first shared-library mapping base
	LibStride  = 0x01000000 // spacing between shared libraries
)

// Magic identifies an xout image.
var Magic = [4]byte{'X', 'O', 'U', 'T'}

// Version is the current format version.
const Version = 1

// Sym is a symbol-table entry: a label and its virtual address.
type Sym struct {
	Name  string
	Value uint32
}

// File is a parsed (or to-be-written) executable image.
type File struct {
	Entry   uint32   // initial program counter
	Text    []byte   // machine instructions, mapped read/exec at TextBase
	Data    []byte   // initialized data, mapped read/write at DataBase()
	BSSSize uint32   // zero-filled break segment placed after data
	Libs    []string // shared libraries to map (names under /lib)
	Syms    []Sym    // symbol table
}

// DataBase returns the virtual address of the data mapping: the text base
// plus the text length rounded up to the segment alignment.
func (f *File) DataBase() uint32 {
	return TextBase + roundUp(uint32(len(f.Text)), SegAlign)
}

// BSSBase returns the virtual address of the break (bss) mapping.
func (f *File) BSSBase() uint32 {
	return f.DataBase() + roundUp(uint32(len(f.Data)), SegAlign)
}

func roundUp(n, align uint32) uint32 {
	if n == 0 {
		return align
	}
	return (n + align - 1) &^ (align - 1)
}

// Lookup finds a symbol by name.
func (f *File) Lookup(name string) (uint32, bool) {
	for _, s := range f.Syms {
		if s.Name == name {
			return s.Value, true
		}
	}
	return 0, false
}

// SymAt returns the name of the symbol with the greatest value <= addr, plus
// the offset from it — the usual "func+0x10" debugger rendering.
func (f *File) SymAt(addr uint32) (string, uint32) {
	best := ""
	var bestVal uint32
	for _, s := range f.Syms {
		if s.Value <= addr && (best == "" || s.Value > bestVal) {
			best, bestVal = s.Name, s.Value
		}
	}
	if best == "" {
		return "", 0
	}
	return best, addr - bestVal
}

// Marshal serializes the image.
func (f *File) Marshal() []byte {
	var out []byte
	out = append(out, Magic[:]...)
	out = appendU32(out, Version)
	out = appendU32(out, f.Entry)
	out = appendU32(out, uint32(len(f.Text)))
	out = appendU32(out, uint32(len(f.Data)))
	out = appendU32(out, f.BSSSize)
	out = appendU32(out, uint32(len(f.Libs)))
	out = appendU32(out, uint32(len(f.Syms)))
	for _, l := range f.Libs {
		out = appendStr(out, l)
	}
	for _, s := range f.Syms {
		out = appendStr(out, s.Name)
		out = appendU32(out, s.Value)
	}
	out = append(out, f.Text...)
	out = append(out, f.Data...)
	return out
}

func appendU32(b []byte, v uint32) []byte {
	var w [4]byte
	binary.BigEndian.PutUint32(w[:], v)
	return append(b, w[:]...)
}

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// ErrBadMagic reports that a file is not an xout image; exec returns the
// equivalent of ENOEXEC for it.
var ErrBadMagic = errors.New("xout: bad magic")

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.b) {
		r.err = errors.New("xout: truncated image")
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil {
		return ""
	}
	if n < 0 || r.off+n > len(r.b) || n > 1<<20 {
		r.err = errors.New("xout: truncated string")
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = errors.New("xout: truncated section")
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:])
	r.off += n
	return out
}

// Unmarshal parses an image.
func Unmarshal(b []byte) (*File, error) {
	if len(b) < 4 || b[0] != Magic[0] || b[1] != Magic[1] || b[2] != Magic[2] || b[3] != Magic[3] {
		return nil, ErrBadMagic
	}
	r := &reader{b: b, off: 4}
	ver := r.u32()
	if r.err == nil && ver != Version {
		return nil, fmt.Errorf("xout: unsupported version %d", ver)
	}
	f := &File{}
	f.Entry = r.u32()
	textLen := int(r.u32())
	dataLen := int(r.u32())
	f.BSSSize = r.u32()
	nLibs := int(r.u32())
	nSyms := int(r.u32())
	if r.err == nil && (nLibs > 1024 || nSyms > 1<<20) {
		return nil, errors.New("xout: unreasonable table sizes")
	}
	for i := 0; i < nLibs && r.err == nil; i++ {
		f.Libs = append(f.Libs, r.str())
	}
	for i := 0; i < nSyms && r.err == nil; i++ {
		name := r.str()
		val := r.u32()
		f.Syms = append(f.Syms, Sym{Name: name, Value: val})
	}
	f.Text = r.bytes(textLen)
	f.Data = r.bytes(dataLen)
	if r.err != nil {
		return nil, r.err
	}
	return f, nil
}
