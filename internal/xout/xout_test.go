package xout

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sample() *File {
	return &File{
		Entry:   TextBase + 8,
		Text:    []byte{1, 2, 3, 4, 5, 6, 7, 8},
		Data:    []byte("initialized"),
		BSSSize: 4096,
		Libs:    []string{"libc", "libm"},
		Syms:    []Sym{{"start", TextBase}, {"main", TextBase + 8}},
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := sample()
	g, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if g.Entry != f.Entry || !bytes.Equal(g.Text, f.Text) || !bytes.Equal(g.Data, f.Data) ||
		g.BSSSize != f.BSSSize || len(g.Libs) != 2 || g.Libs[0] != "libc" ||
		len(g.Syms) != 2 || g.Syms[1].Name != "main" {
		t.Fatalf("round trip mismatch: %+v", g)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Unmarshal([]byte("ELF!....")); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	if _, err := Unmarshal(nil); err != ErrBadMagic {
		t.Fatal("nil image should be bad magic")
	}
}

func TestTruncated(t *testing.T) {
	b := sample().Marshal()
	for _, cut := range []int{5, 10, 20, len(b) - 3} {
		if _, err := Unmarshal(b[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestLayout(t *testing.T) {
	f := &File{Text: make([]byte, 26*1024), Data: make([]byte, 100)}
	if f.DataBase() != TextBase+0x8000 {
		t.Fatalf("DataBase = %#x", f.DataBase())
	}
	if f.BSSBase() != TextBase+2*0x8000 {
		t.Fatalf("BSSBase = %#x", f.BSSBase())
	}
	// Empty text still reserves one alignment unit so bases never collide.
	g := &File{}
	if g.DataBase() == TextBase {
		t.Fatal("empty text should still separate data from text base")
	}
}

func TestLookupAndSymAt(t *testing.T) {
	f := sample()
	if v, ok := f.Lookup("main"); !ok || v != TextBase+8 {
		t.Fatal("Lookup main failed")
	}
	if _, ok := f.Lookup("nope"); ok {
		t.Fatal("Lookup nope should fail")
	}
	name, off := f.SymAt(TextBase + 12)
	if name != "main" || off != 4 {
		t.Fatalf("SymAt = %s+%d", name, off)
	}
	name, _ = f.SymAt(TextBase - 4)
	if name != "" {
		t.Fatal("SymAt below all symbols should be empty")
	}
}

// Property: Marshal/Unmarshal round-trips arbitrary content.
func TestQuickRoundTrip(t *testing.T) {
	fn := func(entry uint32, text, data []byte, bss uint32, lib string, sym string, val uint32) bool {
		if len(lib) > 100 {
			lib = lib[:100]
		}
		if len(sym) > 100 {
			sym = sym[:100]
		}
		f := &File{Entry: entry, Text: text, Data: data, BSSSize: bss,
			Libs: []string{lib}, Syms: []Sym{{sym, val}}}
		g, err := Unmarshal(f.Marshal())
		if err != nil {
			return false
		}
		return g.Entry == entry && bytes.Equal(g.Text, text) && bytes.Equal(g.Data, data) &&
			g.BSSSize == bss && g.Libs[0] == lib && g.Syms[0] == Sym{sym, val}
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
