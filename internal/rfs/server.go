package rfs

import (
	"io"
	"sync"

	"repro/internal/types"
	"repro/internal/vfs"
)

// Server exports a name space over the RFS protocol. Each connection
// declares its credentials at handshake (RFS-style trusted network); the
// server acts within the name space under those credentials, so all the
// usual /proc security applies remotely.
type Server struct {
	NS *vfs.NS
	// Lock serializes access to the simulated system when requests arrive
	// from multiple connections or goroutines; the kernel itself is
	// deliberately not goroutine-safe.
	Lock sync.Locker
	// MuxWorkers is the number of concurrent dispatch workers per
	// multiplexed connection (0 selects a default).
	MuxWorkers int
	// MuxFaults, when set, injects wire faults into multiplexed responses
	// (tests only).
	MuxFaults *Faults

	// Tap, if set, observes every (request, response) pair after dispatch,
	// under the server lock. The record/replay subsystem uses it to capture
	// the remote mutation stream server-side — past the transport, so wire
	// faults and disconnect storms never corrupt the recorded ops.
	Tap func(req, resp []byte)

	mu     sync.Mutex
	nextFD uint32
	open   map[uint32]*vfs.File
	creds  map[uint32]types.Cred // per-fd opening credential (audit)
}

// NewServer creates a server over a name space. lock may be nil for
// single-goroutine (LocalTransport) use.
func NewServer(ns *vfs.NS, lock sync.Locker) *Server {
	if lock == nil {
		lock = noLock{}
	}
	return &Server{NS: ns, Lock: lock, open: map[uint32]*vfs.File{}, creds: map[uint32]types.Cred{}}
}

type noLock struct{}

func (noLock) Lock()   {}
func (noLock) Unlock() {}

// ServerState is the server's mutable session state — the remote-open fd
// table — captured for whole-kernel checkpoints. A replayed request stream
// that opens an fd before a checkpoint and uses it after must find the fd
// live again when the checkpoint is restored.
type ServerState struct {
	nextFD uint32
	open   map[uint32]*vfs.File
	creds  map[uint32]types.Cred
	files  map[*vfs.File]vfs.FileState
}

// SaveState captures the fd table and each open description's state.
func (s *Server) SaveState() *ServerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &ServerState{
		nextFD: s.nextFD,
		open:   make(map[uint32]*vfs.File, len(s.open)),
		creds:  make(map[uint32]types.Cred, len(s.creds)),
		files:  make(map[*vfs.File]vfs.FileState, len(s.open)),
	}
	for fd, f := range s.open {
		st.open[fd] = f
		st.files[f] = f.SaveState()
	}
	for fd, c := range s.creds {
		st.creds[fd] = c
	}
	return st
}

// LoadState restores a state captured by SaveState; the state remains
// reusable.
func (s *Server) LoadState(st *ServerState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextFD = st.nextFD
	s.open = make(map[uint32]*vfs.File, len(st.open))
	s.creds = make(map[uint32]types.Cred, len(st.creds))
	for fd, f := range st.open {
		s.open[fd] = f
	}
	for fd, c := range st.creds {
		s.creds[fd] = c
	}
	for f, fst := range st.files {
		f.LoadState(fst)
	}
}

// Handle processes one request and returns the response, acquiring the
// server lock around the dispatch.
func (s *Server) Handle(req []byte) []byte {
	s.Lock.Lock()
	defer s.Lock.Unlock()
	return s.handleLocked(req)
}

// handleLocked processes one request body with the server lock already
// held by the caller — the multiplexed path batches several requests under
// one acquisition.
func (s *Server) handleLocked(req []byte) []byte {
	in := &buf{b: req}
	op := in.u8()
	cred := types.Cred{
		RUID: int(in.u32()), EUID: int(in.u32()),
		RGID: int(in.u32()), EGID: int(in.u32()),
	}
	cred.SUID, cred.SGID = cred.EUID, cred.EGID
	out := &buf{}
	var err error
	if in.err != nil {
		err = in.err
	} else {
		err = s.dispatch(op, cred, in, out)
	}
	code, msg := encodeErr(err)
	resp := &buf{}
	resp.putU32(code)
	resp.putStr(msg)
	resp.b = append(resp.b, out.b...)
	if s.Tap != nil {
		s.Tap(req, resp.b)
	}
	return resp.b
}

func (s *Server) dispatch(op uint8, cred types.Cred, in, out *buf) error {
	cl := &vfs.Client{NS: s.NS, Cred: cred}
	switch op {
	case opOpen:
		path := in.str()
		flags := int(in.u32())
		if in.err != nil {
			return in.err
		}
		f, err := cl.Open(path, flags)
		if err != nil {
			return err
		}
		s.mu.Lock()
		s.nextFD++
		fd := s.nextFD
		s.open[fd] = f
		s.creds[fd] = cred
		s.mu.Unlock()
		out.putU32(fd)
		return nil

	case opClose:
		fd := in.u32()
		f := s.lookupFD(fd)
		if f == nil {
			return vfs.ErrBadFD
		}
		s.mu.Lock()
		delete(s.open, fd)
		delete(s.creds, fd)
		s.mu.Unlock()
		return f.Close()

	case opRead:
		fd := in.u32()
		off := in.i64()
		n := int(in.u32())
		if in.err != nil {
			return in.err
		}
		f := s.lookupFD(fd)
		if f == nil {
			return vfs.ErrBadFD
		}
		if n > 1<<20 {
			n = 1 << 20
		}
		p := make([]byte, n)
		got, err := f.Pread(p, off)
		if err != nil && got == 0 {
			return err
		}
		out.putBytes(p[:got])
		return nil

	case opWrite:
		fd := in.u32()
		off := in.i64()
		data := in.bytes()
		if in.err != nil {
			return in.err
		}
		f := s.lookupFD(fd)
		if f == nil {
			return vfs.ErrBadFD
		}
		got, err := f.Pwrite(data, off)
		if err != nil && got == 0 {
			return err
		}
		out.putU32(uint32(got))
		return nil

	case opReadDir:
		path := in.str()
		if in.err != nil {
			return in.err
		}
		ents, err := cl.ReadDir(path)
		if err != nil {
			return err
		}
		out.putU32(uint32(len(ents)))
		for _, e := range ents {
			out.putStr(e.Name)
			out.putAttr(e.Attr)
		}
		return nil

	case opStat:
		path := in.str()
		if in.err != nil {
			return in.err
		}
		attr, err := cl.Stat(path)
		if err != nil {
			return err
		}
		out.putAttr(attr)
		return nil

	case opIoctl:
		fd := in.u32()
		cmd := int(in.u32())
		argBytes := in.bytes()
		if in.err != nil {
			return in.err
		}
		f := s.lookupFD(fd)
		if f == nil {
			return vfs.ErrBadFD
		}
		// The ioctl ugliness: the server must know each command's operand
		// shape to reconstruct it, perform the call, and re-serialize.
		codec, ok := ioctlCodecs[cmd]
		if !ok {
			return vfs.ErrNoIoctl
		}
		arg, err := codec.decodeArg(argBytes)
		if err != nil {
			return err
		}
		if err := f.Ioctl(cmd, arg); err != nil {
			return err
		}
		res, err := codec.encodeResult(arg)
		if err != nil {
			return err
		}
		out.putBytes(res)
		return nil

	case opPoll:
		fd := in.u32()
		mask := int(in.u32())
		if in.err != nil {
			return in.err
		}
		f := s.lookupFD(fd)
		if f == nil {
			return vfs.ErrBadFD
		}
		out.putU32(uint32(f.Poll(mask)))
		return nil
	}
	return vfs.ErrInval
}

func (s *Server) lookupFD(fd uint32) *vfs.File {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.open[fd]
}

// ServeConn serves frames from a connection until it closes. It speaks
// both protocols: a first frame carrying the mux handshake upgrades the
// connection to the tagged, pipelined protocol; anything else is served
// stop-and-wait, one frame at a time (the legacy compat mode).
func (s *Server) ServeConn(conn io.ReadWriter) error {
	first := true
	for {
		req, err := readFrame(conn)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if first && string(req) == muxMagic {
			if err := writeFrame(conn, []byte(muxMagic)); err != nil {
				return err
			}
			return s.serveMux(conn)
		}
		first = false
		if err := writeFrame(conn, s.Handle(req)); err != nil {
			return err
		}
	}
}

// LocalTransport invokes a server in-process — deterministic and
// single-goroutine, like a loopback mount.
type LocalTransport struct{ S *Server }

// RoundTrip implements Transport.
func (t LocalTransport) RoundTrip(req []byte) ([]byte, error) {
	return t.S.Handle(req), nil
}

// ConnTransport speaks the frame protocol over a stream connection (one
// outstanding request at a time).
type ConnTransport struct {
	Conn io.ReadWriter
	mu   sync.Mutex
}

// RoundTrip implements Transport.
func (t *ConnTransport) RoundTrip(req []byte) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := writeFrame(t.Conn, req); err != nil {
		return nil, err
	}
	return readFrame(t.Conn)
}
