package rfs

import (
	"sync/atomic"

	"repro/internal/types"
	"repro/internal/vfs"
)

// Client is the remote side of an RFS mount: the same Open/Stat/ReadDir
// surface as vfs.Client, with every operation forwarded over the transport.
// Opened files satisfy *vfs.File, so tools like ps, truss and the debugger
// run unmodified against remote processes.
type Client struct {
	T    Transport
	Cred types.Cred
	// ops counts protocol round trips, for the paper's remote-efficiency
	// arguments. Atomic: a ConnTransport client may be shared across
	// goroutines.
	ops atomic.Int64
}

// NewClient creates a remote client acting under cred.
func NewClient(t Transport, cred types.Cred) *Client {
	return &Client{T: t, Cred: cred}
}

// Ops returns the number of protocol round trips made so far.
func (c *Client) Ops() int64 { return c.ops.Load() }

func (c *Client) call(op uint8, build func(*buf)) (*buf, error) {
	c.ops.Add(1)
	req := &buf{}
	req.putU8(op)
	req.putU32(uint32(c.Cred.RUID))
	req.putU32(uint32(c.Cred.EUID))
	req.putU32(uint32(c.Cred.RGID))
	req.putU32(uint32(c.Cred.EGID))
	build(req)
	var respB []byte
	var err error
	if it, ok := c.T.(IdemTransport); ok {
		// Tell the transport which requests are safe to re-send after a
		// deadline expiry; it decides the retry policy.
		respB, err = it.RoundTripIdem(req.b, idempotentOp(op))
	} else {
		respB, err = c.T.RoundTrip(req.b)
	}
	if err != nil {
		return nil, err
	}
	resp := &buf{b: respB}
	code := resp.u32()
	msg := resp.str()
	if resp.err != nil {
		return nil, resp.err
	}
	if err := decodeErr(code, msg); err != nil {
		return nil, err
	}
	return resp, nil
}

// Open opens a remote path and returns a local *vfs.File whose handle
// forwards I/O and control over the wire.
func (c *Client) Open(path string, flags int) (*vfs.File, error) {
	resp, err := c.call(opOpen, func(m *buf) {
		m.putStr(path)
		m.putU32(uint32(flags))
	})
	if err != nil {
		return nil, err
	}
	fd := resp.u32()
	if resp.err != nil {
		// The server reported success, so it holds an open fd even though
		// the response was too mangled to use. Release it best-effort so a
		// flaky wire cannot leak server-side descriptors. (If the fd field
		// itself was the truncated part, fd is zero — never a served fd,
		// so the close is harmless.)
		err := resp.err
		c.call(opClose, func(m *buf) { m.putU32(fd) })
		return nil, err
	}
	h := &remoteHandle{c: c, fd: fd}
	return &vfs.File{VN: &remoteVnode{c: c, path: path}, H: h, Flags: flags}, nil
}

// Stat returns remote file attributes.
func (c *Client) Stat(path string) (vfs.Attr, error) {
	resp, err := c.call(opStat, func(m *buf) { m.putStr(path) })
	if err != nil {
		return vfs.Attr{}, err
	}
	a := resp.attr()
	return a, resp.err
}

// ReadDir lists a remote directory.
func (c *Client) ReadDir(path string) ([]vfs.Dirent, error) {
	resp, err := c.call(opReadDir, func(m *buf) { m.putStr(path) })
	if err != nil {
		return nil, err
	}
	n := int(resp.u32())
	if resp.err != nil || n < 0 || n > 1<<20 {
		return nil, errShort
	}
	out := make([]vfs.Dirent, 0, n)
	for i := 0; i < n; i++ {
		name := resp.str()
		attr := resp.attr()
		if resp.err != nil {
			return nil, resp.err
		}
		out = append(out, vfs.Dirent{Name: name, Attr: attr})
	}
	return out, nil
}

// remoteVnode carries attributes for Seek(SeekEnd) and friends.
type remoteVnode struct {
	c    *Client
	path string
}

// VAttr implements vfs.Vnode.
func (v *remoteVnode) VAttr() (vfs.Attr, error) { return v.c.Stat(v.path) }

// VOpen implements vfs.Vnode.
func (v *remoteVnode) VOpen(flags int, cred types.Cred) (vfs.Handle, error) {
	f, err := v.c.Open(v.path, flags)
	if err != nil {
		return nil, err
	}
	return f.H, nil
}

// remoteHandle forwards vfs.Handle operations over the transport.
type remoteHandle struct {
	c  *Client
	fd uint32
}

// HRead implements vfs.Handle.
func (h *remoteHandle) HRead(p []byte, off int64) (int, error) {
	resp, err := h.c.call(opRead, func(m *buf) {
		m.putU32(h.fd)
		m.putI64(off)
		m.putU32(uint32(len(p)))
	})
	if err != nil {
		return 0, err
	}
	data := resp.bytes()
	if resp.err != nil {
		return 0, resp.err
	}
	// A server cannot have read more than it was asked for; an oversized
	// payload is a protocol violation, not data to silently truncate.
	if len(data) > len(p) {
		return 0, errShort
	}
	return copy(p, data), nil
}

// HWrite implements vfs.Handle.
func (h *remoteHandle) HWrite(p []byte, off int64) (int, error) {
	resp, err := h.c.call(opWrite, func(m *buf) {
		m.putU32(h.fd)
		m.putI64(off)
		m.putBytes(p)
	})
	if err != nil {
		return 0, err
	}
	n := resp.u32()
	if resp.err != nil {
		return 0, resp.err
	}
	// A server cannot have written more than it was sent.
	if int64(n) > int64(len(p)) {
		return 0, errShort
	}
	return int(n), nil
}

// HIoctl implements vfs.Handle: the operand is marshalled by the per-command
// codec (the machinery read/write never needs).
func (h *remoteHandle) HIoctl(cmd int, arg interface{}) error {
	codec, ok := ioctlCodecs[cmd]
	if !ok {
		return vfs.ErrNoIoctl
	}
	argBytes, err := codec.encodeArg(arg)
	if err != nil {
		return err
	}
	resp, cerr := h.c.call(opIoctl, func(m *buf) {
		m.putU32(h.fd)
		m.putU32(uint32(cmd))
		m.putBytes(argBytes)
	})
	if cerr != nil {
		return cerr
	}
	res := resp.bytes()
	if resp.err != nil {
		return resp.err
	}
	return codec.decodeResult(res, arg)
}

// HClose implements vfs.Handle.
func (h *remoteHandle) HClose() error {
	_, err := h.c.call(opClose, func(m *buf) { m.putU32(h.fd) })
	return err
}

// HPoll implements vfs.Poller by asking the server. A transport failure is
// reported as vfs.PollErr, never as "no events ready": a poll loop that
// read a dead connection as all-clear would wait forever.
func (h *remoteHandle) HPoll(mask int) int {
	resp, err := h.c.call(opPoll, func(m *buf) {
		m.putU32(h.fd)
		m.putU32(uint32(mask))
	})
	if err != nil {
		return vfs.PollErr
	}
	ev := int(resp.u32())
	if resp.err != nil {
		return vfs.PollErr
	}
	return ev
}

var (
	_ vfs.Handle = (*remoteHandle)(nil)
	_ vfs.Poller = (*remoteHandle)(nil)
)
