package rfs

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/vfs"
)

// The I/O-failure sentinels must survive the wire as errors.Is identities in
// both directions: server-side encode of a (possibly wrapped) sentinel to a
// dedicated code, client-side decode back to the identical sentinel — and a
// decoded error must re-encode to the same code, so a proxied mount (client
// relaying a remote error back out through its own server) cannot decay EIO
// or ENOSPC into errOther's opaque message.
func TestErrIOAndNoSpaceWireRoundTrip(t *testing.T) {
	cases := []struct {
		sentinel error
		code     uint32
	}{
		{vfs.ErrIO, errIO},
		{vfs.ErrNoSpace, errNoSpace},
	}
	for _, tc := range cases {
		t.Run(tc.sentinel.Error(), func(t *testing.T) {
			// Server -> wire: the bare sentinel and a wrapped one encode to
			// the dedicated code with no message payload.
			for _, err := range []error{tc.sentinel, fmt.Errorf("blockfs: flush failed: %w", tc.sentinel)} {
				code, msg := encodeErr(err)
				if code != tc.code || msg != "" {
					t.Fatalf("encodeErr(%v) = (%d, %q), want (%d, \"\")", err, code, msg, tc.code)
				}
			}
			// Wire -> client: the decoded error is the sentinel identity.
			dec := decodeErr(tc.code, "")
			if !errors.Is(dec, tc.sentinel) {
				t.Fatalf("decodeErr(%d) = %v, not errors.Is %v", tc.code, dec, tc.sentinel)
			}
			// Client -> wire again: re-encoding the decoded error (as a
			// relaying server would) preserves the code.
			code, _ := encodeErr(dec)
			if code != tc.code {
				t.Fatalf("re-encode of decoded error = %d, want %d", code, tc.code)
			}
			// And neither decays to errOther when wrapped client-side.
			code, _ = encodeErr(fmt.Errorf("relay: %w", dec))
			if code != tc.code {
				t.Fatalf("re-encode of wrapped decoded error = %d, want %d", code, tc.code)
			}
		})
	}
}
