package rfs

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/types"
	"repro/internal/vfs"
)

// scriptT is a Transport answering from a scripted list of responses while
// recording every request, for pinning client behaviour against a
// misbehaving (or merely unlucky) server.
type scriptT struct {
	resps [][]byte
	errs  []error
	reqs  [][]byte
}

func (t *scriptT) RoundTrip(req []byte) ([]byte, error) {
	t.reqs = append(t.reqs, append([]byte(nil), req...))
	i := len(t.reqs) - 1
	var err error
	if i < len(t.errs) {
		err = t.errs[i]
	}
	if i < len(t.resps) {
		return t.resps[i], err
	}
	return nil, err
}

// okResp builds a response frame body with errNone status and extra fields
// appended by build.
func okResp(build func(*buf)) []byte {
	m := &buf{}
	m.putU32(errNone)
	m.putStr("")
	if build != nil {
		build(m)
	}
	return m.b
}

// Regression: a server returning more bytes than the client asked for must
// be rejected, not silently truncated into p.
func TestHReadRejectsOversizedPayload(t *testing.T) {
	tr := &scriptT{resps: [][]byte{
		okResp(func(m *buf) { m.putBytes(make([]byte, 64)) }),
	}}
	h := &remoteHandle{c: NewClient(tr, types.RootCred()), fd: 1}
	n, err := h.HRead(make([]byte, 16), 0)
	if err != errShort || n != 0 {
		t.Fatalf("oversized read payload: n=%d err=%v, want 0, errShort", n, err)
	}
}

// A payload no larger than the request is still fine (short reads are
// normal).
func TestHReadShortPayloadOK(t *testing.T) {
	tr := &scriptT{resps: [][]byte{
		okResp(func(m *buf) { m.putBytes([]byte("abc")) }),
	}}
	h := &remoteHandle{c: NewClient(tr, types.RootCred()), fd: 1}
	p := make([]byte, 16)
	n, err := h.HRead(p, 0)
	if err != nil || n != 3 || string(p[:3]) != "abc" {
		t.Fatalf("short read: n=%d err=%v", n, err)
	}
}

// Regression: when an Open response reports success but is truncated before
// the fd, the server-side fd must not leak — the client sends a best-effort
// close before surfacing the decode error.
func TestOpenTruncatedResponseClosesServerFD(t *testing.T) {
	tr := &scriptT{resps: [][]byte{
		okResp(nil), // success status, fd field missing
		okResp(nil), // the best-effort close's answer
	}}
	cl := NewClient(tr, types.RootCred())
	if _, err := cl.Open("/tmp/x", vfs.ORead); err != errShort {
		t.Fatalf("truncated open: %v, want errShort", err)
	}
	if len(tr.reqs) != 2 {
		t.Fatalf("requests sent = %d, want open + best-effort close", len(tr.reqs))
	}
	if op := tr.reqs[1][0]; op != opClose {
		t.Fatalf("follow-up op = %d, want opClose", op)
	}
}

// Regression: a transport failure during poll must be distinguishable from
// "no events ready" — a poll loop on a dead connection would otherwise wait
// forever.
func TestHPollSurfacesTransportError(t *testing.T) {
	tr := &scriptT{errs: []error{errors.New("wire down")}}
	h := &remoteHandle{c: NewClient(tr, types.RootCred()), fd: 1}
	if ev := h.HPoll(vfs.PollPri); ev&vfs.PollErr == 0 {
		t.Fatalf("poll on dead transport = %#x, want PollErr set", ev)
	}
	// And a healthy all-clear still reads as zero.
	tr2 := &scriptT{resps: [][]byte{okResp(func(m *buf) { m.putU32(0) })}}
	h2 := &remoteHandle{c: NewClient(tr2, types.RootCred()), fd: 1}
	if ev := h2.HPoll(vfs.PollPri); ev != 0 {
		t.Fatalf("healthy all-clear poll = %#x, want 0", ev)
	}
}

// Regression: wrapped sentinel errors must cross the wire as their code,
// not as errOther text.
func TestEncodeErrWrapped(t *testing.T) {
	wrapped := fmt.Errorf("open %q: %w", "/tmp/x", vfs.ErrNotExist)
	code, msg := encodeErr(wrapped)
	if code != errNotExist || msg != "" {
		t.Fatalf("encodeErr(wrapped ErrNotExist) = %d %q", code, msg)
	}
	if err := decodeErr(code, msg); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("round trip = %v, want ErrNotExist", err)
	}
	// The full matrix round-trips, wrapped and bare.
	for _, w := range wireErrs {
		for _, e := range []error{w.err, fmt.Errorf("ctx: %w", w.err)} {
			code, msg := encodeErr(e)
			if code != w.code {
				t.Fatalf("encodeErr(%v) = %d, want %d", e, code, w.code)
			}
			if got := decodeErr(code, msg); got != w.err {
				t.Fatalf("decodeErr(%d) = %v, want %v", code, got, w.err)
			}
		}
	}
	// Unknown errors still carry their text.
	code, msg = encodeErr(errors.New("weird"))
	if code != errOther || msg != "weird" {
		t.Fatalf("unknown error: %d %q", code, msg)
	}
}
