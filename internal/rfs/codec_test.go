package rfs

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/procfs"
	"repro/internal/types"
	"repro/internal/vcpu"
)

// Round-trip every registered codec: encodeArg → decodeArg reconstructs the
// argument; encodeResult → decodeResult reproduces the out-value.
func TestCodecRoundTrips(t *testing.T) {
	var sigs types.SigSet
	sigs.Add(types.SIGINT)
	sigs.Add(types.SIGUSR2)
	var flts types.FltSet
	flts.Add(types.FLTBPT)
	var syss types.SysSet
	syss.Add(kernel.SysRead)
	syss.Add(kernel.SysExec)
	regs := vcpu.Regs{PC: 0x80000010, SP: 0x7FFF0000, PSW: 5}
	regs.R[3] = 42
	run := kernel.RunFlags{ClearSig: true, Step: true, SetPC: true, PC: 0x1234, SetSig: 9}
	watch := procfs.PrWatch{Vaddr: 0x8000, Size: 16, Mode: mem.ProtWrite}
	five := 5
	status := kernel.ProcStatus{Pid: 7, Why: kernel.WhyFaulted, What: types.FLTBPT, Reg: regs}
	info := kernel.PSInfo{Pid: 7, Comm: "x", Args: "x -v", State: 'R', VSize: 4096}
	cred := types.Cred{RUID: 1, EUID: 2, SUID: 2, RGID: 3, EGID: 4, SGID: 4, Groups: []int{7, 8}}
	maps := []procfs.PrMap{{Vaddr: 0x80000000, Size: 4096, Prot: mem.ProtRX, Kind: mem.KindText, Name: "/bin/x"}}
	usage := procfs.PrUsage{Usage: kernel.Usage{UserTicks: 10, Syscalls: 3}, COWFaults: 2}

	// In-arguments: encode client-side, decode server-side, compare.
	inCases := []struct {
		name  string
		cmd   int
		arg   interface{}
		check func(got interface{}) bool
	}{
		{"sigset", procfs.PIOCSTRACE, &sigs, func(g interface{}) bool { return *g.(*types.SigSet) == sigs }},
		{"fltset", procfs.PIOCSFAULT, &flts, func(g interface{}) bool { return *g.(*types.FltSet) == flts }},
		{"sysset", procfs.PIOCSENTRY, &syss, func(g interface{}) bool { return *g.(*types.SysSet) == syss }},
		{"int", procfs.PIOCKILL, &five, func(g interface{}) bool { return *g.(*int) == 5 }},
		{"regs", procfs.PIOCSREG, &regs, func(g interface{}) bool { return *g.(*vcpu.Regs) == regs }},
		{"run", procfs.PIOCRUN, &run, func(g interface{}) bool { return *g.(*kernel.RunFlags) == run }},
		{"watch", procfs.PIOCSWATCH, &watch, func(g interface{}) bool { return *g.(*procfs.PrWatch) == watch }},
	}
	for _, tc := range inCases {
		codec := ioctlCodecs[tc.cmd]
		b, err := codec.encodeArg(tc.arg)
		if err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		got, err := codec.decodeArg(b)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if !tc.check(got) {
			t.Fatalf("%s: round trip mismatch: %+v", tc.name, got)
		}
	}

	// Out-results: encode server-side, decode into the caller's variable.
	t.Run("status", func(t *testing.T) {
		codec := ioctlCodecs[procfs.PIOCSTATUS]
		b, err := codec.encodeResult(&status)
		if err != nil {
			t.Fatal(err)
		}
		var out kernel.ProcStatus
		if err := codec.decodeResult(b, &out); err != nil {
			t.Fatal(err)
		}
		if out != status {
			t.Fatalf("%+v", out)
		}
		// nil arg is tolerated (PIOCSTOP with no status wanted).
		if err := codec.decodeResult(b, nil); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("psinfo", func(t *testing.T) {
		codec := ioctlCodecs[procfs.PIOCPSINFO]
		b, _ := codec.encodeResult(&info)
		var out kernel.PSInfo
		if err := codec.decodeResult(b, &out); err != nil || out != info {
			t.Fatalf("%+v %v", out, err)
		}
	})
	t.Run("cred", func(t *testing.T) {
		codec := ioctlCodecs[procfs.PIOCCRED]
		b, _ := codec.encodeResult(&cred)
		var out types.Cred
		if err := codec.decodeResult(b, &out); err != nil {
			t.Fatal(err)
		}
		if out.RUID != 1 || out.EGID != 4 || len(out.Groups) != 2 || out.Groups[1] != 8 {
			t.Fatalf("%+v", out)
		}
	})
	t.Run("map", func(t *testing.T) {
		codec := ioctlCodecs[procfs.PIOCMAP]
		b, _ := codec.encodeResult(&maps)
		var out []procfs.PrMap
		if err := codec.decodeResult(b, &out); err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 || out[0] != maps[0] {
			t.Fatalf("%+v", out)
		}
	})
	t.Run("usage", func(t *testing.T) {
		codec := ioctlCodecs[procfs.PIOCUSAGE]
		b, _ := codec.encodeResult(&usage)
		var out procfs.PrUsage
		if err := codec.decodeResult(b, &out); err != nil {
			t.Fatal(err)
		}
		if out.UserTicks != 10 || out.COWFaults != 2 {
			t.Fatalf("%+v", out)
		}
	})
	t.Run("regsOut", func(t *testing.T) {
		codec := ioctlCodecs[procfs.PIOCGREG]
		b, _ := codec.encodeResult(&regs)
		var out vcpu.Regs
		if err := codec.decodeResult(b, &out); err != nil || out != regs {
			t.Fatalf("%+v %v", out, err)
		}
	})
	t.Run("sigsetOut", func(t *testing.T) {
		codec := ioctlCodecs[procfs.PIOCGTRACE]
		b, _ := codec.encodeResult(&sigs)
		var out types.SigSet
		if err := codec.decodeResult(b, &out); err != nil || out != sigs {
			t.Fatalf("%+v %v", out, err)
		}
	})
	t.Run("intOut", func(t *testing.T) {
		codec := ioctlCodecs[procfs.PIOCMAXSIG]
		n := 128
		b, _ := codec.encodeResult(&n)
		var out int
		if err := codec.decodeResult(b, &out); err != nil || out != 128 {
			t.Fatalf("%d %v", out, err)
		}
	})
}

// Wrong argument types are rejected, not crashed on.
func TestCodecTypeErrors(t *testing.T) {
	bad := "not the right type"
	for _, cmd := range []int{procfs.PIOCSTRACE, procfs.PIOCKILL, procfs.PIOCSREG, procfs.PIOCSWATCH} {
		codec := ioctlCodecs[cmd]
		if _, err := codec.encodeArg(&bad); err == nil {
			t.Errorf("cmd %#x accepted a bad arg type", cmd)
		}
	}
	for _, cmd := range []int{procfs.PIOCSTATUS, procfs.PIOCPSINFO, procfs.PIOCCRED, procfs.PIOCMAP} {
		codec := ioctlCodecs[cmd]
		if err := codec.decodeResult([]byte{1, 2, 3}, &bad); err == nil {
			t.Errorf("cmd %#x accepted a bad result type", cmd)
		}
	}
	// Truncated operand bytes are rejected.
	if _, err := ioctlCodecs[procfs.PIOCSTRACE].decodeArg([]byte{1, 2}); err == nil {
		t.Error("truncated sigset accepted")
	}
	if _, err := ioctlCodecs[procfs.PIOCSREG].decodeArg([]byte{1}); err == nil {
		t.Error("truncated regs accepted")
	}
}
