package rfs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/memfs"
	"repro/internal/procfs"
	"repro/internal/types"
	"repro/internal/vcpu"
	"repro/internal/vfs"
)

// Round-trip every registered codec: encodeArg → decodeArg reconstructs the
// argument; encodeResult → decodeResult reproduces the out-value.
func TestCodecRoundTrips(t *testing.T) {
	var sigs types.SigSet
	sigs.Add(types.SIGINT)
	sigs.Add(types.SIGUSR2)
	var flts types.FltSet
	flts.Add(types.FLTBPT)
	var syss types.SysSet
	syss.Add(kernel.SysRead)
	syss.Add(kernel.SysExec)
	regs := vcpu.Regs{PC: 0x80000010, SP: 0x7FFF0000, PSW: 5}
	regs.R[3] = 42
	run := kernel.RunFlags{ClearSig: true, Step: true, SetPC: true, PC: 0x1234, SetSig: 9}
	watch := procfs.PrWatch{Vaddr: 0x8000, Size: 16, Mode: mem.ProtWrite}
	five := 5
	status := kernel.ProcStatus{Pid: 7, Why: kernel.WhyFaulted, What: types.FLTBPT, Reg: regs}
	info := kernel.PSInfo{Pid: 7, Comm: "x", Args: "x -v", State: 'R', VSize: 4096}
	cred := types.Cred{RUID: 1, EUID: 2, SUID: 2, RGID: 3, EGID: 4, SGID: 4, Groups: []int{7, 8}}
	maps := []procfs.PrMap{{Vaddr: 0x80000000, Size: 4096, Prot: mem.ProtRX, Kind: mem.KindText, Name: "/bin/x"}}
	usage := procfs.PrUsage{Usage: kernel.Usage{UserTicks: 10, Syscalls: 3}, COWFaults: 2}

	// In-arguments: encode client-side, decode server-side, compare.
	inCases := []struct {
		name  string
		cmd   int
		arg   interface{}
		check func(got interface{}) bool
	}{
		{"sigset", procfs.PIOCSTRACE, &sigs, func(g interface{}) bool { return *g.(*types.SigSet) == sigs }},
		{"fltset", procfs.PIOCSFAULT, &flts, func(g interface{}) bool { return *g.(*types.FltSet) == flts }},
		{"sysset", procfs.PIOCSENTRY, &syss, func(g interface{}) bool { return *g.(*types.SysSet) == syss }},
		{"int", procfs.PIOCKILL, &five, func(g interface{}) bool { return *g.(*int) == 5 }},
		{"regs", procfs.PIOCSREG, &regs, func(g interface{}) bool { return *g.(*vcpu.Regs) == regs }},
		{"run", procfs.PIOCRUN, &run, func(g interface{}) bool { return *g.(*kernel.RunFlags) == run }},
		{"watch", procfs.PIOCSWATCH, &watch, func(g interface{}) bool { return *g.(*procfs.PrWatch) == watch }},
	}
	for _, tc := range inCases {
		codec := ioctlCodecs[tc.cmd]
		b, err := codec.encodeArg(tc.arg)
		if err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		got, err := codec.decodeArg(b)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if !tc.check(got) {
			t.Fatalf("%s: round trip mismatch: %+v", tc.name, got)
		}
	}

	// Out-results: encode server-side, decode into the caller's variable.
	t.Run("status", func(t *testing.T) {
		codec := ioctlCodecs[procfs.PIOCSTATUS]
		b, err := codec.encodeResult(&status)
		if err != nil {
			t.Fatal(err)
		}
		var out kernel.ProcStatus
		if err := codec.decodeResult(b, &out); err != nil {
			t.Fatal(err)
		}
		if out != status {
			t.Fatalf("%+v", out)
		}
		// nil arg is tolerated (PIOCSTOP with no status wanted).
		if err := codec.decodeResult(b, nil); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("psinfo", func(t *testing.T) {
		codec := ioctlCodecs[procfs.PIOCPSINFO]
		b, _ := codec.encodeResult(&info)
		var out kernel.PSInfo
		if err := codec.decodeResult(b, &out); err != nil || out != info {
			t.Fatalf("%+v %v", out, err)
		}
	})
	t.Run("cred", func(t *testing.T) {
		codec := ioctlCodecs[procfs.PIOCCRED]
		b, _ := codec.encodeResult(&cred)
		var out types.Cred
		if err := codec.decodeResult(b, &out); err != nil {
			t.Fatal(err)
		}
		if out.RUID != 1 || out.EGID != 4 || len(out.Groups) != 2 || out.Groups[1] != 8 {
			t.Fatalf("%+v", out)
		}
	})
	t.Run("map", func(t *testing.T) {
		codec := ioctlCodecs[procfs.PIOCMAP]
		b, _ := codec.encodeResult(&maps)
		var out []procfs.PrMap
		if err := codec.decodeResult(b, &out); err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 || out[0] != maps[0] {
			t.Fatalf("%+v", out)
		}
	})
	t.Run("usage", func(t *testing.T) {
		codec := ioctlCodecs[procfs.PIOCUSAGE]
		b, _ := codec.encodeResult(&usage)
		var out procfs.PrUsage
		if err := codec.decodeResult(b, &out); err != nil {
			t.Fatal(err)
		}
		if out.UserTicks != 10 || out.COWFaults != 2 {
			t.Fatalf("%+v", out)
		}
	})
	t.Run("regsOut", func(t *testing.T) {
		codec := ioctlCodecs[procfs.PIOCGREG]
		b, _ := codec.encodeResult(&regs)
		var out vcpu.Regs
		if err := codec.decodeResult(b, &out); err != nil || out != regs {
			t.Fatalf("%+v %v", out, err)
		}
	})
	t.Run("sigsetOut", func(t *testing.T) {
		codec := ioctlCodecs[procfs.PIOCGTRACE]
		b, _ := codec.encodeResult(&sigs)
		var out types.SigSet
		if err := codec.decodeResult(b, &out); err != nil || out != sigs {
			t.Fatalf("%+v %v", out, err)
		}
	})
	t.Run("intOut", func(t *testing.T) {
		codec := ioctlCodecs[procfs.PIOCMAXSIG]
		n := 128
		b, _ := codec.encodeResult(&n)
		var out int
		if err := codec.decodeResult(b, &out); err != nil || out != 128 {
			t.Fatalf("%d %v", out, err)
		}
	})
}

// Wrong argument types are rejected, not crashed on.
func TestCodecTypeErrors(t *testing.T) {
	bad := "not the right type"
	for _, cmd := range []int{procfs.PIOCSTRACE, procfs.PIOCKILL, procfs.PIOCSREG, procfs.PIOCSWATCH} {
		codec := ioctlCodecs[cmd]
		if _, err := codec.encodeArg(&bad); err == nil {
			t.Errorf("cmd %#x accepted a bad arg type", cmd)
		}
	}
	for _, cmd := range []int{procfs.PIOCSTATUS, procfs.PIOCPSINFO, procfs.PIOCCRED, procfs.PIOCMAP} {
		codec := ioctlCodecs[cmd]
		if err := codec.decodeResult([]byte{1, 2, 3}, &bad); err == nil {
			t.Errorf("cmd %#x accepted a bad result type", cmd)
		}
	}
	// Truncated operand bytes are rejected.
	if _, err := ioctlCodecs[procfs.PIOCSTRACE].decodeArg([]byte{1, 2}); err == nil {
		t.Error("truncated sigset accepted")
	}
	if _, err := ioctlCodecs[procfs.PIOCSREG].decodeArg([]byte{1}); err == nil {
		t.Error("truncated regs accepted")
	}
}

// fakeTransport returns one canned response (or error) for every round trip:
// a hostile or broken server, from the client's point of view.
type fakeTransport struct {
	resp []byte
	err  error
}

func (t *fakeTransport) RoundTrip(req []byte) ([]byte, error) { return t.resp, t.err }

// okHeader builds a response claiming success, to which corrupt payloads are
// appended.
func okHeader() []byte {
	m := &buf{}
	m.putU32(errNone)
	m.putStr("")
	return m.b
}

// exercise runs every client surface against the canned transport and hands
// each outcome to check. HPoll's error path is degraded (it reports "no
// events ready"), so it is only run for the no-panic property.
func exercise(t *testing.T, tr Transport, check func(name string, err error)) {
	t.Helper()
	c := NewClient(tr, types.RootCred())
	_, err := c.Open("/x", 0)
	check("Open", err)
	_, err = c.Stat("/x")
	check("Stat", err)
	_, err = c.ReadDir("/x")
	check("ReadDir", err)
	h := &remoteHandle{c: c, fd: 1}
	_, err = h.HRead(make([]byte, 8), 0)
	check("HRead", err)
	_, err = h.HWrite([]byte("x"), 0)
	check("HWrite", err)
	var st kernel.ProcStatus
	check("HIoctl", h.HIoctl(procfs.PIOCSTATUS, &st))
	check("HClose", h.HClose())
	h.HPoll(1)
}

// A transport failure surfaces as an error from every operation.
func TestClientTransportError(t *testing.T) {
	boom := errors.New("connection torn down")
	exercise(t, &fakeTransport{err: boom}, func(name string, err error) {
		if err != boom {
			t.Errorf("%s: got %v, want the transport error", name, err)
		}
	})
}

// A response whose error header itself is truncated or garbled fails every
// operation — no panics, no fabricated success.
func TestClientCorruptResponses(t *testing.T) {
	cases := []struct {
		name string
		resp []byte
	}{
		{"empty", nil},
		{"header cut mid-u32", []byte{0, 0}},
		{"header cut mid-string", append([]byte{0, 0, 0, 0}, 0, 0, 0, 9)},
		{"garbage", []byte{9, 9, 9, 9, 9, 9, 9, 9, 9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exercise(t, &fakeTransport{resp: tc.resp}, func(name string, err error) {
				if err == nil {
					t.Errorf("%s accepted a corrupt response", name)
				}
			})
		})
	}
}

// A well-formed success header followed by a missing or truncated payload is
// rejected by every operation that expects one. (HClose carries no payload,
// so for it a bare success header is legitimate.)
func TestClientTruncatedPayloads(t *testing.T) {
	for _, tc := range []struct {
		name string
		resp []byte
	}{
		{"no payload", okHeader()},
		{"payload cut short", append(okHeader(), 0xFF)},
	}[:] {
		t.Run(tc.name, func(t *testing.T) {
			c := NewClient(&fakeTransport{resp: tc.resp}, types.RootCred())
			if _, err := c.Open("/x", 0); err == nil {
				t.Error("Open succeeded without an fd")
			}
			if _, err := c.Stat("/x"); err == nil {
				t.Error("Stat succeeded without attributes")
			}
			if _, err := c.ReadDir("/x"); err == nil {
				t.Error("ReadDir succeeded without a count")
			}
			h := &remoteHandle{c: c, fd: 1}
			if _, err := h.HRead(make([]byte, 8), 0); err == nil {
				t.Error("HRead succeeded without data")
			}
			if _, err := h.HWrite([]byte("x"), 0); err == nil {
				t.Error("HWrite succeeded without a count")
			}
			var st kernel.ProcStatus
			if err := h.HIoctl(procfs.PIOCSTATUS, &st); err == nil {
				t.Error("HIoctl succeeded without a result")
			}
		})
	}
}

// A byte count exceeding what the client sent is a lying server, not a
// successful write.
func TestClientOverlongWriteCount(t *testing.T) {
	resp := append(okHeader(), 0, 0, 0, 200)
	c := NewClient(&fakeTransport{resp: resp}, types.RootCred())
	h := &remoteHandle{c: c, fd: 1}
	if n, err := h.HWrite([]byte("xy"), 0); err == nil {
		t.Errorf("HWrite of 2 bytes accepted a count of %d", n)
	}
}

// A response that passes the header but carries a hostile payload: absurd
// counts and lengths are bounded, not allocated or sliced out of range.
func TestClientHostilePayloads(t *testing.T) {
	huge := append(okHeader(), 0xFF, 0xFF, 0xFF, 0xFF) // count/len ~4 billion
	c := NewClient(&fakeTransport{resp: huge}, types.RootCred())
	if _, err := c.ReadDir("/x"); err == nil {
		t.Error("ReadDir accepted an absurd entry count")
	}
	h := &remoteHandle{c: c, fd: 1}
	if _, err := h.HRead(make([]byte, 8), 0); err == nil {
		t.Error("HRead accepted an absurd byte length")
	}
	var st kernel.ProcStatus
	if err := h.HIoctl(procfs.PIOCSTATUS, &st); err == nil {
		t.Error("HIoctl accepted an absurd result length")
	}
	// Plausible length, garbage content: the per-command codec rejects it.
	garbage := okHeader()
	garbage = append(garbage, 0, 0, 0, 3, 1, 2, 3)
	c2 := NewClient(&fakeTransport{resp: garbage}, types.RootCred())
	h2 := &remoteHandle{c: c2, fd: 1}
	if err := h2.HIoctl(procfs.PIOCSTATUS, &st); err == nil {
		t.Error("HIoctl accepted a truncated status payload")
	}
}

// The server answers malformed requests with error responses — it must not
// panic, and must not report success.
func TestServerGarbageRequests(t *testing.T) {
	fs := memfs.New(func() int64 { return 0 })
	srv := NewServer(vfs.NewNS(fs.Root()), nil)
	reqs := [][]byte{
		nil,
		{},
		{opOpen},                               // op with no credential
		{opOpen, 0, 0, 0, 1},                   // credential cut short
		{opRead, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1}, // args missing
		{0xEE, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1},   // unknown op
		bytes.Repeat([]byte{0xA5}, 300),
	}
	for i, req := range reqs {
		resp := srv.Handle(req)
		m := &buf{b: resp}
		code := m.u32()
		msg := m.str()
		if m.err != nil {
			t.Errorf("req %d: unparseable response %x", i, resp)
			continue
		}
		if decodeErr(code, msg) == nil {
			t.Errorf("req %d: server claimed success for garbage", i)
		}
	}
}

// Every sentinel error survives the wire intact — EOF in particular, which
// readers use to find the end of trace and status files on remote mounts.
func TestErrCodeRoundTrip(t *testing.T) {
	for _, want := range []error{
		vfs.ErrNotExist, vfs.ErrPerm, vfs.ErrNotDir, vfs.ErrIsDir,
		vfs.ErrExist, vfs.ErrBusy, vfs.ErrInval, vfs.ErrBadFD,
		vfs.ErrStale, vfs.ErrAgain, vfs.ErrNoIoctl, vfs.EOF,
	} {
		code, msg := encodeErr(want)
		if got := decodeErr(code, msg); got != want {
			t.Errorf("%v came back as %v", want, got)
		}
	}
	if code, _ := encodeErr(nil); decodeErr(code, "") != nil {
		t.Error("nil did not survive")
	}
	code, msg := encodeErr(errors.New("ring buffer torn"))
	if got := decodeErr(code, msg); got == nil || got.Error() != "rfs: ring buffer torn" {
		t.Errorf("errOther: %v", got)
	}
}
