package rfs_test

import (
	"repro/internal/kernel"
	"repro/internal/procfs2"
)

// Small wrappers over the procfs2 client-side builders, so the RFS tests
// read cleanly.

func ctlStop() []byte { return (&procfs2.CtlBuf{}).Stop().Bytes() }

func ctlRun() []byte { return (&procfs2.CtlBuf{}).Run(0, 0).Bytes() }

func decodeStatus(b []byte) (kernel.ProcStatus, error) {
	return procfs2.DecodeStatus(b)
}
