package rfs

import (
	"encoding/binary"
	"errors"
	"io"
	"time"

	"repro/internal/fault"
)

// Fault injection. The multiplexed protocol's interesting failure modes are
// all wire-level — a response that never comes, comes twice, comes mangled,
// or a connection that dies mid-stream — so faults are injected at the two
// places frames touch the wire: the server's response writer (Server.
// MuxFaults) and the client's request path (FaultTransport). Plans are
// deterministic functions of the frame ordinal, so tests can script exact
// scenarios and assert the outcome.

// FaultKind enumerates the injectable failures.
type FaultKind int

const (
	// FaultNone lets the frame through untouched.
	FaultNone FaultKind = iota
	// FaultDrop discards the frame: the peer's deadline must fire.
	FaultDrop
	// FaultDelay holds the frame for Faults.Delay before sending it.
	FaultDelay
	// FaultDup sends the frame twice; the duplicate must be dropped by the
	// receiver's demux table, not mistaken for another request's response.
	FaultDup
	// FaultCorrupt mangles the frame so the receiver's framing layer
	// rejects it (a clean connection-level failure, since payload bytes
	// carry no checksum that could catch silent flips).
	FaultCorrupt
	// FaultDisconnect closes the connection mid-stream.
	FaultDisconnect
)

// errInjected marks failures the injector itself produced.
var errInjected = errors.New("rfs: injected fault")

// Faults is a deterministic fault-injection plan. Plan receives the ordinal
// of each frame considered (0-based) and returns the fault to apply; nil
// Plan means no faults. Injected counts per kind for test assertions.
//
// The bookkeeping — the frame ordinal and the per-kind injection tally — is
// fault.Seq, the same deterministic core the kernel's internal/fault sites
// use, so wire-level and kernel-level injection share one shape: a plan is a
// pure function of the decision ordinal.
type Faults struct {
	// Plan decides the fault for the nth frame.
	Plan func(n int) FaultKind
	// Delay is how long FaultDelay holds a frame.
	Delay time.Duration

	seq fault.Seq
}

// next advances the frame ordinal and returns the planned fault.
func (f *Faults) next() FaultKind {
	n := f.seq.Next()
	if f.Plan == nil {
		return FaultNone
	}
	k := f.Plan(n)
	if k != FaultNone {
		f.seq.Note(int(k))
	}
	return k
}

// Injected reports how many faults of kind k have been injected.
func (f *Faults) Injected(k FaultKind) int {
	return f.seq.Injected(int(k))
}

// writeFrame writes one frame through the fault plan (the server-side
// injection point, installed via Server.MuxFaults).
func (f *Faults) writeFrame(conn io.ReadWriter, frame []byte) error {
	switch f.next() {
	case FaultDrop:
		return nil
	case FaultDelay:
		time.Sleep(f.Delay)
		return writeFrame(conn, frame)
	case FaultDup:
		if err := writeFrame(conn, frame); err != nil {
			return err
		}
		return writeFrame(conn, frame)
	case FaultCorrupt:
		// A length header claiming an impossible frame: the receiver's
		// readFrame rejects it and the connection is dead from then on —
		// detected corruption, not silent.
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 1<<31)
		if _, err := conn.Write(hdr[:]); err != nil {
			return err
		}
		return errInjected
	case FaultDisconnect:
		if c, ok := conn.(io.Closer); ok {
			c.Close()
		}
		return errInjected
	}
	return writeFrame(conn, frame)
}

// FaultTransport wraps a Transport and injects request-side faults, one
// plan decision per round trip. It propagates the idempotency flag to the
// inner transport when it understands it.
type FaultTransport struct {
	Inner  Transport
	Faults *Faults
}

// RoundTrip implements Transport.
func (t *FaultTransport) RoundTrip(req []byte) ([]byte, error) {
	return t.RoundTripIdem(req, false)
}

// RoundTripIdem implements IdemTransport.
func (t *FaultTransport) RoundTripIdem(req []byte, idempotent bool) ([]byte, error) {
	switch t.Faults.next() {
	case FaultDrop:
		// The request vanishes; to the caller that is a deadline expiry.
		return nil, ErrTimeout
	case FaultDelay:
		time.Sleep(t.Faults.Delay)
	case FaultDup:
		// The request reaches the server twice (e.g. a retransmit); the
		// extra execution's response is discarded. Only safe to observe on
		// idempotent requests, which is the point of injecting it.
		t.forward(req, idempotent)
	case FaultCorrupt:
		// Mangle the opcode: the server answers with a clean protocol
		// error rather than executing anything.
		mangled := make([]byte, len(req))
		copy(mangled, req)
		if len(mangled) > 0 {
			mangled[0] = 0xff
		}
		return t.forward(mangled, idempotent)
	case FaultDisconnect:
		if c, ok := t.Inner.(io.Closer); ok {
			c.Close()
		}
		return nil, errInjected
	}
	return t.forward(req, idempotent)
}

func (t *FaultTransport) forward(req []byte, idempotent bool) ([]byte, error) {
	if it, ok := t.Inner.(IdemTransport); ok {
		return it.RoundTripIdem(req, idempotent)
	}
	return t.Inner.RoundTrip(req)
}

var _ IdemTransport = (*FaultTransport)(nil)
