package rfs_test

import (
	"net"
	"strings"
	"sync"
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/rfs"
	"repro/internal/types"
	"repro/internal/vfs"
)

const spin = `
loop:	jmp loop
`

// remoteSystem boots a "remote machine" and returns a client connected to
// it via the in-process transport.
func remoteSystem(t *testing.T, cred types.Cred) (*repro.System, *rfs.Client) {
	t.Helper()
	s := repro.NewSystem()
	srv := rfs.NewServer(s.NS, nil)
	return s, rfs.NewClient(rfs.LocalTransport{S: srv}, cred)
}

func TestRemoteFileAccess(t *testing.T) {
	s, cl := remoteSystem(t, types.RootCred())
	s.FS.WriteFile("/tmp/hello", []byte("remote content"), 0o644, 0, 0)

	attr, err := cl.Stat("/tmp/hello")
	if err != nil || attr.Size != 14 {
		t.Fatalf("stat: %+v %v", attr, err)
	}
	f, err := cl.Open("/tmp/hello", vfs.ORead)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, err := f.Pread(buf, 0)
	if err != nil || string(buf[:n]) != "remote content" {
		t.Fatalf("read: %q %v", buf[:n], err)
	}
	f.Close()

	ents, err := cl.ReadDir("/tmp")
	if err != nil || len(ents) != 1 || ents[0].Name != "hello" {
		t.Fatalf("readdir: %+v %v", ents, err)
	}
}

// C9: remote process inspection and control through /proc over RFS.
func TestRFSRemoteControl(t *testing.T) {
	s, cl := remoteSystem(t, types.RootCred())
	p, err := s.SpawnProg("victim", spin, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(2)

	// The remote /proc directory lists the remote processes.
	ents, err := cl.ReadDir("/proc")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, e := range ents {
		names[e.Name] = true
	}
	if !names[procfs.PidName(p.Pid)] {
		t.Fatal("remote process not listed")
	}

	f, err := cl.Open("/proc/"+procfs.PidName(p.Pid), vfs.ORead|vfs.OWrite)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Remote PIOCSTATUS through the marshalling registry.
	var st kernel.ProcStatus
	if err := f.Ioctl(procfs.PIOCSTATUS, &st); err != nil {
		t.Fatal(err)
	}
	if st.Pid != p.Pid {
		t.Fatalf("remote status pid = %d", st.Pid)
	}
	// Remote stop and run.
	if err := f.Ioctl(procfs.PIOCSTOP, &st); err != nil {
		t.Fatal(err)
	}
	if st.Why != kernel.WhyRequested {
		t.Fatalf("remote stop: %+v", st)
	}
	if !p.Rep().Stopped() {
		t.Fatal("remote stop did not stop the local process")
	}
	// Remote address-space read and breakpoint write, plain read/write.
	word := make([]byte, 4)
	if _, err := f.Pread(word, 0x80000000); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Pwrite(word, 0x80000000); err != nil {
		t.Fatal(err)
	}
	// Remote memory map.
	var maps []procfs.PrMap
	if err := f.Ioctl(procfs.PIOCMAP, &maps); err != nil {
		t.Fatal(err)
	}
	if len(maps) < 2 {
		t.Fatalf("remote map: %d entries", len(maps))
	}
	// Remote run.
	if err := f.Ioctl(procfs.PIOCRUN, nil); err != nil {
		t.Fatal(err)
	}
	s.Run(3)
	if p.Rep().Stopped() {
		t.Fatal("remote run did not resume")
	}
	// Remote kill.
	sig := types.SIGKILL
	if err := f.Ioctl(procfs.PIOCKILL, &sig); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WaitExit(p); err != nil {
		t.Fatal(err)
	}
}

// Remote security: credentials cross the wire and the /proc checks apply.
func TestRFSRemoteSecurity(t *testing.T) {
	s, _ := remoteSystem(t, types.RootCred())
	p, _ := s.SpawnProg("guarded", spin, types.UserCred(100, 10))
	s.Run(2)
	srv := rfs.NewServer(s.NS, nil)
	stranger := rfs.NewClient(rfs.LocalTransport{S: srv}, types.UserCred(999, 99))
	if _, err := stranger.Open("/proc/"+procfs.PidName(p.Pid), vfs.ORead); err != vfs.ErrPerm {
		t.Fatalf("stranger open: %v", err)
	}
	owner := rfs.NewClient(rfs.LocalTransport{S: srv}, types.UserCred(100, 10))
	f, err := owner.Open("/proc/"+procfs.PidName(p.Pid), vfs.ORead)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// The restructured interface crosses the network with no codecs at all:
// status reads and ctl writes are plain bytes.
func TestRFSRestructuredInterface(t *testing.T) {
	s, cl := remoteSystem(t, types.RootCred())
	p, _ := s.SpawnProg("rv", spin, types.UserCred(100, 10))
	s.Run(2)

	dir := "/procx/" + procfs.PidName(p.Pid)
	ctl, err := cl.Open(dir+"/ctl", vfs.OWrite)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	// Batched stop via one remote write.
	if _, err := ctl.Pwrite(ctlStop(), 0); err != nil {
		t.Fatal(err)
	}
	if !p.Rep().Stopped() {
		t.Fatal("remote ctl stop failed")
	}
	status, err := cl.Open(dir+"/status", vfs.ORead)
	if err != nil {
		t.Fatal(err)
	}
	defer status.Close()
	buf := make([]byte, 4096)
	n, err := status.Pread(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := decodeStatus(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if st.Pid != p.Pid || st.Why != kernel.WhyRequested {
		t.Fatalf("remote status: %+v", st)
	}
	if _, err := ctl.Pwrite(ctlRun(), 0); err != nil {
		t.Fatal(err)
	}
	s.Run(3)
	if p.Rep().Stopped() {
		t.Fatal("remote ctl run failed")
	}
}

// Unknown ioctls cannot cross the network (no codec).
func TestRFSUnknownIoctlRejected(t *testing.T) {
	s, cl := remoteSystem(t, types.RootCred())
	p, _ := s.SpawnProg("x", spin, types.UserCred(100, 10))
	s.Run(2)
	f, err := cl.Open("/proc/"+procfs.PidName(p.Pid), vfs.ORead|vfs.OWrite)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var pr *kernel.Proc
	if err := f.Ioctl(procfs.PIOCGETPR, &pr); err != vfs.ErrNoIoctl {
		t.Fatalf("PIOCGETPR remotely: %v (a pointer cannot cross the wire)", err)
	}
}

// Real TCP transport: the same protocol over a socket, with the server
// serialized by a lock.
func TestRFSOverTCP(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("nettarget", spin, types.UserCred(100, 10))
	s.Run(2)

	var lock sync.Mutex
	srv := rfs.NewServer(s.NS, &lock)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback networking: %v", err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		srv.ServeConn(conn)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cl := rfs.NewClient(&rfs.ConnTransport{Conn: conn}, types.RootCred())
	var st kernel.ProcStatus
	f, err := cl.Open("/proc/"+procfs.PidName(p.Pid), vfs.ORead|vfs.OWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Ioctl(procfs.PIOCSTOP, &st); err != nil {
		t.Fatal(err)
	}
	if st.Pid != p.Pid || st.Why != kernel.WhyRequested {
		t.Fatalf("tcp remote stop: %+v", st)
	}
	if err := f.Ioctl(procfs.PIOCRUN, nil); err != nil {
		t.Fatal(err)
	}
	f.Close()
	conn.Close()
	<-done
}

// Remote ps: the unmodified tools run against remote /proc because the
// remote client yields ordinary vfs.Files. (Demonstrated via PIOCPSINFO.)
func TestRemotePS(t *testing.T) {
	s, cl := remoteSystem(t, types.RootCred())
	s.SpawnProg("app1", spin, types.UserCred(100, 10))
	s.SpawnProg("app2", spin, types.UserCred(200, 20))
	s.Run(3)
	ents, err := cl.ReadDir("/proc")
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, e := range ents {
		f, err := cl.Open("/proc/"+e.Name, vfs.ORead)
		if err != nil {
			continue
		}
		var info kernel.PSInfo
		if err := f.Ioctl(procfs.PIOCPSINFO, &info); err == nil {
			lines = append(lines, info.Comm)
		}
		f.Close()
	}
	joined := strings.Join(lines, " ")
	for _, want := range []string{"sched", "init", "pageout", "app1", "app2"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("remote ps missing %q: %v", want, lines)
		}
	}
}
