package rfs_test

import (
	"testing"

	"repro"
	"repro/internal/kernel"
	"repro/internal/procfs"
	"repro/internal/rfs"
	"repro/internal/tools"
	"repro/internal/types"
	"repro/internal/vfs"
)

// The full debugger, unmodified, against a remote process: breakpoints
// planted over the wire, faulted stops awaited remotely (the server drives
// its own scheduler inside the blocking PIOCWSTOP), memory inspected in
// bulk reads.
func TestRemoteDebugger(t *testing.T) {
	s := repro.NewSystem()
	p, err := s.SpawnProg("rdbg", `
.entry main
fn:	addi r4, 1
	ret
main:	movi r5, 3
loop:	call fn
	addi r5, -1
	cmpi r5, 0
	jne loop
	movi r0, SYS_exit
	mov r1, r4
	syscall
`, types.UserCred(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	srv := rfs.NewServer(s.NS, nil)
	cl := rfs.NewClient(rfs.LocalTransport{S: srv}, types.RootCred())

	f, err := cl.Open("/proc/"+procfs.PidName(p.Pid), vfs.ORead|vfs.OWrite)
	if err != nil {
		t.Fatal(err)
	}
	d, err := tools.NewDebuggerFile(s, p, f)
	if err != nil {
		t.Fatal(err)
	}
	fn, ok := d.Lookup("fn")
	if !ok {
		t.Fatal("no symbol")
	}
	if err := d.SetBreak(fn); err != nil {
		t.Fatal(err)
	}
	for hit := 0; hit < 3; hit++ {
		st, err := d.Cont()
		if err != nil {
			t.Fatalf("hit %d: %v", hit, err)
		}
		if st.Why != kernel.WhyFaulted || st.Reg.PC != fn {
			t.Fatalf("hit %d: %+v", hit, st)
		}
		if int(st.Reg.R[4]) != hit {
			t.Fatalf("hit %d: r4 = %d", hit, st.Reg.R[4])
		}
	}
	if err := d.ClearBreak(fn); err != nil {
		t.Fatal(err)
	}
	d.Close()
	status, err := s.WaitExit(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, code := kernel.WIfExited(status); code != 3 {
		t.Fatalf("code = %d", code)
	}
	if cl.Ops() < 20 {
		t.Fatalf("ops = %d: everything should have crossed the transport", cl.Ops())
	}
}

// Remote run-on-last-close: closing the remote descriptor releases the
// process on the server machine.
func TestRemoteRunOnLastClose(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("rrlc", spin, types.UserCred(100, 10))
	srv := rfs.NewServer(s.NS, nil)
	cl := rfs.NewClient(rfs.LocalTransport{S: srv}, types.RootCred())
	f, err := cl.Open("/proc/"+procfs.PidName(p.Pid), vfs.ORead|vfs.OWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Ioctl(procfs.PIOCSRLC, nil); err != nil {
		t.Fatal(err)
	}
	var st kernel.ProcStatus
	if err := f.Ioctl(procfs.PIOCSTOP, &st); err != nil {
		t.Fatal(err)
	}
	if !p.Rep().Stopped() {
		t.Fatal("not stopped")
	}
	// The remote controller "dies": its close crosses the wire and
	// releases the process.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	s.Run(5)
	if p.Rep().Stopped() {
		t.Fatal("run-on-last-close did not apply remotely")
	}
	s.K.PostSignal(p, types.SIGKILL)
	s.WaitExit(p)
}

// Errors cross the transport faithfully.
func TestRemoteErrorMapping(t *testing.T) {
	s := repro.NewSystem()
	srv := rfs.NewServer(s.NS, nil)
	cl := rfs.NewClient(rfs.LocalTransport{S: srv}, types.UserCred(100, 10))
	if _, err := cl.Open("/no/such/path", vfs.ORead); err != vfs.ErrNotExist {
		t.Fatalf("ENOENT: %v", err)
	}
	s.FS.WriteFile("/tmp/private", []byte("x"), 0o600, 0, 0)
	if _, err := cl.Open("/tmp/private", vfs.ORead); err != vfs.ErrPerm {
		t.Fatalf("EACCES: %v", err)
	}
	if _, err := cl.ReadDir("/tmp/private"); err == nil {
		t.Fatal("readdir of a file should fail")
	}
	// Bad fd after close.
	s.FS.WriteFile("/tmp/pub", []byte("y"), 0o644, 0, 0)
	f, err := cl.Open("/tmp/pub", vfs.ORead)
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := f.Pread(make([]byte, 1), 0); err != vfs.ErrBadFD {
		t.Fatalf("read after close: %v", err)
	}
}

// The PIOCUSAGE codec crosses the wire.
func TestRemoteUsage(t *testing.T) {
	s := repro.NewSystem()
	p, _ := s.SpawnProg("ru", spin, types.UserCred(100, 10))
	s.Run(10)
	srv := rfs.NewServer(s.NS, nil)
	cl := rfs.NewClient(rfs.LocalTransport{S: srv}, types.RootCred())
	f, err := cl.Open("/proc/"+procfs.PidName(p.Pid), vfs.ORead)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var u procfs.PrUsage
	if err := f.Ioctl(procfs.PIOCUSAGE, &u); err != nil {
		t.Fatal(err)
	}
	if u.UserTicks == 0 {
		t.Fatal("remote usage empty")
	}
	s.K.PostSignal(p, types.SIGKILL)
	s.WaitExit(p)
}
